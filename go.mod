module pmafia

go 1.22
