package pmafia

import (
	"path/filepath"
	"testing"
)

func sampleSpec(seed uint64) Spec {
	return Spec{
		Dims:    8,
		Records: 6000,
		Clusters: []ClusterSpec{
			UniformBox([]int{1, 4, 6}, []Range{{Lo: 20, Hi: 35}, {Lo: 50, Hi: 65}, {Lo: 5, Hi: 20}}, 0),
		},
		Seed: seed,
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	data, truth, err := Generate(sampleSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if truth == nil || len(truth.Clusters) != 1 {
		t.Fatalf("truth = %+v", truth)
	}
	res, err := Run(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Clusters {
		if len(c.Dims) == 3 && c.Dims[0] == 1 && c.Dims[1] == 4 && c.Dims[2] == 6 {
			found = true
			dnf := c.DNF(res.Grid)
			if dnf == "" {
				t.Error("empty DNF")
			}
		}
	}
	if !found {
		t.Error("embedded cluster not found through the public API")
	}
}

func TestPublicParallelMatchesSerial(t *testing.T) {
	data, _, err := Generate(sampleSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(ShardMatrix(data, 4), nil, Config{}, MachineConfig{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Clusters) != len(serial.Clusters) {
		t.Errorf("parallel %d clusters vs serial %d", len(par.Clusters), len(serial.Clusters))
	}
	if par.Report.Procs != 4 {
		t.Errorf("report procs = %d", par.Report.Procs)
	}
}

func TestPublicCLIQUE(t *testing.T) {
	data, _, err := Generate(Spec{
		Dims:    6,
		Records: 2000,
		Clusters: []ClusterSpec{
			UniformBox([]int{0, 3}, []Range{{Lo: 20, Hi: 40}, {Lo: 60, Hi: 80}}, 0),
		},
		NoiseFraction: 2.0,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCLIQUE(data, CLIQUEConfig{Bins: 10, Tau: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Error("CLIQUE found nothing")
	}
}

func TestPublicFileAPI(t *testing.T) {
	data, _, err := Generate(sampleSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "data.pmaf")
	if err := WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRecords() != data.NumRecords() {
		t.Fatalf("file records = %d", f.NumRecords())
	}
	// Stage three shards and run in parallel from disk.
	shards := make([]Source, 3)
	for r := 0; r < 3; r++ {
		local, err := Stage(f, filepath.Join(dir, "local"), r, 3)
		if err != nil {
			t.Fatal(err)
		}
		shards[r] = local
	}
	res, err := RunParallel(shards, f.Domains(), Config{ChunkRecords: 512}, MachineConfig{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Error("disk-staged run found nothing")
	}
}

func TestPublicDomains(t *testing.T) {
	m, err := FromRows([][]float64{{1, 10}, {5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	doms, err := Domains(m)
	if err != nil {
		t.Fatal(err)
	}
	if doms[0].Lo != 1 || doms[1].Lo != 2 {
		t.Errorf("domains = %v", doms)
	}
}

func TestPublicSamples(t *testing.T) {
	if m := SampleDAX(1); m.Dims() != 22 || m.NumRecords() != 2757 {
		t.Error("DAX sample shape wrong")
	}
	if m := SampleIonosphere(1); m.Dims() != 34 || m.NumRecords() != 351 {
		t.Error("ionosphere sample shape wrong")
	}
	if m := SampleRatings(1000, 1); m.Dims() != 4 || m.NumRecords() != 1000 {
		t.Error("ratings sample shape wrong")
	}
}

func TestConfigKnobsReachEngine(t *testing.T) {
	data, _, err := Generate(sampleSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	// A huge alpha should suppress all clusters.
	res, err := Run(data, Config{Alpha: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Errorf("alpha=50 still found %d clusters", len(res.Clusters))
	}
	// MaxLevels=1 must stop after level 1.
	res, err = Run(data, Config{MaxLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Levels {
		if l.K > 1 {
			t.Errorf("MaxLevels=1 but level %d ran", l.K)
		}
	}
}
