.PHONY: build test check

build:
	go build ./...

test:
	go test ./...

# Extended tier-1 gate: vet + gofmt + full suite under -race.
check:
	sh scripts/check.sh
