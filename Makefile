.PHONY: build test check faults recover bench bench-compare

build:
	go build ./...

test:
	go test ./...

# Extended tier-1 gate: vet + gofmt + full suite under -race + fuzz
# smoke on the diskio header parser + bench smoke and its regression
# gate against the committed baseline.
check:
	sh scripts/check.sh -smoke

# Fault matrix: every injected failure (crash, stall, read errors,
# corruption, torn checkpoint writes) must terminate with a typed
# error under the race detector — no hangs, no process crashes.
faults:
	go test -race -run 'Fault|Corrupt|Stall|EndToEnd|Exit|Retry|BitFlip|Abort|Atomic|Truncation|Torn' \
		./internal/faults ./internal/sp2 ./internal/diskio ./internal/mafia \
		./internal/ckpt ./internal/supervisor ./cmd/pmafia

# Recovery matrix: supervised restart/resume under injected crashes,
# stalls, and torn checkpoint writes — every recovered run must
# reproduce the fault-free result bit-identically, race-clean.
recover:
	go test -race -count=1 ./internal/supervisor
	go test -race -count=1 -run 'Manager|Resume|Exit' ./internal/ckpt ./cmd/pmafia

# Tracked benchmark suite: refreshes BENCH_pr8.json with records/sec
# per phase (histogram, populate, full run, assignment) at p in
# {1,2,4,8}, plus the serving load run (QPS + latency percentiles).
bench:
	sh scripts/bench.sh

# Bench-regression gate on its own: run the smoke suite and diff it
# against the committed baseline. The tolerance is generous because
# the matched cells (p<=2) were measured on a quiet machine.
bench-compare:
	go run ./cmd/bench -smoke -out "$${TMPDIR:-/tmp}/pmafia-bench-smoke.json"
	go run ./cmd/bench -compare BENCH_pr8.json "$${TMPDIR:-/tmp}/pmafia-bench-smoke.json" -tolerance 0.9
