.PHONY: build test check faults bench

build:
	go build ./...

test:
	go test ./...

# Extended tier-1 gate: vet + gofmt + full suite under -race + a short
# fuzz smoke on the diskio header parser.
check:
	sh scripts/check.sh

# Fault matrix: every injected failure (crash, stall, read errors,
# corruption) must terminate with a typed error under the race
# detector — no hangs, no process crashes.
faults:
	go test -race -run 'Fault|Corrupt|Stall|EndToEnd|Exit|Retry|BitFlip|Abort|Atomic|Truncation' \
		./internal/faults ./internal/sp2 ./internal/diskio ./internal/mafia ./cmd/pmafia

# Tracked benchmark suite: refreshes BENCH_pr3.json with records/sec
# per phase (histogram, populate, full run) at p in {1,2,4,8}.
bench:
	sh scripts/bench.sh
