package pmafia

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/golden.pmaf and testdata/golden_clusters.txt")

// goldenSpec is the committed data set's generator spec: two
// well-separated clusters in distinct subspaces plus the generator's
// default noise. Changing it requires -update-golden and a review of
// the resulting cluster change.
func goldenSpec() Spec {
	return Spec{
		Dims:    7,
		Records: 5000,
		Clusters: []ClusterSpec{
			UniformBox([]int{1, 3}, []Range{{Lo: 20, Hi: 40}, {Lo: 55, Hi: 75}}, 0),
			UniformBox([]int{0, 4, 5}, []Range{{Lo: 60, Hi: 85}, {Lo: 10, Hi: 30}, {Lo: 40, Hi: 60}}, 0),
		},
		Seed: 424242,
	}
}

// goldenRender serializes a result's clusters — subspaces, per-dimension
// value bounds, and minimal DNF covers — into the canonical text the
// golden file stores. Bounds are printed through %v (exact float
// formatting), so any numeric drift in the grid or the cluster assembly
// shows up as a diff.
func goldenRender(res *Result) string {
	lines := make([]string, 0, len(res.Clusters)+1)
	for _, c := range res.Clusters {
		dims := make([]string, len(c.Dims))
		for i, d := range c.Dims {
			dims[i] = fmt.Sprint(d)
		}
		bounds := make([]string, 0, len(c.Dims))
		for i, b := range c.Bounds(res.Grid) {
			bounds = append(bounds, fmt.Sprintf("d%s=%v", dims[i], b))
		}
		lines = append(lines, fmt.Sprintf("cluster dims={%s} units=%d %s dnf=%s",
			strings.Join(dims, ","), c.Units.Len(), strings.Join(bounds, " "), c.DNF(res.Grid)))
	}
	sort.Strings(lines)
	return fmt.Sprintf("records=%d clusters=%d\n%s\n", res.N, len(res.Clusters), strings.Join(lines, "\n"))
}

// TestGoldenClusterRecovery is the end-to-end regression pin: the
// committed golden.pmaf data set, clustered out of core with the
// default configuration, must reproduce the committed cluster report
// exactly — subspaces, bin-resolved bounds, and DNF covers. The run
// reads the committed bytes (not regenerated data), so PMAF format
// drift, grid changes, kernel changes, and cluster-assembly changes all
// trip it. Run with -update-golden after an intended change.
func TestGoldenClusterRecovery(t *testing.T) {
	dataPath := filepath.Join("testdata", "golden.pmaf")
	wantPath := filepath.Join("testdata", "golden_clusters.txt")

	if *updateGolden {
		data, _, err := Generate(goldenSpec())
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(dataPath, data); err != nil {
			t.Fatal(err)
		}
	}

	f, err := OpenFile(dataPath)
	if err != nil {
		t.Fatalf("open committed golden data: %v (run with -update-golden to create it)", err)
	}
	f.SetPrefetch(true)
	res, err := Run(f, Config{ChunkRecords: 512})
	if err != nil {
		t.Fatal(err)
	}
	got := goldenRender(res)

	if *updateGolden {
		if err := os.WriteFile(wantPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden files updated:\n%s", got)
		return
	}

	wantBytes, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatalf("read golden clusters: %v (run with -update-golden to create it)", err)
	}
	if got != string(wantBytes) {
		t.Errorf("cluster report diverged from golden file\n got:\n%s\nwant:\n%s", got, string(wantBytes))
	}

	// The recovered clusters must include both planted subspaces.
	found := map[string]bool{}
	for _, c := range res.Clusters {
		dims := make([]string, len(c.Dims))
		for i, d := range c.Dims {
			dims[i] = fmt.Sprint(d)
		}
		found[strings.Join(dims, ",")] = true
	}
	for _, want := range []string{"1,3", "0,4,5"} {
		if !found[want] {
			t.Errorf("planted subspace {%s} not recovered; got %v", want, found)
		}
	}
}
