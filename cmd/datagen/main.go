// Command datagen generates synthetic data sets with the paper's
// generator (§5.1) and writes them as .pmaf record files or CSV, plus
// a ground-truth JSON file for quality evaluation.
//
// Clusters are specified as dims@lo:hi, e.g.
//
//	datagen -dims 10 -records 100000 \
//	    -cluster "1,7,8,9@23:39" -cluster "2,3,4,5@52:68" \
//	    -out data.pmaf -truth truth.json
//
// gives the Table 3 data set: two 4-dimensional clusters. A cluster's
// extent applies to each of its dimensions; per-dimension extents use
// dims@lo:hi,lo:hi,...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
)

type clusterFlags []string

func (c *clusterFlags) String() string     { return strings.Join(*c, ";") }
func (c *clusterFlags) Set(v string) error { *c = append(*c, v); return nil }

func main() {
	var clusters clusterFlags
	var (
		dims    = flag.Int("dims", 10, "data dimensionality")
		records = flag.Int("records", 100000, "number of non-noise records")
		noise   = flag.Float64("noise", 0.10, "noise fraction added on top (negative = none)")
		seed    = flag.Uint64("seed", 1, "random seed (inversive congruential generator)")
		permute = flag.Bool("permute", false, "randomly permute dimension labels")
		out     = flag.String("out", "data.pmaf", "output path (.pmaf or .csv)")
		truthP  = flag.String("truth", "", "optional ground-truth JSON output path")
	)
	flag.Var(&clusters, "cluster", "cluster spec dims@lo:hi (repeatable)")
	flag.Parse()

	if err := run(*dims, *records, *noise, *seed, *permute, *out, *truthP, clusters); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dims, records int, noise float64, seed uint64, permute bool, out, truthPath string, clusters clusterFlags) error {
	spec := datagen.Spec{
		Dims:          dims,
		Records:       records,
		NoiseFraction: noise,
		Seed:          seed,
		PermuteDims:   permute,
	}
	if noise == 0 {
		spec.NoiseFraction = -1
	}
	for _, c := range clusters {
		cl, err := parseCluster(c)
		if err != nil {
			return err
		}
		spec.Clusters = append(spec.Clusters, cl)
	}
	m, truth, err := datagen.Generate(spec)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(out, ".csv"):
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, m, nil); err != nil {
			return err
		}
	default:
		if err := diskio.WriteSource(out, m); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d records x %d dims to %s\n", m.NumRecords(), m.Dims(), out)
	if truthPath != "" {
		data, err := json.MarshalIndent(truth, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(truthPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote ground truth to %s\n", truthPath)
	}
	return nil
}

// parseCluster parses dims@extents where dims is a comma list of ints
// and extents is either one lo:hi (applied to all dims) or a comma
// list of lo:hi pairs, one per dim.
func parseCluster(s string) (datagen.Cluster, error) {
	parts := strings.SplitN(s, "@", 2)
	if len(parts) != 2 {
		return datagen.Cluster{}, fmt.Errorf("cluster %q: want dims@lo:hi", s)
	}
	var cdims []int
	for _, ds := range strings.Split(parts[0], ",") {
		d, err := strconv.Atoi(strings.TrimSpace(ds))
		if err != nil {
			return datagen.Cluster{}, fmt.Errorf("cluster %q: bad dim %q", s, ds)
		}
		cdims = append(cdims, d)
	}
	exts := strings.Split(parts[1], ",")
	ranges := make([]dataset.Range, 0, len(cdims))
	parseExt := func(e string) (dataset.Range, error) {
		lohi := strings.SplitN(e, ":", 2)
		if len(lohi) != 2 {
			return dataset.Range{}, fmt.Errorf("cluster %q: bad extent %q", s, e)
		}
		lo, err1 := strconv.ParseFloat(lohi[0], 64)
		hi, err2 := strconv.ParseFloat(lohi[1], 64)
		if err1 != nil || err2 != nil {
			return dataset.Range{}, fmt.Errorf("cluster %q: bad extent %q", s, e)
		}
		return dataset.Range{Lo: lo, Hi: hi}, nil
	}
	switch len(exts) {
	case 1:
		r, err := parseExt(exts[0])
		if err != nil {
			return datagen.Cluster{}, err
		}
		for range cdims {
			ranges = append(ranges, r)
		}
	case len(cdims):
		for _, e := range exts {
			r, err := parseExt(e)
			if err != nil {
				return datagen.Cluster{}, err
			}
			ranges = append(ranges, r)
		}
	default:
		return datagen.Cluster{}, fmt.Errorf("cluster %q: %d extents for %d dims", s, len(exts), len(cdims))
	}
	return datagen.UniformBox(cdims, ranges, 0), nil
}
