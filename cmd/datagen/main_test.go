package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmafia/internal/diskio"
)

func TestParseClusterUniformExtent(t *testing.T) {
	cl, err := parseCluster("1,7,8,9@23:39")
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Dims) != 4 || cl.Dims[0] != 1 || cl.Dims[3] != 9 {
		t.Errorf("dims = %v", cl.Dims)
	}
	if len(cl.Boxes) != 1 || len(cl.Boxes[0]) != 4 {
		t.Fatalf("boxes = %v", cl.Boxes)
	}
	for _, r := range cl.Boxes[0] {
		if r.Lo != 23 || r.Hi != 39 {
			t.Errorf("extent = %v", r)
		}
	}
}

func TestParseClusterPerDimExtents(t *testing.T) {
	cl, err := parseCluster("0,5@10:20,30:40")
	if err != nil {
		t.Fatal(err)
	}
	b := cl.Boxes[0]
	if b[0].Lo != 10 || b[0].Hi != 20 || b[1].Lo != 30 || b[1].Hi != 40 {
		t.Errorf("extents = %v", b)
	}
}

func TestParseClusterErrors(t *testing.T) {
	bad := []string{
		"1,2",             // no extents
		"1,2@",            // empty extent
		"1,2@10",          // no colon
		"1,x@10:20",       // bad dim
		"1,2@10:20,30",    // ragged extents
		"1,2@a:b",         // non-numeric
		"1,2@1:2,3:4,5:6", // too many extents
	}
	for _, s := range bad {
		if _, err := parseCluster(s); err == nil {
			t.Errorf("parseCluster(%q): want error", s)
		}
	}
}

func TestRunWritesPmafAndTruth(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.pmaf")
	truth := filepath.Join(dir, "t.json")
	err := run(5, 1000, 0.1, 3, false, out, truth, clusterFlags{"0,2@10:30"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := diskio.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dims() != 5 || f.NumRecords() != 1100 {
		t.Errorf("file shape %dx%d", f.NumRecords(), f.Dims())
	}
	data, err := os.ReadFile(truth)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Clusters") {
		t.Errorf("truth JSON missing clusters: %s", data)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.csv")
	if err := run(3, 200, -1, 4, false, out, "", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 200 {
		t.Errorf("CSV has %d lines, want 200", lines)
	}
}
