// Command bench runs the tracked benchmark suite (internal/bench) and
// writes the report as JSON. The committed snapshot lives at
// BENCH_pr3.json in the repository root:
//
//	go run ./cmd/bench -out BENCH_pr3.json
//	go run ./cmd/bench -smoke -out /dev/null   # CI smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pmafia/internal/bench"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_pr3.json", "report output path")
		smoke   = flag.Bool("smoke", false, "run a seconds-long configuration (CI smoke)")
		records = flag.Int("records", 0, "override record count")
		chunk   = flag.Int("chunk", 0, "override chunk size (records per read)")
		workers = flag.Int("workers", 0, "override intra-rank pool size")
		repeats = flag.Int("repeats", 0, "override measurement repeats")
	)
	flag.Parse()

	o := bench.Options{Log: os.Stderr}
	o.Defaults()
	if *smoke {
		o.Smoke()
	}
	if *records > 0 {
		o.Records = *records
	}
	if *chunk > 0 {
		o.ChunkRecords = *chunk
	}
	if *workers > 0 {
		o.Workers = *workers
	}
	if *repeats > 0 {
		o.Repeats = *repeats
	}

	rep, err := bench.Run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: histogram single-rank speedup %.2fx, populate %.2fx -> %s\n",
		rep.HistogramSingleRankSpeedup, rep.PopulateSingleRankSpeedup, *out)
}
