// Command bench runs the tracked benchmark suite (internal/bench) —
// the engine throughput cells (including the batch-assign kernel
// cells at d=64 and 512 clusters) plus sustained-QPS serving load
// runs against an in-process pmafiad daemon — over CSV bodies, over
// the framed binary protocol with request coalescing, and with the
// served model hot-swapping generations under load — and
// writes the report as JSON. The committed snapshot lives at
// BENCH_pr8.json in the repository root:
//
//	go run ./cmd/bench -out BENCH_pr8.json
//	go run ./cmd/bench -smoke -out /dev/null   # CI smoke
//
// With -compare it diffs two report files instead of measuring, and
// exits non-zero when any matched cell regressed past the tolerance —
// throughput cells on records/sec, the load run on QPS and on the
// p50/p90/p99 latency percentiles (with one histogram bucket of
// grace) — the bench gate of scripts/check.sh:
//
//	go run ./cmd/bench -compare old.json new.json -tolerance 0.15
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"pmafia/internal/bench"
)

// runCompare is the -compare mode: diff two report files and gate.
// args are the remaining command-line words after the flags; Go's
// flag package stops at the first positional argument, so the ISSUE's
// canonical "-compare old.json new.json -tolerance 0.15" spelling
// leaves "-tolerance 0.15" in args — scan it by hand.
func runCompare(args []string, tolerance float64) int {
	var paths []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-tolerance", "--tolerance":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "bench: -tolerance needs a value")
				return 2
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: bad tolerance %q: %v\n", args[i+1], err)
				return 2
			}
			tolerance = v
			i++
		default:
			paths = append(paths, args[i])
		}
	}
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench -compare old.json new.json [-tolerance 0.15]")
		return 2
	}
	oldRep, err := bench.ReadReport(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	newRep, err := bench.ReadReport(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	c := bench.Compare(oldRep, newRep, tolerance)
	c.Table().Render(os.Stdout)
	for _, miss := range c.MissingInNew {
		fmt.Printf("note: %s only in %s (not gated)\n", miss, paths[0])
	}
	for _, miss := range c.MissingInOld {
		fmt.Printf("note: %s only in %s (not gated)\n", miss, paths[1])
	}
	if regs := c.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d cell(s) regressed past %.0f%% tolerance\n",
			len(regs), 100*tolerance)
		return 1
	}
	fmt.Printf("bench: no regressions across %d matched cell(s)\n", len(c.Rows))
	return 0
}

func main() {
	var (
		out         = flag.String("out", "BENCH_pr8.json", "report output path")
		smoke       = flag.Bool("smoke", false, "run a seconds-long configuration (CI smoke)")
		records     = flag.Int("records", 0, "override record count")
		chunk       = flag.Int("chunk", 0, "override chunk size (records per read)")
		workers     = flag.Int("workers", 0, "override intra-rank pool size")
		repeats     = flag.Int("repeats", 0, "override measurement repeats")
		loadFor     = flag.Duration("load", 5*time.Second, "serving load-run duration (0 skips the load run)")
		loadClients = flag.Int("load-clients", 0, "override concurrent load clients")
		compare     = flag.Bool("compare", false, "compare two report files instead of measuring")
		tolerance   = flag.Float64("tolerance", 0.15, "allowed fractional throughput drop in -compare mode")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance))
	}

	o := bench.Options{Log: os.Stderr}
	o.Defaults()
	if *smoke {
		o.Smoke()
	}
	if *records > 0 {
		o.Records = *records
	}
	if *chunk > 0 {
		o.ChunkRecords = *chunk
	}
	if *workers > 0 {
		o.Workers = *workers
	}
	if *repeats > 0 {
		o.Repeats = *repeats
	}

	rep, err := bench.Run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	if *loadFor > 0 {
		lo := bench.LoadOptions{Duration: *loadFor, Log: os.Stderr}
		lo.Defaults()
		if *smoke {
			lo.Smoke()
			lo.Duration = *loadFor
			if *loadFor > time.Second {
				lo.Duration = time.Second
			}
		}
		if *loadClients > 0 {
			lo.Clients = *loadClients
		}
		rep.Load, err = bench.RunLoad(lo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		lo.Trace = true
		rep.LoadTrace, err = bench.RunLoad(lo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		lo.Trace = false
		lo.Frame = true
		rep.LoadFrame, err = bench.RunLoad(lo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		lo.Frame = false
		lo.Swap = true
		rep.LoadSwap, err = bench.RunLoad(lo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: histogram single-rank speedup %.2fx, populate %.2fx, assign batch kernel %.2fx -> %s\n",
		rep.HistogramSingleRankSpeedup, rep.PopulateSingleRankSpeedup, rep.AssignBatchKernelSpeedup, *out)
}
