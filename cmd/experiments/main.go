// Command experiments regenerates the tables and figures of the
// paper's evaluation section on the simulated SP2 machine.
//
//	experiments                  # run everything at default (scaled-down) size
//	experiments -run table1      # one experiment
//	experiments -scale 10        # 10x more records
//	experiments -procs 1,2,4,8,16,32
//	experiments -csv out.csv     # also dump CSV series for plotting
//	experiments -json bench.json # machine-readable tables for diffing
//	experiments -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pmafia/internal/experiments"
	"pmafia/internal/sp2"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment id or 'all'")
		scale = flag.Float64("scale", 1, "record-count multiplier (~140 = paper scale)")
		seed  = flag.Uint64("seed", 0, "random seed (0 = default)")
		procs = flag.String("procs", "1,2,4,8,16", "comma list of machine sizes")
		mode  = flag.String("mode", "sim", "machine mode: sim or real")
		csvP  = flag.String("csv", "", "optional CSV output path")
		jsonP = flag.String("json", "", "optional machine-readable JSON output path")
		svgD  = flag.String("svg", "", "optional directory for figure SVGs")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	o := &experiments.Options{
		Scale:  *scale,
		Seed:   *seed,
		Out:    os.Stdout,
		SVGDir: *svgD,
	}
	switch *mode {
	case "sim":
		o.Mode = sp2.Sim
	case "real":
		o.Mode = sp2.Real
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	for _, ps := range strings.Split(*procs, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(ps))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "experiments: bad procs entry %q\n", ps)
			os.Exit(2)
		}
		o.Procs = append(o.Procs, p)
	}
	if *csvP != "" {
		f, err := os.Create(*csvP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		o.CSV = f
	}
	if *jsonP != "" {
		f, err := os.Create(*jsonP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		o.JSON = f
	}

	var err error
	if *run == "all" {
		err = experiments.RunAll(o)
	} else {
		err = experiments.RunOne(*run, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
