package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/mafia"
	"pmafia/internal/modelio"
)

// fitModel fits a small data set and saves it under dir, returning the
// model name, the fitted result, and the training data.
func fitModel(t *testing.T, dir, name string, seed uint64) (*mafia.Result, *dataset.Matrix) {
	t.Helper()
	ext := []dataset.Range{{Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}}
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:     5,
		Records:  2000,
		Clusters: []datagen.Cluster{datagen.UniformBox([]int{0, 2, 4}, ext, 0)},
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := modelio.Save(filepath.Join(dir, name), res); err != nil {
		t.Fatal(err)
	}
	return res, m
}

// startDaemon binds a daemon on a free port and returns its base URL
// plus a shutdown func.
func startDaemon(t *testing.T, cfg config) (*daemon, string) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.serveHTTP()
	return d, "http://" + d.addr()
}

func csvBody(m *dataset.Matrix) []byte {
	var b bytes.Buffer
	for i := 0; i < m.NumRecords(); i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

func postAssign(t *testing.T, base, model, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/assign?model="+model, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestAssignMatchesOracle(t *testing.T) {
	dir := t.TempDir()
	res, m := fitModel(t, dir, "a.pmfm", 1)
	d, base := startDaemon(t, config{modelDir: dir})
	defer d.shutdown(context.Background())

	want, err := res.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}

	// CSV in, JSON out.
	resp, raw := postAssign(t, base, "a.pmfm", "text/csv", csvBody(m))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var ar assignResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Records != len(want) {
		t.Fatalf("%d records labeled, want %d", ar.Records, len(want))
	}
	for i := range want {
		if ar.Labels[i] != want[i] {
			t.Fatalf("record %d: daemon %d, oracle %d", i, ar.Labels[i], want[i])
		}
	}

	// Binary in, binary out.
	bin := make([]byte, 8*len(m.Values))
	for i, v := range m.Values {
		binary.LittleEndian.PutUint64(bin[8*i:], math.Float64bits(v))
	}
	resp, raw = postAssign(t, base, "a.pmfm", "application/octet-stream", bin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary status %d: %s", resp.StatusCode, raw)
	}
	if len(raw) != 4*len(want) {
		t.Fatalf("binary reply of %d bytes for %d labels", len(raw), len(want))
	}
	for i := range want {
		if got := int32(binary.LittleEndian.Uint32(raw[4*i:])); got != want[i] {
			t.Fatalf("binary record %d: daemon %d, oracle %d", i, got, want[i])
		}
	}
}

func TestAssignErrors(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 2)
	if err := os.WriteFile(filepath.Join(dir, "bad.pmfm"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, base := startDaemon(t, config{modelDir: dir})
	defer d.shutdown(context.Background())

	resp, _ := postAssign(t, base, "missing.pmfm", "text/csv", []byte("1,2,3,4,5\n"))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing model: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postAssign(t, base, "..%2Fescape.pmfm", "text/csv", []byte("1\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("traversal: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postAssign(t, base, "bad.pmfm", "text/csv", []byte("1,2,3,4,5\n"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("corrupt model: status %d, want 422", resp.StatusCode)
	}
	// Wrong dimensionality is a client error.
	resp, raw := postAssign(t, base, "a.pmfm", "text/csv", []byte("1,2\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dims mismatch: status %d (%s), want 400", resp.StatusCode, raw)
	}
	// GET on /assign is rejected.
	getResp, err := http.Get(base + "/assign?model=a.pmfm")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /assign: status %d, want 405", getResp.StatusCode)
	}
}

func TestModelsAndCacheLRU(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 3)
	fitModel(t, dir, "b.pmfm", 4)
	fitModel(t, dir, "c.pmfm", 5)
	d, base := startDaemon(t, config{modelDir: dir, cacheCap: 2})
	defer d.shutdown(context.Background())

	row := []byte("1,2,3,4,5\n")
	for _, name := range []string{"a.pmfm", "b.pmfm", "c.pmfm", "a.pmfm"} {
		if resp, raw := postAssign(t, base, name, "text/csv", row); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, raw)
		}
	}
	// Cap 2: a evicted by c, so the fourth request misses again.
	hits, misses := counterPair(t, base)
	if misses != 4 || hits != 0 {
		t.Errorf("hit/miss = %d/%d after a,b,c,a with cap 2; want 0/4", hits, misses)
	}
	if resp, _ := postAssign(t, base, "a.pmfm", "text/csv", row); resp.StatusCode != http.StatusOK {
		t.Fatal("re-assign against a failed")
	}
	if hits, _ := counterPair(t, base); hits != 1 {
		t.Errorf("hits = %d after repeat, want 1", hits)
	}

	resp, err := http.Get(base + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var infos []modelInfo
	err = json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("/models lists %d entries, want 3", len(infos))
	}
	loaded := 0
	for _, in := range infos {
		if in.Loaded {
			loaded++
			if in.Dims != 5 {
				t.Errorf("%s: dims %d, want 5", in.Name, in.Dims)
			}
		}
	}
	if loaded != 2 {
		t.Errorf("%d models resident, cache cap is 2", loaded)
	}
}

// TestCacheHitDuringPendingLoad reproduces the publish-before-load
// window: a cache entry is visible before its loader has run. A hit in
// that window must run the load itself (or block on it), never return
// an unloaded model — the pre-fix code consumed the sync.Once with a
// no-op and came back with a nil index and a nil error.
func TestCacheHitDuringPendingLoad(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 8)
	d, _ := startDaemon(t, config{modelDir: dir})
	defer d.shutdown(context.Background())

	path := filepath.Join(dir, "a.pmfm")
	m := newModel(path)
	d.mu.Lock()
	d.cache[path] = d.lru.PushFront(&cacheSlot{path: path, m: m})
	d.mu.Unlock()

	got, err := d.get(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ix == nil {
		t.Fatal("cache hit returned a model that was never loaded")
	}
	// A pending entry must not be reported as loaded, and must not be
	// pinned unloadable: after the hit it serves /models info.
	if !got.loaded() {
		t.Error("model not marked loaded after a hit-driven load")
	}
}

// TestAssignShedsLoad verifies an overloaded daemon returns 503 while
// the client is still connected instead of queueing until a timeout.
func TestAssignShedsLoad(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 9)
	d, base := startDaemon(t, config{modelDir: dir, inflight: 1})
	defer d.shutdown(context.Background())

	d.sem <- struct{}{} // occupy the only in-flight slot
	defer func() { <-d.sem }()
	start := time.Now()
	resp, raw := postAssign(t, base, "a.pmfm", "text/csv", []byte("1,2,3,4,5\n"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, raw)
	}
	if wait := time.Since(start); wait > 10*queueWait {
		t.Errorf("503 took %v; load shedding should answer in about %v", wait, queueWait)
	}
}

// TestAssignBodyTooLarge verifies an oversized body maps to 413, not a
// generic 400.
func TestAssignBodyTooLarge(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 10)
	d, base := startDaemon(t, config{modelDir: dir, maxBody: 64})
	defer d.shutdown(context.Background())

	// Keep the oversize modest so the request fits in socket buffers
	// and the client always reads the reply cleanly.
	big := bytes.Repeat([]byte("1,2,3,4,5\n"), 20)
	resp, raw := postAssign(t, base, "a.pmfm", "text/csv", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("csv: status %d (%s), want 413", resp.StatusCode, raw)
	}
	resp, raw = postAssign(t, base, "a.pmfm", "application/octet-stream", make([]byte, 200))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("binary: status %d (%s), want 413", resp.StatusCode, raw)
	}
}

// counterPair scrapes /metrics for the assign cache counters.
func counterPair(t *testing.T, base string) (hits, misses int64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, "pmafia_assign_cache_hit %d", &v); err == nil {
			hits = v
		}
		if _, err := fmt.Sscanf(line, "pmafia_assign_cache_miss %d", &v); err == nil {
			misses = v
		}
	}
	return hits, misses
}

// TestConcurrentAssignAndScrape hammers /assign, /metrics, and
// /models from concurrent clients (run under -race in make check) and
// then verifies shutdown leaks no goroutines.
func TestConcurrentAssignAndScrape(t *testing.T) {
	dir := t.TempDir()
	res, m := fitModel(t, dir, "a.pmfm", 6)
	fitModel(t, dir, "b.pmfm", 7)
	before := runtime.NumGoroutine()
	d, base := startDaemon(t, config{modelDir: dir, cacheCap: 1, inflight: 4, workers: 2})

	want, err := res.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := csvBody(m)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	const iters = 15
	for c := 0; c < 3; c++ {
		wg.Add(3)
		go func(c int) { // assign clients, alternating models to churn the LRU
			defer wg.Done()
			name := "a.pmfm"
			if c%2 == 1 {
				name = "b.pmfm"
			}
			for i := 0; i < iters; i++ {
				resp, err := http.Post(base+"/assign?model="+name, "text/csv", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("assign %s: status %d: %s", name, resp.StatusCode, raw)
					return
				}
				if name == "a.pmfm" {
					var ar assignResponse
					if err := json.Unmarshal(raw, &ar); err != nil {
						errs <- err
						return
					}
					for j := range want {
						if ar.Labels[j] != want[j] {
							errs <- fmt.Errorf("iter %d record %d: %d vs %d", i, j, ar.Labels[j], want[j])
							return
						}
					}
				}
			}
		}(c)
		go func() { // metrics scrapers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		go func() { // model listers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(base + "/models")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	// Goroutines wind down asynchronously after Shutdown returns; poll
	// briefly before declaring a leak.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before || time.Now().After(deadline) {
			if g > before+2 {
				buf := make([]byte, 1<<16)
				t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s", before, g, buf[:runtime.Stack(buf, true)])
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}
