// Command pmafiad serves saved clustering models for batch record
// assignment. Models are the files cmd/pmafia writes with -save-model;
// the daemon keeps an LRU-capped set of them compiled into assignment
// indexes and labels request bodies against them. Served models are
// hot-swapped: when a model file is rewritten on disk, a rate-limited
// freshness check (-swap-check) recompiles it off the request path and
// atomically swaps the new generation in without dropping traffic.
// With -ingest-model the daemon additionally accepts streamed records
// on POST /ingest and refits that model in place (-refit-every, or on
// demand with ?refit=1), feeding the same swap path. The endpoint set,
// instrumentation, and shutdown semantics live in internal/daemon —
// this command is the flag surface around it.
//
// Usage:
//
//	pmafiad -models ./models [-addr :8080] [flags]
//
// Every request carries an X-Request-ID, lands in the per-route and
// per-model latency histograms exposed at /metrics, and emits one
// structured JSON access-log line (-access-log, default stderr). The
// slowest requests are inspectable at /debug/slow; -pprof mounts
// net/http/pprof under /debug/pprof/. With -trace-sample every
// request builds a per-stage trace — head-sampled into a bounded
// ring, with slow and non-2xx requests always retained — served as
// Chrome trace_event JSON at /debug/trace and linked from /metrics
// as OpenMetrics exemplars; -profile-dir adds periodic CPU/heap
// pprof captures indexed at /debug/profiles. The daemon bounds concurrent
// assignment work (-max-inflight), times out slow requests (-timeout),
// caps request bodies (-max-body), and shuts down gracefully on
// SIGINT/SIGTERM: /readyz flips to 503, in-flight requests drain, and
// the access log is flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmafia/internal/daemon"
)

func main() {
	var cfg daemon.Config
	var accessLog string
	flag.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.ModelDir, "models", "", "directory holding .pmfm model files (required)")
	flag.IntVar(&cfg.CacheCap, "cache", 4, "max models resident at once (LRU eviction)")
	flag.DurationVar(&cfg.Timeout, "timeout", 30*time.Second, "per-request read/write timeout")
	flag.IntVar(&cfg.Inflight, "max-inflight", 8, "max concurrent /assign requests")
	flag.IntVar(&cfg.Chunk, "chunk", 8192, "records per assignment batch")
	flag.IntVar(&cfg.Workers, "workers", 1, "goroutines fanning out each assignment request")
	flag.Int64Var(&cfg.MaxBody, "max-body", 1<<30, "request body cap in bytes")
	flag.DurationVar(&cfg.CoalesceWindow, "coalesce", 0, "flush window for coalescing small framed /assign requests (0 disables)")
	flag.IntVar(&cfg.CoalesceMax, "coalesce-max", 512, "largest framed request (records) eligible for coalescing")
	flag.DurationVar(&cfg.SwapCheck, "swap-check", time.Second, "min interval between on-disk freshness checks of a served model (negative disables hot swap)")
	flag.StringVar(&cfg.IngestModel, "ingest-model", "", "model file name (inside -models) maintained by POST /ingest (empty disables streaming ingest)")
	flag.IntVar(&cfg.IngestDims, "ingest-dims", 0, "dimensionality of the ingest stream (required with -ingest-model)")
	flag.IntVar(&cfg.RefitEvery, "refit-every", 0, "pending ingest records that trigger a background refit (0: explicit ?refit=1 only)")
	flag.StringVar(&accessLog, "access-log", "-", `access-log destination: "-" for stderr, "" to disable, or a file path (appended)`)
	flag.IntVar(&cfg.SlowN, "slow", 16, "slowest requests kept for /debug/slow")
	flag.BoolVar(&cfg.Pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Float64Var(&cfg.TraceSample, "trace-sample", 0, "request-trace head-sampling rate in (0,1]; slow and non-2xx requests are always retained; 0 disables tracing")
	flag.IntVar(&cfg.TraceRing, "trace-ring", 64, "retained traces per class (sampled / error / slow) for /debug/trace")
	flag.StringVar(&cfg.ProfileDir, "profile-dir", "", "directory for continuous CPU/heap pprof captures (empty disables)")
	flag.DurationVar(&cfg.ProfileInterval, "profile-interval", time.Minute, "sleep between continuous-profiling capture cycles")
	flag.DurationVar(&cfg.ProfileCPU, "profile-cpu", 5*time.Second, "length of each continuous CPU capture")
	flag.IntVar(&cfg.ProfileKeep, "profile-keep", 16, "continuous-profiling captures kept on disk per kind")
	flag.Parse()
	if cfg.ModelDir == "" {
		fmt.Fprintln(os.Stderr, "usage: pmafiad -models <dir> [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var logFile io.Closer
	switch accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		f, err := os.OpenFile(accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmafiad:", err)
			os.Exit(1)
		}
		cfg.AccessLog = f
		logFile = f
	}
	d, err := daemon.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmafiad:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pmafiad: serving models from %s on http://%s\n", cfg.ModelDir, d.Addr())
	d.Serve()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "pmafiad: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = d.Shutdown(sctx)
	if logFile != nil {
		if cerr := logFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmafiad:", err)
		os.Exit(1)
	}
}
