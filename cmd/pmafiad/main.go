// Command pmafiad serves saved clustering models for batch record
// assignment. Models are the files cmd/pmafia writes with -save-model;
// the daemon keeps an LRU-capped set of them compiled into assignment
// indexes and labels request bodies against them.
//
// Usage:
//
//	pmafiad -models ./models [-addr :8080] [flags]
//
// Endpoints:
//
//	POST /assign?model=<name>.pmfm
//	     Body: CSV records (default; numeric columns, optional
//	     header), answered with JSON labels — or, with Content-Type
//	     application/octet-stream, row-major little-endian float64s,
//	     answered with little-endian int32 labels. A label is the
//	     cluster index in the model's cluster list, -1 for outliers.
//	GET  /models    JSON listing of the model directory with
//	                residency info.
//	GET  /metrics   Prometheus text exposition (the shared obs
//	                handler): assign.records, assign.batches,
//	                assign.cache.hit/miss.
//	GET  /healthz   liveness probe.
//
// The daemon bounds concurrent assignment work (-max-inflight), times
// out slow requests (-timeout), caps request bodies (-max-body), and
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests first.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.modelDir, "models", "", "directory holding .pmfm model files (required)")
	flag.IntVar(&cfg.cacheCap, "cache", 4, "max models resident at once (LRU eviction)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request read/write timeout")
	flag.IntVar(&cfg.inflight, "max-inflight", 8, "max concurrent /assign requests")
	flag.IntVar(&cfg.chunk, "chunk", 8192, "records per assignment batch")
	flag.IntVar(&cfg.workers, "workers", 1, "goroutines fanning out each assignment request")
	flag.Int64Var(&cfg.maxBody, "max-body", 1<<30, "request body cap in bytes")
	flag.Parse()
	if cfg.modelDir == "" {
		fmt.Fprintln(os.Stderr, "usage: pmafiad -models <dir> [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	d, err := newDaemon(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmafiad:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pmafiad: serving models from %s on http://%s\n", cfg.modelDir, d.addr())
	d.serveHTTP()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "pmafiad: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "pmafiad:", err)
		os.Exit(1)
	}
}
