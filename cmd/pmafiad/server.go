package main

import (
	"container/list"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pmafia/internal/assign"
	"pmafia/internal/dataset"
	"pmafia/internal/modelio"
	"pmafia/internal/obs"
	"pmafia/internal/obs/serve"
)

// queueWait bounds how long an /assign request may wait for an
// in-flight slot before the daemon sheds it with a 503.
const queueWait = 100 * time.Millisecond

// config parameterizes the daemon.
type config struct {
	addr     string        // listen address
	modelDir string        // directory the served models live in
	cacheCap int           // max models resident at once
	timeout  time.Duration // per-request read/write timeout
	inflight int           // max concurrent /assign requests
	chunk    int           // records per assignment batch
	workers  int           // fan-out goroutines per assignment
	maxBody  int64         // request body cap in bytes
}

func (c *config) fill() {
	if c.cacheCap < 1 {
		c.cacheCap = 4
	}
	if c.timeout <= 0 {
		c.timeout = 30 * time.Second
	}
	if c.inflight < 1 {
		c.inflight = 8
	}
	if c.chunk < 1 {
		c.chunk = 8192
	}
	if c.workers < 1 {
		c.workers = 1
	}
	if c.maxBody <= 0 {
		c.maxBody = 1 << 30
	}
}

// model is one cache entry: loaded at most once, shared by every
// request that names it. The index is immutable and safe to share;
// each request brings its own scratch.
type model struct {
	path string
	once sync.Once
	done chan struct{} // closed when load has run
	ix   *assign.Index
	n    int // records the model was fitted on
	err  error
}

func newModel(path string) *model {
	return &model{path: path, done: make(chan struct{})}
}

// load reads the model file and compiles the assignment index. It is
// only ever invoked through m.once.
func (m *model) load() {
	defer close(m.done)
	res, err := modelio.Load(m.path)
	if err != nil {
		m.err = err
		return
	}
	m.ix, m.err = assign.New(res.Grid, res.Clusters)
	m.n = res.N
}

// ensure runs the load exactly once — whichever caller gets here first
// does the work; the rest block until it finishes. Every path goes
// through the same closure, so a cache hit can never consume the Once
// with a no-op and leave the entry unloaded.
func (m *model) ensure() error {
	m.once.Do(m.load)
	return m.err
}

// loaded reports, without blocking or triggering a load, whether the
// model finished loading successfully.
func (m *model) loaded() bool {
	select {
	case <-m.done:
		return m.err == nil && m.ix != nil
	default:
		return false
	}
}

// daemon serves saved models for batch assignment.
type daemon struct {
	cfg config
	rec *obs.Recorder
	sem chan struct{} // bounds in-flight /assign work

	mu    sync.Mutex
	cache map[string]*list.Element // resolved path -> entry
	lru   *list.List               // front = most recent; values are *cacheSlot

	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

type cacheSlot struct {
	path string
	m    *model
}

// newDaemon builds a daemon and binds its listener (addr ":0" picks a
// free port); call serveHTTP to start handling requests.
func newDaemon(cfg config) (*daemon, error) {
	cfg.fill()
	if cfg.modelDir == "" {
		return nil, errors.New("pmafiad: a model directory is required")
	}
	st, err := os.Stat(cfg.modelDir)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("pmafiad: %s is not a directory", cfg.modelDir)
	}
	d := &daemon{
		cfg:   cfg,
		rec:   obs.New(),
		sem:   make(chan struct{}, cfg.inflight),
		cache: make(map[string]*list.Element),
		lru:   list.New(),
		done:  make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", d.healthz)
	mux.HandleFunc("/models", d.models)
	mux.HandleFunc("/assign", d.assign)
	// The telemetry exposition is the shared obs handler; the daemon's
	// assignment counters surface there alongside any engine counters.
	mux.Handle("/metrics", serve.Handler(d.rec))
	d.srv = &http.Server{
		Handler:           mux,
		ReadTimeout:       cfg.timeout,
		WriteTimeout:      cfg.timeout,
		ReadHeaderTimeout: 5 * time.Second,
	}
	d.ln, err = net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// addr returns the bound listen address.
func (d *daemon) addr() string { return d.ln.Addr().String() }

// serveHTTP runs the server in a background goroutine.
func (d *daemon) serveHTTP() {
	go func() {
		defer close(d.done)
		d.srv.Serve(d.ln) // http.ErrServerClosed on shutdown
	}()
}

// shutdown drains in-flight requests and stops the serve goroutine.
func (d *daemon) shutdown(ctx context.Context) error {
	err := d.srv.Shutdown(ctx)
	<-d.done
	return err
}

// resolve maps a request's model name to a path inside the model
// directory, rejecting traversal outside it.
func (d *daemon) resolve(name string) (string, error) {
	if name == "" {
		return "", errors.New("missing ?model=")
	}
	if strings.Contains(name, "..") || strings.ContainsAny(name, `/\`) {
		return "", fmt.Errorf("model name %q escapes the model directory", name)
	}
	return filepath.Join(d.cfg.modelDir, name), nil
}

// get returns the cached (or freshly loaded) model for path, updating
// the LRU order and the hit/miss counters.
func (d *daemon) get(path string) (*model, error) {
	d.mu.Lock()
	if el, ok := d.cache[path]; ok {
		d.lru.MoveToFront(el)
		d.mu.Unlock()
		d.rec.Add(0, obs.CtrAssignCacheHit, 1)
		m := el.Value.(*cacheSlot).m
		if err := m.ensure(); err != nil {
			d.evict(path, el)
			return m, err
		}
		return m, nil
	}
	m := newModel(path)
	el := d.lru.PushFront(&cacheSlot{path: path, m: m})
	d.cache[path] = el
	for d.lru.Len() > d.cfg.cacheCap {
		old := d.lru.Back()
		d.lru.Remove(old)
		delete(d.cache, old.Value.(*cacheSlot).path)
	}
	d.mu.Unlock()
	d.rec.Add(0, obs.CtrAssignCacheMiss, 1)

	if err := m.ensure(); err != nil {
		d.evict(path, el)
		return m, err
	}
	return m, nil
}

// evict drops a failed load from the cache so the entry is not pinned:
// the file may be replaced (atomically, by modelio.Save) and should
// reload. The identity check keeps a racing re-insert for the same
// path alive.
func (d *daemon) evict(path string, el *list.Element) {
	d.mu.Lock()
	if el2, ok := d.cache[path]; ok && el2 == el {
		d.lru.Remove(el)
		delete(d.cache, path)
	}
	d.mu.Unlock()
}

func (d *daemon) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// modelInfo is one row of the /models listing.
type modelInfo struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	Loaded bool   `json:"loaded"`
	// Filled only when the model is resident.
	Dims     int `json:"dims,omitempty"`
	Clusters int `json:"clusters,omitempty"`
	Records  int `json:"records,omitempty"`
}

func (d *daemon) models(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	ents, err := os.ReadDir(d.cfg.modelDir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resident := map[string]*model{}
	d.mu.Lock()
	for path, el := range d.cache {
		resident[path] = el.Value.(*cacheSlot).m
	}
	d.mu.Unlock()
	out := []modelInfo{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pmfm") {
			continue
		}
		info := modelInfo{Name: e.Name()}
		if fi, err := e.Info(); err == nil {
			info.Bytes = fi.Size()
		}
		if m, ok := resident[filepath.Join(d.cfg.modelDir, e.Name())]; ok && m.loaded() {
			info.Loaded = true
			info.Dims = m.ix.Dims()
			info.Clusters = m.ix.Clusters()
			info.Records = m.n
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// assignResponse is the JSON reply for CSV requests.
type assignResponse struct {
	Model    string  `json:"model"`
	Records  int     `json:"records"`
	Outliers int     `json:"outliers"`
	Labels   []int32 `json:"labels"`
}

// assign labels the records in the request body against the named
// model. A text/csv body (the default) yields a JSON response; an
// application/octet-stream body of little-endian float64s (row-major,
// the model's dimensionality) yields a stream of little-endian int32
// labels.
func (d *daemon) assign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Shed load while the client is still listening: a brief queue wait
	// absorbs bursts, then 503 instead of stalling until ReadTimeout.
	queue := time.NewTimer(queueWait)
	defer queue.Stop()
	select {
	case d.sem <- struct{}{}:
		defer func() { <-d.sem }()
	case <-queue.C:
		http.Error(w, "server busy", http.StatusServiceUnavailable)
		return
	case <-r.Context().Done():
		// Client gave up while queued; nothing useful to write.
		return
	}
	path, err := d.resolve(r.URL.Query().Get("model"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := d.get(path)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, os.ErrNotExist) {
			code = http.StatusNotFound
		} else if errors.Is(err, modelio.ErrCorrupt) {
			code = http.StatusUnprocessableEntity
		}
		http.Error(w, err.Error(), code)
		return
	}

	body := http.MaxBytesReader(w, r.Body, d.cfg.maxBody)
	binaryIn := strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream")
	var src dataset.Source
	if binaryIn {
		src, err = binaryMatrix(body, m.ix.Dims())
	} else {
		src, _, err = dataset.ReadCSV(body)
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.As(err, new(*http.MaxBytesError)) {
			code = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), code)
		return
	}
	labels, err := m.ix.AssignSource(src, d.cfg.chunk, d.cfg.workers)
	if err != nil {
		// The only AssignSource failure on an in-memory source is a
		// dimensionality mismatch — a client error.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d.rec.Add(0, obs.CtrAssignRecords, int64(len(labels)))
	d.rec.Add(0, obs.CtrAssignBatches, 1)

	if binaryIn {
		w.Header().Set("Content-Type", "application/octet-stream")
		buf := make([]byte, 4*len(labels))
		for i, l := range labels {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(l))
		}
		w.Write(buf)
		return
	}
	resp := assignResponse{
		Model:   filepath.Base(path),
		Records: len(labels),
		Labels:  labels,
	}
	for _, l := range labels {
		if l < 0 {
			resp.Outliers++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// binaryMatrix decodes a row-major little-endian float64 body into an
// in-memory matrix of d-dimensional records.
func binaryMatrix(r io.Reader, d int) (*dataset.Matrix, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("binary body of %d bytes is not a whole number of float64s", len(raw))
	}
	vals := make([]float64, len(raw)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	if len(vals)%d != 0 {
		return nil, fmt.Errorf("%d values do not divide into %d-dim records", len(vals), d)
	}
	return &dataset.Matrix{D: d, Values: vals}, nil
}
