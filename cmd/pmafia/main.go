// Command pmafia clusters a data set with pMAFIA (or the CLIQUE
// baseline) and prints the discovered clusters as minimal DNF
// expressions.
//
// Usage:
//
//	pmafia [flags] <input>
//
// The input is a CSV file (numeric columns, optional header) or a
// .pmaf binary record file produced by cmd/datagen. Examples:
//
//	pmafia data.csv
//	pmafia -alpha 2 -procs 8 data.pmaf
//	pmafia -clique -bins 10 -tau 0.01 data.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmafia/internal/clique"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/grid"
	"pmafia/internal/mafia"
	"pmafia/internal/sp2"
)

func main() {
	var (
		alpha     = flag.Float64("alpha", 1.5, "density deviation factor α (pMAFIA)")
		beta      = flag.Float64("beta", 50, "adaptive-grid merge threshold β in percent (pMAFIA)")
		procs     = flag.Int("procs", 1, "processors of the simulated machine")
		mode      = flag.String("mode", "sim", "machine mode: sim (virtual time) or real (concurrent)")
		chunk     = flag.Int("chunk", 8192, "records per out-of-core read (B)")
		useClique = flag.Bool("clique", false, "run the CLIQUE baseline instead of pMAFIA")
		bins      = flag.Int("bins", 10, "bins per dimension ξ (CLIQUE)")
		tau       = flag.Float64("tau", 0.01, "global density threshold τ as a fraction of N (CLIQUE)")
		levels    = flag.Bool("levels", false, "print per-level candidate/dense unit counts")
		verbose   = flag.Bool("v", false, "print per-cluster DNF expressions in full")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pmafia [flags] <input.csv|input.pmaf>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *alpha, *beta, *procs, *mode, *chunk, *useClique, *bins, *tau, *levels, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "pmafia:", err)
		os.Exit(1)
	}
}

func run(path string, alpha, beta float64, procs int, mode string, chunk int, useClique bool, bins int, tau float64, levels, verbose bool) error {
	src, domains, err := open(path)
	if err != nil {
		return err
	}
	mcfg := sp2.Config{Procs: procs}
	switch mode {
	case "sim":
		mcfg.Mode = sp2.Sim
	case "real":
		mcfg.Mode = sp2.Real
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	shards := shardSource(src, procs)

	var res *mafia.Result
	if useClique {
		res, err = clique.RunParallel(shards, domains, clique.Config{Bins: bins, Tau: tau, ChunkRecords: chunk}, mcfg)
	} else {
		cfg := mafia.Config{
			Adaptive:     grid.AdaptiveParams{Alpha: alpha, BetaPercent: beta},
			ChunkRecords: chunk,
		}
		res, err = mafia.RunParallel(shards, domains, cfg, mcfg)
	}
	if err != nil {
		return err
	}

	fmt.Printf("%d records, %d dimensions, %d processors: %.3fs (comm %.4fs)\n",
		res.N, len(res.Grid.Dims), procs, res.Seconds, res.Report.CommSeconds)
	if levels {
		for _, l := range res.Levels {
			fmt.Printf("  level %d: %d raw CDUs, %d unique, %d dense\n", l.K, l.NcduRaw, l.Ncdu, l.Ndu)
		}
	}
	fmt.Printf("%d cluster(s) discovered:\n", len(res.Clusters))
	for i, c := range res.Clusters {
		dims := make([]string, len(c.Dims))
		for j, d := range c.Dims {
			dims[j] = fmt.Sprint(d)
		}
		fmt.Printf("  #%d dims {%s}, %d dense units, %d boxes\n", i+1, strings.Join(dims, ","), c.Units.Len(), len(c.Boxes))
		if verbose {
			fmt.Printf("     %s\n", c.DNF(res.Grid))
		} else {
			for j, b := range c.Bounds(res.Grid) {
				fmt.Printf("     d%s ∈ %v\n", dims[j], b)
			}
		}
	}
	return nil
}

// open loads the input as a record file or CSV and returns the source
// plus its domains (nil when they must be discovered).
func open(path string) (dataset.Source, []dataset.Range, error) {
	if strings.HasSuffix(path, ".pmaf") {
		f, err := diskio.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Domains(), nil
	}
	fh, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fh.Close()
	m, _, err := dataset.ReadCSV(fh)
	if err != nil {
		return nil, nil, err
	}
	return m, nil, nil
}

// shardSource splits the source for parallel runs. In-memory matrices
// are sliced; record files are range-scanned per rank via staging-free
// ScanRange shards.
func shardSource(src dataset.Source, p int) []dataset.Source {
	if p <= 1 {
		return []dataset.Source{src}
	}
	out := make([]dataset.Source, p)
	switch s := src.(type) {
	case *dataset.Matrix:
		n := s.NumRecords()
		for r := 0; r < p; r++ {
			lo, hi := diskio.ShareBounds(n, r, p)
			out[r] = s.Slice(lo, hi)
		}
	case *diskio.File:
		n := s.NumRecords()
		for r := 0; r < p; r++ {
			lo, hi := diskio.ShareBounds(n, r, p)
			out[r] = &fileRange{f: s, lo: lo, hi: hi}
		}
	default:
		for r := 0; r < p; r++ {
			out[r] = src
		}
	}
	return out
}

// fileRange adapts a contiguous record range of a file to Source.
type fileRange struct {
	f      *diskio.File
	lo, hi int
}

func (r *fileRange) Dims() int       { return r.f.Dims() }
func (r *fileRange) NumRecords() int { return r.hi - r.lo }
func (r *fileRange) Scan(chunk int) dataset.Scanner {
	return r.f.ScanRange(r.lo, r.hi, chunk)
}
