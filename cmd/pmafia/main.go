// Command pmafia clusters a data set with pMAFIA (or the CLIQUE
// baseline) and prints the discovered clusters as minimal DNF
// expressions.
//
// Usage:
//
//	pmafia [flags] <input>
//
// The input is a CSV file (numeric columns, optional header) or a
// .pmaf binary record file produced by cmd/datagen. Examples:
//
//	pmafia data.csv
//	pmafia -alpha 2 -procs 8 data.pmaf
//	pmafia -clique -bins 10 -tau 0.01 data.csv
//	pmafia -procs 8 -trace trace.json -metrics metrics.json data.pmaf
//
// With -trace the run writes a Chrome trace_event file (open it in
// chrome://tracing or Perfetto: one track per rank, one span per engine
// phase, flow arrows for the modeled collective messages); -metrics
// writes the flat counters and per-phase aggregates as JSON; -pprof
// serves net/http/pprof on the given address for the duration of the
// run; -critical-path prints the per-phase/per-rank "why not faster"
// attribution after the run (exact in Sim mode); -telemetry serves
// live /metrics (Prometheus text), /phase (JSON), and /healthz on the
// given address while the run executes.
//
// With -ckpt-dir the fit writes a checkpoint after each completed
// lattice level and recoverable failures (rank crash, panic, detected
// stall) are retried from the latest good checkpoint up to
// -max-restarts times with -restart-backoff capped exponential
// backoff; -resume continues a previous process's fit from its
// checkpoint directory. Exit codes:
//
//	0  the fit completed without any restart or resume
//	1  unrecoverable failure (bad input, I/O error, cancellation, or a
//	   rank failure with no restart budget)
//	2  usage error
//	3  the fit completed, but only after restarting or resuming from a
//	   checkpoint (success, flagged so operators notice the recovery)
//	4  the fit kept failing recoverably until -max-restarts ran out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pmafia/internal/ckpt"
	"pmafia/internal/clique"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/faults"
	"pmafia/internal/grid"
	"pmafia/internal/mafia"
	"pmafia/internal/modelio"
	"pmafia/internal/obs"
	"pmafia/internal/obs/serve"
	"pmafia/internal/sp2"
	"pmafia/internal/supervisor"
	"pmafia/internal/tabular"
)

// options collects every flag of the command.
type options struct {
	alpha, beta float64
	procs       int
	mode        string
	chunk       int
	workers     int
	prefetch    bool
	useClique   bool
	bins        int
	tau         float64
	levels      bool
	verbose     bool
	tracePath   string
	metricsPath string
	pprofAddr   string
	faultSpec   string
	collTimeout time.Duration
	critPath    bool
	telemetry   string
	saveModel   string

	ckptDir        string
	resume         bool
	maxRestarts    int
	restartBackoff time.Duration
}

func main() {
	var o options
	flag.Float64Var(&o.alpha, "alpha", 1.5, "density deviation factor α (pMAFIA)")
	flag.Float64Var(&o.beta, "beta", 50, "adaptive-grid merge threshold β in percent (pMAFIA)")
	flag.IntVar(&o.procs, "procs", 1, "processors of the simulated machine")
	flag.StringVar(&o.mode, "mode", "sim", "machine mode: sim (virtual time) or real (concurrent)")
	flag.IntVar(&o.chunk, "chunk", 8192, "records per out-of-core read (B)")
	flag.IntVar(&o.workers, "workers", 1, "intra-rank worker goroutines sharding each chunk's records")
	flag.BoolVar(&o.prefetch, "prefetch", false, "overlap disk reads with compute via a double-buffered prefetcher (.pmaf inputs)")
	flag.BoolVar(&o.useClique, "clique", false, "run the CLIQUE baseline instead of pMAFIA")
	flag.IntVar(&o.bins, "bins", 10, "bins per dimension ξ (CLIQUE)")
	flag.Float64Var(&o.tau, "tau", 0.01, "global density threshold τ as a fraction of N (CLIQUE)")
	flag.BoolVar(&o.levels, "levels", false, "print per-level counts and the per-collective breakdown")
	flag.BoolVar(&o.verbose, "v", false, "print per-cluster DNF expressions in full")
	flag.StringVar(&o.tracePath, "trace", "", "write a Chrome trace_event JSON file (one track per rank)")
	flag.StringVar(&o.metricsPath, "metrics", "", "write flat metrics JSON (counters + per-phase aggregates)")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.BoolVar(&o.critPath, "critical-path", false, "print the critical-path attribution (\"why not faster\") after the run")
	flag.StringVar(&o.telemetry, "telemetry", "", "serve live telemetry on this address (/metrics, /phase, /healthz) for the duration of the run")
	flag.StringVar(&o.saveModel, "save-model", "", "persist the fitted model (grid, clusters, level stats) to this path for serving with pmafiad")
	flag.StringVar(&o.faultSpec, "faults", "", `inject deterministic faults, e.g. "crash:rank=1,coll=3;readerr:chunk=2,times=5" (see internal/faults)`)
	flag.DurationVar(&o.collTimeout, "coll-timeout", 0, "declare a rank failed after it misses a collective for this long (0: no detection; defaults to 30s when -faults is set)")
	flag.StringVar(&o.ckptDir, "ckpt-dir", "", "write a checkpoint after each completed level into this directory, and restart failed fits from the latest good one")
	flag.BoolVar(&o.resume, "resume", false, "resume from the latest valid checkpoint in -ckpt-dir before fitting")
	flag.IntVar(&o.maxRestarts, "max-restarts", 0, "retry a recoverably-failed fit up to this many times (from the latest checkpoint when -ckpt-dir is set)")
	flag.DurationVar(&o.restartBackoff, "restart-backoff", 100*time.Millisecond, "delay before the first restart, doubling per restart (capped at 10s)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pmafia [flags] <input.csv|input.pmaf>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if _, err := faults.Parse(o.faultSpec); err != nil {
		fmt.Fprintln(os.Stderr, "pmafia: -faults:", err)
		os.Exit(2)
	}
	if o.resume && o.ckptDir == "" {
		fmt.Fprintln(os.Stderr, "pmafia: -resume requires -ckpt-dir")
		os.Exit(2)
	}
	if o.maxRestarts < 0 {
		fmt.Fprintln(os.Stderr, "pmafia: -max-restarts must be >= 0")
		os.Exit(2)
	}
	if o.useClique && (o.ckptDir != "" || o.resume || o.maxRestarts > 0) {
		fmt.Fprintln(os.Stderr, "pmafia: checkpoint/restart flags (-ckpt-dir, -resume, -max-restarts) are not supported with -clique")
		os.Exit(2)
	}
	if o.pprofAddr != "" {
		fmt.Fprintf(os.Stderr, "pmafia: pprof listening on http://%s/debug/pprof/\n", o.pprofAddr)
		go func() {
			if err := http.ListenAndServe(o.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pmafia: pprof:", err)
			}
		}()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	recovered, err := run(ctx, flag.Arg(0), o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmafia:", err)
		var ex *supervisor.ExhaustedError
		if errors.As(err, &ex) {
			os.Exit(4)
		}
		os.Exit(1)
	}
	if recovered {
		os.Exit(3)
	}
}

func run(ctx context.Context, path string, o options) (recovered bool, err error) {
	src, domains, err := open(path)
	if err != nil {
		return false, err
	}
	plan, err := faults.Parse(o.faultSpec)
	if err != nil {
		return false, err
	}
	mcfg := sp2.Config{Procs: o.procs, Ctx: ctx, Faults: plan, CollectiveTimeout: o.collTimeout}
	if plan != nil && mcfg.CollectiveTimeout == 0 {
		// Fault-injection runs must terminate: arm the failure detector
		// even when the operator did not pick a timeout.
		mcfg.CollectiveTimeout = 30 * time.Second
	}
	switch o.mode {
	case "sim":
		mcfg.Mode = sp2.Sim
	case "real":
		mcfg.Mode = sp2.Real
	default:
		return false, fmt.Errorf("unknown mode %q", o.mode)
	}
	var rec *obs.Recorder
	if o.tracePath != "" || o.metricsPath != "" || o.critPath || o.telemetry != "" {
		rec = obs.New()
	}
	if o.telemetry != "" {
		srv, err := serve.Start(o.telemetry, rec)
		if err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "pmafia: telemetry on http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}
	if f, ok := src.(*diskio.File); ok {
		f.SetRecorder(rec)
		f.SetFaults(plan)
		f.SetPrefetch(o.prefetch)
	}
	shards := shardSource(src, o.procs)

	var res *mafia.Result
	if o.useClique {
		ccfg := clique.Config{Bins: o.bins, Tau: o.tau, ChunkRecords: o.chunk, Workers: o.workers, Recorder: rec}
		res, err = clique.RunParallel(shards, domains, ccfg, mcfg)
	} else {
		cfg := mafia.Config{
			Adaptive:     grid.AdaptiveParams{Alpha: o.alpha, BetaPercent: o.beta},
			ChunkRecords: o.chunk,
			Workers:      o.workers,
			Recorder:     rec,
		}
		if o.ckptDir != "" || o.maxRestarts > 0 {
			var out *supervisor.Outcome
			out, err = runSupervised(ctx, path, shards, domains, cfg, mcfg, rec, plan, o)
			if err == nil {
				res = out.Result
				recovered = out.Recovered
				if out.Recovered {
					fmt.Fprintf(os.Stderr, "pmafia: recovered: %d restart(s), resumed from checkpoint level %d\n",
						out.Restarts, out.ResumedLevel)
				}
			}
		} else {
			res, err = mafia.RunParallel(shards, domains, cfg, mcfg)
		}
	}
	if err != nil {
		return false, err
	}

	fmt.Printf("%d records, %d dimensions, %d processors: %.3fs (comm %.4fs)\n",
		res.N, len(res.Grid.Dims), o.procs, res.Seconds, res.Report.CommSeconds)
	if o.levels {
		for _, l := range res.Levels {
			fmt.Printf("  level %d: %d raw CDUs, %d unique, %d dense\n", l.K, l.NcduRaw, l.Ncdu, l.Ndu)
		}
		if err := collectiveTable(res.Report).Render(os.Stdout); err != nil {
			return recovered, err
		}
	}
	if o.saveModel != "" {
		if err := modelio.Save(o.saveModel, res); err != nil {
			return recovered, fmt.Errorf("saving model: %w", err)
		}
		fmt.Printf("model written to %s\n", o.saveModel)
	}
	fmt.Printf("%d cluster(s) discovered:\n", len(res.Clusters))
	for i, c := range res.Clusters {
		dims := make([]string, len(c.Dims))
		for j, d := range c.Dims {
			dims[j] = fmt.Sprint(d)
		}
		fmt.Printf("  #%d dims {%s}, %d dense units, %d boxes\n", i+1, strings.Join(dims, ","), c.Units.Len(), len(c.Boxes))
		if o.verbose {
			fmt.Printf("     %s\n", c.DNF(res.Grid))
		} else {
			for j, b := range c.Bounds(res.Grid) {
				fmt.Printf("     d%s ∈ %v\n", dims[j], b)
			}
		}
	}
	if rec != nil {
		if err := rec.PhaseTable().Render(os.Stdout); err != nil {
			return recovered, err
		}
		if o.critPath {
			cp := rec.CriticalPath(res.Report.RankSeconds)
			if err := cp.Table().Render(os.Stdout); err != nil {
				return recovered, err
			}
			if err := cp.RankTable().Render(os.Stdout); err != nil {
				return recovered, err
			}
			if o.mode == "real" {
				fmt.Println("note: Real-mode critical path uses wall-clock arrivals with modeled comm costs; Sim mode (-mode sim) is exact")
			}
		}
		if o.tracePath != "" {
			if err := writeTo(o.tracePath, rec.WriteChromeTrace); err != nil {
				return recovered, err
			}
			fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", o.tracePath)
		}
		if o.metricsPath != "" {
			if err := writeTo(o.metricsPath, rec.WriteMetricsJSON); err != nil {
				return recovered, err
			}
			fmt.Printf("metrics written to %s\n", o.metricsPath)
		}
	}
	return recovered, nil
}

// runSupervised wraps the fit in the checkpoint/restart supervisor.
// With -ckpt-dir a manager bound to the run's fingerprint (absolute
// input path, file size, config hash) persists level-barrier
// checkpoints; without it restarts re-run from scratch.
func runSupervised(ctx context.Context, path string, shards []dataset.Source, domains []dataset.Range, cfg mafia.Config, mcfg sp2.Config, rec *obs.Recorder, plan *faults.Plan, o options) (*supervisor.Outcome, error) {
	var mgr *ckpt.Manager
	if o.ckptDir != "" {
		abs, err := filepath.Abs(path)
		if err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		hash, err := ckpt.ConfigHash(cfg, shards[0].Dims())
		if err != nil {
			return nil, err
		}
		fp := ckpt.Fingerprint{DataPath: abs, DataBytes: st.Size(), ConfigHash: hash}
		mgr, err = ckpt.NewManager(o.ckptDir, fp, ckpt.Options{Recorder: rec, Faults: plan})
		if err != nil {
			return nil, err
		}
	}
	return supervisor.Run(ctx, shards, domains, cfg, mcfg, supervisor.Options{
		Manager:     mgr,
		MaxRestarts: o.maxRestarts,
		Backoff:     o.restartBackoff,
		Resume:      o.resume,
		Recorder:    rec,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pmafia: "+format+"\n", args...)
		},
	})
}

// collectiveTable renders the machine report's per-collective-kind
// breakdown.
func collectiveTable(rep *sp2.Report) *tabular.Table {
	t := tabular.New("Collectives by kind", "kind", "count", "bytes", "modeled s")
	kinds := make([]string, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		st := rep.ByKind[k]
		t.AddRow(k, tabular.I(int(st.Count)), tabular.I(int(st.Bytes)), tabular.F(st.Seconds))
	}
	return t
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// open loads the input as a record file or CSV and returns the source
// plus its domains (nil when they must be discovered).
func open(path string) (dataset.Source, []dataset.Range, error) {
	if strings.HasSuffix(path, ".pmaf") {
		f, err := diskio.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Domains(), nil
	}
	fh, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fh.Close()
	m, _, err := dataset.ReadCSV(fh)
	if err != nil {
		return nil, nil, err
	}
	return m, nil, nil
}

// shardSource splits the source for parallel runs. In-memory matrices
// are sliced; record files are range-scanned per rank via staging-free
// ScanRange shards.
func shardSource(src dataset.Source, p int) []dataset.Source {
	if p <= 1 {
		return []dataset.Source{src}
	}
	out := make([]dataset.Source, p)
	switch s := src.(type) {
	case *dataset.Matrix:
		n := s.NumRecords()
		for r := 0; r < p; r++ {
			lo, hi := diskio.ShareBounds(n, r, p)
			out[r] = s.Slice(lo, hi)
		}
	case *diskio.File:
		n := s.NumRecords()
		for r := 0; r < p; r++ {
			lo, hi := diskio.ShareBounds(n, r, p)
			out[r] = &fileRange{f: s, lo: lo, hi: hi}
		}
	default:
		for r := 0; r < p; r++ {
			out[r] = src
		}
	}
	return out
}

// fileRange adapts a contiguous record range of a file to Source.
type fileRange struct {
	f      *diskio.File
	lo, hi int
}

func (r *fileRange) Dims() int       { return r.f.Dims() }
func (r *fileRange) NumRecords() int { return r.hi - r.lo }
func (r *fileRange) Scan(chunk int) dataset.Scanner {
	return r.f.ScanRange(r.lo, r.hi, chunk)
}
