package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
)

func writeSample(t *testing.T, dir string) (pmafPath, csvPath string) {
	t.Helper()
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:    5,
		Records: 3000,
		Clusters: []datagen.Cluster{
			datagen.UniformBox([]int{1, 3},
				[]dataset.Range{{Lo: 20, Hi: 35}, {Lo: 60, Hi: 75}}, 0),
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	pmafPath = filepath.Join(dir, "d.pmaf")
	if err := diskio.WriteSource(pmafPath, m); err != nil {
		t.Fatal(err)
	}
	csvPath = filepath.Join(dir, "d.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, m, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return pmafPath, csvPath
}

func TestOpenPmafAndCSV(t *testing.T) {
	dir := t.TempDir()
	pmaf, csv := writeSample(t, dir)

	src, doms, err := open(pmaf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Dims() != 5 || doms == nil {
		t.Errorf("pmaf open: dims=%d doms=%v", src.Dims(), doms)
	}

	src, doms, err = open(csv)
	if err != nil {
		t.Fatal(err)
	}
	if src.Dims() != 5 || doms != nil {
		t.Errorf("csv open: dims=%d doms=%v", src.Dims(), doms)
	}

	if _, _, err := open(filepath.Join(dir, "missing.pmaf")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestShardSourceCoversAllRecords(t *testing.T) {
	dir := t.TempDir()
	pmaf, _ := writeSample(t, dir)
	f, err := diskio.Open(pmaf)
	if err != nil {
		t.Fatal(err)
	}
	shards := shardSource(f, 4)
	total := 0
	for _, s := range shards {
		total += s.NumRecords()
		sc := s.Scan(100)
		n := 0
		for {
			_, k := sc.Next()
			if k == 0 {
				break
			}
			n += k
		}
		sc.Close()
		if n != s.NumRecords() {
			t.Errorf("shard scanned %d of %d records", n, s.NumRecords())
		}
	}
	if total != f.NumRecords() {
		t.Errorf("shards cover %d of %d records", total, f.NumRecords())
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	pmaf, csv := writeSample(t, dir)
	base := options{alpha: 1.5, beta: 50, mode: "sim", chunk: 512, bins: 10, tau: 0.01}

	o := base
	o.procs, o.levels, o.verbose = 2, true, true
	if _, err := run(context.Background(), pmaf, o); err != nil {
		t.Fatal(err)
	}

	o = base
	o.procs, o.useClique, o.tau = 1, true, 0.02
	if _, err := run(context.Background(), csv, o); err != nil {
		t.Fatal(err)
	}

	o = base
	o.procs, o.mode = 1, "bogus"
	if _, err := run(context.Background(), pmaf, o); err == nil {
		t.Error("bogus mode: want error")
	}
}

// TestRunWithCriticalPathAndTelemetry exercises the -critical-path and
// -telemetry flags: the run must attach a recorder (even with no trace
// or metrics output requested), serve telemetry for its duration, and
// complete cleanly in both machine modes.
func TestRunWithCriticalPathAndTelemetry(t *testing.T) {
	dir := t.TempDir()
	pmaf, _ := writeSample(t, dir)
	for _, mode := range []string{"sim", "real"} {
		o := options{
			alpha: 1.5, beta: 50, procs: 2, mode: mode, chunk: 512,
			bins: 10, tau: 0.01,
			critPath:  true,
			telemetry: "127.0.0.1:0",
		}
		if _, err := run(context.Background(), pmaf, o); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
	// A bad telemetry address must fail the run, not be ignored.
	o := options{alpha: 1.5, beta: 50, procs: 1, mode: "sim", chunk: 512,
		bins: 10, tau: 0.01, telemetry: "256.0.0.1:bogus"}
	if _, err := run(context.Background(), pmaf, o); err == nil {
		t.Error("bogus telemetry address: want error")
	}
}

// TestRunWithTraceAndMetrics exercises the observability flags in both
// machine modes: the trace must be valid Chrome trace_event JSON with
// one track per rank and a span for every engine phase.
func TestRunWithTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	pmaf, _ := writeSample(t, dir)
	for _, mode := range []string{"sim", "real"} {
		o := options{
			alpha: 1.5, beta: 50, procs: 4, mode: mode, chunk: 512,
			bins: 10, tau: 0.01, levels: true,
			tracePath:   filepath.Join(dir, mode+"-trace.json"),
			metricsPath: filepath.Join(dir, mode+"-metrics.json"),
		}
		if _, err := run(context.Background(), pmaf, o); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}

		raw, err := os.ReadFile(o.tracePath)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string  `json:"name"`
				Ph   string  `json:"ph"`
				Ts   float64 `json:"ts"`
				Dur  float64 `json:"dur"`
				Tid  int     `json:"tid"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s: trace is not valid JSON: %v", mode, err)
		}
		tracks := map[int]bool{}
		phases := map[string]bool{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				tracks[ev.Tid] = true
				phases[ev.Name] = true
			}
		}
		if len(tracks) != 4 {
			t.Errorf("%s: %d rank tracks, want 4", mode, len(tracks))
		}
		for _, want := range []string{"run", "histogram", "grid", "generate", "dedup", "populate", "identify", "clusters"} {
			if !phases[want] {
				t.Errorf("%s: trace has no %q span (have %v)", mode, want, phases)
			}
		}

		raw, err = os.ReadFile(o.metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		var metrics struct {
			Counters map[string]int64 `json:"counters"`
			Phases   []struct {
				Name string `json:"name"`
			} `json:"phases"`
		}
		if err := json.Unmarshal(raw, &metrics); err != nil {
			t.Fatalf("%s: metrics is not valid JSON: %v", mode, err)
		}
		if metrics.Counters["diskio.chunks"] == 0 {
			t.Errorf("%s: no diskio.chunks counted", mode)
		}
		if metrics.Counters["cdus.generated"] == 0 || metrics.Counters["dense.units"] == 0 {
			t.Errorf("%s: engine counters missing: %v", mode, metrics.Counters)
		}
		if len(metrics.Phases) == 0 {
			t.Errorf("%s: no phase aggregates", mode)
		}
	}
}
