package main

import (
	"os"
	"path/filepath"
	"testing"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
)

func writeSample(t *testing.T, dir string) (pmafPath, csvPath string) {
	t.Helper()
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:    5,
		Records: 3000,
		Clusters: []datagen.Cluster{
			datagen.UniformBox([]int{1, 3},
				[]dataset.Range{{Lo: 20, Hi: 35}, {Lo: 60, Hi: 75}}, 0),
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	pmafPath = filepath.Join(dir, "d.pmaf")
	if err := diskio.WriteSource(pmafPath, m); err != nil {
		t.Fatal(err)
	}
	csvPath = filepath.Join(dir, "d.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, m, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return pmafPath, csvPath
}

func TestOpenPmafAndCSV(t *testing.T) {
	dir := t.TempDir()
	pmaf, csv := writeSample(t, dir)

	src, doms, err := open(pmaf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Dims() != 5 || doms == nil {
		t.Errorf("pmaf open: dims=%d doms=%v", src.Dims(), doms)
	}

	src, doms, err = open(csv)
	if err != nil {
		t.Fatal(err)
	}
	if src.Dims() != 5 || doms != nil {
		t.Errorf("csv open: dims=%d doms=%v", src.Dims(), doms)
	}

	if _, _, err := open(filepath.Join(dir, "missing.pmaf")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestShardSourceCoversAllRecords(t *testing.T) {
	dir := t.TempDir()
	pmaf, _ := writeSample(t, dir)
	f, err := diskio.Open(pmaf)
	if err != nil {
		t.Fatal(err)
	}
	shards := shardSource(f, 4)
	total := 0
	for _, s := range shards {
		total += s.NumRecords()
		sc := s.Scan(100)
		n := 0
		for {
			_, k := sc.Next()
			if k == 0 {
				break
			}
			n += k
		}
		sc.Close()
		if n != s.NumRecords() {
			t.Errorf("shard scanned %d of %d records", n, s.NumRecords())
		}
	}
	if total != f.NumRecords() {
		t.Errorf("shards cover %d of %d records", total, f.NumRecords())
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	pmaf, csv := writeSample(t, dir)
	if err := run(pmaf, 1.5, 50, 2, "sim", 512, false, 10, 0.01, true, true); err != nil {
		t.Fatal(err)
	}
	if err := run(csv, 1.5, 50, 1, "sim", 512, true, 10, 0.02, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(pmaf, 1.5, 50, 1, "bogus", 512, false, 10, 0.01, false, false); err == nil {
		t.Error("bogus mode: want error")
	}
}
