package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain doubles the test binary as the pmafia CLI when re-exec'd
// with PMAFIA_HELPER=1, so exit codes can be asserted for real: every
// failure path must leave a non-zero status and a message on stderr.
func TestMain(m *testing.M) {
	if os.Getenv("PMAFIA_HELPER") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-execs the test binary as pmafia and returns exit code and
// stderr.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PMAFIA_HELPER=1")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running CLI: %v", err)
	}
	return ee.ExitCode(), stderr.String()
}

func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	pmaf, _ := writeSample(t, dir)
	bad := filepath.Join(dir, "bad.pmaf")
	if err := os.WriteFile(bad, []byte("XXXXjunkjunkjunkjunk"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		args     []string
		code     int
		inStderr string
	}{
		{"success", []string{pmaf}, 0, ""},
		{"no input", []string{}, 2, "usage"},
		{"extra args", []string{pmaf, pmaf}, 2, "usage"},
		{"bad faults spec", []string{"-faults", "explode:rank=0", pmaf}, 2, "-faults"},
		{"missing file", []string{filepath.Join(dir, "absent.pmaf")}, 1, "pmafia:"},
		{"corrupt file", []string{bad}, 1, "bad magic"},
		{"bad mode", []string{"-mode", "bogus", pmaf}, 1, "unknown mode"},
		{"injected crash", []string{"-procs", "2", "-faults", "crash:rank=1,coll=0", pmaf}, 1, "rank 1"},
		{"injected stall detected", []string{
			"-procs", "2", "-faults", "stall:rank=0,coll=1", "-coll-timeout", "300ms", pmaf,
		}, 1, "stall"},

		// Checkpoint/restart codes (see the package comment): 2 for
		// inconsistent recovery flags, 3 for a fit that completed only
		// by restarting, 4 for a restart budget that ran out, and 1
		// when a rank failure has no restart budget at all.
		{"resume without ckpt dir", []string{"-resume", pmaf}, 2, "-resume requires -ckpt-dir"},
		{"negative max restarts", []string{"-max-restarts", "-1", pmaf}, 2, "-max-restarts"},
		{"clique with ckpt flags", []string{"-clique", "-ckpt-dir", dir, pmaf}, 2, "-clique"},
		{"crash recovered by restart", []string{
			"-procs", "2", "-faults", "crash:rank=1,coll=1",
			"-ckpt-dir", filepath.Join(dir, "ck-recover"), "-max-restarts", "2", "-restart-backoff", "1ms", pmaf,
		}, 3, "recovered"},
		// coll=0 is the histogram allreduce: it crashes before any
		// checkpoint exists, so every restart re-fails deterministically.
		{"restart budget exhausted", []string{
			"-procs", "2", "-faults", "crash:rank=1,coll=0,times=99",
			"-ckpt-dir", filepath.Join(dir, "ck-exhaust"), "-max-restarts", "2", "-restart-backoff", "1ms", pmaf,
		}, 4, "still failing after 2 restart(s)"},
		{"crash without restart budget", []string{
			"-procs", "2", "-faults", "crash:rank=1,coll=1", "-ckpt-dir", filepath.Join(dir, "ck-nobudget"), pmaf,
		}, 1, "rank 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := runCLI(t, tc.args...)
			if code != tc.code {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.code, stderr)
			}
			if tc.code != 0 && stderr == "" {
				t.Error("failure exited silently: no message on stderr")
			}
			if tc.inStderr != "" && !strings.Contains(stderr, tc.inStderr) {
				t.Errorf("stderr %q does not mention %q", stderr, tc.inStderr)
			}
		})
	}
}

// TestResumeExitCode drives the cross-process resume path: a first
// process checkpoints a clean fit, a second one started with -resume
// picks the checkpoint up and must flag the recovery with exit code 3.
func TestResumeExitCode(t *testing.T) {
	dir := t.TempDir()
	pmaf, _ := writeSample(t, dir)
	ck := filepath.Join(dir, "ck")

	if code, stderr := runCLI(t, "-ckpt-dir", ck, pmaf); code != 0 {
		t.Fatalf("checkpointing run exited %d: %s", code, stderr)
	}
	code, stderr := runCLI(t, "-ckpt-dir", ck, "-resume", pmaf)
	if code != 3 {
		t.Fatalf("resumed run exited %d, want 3 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "resuming from checkpoint level") {
		t.Errorf("stderr %q does not mention the resume", stderr)
	}
	// With the checkpoint directory wiped, -resume finds nothing and
	// the run completes fresh: plain success.
	if err := os.RemoveAll(ck); err != nil {
		t.Fatal(err)
	}
	if code, stderr := runCLI(t, "-ckpt-dir", ck, "-resume", pmaf); code != 0 {
		t.Errorf("resume with empty dir exited %d, want 0 (stderr: %s)", code, stderr)
	}
}
