package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain doubles the test binary as the pmafia CLI when re-exec'd
// with PMAFIA_HELPER=1, so exit codes can be asserted for real: every
// failure path must leave a non-zero status and a message on stderr.
func TestMain(m *testing.M) {
	if os.Getenv("PMAFIA_HELPER") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-execs the test binary as pmafia and returns exit code and
// stderr.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PMAFIA_HELPER=1")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running CLI: %v", err)
	}
	return ee.ExitCode(), stderr.String()
}

func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	pmaf, _ := writeSample(t, dir)
	bad := filepath.Join(dir, "bad.pmaf")
	if err := os.WriteFile(bad, []byte("XXXXjunkjunkjunkjunk"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		args     []string
		code     int
		inStderr string
	}{
		{"success", []string{pmaf}, 0, ""},
		{"no input", []string{}, 2, "usage"},
		{"extra args", []string{pmaf, pmaf}, 2, "usage"},
		{"bad faults spec", []string{"-faults", "explode:rank=0", pmaf}, 2, "-faults"},
		{"missing file", []string{filepath.Join(dir, "absent.pmaf")}, 1, "pmafia:"},
		{"corrupt file", []string{bad}, 1, "bad magic"},
		{"bad mode", []string{"-mode", "bogus", pmaf}, 1, "unknown mode"},
		{"injected crash", []string{"-procs", "2", "-faults", "crash:rank=1,coll=0", pmaf}, 1, "rank 1"},
		{"injected stall detected", []string{
			"-procs", "2", "-faults", "stall:rank=0,coll=1", "-coll-timeout", "300ms", pmaf,
		}, 1, "stall"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := runCLI(t, tc.args...)
			if code != tc.code {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.code, stderr)
			}
			if tc.code != 0 && stderr == "" {
				t.Error("failure exited silently: no message on stderr")
			}
			if tc.inStderr != "" && !strings.Contains(stderr, tc.inStderr) {
				t.Errorf("stderr %q does not mention %q", stderr, tc.inStderr)
			}
		})
	}
}
