#!/bin/sh
# Tracked benchmark suite: measures records/sec for the histogram,
# populate, and full-run phases at p in {1,2,4,8}, baseline vs the
# pipelined implementations, plus the serving load run (sustained
# /assign QPS and latency percentiles), and refreshes BENCH_pr8.json in the
# repository root. Run from anywhere (or via `make bench`); pass
# -smoke for the seconds-long CI configuration.
set -eu

cd "$(dirname "$0")/.."

exec go run ./cmd/bench -repeats 5 -out BENCH_pr8.json "$@"
