#!/bin/sh
# Extended tier-1 gate: vet, formatting, and the full test suite under
# the race detector. With -smoke it additionally runs the fuzz smoke,
# the benchmark smoke, and the bench-regression gate against the
# committed BENCH_pr8.json baseline (generous tolerance: the committed
# numbers come from a quiet machine, CI runners are not). Run from the
# repository root (or via `make check`, which passes -smoke).
set -eu

cd "$(dirname "$0")/.."

smoke=0
for arg in "$@"; do
    case "$arg" in
        -smoke) smoke=1 ;;
        *) echo "usage: check.sh [-smoke]" >&2; exit 2 ;;
    esac
done

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Static analysis beyond vet. Pinned so CI and laptops agree on the
# check set; if the binary is absent we try a module-proxy install and
# skip with a notice when that fails (offline container) rather than
# turning an environment gap into a red gate.
STATICCHECK_VERSION="${STATICCHECK_VERSION:-2025.1.1}"
echo "== staticcheck ./... (pinned $STATICCHECK_VERSION)"
staticcheck_bin=""
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck_bin=staticcheck
elif [ -x "$(go env GOPATH)/bin/staticcheck" ]; then
    staticcheck_bin="$(go env GOPATH)/bin/staticcheck"
elif go install "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" >/dev/null 2>&1; then
    staticcheck_bin="$(go env GOPATH)/bin/staticcheck"
fi
if [ -n "$staticcheck_bin" ]; then
    "$staticcheck_bin" ./...
else
    echo "staticcheck: not installed and module proxy unreachable — skipped" >&2
fi

# Metric-name hygiene: every trace.*/profile.* (and every other)
# counter the daemon emits must belong to the closed obs registry with
# a locked Prometheus mapping, and no metric-name string literal may
# bypass the registry constants.
echo "== metric-name registry gate"
go test -count=1 -run 'TestCounterRegistry|TestHistogramRegistry|TestPromNameMapping' ./internal/obs
go test -count=1 -run 'TestAllEmittedMetricsAreRegistered' ./internal/daemon
stray=$(grep -rnE '"(trace|profile|swap|ingest)\.[a-z_.]+"' --include='*.go' internal cmd \
    | grep -v '^internal/obs/names\.go:' | grep -vE '\.(pmaf|pmfm)"' || true)
if [ -n "$stray" ]; then
    echo "metric-name literals outside internal/obs/names.go (use the obs.Ctr*/Hist* constants):" >&2
    echo "$stray" >&2
    exit 1
fi

echo "== go test -race ./..."
go test -race ./...

# The serving path has its own named gates: the daemon must survive
# concurrent assignment + scraping with a leak-free shutdown, and the
# compiled assignment index must agree bit-for-bit with the engine's
# linear-scan oracle.
echo "== serving gate (daemon concurrency/leak + assign differential)"
go test -race -count=1 -run 'TestConcurrentAssignAndScrape' ./internal/daemon
go test -race -count=1 -run 'TestPropertyMatchesOracle|TestFittedModelMatchesEngineAssign' ./internal/assign

# Load smoke: a sub-second burst of sustained /assign traffic against
# an in-process daemon, checking QPS, error-free serving, and that the
# server's histogram percentiles agree with the client's measurement.
echo "== load smoke (sustained /assign traffic, server vs client percentiles)"
go test -race -count=1 -run 'TestLoadSmoke' ./internal/bench

# Swap-under-load gate: while sustained traffic runs, the served model
# file is rewritten with alternating generations (and once with
# garbage) — every response must match exactly one generation's
# oracle, never a torn mix, and a failed swap must keep the previous
# generation serving. The coalescer drain check pins that Shutdown
# flushes parked waiters instead of abandoning them.
echo "== swap gate (hot swap under load + coalescer drain)"
go test -race -count=1 -run 'TestStaleModelReloaded|TestSwapUnderLoad|TestCoalesceDrainFlushesWaiters' ./internal/daemon

# Recovery gate: supervised restart under injected crashes and torn
# checkpoint writes must reproduce the fault-free result
# bit-identically, race-clean (the full per-collective crash matrix
# lives in `make recover`).
echo "== recovery gate (crash resume + torn-checkpoint fallback)"
go test -race -count=1 -run 'TestResumeDeterminismMatrix|TestTornCheckpointFallsBack' ./internal/supervisor

if [ "$smoke" = 1 ]; then
    echo "== fuzz smoke (FuzzOpen + FuzzDecode + FuzzAssignFrame, 10s each)"
    go test -run '^$' -fuzz '^FuzzOpen$' -fuzztime 10s ./internal/diskio
    go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/ckpt
    go test -run '^$' -fuzz '^FuzzAssignFrame$' -fuzztime 10s ./internal/daemon

    smokejson="${TMPDIR:-/tmp}/pmafia-bench-smoke.json"
    echo "== bench smoke (cmd/bench -smoke)"
    go run ./cmd/bench -smoke -out "$smokejson" 2>/dev/null

    echo "== bench gate (cmd/bench -compare vs BENCH_pr8.json)"
    go run ./cmd/bench -compare BENCH_pr8.json "$smokejson" -tolerance 0.9
fi

echo "check: ok"
