#!/bin/sh
# Extended tier-1 gate: vet, formatting, and the full test suite under
# the race detector. Run from the repository root (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "== fuzz smoke (FuzzOpen, 10s)"
go test -run '^$' -fuzz '^FuzzOpen$' -fuzztime 10s ./internal/diskio

echo "== bench smoke (cmd/bench -smoke)"
go run ./cmd/bench -smoke -out "${TMPDIR:-/tmp}/pmafia-bench-smoke.json" 2>/dev/null

echo "check: ok"
