package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pmafia/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	rec := obs.New()
	rec.Add(0, obs.CtrHistogramRecords, 1000)
	rec.AddGlobal(obs.CtrDiskBytes, 4096)
	rec.Add(0, obs.CtrHTTPStatus("assign", 200), 2)
	rec.Observe(0, obs.HistRouteSeconds("assign"), 0.003)
	rec.Observe(0, obs.HistRouteSeconds("assign"), 0.003)
	rec.Observe(0, obs.HistRouteSeconds("assign"), 0.07)
	rec.Observe(0, obs.HistModelSeconds("taxi.pmfm"), 0.003)
	rec.Observe(0, obs.HistModelRecords("taxi.pmfm"), 500)
	span := rec.Start(0, "populate").SetLevel(3)

	s, err := Start("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		// Counters keep their bare-sample lines and gain HELP/TYPE.
		"pmafia_histogram_records 1000",
		"pmafia_diskio_bytes 4096",
		"# HELP pmafia_histogram_records Total of counter histogram.records, summed over ranks.",
		"# TYPE pmafia_histogram_records counter",
		"# HELP pmafia_ranks ",
		"pmafia_ranks 1",
		`pmafia_rank_phase_since_seconds{rank="0",phase="populate"}`,
		"# TYPE pmafia_rank_phase_since_seconds gauge",
		// Status counters fold into one labeled family.
		"# TYPE pmafia_http_requests_total counter",
		`pmafia_http_requests_total{route="assign",code="200"} 2`,
		// Histograms: per-route and per-model families in Prometheus
		// histogram text format, cumulative buckets.
		"# TYPE pmafia_http_request_seconds histogram",
		`pmafia_http_request_seconds_bucket{route="assign",le="0.005"} 2`,
		`pmafia_http_request_seconds_bucket{route="assign",le="0.1"} 3`,
		`pmafia_http_request_seconds_bucket{route="assign",le="+Inf"} 3`,
		`pmafia_http_request_seconds_sum{route="assign"} 0.076`,
		`pmafia_http_request_seconds_count{route="assign"} 3`,
		"# TYPE pmafia_model_assign_seconds histogram",
		`pmafia_model_assign_seconds_bucket{model="taxi.pmfm",le="+Inf"} 1`,
		"# TYPE pmafia_model_batch_records histogram",
		`pmafia_model_batch_records_bucket{model="taxi.pmfm",le="1000"} 1`,
		`pmafia_model_batch_records_count{model="taxi.pmfm"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// The status counter must not also appear under its mangled name.
	if strings.Contains(body, "pmafia_http_assign_status_200") {
		t.Error("/metrics double-exposes the status counter outside its family")
	}

	// /phase reports the open span while the run is live…
	code, body = get(t, base+"/phase")
	if code != 200 {
		t.Fatalf("/phase: status %d", code)
	}
	var phases []obs.PhaseStatus
	if err := json.Unmarshal([]byte(body), &phases); err != nil {
		t.Fatalf("/phase is not JSON: %v\n%s", err, body)
	}
	if len(phases) != 1 || phases[0].Phase != "populate" || phases[0].Level != 3 {
		t.Errorf("/phase = %+v, want one rank in populate/level 3", phases)
	}

	// …and an empty phase once the span ends ("run finished").
	span.End()
	_, body = get(t, base+"/phase")
	if err := json.Unmarshal([]byte(body), &phases); err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 || phases[0].Phase != "" {
		t.Errorf("after End: /phase = %+v, want empty phase", phases)
	}
}

// TestMetricsContentNegotiation: exemplars are only legal in the
// OpenMetrics exposition, so /metrics attaches them (and the # EOF
// trailer) only when the scraper negotiates application/openmetrics-
// text via Accept; the default 0.0.4 text exposition stays clean.
func TestMetricsContentNegotiation(t *testing.T) {
	rec := obs.New()
	rec.Observe(0, obs.HistRouteSeconds("assign"), 0.003)
	rec.SetExemplar(obs.HistRouteSeconds("assign"), 0.003, "req-42")

	s, err := Start("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	url := "http://" + s.Addr() + "/metrics"

	// Default scrape: classic text format, no exemplars, no trailer.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("default content type %q", ct)
	}
	if strings.Contains(string(raw), " # ") || strings.Contains(string(raw), "# EOF") {
		t.Errorf("exemplar or EOF trailer leaked into the 0.0.4 exposition:\n%s", raw)
	}

	// OpenMetrics scrape: exemplar suffix on the bucket line, # EOF last.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0; charset=utf-8,text/plain;version=0.0.4;q=0.5")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("OpenMetrics content type %q", ct)
	}
	body := string(raw)
	if !strings.Contains(body, `# {trace_id="req-42"} 0.003`) {
		t.Errorf("OpenMetrics exposition missing the exemplar:\n%s", body)
	}
	if !strings.HasSuffix(strings.TrimSpace(body), "# EOF") {
		t.Error("OpenMetrics exposition does not end with # EOF")
	}

	for accept, want := range map[string]bool{
		"":                             false,
		"text/plain":                   false,
		"application/openmetrics-text": true,
		"application/OpenMetrics-Text; version=1.0.0":          true,
		"text/plain;q=0.9, application/openmetrics-text;q=0.8": true,
		"application/openmetrics-text-ish":                     false,
	} {
		if got := wantsOpenMetrics(accept); got != want {
			t.Errorf("wantsOpenMetrics(%q) = %v, want %v", accept, got, want)
		}
	}
}

func TestNilRecorder(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Errorf("/healthz: %d", code)
	}
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "pmafia_ranks 0") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if code, body := get(t, base+"/phase"); code != 200 || strings.TrimSpace(body) != "[]" {
		t.Errorf("/phase: %d %q", code, body)
	}
}

// TestCloseStopsServing locks the shutdown contract: after Close the
// port no longer accepts connections and no server goroutines remain.
func TestCloseStopsServing(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := Start("127.0.0.1:0", obs.New())
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if code, _ := get(t, "http://"+addr+"/healthz"); code != 200 {
		t.Fatal("server not serving before Close")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
	// The serve goroutine exits before Close returns; idle HTTP
	// keep-alive goroutines from our own client can linger briefly.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+1 {
		t.Errorf("goroutines: %d before, %d after Close", before, now)
	}
}

// TestScrapeWhileRunning hammers /metrics and /phase while rank
// goroutines mutate the recorder — with -race this proves live
// scraping of a running machine is data-race-free.
func TestScrapeWhileRunning(t *testing.T) {
	rec := obs.New()
	s, err := Start("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := rec.Start(rank, "populate").SetLevel(i%4 + 1)
				rec.Add(rank, obs.CtrPopulateRecords, 64)
				rec.Comm(rank, obs.KindReduce, 128, 0.001)
				sp.End()
				// Pace the mutators: every Start appends a span, and an
				// unthrottled loop makes each scrape's snapshot scan
				// millions of spans.
				time.Sleep(50 * time.Microsecond)
			}
		}(rank)
	}
	for i := 0; i < 20; i++ {
		if code, _ := get(t, base+"/metrics"); code != 200 {
			t.Errorf("/metrics scrape %d: status %d", i, code)
		}
		if code, _ := get(t, base+"/phase"); code != 200 {
			t.Errorf("/phase scrape %d: status %d", i, code)
		}
	}
	close(stop)
	wg.Wait()
}
