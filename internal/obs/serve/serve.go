// Package serve exposes a running recorder over HTTP — the live
// telemetry of a Real-mode run. Three endpoints:
//
//	/metrics  Prometheus text exposition: every counter (summed over
//	          ranks and the global space) plus per-phase time gauges.
//	/phase    JSON snapshot of each rank's innermost open span — the
//	          "where is the machine right now" view.
//	/healthz  liveness probe, always "ok".
//
// The server is read-only over the recorder's own mutex-guarded
// snapshot methods, so scraping a running machine is safe (and
// race-detector clean). It costs nothing when not started: the
// instrumented code path never references this package, preserving
// obs's pay-for-use contract.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"pmafia/internal/obs"
)

// Server is a running telemetry endpoint. Start it before the run,
// Close it after; Close blocks until the listener goroutine exits.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// handler holds the endpoint implementations over one recorder.
type handler struct {
	rec *obs.Recorder
}

// Handler returns the telemetry endpoints for rec as an http.Handler
// (a mux with /healthz, /metrics, and /phase), for embedding in
// another server — the serving daemon mounts /metrics this way
// instead of duplicating the exposition code. rec may be nil, in
// which case every endpoint reports an empty machine.
func Handler(rec *obs.Recorder) http.Handler {
	h := &handler{rec: rec}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/phase", h.phase)
	return mux
}

// Start listens on addr (host:port; ":0" picks a free port) and
// serves telemetry for rec in a background goroutine. rec may be nil,
// in which case every endpoint reports an empty machine.
func Start(addr string, rec *obs.Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{ln: ln, done: make(chan struct{})}
	s.srv = &http.Server{Handler: Handler(rec)}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down gracefully: in-flight scrapes finish,
// the listener closes, and the serve goroutine exits before Close
// returns.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

func (s *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// promName mangles a counter name into a Prometheus metric name:
// "diskio.prefetch.chunks" -> "pmafia_diskio_prefetch_chunks".
func promName(name string) string {
	mangled := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return "pmafia_" + mangled
}

func (s *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	m := s.rec.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# TYPE pmafia_ranks gauge\npmafia_ranks %d\n", m.Ranks)

	names := make([]string, 0, len(m.Counters))
	for name := range m.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Counters[name])
	}

	if len(m.Phases) > 0 {
		fmt.Fprintf(w, "# TYPE pmafia_phase_seconds gauge\n")
		for _, p := range m.Phases {
			fmt.Fprintf(w, "pmafia_phase_seconds{phase=%q,level=\"%d\"} %g\n",
				p.Name, p.Level, p.Seconds)
		}
	}

	if phases := s.rec.CurrentPhases(); len(phases) > 0 {
		fmt.Fprintf(w, "# TYPE pmafia_rank_phase_since_seconds gauge\n")
		for _, ps := range phases {
			if ps.Phase == "" {
				continue
			}
			fmt.Fprintf(w, "pmafia_rank_phase_since_seconds{rank=\"%d\",phase=%q} %g\n",
				ps.Rank, ps.Phase, ps.Since)
		}
	}
}

func (s *handler) phase(w http.ResponseWriter, _ *http.Request) {
	phases := s.rec.CurrentPhases()
	if phases == nil {
		phases = []obs.PhaseStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(phases)
}
