// Package serve exposes a running recorder over HTTP — the live
// telemetry of a Real-mode run. Three endpoints:
//
//	/metrics  Prometheus text exposition: every counter (summed over
//	          ranks and the global space), every latency/size histogram
//	          (_bucket/_sum/_count, labeled per route and per model),
//	          and per-phase time gauges — all with # HELP/# TYPE lines.
//	          A scraper that negotiates application/openmetrics-text
//	          via the Accept header gets the OpenMetrics exposition
//	          instead: same samples, plus trace exemplars on histogram
//	          buckets and the mandatory # EOF trailer. Exemplars never
//	          appear in the classic 0.0.4 text format, whose parser
//	          rejects the ` # ...` suffix.
//	/phase    JSON snapshot of each rank's innermost open span — the
//	          "where is the machine right now" view.
//	/healthz  liveness probe, always "ok".
//
// The server is read-only over the recorder's own mutex-guarded
// snapshot methods, so scraping a running machine is safe (and
// race-detector clean). It costs nothing when not started: the
// instrumented code path never references this package, preserving
// obs's pay-for-use contract.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"pmafia/internal/obs"
)

// Server is a running telemetry endpoint. Start it before the run,
// Close it after; Close blocks until the listener goroutine exits.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// handler holds the endpoint implementations over one recorder.
type handler struct {
	rec *obs.Recorder
}

// Handler returns the telemetry endpoints for rec as an http.Handler
// (a mux with /healthz, /metrics, and /phase), for embedding in
// another server — the serving daemon mounts /metrics this way
// instead of duplicating the exposition code. rec may be nil, in
// which case every endpoint reports an empty machine.
func Handler(rec *obs.Recorder) http.Handler {
	h := &handler{rec: rec}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/phase", h.phase)
	return mux
}

// Start listens on addr (host:port; ":0" picks a free port) and
// serves telemetry for rec in a background goroutine. rec may be nil,
// in which case every endpoint reports an empty machine.
func Start(addr string, rec *obs.Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{ln: ln, done: make(chan struct{})}
	s.srv = &http.Server{Handler: Handler(rec)}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down gracefully: in-flight scrapes finish,
// the listener closes, and the serve goroutine exits before Close
// returns.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

func (s *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// le formats a histogram bucket upper bound as a Prometheus le label
// value.
func le(bound float64) string {
	if math.IsInf(bound, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(bound, 'g', -1, 64)
}

// writeHistogram emits one member of a histogram family in Prometheus
// text format: cumulative _bucket samples per bound plus +Inf, then
// _sum and _count. labels is the pre-rendered label prefix (e.g.
// `route="assign",`), empty for an unlabeled family. ex, when
// non-nil, holds per-bucket exemplars (index i = bucket i, last =
// +Inf); a bucket with one gets the OpenMetrics exemplar suffix
// `# {trace_id="..."} value timestamp` appended to its line.
func writeHistogram(w io.Writer, family, labels string, h *obs.Histogram, ex []obs.Exemplar) {
	bounds, counts := h.Bounds(), h.BucketCounts()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d%s\n", family, labels, le(b), cum, exemplar(ex, i))
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d%s\n", family, labels, h.Count(), exemplar(ex, len(bounds)))
	suffix := ""
	if labels != "" {
		suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", family, suffix, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", family, suffix, h.Count())
}

// exemplar renders the OpenMetrics exemplar suffix for bucket i, ""
// when the bucket has none.
func exemplar(ex []obs.Exemplar, i int) string {
	if i >= len(ex) || ex[i].TraceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %g %.3f", ex[i].TraceID, ex[i].Value, ex[i].Ts)
}

// histFamily is one Prometheus histogram family being assembled from
// the recorder's flat histogram names: a metric name, help text, and
// the labeled members that share it.
type histFamily struct {
	name, help string
	members    []histMember
}

type histMember struct {
	labels string // pre-rendered label prefix, "" for unlabeled
	h      *obs.Histogram
	ex     []obs.Exemplar // per-bucket exemplars, nil when none
}

// wantsOpenMetrics reports whether the scraper's Accept header asks
// for the OpenMetrics exposition format.
func wantsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if strings.EqualFold(mt, "application/openmetrics-text") {
			return true
		}
	}
	return false
}

func (s *handler) metrics(w http.ResponseWriter, r *http.Request) {
	m := s.rec.Metrics()
	// Exemplars are only legal in OpenMetrics: the classic 0.0.4 text
	// parser reads the ` # {...} v ts` tail as a malformed timestamp
	// and fails the whole scrape. So the exposition format — and with
	// it whether exemplars are attached at all — follows the Accept
	// header.
	om := wantsOpenMetrics(r.Header.Get("Accept"))
	if om {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	}

	fmt.Fprintf(w, "# HELP pmafia_ranks Rank tracks recorded by the observer.\n")
	fmt.Fprintf(w, "# TYPE pmafia_ranks gauge\npmafia_ranks %d\n", m.Ranks)

	// Counters. The per-(route, status) request counters fold into one
	// labeled family; everything else is exposed under its mangled name.
	names := make([]string, 0, len(m.Counters))
	for name := range m.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	statusEmitted := false
	for _, name := range names {
		if _, _, ok := obs.ParseHTTPStatusCounter(name); ok {
			statusEmitted = true
			continue
		}
		pn := obs.PromName(name)
		fmt.Fprintf(w, "# HELP %s Total of counter %s, summed over ranks.\n", pn, name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Counters[name])
	}
	if statusEmitted {
		fmt.Fprintf(w, "# HELP pmafia_http_requests_total HTTP requests served, by route and status code.\n")
		fmt.Fprintf(w, "# TYPE pmafia_http_requests_total counter\n")
		for _, name := range names {
			if route, code, ok := obs.ParseHTTPStatusCounter(name); ok {
				fmt.Fprintf(w, "pmafia_http_requests_total{route=%q,code=%q} %d\n",
					route, code, m.Counters[name])
			}
		}
	}

	// Histograms, grouped into labeled families: per-route request
	// latency, per-model assign latency and batch size, and a fallback
	// family per remaining name.
	hists := s.rec.Histograms()
	hnames := make([]string, 0, len(hists))
	for name := range hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	var order []string
	fams := map[string]*histFamily{}
	add := func(family, help, labels, name string, h *obs.Histogram) {
		f := fams[family]
		if f == nil {
			f = &histFamily{name: family, help: help}
			fams[family] = f
			order = append(order, family)
		}
		var ex []obs.Exemplar
		if om {
			ex = s.rec.Exemplars(name)
		}
		f.members = append(f.members, histMember{labels: labels, h: h, ex: ex})
	}
	for _, name := range hnames {
		h := hists[name]
		if route, ok := obs.ParseRouteSecondsHistogram(name); ok {
			add("pmafia_http_request_seconds",
				"Request latency in seconds, by route.",
				fmt.Sprintf("route=%q,", route), name, h)
			continue
		}
		if model, kind, ok := obs.ParseModelHistogram(name); ok {
			switch kind {
			case "seconds":
				add("pmafia_model_assign_seconds",
					"/assign request latency in seconds, by model.",
					fmt.Sprintf("model=%q,", model), name, h)
			case "records":
				add("pmafia_model_batch_records",
					"Records labeled per /assign request, by model.",
					fmt.Sprintf("model=%q,", model), name, h)
			}
			continue
		}
		add(obs.PromName(name), "Histogram of "+name+", merged over ranks.", "", name, h)
	}
	for _, family := range order {
		f := fams[family]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name)
		for _, mem := range f.members {
			writeHistogram(w, f.name, mem.labels, mem.h, mem.ex)
		}
	}

	// Gauges: the per-model staleness readings fold into one labeled
	// family, everything else is exposed under its mangled name.
	if len(m.Gauges) > 0 {
		gnames := make([]string, 0, len(m.Gauges))
		for name := range m.Gauges {
			gnames = append(gnames, name)
		}
		sort.Strings(gnames)
		staleEmitted := false
		for _, name := range gnames {
			if _, ok := obs.ParseModelStalenessGauge(name); ok {
				staleEmitted = true
				continue
			}
			pn := obs.PromName(name)
			fmt.Fprintf(w, "# HELP %s Current value of gauge %s.\n", pn, name)
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, m.Gauges[name])
		}
		if staleEmitted {
			fmt.Fprintf(w, "# HELP pmafia_model_staleness_seconds Age of the served model vs the newest on disk, by model.\n")
			fmt.Fprintf(w, "# TYPE pmafia_model_staleness_seconds gauge\n")
			for _, name := range gnames {
				if model, ok := obs.ParseModelStalenessGauge(name); ok {
					fmt.Fprintf(w, "pmafia_model_staleness_seconds{model=%q} %g\n",
						model, m.Gauges[name])
				}
			}
		}
	}

	if len(m.Phases) > 0 {
		fmt.Fprintf(w, "# HELP pmafia_phase_seconds Seconds spent per (phase, level), summed over ranks.\n")
		fmt.Fprintf(w, "# TYPE pmafia_phase_seconds gauge\n")
		for _, p := range m.Phases {
			fmt.Fprintf(w, "pmafia_phase_seconds{phase=%q,level=\"%d\"} %g\n",
				p.Name, p.Level, p.Seconds)
		}
	}

	if phases := s.rec.CurrentPhases(); len(phases) > 0 {
		fmt.Fprintf(w, "# HELP pmafia_rank_phase_since_seconds Start time (rank clock) of each rank's open phase.\n")
		fmt.Fprintf(w, "# TYPE pmafia_rank_phase_since_seconds gauge\n")
		for _, ps := range phases {
			if ps.Phase == "" {
				continue
			}
			fmt.Fprintf(w, "pmafia_rank_phase_since_seconds{rank=\"%d\",phase=%q} %g\n",
				ps.Rank, ps.Phase, ps.Since)
		}
	}

	if om {
		fmt.Fprintf(w, "# EOF\n")
	}
}

func (s *handler) phase(w http.ResponseWriter, _ *http.Request) {
	phases := s.rec.CurrentPhases()
	if phases == nil {
		phases = []obs.PhaseStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(phases)
}
