package obs

// Serve-side request tracing. Where the Recorder's spans cover the
// fit-side SPMD engine in rank-clock time, a ServeTrace covers one
// HTTP request in wall-clock time: a root span (the whole request)
// plus flat child stage spans (queue, decode, coalesce-wait, kernel,
// encode). Traces live in a TraceRing, which applies head sampling
// plus tail-based retention: every non-2xx request and every request
// that ranks among the slowest seen are always kept, regardless of
// the sampling decision, so the interesting tail survives even at a
// 1% sample rate. The coalescer records one KernelSpan per batch
// flush carrying the trace IDs of its waiters; the Chrome export
// reuses the flow-event synthesis ("s"/"f" pairs, like the modeled
// collective messages) to draw arrows from each retained waiter's
// coalesce-wait span to the shared kernel-invocation span.
//
// All times are float64 seconds since the ring's epoch (its creation
// time), converted to microseconds only at export.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// StageSpan is one child stage of a request trace.
type StageSpan struct {
	Stage string  `json:"stage"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// ServeTrace is one request's trace: identity, outcome, the root
// [Start, End] window, and its stage spans. A trace is built by a
// single goroutine (the request's) — the coalescer hands its kernel
// window back to each waiter rather than writing into the trace.
type ServeTrace struct {
	// ID is the ring's retention key and must be unique per request
	// (the daemon uses the X-Request-ID). TraceID is the W3C
	// traceparent trace-id, carried as a correlation attribute only:
	// every request of one distributed trace (fan-out, retries) shares
	// it, so it cannot key the ring without requests shadowing each
	// other in Snapshot/Lookup.
	ID      string      `json:"id"`
	TraceID string      `json:"trace_id,omitempty"`
	Route   string      `json:"route"`
	Model   string      `json:"model,omitempty"`
	Status  int         `json:"status"`
	Records int         `json:"records,omitempty"`
	Start   float64     `json:"start"`
	End     float64     `json:"end"`
	Spans   []StageSpan `json:"spans"`
	// KernelID links to the coalesced KernelSpan that labeled this
	// request's records, 0 when the request was not coalesced.
	KernelID int64 `json:"kernel_id,omitempty"`
}

// Stage appends one stage span. Nil-safe: recording into an
// unsampled request (nil trace) is a no-op, so the tracing-off path
// costs a pointer test.
func (t *ServeTrace) Stage(stage string, start, end float64) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, StageSpan{Stage: stage, Start: start, End: end})
}

// StageSum returns the summed stage durations — by construction they
// cover disjoint intervals of the request, so the sum is bounded by
// the root duration.
func (t *ServeTrace) StageSum() float64 {
	var sum float64
	for _, s := range t.Spans {
		sum += s.End - s.Start
	}
	return sum
}

// Duration returns the root span's duration.
func (t *ServeTrace) Duration() float64 { return t.End - t.Start }

// KernelSpan is one coalesced kernel invocation: the batch the
// coalescer labeled with a single kernel call, carrying the trace IDs
// of the waiter requests it served. It is the serve-side analogue of
// a collective's MsgEvents: the correlation record the Chrome export
// turns into flow arrows.
type KernelSpan struct {
	ID      int64    `json:"id"`
	Model   string   `json:"model"`
	Records int      `json:"records"`
	Start   float64  `json:"start"`
	End     float64  `json:"end"`
	Waiters []string `json:"waiters"` // trace keys (request IDs) of the coalesced requests
}

// TraceRing is the bounded retention store for serve traces. Offer
// classifies a finished trace into up to three retention classes:
//
//   - errs: every non-2xx trace, FIFO-bounded — errors are always kept.
//   - slow: the top-cap slowest traces seen so far, sorted slowest
//     first with the same insert/evict policy as the daemon's
//     /debug/slow ring, so (with slowCap >= the slow ring's cap) every
//     /debug/slow entry's trace is retained.
//   - samp: head-sampled ordinary traces, FIFO-bounded.
//
// Kernel spans are kept in their own FIFO window. All methods are
// nil-safe no-ops, preserving the package's pay-for-use contract.
type TraceRing struct {
	mu      sync.Mutex
	epoch   time.Time
	cap     int
	slowCap int

	samp    []*ServeTrace
	errs    []*ServeTrace
	slow    []*ServeTrace
	kernels []*KernelSpan

	nextKernel int64
}

// NewTraceRing creates a ring keeping up to cap sampled traces, cap
// error traces, max(cap, slowCap) slow traces, and 4*cap kernel
// spans.
func NewTraceRing(cap, slowCap int) *TraceRing {
	if cap < 1 {
		cap = 1
	}
	if slowCap < cap {
		slowCap = cap
	}
	return &TraceRing{epoch: time.Now(), cap: cap, slowCap: slowCap}
}

// Epoch returns the ring's time origin; trace and stage times are
// seconds since it.
func (tr *TraceRing) Epoch() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.epoch
}

// Since converts a wall-clock instant to ring time.
func (tr *TraceRing) Since(t time.Time) float64 {
	if tr == nil {
		return 0
	}
	return t.Sub(tr.epoch).Seconds()
}

// Offer classifies a finished trace. sampled is the head-sampling
// decision made at request start; retention is the union of the three
// classes, so errors and tail-latency outliers survive sampling.
func (tr *TraceRing) Offer(t *ServeTrace, sampled bool) (retained, asError, asSlow bool) {
	if tr == nil || t == nil {
		return false, false, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if t.Status >= 300 || t.Status < 200 {
		asError = true
		tr.errs = append(tr.errs, t)
		if len(tr.errs) > tr.cap {
			tr.errs = tr.errs[1:]
		}
	}
	if tr.offerSlowLocked(t) {
		asSlow = true
	}
	if sampled {
		tr.samp = append(tr.samp, t)
		if len(tr.samp) > tr.cap {
			tr.samp = tr.samp[1:]
		}
	}
	return sampled || asError || asSlow, asError, asSlow
}

// offerSlowLocked inserts t if it ranks among the slowCap slowest
// traces — the same top-cap policy as the daemon's slow ring (sorted
// slowest first, ties keep the earlier arrival, fastest falls out).
func (tr *TraceRing) offerSlowLocked(t *ServeTrace) bool {
	d := t.Duration()
	if len(tr.slow) == tr.slowCap && d <= tr.slow[tr.slowCap-1].Duration() {
		return false
	}
	i := sort.Search(len(tr.slow), func(i int) bool {
		return tr.slow[i].Duration() < d
	})
	tr.slow = append(tr.slow, nil)
	copy(tr.slow[i+1:], tr.slow[i:])
	tr.slow[i] = t
	if len(tr.slow) > tr.slowCap {
		tr.slow = tr.slow[:tr.slowCap]
	}
	return true
}

// Kernel records one coalesced kernel invocation over the waiter
// trace IDs and returns its correlation ID (never 0).
func (tr *TraceRing) Kernel(model string, records int, waiters []string, start, end time.Time) int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.nextKernel++
	tr.kernels = append(tr.kernels, &KernelSpan{
		ID:      tr.nextKernel,
		Model:   model,
		Records: records,
		Start:   start.Sub(tr.epoch).Seconds(),
		End:     end.Sub(tr.epoch).Seconds(),
		Waiters: waiters,
	})
	if len(tr.kernels) > 4*tr.cap {
		tr.kernels = tr.kernels[1:]
	}
	return tr.nextKernel
}

// Lookup returns the retained trace with the given ID, nil if it was
// never retained or has since been evicted from every class.
func (tr *TraceRing) Lookup(id string) *ServeTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, class := range [][]*ServeTrace{tr.errs, tr.slow, tr.samp} {
		for _, t := range class {
			if t.ID == id {
				return t
			}
		}
	}
	return nil
}

// Snapshot returns the retained traces (deduplicated across classes,
// ordered by start time) and the kernel-span window.
func (tr *TraceRing) Snapshot() ([]*ServeTrace, []*KernelSpan) {
	if tr == nil {
		return nil, nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	seen := map[string]bool{}
	var traces []*ServeTrace
	for _, class := range [][]*ServeTrace{tr.errs, tr.slow, tr.samp} {
		for _, t := range class {
			if !seen[t.ID] {
				seen[t.ID] = true
				traces = append(traces, t)
			}
		}
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].Start < traces[j].Start })
	kernels := make([]*KernelSpan, len(tr.kernels))
	copy(kernels, tr.kernels)
	return traces, kernels
}

// WriteChromeTrace exports every retained trace (and the kernel spans
// linked to them) as a Chrome trace_event document.
func (tr *TraceRing) WriteChromeTrace(w io.Writer) error {
	if tr == nil {
		return fmt.Errorf("obs: nil trace ring")
	}
	traces, kernels := tr.Snapshot()
	return WriteServeTrace(w, traces, kernels)
}

// WriteTraceByID exports one retained trace (plus its kernel span, if
// any survives in the window). found is false when the ID is unknown.
func (tr *TraceRing) WriteTraceByID(w io.Writer, id string) (found bool, err error) {
	if tr == nil {
		return false, nil
	}
	t := tr.Lookup(id)
	if t == nil {
		return false, nil
	}
	var linked []*KernelSpan
	if t.KernelID != 0 {
		tr.mu.Lock()
		for _, k := range tr.kernels {
			if k.ID == t.KernelID {
				linked = append(linked, k)
				break
			}
		}
		tr.mu.Unlock()
	}
	return true, WriteServeTrace(w, []*ServeTrace{t}, linked)
}

// WriteServeTrace renders request traces and coalesced kernel spans
// as Chrome trace_event JSON: one thread track per request (the root
// "X" event named after the route, stage "X" events inside it), a
// dedicated "coalesced kernels" track (tid 0), and one flow-event
// pair per (kernel, retained waiter) — "s" anchored at the waiter's
// coalesce-wait start, "f" (bp "e") at the kernel span's start — so
// the viewer draws an arrow from every request into the shared kernel
// invocation that labeled it. Kernel spans none of whose waiters are
// in traces are dropped: every exported kernel span is flow-linked to
// at least one request span.
func WriteServeTrace(w io.Writer, traces []*ServeTrace, kernels []*KernelSpan) error {
	doc := traceDoc{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{
		{Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
			Args: map[string]any{"name": "pmafiad"}},
		{Name: "thread_name", Ph: "M", Pid: 0, Tid: 0,
			Args: map[string]any{"name": "coalesced kernels"}},
	}}
	tid := map[string]int{} // trace ID -> thread track
	for i, t := range traces {
		tid[t.ID] = i + 1
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: i + 1,
			Args: map[string]any{"name": fmt.Sprintf("req %s (%s)", t.ID, t.Route)},
		})
		args := map[string]any{"id": t.ID, "status": t.Status}
		if t.TraceID != "" {
			args["trace_id"] = t.TraceID
		}
		if t.Model != "" {
			args["model"] = t.Model
		}
		if t.Records > 0 {
			args["records"] = t.Records
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: t.Route, Cat: "request", Ph: "X",
			Ts: t.Start * 1e6, Dur: t.Duration() * 1e6,
			Pid: 0, Tid: i + 1, Args: args,
		})
		for _, s := range t.Spans {
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: s.Stage, Cat: "stage", Ph: "X",
				Ts: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6,
				Pid: 0, Tid: i + 1,
			})
		}
	}
	var flowID int64
	for _, k := range kernels {
		var linked []string
		for _, id := range k.Waiters {
			if _, ok := tid[id]; ok {
				linked = append(linked, id)
			}
		}
		if len(linked) == 0 {
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "kernel", Cat: "kernel", Ph: "X",
			Ts: k.Start * 1e6, Dur: (k.End - k.Start) * 1e6,
			Pid: 0, Tid: 0,
			Args: map[string]any{
				"kernel_id": k.ID, "model": k.Model,
				"records": k.Records, "waiters": len(k.Waiters),
			},
		})
		for _, id := range linked {
			flowID++
			// Anchor the arrow at the waiter's coalesce-wait span when it
			// has one; the root span start otherwise.
			src := flowSource(traceByID(traces, id))
			args := map[string]any{"kernel_id": k.ID, "id": id}
			doc.TraceEvents = append(doc.TraceEvents,
				traceEvent{
					Name: "coalesce", Cat: "coalesce", Ph: "s", ID: flowID,
					Ts: src * 1e6, Pid: 0, Tid: tid[id], Args: args,
				},
				traceEvent{
					Name: "coalesce", Cat: "coalesce", Ph: "f", ID: flowID, Bp: "e",
					Ts: k.Start * 1e6, Pid: 0, Tid: 0, Args: args,
				})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func traceByID(traces []*ServeTrace, id string) *ServeTrace {
	for _, t := range traces {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// flowSource picks the timestamp the flow arrow leaves a waiter's
// track from: its coalesce-wait stage start, falling back to the root
// span start.
func flowSource(t *ServeTrace) float64 {
	if t == nil {
		return 0
	}
	for _, s := range t.Spans {
		if s.Stage == "coalesce-wait" {
			return s.Start
		}
	}
	return t.Start
}
