package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// deterministicRecorder builds a fixed two-rank recording with the
// manual clock, so its exports are byte-stable.
func deterministicRecorder() *Recorder {
	r := New()
	clk := bindManual(r, 2)
	for rank := 0; rank < 2; rank++ {
		run := r.Start(rank, "run")
		h := r.Start(rank, "histogram")
		r.Add(rank, "histogram.records", 1000)
		clk.advance(rank, 0.5)
		r.Comm(rank, "reduce", 8000, 0.125)
		h.End()
		l := r.Start(rank, "level").SetLevel(2)
		p := r.Start(rank, "populate").SetLevel(2)
		clk.advance(rank, 1.5)
		r.Comm(rank, "reduce", 256, 0.25)
		p.End()
		l.End()
		run.End()
	}
	// One collective rendezvous: with 2 ranks the reduce tree has one
	// pairwise-exchange stage, i.e. two messages (0→1 and 1→0), which
	// the trace export draws as two flow arrows.
	r.Collective(CollRecord{
		Kind: KindReduce, Steps: 1, PayloadBytes: 8000, Bytes: 8000,
		Seconds: 0.125, Arrive: []float64{0.5, 0.5}, Start: 0.5, Depart: 0.625,
	})
	// A sampled counter via the rank-clocked path (AddGlobal samples on
	// the wall clock, which would break byte-stability).
	r.Add(0, CtrDiskChunks, 4)
	return r
}

// TestChromeTraceGolden locks the Chrome trace_event export format:
// the output must match the checked-in golden file byte for byte and
// parse as valid trace_event JSON (complete "X" events with
// microsecond ts/dur, metadata "M" events naming the rank tracks,
// paired "s"/"f" flow events per message, and "C" counter samples).
func TestChromeTraceGolden(t *testing.T) {
	r := deterministicRecorder()
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden file (rerun with -update to accept):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			ID   int64          `json:"id"`
			Bp   string         `json:"bp"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete, meta, counter int
	flowStart := map[int64]int{} // flow id -> src tid
	flowEnd := map[int64]int{}   // flow id -> dst tid
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Ts < 0 || ev.Dur <= 0 {
				t.Errorf("X event %q: ts %v dur %v", ev.Name, ev.Ts, ev.Dur)
			}
		case "M":
			meta++
		case "s":
			if ev.ID == 0 {
				t.Errorf("flow start %q has no id", ev.Name)
			}
			flowStart[ev.ID] = ev.Tid
		case "f":
			if ev.Bp != "e" {
				t.Errorf("flow end %q: bp %q, want %q", ev.Name, ev.Bp, "e")
			}
			flowEnd[ev.ID] = ev.Tid
		case "C":
			counter++
			if _, ok := ev.Args["value"]; !ok {
				t.Errorf("counter event %q has no value", ev.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 8 { // 4 spans per rank × 2 ranks
		t.Errorf("%d complete events, want 8", complete)
	}
	if meta != 3 { // process_name + 2 thread_names
		t.Errorf("%d metadata events, want 3", meta)
	}
	// One 2-rank reduce stage = 2 messages, each a paired s/f arrow
	// between the two rank tracks.
	if len(flowStart) != 2 || len(flowEnd) != 2 {
		t.Errorf("%d flow starts / %d flow ends, want 2/2", len(flowStart), len(flowEnd))
	}
	for id, src := range flowStart {
		dst, ok := flowEnd[id]
		if !ok {
			t.Errorf("flow %d has a start but no end", id)
		} else if src == dst {
			t.Errorf("flow %d does not cross tracks (src=dst=%d)", id, src)
		}
	}
	if counter != 1 { // one sampled diskio.chunks observation
		t.Errorf("%d counter events, want 1", counter)
	}
}

func TestMetricsExport(t *testing.T) {
	r := deterministicRecorder()
	var buf bytes.Buffer
	if err := r.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	if m.Ranks != 2 {
		t.Errorf("Ranks = %d, want 2", m.Ranks)
	}
	if m.Counters["histogram.records"] != 2000 || m.Counters["diskio.chunks"] != 4 {
		t.Errorf("counters: %v", m.Counters)
	}
	// Aggregation: populate(level 2) over 2 ranks, 1.5s+0.25s comm each.
	var found bool
	for _, p := range m.Phases {
		if p.Name == "populate" && p.Level == 2 {
			found = true
			if p.Spans != 2 || p.Seconds != 3.0 || p.CommSeconds != 0.5 || p.CommBytes != 512 {
				t.Errorf("populate summary: %+v", p)
			}
			if p.MaxSeconds != 1.5 {
				t.Errorf("populate max rank seconds = %v, want 1.5", p.MaxSeconds)
			}
		}
	}
	if !found {
		t.Error("no populate/level-2 phase summary")
	}
}
