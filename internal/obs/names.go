package obs

import (
	"regexp"
	"sort"
)

// Counter names. Every counter the engine, the disk layer, the worker
// pool, or the machine emits is declared here — one registry instead of
// string literals scattered across packages, so exporters, the
// telemetry server, and tests agree on the exact spelling. Counters
// built from a pattern (per-collective-kind, per-level) have helper
// constructors below; IsRegistered recognizes both forms.
const (
	// diskio: serial chunk scans and the hardened read path.
	CtrDiskChunks      = "diskio.chunks"
	CtrDiskBytes       = "diskio.bytes"
	CtrDiskRetries     = "diskio.retries"
	CtrDiskCorruptions = "diskio.corruptions"
	// diskio: double-buffered prefetch pipeline.
	CtrPrefetchChunks = "diskio.prefetch.chunks"
	CtrPrefetchStalls = "diskio.prefetch.stalls"
	// pool: intra-rank worker pool.
	CtrPoolMergeNS = "pool.merge.ns"
	// mafia/clique engine phases.
	CtrHistogramRecords = "histogram.records"
	CtrCDUsGenerated    = "cdus.generated"
	CtrCDUsDeduped      = "cdus.deduped"
	CtrCDUsPopulated    = "cdus.populated"
	CtrDenseUnits       = "dense.units"
	CtrPopulateRecords  = "populate.records"
	// pmafiad: the model-serving daemon's assignment path.
	CtrAssignRecords   = "assign.records"
	CtrAssignBatches   = "assign.batches"
	CtrAssignCacheHit  = "assign.cache.hit"
	CtrAssignCacheMiss = "assign.cache.miss"
)

// CommCountCounter names the per-kind collective-operation counter the
// recorder bumps in Comm (kind is one of sp2's collective kinds).
func CommCountCounter(kind string) string { return "comm." + kind + ".count" }

// CommBytesCounter names the per-kind collective payload-bytes counter.
func CommBytesCounter(kind string) string { return "comm." + kind + ".bytes" }

// LevelDenseCounter names the per-level dense-unit counter for
// bottom-up level k.
func LevelDenseCounter(k int) string {
	// Two digits keep lexicographic and numeric order aligned for the
	// levels a run can realistically reach.
	d1, d0 := byte('0'+k/10%10), byte('0'+k%10)
	return "level." + string([]byte{d1, d0}) + ".dense"
}

// registered is the exact-name half of the registry.
var registered = map[string]bool{
	CtrDiskChunks:       true,
	CtrDiskBytes:        true,
	CtrDiskRetries:      true,
	CtrDiskCorruptions:  true,
	CtrPrefetchChunks:   true,
	CtrPrefetchStalls:   true,
	CtrPoolMergeNS:      true,
	CtrHistogramRecords: true,
	CtrCDUsGenerated:    true,
	CtrCDUsDeduped:      true,
	CtrCDUsPopulated:    true,
	CtrDenseUnits:       true,
	CtrPopulateRecords:  true,
	CtrAssignRecords:    true,
	CtrAssignBatches:    true,
	CtrAssignCacheHit:   true,
	CtrAssignCacheMiss:  true,
}

// patterned matches the constructed counter families:
// comm.<kind>.count/bytes and level.NN.dense.
var patterned = regexp.MustCompile(`^(comm\.[a-z]+\.(count|bytes)|level\.[0-9]{2}\.dense)$`)

// IsRegistered reports whether name is a declared counter, either an
// exact registry entry or an instance of a registered pattern. Tests
// use it to catch counter-name drift: a counter emitted under a
// misspelled or undeclared name fails the registry test instead of
// silently forking the metric space.
func IsRegistered(name string) bool {
	return registered[name] || patterned.MatchString(name)
}

// Registered returns the exact-name registry entries, sorted. Pattern
// families (comm.*, level.*) are not enumerated.
func Registered() []string {
	out := make([]string, 0, len(registered))
	for name := range registered {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// sampled marks the counters whose increments are also recorded as
// time-stamped samples for the Chrome trace export ("C" counter
// events), so pipelining behavior — prefetch progress, stalls, pool
// merge cost — is visible in the trace viewer over time rather than
// only as end-of-run totals. Keep this set small: every increment of a
// sampled counter appends one sample.
var sampled = map[string]bool{
	CtrPrefetchChunks: true,
	CtrPrefetchStalls: true,
	CtrPoolMergeNS:    true,
	CtrDiskChunks:     true,
}
