package obs

import (
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Counter names. Every counter the engine, the disk layer, the worker
// pool, or the machine emits is declared here — one registry instead of
// string literals scattered across packages, so exporters, the
// telemetry server, and tests agree on the exact spelling. Counters
// built from a pattern (per-collective-kind, per-level) have helper
// constructors below; IsRegistered recognizes both forms.
const (
	// diskio: serial chunk scans and the hardened read path.
	CtrDiskChunks      = "diskio.chunks"
	CtrDiskBytes       = "diskio.bytes"
	CtrDiskRetries     = "diskio.retries"
	CtrDiskCorruptions = "diskio.corruptions"
	// diskio: double-buffered prefetch pipeline.
	CtrPrefetchChunks = "diskio.prefetch.chunks"
	CtrPrefetchStalls = "diskio.prefetch.stalls"
	// pool: intra-rank worker pool.
	CtrPoolMergeNS = "pool.merge.ns"
	// mafia/clique engine phases.
	CtrHistogramRecords = "histogram.records"
	CtrCDUsGenerated    = "cdus.generated"
	CtrCDUsDeduped      = "cdus.deduped"
	CtrCDUsPopulated    = "cdus.populated"
	CtrDenseUnits       = "dense.units"
	CtrPopulateRecords  = "populate.records"
	// pmafiad: the model-serving daemon's assignment path.
	CtrAssignRecords   = "assign.records"
	CtrAssignBatches   = "assign.batches"
	CtrAssignCacheHit  = "assign.cache.hit"
	CtrAssignCacheMiss = "assign.cache.miss"
	// pmafiad: the framed binary protocol and its request coalescer.
	CtrAssignFrames          = "assign.frames"
	CtrAssignCoalesceReqs    = "assign.coalesce.requests"
	CtrAssignCoalesceFlushes = "assign.coalesce.flushes"
	// pmafiad: serve-side request tracing (the trace ring).
	CtrTraceRequests      = "trace.requests"
	CtrTraceSampled       = "trace.sampled"
	CtrTraceRetained      = "trace.retained"
	CtrTraceRetainedError = "trace.retained.error"
	CtrTraceRetainedSlow  = "trace.retained.slow"
	// pmafiad: the continuous-profiling harness.
	CtrProfileCPU    = "profile.cpu"
	CtrProfileHeap   = "profile.heap"
	CtrProfilePruned = "profile.pruned"
	CtrProfileErrors = "profile.errors"
	// ingest: the streaming-ingest / background-refit pipeline.
	CtrIngestRecords     = "ingest.records"
	CtrIngestChunks      = "ingest.chunks"
	CtrIngestRefits      = "ingest.refits"
	CtrIngestRefitErrors = "ingest.refit.errors"
	// pmafiad: live model hot-swap (generation-aware cache handles).
	CtrSwapChecks = "swap.checks"
	CtrSwapSwaps  = "swap.swaps"
	CtrSwapErrors = "swap.errors"
	// ckpt: level-barrier checkpoint writes and recovery loads.
	CtrCkptWrites       = "ckpt.write"
	CtrCkptWriteBytes   = "ckpt.write.bytes"
	CtrCkptWriteNS      = "ckpt.write.ns"
	CtrCkptRestores     = "ckpt.restore"
	CtrCkptRestoreNS    = "ckpt.restore.ns"
	CtrCkptCorrupt      = "ckpt.corrupt"
	CtrCkptStale        = "ckpt.stale"
	CtrCkptResumeLevel  = "ckpt.resume.level"
	CtrSupervisorResume = "supervisor.resumes"
	CtrSupervisorRetry  = "supervisor.restarts"
)

// CtrHTTPStatus names the per-(route, status-code) request counter the
// serving daemon bumps once per handled request. route is a fixed
// lowercase route token (e.g. "assign", "models", "debug_slow"), never
// a raw URL path, so the counter space stays enumerable.
func CtrHTTPStatus(route string, code int) string {
	return "http." + route + ".status." + strconv.Itoa(code)
}

// ParseHTTPStatusCounter splits a CtrHTTPStatus name back into its
// route and status code; ok is false for any other counter name. The
// telemetry exposition uses it to group these counters into one
// labeled Prometheus family instead of one metric per (route, code).
func ParseHTTPStatusCounter(name string) (route, code string, ok bool) {
	rest, found := strings.CutPrefix(name, "http.")
	if !found {
		return "", "", false
	}
	route, code, found = strings.Cut(rest, ".status.")
	if !found || route == "" || len(code) != 3 {
		return "", "", false
	}
	return route, code, true
}

// Histogram name families. Like counters, every histogram the serving
// daemon observes is declared here; HistogramBounds fixes the bucket
// boundary set per family so same-named histograms always merge.
const (
	// HistAssignQueueSeconds is the time /assign requests spent queued
	// for an in-flight slot before being admitted (shed requests are
	// not observed — they never ran). Coalesced framed requests observe
	// a second sample here: enqueue-to-kernel-start inside the
	// coalescer.
	HistAssignQueueSeconds = "assign.queue.seconds"
	// HistAssignCoalesceRecords is the records labeled per coalesced
	// batch flush — how much co-riding the coalescer actually achieves.
	HistAssignCoalesceRecords = "assign.coalesce.records"
	// HistIngestRefitSeconds is the wall time of each background refit
	// triggered by the streaming ingester (fit + atomic model write).
	HistIngestRefitSeconds = "ingest.refit.seconds"
	// HistSwapSeconds is the wall time of each successful model hot
	// swap in the serving daemon: disk load + index compile + pointer
	// store. Failed swaps are counted (swap.errors), not observed here.
	HistSwapSeconds = "swap.seconds"
)

// HistRouteSeconds names the per-route request-latency histogram
// (whole-request wall time, including queue wait and response write).
func HistRouteSeconds(route string) string { return "http." + route + ".seconds" }

// HistModelSeconds names the per-model /assign latency histogram.
// model is the model file's base name (e.g. "taxi.pmfm").
func HistModelSeconds(model string) string { return "model." + model + ".seconds" }

// HistModelRecords names the per-model batch-size histogram: records
// labeled per /assign request against the model.
func HistModelRecords(model string) string { return "model." + model + ".records" }

// ParseRouteSecondsHistogram splits a HistRouteSeconds name back into
// its route; ok is false for any other histogram name.
func ParseRouteSecondsHistogram(name string) (route string, ok bool) {
	rest, found := strings.CutPrefix(name, "http.")
	if !found {
		return "", false
	}
	route, found = strings.CutSuffix(rest, ".seconds")
	if !found || route == "" || strings.Contains(route, ".") {
		return "", false
	}
	return route, true
}

// ParseModelHistogram splits a HistModelSeconds / HistModelRecords
// name into the model name and the kind ("seconds" or "records"); ok
// is false for any other histogram name.
func ParseModelHistogram(name string) (model, kind string, ok bool) {
	rest, found := strings.CutPrefix(name, "model.")
	if !found {
		return "", "", false
	}
	dot := strings.LastIndexByte(rest, '.')
	if dot <= 0 {
		return "", "", false
	}
	model, kind = rest[:dot], rest[dot+1:]
	if kind != "seconds" && kind != "records" {
		return "", "", false
	}
	return model, kind, true
}

// Gauge names. Gauges are last-value-wins point-in-time readings —
// unlike counters they can move down — and, like the other metric
// kinds, every gauge set anywhere is declared here.
const (
	// GaugeIngestPending is the number of records buffered in the
	// streaming ingester since the last completed refit.
	GaugeIngestPending = "ingest.pending.records"
)

// GaugeModelStaleness names the per-model staleness gauge: seconds
// between the on-disk model file's mtime and the generation currently
// being served. Zero means the resident compiled index is the newest
// on disk; it climbs while a newer file waits to be swapped in (or a
// swap keeps failing). model is the model file's base name.
func GaugeModelStaleness(model string) string {
	return "model." + model + ".staleness.seconds"
}

// ParseModelStalenessGauge splits a GaugeModelStaleness name back into
// its model name; ok is false for any other gauge name.
func ParseModelStalenessGauge(name string) (model string, ok bool) {
	rest, found := strings.CutPrefix(name, "model.")
	if !found {
		return "", false
	}
	model, found = strings.CutSuffix(rest, ".staleness.seconds")
	if !found || model == "" {
		return "", false
	}
	return model, true
}

// registeredGauges is the exact-name half of the gauge registry.
var registeredGauges = map[string]bool{
	GaugeIngestPending: true,
}

// gaugePatterned matches the constructed gauge families — currently
// just model.<file>.staleness.seconds.
var gaugePatterned = regexp.MustCompile(`^model\..+\.staleness\.seconds$`)

// IsRegisteredGauge reports whether name is a declared gauge, exact or
// an instance of a registered family — the gauge half of IsRegistered.
func IsRegisteredGauge(name string) bool {
	return registeredGauges[name] || gaugePatterned.MatchString(name)
}

// HistogramBounds returns the declared bucket boundary set for a
// histogram name family: ".records" families use the size decades,
// everything else the latency ladder. One boundary set per family is
// what guarantees same-named per-rank histograms merge.
func HistogramBounds(name string) []float64 {
	if strings.HasSuffix(name, ".records") {
		return DefaultSizeBounds
	}
	return DefaultLatencyBounds
}

// CommCountCounter names the per-kind collective-operation counter the
// recorder bumps in Comm (kind is one of sp2's collective kinds).
func CommCountCounter(kind string) string { return "comm." + kind + ".count" }

// CommBytesCounter names the per-kind collective payload-bytes counter.
func CommBytesCounter(kind string) string { return "comm." + kind + ".bytes" }

// LevelDenseCounter names the per-level dense-unit counter for
// bottom-up level k.
func LevelDenseCounter(k int) string {
	// Two digits keep lexicographic and numeric order aligned for the
	// levels a run can realistically reach.
	d1, d0 := byte('0'+k/10%10), byte('0'+k%10)
	return "level." + string([]byte{d1, d0}) + ".dense"
}

// registered is the exact-name half of the registry.
var registered = map[string]bool{
	CtrDiskChunks:            true,
	CtrDiskBytes:             true,
	CtrDiskRetries:           true,
	CtrDiskCorruptions:       true,
	CtrPrefetchChunks:        true,
	CtrPrefetchStalls:        true,
	CtrPoolMergeNS:           true,
	CtrHistogramRecords:      true,
	CtrCDUsGenerated:         true,
	CtrCDUsDeduped:           true,
	CtrCDUsPopulated:         true,
	CtrDenseUnits:            true,
	CtrPopulateRecords:       true,
	CtrAssignRecords:         true,
	CtrAssignBatches:         true,
	CtrAssignCacheHit:        true,
	CtrAssignCacheMiss:       true,
	CtrAssignFrames:          true,
	CtrAssignCoalesceReqs:    true,
	CtrAssignCoalesceFlushes: true,
	CtrTraceRequests:         true,
	CtrTraceSampled:          true,
	CtrTraceRetained:         true,
	CtrTraceRetainedError:    true,
	CtrTraceRetainedSlow:     true,
	CtrProfileCPU:            true,
	CtrProfileHeap:           true,
	CtrProfilePruned:         true,
	CtrProfileErrors:         true,
	CtrIngestRecords:         true,
	CtrIngestChunks:          true,
	CtrIngestRefits:          true,
	CtrIngestRefitErrors:     true,
	CtrSwapChecks:            true,
	CtrSwapSwaps:             true,
	CtrSwapErrors:            true,
	CtrCkptWrites:            true,
	CtrCkptWriteBytes:        true,
	CtrCkptWriteNS:           true,
	CtrCkptRestores:          true,
	CtrCkptRestoreNS:         true,
	CtrCkptCorrupt:           true,
	CtrCkptStale:             true,
	CtrCkptResumeLevel:       true,
	CtrSupervisorResume:      true,
	CtrSupervisorRetry:       true,
}

// patterned matches the constructed counter families:
// comm.<kind>.count/bytes, level.NN.dense, and the serving daemon's
// http.<route>.status.<code> request counters.
var patterned = regexp.MustCompile(`^(comm\.[a-z]+\.(count|bytes)|level\.[0-9]{2}\.dense|http\.[a-z_]+\.status\.[0-9]{3})$`)

// histPatterned matches the constructed histogram families:
// http.<route>.seconds and model.<file>.seconds/.records (model file
// names contain dots, so the model segment is matched loosely — the
// family is still closed because only resolved model base names reach
// the recorder).
var histPatterned = regexp.MustCompile(`^(http\.[a-z_]+\.seconds|model\..+\.(seconds|records))$`)

// registeredHists is the exact-name half of the histogram registry.
var registeredHists = map[string]bool{
	HistAssignQueueSeconds:    true,
	HistAssignCoalesceRecords: true,
	HistIngestRefitSeconds:    true,
	HistSwapSeconds:           true,
}

// IsRegisteredHistogram reports whether name is a declared histogram,
// either an exact registry entry or an instance of a registered
// family — the histogram half of IsRegistered, with the same purpose:
// an Observe under an undeclared name fails the registry tests
// instead of silently forking the metric space.
func IsRegisteredHistogram(name string) bool {
	return registeredHists[name] || histPatterned.MatchString(name)
}

// PromName mangles an obs counter or histogram name into the
// Prometheus metric name it is exposed under:
// "diskio.prefetch.chunks" -> "pmafia_diskio_prefetch_chunks". This is
// the single name-mangling rule of the exposition — both the counter
// and the histogram exporters in obs/serve call it, and a test locks
// the mapping for every registered name.
func PromName(name string) string {
	mangled := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return "pmafia_" + mangled
}

// IsRegistered reports whether name is a declared counter, either an
// exact registry entry or an instance of a registered pattern. Tests
// use it to catch counter-name drift: a counter emitted under a
// misspelled or undeclared name fails the registry test instead of
// silently forking the metric space.
func IsRegistered(name string) bool {
	return registered[name] || patterned.MatchString(name)
}

// Registered returns the exact-name registry entries, sorted. Pattern
// families (comm.*, level.*) are not enumerated.
func Registered() []string {
	out := make([]string, 0, len(registered))
	for name := range registered {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// sampled marks the counters whose increments are also recorded as
// time-stamped samples for the Chrome trace export ("C" counter
// events), so pipelining behavior — prefetch progress, stalls, pool
// merge cost — is visible in the trace viewer over time rather than
// only as end-of-run totals. Keep this set small: every increment of a
// sampled counter appends one sample.
var sampled = map[string]bool{
	CtrPrefetchChunks: true,
	CtrPrefetchStalls: true,
	CtrPoolMergeNS:    true,
	CtrDiskChunks:     true,
}
