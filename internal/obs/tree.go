package obs

// Collective kinds, shared with the sp2 machine (sp2 re-exports these
// so both packages spell per-kind counters and events identically).
const (
	KindReduce  = "reduce"  // the Allreduce* family
	KindBcast   = "bcast"   // broadcast
	KindGather  = "gather"  // gather-concatenate-broadcast
	KindBarrier = "barrier" // barrier
)

// treeMessagesLocked synthesizes the point-to-point messages of one
// collective's modeled communication tree. The sp2 cost model charges
// Steps tree stages of (latency + payload/bandwidth); this expands
// those stages into the individual src→dst messages a real MPI
// implementation would send:
//
//   - reduce/barrier: recursive doubling — at stage s every rank
//     exchanges with its partner rank^2^s (both directions).
//   - bcast: binomial tree from rank 0 — at stage s ranks < 2^s each
//     forward to rank+2^s.
//   - gather: the first Steps/2 stages combine toward rank 0 along a
//     binomial tree (nearest pairs first), the rest broadcast the
//     concatenation back out.
//
// Each message occupies one stage's slice of the collective's
// [Start, Depart] window on the synchronized clock. Caller holds r.mu.
func (r *Recorder) treeMessagesLocked(ce *CollEvent) []MsgEvent {
	p := len(ce.Arrive)
	if p <= 1 || ce.Steps <= 0 {
		return nil
	}
	perStep := (ce.Depart - ce.Start) / float64(ce.Steps)
	var out []MsgEvent
	emit := func(step, src, dst int) {
		r.nextMsg++
		out = append(out, MsgEvent{
			ID: r.nextMsg, Coll: ce.Seq, Kind: ce.Kind, Step: step,
			Src: src, Dst: dst, Bytes: ce.PayloadBytes,
			Start: ce.Start + float64(step)*perStep,
			End:   ce.Start + float64(step+1)*perStep,
		})
	}
	switch ce.Kind {
	case KindGather:
		half := ce.Steps / 2
		for s := 0; s < half; s++ {
			dist := 1 << s
			for dst := 0; dst+dist < p; dst += 2 * dist {
				emit(s, dst+dist, dst)
			}
		}
		for s := half; s < ce.Steps; s++ {
			dist := 1 << (s - half)
			for src := 0; src < dist && src+dist < p; src++ {
				emit(s, src, src+dist)
			}
		}
	case KindBcast:
		for s := 0; s < ce.Steps; s++ {
			dist := 1 << s
			for src := 0; src < dist && src+dist < p; src++ {
				emit(s, src, src+dist)
			}
		}
	default: // reduce, barrier: pairwise exchange
		for s := 0; s < ce.Steps; s++ {
			dist := 1 << s
			for a := 0; a < p; a++ {
				if b := a ^ dist; b < p && a < b {
					emit(s, a, b)
					emit(s, b, a)
				}
			}
		}
	}
	return out
}
