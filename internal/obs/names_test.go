package obs

import "testing"

func TestCounterRegistry(t *testing.T) {
	for _, name := range []string{
		CtrDiskChunks, CtrDiskBytes, CtrDiskRetries, CtrDiskCorruptions,
		CtrPrefetchChunks, CtrPrefetchStalls, CtrPoolMergeNS,
		CtrHistogramRecords, CtrCDUsGenerated, CtrCDUsDeduped,
		CtrCDUsPopulated, CtrDenseUnits, CtrPopulateRecords,
		CtrAssignFrames, CtrAssignCoalesceReqs, CtrAssignCoalesceFlushes,
		CtrTraceRequests, CtrTraceSampled, CtrTraceRetained,
		CtrTraceRetainedError, CtrTraceRetainedSlow,
		CtrProfileCPU, CtrProfileHeap, CtrProfilePruned, CtrProfileErrors,
		CtrIngestRecords, CtrIngestChunks, CtrIngestRefits, CtrIngestRefitErrors,
		CtrSwapChecks, CtrSwapSwaps, CtrSwapErrors,
	} {
		if !IsRegistered(name) {
			t.Errorf("constant %q not registered", name)
		}
	}
	for _, kind := range []string{KindReduce, KindBcast, KindGather, KindBarrier} {
		if !IsRegistered(CommCountCounter(kind)) || !IsRegistered(CommBytesCounter(kind)) {
			t.Errorf("comm counters for %q not registered", kind)
		}
	}
	for _, k := range []int{1, 7, 42} {
		if !IsRegistered(LevelDenseCounter(k)) {
			t.Errorf("%q not registered", LevelDenseCounter(k))
		}
	}
	if got := LevelDenseCounter(7); got != "level.07.dense" {
		t.Errorf("LevelDenseCounter(7) = %q", got)
	}
	for _, route := range []string{"assign", "models", "healthz", "readyz", "metrics", "debug_slow"} {
		for _, code := range []int{200, 404, 503} {
			if !IsRegistered(CtrHTTPStatus(route, code)) {
				t.Errorf("%q not registered", CtrHTTPStatus(route, code))
			}
		}
	}
	for _, bogus := range []string{"", "bogus", "comm.reduce", "level.7.dense", "diskio.chunks2",
		"http.assign.status.20", "http..status.200"} {
		if IsRegistered(bogus) {
			t.Errorf("%q should not be registered", bogus)
		}
	}
	if len(Registered()) == 0 {
		t.Error("Registered() is empty")
	}
}

func TestHistogramRegistry(t *testing.T) {
	for _, name := range []string{
		HistAssignQueueSeconds, HistAssignCoalesceRecords,
		HistIngestRefitSeconds, HistSwapSeconds,
		HistRouteSeconds("assign"), HistRouteSeconds("debug_slow"),
		HistModelSeconds("taxi.pmfm"), HistModelRecords("taxi.pmfm"),
	} {
		if !IsRegisteredHistogram(name) {
			t.Errorf("%q not registered as a histogram", name)
		}
	}
	for _, bogus := range []string{"", "assign.seconds2", "http.assign.bytes",
		"model.x.count", CtrAssignRecords} {
		if IsRegisteredHistogram(bogus) {
			t.Errorf("%q should not be a registered histogram", bogus)
		}
	}
	// Histogram and counter name spaces stay disjoint.
	if IsRegistered(HistRouteSeconds("assign")) {
		t.Error("a histogram name is registered as a counter")
	}
}

func TestGaugeRegistry(t *testing.T) {
	for _, name := range []string{
		GaugeIngestPending,
		GaugeModelStaleness("taxi.pmfm"),
		GaugeModelStaleness("a.b.pmfm"),
	} {
		if !IsRegisteredGauge(name) {
			t.Errorf("%q not registered as a gauge", name)
		}
	}
	for _, bogus := range []string{"", "model..staleness.seconds", "model.x.seconds",
		CtrIngestRecords, HistSwapSeconds} {
		if IsRegisteredGauge(bogus) {
			t.Errorf("%q should not be a registered gauge", bogus)
		}
	}
	// Gauge, counter, and histogram name spaces stay disjoint.
	if IsRegistered(GaugeIngestPending) || IsRegisteredHistogram(GaugeIngestPending) {
		t.Error("a gauge name is registered as a counter or histogram")
	}
	if model, ok := ParseModelStalenessGauge(GaugeModelStaleness("a.b.pmfm")); !ok || model != "a.b.pmfm" {
		t.Errorf("ParseModelStalenessGauge = %q %v", model, ok)
	}
	if _, ok := ParseModelStalenessGauge(HistModelSeconds("a.pmfm")); ok {
		t.Error("ParseModelStalenessGauge accepted a model histogram")
	}
}

func TestMetricNameParsers(t *testing.T) {
	if route, code, ok := ParseHTTPStatusCounter(CtrHTTPStatus("assign", 503)); !ok || route != "assign" || code != "503" {
		t.Errorf("ParseHTTPStatusCounter = %q %q %v", route, code, ok)
	}
	if _, _, ok := ParseHTTPStatusCounter(CtrAssignRecords); ok {
		t.Error("ParseHTTPStatusCounter accepted a plain counter")
	}
	if route, ok := ParseRouteSecondsHistogram(HistRouteSeconds("debug_slow")); !ok || route != "debug_slow" {
		t.Errorf("ParseRouteSecondsHistogram = %q %v", route, ok)
	}
	if _, ok := ParseRouteSecondsHistogram(HistModelSeconds("a.pmfm")); ok {
		t.Error("ParseRouteSecondsHistogram accepted a model histogram")
	}
	if model, kind, ok := ParseModelHistogram(HistModelSeconds("a.b.pmfm")); !ok || model != "a.b.pmfm" || kind != "seconds" {
		t.Errorf("ParseModelHistogram(seconds) = %q %q %v", model, kind, ok)
	}
	if model, kind, ok := ParseModelHistogram(HistModelRecords("a.pmfm")); !ok || model != "a.pmfm" || kind != "records" {
		t.Errorf("ParseModelHistogram(records) = %q %q %v", model, kind, ok)
	}
	if _, _, ok := ParseModelHistogram(HistRouteSeconds("assign")); ok {
		t.Error("ParseModelHistogram accepted a route histogram")
	}
}

func TestHistogramBoundsByFamily(t *testing.T) {
	for _, name := range []string{HistRouteSeconds("assign"), HistModelSeconds("a.pmfm"), HistAssignQueueSeconds} {
		if got := HistogramBounds(name); &got[0] != &DefaultLatencyBounds[0] {
			t.Errorf("%q did not get the latency bounds", name)
		}
	}
	for _, name := range []string{HistModelRecords("a.pmfm"), HistAssignCoalesceRecords} {
		if got := HistogramBounds(name); &got[0] != &DefaultSizeBounds[0] {
			t.Errorf("%q did not get the size bounds", name)
		}
	}
}

// TestPromNameMapping locks the single name-mangling rule of the
// Prometheus exposition for every exact registered counter name, plus
// one instance of each patterned counter and histogram family. A
// change here is a dashboard-breaking change — update deliberately.
func TestPromNameMapping(t *testing.T) {
	want := map[string]string{
		CtrDiskChunks:            "pmafia_diskio_chunks",
		CtrDiskBytes:             "pmafia_diskio_bytes",
		CtrDiskRetries:           "pmafia_diskio_retries",
		CtrDiskCorruptions:       "pmafia_diskio_corruptions",
		CtrPrefetchChunks:        "pmafia_diskio_prefetch_chunks",
		CtrPrefetchStalls:        "pmafia_diskio_prefetch_stalls",
		CtrPoolMergeNS:           "pmafia_pool_merge_ns",
		CtrHistogramRecords:      "pmafia_histogram_records",
		CtrCDUsGenerated:         "pmafia_cdus_generated",
		CtrCDUsDeduped:           "pmafia_cdus_deduped",
		CtrCDUsPopulated:         "pmafia_cdus_populated",
		CtrDenseUnits:            "pmafia_dense_units",
		CtrPopulateRecords:       "pmafia_populate_records",
		CtrAssignRecords:         "pmafia_assign_records",
		CtrAssignBatches:         "pmafia_assign_batches",
		CtrAssignCacheHit:        "pmafia_assign_cache_hit",
		CtrAssignCacheMiss:       "pmafia_assign_cache_miss",
		CtrAssignFrames:          "pmafia_assign_frames",
		CtrAssignCoalesceReqs:    "pmafia_assign_coalesce_requests",
		CtrAssignCoalesceFlushes: "pmafia_assign_coalesce_flushes",
		CtrTraceRequests:         "pmafia_trace_requests",
		CtrTraceSampled:          "pmafia_trace_sampled",
		CtrTraceRetained:         "pmafia_trace_retained",
		CtrTraceRetainedError:    "pmafia_trace_retained_error",
		CtrTraceRetainedSlow:     "pmafia_trace_retained_slow",
		CtrProfileCPU:            "pmafia_profile_cpu",
		CtrProfileHeap:           "pmafia_profile_heap",
		CtrProfilePruned:         "pmafia_profile_pruned",
		CtrProfileErrors:         "pmafia_profile_errors",
		CtrIngestRecords:         "pmafia_ingest_records",
		CtrIngestChunks:          "pmafia_ingest_chunks",
		CtrIngestRefits:          "pmafia_ingest_refits",
		CtrIngestRefitErrors:     "pmafia_ingest_refit_errors",
		CtrSwapChecks:            "pmafia_swap_checks",
		CtrSwapSwaps:             "pmafia_swap_swaps",
		CtrSwapErrors:            "pmafia_swap_errors",
		CtrCkptWrites:            "pmafia_ckpt_write",
		CtrCkptWriteBytes:        "pmafia_ckpt_write_bytes",
		CtrCkptWriteNS:           "pmafia_ckpt_write_ns",
		CtrCkptRestores:          "pmafia_ckpt_restore",
		CtrCkptRestoreNS:         "pmafia_ckpt_restore_ns",
		CtrCkptCorrupt:           "pmafia_ckpt_corrupt",
		CtrCkptStale:             "pmafia_ckpt_stale",
		CtrCkptResumeLevel:       "pmafia_ckpt_resume_level",
		CtrSupervisorResume:      "pmafia_supervisor_resumes",
		CtrSupervisorRetry:       "pmafia_supervisor_restarts",
		// Patterned families, one instance each.
		CommCountCounter(KindReduce):     "pmafia_comm_reduce_count",
		CommBytesCounter(KindGather):     "pmafia_comm_gather_bytes",
		LevelDenseCounter(7):             "pmafia_level_07_dense",
		CtrHTTPStatus("assign", 200):     "pmafia_http_assign_status_200",
		HistAssignQueueSeconds:           "pmafia_assign_queue_seconds",
		HistAssignCoalesceRecords:        "pmafia_assign_coalesce_records",
		HistRouteSeconds("assign"):       "pmafia_http_assign_seconds",
		HistModelSeconds("taxi.pmfm"):    "pmafia_model_taxi_pmfm_seconds",
		HistModelRecords("taxi.pmfm"):    "pmafia_model_taxi_pmfm_records",
		HistIngestRefitSeconds:           "pmafia_ingest_refit_seconds",
		HistSwapSeconds:                  "pmafia_swap_seconds",
		GaugeIngestPending:               "pmafia_ingest_pending_records",
		GaugeModelStaleness("taxi.pmfm"): "pmafia_model_taxi_pmfm_staleness_seconds",
	}
	// Every exact registered name must be locked above.
	for _, name := range Registered() {
		if _, ok := want[name]; !ok {
			t.Errorf("registered counter %q has no locked Prometheus mapping — add it", name)
		}
	}
	for name, pn := range want {
		if got := PromName(name); got != pn {
			t.Errorf("PromName(%q) = %q, want %q", name, got, pn)
		}
	}
}
