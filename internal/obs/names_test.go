package obs

import "testing"

func TestCounterRegistry(t *testing.T) {
	for _, name := range []string{
		CtrDiskChunks, CtrDiskBytes, CtrDiskRetries, CtrDiskCorruptions,
		CtrPrefetchChunks, CtrPrefetchStalls, CtrPoolMergeNS,
		CtrHistogramRecords, CtrCDUsGenerated, CtrCDUsDeduped,
		CtrCDUsPopulated, CtrDenseUnits, CtrPopulateRecords,
	} {
		if !IsRegistered(name) {
			t.Errorf("constant %q not registered", name)
		}
	}
	for _, kind := range []string{KindReduce, KindBcast, KindGather, KindBarrier} {
		if !IsRegistered(CommCountCounter(kind)) || !IsRegistered(CommBytesCounter(kind)) {
			t.Errorf("comm counters for %q not registered", kind)
		}
	}
	for _, k := range []int{1, 7, 42} {
		if !IsRegistered(LevelDenseCounter(k)) {
			t.Errorf("%q not registered", LevelDenseCounter(k))
		}
	}
	if got := LevelDenseCounter(7); got != "level.07.dense" {
		t.Errorf("LevelDenseCounter(7) = %q", got)
	}
	for _, bogus := range []string{"", "bogus", "comm.reduce", "level.7.dense", "diskio.chunks2"} {
		if IsRegistered(bogus) {
			t.Errorf("%q should not be registered", bogus)
		}
	}
	if len(Registered()) == 0 {
		t.Error("Registered() is empty")
	}
}
