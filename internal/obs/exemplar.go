package obs

// OpenMetrics exemplars: a retained serve-trace ID pinned to the
// histogram bucket its request's latency landed in, so a dashboard
// can jump from a p99 bucket straight to a concrete trace at
// /debug/trace/{id}. The recorder keeps at most one exemplar per
// (histogram name, bucket) — the most recent wins — mirroring how
// the OpenMetrics exposition attaches at most one exemplar per
// _bucket line.

import "time"

// Exemplar is one trace-linked observation. Ts is wall-clock Unix
// seconds (the OpenMetrics exemplar timestamp), not recorder time.
type Exemplar struct {
	TraceID string
	Value   float64
	Ts      float64
}

// SetExemplar records v (with its trace ID) as the exemplar of the
// bucket v lands in for the named histogram, using the same boundary
// ladder HistogramBounds assigns the name. Callers pass only retained
// trace IDs — an exemplar pointing at an evicted or never-kept trace
// would dead-end. Nil-receiver and empty-ID calls are no-ops.
func (r *Recorder) SetExemplar(name string, v float64, traceID string) {
	if r == nil || traceID == "" {
		return
	}
	ts := float64(time.Now().UnixNano()) / 1e9
	bounds := HistogramBounds(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.exemplars == nil {
		r.exemplars = map[string][]Exemplar{}
	}
	ex := r.exemplars[name]
	if ex == nil {
		ex = make([]Exemplar, len(bounds)+1) // +1: the +Inf overflow bucket
		r.exemplars[name] = ex
	}
	ex[BucketIndex(bounds, v)] = Exemplar{TraceID: traceID, Value: v, Ts: ts}
}

// Exemplars returns a copy of the named histogram's per-bucket
// exemplars (index i = bucket i, last = +Inf), nil when none were
// ever set. Buckets without an exemplar have an empty TraceID.
func (r *Recorder) Exemplars(name string) []Exemplar {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ex := r.exemplars[name]
	if ex == nil {
		return nil
	}
	out := make([]Exemplar, len(ex))
	copy(out, ex)
	return out
}
