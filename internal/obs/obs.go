// Package obs is the observability layer of the reproduction: named,
// nestable phase spans and flat counters recorded per rank of the sp2
// machine, exported as a Chrome trace_event file (open it in
// chrome://tracing or Perfetto — one row per rank), a flat metrics JSON
// document, and a human-readable per-phase table.
//
// The recorder is pay-for-use. Every method has a nil-receiver no-op
// fast path, so instrumented code calls through a possibly-nil
// *Recorder without allocating; a run with no recorder attached costs
// a pointer test per instrumentation point.
//
// Time is whatever the bound clocks say. sp2.Run binds each rank's
// clock when Config.Recorder is set: in Sim mode that is the rank's
// *virtual* clock, so traces of simulated runs are exact (span
// durations include the modeled communication and synchronization
// jumps of collectives, and per rank they add up to the machine
// report's RankSeconds); in Real mode it is wall-clock time since the
// machine started. Spans opened for an unbound rank fall back to a
// wall clock anchored at the recorder's creation.
package obs

import (
	"sync"
	"time"
)

// Span is one recorded phase on one rank. Fields are written while the
// span is open and must be read only after the run completes (or under
// the recorder's snapshot methods).
type Span struct {
	// Name is the phase name (e.g. "populate").
	Name string
	// Rank is the machine rank the span was recorded on.
	Rank int
	// Level is the bottom-up level k the span belongs to, 0 when the
	// phase is not level-scoped.
	Level int
	// Depth is the nesting depth (0 = top-level).
	Depth int
	// Start and Stop are clock readings in seconds.
	Start, Stop float64
	// CommSeconds and CommBytes are the modeled communication cost and
	// payload bytes of the collectives that completed inside this span
	// while it was the innermost open span on its rank.
	CommSeconds float64
	CommBytes   int64

	r    *Recorder
	open bool
}

// Duration returns Stop-Start (0 for a still-open span).
func (s *Span) Duration() float64 {
	if s == nil || s.open {
		return 0
	}
	return s.Stop - s.Start
}

// rankState is one rank's recording track.
type rankState struct {
	clock func() float64
	spans []*Span // all spans in start order
	stack []*Span // currently open spans, innermost last
	ctrs  map[string]int64
	hists map[string]*Histogram
}

func newRankState() *rankState {
	return &rankState{ctrs: map[string]int64{}, hists: map[string]*Histogram{}}
}

// MsgEvent is one modeled point-to-point message of a collective: a
// step of the collective's communication tree, carrying the payload
// from Src to Dst. Send and receive share the event (and its ID), which
// is the send↔recv correlation the Chrome flow-event export draws as an
// arrow between the two rank tracks.
type MsgEvent struct {
	// ID is the machine-wide correlation id, unique per message.
	ID int64 `json:"id"`
	// Coll is the ordinal of the collective this message belongs to.
	Coll int `json:"coll"`
	// Kind is the collective kind (sp2.KindReduce, ...).
	Kind string `json:"kind"`
	// Step is the tree stage within the collective (0-based).
	Step int `json:"step"`
	// Src and Dst are the sending and receiving ranks.
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Bytes is the message payload.
	Bytes int64 `json:"bytes"`
	// Start is the send time on Src's clock, End the receive time on
	// Dst's clock. After a collective both clocks agree (the rendezvous
	// synchronizes them), so the pair is consistent by construction.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// CollRecord describes one completed collective rendezvous to the
// recorder. sp2's combiner fills it in while every rank is parked
// inside the collective.
type CollRecord struct {
	// Kind is the collective kind (sp2.KindReduce, ...).
	Kind string
	// Steps is the number of tree stages the cost model charged
	// (ceil(log2 p) for reduce/bcast/barrier, twice that for gather).
	Steps int
	// PayloadBytes is the payload carried per stage message.
	PayloadBytes int64
	// Bytes is the total payload moved, summed over stages — the same
	// figure the machine report and comm counters use.
	Bytes int64
	// Seconds is the modeled communication cost charged.
	Seconds float64
	// Arrive is each rank's clock when it entered the collective. The
	// recorder keeps the slice; pass an owned copy.
	Arrive []float64
	// Start is when communication begins (the last arrival's clock) and
	// Depart the synchronized clock every rank resumes at.
	Start, Depart float64
}

// CollEvent is a recorded collective: the CollRecord plus its ordinal.
type CollEvent struct {
	Seq int
	CollRecord
}

// ctrSample is one time-stamped observation of a sampled counter's
// running total (see names.go: sampled).
type ctrSample struct {
	ts   float64
	name string
	val  int64
}

// Recorder collects spans and counters for a run. A single mutex
// serializes all mutation: instrumentation points are phase- and
// chunk-granular, far too coarse for the lock to matter, and it keeps
// concurrent Real-mode ranks race-free by construction.
type Recorder struct {
	mu      sync.Mutex
	epoch   time.Time
	ranks   []*rankState
	global  map[string]int64
	colls   []*CollEvent
	msgs    []MsgEvent
	samples []ctrSample
	nextMsg int64
	// exemplars holds one exemplar per (histogram name, bucket) —
	// see exemplar.go. Lazily allocated: nil until SetExemplar runs.
	exemplars map[string][]Exemplar
	// gauges holds last-value-wins point-in-time readings (staleness,
	// queue depth). Machine-global: gauges have no rank identity.
	// Lazily allocated: nil until SetGauge runs.
	gauges map[string]float64
}

// New creates an empty recorder.
func New() *Recorder {
	return &Recorder{epoch: time.Now(), global: map[string]int64{}}
}

// BindRanks sizes the per-rank tracks to p ranks and installs their
// clock. sp2.Run calls this before launching rank goroutines; binding
// while spans are being recorded is not supported.
func (r *Recorder) BindRanks(p int, clock func(rank int) float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.ranks) < p {
		r.ranks = append(r.ranks, newRankState())
	}
	for i := 0; i < p; i++ {
		rank := i
		r.ranks[i].clock = func() float64 { return clock(rank) }
	}
}

// rank returns the track for rank, growing the track table with
// wall-clocked states for ranks never bound. Caller holds r.mu.
func (r *Recorder) rank(rank int) *rankState {
	if rank < 0 {
		rank = 0
	}
	for len(r.ranks) <= rank {
		r.ranks = append(r.ranks, newRankState())
	}
	rs := r.ranks[rank]
	if rs.clock == nil {
		rs.clock = func() float64 { return time.Since(r.epoch).Seconds() }
	}
	return rs
}

// Start opens a span named name on rank, nested inside the rank's
// innermost open span. Returns nil (a no-op span) on a nil recorder.
func (r *Recorder) Start(rank int, name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.rank(rank)
	s := &Span{Name: name, Rank: rank, Depth: len(rs.stack), Start: rs.clock(), r: r, open: true}
	rs.spans = append(rs.spans, s)
	rs.stack = append(rs.stack, s)
	return s
}

// SetLevel labels the span with the bottom-up level k and returns the
// span for chaining.
func (s *Span) SetLevel(k int) *Span {
	if s == nil {
		return nil
	}
	s.r.mu.Lock()
	s.Level = k
	s.r.mu.Unlock()
	return s
}

// End closes the span, reading the rank clock. Ending an already-ended
// span is a no-op; ending out of order also closes the spans nested
// inside it.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if !s.open {
		return
	}
	rs := r.rank(s.Rank)
	now := rs.clock()
	for i := len(rs.stack) - 1; i >= 0; i-- {
		sp := rs.stack[i]
		sp.Stop = now
		sp.open = false
		if sp == s {
			rs.stack = rs.stack[:i]
			return
		}
	}
	// s was not on the stack (already popped by an enclosing End).
	s.Stop = now
	s.open = false
}

// Add bumps rank-local counter name by delta. Counters in the sampled
// set (names.go) also record a time-stamped sample of the running total
// on the rank's clock for the trace export.
func (r *Recorder) Add(rank int, name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	rs := r.rank(rank)
	rs.ctrs[name] += delta
	if sampled[name] {
		r.sampleLocked(rs.clock(), name)
	}
	r.mu.Unlock()
}

// AddGlobal bumps a machine-global counter (used by code that has no
// rank identity, such as shared file scanners). Sampled counters record
// their sample on the recorder's wall clock: global emitters (e.g. the
// prefetch reader goroutine) have no rank clock, so in Sim mode these
// samples are wall-anchored, not virtual — see the package README.
func (r *Recorder) AddGlobal(name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.global[name] += delta
	if sampled[name] {
		r.sampleLocked(time.Since(r.epoch).Seconds(), name)
	}
	r.mu.Unlock()
}

// sampleLocked appends a sample of name's current machine-wide total.
// Caller holds r.mu.
func (r *Recorder) sampleLocked(ts float64, name string) {
	v := r.global[name]
	for _, rs := range r.ranks {
		v += rs.ctrs[name]
	}
	r.samples = append(r.samples, ctrSample{ts: ts, name: name, val: v})
}

// SetGauge records the current value of gauge name, replacing any
// previous reading. Unlike counters, gauges move in both directions —
// they report a state (records pending, seconds stale), not a total.
func (r *Recorder) SetGauge(name string, value float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.gauges == nil {
		r.gauges = map[string]float64{}
	}
	r.gauges[name] = value
	r.mu.Unlock()
}

// Gauge returns the last value set for gauge name (0 if never set).
func (r *Recorder) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Gauges snapshots every gauge that has been set.
func (r *Recorder) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.gauges) == 0 {
		return nil
	}
	out := make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// Comm attributes one completed collective to rank: its modeled cost
// and payload bytes are charged to the rank's innermost open span and
// mirrored into per-kind counters. sp2's combiner calls this for every
// rank while all ranks are parked inside the collective, which makes
// the cross-goroutine write safe (the parked ranks synchronize on the
// machine mutex before touching their own track again).
func (r *Recorder) Comm(rank int, kind string, bytes int64, seconds float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.rank(rank)
	if n := len(rs.stack); n > 0 {
		sp := rs.stack[n-1]
		sp.CommSeconds += seconds
		sp.CommBytes += bytes
	}
	rs.ctrs[CommCountCounter(kind)]++
	rs.ctrs[CommBytesCounter(kind)] += bytes
}

// Collective records one completed collective rendezvous and
// synthesizes the per-stage point-to-point messages of its modeled
// communication tree (see tree.go). sp2's combiner calls this once per
// collective while all ranks are parked inside it.
func (r *Recorder) Collective(ev CollRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ce := &CollEvent{Seq: len(r.colls), CollRecord: ev}
	r.colls = append(r.colls, ce)
	r.msgs = append(r.msgs, r.treeMessagesLocked(ce)...)
}

// Collectives returns the recorded collective events in machine order.
// The slice is a snapshot; read it after the run completes.
func (r *Recorder) Collectives() []*CollEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*CollEvent(nil), r.colls...)
}

// Messages returns every recorded message event in emission order.
func (r *Recorder) Messages() []MsgEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]MsgEvent(nil), r.msgs...)
}

// PhaseStatus is one rank's live position in the run: the innermost
// open span (if any) and when it started on the rank's clock.
type PhaseStatus struct {
	Rank  int     `json:"rank"`
	Phase string  `json:"phase"`
	Level int     `json:"level,omitempty"`
	Since float64 `json:"since"`
	Depth int     `json:"depth"`
}

// CurrentPhases snapshots the innermost open span of every rank — the
// live "where is the machine right now" view the telemetry server
// serves. Ranks with no open span report an empty Phase.
func (r *Recorder) CurrentPhases() []PhaseStatus {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PhaseStatus, len(r.ranks))
	for rank, rs := range r.ranks {
		out[rank] = PhaseStatus{Rank: rank}
		if n := len(rs.stack); n > 0 {
			sp := rs.stack[n-1]
			out[rank].Phase = sp.Name
			out[rank].Level = sp.Level
			out[rank].Since = sp.Start
			out[rank].Depth = sp.Depth
		}
	}
	return out
}

// CurrentPhase returns the name of rank's innermost open span, or ""
// when the rank has no open span (or on a nil recorder). The sp2
// machine uses it to label failures with the phase the rank died in.
func (r *Recorder) CurrentPhase(rank int) string {
	if r == nil || rank < 0 {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank >= len(r.ranks) {
		return ""
	}
	if stack := r.ranks[rank].stack; len(stack) > 0 {
		return stack[len(stack)-1].Name
	}
	return ""
}

// Ranks returns the number of rank tracks recorded.
func (r *Recorder) Ranks() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ranks)
}

// Spans returns rank's spans in start order. The returned slice is a
// snapshot; the spans themselves are shared, so read them only after
// the run completes.
func (r *Recorder) Spans(rank int) []*Span {
	if r == nil || rank < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank >= len(r.ranks) {
		return nil
	}
	return append([]*Span(nil), r.ranks[rank].spans...)
}

// Counter returns the summed value of counter name over every rank
// plus the global space.
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.global[name]
	for _, rs := range r.ranks {
		v += rs.ctrs[name]
	}
	return v
}
