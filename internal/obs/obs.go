// Package obs is the observability layer of the reproduction: named,
// nestable phase spans and flat counters recorded per rank of the sp2
// machine, exported as a Chrome trace_event file (open it in
// chrome://tracing or Perfetto — one row per rank), a flat metrics JSON
// document, and a human-readable per-phase table.
//
// The recorder is pay-for-use. Every method has a nil-receiver no-op
// fast path, so instrumented code calls through a possibly-nil
// *Recorder without allocating; a run with no recorder attached costs
// a pointer test per instrumentation point.
//
// Time is whatever the bound clocks say. sp2.Run binds each rank's
// clock when Config.Recorder is set: in Sim mode that is the rank's
// *virtual* clock, so traces of simulated runs are exact (span
// durations include the modeled communication and synchronization
// jumps of collectives, and per rank they add up to the machine
// report's RankSeconds); in Real mode it is wall-clock time since the
// machine started. Spans opened for an unbound rank fall back to a
// wall clock anchored at the recorder's creation.
package obs

import (
	"sync"
	"time"
)

// Span is one recorded phase on one rank. Fields are written while the
// span is open and must be read only after the run completes (or under
// the recorder's snapshot methods).
type Span struct {
	// Name is the phase name (e.g. "populate").
	Name string
	// Rank is the machine rank the span was recorded on.
	Rank int
	// Level is the bottom-up level k the span belongs to, 0 when the
	// phase is not level-scoped.
	Level int
	// Depth is the nesting depth (0 = top-level).
	Depth int
	// Start and Stop are clock readings in seconds.
	Start, Stop float64
	// CommSeconds and CommBytes are the modeled communication cost and
	// payload bytes of the collectives that completed inside this span
	// while it was the innermost open span on its rank.
	CommSeconds float64
	CommBytes   int64

	r    *Recorder
	open bool
}

// Duration returns Stop-Start (0 for a still-open span).
func (s *Span) Duration() float64 {
	if s == nil || s.open {
		return 0
	}
	return s.Stop - s.Start
}

// rankState is one rank's recording track.
type rankState struct {
	clock func() float64
	spans []*Span // all spans in start order
	stack []*Span // currently open spans, innermost last
	ctrs  map[string]int64
}

// Recorder collects spans and counters for a run. A single mutex
// serializes all mutation: instrumentation points are phase- and
// chunk-granular, far too coarse for the lock to matter, and it keeps
// concurrent Real-mode ranks race-free by construction.
type Recorder struct {
	mu     sync.Mutex
	epoch  time.Time
	ranks  []*rankState
	global map[string]int64
}

// New creates an empty recorder.
func New() *Recorder {
	return &Recorder{epoch: time.Now(), global: map[string]int64{}}
}

// BindRanks sizes the per-rank tracks to p ranks and installs their
// clock. sp2.Run calls this before launching rank goroutines; binding
// while spans are being recorded is not supported.
func (r *Recorder) BindRanks(p int, clock func(rank int) float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.ranks) < p {
		r.ranks = append(r.ranks, &rankState{ctrs: map[string]int64{}})
	}
	for i := 0; i < p; i++ {
		rank := i
		r.ranks[i].clock = func() float64 { return clock(rank) }
	}
}

// rank returns the track for rank, growing the track table with
// wall-clocked states for ranks never bound. Caller holds r.mu.
func (r *Recorder) rank(rank int) *rankState {
	if rank < 0 {
		rank = 0
	}
	for len(r.ranks) <= rank {
		r.ranks = append(r.ranks, &rankState{ctrs: map[string]int64{}})
	}
	rs := r.ranks[rank]
	if rs.clock == nil {
		rs.clock = func() float64 { return time.Since(r.epoch).Seconds() }
	}
	return rs
}

// Start opens a span named name on rank, nested inside the rank's
// innermost open span. Returns nil (a no-op span) on a nil recorder.
func (r *Recorder) Start(rank int, name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.rank(rank)
	s := &Span{Name: name, Rank: rank, Depth: len(rs.stack), Start: rs.clock(), r: r, open: true}
	rs.spans = append(rs.spans, s)
	rs.stack = append(rs.stack, s)
	return s
}

// SetLevel labels the span with the bottom-up level k and returns the
// span for chaining.
func (s *Span) SetLevel(k int) *Span {
	if s == nil {
		return nil
	}
	s.r.mu.Lock()
	s.Level = k
	s.r.mu.Unlock()
	return s
}

// End closes the span, reading the rank clock. Ending an already-ended
// span is a no-op; ending out of order also closes the spans nested
// inside it.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if !s.open {
		return
	}
	rs := r.rank(s.Rank)
	now := rs.clock()
	for i := len(rs.stack) - 1; i >= 0; i-- {
		sp := rs.stack[i]
		sp.Stop = now
		sp.open = false
		if sp == s {
			rs.stack = rs.stack[:i]
			return
		}
	}
	// s was not on the stack (already popped by an enclosing End).
	s.Stop = now
	s.open = false
}

// Add bumps rank-local counter name by delta.
func (r *Recorder) Add(rank int, name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.rank(rank).ctrs[name] += delta
	r.mu.Unlock()
}

// AddGlobal bumps a machine-global counter (used by code that has no
// rank identity, such as shared file scanners).
func (r *Recorder) AddGlobal(name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.global[name] += delta
	r.mu.Unlock()
}

// Comm attributes one completed collective to rank: its modeled cost
// and payload bytes are charged to the rank's innermost open span and
// mirrored into per-kind counters. sp2's combiner calls this for every
// rank while all ranks are parked inside the collective, which makes
// the cross-goroutine write safe (the parked ranks synchronize on the
// machine mutex before touching their own track again).
func (r *Recorder) Comm(rank int, kind string, bytes int64, seconds float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.rank(rank)
	if n := len(rs.stack); n > 0 {
		sp := rs.stack[n-1]
		sp.CommSeconds += seconds
		sp.CommBytes += bytes
	}
	rs.ctrs["comm."+kind+".count"]++
	rs.ctrs["comm."+kind+".bytes"] += bytes
}

// CurrentPhase returns the name of rank's innermost open span, or ""
// when the rank has no open span (or on a nil recorder). The sp2
// machine uses it to label failures with the phase the rank died in.
func (r *Recorder) CurrentPhase(rank int) string {
	if r == nil || rank < 0 {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank >= len(r.ranks) {
		return ""
	}
	if stack := r.ranks[rank].stack; len(stack) > 0 {
		return stack[len(stack)-1].Name
	}
	return ""
}

// Ranks returns the number of rank tracks recorded.
func (r *Recorder) Ranks() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ranks)
}

// Spans returns rank's spans in start order. The returned slice is a
// snapshot; the spans themselves are shared, so read them only after
// the run completes.
func (r *Recorder) Spans(rank int) []*Span {
	if r == nil || rank < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank >= len(r.ranks) {
		return nil
	}
	return append([]*Span(nil), r.ranks[rank].spans...)
}

// Counter returns the summed value of counter name over every rank
// plus the global space.
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.global[name]
	for _, rs := range r.ranks {
		v += rs.ctrs[name]
	}
	return v
}
