package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func mkTrace(id string, status int, start, dur float64) *ServeTrace {
	return &ServeTrace{ID: id, Route: "assign", Status: status, Start: start, End: start + dur}
}

func TestTraceRingRetentionClasses(t *testing.T) {
	tr := NewTraceRing(2, 2)

	// Unsampled 200s are dropped unless slow. Fill the slow class first
	// with two slow traces so a fast one has no tail claim.
	for i, dur := range []float64{1.0, 2.0} {
		retained, asErr, asSlow := tr.Offer(mkTrace(fmt.Sprintf("slow%d", i), 200, float64(i), dur), false)
		if !retained || asErr || !asSlow {
			t.Fatalf("slow trace %d: retained=%v asErr=%v asSlow=%v", i, retained, asErr, asSlow)
		}
	}
	if retained, _, _ := tr.Offer(mkTrace("fast", 200, 10, 0.001), false); retained {
		t.Fatal("fast unsampled 200 should not be retained")
	}
	// Errors are always retained, even when fast and unsampled.
	if retained, asErr, _ := tr.Offer(mkTrace("err", 404, 11, 0.001), false); !retained || !asErr {
		t.Fatal("non-2xx trace must always be retained")
	}
	// Sampled ordinary requests are retained via the head-sample class.
	if retained, asErr, asSlow := tr.Offer(mkTrace("samp", 200, 12, 0.001), true); !retained || asErr || asSlow {
		t.Fatal("sampled trace must be retained via the sample class")
	}

	if tr.Lookup("fast") != nil {
		t.Error("dropped trace is still resolvable")
	}
	for _, id := range []string{"slow0", "slow1", "err", "samp"} {
		if tr.Lookup(id) == nil {
			t.Errorf("retained trace %q not resolvable", id)
		}
	}
	traces, _ := tr.Snapshot()
	if len(traces) != 4 {
		t.Fatalf("snapshot has %d traces, want 4", len(traces))
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].Start < traces[i-1].Start {
			t.Fatal("snapshot not ordered by start time")
		}
	}
}

func TestTraceRingSlowTopCap(t *testing.T) {
	tr := NewTraceRing(4, 4)
	durs := []float64{0.3, 0.1, 0.9, 0.2, 0.5, 0.05, 0.7}
	for i, d := range durs {
		tr.Offer(mkTrace(fmt.Sprintf("t%d", i), 200, float64(i), d), false)
	}
	// True top-4 slowest: 0.9, 0.7, 0.5, 0.3.
	for _, id := range []string{"t2", "t6", "t4", "t0"} {
		if tr.Lookup(id) == nil {
			t.Errorf("top-4 slowest %q not retained", id)
		}
	}
	for _, id := range []string{"t1", "t3", "t5"} {
		if tr.Lookup(id) != nil {
			t.Errorf("%q should have been evicted from the slow class", id)
		}
	}
}

func TestTraceRingErrFIFO(t *testing.T) {
	tr := NewTraceRing(2, 2)
	// Zero-duration errors never rank in the slow class once it holds
	// two slower entries, so the error class FIFO is isolated.
	tr.Offer(mkTrace("s0", 200, 0, 1.0), false)
	tr.Offer(mkTrace("s1", 200, 0, 2.0), false)
	for i := 0; i < 3; i++ {
		tr.Offer(mkTrace(fmt.Sprintf("e%d", i), 500, float64(i), 0), false)
	}
	if tr.Lookup("e0") != nil {
		t.Error("oldest error should have fallen out of the FIFO")
	}
	if tr.Lookup("e1") == nil || tr.Lookup("e2") == nil {
		t.Error("newest errors must be retained")
	}
}

func TestWriteServeTraceFlowLinks(t *testing.T) {
	tr := NewTraceRing(8, 8)
	w1 := mkTrace("req1", 200, 0.0, 0.010)
	w1.Stage("queue", 0.000, 0.001)
	w1.Stage("coalesce-wait", 0.002, 0.005)
	w1.Stage("kernel", 0.005, 0.008)
	w2 := mkTrace("req2", 200, 0.001, 0.009)
	w2.Stage("coalesce-wait", 0.003, 0.005)
	w2.Stage("kernel", 0.005, 0.008)
	epoch := tr.Epoch()
	kid := tr.Kernel("m.pmfm", 64, []string{"req1", "req2", "dropped"},
		epoch.Add(5*time.Millisecond), epoch.Add(8*time.Millisecond))
	if kid == 0 {
		t.Fatal("Kernel returned id 0")
	}
	w1.KernelID, w2.KernelID = kid, kid
	tr.Offer(w1, true)
	tr.Offer(w2, true)
	// A second kernel span none of whose waiters are retained must not
	// be exported.
	tr.Kernel("m.pmfm", 8, []string{"ghost"}, epoch, epoch.Add(time.Millisecond))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			ID   int64          `json:"id"`
			Bp   string         `json:"bp"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	kernels, starts, finishes := 0, map[int64]bool{}, map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Cat == "kernel":
			kernels++
			if ev.Tid != 0 {
				t.Error("kernel span not on the kernel track")
			}
		case ev.Ph == "s":
			starts[ev.ID] = true
		case ev.Ph == "f":
			finishes[ev.ID] = true
			if ev.Bp != "e" {
				t.Error("flow finish missing bp e")
			}
			if ev.Tid != 0 {
				t.Error("flow finish not on the kernel track")
			}
		}
	}
	if kernels != 1 {
		t.Fatalf("exported %d kernel spans, want 1 (unlinked span must be dropped)", kernels)
	}
	if len(starts) != 2 || len(finishes) != 2 {
		t.Fatalf("flow pairs: %d starts, %d finishes, want 2 each", len(starts), len(finishes))
	}
	for id := range starts {
		if !finishes[id] {
			t.Errorf("flow id %d has no finish", id)
		}
	}

	// Per-ID export carries the single trace and its kernel span.
	buf.Reset()
	found, err := tr.WriteTraceByID(&buf, "req1")
	if err != nil || !found {
		t.Fatalf("WriteTraceByID: found=%v err=%v", found, err)
	}
	if !strings.Contains(buf.String(), `"req1"`) || strings.Contains(buf.String(), `"req2"`) {
		t.Error("per-ID export has the wrong trace set")
	}
	if !strings.Contains(buf.String(), `"waiters"`) {
		t.Error("per-ID export dropped the linked kernel span")
	}
	if found, _ := tr.WriteTraceByID(&buf, "nope"); found {
		t.Error("unknown ID reported found")
	}
}

func TestTraceStageSum(t *testing.T) {
	tr := mkTrace("x", 200, 1.0, 0.010)
	tr.Stage("queue", 1.000, 1.001)
	tr.Stage("kernel", 1.002, 1.008)
	tr.Stage("encode", 1.008, 1.009)
	if sum := tr.StageSum(); sum > tr.Duration() {
		t.Fatalf("stage sum %g exceeds root duration %g", sum, tr.Duration())
	}
}

func TestNilTraceRingAndTrace(t *testing.T) {
	var tr *TraceRing
	var st *ServeTrace
	st.Stage("queue", 0, 1) // must not panic
	if retained, _, _ := tr.Offer(mkTrace("x", 200, 0, 1), true); retained {
		t.Error("nil ring retained a trace")
	}
	if tr.Kernel("m", 1, []string{"x"}, time.Now(), time.Now()) != 0 {
		t.Error("nil ring minted a kernel id")
	}
	if tr.Lookup("x") != nil {
		t.Error("nil ring resolved a trace")
	}
}

func TestRecorderExemplars(t *testing.T) {
	r := New()
	name := HistRouteSeconds("assign")
	r.Observe(0, name, 0.003)
	r.SetExemplar(name, 0.003, "trace-a")
	r.SetExemplar(name, 123, "trace-overflow") // beyond the last bound
	r.SetExemplar(name, 0.003, "")             // empty ID: no-op

	ex := r.Exemplars(name)
	bounds := HistogramBounds(name)
	if len(ex) != len(bounds)+1 {
		t.Fatalf("exemplar slots = %d, want %d", len(ex), len(bounds)+1)
	}
	i := BucketIndex(bounds, 0.003)
	if ex[i].TraceID != "trace-a" || ex[i].Value != 0.003 || ex[i].Ts <= 0 {
		t.Fatalf("bucket %d exemplar = %+v", i, ex[i])
	}
	if ex[len(bounds)].TraceID != "trace-overflow" {
		t.Fatal("overflow bucket exemplar missing")
	}
	if r.Exemplars("no.such.hist") != nil {
		t.Error("unknown name returned exemplars")
	}
	var nilR *Recorder
	nilR.SetExemplar(name, 1, "x") // must not panic
	if nilR.Exemplars(name) != nil {
		t.Error("nil recorder returned exemplars")
	}
}
