package obs

import (
	"math"
	"testing"
)

func TestNilRecorderEventMethods(t *testing.T) {
	var r *Recorder
	r.Collective(CollRecord{Kind: KindReduce, Steps: 2})
	if r.Collectives() != nil || r.Messages() != nil || r.CurrentPhases() != nil {
		t.Error("nil recorder leaked events")
	}
	cp := r.CriticalPath(nil)
	if cp == nil || cp.Total != 0 || len(cp.Phases) != 0 {
		t.Errorf("nil recorder critical path: %+v", cp)
	}
}

// TestCriticalPathManual hand-builds a two-rank run on the manual
// clock and checks the exact attribution: rank 1 is slowest before the
// collective, rank 0 after it, and the totals tile the makespan.
func TestCriticalPathManual(t *testing.T) {
	r := New()
	clk := bindManual(r, 2)

	// Rank 0 computes "a" for 1s, rank 1 for 2s.
	a0 := r.Start(0, "a")
	a1 := r.Start(1, "a")
	clk.advance(0, 1)
	clk.advance(1, 2)
	a0.End()
	a1.End()
	// Collective: last arrival at 2.0 (rank 1), cost 0.5.
	r.Collective(CollRecord{
		Kind: KindReduce, Steps: 1, PayloadBytes: 64, Bytes: 64, Seconds: 0.5,
		Arrive: []float64{1, 2}, Start: 2, Depart: 2.5,
	})
	clk.now[0], clk.now[1] = 2.5, 2.5
	// After it, rank 0 computes "b" for 2s, rank 1 for 0.5s.
	b0 := r.Start(0, "b")
	b1 := r.Start(1, "b")
	clk.advance(0, 2)
	clk.advance(1, 0.5)
	b0.End()
	b1.End()

	cp := r.CriticalPath([]float64{4.5, 3})
	if math.Abs(cp.Total-4.5) > 1e-12 {
		t.Errorf("Total = %v, want 4.5", cp.Total)
	}
	if math.Abs(cp.ComputeSeconds-4) > 1e-12 || math.Abs(cp.CommSeconds-0.5) > 1e-12 {
		t.Errorf("compute %v / comm %v, want 4/0.5", cp.ComputeSeconds, cp.CommSeconds)
	}
	if cp.ResidualSeconds != 0 {
		t.Errorf("residual %v, want 0 (segments fully covered by spans)", cp.ResidualSeconds)
	}
	if cp.Collectives != 1 {
		t.Errorf("collectives %d, want 1", cp.Collectives)
	}
	wantPhase := map[string]float64{"a": 2, "b": 2}
	for _, pc := range cp.Phases {
		if math.Abs(pc.Seconds-wantPhase[pc.Phase]) > 1e-12 {
			t.Errorf("phase %q seconds %v, want %v", pc.Phase, pc.Seconds, wantPhase[pc.Phase])
		}
		delete(wantPhase, pc.Phase)
	}
	if len(wantPhase) != 0 {
		t.Errorf("phases missing from attribution: %v", wantPhase)
	}
	if len(cp.Comm) != 1 || cp.Comm[0].Kind != KindReduce || cp.Comm[0].Count != 1 || cp.Comm[0].Bytes != 64 {
		t.Errorf("comm attribution: %+v", cp.Comm)
	}
	// Rank 1 owned the pre-collective segment (2s), rank 0 the tail (2s).
	if len(cp.Ranks) != 2 || cp.Ranks[0].Seconds != 2 || cp.Ranks[1].Seconds != 2 ||
		cp.Ranks[0].Segments != 1 || cp.Ranks[1].Segments != 1 {
		t.Errorf("rank attribution: %+v", cp.Ranks)
	}
}

// TestCriticalPathNestedSpansSelfTime: an on-path segment covered by
// an outer span with a nested inner span must split into the inner
// span's time and the outer's self time, not double-count.
func TestCriticalPathNestedSpansSelfTime(t *testing.T) {
	r := New()
	clk := bindManual(r, 1)
	outer := r.Start(0, "outer")
	clk.advance(0, 1)
	inner := r.Start(0, "inner")
	clk.advance(0, 2)
	inner.End()
	clk.advance(0, 1)
	outer.End()

	cp := r.CriticalPath([]float64{4})
	if math.Abs(cp.Total-4) > 1e-12 || cp.ResidualSeconds != 0 {
		t.Fatalf("total %v residual %v, want 4/0", cp.Total, cp.ResidualSeconds)
	}
	got := map[string]float64{}
	for _, pc := range cp.Phases {
		got[pc.Phase] = pc.Seconds
	}
	if math.Abs(got["outer"]-2) > 1e-12 || math.Abs(got["inner"]-2) > 1e-12 {
		t.Errorf("self-time split = %v, want outer 2 / inner 2", got)
	}
}

// TestCriticalPathResidual: path time not covered by any span must
// surface as residual, not vanish or mis-attribute.
func TestCriticalPathResidual(t *testing.T) {
	r := New()
	clk := bindManual(r, 1)
	s := r.Start(0, "covered")
	clk.advance(0, 1)
	s.End()
	clk.advance(0, 3) // 3s with no open span

	cp := r.CriticalPath([]float64{4})
	if math.Abs(cp.Total-4) > 1e-12 {
		t.Errorf("Total = %v, want 4", cp.Total)
	}
	if math.Abs(cp.ResidualSeconds-3) > 1e-12 {
		t.Errorf("residual %v, want 3", cp.ResidualSeconds)
	}
}

// TestCriticalPathNoRankSecondsFallsBackToSpans: without the machine
// report's clocks the tail comes from the latest recorded span end.
func TestCriticalPathNoRankSecondsFallsBackToSpans(t *testing.T) {
	r := New()
	clk := bindManual(r, 2)
	s0 := r.Start(0, "w")
	s1 := r.Start(1, "w")
	clk.advance(0, 1)
	clk.advance(1, 2.5)
	s0.End()
	s1.End()

	cp := r.CriticalPath(nil)
	if math.Abs(cp.Total-2.5) > 1e-12 {
		t.Errorf("Total = %v, want 2.5 (latest span end)", cp.Total)
	}
}
