package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pmafia/internal/tabular"
)

// traceEvent is one entry of the Chrome trace_event format ("JSON
// object format"): complete events carry ph "X" with microsecond ts
// and dur; metadata events carry ph "M" and name the tracks; flow
// events carry ph "s"/"f" with a shared id and draw the send→recv
// arrows; counter events carry ph "C" with the sampled value in args.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	ID   int64          `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes every recorded span as a Chrome trace_event
// JSON document: one process, one thread (track) per rank, complete
// ("X") events in microseconds, flow ("s"/"f") event pairs for every
// modeled collective message (the arrows connecting rank tracks:
// start on the sender's track, end with bp "e" on the receiver's so
// the viewer binds the arrowhead to the enclosing phase slice), and
// counter ("C") events replaying the sampled counters' running
// totals. The output opens directly in chrome://tracing or
// https://ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: nil recorder")
	}
	r.mu.Lock()
	doc := traceDoc{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "pmafia"},
	}}}
	for rank, rs := range r.ranks {
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
		for _, s := range rs.spans {
			ev := traceEvent{
				Name: s.Name, Cat: "phase", Ph: "X",
				Ts: s.Start * 1e6, Dur: s.Duration() * 1e6,
				Pid: 0, Tid: rank,
			}
			if s.Level > 0 || s.CommBytes > 0 || s.CommSeconds > 0 {
				ev.Args = map[string]any{}
				if s.Level > 0 {
					ev.Args["level"] = s.Level
				}
				if s.CommSeconds > 0 {
					ev.Args["comm_us"] = s.CommSeconds * 1e6
				}
				if s.CommBytes > 0 {
					ev.Args["comm_bytes"] = s.CommBytes
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	for _, msg := range r.msgs {
		args := map[string]any{
			"bytes": msg.Bytes, "step": msg.Step, "coll": msg.Coll,
			"src": msg.Src, "dst": msg.Dst,
		}
		doc.TraceEvents = append(doc.TraceEvents,
			traceEvent{
				Name: msg.Kind, Cat: "msg", Ph: "s", ID: msg.ID,
				Ts: msg.Start * 1e6, Pid: 0, Tid: msg.Src, Args: args,
			},
			traceEvent{
				Name: msg.Kind, Cat: "msg", Ph: "f", ID: msg.ID, Bp: "e",
				Ts: msg.End * 1e6, Pid: 0, Tid: msg.Dst, Args: args,
			})
	}
	for _, smp := range r.samples {
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: smp.name, Cat: "counter", Ph: "C",
			Ts: smp.ts * 1e6, Pid: 0, Tid: 0,
			Args: map[string]any{"value": smp.val},
		})
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// PhaseSummary aggregates the spans sharing one (name, level) pair
// across all ranks.
type PhaseSummary struct {
	Name        string  `json:"name"`
	Level       int     `json:"level,omitempty"`
	Spans       int     `json:"spans"`
	Seconds     float64 `json:"seconds"`
	CommSeconds float64 `json:"comm_seconds"`
	CommBytes   int64   `json:"comm_bytes"`
	MaxSeconds  float64 `json:"max_rank_seconds"`
}

// Metrics is the flat export of a recorder: summed counters, per-rank
// counters, and per-(phase, level) span aggregates.
type Metrics struct {
	Ranks    int                `json:"ranks"`
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	PerRank  []map[string]int64 `json:"per_rank_counters"`
	Phases   []PhaseSummary     `json:"phases"`
}

// Metrics snapshots the recorder.
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return &Metrics{Counters: map[string]int64{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &Metrics{Ranks: len(r.ranks), Counters: map[string]int64{}}
	for k, v := range r.global {
		m.Counters[k] += v
	}
	if len(r.gauges) > 0 {
		m.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			m.Gauges[k] = v
		}
	}
	type key struct {
		name  string
		level int
	}
	agg := map[key]*PhaseSummary{}
	var order []key
	for _, rs := range r.ranks {
		pr := map[string]int64{}
		for k, v := range rs.ctrs {
			pr[k] = v
			m.Counters[k] += v
		}
		m.PerRank = append(m.PerRank, pr)
		perRankSec := map[key]float64{}
		for _, s := range rs.spans {
			k := key{s.Name, s.Level}
			ps := agg[k]
			if ps == nil {
				ps = &PhaseSummary{Name: s.Name, Level: s.Level}
				agg[k] = ps
				order = append(order, k)
			}
			ps.Spans++
			ps.Seconds += s.Duration()
			ps.CommSeconds += s.CommSeconds
			ps.CommBytes += s.CommBytes
			perRankSec[k] += s.Duration()
		}
		for k, sec := range perRankSec {
			if sec > agg[k].MaxSeconds {
				agg[k].MaxSeconds = sec
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].level < order[j].level
	})
	for _, k := range order {
		m.Phases = append(m.Phases, *agg[k])
	}
	return m
}

// WriteMetricsJSON writes the Metrics snapshot as indented JSON.
func (r *Recorder) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Metrics())
}

// PhaseTable renders the per-phase aggregates as a table, ordered by
// descending total time so the expensive phases lead.
func (r *Recorder) PhaseTable() *tabular.Table {
	m := r.Metrics()
	sort.SliceStable(m.Phases, func(i, j int) bool { return m.Phases[i].Seconds > m.Phases[j].Seconds })
	t := tabular.New("Per-phase breakdown (all ranks)",
		"phase", "level", "spans", "seconds", "max rank s", "comm s", "comm bytes")
	for _, p := range m.Phases {
		lvl := "-"
		if p.Level > 0 {
			lvl = tabular.I(p.Level)
		}
		t.AddRow(p.Name, lvl, tabular.I(p.Spans), tabular.F(p.Seconds),
			tabular.F(p.MaxSeconds), tabular.F(p.CommSeconds), tabular.I(int(p.CommBytes)))
	}
	return t
}
