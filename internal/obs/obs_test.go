package obs

import (
	"fmt"
	"sync"
	"testing"
)

// manualClock binds every rank to a hand-advanced clock so tests are
// fully deterministic.
type manualClock struct {
	mu  sync.Mutex
	now []float64
}

func bindManual(r *Recorder, p int) *manualClock {
	c := &manualClock{now: make([]float64, p)}
	r.BindRanks(p, func(rank int) float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.now[rank]
	})
	return c
}

func (c *manualClock) advance(rank int, dt float64) {
	c.mu.Lock()
	c.now[rank] += dt
	c.mu.Unlock()
}

func TestSpanNesting(t *testing.T) {
	r := New()
	clk := bindManual(r, 1)

	outer := r.Start(0, "outer")
	clk.advance(0, 1)
	inner := r.Start(0, "inner")
	clk.advance(0, 2)
	innermost := r.Start(0, "innermost").SetLevel(3)
	clk.advance(0, 3)
	innermost.End()
	inner.End()
	clk.advance(0, 1)
	outer.End()

	spans := r.Spans(0)
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	for i, want := range []struct {
		name            string
		depth, level    int
		start, duration float64
	}{
		{"outer", 0, 0, 0, 7},
		{"inner", 1, 0, 1, 5},
		{"innermost", 2, 3, 3, 3},
	} {
		s := spans[i]
		if s.Name != want.name || s.Depth != want.depth || s.Level != want.level {
			t.Errorf("span %d = %q depth %d level %d, want %q/%d/%d",
				i, s.Name, s.Depth, s.Level, want.name, want.depth, want.level)
		}
		if s.Start != want.start || s.Duration() != want.duration {
			t.Errorf("span %q: start %v dur %v, want %v/%v",
				s.Name, s.Start, s.Duration(), want.start, want.duration)
		}
	}
}

func TestEndOutOfOrderClosesNested(t *testing.T) {
	r := New()
	clk := bindManual(r, 1)
	outer := r.Start(0, "outer")
	r.Start(0, "leaked") // never explicitly ended
	clk.advance(0, 2)
	outer.End()
	outer.End() // double End is a no-op

	for _, s := range r.Spans(0) {
		if s.Duration() != 2 {
			t.Errorf("span %q duration %v, want 2", s.Name, s.Duration())
		}
	}
	if got := r.Start(0, "next").Depth; got != 0 {
		t.Errorf("stack not unwound: next span depth %d", got)
	}
}

func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	s := r.Start(0, "x").SetLevel(2)
	s.End()
	r.Add(0, "c", 1)
	r.AddGlobal("g", 1)
	r.Comm(0, "reduce", 8, 0.1)
	r.BindRanks(4, nil)
	if r.Ranks() != 0 || r.Counter("c") != 0 || r.Spans(0) != nil {
		t.Error("nil recorder leaked state")
	}
	if got := r.Metrics(); len(got.Phases) != 0 {
		t.Error("nil recorder produced phases")
	}
	if s.Duration() != 0 {
		t.Error("nil span has a duration")
	}
}

// TestNilRecorderZeroAllocs pins the pay-for-use contract the hot
// paths rely on: with observability off (nil recorder) every
// instrumentation point is a pointer test, never an allocation.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(200, func() {
		s := r.Start(0, "x")
		r.Add(0, CtrDiskChunks, 1)
		r.AddGlobal(CtrPrefetchChunks, 1)
		r.Comm(0, KindReduce, 8, 0.1)
		r.Collective(CollRecord{Kind: KindReduce})
		s.End()
	})
	if allocs != 0 {
		t.Errorf("nil recorder allocates %.1f times per instrumentation round", allocs)
	}
}

func TestCommAttribution(t *testing.T) {
	r := New()
	clk := bindManual(r, 2)
	s0 := r.Start(0, "phase")
	r.Comm(0, "reduce", 100, 0.5)
	r.Comm(0, "gather", 50, 0.25)
	clk.advance(0, 1)
	s0.End()
	r.Comm(1, "reduce", 100, 0.5) // no open span on rank 1: counters only

	if s0.CommSeconds != 0.75 || s0.CommBytes != 150 {
		t.Errorf("span comm %v s / %d B, want 0.75/150", s0.CommSeconds, s0.CommBytes)
	}
	if got := r.Counter("comm.reduce.count"); got != 2 {
		t.Errorf("comm.reduce.count = %d, want 2", got)
	}
	if got := r.Counter("comm.reduce.bytes"); got != 200 {
		t.Errorf("comm.reduce.bytes = %d, want 200", got)
	}
}

func TestCountersSumAcrossRanksAndGlobal(t *testing.T) {
	r := New()
	bindManual(r, 3)
	for rank := 0; rank < 3; rank++ {
		r.Add(rank, "records", int64(10*(rank+1)))
	}
	r.AddGlobal("records", 7)
	if got := r.Counter("records"); got != 67 {
		t.Errorf("Counter(records) = %d, want 67", got)
	}
	m := r.Metrics()
	if m.Counters["records"] != 67 || len(m.PerRank) != 3 || m.PerRank[2]["records"] != 30 {
		t.Errorf("metrics counters wrong: %+v", m)
	}
}

// TestConcurrentRankRecording drives all recorder entry points from
// concurrent rank goroutines, the Real-mode access pattern; run with
// -race it proves the recorder is data-race-free.
func TestConcurrentRankRecording(t *testing.T) {
	const p = 8
	r := New()
	bindManual(r, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := r.Start(rank, "phase").SetLevel(i % 5)
				r.Add(rank, "records", 3)
				r.AddGlobal("chunks", 1)
				r.Comm(rank, "reduce", 8, 0.001)
				s.End()
			}
		}(rank)
	}
	wg.Wait()
	if got := r.Counter("records"); got != p*200*3 {
		t.Errorf("records = %d, want %d", got, p*200*3)
	}
	if got := r.Counter("chunks"); got != p*200 {
		t.Errorf("chunks = %d, want %d", got, p*200)
	}
	for rank := 0; rank < p; rank++ {
		if got := len(r.Spans(rank)); got != 200 {
			t.Errorf("rank %d recorded %d spans, want 200", rank, got)
		}
	}
}

func TestUnboundRankFallsBackToWallClock(t *testing.T) {
	r := New()
	s := r.Start(5, "late")
	s.End()
	if s.Stop < s.Start {
		t.Errorf("fallback clock ran backwards: %v -> %v", s.Start, s.Stop)
	}
	if r.Ranks() != 6 {
		t.Errorf("Ranks() = %d, want 6", r.Ranks())
	}
}

func TestPhaseTableOrdersByTime(t *testing.T) {
	r := New()
	clk := bindManual(r, 1)
	for i, d := range []float64{1, 5, 2} {
		s := r.Start(0, fmt.Sprintf("p%d", i))
		clk.advance(0, d)
		s.End()
	}
	tbl := r.PhaseTable()
	if len(tbl.Rows) != 3 || tbl.Rows[0][0] != "p1" {
		t.Errorf("phase table not ordered by time: %v", tbl.Rows)
	}
}

func TestCurrentPhase(t *testing.T) {
	var nilRec *Recorder
	if got := nilRec.CurrentPhase(0); got != "" {
		t.Errorf("nil recorder CurrentPhase = %q", got)
	}
	r := New()
	if got := r.CurrentPhase(0); got != "" {
		t.Errorf("no spans: CurrentPhase = %q", got)
	}
	outer := r.Start(0, "run")
	inner := r.Start(0, "populate")
	if got := r.CurrentPhase(0); got != "populate" {
		t.Errorf("CurrentPhase = %q, want %q", got, "populate")
	}
	if got := r.CurrentPhase(1); got != "" {
		t.Errorf("other rank CurrentPhase = %q", got)
	}
	inner.End()
	if got := r.CurrentPhase(0); got != "run" {
		t.Errorf("after inner End: CurrentPhase = %q, want %q", got, "run")
	}
	outer.End()
	if got := r.CurrentPhase(0); got != "" {
		t.Errorf("after all End: CurrentPhase = %q", got)
	}
	if got := r.CurrentPhase(99); got != "" {
		t.Errorf("unknown rank CurrentPhase = %q", got)
	}
}
