package obs

import (
	"math"
	"testing"
)

// coll records one collective and returns the messages synthesized
// for it (the recorder appends to its message log; slice off the new
// tail).
func coll(r *Recorder, kind string, p, steps int) []MsgEvent {
	before := len(r.Messages())
	arrive := make([]float64, p)
	r.Collective(CollRecord{
		Kind: kind, Steps: steps, PayloadBytes: 100, Bytes: int64(100 * steps),
		Seconds: float64(steps), Arrive: arrive, Start: 10, Depart: 10 + float64(steps),
	})
	return r.Messages()[before:]
}

func validate(t *testing.T, msgs []MsgEvent, p int) {
	t.Helper()
	seen := map[int64]bool{}
	for _, m := range msgs {
		if m.Src < 0 || m.Src >= p || m.Dst < 0 || m.Dst >= p || m.Src == m.Dst {
			t.Errorf("message %d: src %d dst %d out of range for p=%d", m.ID, m.Src, m.Dst, p)
		}
		if seen[m.ID] {
			t.Errorf("duplicate message id %d", m.ID)
		}
		seen[m.ID] = true
		if m.End <= m.Start {
			t.Errorf("message %d: end %v <= start %v", m.ID, m.End, m.Start)
		}
	}
}

func TestTreeShapes(t *testing.T) {
	r := New()

	// p=4 reduce, 2 stages of pairwise exchange: 4 ranks × 2 dirs / 2
	// pairs... each stage has 2 pairs × 2 directions = 4 messages.
	msgs := coll(r, KindReduce, 4, 2)
	if len(msgs) != 8 {
		t.Errorf("p=4 reduce: %d messages, want 8", len(msgs))
	}
	validate(t, msgs, 4)
	// Stage 0 partners differ by 1, stage 1 by 2.
	for _, m := range msgs {
		want := 1 << m.Step
		if m.Src^m.Dst != want {
			t.Errorf("reduce step %d: %d->%d, want partner distance %d", m.Step, m.Src, m.Dst, want)
		}
	}

	// p=4 bcast, binomial from rank 0: stage 0 sends 0->1, stage 1
	// sends 0->2 and 1->3.
	msgs = coll(r, KindBcast, 4, 2)
	if len(msgs) != 3 {
		t.Errorf("p=4 bcast: %d messages, want 3", len(msgs))
	}
	validate(t, msgs, 4)
	reach := map[int]bool{0: true}
	for _, m := range msgs {
		if !reach[m.Src] {
			t.Errorf("bcast: rank %d forwards before receiving", m.Src)
		}
		reach[m.Dst] = true
	}
	if len(reach) != 4 {
		t.Errorf("bcast reaches %d of 4 ranks", len(reach))
	}

	// p=4 gather (Steps=4 = 2×stages): 2 combine stages toward rank 0
	// (3 messages) then 2 broadcast stages back out (3 messages).
	msgs = coll(r, KindGather, 4, 4)
	if len(msgs) != 6 {
		t.Errorf("p=4 gather: %d messages, want 6", len(msgs))
	}
	validate(t, msgs, 4)
	var toward, outward int
	for _, m := range msgs {
		if m.Step < 2 {
			toward++
			if m.Dst > m.Src {
				t.Errorf("gather combine step %d: %d->%d moves away from rank 0", m.Step, m.Src, m.Dst)
			}
		} else {
			outward++
			if m.Dst < m.Src {
				t.Errorf("gather bcast step %d: %d->%d moves toward rank 0", m.Step, m.Src, m.Dst)
			}
		}
	}
	if toward != 3 || outward != 3 {
		t.Errorf("gather: %d combine + %d bcast messages, want 3+3", toward, outward)
	}

	// Non-power-of-two p=5 barrier, 3 stages: partners beyond the rank
	// space are skipped, never emitted.
	msgs = coll(r, KindBarrier, 5, 3)
	validate(t, msgs, 5)
	if len(msgs) != 10 {
		t.Errorf("p=5 barrier: %d messages, want 10", len(msgs))
	}
}

func TestTreeMessageTiming(t *testing.T) {
	r := New()
	msgs := coll(r, KindReduce, 4, 2) // window [10, 12], 2 steps of 1s
	for _, m := range msgs {
		wantStart := 10 + float64(m.Step)
		if math.Abs(m.Start-wantStart) > 1e-12 || math.Abs(m.End-(wantStart+1)) > 1e-12 {
			t.Errorf("step %d message occupies [%v, %v], want [%v, %v]",
				m.Step, m.Start, m.End, wantStart, wantStart+1)
		}
	}
}

func TestTreeDegenerate(t *testing.T) {
	r := New()
	if msgs := coll(r, KindReduce, 1, 0); len(msgs) != 0 {
		t.Errorf("p=1: %d messages, want 0", len(msgs))
	}
	if msgs := coll(r, KindBarrier, 4, 0); len(msgs) != 0 {
		t.Errorf("steps=0: %d messages, want 0", len(msgs))
	}
}
