package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// closeTo compares two float sums up to the relative error reordered
// addition can introduce.
func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(math.Abs(a)+math.Abs(b)+1)
}

// TestHistogramMergeMatchesConcat is the merge property: observing two
// sample sets into two histograms and merging must equal observing the
// concatenated samples into one histogram — bucket counts, sum, count,
// max, and every quantile.
func TestHistogramMergeMatchesConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		na, nb := rng.Intn(200), rng.Intn(200)
		a, b := NewHistogram(DefaultLatencyBounds), NewHistogram(DefaultLatencyBounds)
		all := NewHistogram(DefaultLatencyBounds)
		sample := func() float64 {
			// Span the bucket range, including exact boundaries and
			// overflow values.
			switch rng.Intn(4) {
			case 0:
				return DefaultLatencyBounds[rng.Intn(len(DefaultLatencyBounds))]
			case 1:
				return 20 + rng.Float64()*100 // overflow bucket
			default:
				return math.Exp(rng.Float64()*12 - 9) // ~1e-4 .. ~20s
			}
		}
		for i := 0; i < na; i++ {
			v := sample()
			a.Observe(v)
			all.Observe(v)
		}
		for i := 0; i < nb; i++ {
			v := sample()
			b.Observe(v)
			all.Observe(v)
		}
		merged := a.Clone()
		if err := merged.Merge(b); err != nil {
			t.Fatal(err)
		}
		// Sums are compared with a relative epsilon: addition order
		// differs between the merged and concatenated paths.
		if merged.Count() != all.Count() || !closeTo(merged.Sum(), all.Sum()) || merged.Max() != all.Max() {
			t.Fatalf("trial %d: merged count/sum/max %d/%v/%v, concat %d/%v/%v",
				trial, merged.Count(), merged.Sum(), merged.Max(), all.Count(), all.Sum(), all.Max())
		}
		mc, ac := merged.BucketCounts(), all.BucketCounts()
		for i := range mc {
			if mc[i] != ac[i] {
				t.Fatalf("trial %d: bucket %d: merged %d, concat %d", trial, i, mc[i], ac[i])
			}
		}
		for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
			if merged.Quantile(q) != all.Quantile(q) {
				t.Fatalf("trial %d: Quantile(%v): merged %v, concat %v",
					trial, q, merged.Quantile(q), all.Quantile(q))
			}
		}
	}
}

// TestHistogramQuantileBoundaries pins the quantile edge cases: empty,
// a single sample, everything in one bucket, and overflow reporting
// the exact max.
func TestHistogramQuantileBoundaries(t *testing.T) {
	empty := NewHistogram(DefaultLatencyBounds)
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Quantile(0.99) != 0 || nilH.Count() != 0 || nilH.Max() != 0 {
		t.Error("nil histogram is not a zero no-op")
	}

	one := NewHistogram(DefaultLatencyBounds)
	one.Observe(0.003)
	for _, q := range []float64{0, 0.001, 0.5, 1} {
		if got := one.Quantile(q); got != 0.005 {
			t.Errorf("single sample Quantile(%v) = %v, want bucket bound 0.005", q, got)
		}
	}

	packed := NewHistogram(DefaultLatencyBounds)
	for i := 0; i < 1000; i++ {
		packed.Observe(0.0007) // all in the (0.0005, 0.001] bucket
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := packed.Quantile(q); got != 0.001 {
			t.Errorf("one-bucket Quantile(%v) = %v, want 0.001", q, got)
		}
	}

	over := NewHistogram(DefaultLatencyBounds)
	over.Observe(0.001)
	over.Observe(37.5) // overflow bucket
	if got := over.Quantile(1); got != 37.5 {
		t.Errorf("overflow Quantile(1) = %v, want the exact max 37.5", got)
	}
	if got := over.Max(); got != 37.5 {
		t.Errorf("Max = %v, want 37.5", got)
	}

	// A boundary value lands in the bucket it bounds (le semantics).
	edge := NewHistogram([]float64{1, 2, 4})
	edge.Observe(2)
	if got := edge.BucketCounts(); got[1] != 1 {
		t.Errorf("Observe(2) buckets = %v, want the le=2 bucket", got)
	}
}

// TestHistogramMergeShapeMismatch: merging different boundary sets is
// a loud error, never a silent re-bucketing.
func TestHistogramMergeShapeMismatch(t *testing.T) {
	a := NewHistogram(DefaultLatencyBounds)
	b := NewHistogram(DefaultSizeBounds)
	b.Observe(3)
	if err := a.Merge(b); err == nil {
		t.Error("merging latency and size bounds succeeded")
	}
}

// TestRecorderObserveMergesRanks: per-rank observation through the
// recorder must snapshot to the same histogram as observing everything
// into one — the serving daemon's per-rank recording contract.
func TestRecorderObserveMergesRanks(t *testing.T) {
	rec := New()
	want := NewHistogram(DefaultLatencyBounds)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 2
		rec.Observe(rng.Intn(4), HistRouteSeconds("assign"), v)
		want.Observe(v)
	}
	got := rec.Histogram(HistRouteSeconds("assign"))
	if got == nil || got.Count() != want.Count() || !closeTo(got.Sum(), want.Sum()) {
		t.Fatalf("merged snapshot count/sum = %d/%v, want %d/%v",
			got.Count(), got.Sum(), want.Count(), want.Sum())
	}
	for _, q := range []float64{0.5, 0.99} {
		if got.Quantile(q) != want.Quantile(q) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got.Quantile(q), want.Quantile(q))
		}
	}
	if rec.Histogram("never.observed.seconds") != nil {
		t.Error("unobserved name returned a histogram")
	}
	if hs := rec.Histograms(); len(hs) != 1 {
		t.Errorf("Histograms() has %d entries, want 1", len(hs))
	}

	// The snapshot is a copy: mutating it must not reach the recorder.
	got.Observe(1)
	if rec.Histogram(HistRouteSeconds("assign")).Count() != want.Count() {
		t.Error("snapshot mutation leaked into the recorder")
	}
}

// TestConcurrentObserveAndSnapshot hammers Observe from several
// goroutines while snapshotting — with -race this proves scraping a
// live serving recorder is data-race-free.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	rec := New()
	const perRank = 2000
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < perRank; i++ {
				rec.Observe(rank, HistRouteSeconds("assign"), float64(i)*1e-5)
				rec.Observe(rank, HistModelRecords("m.pmfm"), float64(i))
			}
		}(rank)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			rec.Histogram(HistRouteSeconds("assign")).Quantile(0.99)
			rec.Histograms()
		}
	}()
	wg.Wait()
	<-done
	if got := rec.Histogram(HistRouteSeconds("assign")).Count(); got != 4*perRank {
		t.Errorf("final count %d, want %d", got, 4*perRank)
	}
}

// TestNilRecorderObserveZeroAllocs extends the pay-for-use contract to
// the histogram path: Observe on a nil recorder is a free no-op.
func TestNilRecorderObserveZeroAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(200, func() {
		r.Observe(0, HistAssignQueueSeconds, 0.001)
	})
	if allocs != 0 {
		t.Errorf("nil recorder Observe allocates %.1f times per call", allocs)
	}
	if r.Histogram(HistAssignQueueSeconds) != nil || len(r.Histograms()) != 0 {
		t.Error("nil recorder returned histogram state")
	}
}
