// Critical-path analysis: why a run is as slow as it is.
//
// A Sim-mode run is an event DAG: per-rank compute spans chained by
// collective rendezvous, whose modeled cost the sp2 machine charges on
// the synchronized virtual clock. Because every collective synchronizes
// *all* ranks (the machine's collectives are all-to-all rendezvous),
// the longest weighted path through that DAG has a closed form: between
// consecutive collectives only the slowest rank's compute segment is on
// the path, then the collective's communication cost, and so on until
// the last rank finishes. CriticalPath walks the recorded collective
// events, attributes each on-path compute segment to the phase spans of
// the rank that was last to arrive, and totals the modeled
// communication per collective kind — the per-phase/per-rank
// attribution that explains the paper's speedup figures from one run:
// time on the path is either compute on some rank (shrinks with p until
// imbalance dominates) or communication (grows with log p).
package obs

import (
	"fmt"
	"sort"

	"pmafia/internal/tabular"
)

// PhaseCost is the critical-path time attributed to one (phase, level).
type PhaseCost struct {
	Phase string `json:"phase"`
	// Level is the bottom-up level, 0 when not level-scoped.
	Level int `json:"level,omitempty"`
	// Seconds is compute time on the critical path inside this phase.
	Seconds float64 `json:"seconds"`
	// Segments counts the on-path compute segments that touched it.
	Segments int `json:"segments"`
}

// CommCost is the critical-path communication of one collective kind.
type CommCost struct {
	Kind string `json:"kind"`
	// Count is the number of collectives of this kind on the path (all
	// of them: every collective synchronizes every rank).
	Count int `json:"count"`
	// Bytes is the payload moved, summed over collective stages.
	Bytes int64 `json:"bytes"`
	// Seconds is the modeled communication time.
	Seconds float64 `json:"seconds"`
}

// RankCost is one rank's share of the critical path's compute time.
type RankCost struct {
	Rank int `json:"rank"`
	// Seconds is compute time this rank contributed to the path — the
	// time the whole machine waited on it.
	Seconds float64 `json:"seconds"`
	// Segments counts the inter-collective segments it was slowest in.
	Segments int `json:"segments"`
}

// CriticalPath is the longest weighted path of a run's event DAG,
// attributed per phase, per collective kind, and per rank.
type CriticalPath struct {
	// Total is the path's length — the run's makespan. ComputeSeconds +
	// CommSeconds == Total (ResidualSeconds, compute time not covered
	// by any span, is included in ComputeSeconds and broken out so
	// instrumentation gaps are visible rather than silently attributed).
	Total           float64 `json:"total_seconds"`
	ComputeSeconds  float64 `json:"compute_seconds"`
	CommSeconds     float64 `json:"comm_seconds"`
	ResidualSeconds float64 `json:"residual_seconds"`
	// Collectives is the number of collective events walked.
	Collectives int         `json:"collectives"`
	Phases      []PhaseCost `json:"phases"`
	Comm        []CommCost  `json:"comm"`
	Ranks       []RankCost  `json:"ranks"`
}

// CriticalPath computes the run's critical path from the recorded
// collective events and phase spans. rankSeconds, when non-nil, is the
// machine report's final per-rank clock (sp2.Report.RankSeconds): it
// pins the path's tail segment and makes Total equal the Sim virtual
// makespan exactly. When nil (e.g. Real mode, where the report carries
// no per-rank clocks), the tail falls back to the latest span end.
func (r *Recorder) CriticalPath(rankSeconds []float64) *CriticalPath {
	if r == nil {
		return &CriticalPath{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	cp := &CriticalPath{Collectives: len(r.colls)}
	phases := map[[2]any]*PhaseCost{}
	var phaseOrder [][2]any
	comm := map[string]*CommCost{}
	var commOrder []string
	ranks := map[int]*RankCost{}

	attribute := func(rank int, a, b float64) {
		if b <= a {
			return
		}
		seg := b - a
		cp.ComputeSeconds += seg
		rc := ranks[rank]
		if rc == nil {
			rc = &RankCost{Rank: rank}
			ranks[rank] = rc
		}
		rc.Seconds += seg
		rc.Segments++
		covered := r.attributeSpansLocked(rank, a, b, func(phase string, level int, sec float64) {
			k := [2]any{phase, level}
			pc := phases[k]
			if pc == nil {
				pc = &PhaseCost{Phase: phase, Level: level}
				phases[k] = pc
				phaseOrder = append(phaseOrder, k)
			}
			pc.Seconds += sec
			pc.Segments++
		})
		if res := seg - covered; res > 0 {
			cp.ResidualSeconds += res
		}
	}

	prev := 0.0
	for _, ce := range r.colls {
		// The slowest arrival pins the path through this rendezvous.
		last, lastAt := 0, 0.0
		for rank, at := range ce.Arrive {
			if rank == 0 || at > lastAt {
				last, lastAt = rank, at
			}
		}
		attribute(last, prev, lastAt)
		cc := comm[ce.Kind]
		if cc == nil {
			cc = &CommCost{Kind: ce.Kind}
			comm[ce.Kind] = cc
			commOrder = append(commOrder, ce.Kind)
		}
		cc.Count++
		cc.Bytes += ce.Bytes
		cc.Seconds += ce.Seconds
		cp.CommSeconds += ce.Seconds
		prev = ce.Depart
	}

	// Tail: after the last collective the path follows whichever rank
	// finishes last.
	final, finalRank := prev, -1
	if len(rankSeconds) > 0 {
		for rank, v := range rankSeconds {
			if v > final {
				final, finalRank = v, rank
			}
		}
	} else {
		for rank, rs := range r.ranks {
			for _, s := range rs.spans {
				if !s.open && s.Stop > final {
					final, finalRank = s.Stop, rank
				}
			}
		}
	}
	if finalRank >= 0 {
		attribute(finalRank, prev, final)
	}
	cp.Total = cp.ComputeSeconds + cp.CommSeconds

	for _, k := range phaseOrder {
		cp.Phases = append(cp.Phases, *phases[k])
	}
	sort.SliceStable(cp.Phases, func(i, j int) bool { return cp.Phases[i].Seconds > cp.Phases[j].Seconds })
	for _, k := range commOrder {
		cp.Comm = append(cp.Comm, *comm[k])
	}
	sort.SliceStable(cp.Comm, func(i, j int) bool { return cp.Comm[i].Seconds > cp.Comm[j].Seconds })
	for _, rc := range ranks {
		cp.Ranks = append(cp.Ranks, *rc)
	}
	sort.Slice(cp.Ranks, func(i, j int) bool { return cp.Ranks[i].Rank < cp.Ranks[j].Rank })
	return cp
}

// attributeSpansLocked splits interval [a, b] of rank's timeline over
// the innermost spans covering it, calling add once per span with the
// covered self-time (the span's overlap minus its children's). Returns
// the total attributed. Caller holds r.mu.
func (r *Recorder) attributeSpansLocked(rank int, a, b float64, add func(phase string, level int, sec float64)) float64 {
	if rank < 0 || rank >= len(r.ranks) {
		return 0
	}
	spans := r.ranks[rank].spans
	overlap := func(s *Span) float64 {
		if s.open {
			return 0
		}
		lo, hi := s.Start, s.Stop
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi <= lo {
			return 0
		}
		return hi - lo
	}
	// Children of span i are the following spans at depth+1 until the
	// depth drops back to i's (spans are recorded in start order).
	covered := 0.0
	for i, s := range spans {
		ov := overlap(s)
		if ov == 0 {
			continue
		}
		self := ov
		for j := i + 1; j < len(spans) && spans[j].Depth > s.Depth; j++ {
			if spans[j].Depth == s.Depth+1 {
				self -= overlap(spans[j])
			}
		}
		if self <= 0 {
			continue
		}
		add(s.Name, s.Level, self)
		if s.Depth == 0 {
			covered += ov
		}
	}
	return covered
}

// pct formats v as a share of total.
func pct(v, total float64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*v/total)
}

// Table renders the per-phase "why not faster" attribution: every row
// is critical-path time — compute rows name the engine phase it was
// spent in (on the slowest rank at that point), comm rows name the
// collective kind. The shares sum to 100% of the makespan.
func (cp *CriticalPath) Table() *tabular.Table {
	t := tabular.New(
		fmt.Sprintf("Critical path — why not faster (makespan %ss: compute %ss, comm %ss)",
			tabular.F(cp.Total), tabular.F(cp.ComputeSeconds), tabular.F(cp.CommSeconds)),
		"kind", "phase", "level", "seconds", "share", "collectives", "bytes")
	for _, p := range cp.Phases {
		lvl := "-"
		if p.Level > 0 {
			lvl = tabular.I(p.Level)
		}
		t.AddRow("compute", p.Phase, lvl, tabular.F(p.Seconds), pct(p.Seconds, cp.Total), "-", "-")
	}
	for _, c := range cp.Comm {
		t.AddRow("comm", c.Kind, "-", tabular.F(c.Seconds), pct(c.Seconds, cp.Total),
			tabular.I(c.Count), tabular.I(int(c.Bytes)))
	}
	if cp.ResidualSeconds > 0 {
		t.AddRow("compute", "(outside spans)", "-", tabular.F(cp.ResidualSeconds),
			pct(cp.ResidualSeconds, cp.Total), "-", "-")
	}
	return t
}

// RankTable renders each rank's share of the critical path's compute
// time — the load-imbalance view: a rank with an outsized share is the
// straggler the whole machine waits on.
func (cp *CriticalPath) RankTable() *tabular.Table {
	t := tabular.New("Critical-path compute per rank",
		"rank", "seconds", "share", "segments")
	for _, rc := range cp.Ranks {
		t.AddRow(tabular.I(rc.Rank), tabular.F(rc.Seconds),
			pct(rc.Seconds, cp.ComputeSeconds), tabular.I(rc.Segments))
	}
	return t
}
