package obs

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-boundary distribution recorder: one counter per
// bucket, an exact sum, count, and maximum. Boundaries are bucket
// upper bounds (le semantics: a value lands in the first bucket whose
// bound is >= the value; anything above the last bound lands in the
// overflow bucket). Histograms with identical boundaries merge by
// plain addition, which is what makes per-rank recording work: each
// rank observes into its own histogram and a snapshot merges them,
// exactly like the per-rank counters.
//
// The type itself is not synchronized — the Recorder's mutex guards
// the histograms it owns, and standalone uses synchronize externally.
// All methods are nil-receiver safe no-ops (zero for the accessors),
// preserving the obs pay-for-use contract.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; the last cell is the overflow bucket
	sum    float64
	max    float64
	n      int64
}

// DefaultLatencyBounds are the bucket upper bounds, in seconds, of
// every ".seconds" histogram family: 100µs to 10s on a 1-2.5-5 decade
// ladder. Serving latencies of the assignment path fall well inside
// this range; treat the slice as read-only.
var DefaultLatencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultSizeBounds are the bucket upper bounds of every ".records"
// histogram family (batch sizes): decades from 1 to 10M. Treat the
// slice as read-only.
var DefaultSizeBounds = []float64{1, 10, 100, 1000, 1e4, 1e5, 1e6, 1e7}

// NewHistogram builds an empty histogram over the given bucket upper
// bounds, which must be non-empty and strictly ascending (the bounds
// slice is copied). Invalid bounds panic: boundary sets are declared
// constants (see HistogramBounds), never data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// BucketIndex returns the bucket a value falls in for the given upper
// bounds: the first i with v <= bounds[i], or len(bounds) for the
// overflow bucket. Exported so gate code and tests can reason about
// "within one bucket" without reimplementing the le rule.
func BucketIndex(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[BucketIndex(h.bounds, v)]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
}

// Merge adds o's observations into h. The two histograms must share
// identical bounds; merging histograms of different shapes is an
// error, never a silent re-bucketing. A nil or empty o is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil || o.n == 0 {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d bounds", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bound %d: %v vs %v", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.sum += o.sum
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
	return nil
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := &Histogram{
		bounds: append([]float64(nil), h.bounds...),
		counts: append([]int64(nil), h.counts...),
		sum:    h.sum, max: h.max, n: h.n,
	}
	return c
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the exact largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns a copy of the per-bucket counts; the last cell
// is the overflow bucket (observations above the final bound).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	return append([]int64(nil), h.counts...)
}

// Quantile returns an upper bound on the q-quantile of the observed
// values: the upper boundary of the bucket holding the ceil(q·n)-th
// smallest observation. Bucket counts are exact, so the true quantile
// is within one bucket below the returned boundary; observations in
// the overflow bucket report the exact observed maximum instead of
// +Inf. An empty histogram returns 0; q is clamped to (0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == len(h.bounds) {
				return h.max
			}
			return h.bounds[i]
		}
	}
	return h.max
}

// Observe records one value into rank's histogram named name,
// creating it on first use with the boundary set HistogramBounds
// declares for the name family. A nil recorder is a no-op — the
// instrumented serving path costs a pointer test when observability
// is off.
func (r *Recorder) Observe(rank int, name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	rs := r.rank(rank)
	h := rs.hists[name]
	if h == nil {
		h = NewHistogram(HistogramBounds(name))
		rs.hists[name] = h
	}
	h.Observe(v)
	r.mu.Unlock()
}

// Histogram returns a snapshot of histogram name merged across all
// ranks, or nil if the name was never observed. The returned copy is
// owned by the caller; scraping a live recorder is safe.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out *Histogram
	for _, rs := range r.ranks {
		if h := rs.hists[name]; h != nil {
			if out == nil {
				out = h.Clone()
			} else {
				out.Merge(h) // same name, same declared bounds
			}
		}
	}
	return out
}

// Histograms returns every recorded histogram merged across ranks,
// keyed by name. The copies are owned by the caller.
func (r *Recorder) Histograms() map[string]*Histogram {
	out := map[string]*Histogram{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rs := range r.ranks {
		for name, h := range rs.hists {
			if agg := out[name]; agg == nil {
				out[name] = h.Clone()
			} else {
				agg.Merge(h)
			}
		}
	}
	return out
}
