// Package grid turns per-dimension histograms into the bins the
// clustering engines operate on. It implements both the paper's
// adaptive finite intervals (Algorithm 1: window maxima merged into
// variable-sized bins, equi-distributed dimensions re-split into a few
// fixed partitions with a raised threshold) and the uniform grids of
// CLIQUE (a fixed number of equal bins per dimension with a global
// density threshold).
package grid

import (
	"fmt"
	"math"

	"pmafia/internal/dataset"
	"pmafia/internal/histogram"
)

// MaxBins is the hard cap on bins per dimension imposed by the byte
// encoding of units (bin indices must fit a uint8).
const MaxBins = 255

// BinCountError reports a requested or computed per-dimension bin count
// that does not fit the one-byte bin encoding. Unit arrays, dedup keys,
// and the population kernels all index bins with uint8, so a grid built
// past MaxBins would silently truncate indices and corrupt keys; every
// grid builder rejects the count up front with this error instead.
type BinCountError struct {
	// Dim is the offending dimension index (-1 when the count applies to
	// every dimension, as with the uniform ξ).
	Dim int
	// Bins is the rejected bin count.
	Bins int
}

func (e *BinCountError) Error() string {
	if e.Dim < 0 {
		return fmt.Sprintf("grid: %d bins per dimension out of [1,%d] (bin indices are one byte)", e.Bins, MaxBins)
	}
	return fmt.Sprintf("grid: dim %d: %d bins out of [1,%d] (bin indices are one byte)", e.Dim, e.Bins, MaxBins)
}

// checkBinCount validates a per-dimension bin count against the byte
// encoding; dim -1 marks a count that applies to all dimensions.
func checkBinCount(dim, bins int) error {
	if bins < 1 || bins > MaxBins {
		return &BinCountError{Dim: dim, Bins: bins}
	}
	return nil
}

// Bin is one interval of a dimension's partitioning.
type Bin struct {
	Bounds    dataset.Range // value-space interval [Lo, Hi)
	UnitLo    int           // first fine unit covered
	UnitHi    int           // one past the last fine unit covered
	Count     int64         // records whose value falls in the bin
	Threshold float64       // minimum count for a unit built on this bin to be dense
}

// Dim is the computed partitioning of one dimension.
type Dim struct {
	Index     int           // dimension index in the data set
	Domain    dataset.Range // the dimension's domain
	Bins      []Bin
	Uniform   bool // true when the dimension looked equi-distributed
	fineUnits int
	unitToBin []uint8
}

// NumBins returns the number of bins in the dimension.
func (d *Dim) NumBins() int { return len(d.Bins) }

// FineUnits returns the fine-histogram resolution the dimension was
// built against; BinOf scales values by it, so any code reproducing
// BinOf's arithmetic (the assignment index, grid serialization) must
// use this exact value.
func (d *Dim) FineUnits() int { return d.fineUnits }

// BinOf maps a value to its bin index, clamping out-of-domain values.
func (d *Dim) BinOf(v float64) uint8 {
	dom := d.Domain
	f := float64(d.fineUnits) * (v - dom.Lo) / dom.Width()
	if !(f > 0) { // also catches NaN
		return d.unitToBin[0]
	}
	if f >= float64(d.fineUnits) { // clamp before int conversion can overflow
		return d.unitToBin[d.fineUnits-1]
	}
	return d.unitToBin[int(f)]
}

// Grid is the full set of per-dimension partitionings plus the global
// record count the thresholds were computed against.
type Grid struct {
	Dims []Dim
	N    int64
}

// TotalBins returns the total number of bins across dimensions, which
// is also the number of 1-dimensional candidate dense units.
func (g *Grid) TotalBins() int {
	t := 0
	for i := range g.Dims {
		t += g.Dims[i].NumBins()
	}
	return t
}

// BinRow computes the bin index of every dimension of a record into
// out, which must have length len(g.Dims). This is the inner loop of
// the population passes.
func (g *Grid) BinRow(rec []float64, out []uint8) {
	for i := range g.Dims {
		out[i] = g.Dims[i].BinOf(rec[i])
	}
}

// AdaptiveParams configures Algorithm 1.
type AdaptiveParams struct {
	// WindowUnits is the number of fine histogram units per window.
	WindowUnits int
	// BetaPercent is the merge threshold β: adjacent windows whose
	// values are within β% of the larger are merged into one bin. The
	// paper reports 25-75 working well.
	BetaPercent float64
	// Alpha is the density deviation factor α (> 1.5 per the paper).
	Alpha float64
	// EquiSplit is the number of fixed partitions an equi-distributed
	// dimension is re-split into.
	EquiSplit int
	// UniformBoost multiplies α for equi-distributed dimensions ("set a
	// high threshold as this dimension is less likely to be part of a
	// cluster").
	UniformBoost float64
}

// Validate checks the parameters and fills in unset values with the
// paper's defaults.
func (p *AdaptiveParams) Validate() error {
	if p.WindowUnits == 0 {
		p.WindowUnits = 5
	}
	if p.BetaPercent == 0 {
		// Middle of the paper's working range (25-75). Window maxima of
		// a flat distribution jitter by tens of percent, so a low β
		// fragments uniform dimensions into small bins whose counts
		// then fluctuate past the density threshold.
		p.BetaPercent = 50
	}
	if p.Alpha == 0 {
		p.Alpha = 1.5
	}
	if p.EquiSplit == 0 {
		p.EquiSplit = 5
	}
	if p.UniformBoost == 0 {
		p.UniformBoost = 1.5
	}
	if p.WindowUnits < 0 {
		return fmt.Errorf("grid: negative WindowUnits %d", p.WindowUnits)
	}
	if p.BetaPercent < 0 || p.BetaPercent > 100 {
		return fmt.Errorf("grid: BetaPercent %v out of [0,100]", p.BetaPercent)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("grid: non-positive Alpha %v", p.Alpha)
	}
	if err := checkBinCount(-1, p.EquiSplit); err != nil {
		return fmt.Errorf("EquiSplit: %w", err)
	}
	if p.UniformBoost < 1 {
		return fmt.Errorf("grid: UniformBoost %v < 1", p.UniformBoost)
	}
	return nil
}

// BuildAdaptive computes adaptive bins for every dimension of the
// (global) histogram h, per Algorithm 1 of the paper.
func BuildAdaptive(h *histogram.Hist, p AdaptiveParams) (*Grid, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Grid{Dims: make([]Dim, len(h.Domains)), N: h.N}
	for dim := range h.Domains {
		g.Dims[dim] = buildAdaptiveDim(h, dim, p)
		// The merge loop and EquiSplit validation keep the count within
		// MaxBins by construction; re-check the invariant here so any
		// future drift in the merge logic surfaces as a typed error
		// instead of truncated uint8 keys.
		if err := checkBinCount(dim, g.Dims[dim].NumBins()); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func buildAdaptiveDim(h *histogram.Hist, dim int, p AdaptiveParams) Dim {
	values, starts := h.WindowMaxima(dim, p.WindowUnits)
	d := Dim{Index: dim, Domain: h.Domains[dim], fineUnits: h.Units}

	// Merge adjacent windows left-to-right while their values are
	// within β% of the larger. If that still yields more than MaxBins
	// bins, retry with a progressively larger β — the paper notes the
	// algorithm is not very sensitive to β.
	beta := p.BetaPercent
	var boundaries []int // fine-unit start of each bin, plus sentinel
	for {
		boundaries = mergeWindows(values, starts, beta)
		if len(boundaries)-1 <= MaxBins {
			break
		}
		beta = beta*1.5 + 5
	}

	if len(boundaries)-1 == 1 || flatDensities(h, dim, boundaries, p.BetaPercent) {
		// Single bin, or every bin has (within β%) the same density:
		// the dimension is equi-distributed — the best-fit rectangular
		// wave is flat. Re-split into EquiSplit fixed partitions with a
		// boosted threshold, per Algorithm 1.
		d.Uniform = true
		boundaries = equalUnitSplit(h.Units, p.EquiSplit)
	}

	alpha := p.Alpha
	if d.Uniform {
		alpha *= p.UniformBoost
	}
	d.Bins = makeBins(h, dim, boundaries, alpha)
	d.unitToBin = unitLookup(h.Units, boundaries)
	return d
}

// mergeWindows merges adjacent windows whose values differ by less than
// beta percent of the larger value ("from left to right merge two
// adjacent units if they are within a threshold β"), returning bin
// boundaries in fine units (including the final sentinel). The
// comparison is pairwise between neighbouring windows, so gradual
// drifts stay merged while the sharp edges of a cluster split.
func mergeWindows(values []int64, starts []int, beta float64) []int {
	if len(values) == 0 {
		return []int{0, 0}
	}
	boundaries := []int{starts[0]}
	for i := 1; i < len(values); i++ {
		if !withinPercent(values[i-1], values[i], beta) {
			boundaries = append(boundaries, starts[i])
		}
	}
	return append(boundaries, starts[len(starts)-1])
}

// flatDensities reports whether every bin implied by boundaries has a
// per-unit density within beta percent of the densest bin, i.e. the
// dimension's best-fit rectangular wave is flat.
func flatDensities(h *histogram.Hist, dim int, boundaries []int, beta float64) bool {
	maxD, minD := 0.0, math.Inf(1)
	for i := 0; i+1 < len(boundaries); i++ {
		lo, hi := boundaries[i], boundaries[i+1]
		if hi <= lo {
			continue
		}
		dens := float64(h.SumRange(dim, lo, hi)) / float64(hi-lo)
		if dens > maxD {
			maxD = dens
		}
		if dens < minD {
			minD = dens
		}
	}
	if maxD == 0 {
		return true
	}
	return maxD-minD <= beta/100*maxD
}

func withinPercent(a, b int64, beta float64) bool {
	if a == b {
		return true
	}
	m := a
	if b > m {
		m = b
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) <= beta/100*float64(m)
}

// equalUnitSplit divides units fine units into k near-equal partitions.
func equalUnitSplit(units, k int) []int {
	if k > units {
		k = units
	}
	b := make([]int, 0, k+1)
	for i := 0; i <= k; i++ {
		b = append(b, i*units/k)
	}
	return b
}

func makeBins(h *histogram.Hist, dim int, boundaries []int, alpha float64) []Bin {
	dom := h.Domains[dim]
	unitW := dom.Width() / float64(h.Units)
	bins := make([]Bin, 0, len(boundaries)-1)
	for i := 0; i+1 < len(boundaries); i++ {
		lo, hi := boundaries[i], boundaries[i+1]
		if hi <= lo {
			continue
		}
		b := Bin{
			Bounds: dataset.Range{
				Lo: dom.Lo + float64(lo)*unitW,
				Hi: dom.Lo + float64(hi)*unitW,
			},
			UnitLo: lo,
			UnitHi: hi,
			Count:  h.SumRange(dim, lo, hi),
		}
		// Threshold αN·(bin width)/|Dᵢ| — the count the bin would have
		// under equidistribution, scaled by α.
		b.Threshold = alpha * float64(h.N) * float64(hi-lo) / float64(h.Units)
		bins = append(bins, b)
	}
	// Snap the outermost bounds to the exact domain.
	if len(bins) > 0 {
		bins[0].Bounds.Lo = dom.Lo
		bins[len(bins)-1].Bounds.Hi = dom.Hi
	}
	return bins
}

func unitLookup(units int, boundaries []int) []uint8 {
	lut := make([]uint8, units)
	bin := 0
	for u := 0; u < units; u++ {
		for bin+2 < len(boundaries) && u >= boundaries[bin+1] {
			bin++
		}
		lut[u] = uint8(bin)
	}
	return lut
}

// BuildUniform computes the CLIQUE grid: xi equal bins per dimension,
// each with the same global threshold tau·N (tau is CLIQUE's density
// fraction input).
func BuildUniform(h *histogram.Hist, xi int, tau float64) (*Grid, error) {
	if err := checkBinCount(-1, xi); err != nil {
		return nil, err
	}
	if tau <= 0 || tau >= 1 {
		return nil, fmt.Errorf("grid: density threshold %v out of (0,1)", tau)
	}
	if xi > h.Units {
		return nil, fmt.Errorf("grid: %d bins need at least as many fine units (%d)", xi, h.Units)
	}
	g := &Grid{Dims: make([]Dim, len(h.Domains)), N: h.N}
	for dim := range h.Domains {
		boundaries := equalUnitSplit(h.Units, xi)
		d := Dim{Index: dim, Domain: h.Domains[dim], fineUnits: h.Units}
		d.Bins = makeBins(h, dim, boundaries, 0)
		for i := range d.Bins {
			d.Bins[i].Threshold = tau * float64(h.N)
		}
		d.unitToBin = unitLookup(h.Units, boundaries)
		g.Dims[dim] = d
	}
	return g, nil
}

// BuildUniformVariable computes uniform grids with a per-dimension bin
// count, used by the paper's Table 3 "CLIQUE (variable bins)" run.
func BuildUniformVariable(h *histogram.Hist, xis []int, tau float64) (*Grid, error) {
	if len(xis) != len(h.Domains) {
		return nil, fmt.Errorf("grid: %d bin counts for %d dims", len(xis), len(h.Domains))
	}
	g := &Grid{Dims: make([]Dim, len(h.Domains)), N: h.N}
	for dim, xi := range xis {
		if err := checkBinCount(dim, xi); err != nil {
			return nil, err
		}
		if xi > h.Units {
			return nil, fmt.Errorf("grid: dim %d: %d bins need at least as many fine units (%d)", dim, xi, h.Units)
		}
		boundaries := equalUnitSplit(h.Units, xi)
		d := Dim{Index: dim, Domain: h.Domains[dim], fineUnits: h.Units}
		d.Bins = makeBins(h, dim, boundaries, 0)
		for i := range d.Bins {
			d.Bins[i].Threshold = tau * float64(h.N)
		}
		d.unitToBin = unitLookup(h.Units, boundaries)
		g.Dims[dim] = d
	}
	return g, nil
}
