package grid

import (
	"fmt"

	"pmafia/internal/dataset"
)

// DimSpec is the exported, serializable state of one dimension —
// everything FromBins needs to rebuild a Dim whose BinOf is
// bit-identical to the original's. Model serialization round-trips
// grids through this type.
type DimSpec struct {
	Index     int
	Domain    dataset.Range
	Uniform   bool
	FineUnits int
	Bins      []Bin
}

// Spec returns the grid's serializable per-dimension state.
func (g *Grid) Spec() []DimSpec {
	out := make([]DimSpec, len(g.Dims))
	for i := range g.Dims {
		d := &g.Dims[i]
		out[i] = DimSpec{
			Index:     d.Index,
			Domain:    d.Domain,
			Uniform:   d.Uniform,
			FineUnits: d.fineUnits,
			Bins:      append([]Bin(nil), d.Bins...),
		}
	}
	return out
}

// FromBins reconstructs a Grid from serialized per-dimension state.
// Every dimension's bins must tile the fine units [0, FineUnits)
// contiguously — true of every grid the builders produce — because
// the unit-to-bin lookup BinOf consults is rebuilt from the bins'
// unit ranges. n is the global record count the thresholds were
// computed against.
func FromBins(dims []DimSpec, n int64) (*Grid, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("grid: no dimensions")
	}
	g := &Grid{Dims: make([]Dim, len(dims)), N: n}
	for i, s := range dims {
		if err := checkBinCount(i, len(s.Bins)); err != nil {
			return nil, err
		}
		if s.FineUnits < 1 {
			return nil, fmt.Errorf("grid: dim %d: %d fine units", i, s.FineUnits)
		}
		if !(s.Domain.Hi > s.Domain.Lo) {
			return nil, fmt.Errorf("grid: dim %d: empty domain [%v, %v)", i, s.Domain.Lo, s.Domain.Hi)
		}
		d := Dim{
			Index:     s.Index,
			Domain:    s.Domain,
			Uniform:   s.Uniform,
			Bins:      append([]Bin(nil), s.Bins...),
			fineUnits: s.FineUnits,
			unitToBin: make([]uint8, s.FineUnits),
		}
		next := 0
		for bi, b := range d.Bins {
			if b.UnitLo != next || b.UnitHi <= b.UnitLo || b.UnitHi > s.FineUnits {
				return nil, fmt.Errorf("grid: dim %d: bin %d covers fine units [%d,%d), want a tiling of [0,%d) from %d", i, bi, b.UnitLo, b.UnitHi, s.FineUnits, next)
			}
			for u := b.UnitLo; u < b.UnitHi; u++ {
				d.unitToBin[u] = uint8(bi)
			}
			next = b.UnitHi
		}
		if next != s.FineUnits {
			return nil, fmt.Errorf("grid: dim %d: bins cover %d of %d fine units", i, next, s.FineUnits)
		}
		g.Dims[i] = d
	}
	return g, nil
}
