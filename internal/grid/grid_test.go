package grid

import (
	"math"
	"testing"
	"testing/quick"

	"pmafia/internal/dataset"
	"pmafia/internal/histogram"
	"pmafia/internal/rng"
)

func uniformHist(n, units int, seed uint64) *histogram.Hist {
	h := histogram.New([]dataset.Range{{Lo: 0, Hi: 100}}, units)
	s := rng.New(seed)
	for i := 0; i < n; i++ {
		h.AddRecord([]float64{s.In(0, 100)})
	}
	return h
}

// clusteredHist puts frac of the points uniformly into [lo,hi) and the
// rest uniformly over the whole domain.
func clusteredHist(n, units int, lo, hi, frac float64, seed uint64) *histogram.Hist {
	h := histogram.New([]dataset.Range{{Lo: 0, Hi: 100}}, units)
	s := rng.New(seed)
	for i := 0; i < n; i++ {
		if s.Float64() < frac {
			h.AddRecord([]float64{s.In(lo, hi)})
		} else {
			h.AddRecord([]float64{s.In(0, 100)})
		}
	}
	return h
}

func TestAdaptiveUniformDimBecomesFixedSplit(t *testing.T) {
	h := uniformHist(50000, 1000, 1)
	g, err := BuildAdaptive(h, AdaptiveParams{})
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dims[0]
	if !d.Uniform {
		t.Fatal("uniform data not detected as equi-distributed")
	}
	if d.NumBins() != 5 {
		t.Errorf("equi-split bins = %d, want 5", d.NumBins())
	}
	// No bin of an equi-distributed dimension may be dense.
	for i, b := range d.Bins {
		if float64(b.Count) > b.Threshold {
			t.Errorf("bin %d of uniform dim is dense: count %d > threshold %.0f", i, b.Count, b.Threshold)
		}
	}
}

func TestAdaptiveClusterDimHasDenseBin(t *testing.T) {
	h := clusteredHist(50000, 1000, 20, 30, 0.4, 2)
	g, err := BuildAdaptive(h, AdaptiveParams{})
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dims[0]
	if d.Uniform {
		t.Fatal("clustered dim detected as equi-distributed")
	}
	dense := 0
	var denseBin Bin
	for _, b := range d.Bins {
		if float64(b.Count) > b.Threshold {
			dense++
			denseBin = b
		}
	}
	if dense == 0 {
		t.Fatal("no dense bin found over the cluster")
	}
	// The dense bin(s) must overlap the cluster region.
	if !denseBin.Bounds.Overlaps(dataset.Range{Lo: 20, Hi: 30}) {
		t.Errorf("dense bin %v does not overlap cluster [20,30)", denseBin.Bounds)
	}
}

func TestAdaptiveBinsPartitionDomain(t *testing.T) {
	h := clusteredHist(20000, 500, 55, 70, 0.5, 3)
	g, err := BuildAdaptive(h, AdaptiveParams{})
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dims[0]
	if d.Bins[0].Bounds.Lo != 0 {
		t.Errorf("first bin starts at %v", d.Bins[0].Bounds.Lo)
	}
	last := d.Bins[len(d.Bins)-1]
	if last.Bounds.Hi != 100 {
		t.Errorf("last bin ends at %v", last.Bounds.Hi)
	}
	for i := 1; i < len(d.Bins); i++ {
		if d.Bins[i].Bounds.Lo != d.Bins[i-1].Bounds.Hi {
			t.Errorf("gap between bin %d and %d", i-1, i)
		}
		if d.Bins[i].UnitLo != d.Bins[i-1].UnitHi {
			t.Errorf("unit gap between bin %d and %d", i-1, i)
		}
	}
}

func TestBinOfConsistentWithBounds(t *testing.T) {
	h := clusteredHist(20000, 500, 40, 60, 0.5, 4)
	g, _ := BuildAdaptive(h, AdaptiveParams{})
	d := g.Dims[0]
	f := func(raw float64) bool {
		v := math.Mod(math.Abs(raw), 100)
		b := d.Bins[d.BinOf(v)]
		return v >= b.Bounds.Lo-1e-9 && v < b.Bounds.Hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinCountsSumToN(t *testing.T) {
	h := clusteredHist(10000, 200, 10, 15, 0.3, 5)
	g, _ := BuildAdaptive(h, AdaptiveParams{})
	var total int64
	for _, b := range g.Dims[0].Bins {
		total += b.Count
	}
	if total != 10000 {
		t.Errorf("bin counts sum to %d, want 10000", total)
	}
}

func TestThresholdFormula(t *testing.T) {
	// For a non-uniform dim: threshold = α·N·width/|D|.
	h := clusteredHist(10000, 100, 10, 30, 0.6, 6)
	g, _ := BuildAdaptive(h, AdaptiveParams{Alpha: 2})
	d := g.Dims[0]
	if d.Uniform {
		t.Skip("unexpectedly uniform")
	}
	for _, b := range d.Bins {
		units := float64(b.UnitHi - b.UnitLo)
		want := 2 * 10000 * units / 100
		if math.Abs(b.Threshold-want) > 1e-6 {
			t.Errorf("threshold %.2f, want %.2f", b.Threshold, want)
		}
	}
}

func TestUniformBoostRaisesThreshold(t *testing.T) {
	h := uniformHist(20000, 1000, 7)
	low, _ := BuildAdaptive(h, AdaptiveParams{UniformBoost: 1})
	boosted, _ := BuildAdaptive(h, AdaptiveParams{UniformBoost: 3})
	if !low.Dims[0].Uniform || !boosted.Dims[0].Uniform {
		t.Skip("dim not detected uniform")
	}
	if boosted.Dims[0].Bins[0].Threshold <= low.Dims[0].Bins[0].Threshold {
		t.Error("UniformBoost did not raise the threshold")
	}
}

func TestMaxBinsRespected(t *testing.T) {
	// β=0 merges nothing: 1000 windows of 1 unit => must be re-merged
	// below MaxBins automatically.
	h := clusteredHist(50000, 1000, 20, 30, 0.4, 8)
	g, err := BuildAdaptive(h, AdaptiveParams{WindowUnits: 1, BetaPercent: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if n := g.Dims[0].NumBins(); n > MaxBins {
		t.Errorf("bins = %d > MaxBins", n)
	}
}

func TestMergeWindows(t *testing.T) {
	values := []int64{10, 11, 50, 52, 9}
	starts := []int{0, 2, 4, 6, 8, 10}
	b := mergeWindows(values, starts, 20)
	// 10,11 merge; 50,52 merge; 9 separate => boundaries 0,4,8,10
	want := []int{0, 4, 8, 10}
	if len(b) != len(want) {
		t.Fatalf("boundaries = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", b, want)
		}
	}
}

func TestMergeWindowsAllEqual(t *testing.T) {
	values := []int64{5, 5, 5}
	starts := []int{0, 1, 2, 3}
	b := mergeWindows(values, starts, 0)
	if len(b) != 2 || b[0] != 0 || b[1] != 3 {
		t.Errorf("equal windows should merge to one bin: %v", b)
	}
}

func TestMergeWindowsEmpty(t *testing.T) {
	b := mergeWindows(nil, []int{0}, 50)
	if len(b) != 2 {
		t.Errorf("empty input boundaries = %v", b)
	}
}

func TestEqualUnitSplit(t *testing.T) {
	b := equalUnitSplit(10, 3)
	if b[0] != 0 || b[len(b)-1] != 10 || len(b) != 4 {
		t.Errorf("split = %v", b)
	}
	// k > units degrades gracefully
	b = equalUnitSplit(2, 5)
	if b[len(b)-1] != 2 {
		t.Errorf("overspecified split = %v", b)
	}
}

func TestBuildUniform(t *testing.T) {
	h := clusteredHist(10000, 100, 10, 30, 0.5, 9)
	g, err := BuildUniform(h, 10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dims[0]
	if d.NumBins() != 10 {
		t.Fatalf("bins = %d", d.NumBins())
	}
	for _, b := range d.Bins {
		if math.Abs(b.Bounds.Width()-10) > 1e-9 {
			t.Errorf("uniform bin width %v, want 10", b.Bounds.Width())
		}
		if b.Threshold != 100 { // tau*N = 0.01*10000
			t.Errorf("threshold %v, want 100", b.Threshold)
		}
	}
}

func TestBuildUniformErrors(t *testing.T) {
	h := uniformHist(100, 50, 10)
	if _, err := BuildUniform(h, 0, 0.01); err == nil {
		t.Error("xi=0: want error")
	}
	if _, err := BuildUniform(h, 10, 0); err == nil {
		t.Error("tau=0: want error")
	}
	if _, err := BuildUniform(h, 10, 1); err == nil {
		t.Error("tau=1: want error")
	}
	if _, err := BuildUniform(h, 51, 0.01); err == nil {
		t.Error("xi>units: want error")
	}
}

func TestBuildUniformVariable(t *testing.T) {
	h := histogram.New([]dataset.Range{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 1}}, 100)
	s := rng.New(11)
	for i := 0; i < 1000; i++ {
		h.AddRecord([]float64{s.In(0, 100), s.Float64()})
	}
	g, err := BuildUniformVariable(h, []int{5, 20}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dims[0].NumBins() != 5 || g.Dims[1].NumBins() != 20 {
		t.Errorf("bins = %d,%d", g.Dims[0].NumBins(), g.Dims[1].NumBins())
	}
	if _, err := BuildUniformVariable(h, []int{5}, 0.01); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestValidateDefaults(t *testing.T) {
	p := AdaptiveParams{}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.WindowUnits != 5 || p.BetaPercent != 50 || p.Alpha != 1.5 || p.EquiSplit != 5 || p.UniformBoost != 1.5 {
		t.Errorf("defaults wrong: %+v", p)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []AdaptiveParams{
		{BetaPercent: -1},
		{BetaPercent: 101},
		{Alpha: -2},
		{EquiSplit: 300},
		{UniformBoost: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error for %+v", i, p)
		}
	}
}

func TestBinRow(t *testing.T) {
	h := histogram.New([]dataset.Range{{Lo: 0, Hi: 10}, {Lo: 0, Hi: 10}}, 10)
	s := rng.New(12)
	for i := 0; i < 1000; i++ {
		h.AddRecord([]float64{s.In(0, 10), s.In(0, 10)})
	}
	g, err := BuildUniform(h, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint8, 2)
	g.BinRow([]float64{1.5, 9.5}, out)
	if out[0] != 0 || out[1] != 4 {
		t.Errorf("BinRow = %v", out)
	}
}

func TestTotalBins(t *testing.T) {
	h := histogram.New([]dataset.Range{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}, 20)
	s := rng.New(13)
	for i := 0; i < 100; i++ {
		h.AddRecord([]float64{s.Float64(), s.Float64()})
	}
	g, _ := BuildUniform(h, 4, 0.01)
	if g.TotalBins() != 8 {
		t.Errorf("TotalBins = %d, want 8", g.TotalBins())
	}
}
