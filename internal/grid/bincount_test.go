package grid

import (
	"errors"
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/histogram"
)

// asBinCountError asserts err is (or wraps) a *BinCountError and
// returns it.
func asBinCountError(t *testing.T, err error) *BinCountError {
	t.Helper()
	if err == nil {
		t.Fatal("want a *BinCountError, got nil")
	}
	var bce *BinCountError
	if !errors.As(err, &bce) {
		t.Fatalf("want a *BinCountError, got %T: %v", err, err)
	}
	return bce
}

func TestUniformRejectsOverwideBinCount(t *testing.T) {
	h := histogram.New([]dataset.Range{{Lo: 0, Hi: 1}}, 1000)
	h.AddRecord([]float64{0.5})
	_, err := BuildUniform(h, 300, 0.01)
	bce := asBinCountError(t, err)
	if bce.Bins != 300 {
		t.Errorf("error reports %d bins, want 300", bce.Bins)
	}
	if _, err := BuildUniform(h, MaxBins, 0.01); err != nil {
		t.Errorf("BuildUniform at the cap (%d bins): %v", MaxBins, err)
	}
}

func TestUniformVariableRejectsOverwideBinCount(t *testing.T) {
	h := histogram.New([]dataset.Range{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}, 1000)
	h.AddRecord([]float64{0.5, 0.5})
	_, err := BuildUniformVariable(h, []int{10, 300}, 0.01)
	bce := asBinCountError(t, err)
	if bce.Dim != 1 || bce.Bins != 300 {
		t.Errorf("error = %+v, want dim 1 / 300 bins", bce)
	}
	if _, err := BuildUniformVariable(h, []int{10, MaxBins}, 0.01); err != nil {
		t.Errorf("BuildUniformVariable at the cap: %v", err)
	}
}

func TestAdaptiveRejectsOverwideEquiSplit(t *testing.T) {
	h := histogram.New([]dataset.Range{{Lo: 0, Hi: 1}}, 1000)
	h.AddRecord([]float64{0.5})
	_, err := BuildAdaptive(h, AdaptiveParams{EquiSplit: 300})
	asBinCountError(t, err)
}

// TestAdaptiveStaysWithinMaxBins drives the merge loop with a β of 0
// (nothing merges, so the raw window count far exceeds MaxBins before
// the retry loop widens β) over a jagged histogram and asserts the
// built grid never exceeds the one-byte bin encoding.
func TestAdaptiveStaysWithinMaxBins(t *testing.T) {
	const units = 2000
	h := histogram.New([]dataset.Range{{Lo: 0, Hi: 1}}, units)
	for u := 0; u < units; u++ {
		// Strongly alternating counts so no two adjacent windows are
		// within any small β of each other.
		n := 1 + (u%7)*40
		for i := 0; i < n; i++ {
			h.AddRecord([]float64{(float64(u) + 0.5) / units})
		}
	}
	g, err := BuildAdaptive(h, AdaptiveParams{WindowUnits: 1, BetaPercent: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if nb := g.Dims[0].NumBins(); nb > MaxBins {
		t.Errorf("adaptive grid built %d bins, cap is %d", nb, MaxBins)
	}
}
