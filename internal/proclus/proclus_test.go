package proclus

import (
	"math"
	"sort"
	"testing"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
)

// twoClusterData embeds two projected clusters in different subspaces.
func twoClusterData(t *testing.T, seed uint64) (*dataset.Matrix, *datagen.Truth) {
	t.Helper()
	m, truth, err := datagen.Generate(datagen.Spec{
		Dims:    8,
		Records: 3000,
		Clusters: []datagen.Cluster{
			datagen.UniformBox([]int{0, 2, 4},
				[]dataset.Range{{Lo: 10, Hi: 20}, {Lo: 10, Hi: 20}, {Lo: 10, Hi: 20}}, 0),
			datagen.UniformBox([]int{1, 5, 7},
				[]dataset.Range{{Lo: 70, Hi: 80}, {Lo: 70, Hi: 80}, {Lo: 70, Hi: 80}}, 0),
		},
		NoiseFraction: -1,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, truth
}

func TestConfigValidation(t *testing.T) {
	m, _ := twoClusterData(t, 1)
	cases := []Config{
		{K: 0, AvgDims: 3},
		{K: 2, AvgDims: 1},
		{K: 2, AvgDims: 99},
		{K: 99999, AvgDims: 3},
	}
	for i, cfg := range cases {
		if _, err := Run(m, cfg); err == nil {
			t.Errorf("case %d: want error for %+v", i, cfg)
		}
	}
	if _, err := Run(dataset.NewMatrix(0, 3), Config{K: 1, AvgDims: 2}); err == nil {
		t.Error("empty data: want error")
	}
}

func TestFindsTwoProjectedClusters(t *testing.T) {
	m, truth := twoClusterData(t, 2)
	res, err := Run(m, Config{K: 2, AvgDims: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	// Each PROCLUS cluster's selected dims should substantially
	// overlap one of the truth subspaces.
	for _, c := range res.Clusters {
		bestOverlap := 0
		for _, tc := range truth.Clusters {
			overlap := 0
			for _, d := range c.Dims {
				for _, td := range tc.Dims {
					if d == td {
						overlap++
					}
				}
			}
			if overlap > bestOverlap {
				bestOverlap = overlap
			}
		}
		if bestOverlap < 2 {
			t.Errorf("cluster dims %v overlap truth by only %d", c.Dims, bestOverlap)
		}
	}
	// Members must cover most records (little noise was added).
	covered := 0
	for _, c := range res.Clusters {
		covered += len(c.Members)
	}
	if covered < m.NumRecords()/2 {
		t.Errorf("only %d/%d records in clusters", covered, m.NumRecords())
	}
}

func TestMembersPartitionRecords(t *testing.T) {
	m, _ := twoClusterData(t, 3)
	res, err := Run(m, Config{K: 2, AvgDims: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, m.NumRecords())
	for _, c := range res.Clusters {
		for _, r := range c.Members {
			seen[r]++
		}
	}
	for _, r := range res.Outliers {
		seen[r]++
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("record %d appears %d times across clusters+outliers", i, s)
		}
	}
}

func TestDimsPerClusterAtLeastTwo(t *testing.T) {
	m, _ := twoClusterData(t, 4)
	res, err := Run(m, Config{K: 2, AvgDims: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Clusters {
		if len(c.Dims) < 2 {
			t.Errorf("cluster has %d dims, want >= 2", len(c.Dims))
		}
		if !sort.IntsAreSorted(c.Dims) {
			t.Errorf("dims not sorted: %v", c.Dims)
		}
		total += len(c.Dims)
	}
	if total != 2*4 {
		t.Errorf("total dims = %d, want K*AvgDims = 8", total)
	}
}

func TestObjectiveFinite(t *testing.T) {
	m, _ := twoClusterData(t, 5)
	res, err := Run(m, Config{K: 3, AvgDims: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Objective) || math.IsInf(res.Objective, 0) || res.Objective < 0 {
		t.Errorf("objective = %v", res.Objective)
	}
}

func TestSegmentalDistance(t *testing.T) {
	a := []float64{0, 10, 20}
	b := []float64{1, 12, 100}
	if d := segmental(a, b, []int{0, 1}); d != 1.5 {
		t.Errorf("segmental = %v, want 1.5", d)
	}
	if d := segmental(a, b, nil); d != 0 {
		t.Errorf("empty dims segmental = %v", d)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	m, _ := twoClusterData(t, 6)
	a, err := Run(m, Config{K: 2, AvgDims: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, Config{K: 2, AvgDims: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || len(a.Outliers) != len(b.Outliers) {
		t.Error("same seed produced different results")
	}
}
