// Package proclus implements PROCLUS (Aggarwal, Procopiuc, Wolf, Yu,
// Park — SIGMOD'99), the projected clustering algorithm the paper
// contrasts pMAFIA with in §2 and §5.9.2. Unlike pMAFIA it requires
// the user to supply the number of clusters k and the average cluster
// dimensionality l — the inputs the paper argues "are not possible to
// be known apriori for real data sets" — and it partitions records
// around medoids instead of describing dense regions.
//
// The implementation follows the published three-phase structure:
//
//  1. Initialization: draw a random sample and greedily pick a
//     well-separated candidate medoid set by max-min distance.
//  2. Iterative phase: for the current medoids, compute each medoid's
//     locality, pick the k·l best dimensions by locality Z-score (at
//     least two per medoid), assign every record to the nearest medoid
//     under the Manhattan segmental distance of its dimensions, and
//     hill-climb by swapping the worst medoid for a random candidate
//     while the objective improves.
//  3. Refinement: recompute dimensions from the final clusters,
//     reassign, and mark points beyond their cluster's sphere of
//     influence as outliers.
package proclus

import (
	"fmt"
	"math"
	"sort"

	"pmafia/internal/dataset"
	"pmafia/internal/rng"
)

// Config holds PROCLUS's (user-supplied) parameters.
type Config struct {
	// K is the number of clusters — required.
	K int
	// AvgDims is l, the average cluster dimensionality — required.
	AvgDims int
	// SampleFactor is A: the random sample holds A·K points
	// (default 30).
	SampleFactor int
	// CandidateFactor is B: the greedy candidate set holds B·K medoids
	// (default 3).
	CandidateFactor int
	// MaxBadIterations stops the hill climb after this many swaps
	// without improvement (default 20).
	MaxBadIterations int
	// MinDeviation is the fraction of the average cluster size below
	// which a cluster counts as bad and its medoid is replaced
	// (default 0.1).
	MinDeviation float64
	// Seed drives sampling and medoid replacement.
	Seed uint64
}

func (c *Config) validate(n, d int) error {
	if c.K < 1 {
		return fmt.Errorf("proclus: K %d < 1", c.K)
	}
	if c.AvgDims < 2 {
		return fmt.Errorf("proclus: AvgDims %d < 2 (the algorithm needs at least two dims per cluster)", c.AvgDims)
	}
	if c.AvgDims > d {
		return fmt.Errorf("proclus: AvgDims %d > data dimensionality %d", c.AvgDims, d)
	}
	if c.SampleFactor == 0 {
		c.SampleFactor = 30
	}
	if c.CandidateFactor == 0 {
		c.CandidateFactor = 3
	}
	if c.MaxBadIterations == 0 {
		c.MaxBadIterations = 20
	}
	if c.MinDeviation == 0 {
		c.MinDeviation = 0.1
	}
	if c.K > n {
		return fmt.Errorf("proclus: K %d > records %d", c.K, n)
	}
	return nil
}

// Cluster is one projected cluster.
type Cluster struct {
	// Medoid is the index of the cluster's representative record.
	Medoid int
	// Dims is the subspace selected for the cluster, ascending.
	Dims []int
	// Members are record indices assigned to the cluster (excluding
	// outliers after refinement).
	Members []int
}

// Result is a PROCLUS clustering.
type Result struct {
	Clusters []Cluster
	// Outliers are record indices assigned to no cluster.
	Outliers []int
	// Objective is the final average within-cluster segmental
	// distance (lower is better).
	Objective float64
}

// Run clusters the matrix. PROCLUS is an in-core algorithm — it
// requires random access to records — so it takes a Matrix rather
// than a scanning Source.
func Run(m *dataset.Matrix, cfg Config) (*Result, error) {
	n, d := m.NumRecords(), m.Dims()
	if n == 0 {
		return nil, fmt.Errorf("proclus: empty data set")
	}
	if err := cfg.validate(n, d); err != nil {
		return nil, err
	}
	s := rng.New(cfg.Seed)

	candidates := initialCandidates(m, &cfg, s)
	current := candidates[:cfg.K]
	best := append([]int(nil), current...)
	bestObj := math.Inf(1)
	bad := 0
	for bad < cfg.MaxBadIterations {
		dims := findDimensions(m, current, cfg.AvgDims)
		assign, _ := assignPoints(m, current, dims)
		obj := objective(m, current, dims, assign)
		if obj < bestObj {
			bestObj = obj
			copy(best, current)
			bad = 0
		} else {
			bad++
		}
		// Replace the medoid of the worst (smallest) cluster with a
		// random unused candidate.
		current = swapWorst(current, candidates, assign, &cfg, s)
	}

	// Refinement: one more dimension selection from the best medoids,
	// final assignment, outlier determination.
	dims := findDimensions(m, best, cfg.AvgDims)
	assign, dist := assignPoints(m, best, dims)
	res := &Result{Objective: objective(m, best, dims, assign)}
	radius := influenceRadii(m, best, dims)
	members := make([][]int, cfg.K)
	for i := 0; i < n; i++ {
		ci := assign[i]
		if dist[i] > radius[ci] {
			res.Outliers = append(res.Outliers, i)
			continue
		}
		members[ci] = append(members[ci], i)
	}
	for ci := 0; ci < cfg.K; ci++ {
		res.Clusters = append(res.Clusters, Cluster{
			Medoid:  best[ci],
			Dims:    dims[ci],
			Members: members[ci],
		})
	}
	return res, nil
}

// initialCandidates samples A·K records and greedily keeps B·K
// max-min-separated ones (full-space Euclidean distance), medoid
// candidates per the paper's initialization phase.
func initialCandidates(m *dataset.Matrix, cfg *Config, s *rng.Source) []int {
	n := m.NumRecords()
	sampleSize := cfg.SampleFactor * cfg.K
	if sampleSize > n {
		sampleSize = n
	}
	perm := s.Perm(n)[:sampleSize]
	want := cfg.CandidateFactor * cfg.K
	if want > sampleSize {
		want = sampleSize
	}
	chosen := []int{perm[0]}
	minDist := make([]float64, sampleSize)
	for i, p := range perm {
		minDist[i] = euclid(m.Row(p), m.Row(chosen[0]))
	}
	for len(chosen) < want {
		bi, bd := -1, -1.0
		for i, p := range perm {
			if minDist[i] > bd {
				bd = minDist[i]
				bi = i
				_ = p
			}
		}
		next := perm[bi]
		chosen = append(chosen, next)
		minDist[bi] = -1
		for i, p := range perm {
			if minDist[i] < 0 {
				continue
			}
			if dd := euclid(m.Row(p), m.Row(next)); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}
	return chosen
}

// findDimensions computes, for each medoid, its locality (points
// closer to it than to any other medoid), the per-dimension mean
// absolute deviation inside the locality, and picks the K·AvgDims
// globally smallest Z-scores with at least two dims per medoid.
func findDimensions(m *dataset.Matrix, medoids []int, avgDims int) [][]int {
	k, d := len(medoids), m.Dims()
	n := m.NumRecords()
	// Locality radius: distance to the nearest other medoid.
	radius := make([]float64, k)
	for i := range medoids {
		radius[i] = math.Inf(1)
		for j := range medoids {
			if i == j {
				continue
			}
			if dd := euclid(m.Row(medoids[i]), m.Row(medoids[j])); dd < radius[i] {
				radius[i] = dd
			}
		}
	}
	if k == 1 {
		radius[0] = math.Inf(1)
	}
	// Per-medoid per-dim average absolute deviation within the
	// locality.
	x := make([][]float64, k)
	cnt := make([]int, k)
	for i := range x {
		x[i] = make([]float64, d)
	}
	for r := 0; r < n; r++ {
		rec := m.Row(r)
		for i, med := range medoids {
			if euclid(rec, m.Row(med)) <= radius[i] {
				cnt[i]++
				mr := m.Row(med)
				for j := 0; j < d; j++ {
					x[i][j] += math.Abs(rec[j] - mr[j])
				}
			}
		}
	}
	type scored struct {
		med, dim int
		z        float64
	}
	var all []scored
	for i := 0; i < k; i++ {
		if cnt[i] == 0 {
			cnt[i] = 1
		}
		mean, sd := 0.0, 0.0
		for j := 0; j < d; j++ {
			x[i][j] /= float64(cnt[i])
			mean += x[i][j]
		}
		mean /= float64(d)
		for j := 0; j < d; j++ {
			sd += (x[i][j] - mean) * (x[i][j] - mean)
		}
		sd = math.Sqrt(sd / float64(d-1))
		if sd == 0 {
			sd = 1
		}
		for j := 0; j < d; j++ {
			all = append(all, scored{i, j, (x[i][j] - mean) / sd})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].z < all[b].z })
	// Two dims per medoid first, then globally best until K·AvgDims.
	total := k * avgDims
	picked := make([][]int, k)
	chosen := 0
	for pass := 0; pass < 2; pass++ {
		for _, s := range all {
			if chosen >= total {
				break
			}
			if pass == 0 && len(picked[s.med]) >= 2 {
				continue
			}
			if contains(picked[s.med], s.dim) {
				continue
			}
			picked[s.med] = append(picked[s.med], s.dim)
			chosen++
		}
	}
	for i := range picked {
		sort.Ints(picked[i])
	}
	return picked
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// assignPoints gives every record to the medoid with the smallest
// Manhattan segmental distance over that medoid's dimensions.
func assignPoints(m *dataset.Matrix, medoids []int, dims [][]int) (assign []int, dist []float64) {
	n := m.NumRecords()
	assign = make([]int, n)
	dist = make([]float64, n)
	for r := 0; r < n; r++ {
		rec := m.Row(r)
		bi, bd := 0, math.Inf(1)
		for i, med := range medoids {
			dd := segmental(rec, m.Row(med), dims[i])
			if dd < bd {
				bd = dd
				bi = i
			}
		}
		assign[r] = bi
		dist[r] = bd
	}
	return assign, dist
}

// objective is the average within-cluster segmental distance.
func objective(m *dataset.Matrix, medoids []int, dims [][]int, assign []int) float64 {
	n := m.NumRecords()
	total := 0.0
	for r := 0; r < n; r++ {
		total += segmental(m.Row(r), m.Row(medoids[assign[r]]), dims[assign[r]])
	}
	return total / float64(n)
}

// swapWorst replaces the medoid of the smallest cluster with a random
// unused candidate.
func swapWorst(current, candidates, assign []int, cfg *Config, s *rng.Source) []int {
	counts := make([]int, len(current))
	for _, a := range assign {
		counts[a]++
	}
	worst, wc := 0, math.MaxInt
	for i, c := range counts {
		if c < wc {
			wc = c
			worst = i
		}
	}
	used := map[int]bool{}
	for _, c := range current {
		used[c] = true
	}
	next := append([]int(nil), current...)
	for tries := 0; tries < 4*len(candidates); tries++ {
		cand := candidates[s.Intn(len(candidates))]
		if !used[cand] {
			next[worst] = cand
			break
		}
	}
	return next
}

// influenceRadii returns, per cluster, the distance to the nearest
// other medoid under the cluster's own segmental distance — points
// farther than this from their medoid are outliers (the refinement
// phase's sphere of influence).
func influenceRadii(m *dataset.Matrix, medoids []int, dims [][]int) []float64 {
	k := len(medoids)
	out := make([]float64, k)
	for i := range medoids {
		out[i] = math.Inf(1)
		for j := range medoids {
			if i == j {
				continue
			}
			if dd := segmental(m.Row(medoids[i]), m.Row(medoids[j]), dims[i]); dd < out[i] {
				out[i] = dd
			}
		}
	}
	return out
}

// segmental is the Manhattan segmental distance: the mean absolute
// difference over the given dimensions.
func segmental(a, b []float64, dims []int) float64 {
	if len(dims) == 0 {
		return 0
	}
	t := 0.0
	for _, j := range dims {
		t += math.Abs(a[j] - b[j])
	}
	return t / float64(len(dims))
}

func euclid(a, b []float64) float64 {
	t := 0.0
	for i := range a {
		d := a[i] - b[i]
		t += d * d
	}
	return math.Sqrt(t)
}
