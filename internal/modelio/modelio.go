// Package modelio serializes a fitted clustering result (mafia.Result)
// to a versioned, checksummed binary model file, so a fit can be
// persisted once and served for assignment without re-clustering.
//
// The framing follows the diskio conventions: a magic + version
// header, little-endian encoding throughout, a CRC32C over the
// payload so silent bit-level corruption is detected instead of being
// served as a model, and atomic temp-file + rename writes (a crash
// never leaves a half-written model at the target path).
//
// Format, version 2:
//
//	magic       [4]byte  "PMFM"
//	version     uint32   2
//	length      uint64   payload byte count
//	crc         uint32   CRC32C (Castagnoli) of the payload
//	generation  uint64   monotonic refit counter (0 = unversioned)
//	fingerprint uint64   FNV-64a of the payload
//	payload length bytes:
//	  records  uint64            Result.N
//	  seconds  float64           Result.Seconds
//	  dims     uint32, then per dimension:
//	    index uint32, domain lo/hi float64, uniform uint8,
//	    fineUnits uint32, bins uint32, then per bin:
//	      bounds lo/hi float64, unitLo/unitHi uint32,
//	      count uint64, threshold float64
//	  levels   uint32, then per level:
//	    k/raw/unique/dense uint32, seconds/populateSeconds float64
//	  clusters uint32, then per cluster:
//	    k uint32, k×uint8 subspace dims,
//	    unitBytes uint32 + the unit array's byte encoding,
//	    boxes uint32, then per box k×uint8 binLo, k×uint8 binHi
//
// Version 1 files are the same payload behind a 20-byte header that
// stops at the crc field; readers accept both, reporting generation 0
// and a fingerprint computed from the payload for v1.
//
// The generation field orders refits of the same logical model: a
// streaming ingester bumps it on every background refit, and the
// serving daemon's hot-swap logic uses it (with the fingerprint) to
// tell a genuinely new model from a same-content rewrite. The
// fingerprint hashes the payload, so two files with equal fingerprints
// compile to identical assign indexes regardless of generation.
//
// The parallel machine's Report is runtime instrumentation, not model
// state, and is not serialized; a loaded Result carries a nil Report.
package modelio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"pmafia/internal/cluster"
	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/mafia"
	"pmafia/internal/unit"
)

const (
	magic   = "PMFM"
	Version = 2

	headerLenV1 = 4 + 4 + 8 + 4
	headerLenV2 = headerLenV1 + 8 + 8

	// maxPayload bounds the header's length field before anything is
	// allocated: a model is bins, thresholds, and DNF covers — a few
	// megabytes at the extreme — so a multi-gigabyte length is a
	// corrupt or hostile header.
	maxPayload = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by every error reporting a malformed or
// checksum-failing model file.
var ErrCorrupt = errors.New("modelio: corrupt model")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Meta is the versioning header of a model file: which refit produced
// it and a content hash of its payload.
type Meta struct {
	Generation  uint64 // monotonic refit counter; 0 for v1 files
	Fingerprint uint64 // FNV-64a of the payload
}

// fingerprint hashes a payload the way the v2 header records it.
func fingerprint(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// Write serializes res to w in the current format with generation 0.
func Write(w io.Writer, res *mafia.Result) error {
	return WriteMeta(w, res, 0)
}

// WriteMeta serializes res to w in the version-2 format, stamping the
// header with generation and the payload fingerprint.
func WriteMeta(w io.Writer, res *mafia.Result, generation uint64) error {
	if res == nil || res.Grid == nil {
		return errors.New("modelio: nil result or grid")
	}
	payload, err := encodePayload(res)
	if err != nil {
		return err
	}
	hdr := make([]byte, headerLenV2)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(hdr[20:], generation)
	binary.LittleEndian.PutUint64(hdr[28:], fingerprint(payload))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// Read deserializes a model written by Write, verifying the checksum
// before decoding. Both header versions are accepted.
func Read(r io.Reader) (*mafia.Result, error) {
	res, _, err := ReadMeta(r)
	return res, err
}

// ReadMeta is Read plus the versioning header: generation and payload
// fingerprint. A v1 file reads as generation 0 with the fingerprint
// computed from its payload, so equal payloads fingerprint equally
// across versions.
func ReadMeta(r io.Reader) (*mafia.Result, Meta, error) {
	hdr := make([]byte, headerLenV1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, Meta{}, corruptf("short header: %v", err)
	}
	if string(hdr[:4]) != magic {
		return nil, Meta{}, corruptf("bad magic %q", hdr[:4])
	}
	var meta Meta
	haveMeta := false
	switch v := binary.LittleEndian.Uint32(hdr[4:]); v {
	case 1:
	case 2:
		ext := make([]byte, headerLenV2-headerLenV1)
		if _, err := io.ReadFull(r, ext); err != nil {
			return nil, Meta{}, corruptf("short v2 header: %v", err)
		}
		meta.Generation = binary.LittleEndian.Uint64(ext[0:])
		meta.Fingerprint = binary.LittleEndian.Uint64(ext[8:])
		haveMeta = true
	default:
		return nil, Meta{}, fmt.Errorf("modelio: unsupported model version %d (this build reads %d)", v, Version)
	}
	length := binary.LittleEndian.Uint64(hdr[8:])
	if length > maxPayload {
		return nil, Meta{}, corruptf("payload length %d exceeds the %d cap", length, maxPayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, Meta{}, corruptf("short payload: %v", err)
	}
	want := binary.LittleEndian.Uint32(hdr[16:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, Meta{}, corruptf("payload checksum %08x, header says %08x", got, want)
	}
	if !haveMeta {
		meta.Fingerprint = fingerprint(payload)
	}
	res, err := decodePayload(payload)
	if err != nil {
		return nil, Meta{}, err
	}
	return res, meta, nil
}

// Save writes res to path atomically with generation 0: the model
// streams into a temp file in the same directory, is synced, and is
// renamed into place.
func Save(path string, res *mafia.Result) error {
	return SaveMeta(path, res, 0)
}

// SaveMeta is Save with an explicit generation stamped into the
// header. The rename is atomic, so a reader concurrently loading the
// path sees either the previous complete model or this one — never a
// mix.
func SaveMeta(path string, res *mafia.Result, generation uint64) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".model-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = WriteMeta(f, res, generation); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a model from path.
func Load(path string) (*mafia.Result, error) {
	res, _, err := LoadMeta(path)
	return res, err
}

// LoadMeta reads a model and its versioning header from path.
//
// The whole file is read into memory in a single pass before any of
// it is interpreted, so a concurrent atomic replacement of the path
// can never produce a torn decode (old header, new payload): the
// bytes decoded are the bytes of exactly one read. A file whose size
// disagrees with its header's payload length fails with ErrCorrupt.
func LoadMeta(path string) (*mafia.Result, Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Meta{}, err
	}
	if len(data) < headerLenV1 {
		return nil, Meta{}, corruptf("%s: short header: %d bytes", path, len(data))
	}
	if string(data[:4]) == magic {
		hdrLen := uint64(headerLenV1)
		if binary.LittleEndian.Uint32(data[4:]) == 2 {
			hdrLen = headerLenV2
		}
		length := binary.LittleEndian.Uint64(data[8:])
		if length <= maxPayload && length != uint64(len(data))-hdrLen {
			return nil, Meta{}, corruptf("%s: header says %d payload bytes, file holds %d", path, length, uint64(len(data))-hdrLen)
		}
	}
	res, meta, err := ReadMeta(bytes.NewReader(data))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("%s: %w", path, err)
	}
	return res, meta, nil
}

// enc is a little-endian payload builder.
type enc struct{ buf bytes.Buffer }

func (e *enc) u8(v uint8)    { e.buf.WriteByte(v) }
func (e *enc) u32(v uint32)  { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); e.buf.Write(b[:]) }
func (e *enc) u64(v uint64)  { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); e.buf.Write(b[:]) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func encodePayload(res *mafia.Result) ([]byte, error) {
	var e enc
	e.u64(uint64(res.N))
	e.f64(res.Seconds)

	spec := res.Grid.Spec()
	e.u32(uint32(len(spec)))
	for _, d := range spec {
		e.u32(uint32(d.Index))
		e.f64(d.Domain.Lo)
		e.f64(d.Domain.Hi)
		if d.Uniform {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.u32(uint32(d.FineUnits))
		e.u32(uint32(len(d.Bins)))
		for _, b := range d.Bins {
			e.f64(b.Bounds.Lo)
			e.f64(b.Bounds.Hi)
			e.u32(uint32(b.UnitLo))
			e.u32(uint32(b.UnitHi))
			e.u64(uint64(b.Count))
			e.f64(b.Threshold)
		}
	}

	e.u32(uint32(len(res.Levels)))
	for _, l := range res.Levels {
		e.u32(uint32(l.K))
		e.u32(uint32(l.NcduRaw))
		e.u32(uint32(l.Ncdu))
		e.u32(uint32(l.Ndu))
		e.f64(l.Seconds)
		e.f64(l.PopulateSeconds)
	}

	e.u32(uint32(len(res.Clusters)))
	for ci := range res.Clusters {
		c := &res.Clusters[ci]
		k := len(c.Dims)
		e.u32(uint32(k))
		for _, d := range c.Dims {
			e.u8(d)
		}
		var units []byte
		if c.Units != nil {
			if c.Units.K != k {
				return nil, fmt.Errorf("modelio: cluster %d: %d-dim units in a %d-dim subspace", ci, c.Units.K, k)
			}
			units = c.Units.Encode()
		}
		e.u32(uint32(len(units)))
		e.buf.Write(units)
		e.u32(uint32(len(c.Boxes)))
		for bi := range c.Boxes {
			b := &c.Boxes[bi]
			if len(b.BinLo) != k || len(b.BinHi) != k {
				return nil, fmt.Errorf("modelio: cluster %d box %d spans %d dims, subspace has %d", ci, bi, len(b.BinLo), k)
			}
			for x := 0; x < k; x++ {
				e.u8(b.BinLo[x])
			}
			for x := 0; x < k; x++ {
				e.u8(b.BinHi[x])
			}
		}
	}
	return e.buf.Bytes(), nil
}

// dec is a bounds-checked little-endian payload cursor; the first
// out-of-bounds read latches err and subsequent reads return zero.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = corruptf("payload truncated at byte %d (want %d more)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a u32 element count and rejects values that could not
// fit in the remaining payload at minBytes bytes per element.
func (d *dec) count(minBytes int) int {
	n := int(d.u32())
	// int64 math: on 32-bit platforms a hostile count times minBytes
	// can wrap negative in int and slip past the guard.
	if d.err == nil && int64(n)*int64(minBytes) > int64(len(d.buf)-d.off) {
		d.err = corruptf("element count %d at byte %d exceeds the remaining payload", n, d.off-4)
	}
	return n
}

func decodePayload(payload []byte) (*mafia.Result, error) {
	d := &dec{buf: payload}
	res := &mafia.Result{
		N:       int(d.u64()),
		Seconds: d.f64(),
	}

	ndims := d.count(29) // fixed dim header
	specs := make([]grid.DimSpec, 0, ndims)
	for i := 0; i < ndims && d.err == nil; i++ {
		s := grid.DimSpec{
			Index:     int(d.u32()),
			Domain:    dataset.Range{Lo: d.f64(), Hi: d.f64()},
			Uniform:   d.u8() != 0,
			FineUnits: int(d.u32()),
		}
		nbins := d.count(40)
		s.Bins = make([]grid.Bin, 0, nbins)
		for b := 0; b < nbins && d.err == nil; b++ {
			s.Bins = append(s.Bins, grid.Bin{
				Bounds:    dataset.Range{Lo: d.f64(), Hi: d.f64()},
				UnitLo:    int(d.u32()),
				UnitHi:    int(d.u32()),
				Count:     int64(d.u64()),
				Threshold: d.f64(),
			})
		}
		specs = append(specs, s)
	}
	if d.err != nil {
		return nil, d.err
	}
	g, err := grid.FromBins(specs, int64(res.N))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	res.Grid = g

	nlevels := d.count(32)
	for i := 0; i < nlevels && d.err == nil; i++ {
		res.Levels = append(res.Levels, mafia.LevelStats{
			K:               int(d.u32()),
			NcduRaw:         int(d.u32()),
			Ncdu:            int(d.u32()),
			Ndu:             int(d.u32()),
			Seconds:         d.f64(),
			PopulateSeconds: d.f64(),
		})
	}

	nclusters := d.count(12)
	for ci := 0; ci < nclusters && d.err == nil; ci++ {
		k := d.count(1)
		if d.err == nil && (k < 1 || k > len(res.Grid.Dims)) {
			return nil, corruptf("cluster %d: subspace of %d dims in a %d-dim grid", ci, k, len(res.Grid.Dims))
		}
		c := cluster.Cluster{Dims: append([]uint8(nil), d.take(k)...)}
		nunits := d.count(1)
		if ub := d.take(nunits); d.err == nil && nunits > 0 {
			c.Units, err = unit.Decode(k, ub)
			if err != nil {
				return nil, fmt.Errorf("%w: cluster %d units: %v", ErrCorrupt, ci, err)
			}
		}
		nboxes := d.count(2 * k)
		for bi := 0; bi < nboxes && d.err == nil; bi++ {
			c.Boxes = append(c.Boxes, cluster.Box{
				BinLo: append([]uint8(nil), d.take(k)...),
				BinHi: append([]uint8(nil), d.take(k)...),
			})
		}
		if d.err == nil {
			res.Clusters = append(res.Clusters, c)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, corruptf("%d trailing bytes after the model", len(d.buf)-d.off)
	}
	return res, nil
}
