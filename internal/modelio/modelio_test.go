package modelio_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/mafia"
	"pmafia/internal/modelio"
	"pmafia/internal/rng"
)

// fit runs the engine on generated data and returns both.
func fit(t *testing.T, seed uint64) (*mafia.Result, *dataset.Matrix) {
	t.Helper()
	ext := []dataset.Range{{Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}}
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:     6,
		Records:  3000,
		Clusters: []datagen.Cluster{datagen.UniformBox([]int{1, 3, 4}, ext, 0)},
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("fit produced no clusters")
	}
	return res, m
}

func TestRoundTrip(t *testing.T) {
	res, m := fit(t, 3)
	path := filepath.Join(t.TempDir(), "model.pmfm")
	if err := modelio.Save(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := modelio.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	if got.N != res.N {
		t.Errorf("N: %d vs %d", got.N, res.N)
	}
	if len(got.Levels) != len(res.Levels) {
		t.Fatalf("levels: %d vs %d", len(got.Levels), len(res.Levels))
	}
	for i := range res.Levels {
		if got.Levels[i] != res.Levels[i] {
			t.Errorf("level %d: %+v vs %+v", i, got.Levels[i], res.Levels[i])
		}
	}
	if len(got.Clusters) != len(res.Clusters) {
		t.Fatalf("clusters: %d vs %d", len(got.Clusters), len(res.Clusters))
	}
	for i := range res.Clusters {
		if got.Clusters[i].String() != res.Clusters[i].String() {
			t.Errorf("cluster %d: %v vs %v", i, got.Clusters[i].String(), res.Clusters[i].String())
		}
		if got.Clusters[i].DNF(got.Grid) != res.Clusters[i].DNF(res.Grid) {
			t.Errorf("cluster %d DNF differs after round trip", i)
		}
	}

	// The loaded grid must label bit-identically: compare a full
	// assignment pass on the training data plus off-domain probes.
	want, err := res.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("record %d: loaded model labels %d, original %d", i, have[i], want[i])
		}
	}
	r := rng.New(9)
	rec := make([]float64, len(res.Grid.Dims))
	for probe := 0; probe < 500; probe++ {
		for j := range rec {
			rec[j] = r.In(-50, 150)
		}
		if a, b := res.AssignRecord(rec), got.AssignRecord(rec); a != b {
			t.Fatalf("probe %v: %d vs %d", rec, b, a)
		}
	}
}

func TestWriteReadBuffer(t *testing.T) {
	res, _ := fit(t, 4)
	var buf bytes.Buffer
	if err := modelio.Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	if _, err := modelio.Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	res, _ := fit(t, 5)
	var buf bytes.Buffer
	if err := modelio.Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0x40 // payload bit flip
	if _, err := modelio.Read(bytes.NewReader(flip)); !errors.Is(err, modelio.ErrCorrupt) {
		t.Errorf("bit flip: got %v, want ErrCorrupt", err)
	}

	bad := append([]byte(nil), raw...)
	bad[0] = 'X' // magic
	if _, err := modelio.Read(bytes.NewReader(bad)); !errors.Is(err, modelio.ErrCorrupt) {
		t.Errorf("bad magic: got %v, want ErrCorrupt", err)
	}

	if _, err := modelio.Read(bytes.NewReader(raw[:len(raw)-7])); !errors.Is(err, modelio.ErrCorrupt) {
		t.Error("truncated payload accepted")
	}
	if _, err := modelio.Read(bytes.NewReader(raw[:10])); !errors.Is(err, modelio.ErrCorrupt) {
		t.Error("truncated header accepted")
	}

	ver := append([]byte(nil), raw...)
	ver[4] = 99 // unsupported version
	if _, err := modelio.Read(bytes.NewReader(ver)); err == nil {
		t.Error("unsupported version accepted")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	res, _ := fit(t, 8)
	path := filepath.Join(t.TempDir(), "model.pmfm")
	if err := modelio.SaveMeta(path, res, 42); err != nil {
		t.Fatal(err)
	}
	got, meta, err := modelio.LoadMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 42 {
		t.Errorf("generation: got %d, want 42", meta.Generation)
	}
	if meta.Fingerprint == 0 {
		t.Error("fingerprint is zero")
	}
	if got.N != res.N || len(got.Clusters) != len(res.Clusters) {
		t.Errorf("payload differs after meta round trip")
	}

	// Same result, different generation: the fingerprint must not move
	// (it hashes the payload, not the header).
	if err := modelio.SaveMeta(path, res, 43); err != nil {
		t.Fatal(err)
	}
	_, meta2, err := modelio.LoadMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Generation != 43 {
		t.Errorf("generation: got %d, want 43", meta2.Generation)
	}
	if meta2.Fingerprint != meta.Fingerprint {
		t.Errorf("fingerprint moved across generations of the same payload: %x vs %x",
			meta2.Fingerprint, meta.Fingerprint)
	}
}

// TestReadsVersion1 rebuilds a v1-framed file (20-byte header, no
// generation/fingerprint fields) from a current write and checks the
// reader still accepts it, reporting generation 0 and a payload-derived
// fingerprint that matches the v2 encoding of the same model.
func TestReadsVersion1(t *testing.T) {
	res, _ := fit(t, 9)
	var buf bytes.Buffer
	if err := modelio.Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	const v1HeaderLen, v2HeaderLen = 20, 36
	v1 := make([]byte, 0, len(raw)-16)
	v1 = append(v1, raw[:v1HeaderLen]...)
	v1 = append(v1, raw[v2HeaderLen:]...)
	binary.LittleEndian.PutUint32(v1[4:], 1)

	got, meta, err := modelio.ReadMeta(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 0 {
		t.Errorf("v1 generation: got %d, want 0", meta.Generation)
	}
	_, v2meta, err := modelio.ReadMeta(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Fingerprint != v2meta.Fingerprint {
		t.Errorf("v1 fingerprint %x differs from v2 fingerprint %x of the same payload",
			meta.Fingerprint, v2meta.Fingerprint)
	}
	if got.N != res.N || len(got.Clusters) != len(res.Clusters) {
		t.Error("v1 payload decoded differently")
	}

	// And via the file loader, including its size-vs-header check.
	path := filepath.Join(t.TempDir(), "v1.pmfm")
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := modelio.LoadMeta(path); err != nil {
		t.Fatalf("LoadMeta on a v1 file: %v", err)
	}
}

func TestLoadRejectsSizeMismatch(t *testing.T) {
	res, _ := fit(t, 6)
	path := filepath.Join(t.TempDir(), "model.pmfm")
	if err := modelio.Save(path, res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, 0xEE), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := modelio.Load(path); !errors.Is(err, modelio.ErrCorrupt) {
		t.Errorf("grown file: got %v, want ErrCorrupt", err)
	}
}

func TestSaveLeavesNoTempOnSuccess(t *testing.T) {
	res, _ := fit(t, 7)
	dir := t.TempDir()
	if err := modelio.Save(filepath.Join(dir, "m.pmfm"), res); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "m.pmfm" {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Errorf("directory holds %v, want just m.pmfm", names)
	}
}
