package unit

import (
	"testing"

	"pmafia/internal/rng"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 || len(b.Words()) != 3 {
		t.Fatalf("Len=%d words=%d", b.Len(), len(b.Words()))
	}
	for _, i := range []int{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count=%d, want 4", b.Count())
	}
	if NewBitset(-3).Len() != 0 {
		t.Fatal("negative size must clamp to 0")
	}
}

// TestBitsetRank property-checks Rank against a linear recount: for a
// random set, the rank of every set bit must equal the number of set
// bits strictly before it — the invariant the flat population kernel
// relies on to map cells to dense-rank indices.
func TestBitsetRank(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(1000)
		b := NewBitset(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				b.Set(i)
			}
		}
		prefix := b.RankTable()
		want := int32(0)
		for i := 0; i < n; i++ {
			if got := b.Rank(prefix, i); got != want {
				t.Fatalf("trial %d: Rank(%d) = %d, want %d", trial, i, got, want)
			}
			if b.Get(i) {
				want++
			}
		}
		if int(want) != b.Count() {
			t.Fatalf("trial %d: Count=%d, recount %d", trial, b.Count(), want)
		}
	}
}

// TestBitsetWordsOrMerge checks the OR-merge-by-words path the sp2
// reduction uses is equivalent to per-bit OR.
func TestBitsetWordsOrMerge(t *testing.T) {
	r := rng.New(9)
	const n = 300
	a, b := NewBitset(n), NewBitset(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			a.Set(i)
		}
		if r.Intn(2) == 0 {
			b.Set(i)
		}
	}
	want := make([]bool, n)
	for i := 0; i < n; i++ {
		want[i] = a.Get(i) || b.Get(i)
	}
	for w, v := range b.Words() {
		a.Words()[w] |= v
	}
	for i := 0; i < n; i++ {
		if a.Get(i) != want[i] {
			t.Fatalf("bit %d after word-merge: %v, want %v", i, a.Get(i), want[i])
		}
	}
}
