package unit

import (
	"testing"
	"testing/quick"

	"pmafia/internal/rng"
)

func TestAppendAndUnit(t *testing.T) {
	a := New(2, 4)
	a.Append([]uint8{1, 7}, []uint8{3, 9})
	a.Append([]uint8{0, 5}, []uint8{2, 2})
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	d, b := a.Unit(0)
	if d[0] != 1 || d[1] != 7 || b[0] != 3 || b[1] != 9 {
		t.Errorf("unit 0 = %v %v", d, b)
	}
}

func TestAppendValidation(t *testing.T) {
	cases := []struct {
		dims, bins []uint8
	}{
		{[]uint8{1}, []uint8{1, 2}},    // wrong width
		{[]uint8{2, 1}, []uint8{0, 0}}, // not ascending
		{[]uint8{3, 3}, []uint8{0, 0}}, // duplicate dim
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			New(2, 1).Append(c.dims, c.bins)
		}()
	}
}

func TestKeyUniqueness(t *testing.T) {
	a := New(2, 3)
	a.Append([]uint8{1, 2}, []uint8{3, 4})
	a.Append([]uint8{1, 2}, []uint8{3, 5})
	a.Append([]uint8{1, 3}, []uint8{3, 4})
	keys := map[string]bool{}
	for i := 0; i < a.Len(); i++ {
		keys[a.Key(i)] = true
	}
	if len(keys) != 3 {
		t.Errorf("expected 3 distinct keys, got %d", len(keys))
	}
	if a.Key(0) != KeyOf([]uint8{1, 2}, []uint8{3, 4}) {
		t.Error("Key and KeyOf disagree")
	}
}

func TestSubspaceKey(t *testing.T) {
	a := New(2, 2)
	a.Append([]uint8{1, 2}, []uint8{3, 4})
	a.Append([]uint8{1, 2}, []uint8{9, 9})
	if a.SubspaceKey(0) != a.SubspaceKey(1) {
		t.Error("same dims should share subspace key")
	}
}

func TestSortAndCompare(t *testing.T) {
	a := New(2, 3)
	a.Append([]uint8{2, 3}, []uint8{0, 0})
	a.Append([]uint8{1, 2}, []uint8{5, 5})
	a.Append([]uint8{1, 2}, []uint8{4, 9})
	a.Sort()
	if d, _ := a.Unit(0); d[0] != 1 {
		t.Errorf("sort order wrong: first unit dims %v", d)
	}
	_, b := a.Unit(0)
	if b[0] != 4 {
		t.Errorf("bins tiebreak wrong: %v", b)
	}
	if a.Compare(0, 1) >= 0 || a.Compare(1, 0) <= 0 || a.Compare(1, 1) != 0 {
		t.Error("Compare inconsistent")
	}
}

func TestDedup(t *testing.T) {
	a := New(2, 5)
	u := [][2][]uint8{
		{{1, 2}, {3, 4}},
		{{1, 2}, {3, 4}},
		{{1, 3}, {0, 0}},
		{{1, 2}, {3, 4}},
		{{1, 3}, {0, 0}},
	}
	for _, x := range u {
		a.Append(x[0], x[1])
	}
	removed := a.Dedup()
	if removed != 3 {
		t.Errorf("removed = %d, want 3", removed)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d, want 2", a.Len())
	}
	keys := map[string]bool{}
	for i := 0; i < a.Len(); i++ {
		if keys[a.Key(i)] {
			t.Fatal("duplicate survived dedup")
		}
		keys[a.Key(i)] = true
	}
}

func TestDedupProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		a := New(3, 50)
		ref := map[string]bool{}
		for i := 0; i < 50; i++ {
			d1 := uint8(s.Intn(3))
			d2 := d1 + 1 + uint8(s.Intn(3))
			d3 := d2 + 1 + uint8(s.Intn(3))
			dims := []uint8{d1, d2, d3}
			bins := []uint8{uint8(s.Intn(2)), uint8(s.Intn(2)), uint8(s.Intn(2))}
			a.Append(dims, bins)
			ref[KeyOf(dims, bins)] = true
		}
		a.Dedup()
		if a.Len() != len(ref) {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !ref[a.Key(i)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIsFace(t *testing.T) {
	a := New(3, 1)
	a.Append([]uint8{1, 4, 7}, []uint8{2, 5, 8})
	cases := []struct {
		dims, bins []uint8
		want       bool
	}{
		{[]uint8{1, 4}, []uint8{2, 5}, true},
		{[]uint8{1, 7}, []uint8{2, 8}, true},
		{[]uint8{4}, []uint8{5}, true},
		{[]uint8{1, 4}, []uint8{2, 6}, false}, // wrong bin
		{[]uint8{1, 5}, []uint8{2, 5}, false}, // dim not present
		{[]uint8{1, 4, 7}, []uint8{2, 5, 8}, true},
	}
	for i, c := range cases {
		if got := a.IsFace(c.dims, c.bins, 0); got != c.want {
			t.Errorf("case %d: IsFace = %v, want %v", i, got, c.want)
		}
	}
}

func TestAdjacent(t *testing.T) {
	a := New(2, 5)
	a.Append([]uint8{1, 2}, []uint8{3, 4}) // 0
	a.Append([]uint8{1, 2}, []uint8{3, 5}) // 1: adjacent to 0
	a.Append([]uint8{1, 2}, []uint8{4, 5}) // 2: diagonal from 0
	a.Append([]uint8{1, 3}, []uint8{3, 4}) // 3: different subspace
	a.Append([]uint8{1, 2}, []uint8{3, 7}) // 4: gap of 2 from 1
	if !a.Adjacent(0, 1) || !a.Adjacent(1, 0) {
		t.Error("0-1 should be adjacent")
	}
	if a.Adjacent(0, 2) {
		t.Error("diagonal units are not adjacent (no common face)")
	}
	if a.Adjacent(0, 3) {
		t.Error("different subspaces are never adjacent")
	}
	if a.Adjacent(1, 4) {
		t.Error("bins two apart are not adjacent")
	}
	if !a.Adjacent(2, 1) {
		t.Error("2-1 differ in exactly one bin by 1: should be adjacent")
	}
}

func TestSharedDims(t *testing.T) {
	a := New(3, 2)
	a.Append([]uint8{1, 7, 8}, []uint8{0, 1, 2})
	a.Append([]uint8{7, 8, 9}, []uint8{1, 3, 4})
	eq, sh := a.SharedDims(0, 1)
	if sh != 2 {
		t.Errorf("shared = %d, want 2", sh)
	}
	if eq != 1 { // dim 7 matches bins (1==1); dim 8 bins differ (2 vs 3)
		t.Errorf("equalBins = %d, want 1", eq)
	}
}

func TestProject(t *testing.T) {
	a := New(3, 1)
	a.Append([]uint8{1, 4, 7}, []uint8{2, 5, 8})
	out := make([]uint8, 2)
	if !a.Project(0, []uint8{1, 7}, out) {
		t.Fatal("projection onto {1,7} should succeed")
	}
	if out[0] != 2 || out[1] != 8 {
		t.Errorf("projected bins = %v", out)
	}
	if a.Project(0, []uint8{1, 5}, out) {
		t.Error("projection onto absent dim should fail")
	}
}

func TestSliceSharesStorage(t *testing.T) {
	a := New(1, 3)
	a.Append([]uint8{0}, []uint8{1})
	a.Append([]uint8{0}, []uint8{2})
	a.Append([]uint8{0}, []uint8{3})
	s := a.Slice(1, 3)
	if s.Len() != 2 {
		t.Fatalf("slice len = %d", s.Len())
	}
	_, b := s.Unit(0)
	if b[0] != 2 {
		t.Errorf("slice unit 0 bins = %v", b)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 1)
	a.Append([]uint8{0}, []uint8{1})
	c := a.Clone()
	c.Bins[0] = 9
	if a.Bins[0] == 9 {
		t.Error("Clone shares storage")
	}
}

func TestAppendRaw(t *testing.T) {
	a := New(2, 2)
	a.AppendRaw([]uint8{1, 2, 3, 4}, []uint8{0, 0, 1, 1})
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched raw append did not panic")
		}
	}()
	a.AppendRaw([]uint8{1}, []uint8{1, 2})
}

func TestSortIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		a := New(2, 20)
		before := map[string]int{}
		for i := 0; i < 20; i++ {
			d1 := uint8(s.Intn(5))
			dims := []uint8{d1, d1 + 1 + uint8(s.Intn(3))}
			bins := []uint8{uint8(s.Intn(4)), uint8(s.Intn(4))}
			a.Append(dims, bins)
			before[KeyOf(dims, bins)]++
		}
		a.Sort()
		after := map[string]int{}
		for i := 0; i < a.Len(); i++ {
			after[a.Key(i)]++
		}
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		// verify sortedness
		for i := 1; i < a.Len(); i++ {
			if a.Compare(i-1, i) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	a := New(2, 1)
	a.Append([]uint8{1, 8}, []uint8{7, 2})
	if got := a.String(0); got != "{d1:b7, d8:b2}" {
		t.Errorf("String = %q", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Append([]uint8{0, 2, 5}, []uint8{1, 2, 3})
	a.Append([]uint8{1, 3, 6}, []uint8{4, 5, 6})
	enc := a.Encode()
	if len(enc) != 2*2*3 {
		t.Fatalf("encoded %d bytes", len(enc))
	}
	b, err := Decode(3, enc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != a.Len() {
		t.Fatalf("decoded %d units", b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Key(i) != b.Key(i) {
			t.Errorf("unit %d differs after round trip", i)
		}
	}
}

func TestEncodeConcatenation(t *testing.T) {
	// Concatenating encodings must decode to the concatenated array —
	// the property the parallel gathers rely on.
	a := New(2, 1)
	a.Append([]uint8{0, 1}, []uint8{5, 6})
	b := New(2, 1)
	b.Append([]uint8{2, 3}, []uint8{7, 8})
	joined, err := Decode(2, append(a.Encode(), b.Encode()...))
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 2 || joined.Key(0) != a.Key(0) || joined.Key(1) != b.Key(0) {
		t.Errorf("concatenated decode wrong")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(0, nil); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := Decode(2, make([]byte, 5)); err == nil {
		t.Error("misaligned payload: want error")
	}
}

func TestLenZeroK(t *testing.T) {
	a := &Array{}
	if a.Len() != 0 {
		t.Errorf("zero-value Len = %d", a.Len())
	}
}
