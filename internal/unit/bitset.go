package unit

import "math/bits"

// Bitset is a fixed-size bit vector used for membership tests in the
// hot per-record kernels and for the repeat/combined marks the ranks
// OR-reduce: one bit per item instead of one bool byte shrinks both the
// working set and the collective payload by 8x, and the word form can
// be OR-merged wholesale.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an all-zero bitset of n bits.
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bit count the set was created with.
func (b *Bitset) Len() int { return b.n }

// Get reports bit i.
func (b *Bitset) Get(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set turns bit i on.
func (b *Bitset) Set(i int) {
	b.words[i>>6] |= 1 << uint(i&63)
}

// Words exposes the backing 64-bit words — the payload shape the sp2
// OR-reduction moves. Mutating a word mutates the set.
func (b *Bitset) Words() []uint64 { return b.words }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// RankTable returns prefix[i] = number of set bits in words before word
// i. Together with OnesCount of a masked word it answers "how many set
// bits precede bit j" in O(1) — the lookup the flat population kernel
// uses to map a grid cell to its CDU index without a hash table.
func (b *Bitset) RankTable() []int32 {
	prefix := make([]int32, len(b.words))
	var c int32
	for i, w := range b.words {
		prefix[i] = c
		c += int32(bits.OnesCount64(w))
	}
	return prefix
}

// Rank returns the number of set bits strictly before bit i, given the
// prefix table from RankTable.
func (b *Bitset) Rank(prefix []int32, i int) int32 {
	w := i >> 6
	return prefix[w] + int32(bits.OnesCount64(b.words[w]&(1<<uint(i&63)-1)))
}
