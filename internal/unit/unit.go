// Package unit implements the dense-unit and candidate-dense-unit
// (CDU) representation of pMAFIA. A unit in a k-dimensional subspace is
// an ordered set of k dimension indices plus one bin index per
// dimension. Following §4.2 of the paper, units are stored as linear
// byte arrays — one array for all dimensions and one for all bin
// indices — which keeps the task-parallel exchanges to a single small
// message per collective.
package unit

import (
	"fmt"
	"sort"
)

// Array holds units of a fixed dimensionality K in two parallel byte
// arrays. Unit i occupies Dims[i*K:(i+1)*K] (ascending dimension
// indices) and Bins[i*K:(i+1)*K] (the bin index for each dimension).
type Array struct {
	K    int
	Dims []uint8
	Bins []uint8
}

// New returns an empty array of k-dimensional units with capacity for
// capUnits units.
func New(k, capUnits int) *Array {
	return &Array{
		K:    k,
		Dims: make([]uint8, 0, k*capUnits),
		Bins: make([]uint8, 0, k*capUnits),
	}
}

// Len returns the number of units.
func (a *Array) Len() int {
	if a.K == 0 {
		return 0
	}
	return len(a.Dims) / a.K
}

// Unit returns views of unit i's dimensions and bins; the slices alias
// the array's storage.
func (a *Array) Unit(i int) (dims, bins []uint8) {
	return a.Dims[i*a.K : (i+1)*a.K], a.Bins[i*a.K : (i+1)*a.K]
}

// Append adds a unit. dims must be strictly ascending and both slices
// must have length K; this is validated in order to preserve the
// canonical-form invariant the joins and dedup rely on.
func (a *Array) Append(dims, bins []uint8) {
	if len(dims) != a.K || len(bins) != a.K {
		panic(fmt.Sprintf("unit: appending %d/%d-wide unit to K=%d array", len(dims), len(bins), a.K))
	}
	for i := 1; i < len(dims); i++ {
		if dims[i] <= dims[i-1] {
			panic(fmt.Sprintf("unit: dims %v not strictly ascending", dims))
		}
	}
	a.Dims = append(a.Dims, dims...)
	a.Bins = append(a.Bins, bins...)
}

// AppendRaw adds pre-validated units wholesale (used when
// concatenating per-rank arrays whose elements are already canonical).
func (a *Array) AppendRaw(dims, bins []uint8) {
	if len(dims) != len(bins) || len(dims)%a.K != 0 {
		panic("unit: raw append with mismatched lengths")
	}
	a.Dims = append(a.Dims, dims...)
	a.Bins = append(a.Bins, bins...)
}

// Slice returns a view of units [lo, hi) sharing storage.
func (a *Array) Slice(lo, hi int) *Array {
	return &Array{K: a.K, Dims: a.Dims[lo*a.K : hi*a.K], Bins: a.Bins[lo*a.K : hi*a.K]}
}

// Clone returns a deep copy.
func (a *Array) Clone() *Array {
	return &Array{
		K:    a.K,
		Dims: append([]uint8(nil), a.Dims...),
		Bins: append([]uint8(nil), a.Bins...),
	}
}

// Key returns a string key identifying unit i (its dims and bins),
// suitable for map-based dedup and face lookups.
func (a *Array) Key(i int) string {
	buf := make([]byte, 0, 2*a.K)
	d, b := a.Unit(i)
	buf = append(buf, d...)
	buf = append(buf, b...)
	return string(buf)
}

// KeyOf builds the same key from raw dims/bins slices.
func KeyOf(dims, bins []uint8) string {
	buf := make([]byte, 0, len(dims)+len(bins))
	buf = append(buf, dims...)
	buf = append(buf, bins...)
	return string(buf)
}

// SubspaceKey returns a key identifying unit i's subspace (dims only).
func (a *Array) SubspaceKey(i int) string {
	d, _ := a.Unit(i)
	return string(d)
}

// String renders unit i as e.g. "{d1:b7, d8:b2}".
func (a *Array) String(i int) string {
	d, b := a.Unit(i)
	s := "{"
	for j := range d {
		if j > 0 {
			s += ", "
		}
		s += fmt.Sprintf("d%d:b%d", d[j], b[j])
	}
	return s + "}"
}

// Compare orders units i and j lexicographically by (dims, bins).
func (a *Array) Compare(i, j int) int {
	di, bi := a.Unit(i)
	dj, bj := a.Unit(j)
	for x := 0; x < a.K; x++ {
		if di[x] != dj[x] {
			if di[x] < dj[x] {
				return -1
			}
			return 1
		}
	}
	for x := 0; x < a.K; x++ {
		if bi[x] != bj[x] {
			if bi[x] < bj[x] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Swap exchanges units i and j in place.
func (a *Array) Swap(i, j int) {
	di, bi := a.Unit(i)
	dj, bj := a.Unit(j)
	for x := 0; x < a.K; x++ {
		di[x], dj[x] = dj[x], di[x]
		bi[x], bj[x] = bj[x], bi[x]
	}
}

// Sort orders the units lexicographically by (dims, bins).
func (a *Array) Sort() {
	sort.Sort((*sorter)(a))
}

type sorter Array

func (s *sorter) Len() int           { return (*Array)(s).Len() }
func (s *sorter) Swap(i, j int)      { (*Array)(s).Swap(i, j) }
func (s *sorter) Less(i, j int) bool { return (*Array)(s).Compare(i, j) < 0 }

// Dedup removes duplicate units (keeping first occurrences' order of
// the sorted sequence) and returns the number removed. The array is
// sorted as a side effect.
func (a *Array) Dedup() (removed int) {
	n := a.Len()
	if n < 2 {
		return 0
	}
	a.Sort()
	w := 1
	for i := 1; i < n; i++ {
		if a.Compare(i, w-1) == 0 {
			continue
		}
		if i != w {
			copy(a.Dims[w*a.K:(w+1)*a.K], a.Dims[i*a.K:(i+1)*a.K])
			copy(a.Bins[w*a.K:(w+1)*a.K], a.Bins[i*a.K:(i+1)*a.K])
		}
		w++
	}
	removed = n - w
	a.Dims = a.Dims[:w*a.K]
	a.Bins = a.Bins[:w*a.K]
	return removed
}

// IsFace reports whether the (sub-dimensional) unit (subDims, subBins)
// is a face of unit i of a: every dimension of sub appears in unit i
// with the same bin.
func (a *Array) IsFace(subDims, subBins []uint8, i int) bool {
	d, b := a.Unit(i)
	j := 0
	for x := range subDims {
		for j < len(d) && d[j] < subDims[x] {
			j++
		}
		if j >= len(d) || d[j] != subDims[x] || b[j] != subBins[x] {
			return false
		}
		j++
	}
	return true
}

// Adjacent reports whether units i and j of a live in the same
// subspace and differ in exactly one dimension's bin, by exactly one —
// i.e. they share a common (k-1)-dimensional face, the paper's
// connectivity relation for assembling clusters.
func (a *Array) Adjacent(i, j int) bool {
	di, bi := a.Unit(i)
	dj, bj := a.Unit(j)
	diffs := 0
	for x := 0; x < a.K; x++ {
		if di[x] != dj[x] {
			return false
		}
		if bi[x] != bj[x] {
			lo, hi := bi[x], bj[x]
			if lo > hi {
				lo, hi = hi, lo
			}
			if hi-lo != 1 {
				return false
			}
			diffs++
		}
	}
	return diffs == 1
}

// SharedDims returns how many dimensions units i and j have in common
// with equal bins, and how many dimensions they have in common at all.
func (a *Array) SharedDims(i, j int) (equalBins, shared int) {
	di, bi := a.Unit(i)
	dj, bj := a.Unit(j)
	x, y := 0, 0
	for x < a.K && y < a.K {
		switch {
		case di[x] < dj[y]:
			x++
		case di[x] > dj[y]:
			y++
		default:
			shared++
			if bi[x] == bj[y] {
				equalBins++
			}
			x++
			y++
		}
	}
	return equalBins, shared
}

// Project writes the bins of unit i restricted to the given subspace
// dims into out and reports whether every subspace dim is present in
// the unit.
func (a *Array) Project(i int, subDims, out []uint8) bool {
	d, b := a.Unit(i)
	j := 0
	for x := range subDims {
		for j < len(d) && d[j] < subDims[x] {
			j++
		}
		if j >= len(d) || d[j] != subDims[x] {
			return false
		}
		out[x] = b[j]
		j++
	}
	return true
}

// Encode serializes the array unit-major: for each unit, its K
// dimension bytes followed by its K bin bytes. Concatenating the
// encodings of several arrays (of equal K) in rank order yields a valid
// encoding of the concatenated array, which is what the parallel
// gather-and-broadcast steps rely on to ship both arrays in a single
// message.
func (a *Array) Encode() []byte {
	out := make([]byte, 0, 2*len(a.Dims))
	for i := 0; i < a.Len(); i++ {
		d, b := a.Unit(i)
		out = append(out, d...)
		out = append(out, b...)
	}
	return out
}

// Decode parses a unit-major encoding of k-dimensional units.
func Decode(k int, data []byte) (*Array, error) {
	if k <= 0 {
		return nil, fmt.Errorf("unit: decode with k=%d", k)
	}
	if len(data)%(2*k) != 0 {
		return nil, fmt.Errorf("unit: %d bytes is not a multiple of unit size %d", len(data), 2*k)
	}
	n := len(data) / (2 * k)
	a := New(k, n)
	for i := 0; i < n; i++ {
		rec := data[i*2*k : (i+1)*2*k]
		a.Dims = append(a.Dims, rec[:k]...)
		a.Bins = append(a.Bins, rec[k:]...)
	}
	return a, nil
}
