package mafia

import (
	"math"
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/obs"
	"pmafia/internal/sp2"
)

// runInstrumented executes an 8-rank run with a recorder attached.
func runInstrumented(t *testing.T, mode sp2.Mode) (*Result, *obs.Recorder, int) {
	t.Helper()
	const p = 8
	m, _ := genData(t, 8, 4000, 31, box(20, 45, 1, 3, 5))
	srcs := make([]dataset.Source, p)
	n := m.NumRecords()
	for r := 0; r < p; r++ {
		lo, hi := diskio.ShareBounds(n, r, p)
		srcs[r] = m.Slice(lo, hi)
	}
	rec := obs.New()
	cfg := Config{Recorder: rec}
	res, err := RunParallel(srcs, nil, cfg, sp2.Config{Procs: p, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec, p
}

// TestSimSpanSumsMatchRankSeconds is the paper-reproduction exactness
// check: in Sim mode the per-rank top-level span tiling (a single
// "run" span) must account for that rank's entire virtual clock.
func TestSimSpanSumsMatchRankSeconds(t *testing.T) {
	res, rec, p := runInstrumented(t, sp2.Sim)
	if rec.Ranks() != p {
		t.Fatalf("recorded %d rank tracks, want %d", rec.Ranks(), p)
	}
	for rank := 0; rank < p; rank++ {
		var topSum float64
		for _, sp := range rec.Spans(rank) {
			if sp.Depth == 0 {
				topSum += sp.Duration()
			}
		}
		want := res.Report.RankSeconds[rank]
		// The root span opens after the rank's first baton acquisition
		// and closes just before its last compute slice ends, so the
		// difference is real bookkeeping time — microseconds — while
		// the virtual clock carries the modeled run.
		if math.Abs(topSum-want) > 0.05 {
			t.Errorf("rank %d: top-level spans sum to %v, RankSeconds %v", rank, topSum, want)
		}
	}
}

// TestEnginePhasesRecorded checks every engine phase appears as a span
// on every rank and that the level labels follow the bottom-up loop.
func TestEnginePhasesRecorded(t *testing.T) {
	res, rec, p := runInstrumented(t, sp2.Sim)
	for rank := 0; rank < p; rank++ {
		phases := map[string]bool{}
		maxLevel := 0
		for _, sp := range rec.Spans(rank) {
			phases[sp.Name] = true
			if sp.Level > maxLevel {
				maxLevel = sp.Level
			}
			if sp.Duration() < 0 {
				t.Fatalf("rank %d: span %q negative duration", rank, sp.Name)
			}
		}
		for _, want := range []string{"run", "histogram", "grid", "level", "generate", "dedup", "populate", "identify", "clusters"} {
			if !phases[want] {
				t.Errorf("rank %d: no %q span (have %v)", rank, want, phases)
			}
		}
		if wantLevels := len(res.Levels); maxLevel != wantLevels {
			t.Errorf("rank %d: deepest span level %d, result has %d levels", rank, maxLevel, wantLevels)
		}
	}
}

// TestLevelStatsMatchRecorderCounters is the single-source-of-truth
// seam: the LevelStats rows of the result and the recorder's counters
// are both derived from the same levelTally, so they must agree.
func TestLevelStatsMatchRecorderCounters(t *testing.T) {
	res, rec, p := runInstrumented(t, sp2.Sim)
	var raw, unique, dense int64
	for _, l := range res.Levels {
		raw += int64(l.NcduRaw)
		unique += int64(l.Ncdu)
		dense += int64(l.Ndu)
	}
	// Counters are per rank and every rank holds the replicated unit
	// arrays, so each counter is p times the result's totals.
	if got := rec.Counter("cdus.generated"); got != raw*int64(p) {
		t.Errorf("cdus.generated = %d, want %d", got, raw*int64(p))
	}
	if got := rec.Counter("cdus.populated"); got != unique*int64(p) {
		t.Errorf("cdus.populated = %d, want %d", got, unique*int64(p))
	}
	if got := rec.Counter("dense.units"); got != dense*int64(p) {
		t.Errorf("dense.units = %d, want %d", got, dense*int64(p))
	}
	// The population passes scan each record once per level >= 2, so
	// the rank-summed record counter must be a multiple of N and equal
	// the per-level tallies' sum.
	var popLevels int64
	for _, l := range res.Levels {
		if l.K >= 2 && l.Ncdu > 0 {
			popLevels++
		}
	}
	if got := rec.Counter("populate.records"); got != popLevels*int64(res.N) {
		t.Errorf("populate.records = %d, want %d (%d passes over %d records)",
			got, popLevels*int64(res.N), popLevels, res.N)
	}
}

// TestRealModeEngineRecorder runs the instrumented engine with
// concurrent ranks; under -race this exercises the whole stack's
// Real-mode recording path.
func TestRealModeEngineRecorder(t *testing.T) {
	_, rec, p := runInstrumented(t, sp2.Real)
	for rank := 0; rank < p; rank++ {
		if len(rec.Spans(rank)) == 0 {
			t.Errorf("rank %d recorded no spans", rank)
		}
	}
	if rec.Counter("histogram.records") == 0 {
		t.Error("histogram.records not counted")
	}
}
