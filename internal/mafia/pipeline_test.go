package mafia

import (
	"path/filepath"
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/obs"
	"pmafia/internal/sp2"
)

// rangeShard adapts a contiguous record range of a file to Source.
type rangeShard struct {
	f      *diskio.File
	lo, hi int
}

func (s *rangeShard) Dims() int       { return s.f.Dims() }
func (s *rangeShard) NumRecords() int { return s.hi - s.lo }
func (s *rangeShard) Scan(chunk int) dataset.Scanner {
	return s.f.ScanRange(s.lo, s.hi, chunk)
}

// TestPipelinedRunSimAccounting runs the full engine out of core on the
// simulated machine with the prefetcher and worker pool on, and checks
// the pipeline's observability contract: every chunk of every pass went
// through the prefetcher, stalls never exceed prefetched chunks (a
// stall is a wait *for* a prefetched chunk), and the clustering output
// is identical to the serial-scan run. In Sim mode only stall time can
// reach the virtual clock — fully hidden reads are free — so these
// counters are the accounting surface of the compute/I-O overlap.
func TestPipelinedRunSimAccounting(t *testing.T) {
	m, _ := genData(t, 5, 4000, 33, box(15, 45, 0, 2))
	path := filepath.Join(t.TempDir(), "pipe.pmaf")
	if err := diskio.WriteSource(path, m); err != nil {
		t.Fatal(err)
	}

	run := func(prefetch bool, workers, p int, rec *obs.Recorder) *Result {
		t.Helper()
		f, err := diskio.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		f.SetPrefetch(prefetch)
		f.SetRecorder(rec)
		shards := make([]dataset.Source, p)
		for r := 0; r < p; r++ {
			lo, hi := diskio.ShareBounds(f.NumRecords(), r, p)
			shards[r] = &rangeShard{f: f, lo: lo, hi: hi}
		}
		res, err := RunParallel(shards, nil, Config{
			ChunkRecords: 256, Workers: workers, Recorder: rec,
		}, sp2.Config{Procs: p, Mode: sp2.Sim, Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := run(false, 0, 2, nil)

	rec := obs.New()
	piped := run(true, 2, 2, rec)

	if len(piped.Clusters) != len(serial.Clusters) {
		t.Fatalf("pipelined run found %d clusters, serial %d", len(piped.Clusters), len(serial.Clusters))
	}
	for i := range piped.Levels {
		ps, ss := piped.Levels[i], serial.Levels[i]
		if ps.K != ss.K || ps.Ncdu != ss.Ncdu || ps.Ndu != ss.Ndu {
			t.Errorf("level %d diverged: %+v vs %+v", i, ps, ss)
		}
	}

	chunks := rec.Counter("diskio.chunks")
	prefetched := rec.Counter("diskio.prefetch.chunks")
	stalls := rec.Counter("diskio.prefetch.stalls")
	if chunks == 0 {
		t.Fatal("no chunks read")
	}
	if prefetched != chunks {
		t.Errorf("prefetched %d of %d chunks; every read should go through the prefetcher", prefetched, chunks)
	}
	if stalls > prefetched {
		t.Errorf("%d stalls for %d prefetched chunks", stalls, prefetched)
	}
	if rec.Counter("populate.records") == 0 {
		t.Error("populate.records counter not emitted")
	}

	// The modeled parallel time must stay positive and finite — the
	// overlap accounting cannot make a rank's virtual clock vanish.
	if !(piped.Seconds > 0) {
		t.Errorf("pipelined Sim run reported %v seconds", piped.Seconds)
	}
}
