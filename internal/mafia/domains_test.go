package mafia

import (
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/sp2"
)

// TestGlobalDomainsContainMaximaAtLargeMagnitude is the regression test
// for the domain-widening bug: globalDomains used to widen the top end
// with hi + w*1e-9, which rounds back to hi when the width is small
// relative to hi's magnitude (here the ULP at 1e18 is 128, far above
// the ~1e-6 nominal step), leaving the maximum record outside the
// half-open domain. The fix steps by ULPs via dataset.WidenHi.
func TestGlobalDomainsContainMaximaAtLargeMagnitude(t *testing.T) {
	rows := [][]float64{
		{1e18, 0},
		{1e18 + 256, 5},
		{1e18 + 512, 3},
		{1e18 + 1024, 9},
	}
	m, err := dataset.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dom := res.Grid.Dims[0].Domain; !dom.Contains(1e18 + 1024) {
		t.Errorf("max record 1e18+1024 outside computed domain %v", dom)
	}
	if dom := res.Grid.Dims[1].Domain; !dom.Contains(9) {
		t.Errorf("max record 9 outside computed domain %v", dom)
	}
}

// The parallel domain reduction must widen identically: the min/max
// allreduce hands every rank the same extremes, so the widened domains
// are replicated. Exercise the p>1 path at the same magnitude.
func TestGlobalDomainsParallelLargeMagnitude(t *testing.T) {
	a, _ := dataset.FromRows([][]float64{{1e18, 1}, {1e18 + 512, 2}})
	b, _ := dataset.FromRows([][]float64{{1e18 + 1024, 3}, {1e18 + 128, 4}})
	res, err := RunParallel([]dataset.Source{a, b}, nil, Config{}, sp2.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dom := res.Grid.Dims[0].Domain; !dom.Contains(1e18 + 1024) {
		t.Errorf("global max 1e18+1024 outside computed domain %v", dom)
	}
}
