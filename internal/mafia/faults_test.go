package mafia

import (
	"errors"
	"testing"
	"time"

	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/faults"
	"pmafia/internal/sp2"
)

// runParallelWithDeadline bounds every end-to-end fault run: injected
// failures must terminate the whole machine, not hang it.
func runParallelWithDeadline(t *testing.T, shards []dataset.Source, domains []dataset.Range, cfg Config, mcfg sp2.Config) (*Result, error) {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := RunParallel(shards, domains, cfg, mcfg)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(30 * time.Second):
		t.Fatal("RunParallel hung on an injected fault")
		return nil, nil
	}
}

// stageShards writes the matrix to a shared record file and stages one
// local shard file per rank, as cmd/pmafia does.
func stageShards(t *testing.T, m *dataset.Matrix, p int) (*diskio.File, []*diskio.File) {
	t.Helper()
	dir := t.TempDir()
	path := dir + "/shared.pmaf"
	if err := diskio.WriteSource(path, m); err != nil {
		t.Fatal(err)
	}
	shared, err := diskio.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	locals := make([]*diskio.File, p)
	for r := 0; r < p; r++ {
		locals[r], err = diskio.Stage(shared, dir+"/local", r, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	return shared, locals
}

func asSources(files []*diskio.File) []dataset.Source {
	out := make([]dataset.Source, len(files))
	for i, f := range files {
		out[i] = f
	}
	return out
}

// TestEndToEndDiskFaultNamesRankAndChunk: a persistent read failure on
// one rank's local disk must surface from RunParallel as a RankError
// naming that rank, unwrapping to the ChunkError naming the chunk —
// the full failure-attribution chain from disk sector to machine.
func TestEndToEndDiskFaultNamesRankAndChunk(t *testing.T) {
	m, _ := genData(t, 4, 1200, 83, box(10, 25, 0, 2))
	shared, locals := stageShards(t, m, 3)
	plan := faults.New(0, faults.Fault{Kind: faults.ReadError, Index: 1, Times: 100})
	locals[1].SetFaults(plan)
	locals[1].SetRetryPolicy(2, 100*time.Microsecond)
	_, err := runParallelWithDeadline(t, asSources(locals), shared.Domains(),
		Config{ChunkRecords: 64}, sp2.Config{Procs: 3})
	if err == nil {
		t.Fatal("persistent disk fault surfaced no error")
	}
	var re *sp2.RankError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *sp2.RankError", err, err)
	}
	if re.Rank != 1 {
		t.Errorf("failure attributed to rank %d, want 1", re.Rank)
	}
	var ce *diskio.ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("err %v does not unwrap to a *diskio.ChunkError", err)
	}
	if ce.Chunk != 1 {
		t.Errorf("failure attributed to chunk %d, want 1", ce.Chunk)
	}
	if !errors.Is(err, faults.ErrRead) {
		t.Errorf("err %v lost the root cause", err)
	}
}

// TestEndToEndTransientDiskFaultRecovers: the same fault firing only
// once is absorbed by the retry layer and the run completes.
func TestEndToEndTransientDiskFaultRecovers(t *testing.T) {
	m, _ := genData(t, 4, 1200, 84, box(10, 25, 0, 2))
	shared, locals := stageShards(t, m, 3)
	locals[1].SetFaults(faults.New(0, faults.Fault{Kind: faults.ReadError, Index: 1}))
	locals[1].SetRetryPolicy(3, 100*time.Microsecond)
	res, err := runParallelWithDeadline(t, asSources(locals), shared.Domains(),
		Config{ChunkRecords: 64}, sp2.Config{Procs: 3})
	if err != nil {
		t.Fatalf("transient fault killed the run: %v", err)
	}
	if res == nil || res.N != shared.NumRecords() {
		t.Fatalf("result N = %d, want %d", res.N, shared.NumRecords())
	}
	if st := locals[1].StatsSnapshot(); st.Retries == 0 {
		t.Error("retry layer never engaged")
	}
}

// TestEndToEndRankCrash: a rank crashing mid-algorithm (injected via
// the machine config, as cmd/pmafia -faults does) terminates the whole
// run with a RankError naming the rank.
func TestEndToEndRankCrash(t *testing.T) {
	m, _ := genData(t, 4, 1200, 85, box(10, 25, 0, 2))
	shards := []dataset.Source{m.Slice(0, 400), m.Slice(400, 800), m.Slice(800, 1200)}
	plan := faults.New(0, faults.Fault{Kind: faults.RankCrash, Rank: 2, Index: 1})
	_, err := runParallelWithDeadline(t, shards, nil,
		Config{ChunkRecords: 64}, sp2.Config{Procs: 3, Faults: plan})
	var re *sp2.RankError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *sp2.RankError", err, err)
	}
	if re.Rank != 2 || !errors.Is(err, faults.ErrCrash) {
		t.Errorf("RankError = %+v", re)
	}
}

// TestEndToEndRankStallDetected: a stalled rank is detected by the
// collective watchdog and the run terminates inside the deadline
// instead of deadlocking in the next reduction.
func TestEndToEndRankStallDetected(t *testing.T) {
	m, _ := genData(t, 4, 1200, 86, box(10, 25, 0, 2))
	shards := []dataset.Source{m.Slice(0, 400), m.Slice(400, 800), m.Slice(800, 1200)}
	plan := faults.New(0, faults.Fault{Kind: faults.RankStall, Rank: 0, Index: 2})
	_, err := runParallelWithDeadline(t, shards, nil, Config{ChunkRecords: 64},
		sp2.Config{Procs: 3, Faults: plan, CollectiveTimeout: 300 * time.Millisecond})
	if !errors.Is(err, sp2.ErrStalled) {
		t.Fatalf("err = %v, want stall detection", err)
	}
	var re *sp2.RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("stall not attributed to rank 0: %v", err)
	}
}
