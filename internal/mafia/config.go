// Package mafia implements the pMAFIA subspace clustering engine
// (Algorithm 2 of the paper): a single pass builds per-dimension
// histograms, the adaptive grid fixes variable-sized bins and
// thresholds, and a bottom-up level loop alternates candidate-dense-
// unit generation (task parallel), population counting over the data
// (data parallel, out of core), and dense-unit identification until no
// dense units remain; finally the registered dense units are assembled
// into clusters.
//
// The same engine also runs the CLIQUE baseline: a uniform grid, the
// prefix join, and a global density threshold are injected through the
// Config (see internal/clique).
package mafia

import (
	"fmt"

	"pmafia/internal/gen"
	"pmafia/internal/grid"
	"pmafia/internal/histogram"
	"pmafia/internal/obs"
	"pmafia/internal/unit"
)

// GridKind selects how bins and thresholds are computed.
type GridKind int

const (
	// AdaptiveGrid is pMAFIA's Algorithm 1 (default).
	AdaptiveGrid GridKind = iota
	// UniformGrid is CLIQUE's fixed equal-width binning with a global
	// density threshold.
	UniformGrid
	// UniformVariableGrid is the Table 3 variant: a per-dimension bin
	// count with a global density threshold.
	UniformVariableGrid
)

// CountStrategy selects the population-pass implementation.
type CountStrategy int

const (
	// CountAuto picks per level: the direct scan for small candidate
	// sets, the grouped hash beyond autoCountThreshold CDUs (default).
	CountAuto CountStrategy = iota
	// CountGrouped folds each record's bin tuple into a linear cell
	// index per distinct subspace and answers membership with a bitset
	// plus popcount rank — O(d + Σ|subspace|) per record with no
	// hashing or allocation. Subspaces whose cell space is too large
	// for the bitset fall back to the hash map per subspace.
	CountGrouped
	// CountGroupedMap is CountGrouped with the bitset disabled: every
	// subspace uses the hash-map lookup. This is the pre-pipelining
	// implementation, kept as the reference oracle for the kernel
	// property tests and as an always-available fallback.
	CountGroupedMap
	// CountDirect compares every record against every CDU —
	// O(Ncdu·k) per record.
	CountDirect
)

// autoCountThreshold is the CDU count above which CountAuto switches
// from the direct scan to the grouped hash (measured crossover; see
// the ablation-count benchmark).
const autoCountThreshold = 512

// Config parameterizes a clustering run.
type Config struct {
	// Grid selects adaptive (pMAFIA) or uniform (CLIQUE) binning.
	Grid GridKind
	// Adaptive holds Algorithm 1 parameters (AdaptiveGrid only).
	Adaptive grid.AdaptiveParams
	// UniformBins is ξ, the bins per dimension (UniformGrid only).
	UniformBins int
	// UniformBinsPerDim overrides UniformBins per dimension
	// (UniformVariableGrid only).
	UniformBinsPerDim []int
	// UniformTau is CLIQUE's global density threshold as a fraction of
	// N (uniform grids only).
	UniformTau float64

	// FineUnits is the number of fine histogram units per dimension.
	FineUnits int
	// Hist, when non-nil, is a precomputed global fine histogram: the
	// engine skips the domains and histogram passes entirely and builds
	// the grid straight from it (its Domains become the run's domains).
	// The streaming ingester uses this to refit from incrementally
	// maintained counts without re-scanning the accumulated data twice.
	// Every rank must be handed the identical histogram — all ranks
	// skip the same collectives, so the SPMD invariant holds. The
	// caller keeps ownership; the engine only reads it.
	Hist *histogram.Hist
	// ChunkRecords is B, the number of records read per I/O chunk.
	ChunkRecords int
	// Tau is τ: a task-parallel step is divided among ranks only when
	// it has more than Tau items, otherwise every rank does all of it
	// (the paper's minimal-work guarantee).
	Tau int
	// Join is the candidate generation rule; nil means the MAFIA join.
	Join gen.Join
	// Count selects the population-pass strategy.
	Count CountStrategy
	// Workers is the intra-rank worker-pool size for the histogram and
	// population passes: each chunk's records are sharded across this
	// many goroutines with worker-private tallies merged at scan end.
	// 0 or 1 runs the passes inline.
	Workers int
	// MaxLevels caps the level loop (0 = up to the data dimensionality).
	MaxLevels int
	// Prune, when non-nil, is called after dense-unit identification at
	// each level with the dense units and their global populations; it
	// returns the units allowed to seed the next level (CLIQUE's MDL
	// subspace pruning plugs in here). It must be deterministic — every
	// rank calls it on identical inputs.
	Prune func(du *unit.Array, counts []int64) *unit.Array
	// Recorder, when non-nil, receives per-rank phase spans and engine
	// counters; it is also handed to the sp2 machine so collectives
	// charge their cost into the enclosing span. nil costs nothing.
	Recorder *obs.Recorder
	// OnCheckpoint, when non-nil, is called on rank 0 after each level
	// of the bottom-up loop completes (post-prune) with a read-only
	// snapshot of the replicated engine state. The call is synchronous;
	// an error aborts the fit. It must be deterministic in its effect
	// on the run (it can only abort, not alter state).
	OnCheckpoint func(*Snapshot) error
	// Resume, when non-nil, skips the histogram and grid phases and
	// re-enters the level loop at Resume.Level+1. The snapshot must
	// come from a run over the same data with the same configuration —
	// internal/ckpt's config fingerprint enforces this for checkpoints
	// loaded from disk.
	Resume *Snapshot
}

// Validate fills defaults and rejects inconsistent settings.
func (c *Config) Validate(dims int) error {
	if dims <= 0 || dims > 255 {
		return fmt.Errorf("mafia: dimensionality %d out of [1,255] (unit encoding is one byte per dim)", dims)
	}
	if c.FineUnits < 0 {
		return fmt.Errorf("mafia: FineUnits %d < 0", c.FineUnits)
	}
	// FineUnits == 0 means auto: the engine picks from the data size
	// (min(1000, max(50, N/10))) once the record count is known.
	if c.Hist != nil {
		if len(c.Hist.Domains) != dims {
			return fmt.Errorf("mafia: precomputed histogram spans %d dims, data has %d", len(c.Hist.Domains), dims)
		}
		if c.Hist.N <= 0 {
			return fmt.Errorf("mafia: precomputed histogram holds %d records", c.Hist.N)
		}
	}
	if c.ChunkRecords == 0 {
		c.ChunkRecords = 8192
	}
	if c.ChunkRecords < 1 {
		return fmt.Errorf("mafia: ChunkRecords %d < 1", c.ChunkRecords)
	}
	if c.Tau == 0 {
		c.Tau = 64
	}
	if c.Workers < 0 {
		return fmt.Errorf("mafia: Workers %d < 0", c.Workers)
	}
	if c.Tau < 1 {
		return fmt.Errorf("mafia: Tau %d < 1", c.Tau)
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = dims
	}
	if c.MaxLevels < 1 {
		return fmt.Errorf("mafia: MaxLevels %d < 1", c.MaxLevels)
	}
	if c.MaxLevels > dims {
		c.MaxLevels = dims
	}
	if c.Join == nil {
		c.Join = gen.MergeMAFIA
	}
	switch c.Grid {
	case AdaptiveGrid:
		if err := c.Adaptive.Validate(); err != nil {
			return err
		}
	case UniformGrid:
		if c.UniformBins == 0 {
			c.UniformBins = 10
		}
		if c.UniformTau == 0 {
			c.UniformTau = 0.01
		}
		if c.UniformBins < 1 || c.UniformBins > grid.MaxBins {
			return &grid.BinCountError{Dim: -1, Bins: c.UniformBins}
		}
		if c.UniformTau <= 0 || c.UniformTau >= 1 {
			return fmt.Errorf("mafia: UniformTau %v out of (0,1)", c.UniformTau)
		}
	case UniformVariableGrid:
		if len(c.UniformBinsPerDim) != dims {
			return fmt.Errorf("mafia: UniformBinsPerDim has %d entries for %d dims", len(c.UniformBinsPerDim), dims)
		}
		// Bin indices are one byte; a per-dimension count past
		// grid.MaxBins would truncate unit keys, so reject it here
		// rather than mid-run in the grid build.
		for dim, xi := range c.UniformBinsPerDim {
			if xi < 1 || xi > grid.MaxBins {
				return &grid.BinCountError{Dim: dim, Bins: xi}
			}
		}
		if c.UniformTau == 0 {
			c.UniformTau = 0.01
		}
	default:
		return fmt.Errorf("mafia: unknown grid kind %d", c.Grid)
	}
	return nil
}
