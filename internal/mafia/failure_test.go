package mafia

import (
	"errors"
	"os"
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/sp2"
)

// errSource fails after yielding a few chunks, simulating a disk error
// mid-pass.
type errSource struct {
	d, n      int
	failAfter int
}

func (s *errSource) Dims() int       { return s.d }
func (s *errSource) NumRecords() int { return s.n }
func (s *errSource) Scan(chunk int) dataset.Scanner {
	return &errScanner{src: s, chunk: chunk}
}

type errScanner struct {
	src    *errSource
	chunk  int
	served int
	err    error
}

func (s *errScanner) Next() ([]float64, int) {
	if s.served >= s.src.failAfter {
		s.err = errors.New("injected I/O failure")
		return nil, 0
	}
	n := s.chunk
	if n > s.src.n-s.served {
		n = s.src.n - s.served
	}
	if n <= 0 {
		return nil, 0
	}
	s.served += n
	return make([]float64, n*s.src.d), n
}

func (s *errScanner) Err() error   { return s.err }
func (s *errScanner) Close() error { return nil }

func TestScanErrorPropagatesSerial(t *testing.T) {
	src := &errSource{d: 4, n: 1000, failAfter: 128}
	_, err := Run(src, Config{ChunkRecords: 64})
	if err == nil {
		t.Fatal("injected scan failure did not surface")
	}
}

func TestScanErrorDoesNotHangParallel(t *testing.T) {
	// One failing rank must release the others (the sp2 machine is
	// poisoned) and the error must come back — not a deadlock.
	good, _ := genData(t, 4, 2000, 81, box(10, 25, 0, 2))
	shards := []dataset.Source{
		good.Slice(0, 1000),
		&errSource{d: 4, n: 1000, failAfter: 100},
		good.Slice(1000, 2000),
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunParallel(shards, nil, Config{ChunkRecords: 64}, sp2.Config{Procs: 3})
		done <- err
	}()
	err := <-done
	if err == nil {
		t.Fatal("parallel run with a failing shard returned no error")
	}
}

func TestCorruptDiskFileSurfaces(t *testing.T) {
	m, _ := genData(t, 4, 2000, 82, box(10, 25, 0, 2))
	dir := t.TempDir()
	path := dir + "/d.pmaf"
	if err := diskio.WriteSource(path, m); err != nil {
		t.Fatal(err)
	}
	f, err := diskio.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the data section after opening: scans must now fail and
	// the engine must report, not panic.
	if err := os.Truncate(path, 256); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(f, Config{ChunkRecords: 64}); err == nil {
		t.Fatal("truncated data file did not produce an error")
	}
}

func TestEngineInvariantsOnRandomData(t *testing.T) {
	// Randomized mini data sets: the engine must terminate, keep level
	// statistics consistent (Ndu <= Ncdu <= NcduRaw after dedup,
	// ascending K), and report clusters with sorted unique dims.
	for seed := uint64(0); seed < 12; seed++ {
		spec := []struct{ d, n int }{
			{2, 300}, {3, 500}, {5, 800}, {9, 1200},
		}[seed%4]
		var m *dataset.Matrix
		if seed%3 == 0 {
			m, _ = genData(t, spec.d, spec.n, 900+seed) // uniform
		} else {
			dims := []int{0, spec.d - 1}
			m, _ = genData(t, spec.d, spec.n, 900+seed, box(20, 45, dims...))
		}
		res, err := Run(m, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prevK := 0
		for _, l := range res.Levels {
			if l.K != prevK+1 {
				t.Errorf("seed %d: level K %d after %d", seed, l.K, prevK)
			}
			prevK = l.K
			if l.Ndu > l.Ncdu {
				t.Errorf("seed %d level %d: Ndu %d > Ncdu %d", seed, l.K, l.Ndu, l.Ncdu)
			}
			if l.Ncdu > l.NcduRaw && l.K > 1 {
				t.Errorf("seed %d level %d: Ncdu %d > raw %d", seed, l.K, l.Ncdu, l.NcduRaw)
			}
		}
		for ci, c := range res.Clusters {
			for x := 1; x < len(c.Dims); x++ {
				if c.Dims[x] <= c.Dims[x-1] {
					t.Errorf("seed %d cluster %d: dims not ascending: %v", seed, ci, c.Dims)
				}
			}
			if c.Units.Len() == 0 || len(c.Boxes) == 0 {
				t.Errorf("seed %d cluster %d: empty cluster reported", seed, ci)
			}
		}
	}
}
