package mafia

import (
	"sync"
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/sp2"
	"pmafia/internal/unit"
)

// TestDenseCountsAlignedParallel forces the task-parallel identify path
// (p=2, Tau=1 so every level has more CDUs than Tau) and checks that
// the counts handed to Prune line up entry for entry with the dense
// units: recounting each pruned unit's population over the whole data
// set must reproduce exactly the count identifyDense gathered.
func TestDenseCountsAlignedParallel(t *testing.T) {
	m, _ := genData(t, 8, 6000, 11, box(40, 52, 0, 2, 5))

	type capture struct {
		du     *unit.Array
		counts []int64
	}
	var mu sync.Mutex
	var captured []capture
	prune := func(du *unit.Array, counts []int64) *unit.Array {
		mu.Lock()
		captured = append(captured, capture{du: du, counts: append([]int64(nil), counts...)})
		mu.Unlock()
		return du
	}

	shards := []dataset.Source{m.Slice(0, m.NumRecords()/2), m.Slice(m.NumRecords()/2, m.NumRecords())}
	res, err := RunParallel(shards, nil, Config{Tau: 1, Prune: prune}, sp2.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(captured) == 0 {
		t.Fatal("Prune was never called; the run found no dense units past level 1")
	}

	for _, c := range captured {
		if c.du.Len() != len(c.counts) {
			t.Fatalf("level %d: %d dense units but %d counts", c.du.K, c.du.Len(), len(c.counts))
		}
		want, err := PopulateCounts(res.Grid, c.du, m, 0, 0, CountAuto)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if c.counts[i] != want[i] {
				d, b := c.du.Unit(i)
				t.Errorf("level %d unit %d (dims %v bins %v): gathered count %d, recount %d",
					c.du.K, i, d, b, c.counts[i], want[i])
			}
		}
	}
}
