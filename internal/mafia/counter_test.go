package mafia

import (
	"sort"
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/gen"
	"pmafia/internal/grid"
	"pmafia/internal/histogram"
	"pmafia/internal/rng"
	"pmafia/internal/unit"
)

// testGrid builds a uniform grid with xi bins over d dimensions plus a
// matrix of n random records in [0, 1) per dimension.
func testGrid(t *testing.T, r *rng.Source, n, d, xi int) (*grid.Grid, *dataset.Matrix) {
	t.Helper()
	domains := make([]dataset.Range, d)
	for i := range domains {
		domains[i] = dataset.Range{Lo: 0, Hi: 1}
	}
	m := dataset.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = r.Float64()
		}
	}
	h := histogram.New(domains, 10*xi)
	if err := h.AddSource(m, 128); err != nil {
		t.Fatal(err)
	}
	g, err := grid.BuildUniform(h, xi, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

// randCDUs builds count random k-dimensional CDUs over the grid:
// sorted random dimension sets with random in-range bins. The result is
// repeat-free, matching the engine's invariant (dedup runs before every
// population pass) — with duplicates present the kernels legitimately
// differ on which copy the population is attributed to.
func randCDUs(r *rng.Source, g *grid.Grid, k, count int) *unit.Array {
	d := len(g.Dims)
	cdus := unit.New(k, count)
	dims := make([]uint8, k)
	bins := make([]uint8, k)
	for i := 0; i < count; i++ {
		perm := r.Perm(d)[:k]
		sort.Ints(perm)
		for x := 0; x < k; x++ {
			dims[x] = uint8(perm[x])
			bins[x] = uint8(r.Intn(g.Dims[perm[x]].NumBins()))
		}
		cdus.AppendRaw(dims, bins)
	}
	return gen.CompactUnique(cdus, gen.MarkRepeats(cdus, 0, cdus.Len()))
}

// TestCountKernelsAgree is the population-kernel property test: for
// random grids, CDU sets, worker counts, and chunk sizes, the
// flat/bitset grouped kernel, the hash-map grouped kernel (the
// pre-pipelining reference), and the direct scan must produce identical
// counts.
func TestCountKernelsAgree(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		n := 100 + r.Intn(900)
		d := 3 + r.Intn(5)
		k := 2 + r.Intn(d-1)
		if k > 4 {
			k = 4
		}
		g, m := testGrid(t, r.Split(), n, d, 4+r.Intn(12))
		cdus := randCDUs(r.Split(), g, k, 1+r.Intn(120))
		chunk := 1 + r.Intn(300)

		want, err := PopulateCounts(g, cdus, m, chunk, 1, CountGroupedMap)
		if err != nil {
			t.Fatal(err)
		}
		for _, strategy := range []CountStrategy{CountGrouped, CountDirect} {
			for _, workers := range []int{1, 3} {
				got, err := PopulateCounts(g, cdus, m, chunk, workers, strategy)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d strategy=%v workers=%d: counts[%d] = %d, oracle %d",
							trial, strategy, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestCountGroupedUsesBitset checks the flat path actually engages for
// small cell spaces (otherwise the property test would be comparing the
// map path with itself).
func TestCountGroupedUsesBitset(t *testing.T) {
	r := rng.New(5)
	g, _ := testGrid(t, r, 200, 5, 8)
	cdus := randCDUs(r, g, 3, 40)
	c := newCounter(g, cdus, CountGrouped)
	flat := 0
	for si := range c.subs {
		if c.subs[si].member != nil {
			flat++
		}
	}
	if flat == 0 {
		t.Fatal("no subspace took the flat/bitset path")
	}
	cm := newCounter(g, cdus, CountGroupedMap)
	for si := range cm.subs {
		if cm.subs[si].member != nil {
			t.Fatal("CountGroupedMap built a bitset subspace")
		}
	}
}

// TestCountGroupedCellCapFallback gives CountGrouped a subspace whose
// cell space exceeds maxFlatCells (20^7 ≈ 1.3e9 cells): it must fall
// back to the map lookup per subspace and still match the oracle.
func TestCountGroupedCellCapFallback(t *testing.T) {
	r := rng.New(13)
	const d, k, xi = 8, 7, 20
	g, m := testGrid(t, r, 400, d, xi)
	cdus := randCDUs(r, g, k, 30)

	c := newCounter(g, cdus, CountGrouped)
	for si := range c.subs {
		if c.subs[si].member != nil {
			t.Fatalf("subspace %d took the flat path over %d^%d cells", si, xi, k)
		}
	}

	want, err := PopulateCounts(g, cdus, m, 64, 1, CountGroupedMap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PopulateCounts(g, cdus, m, 64, 2, CountGrouped)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts[%d] = %d, oracle %d", i, got[i], want[i])
		}
	}
}

// TestCountGroupedDuplicateAttribution pins the duplicate-CDU contract
// of the two grouped kernels: the engine dedups before populating, but
// if duplicates do reach a grouped kernel, the whole population is
// attributed to the last copy (the map path's insertion-order
// overwrite) — and the flat path must mirror that exactly.
func TestCountGroupedDuplicateAttribution(t *testing.T) {
	r := rng.New(17)
	g, m := testGrid(t, r, 300, 4, 6)
	cdus := unit.New(2, 3)
	cdus.AppendRaw([]uint8{0, 2}, []uint8{1, 3})
	cdus.AppendRaw([]uint8{1, 3}, []uint8{0, 5})
	cdus.AppendRaw([]uint8{0, 2}, []uint8{1, 3}) // duplicate of CDU 0
	want, err := PopulateCounts(g, cdus, m, 50, 1, CountGroupedMap)
	if err != nil {
		t.Fatal(err)
	}
	if want[0] != 0 {
		t.Fatalf("map path attributed %d records to the first duplicate", want[0])
	}
	got, err := PopulateCounts(g, cdus, m, 50, 1, CountGrouped)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts[%d]: flat=%d oracle=%d", i, got[i], want[i])
		}
	}
}
