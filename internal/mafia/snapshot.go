package mafia

import (
	"fmt"

	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/unit"
)

// Snapshot is the replicated engine state at a level barrier of the
// bottom-up loop: everything a fresh machine needs to re-enter the loop
// at Level+1 and produce a Result bit-identical to an uninterrupted
// run. Because the engine is SPMD with fully replicated lattice state,
// one snapshot (taken on rank 0) restores every rank.
//
// A Snapshot handed to Config.OnCheckpoint, or installed via
// Config.Resume, must be treated as read-only: the engine and the
// checkpoint encoder share its backing arrays.
type Snapshot struct {
	// N is the total number of records clustered.
	N int
	// Level is the last completed level; resume re-enters at Level+1.
	Level int
	// Grid holds the bins and thresholds the run fixed after phase 0.
	Grid *grid.Grid
	// HistDomains, HistUnits and HistFlat preserve the global fine
	// histogram (domains, per-dimension resolution, flattened counts)
	// so later checkpoints of a resumed run remain self-describing.
	HistDomains []dataset.Range
	HistUnits   int
	HistFlat    []int64
	// Levels are the per-level tallies accumulated so far (one entry
	// per completed level, Levels[i].K == i+1).
	Levels []LevelStats
	// DU holds the dense units seeding level Level+1, post-prune.
	DU *unit.Array
	// Registered are the maximal dense-unit sets registered so far:
	// Level-1 entries, Registered[i].K == i+1.
	Registered []*unit.Array
}

// Validate checks the snapshot's internal consistency against the data
// dimensionality it will be resumed on.
func (s *Snapshot) Validate(dims int) error {
	if s == nil {
		return fmt.Errorf("mafia: nil snapshot")
	}
	if s.Level < 1 {
		return fmt.Errorf("mafia: snapshot level %d < 1", s.Level)
	}
	if s.N < 1 {
		return fmt.Errorf("mafia: snapshot has %d records", s.N)
	}
	if s.Grid == nil || len(s.Grid.Dims) != dims {
		return fmt.Errorf("mafia: snapshot grid has %d dims, want %d", s.gridDims(), dims)
	}
	if s.DU == nil || s.DU.K != s.Level {
		return fmt.Errorf("mafia: snapshot dense units are %d-dimensional at level %d", s.duK(), s.Level)
	}
	if len(s.Levels) != s.Level {
		return fmt.Errorf("mafia: snapshot has %d level tallies at level %d", len(s.Levels), s.Level)
	}
	for i, ls := range s.Levels {
		if ls.K != i+1 {
			return fmt.Errorf("mafia: snapshot level tally %d has K=%d", i, ls.K)
		}
	}
	if len(s.Registered) != s.Level-1 {
		return fmt.Errorf("mafia: snapshot has %d registered sets at level %d", len(s.Registered), s.Level)
	}
	for i, r := range s.Registered {
		if r == nil || r.K != i+1 {
			return fmt.Errorf("mafia: snapshot registered set %d is not %d-dimensional", i, i+1)
		}
	}
	if s.HistUnits < 1 {
		return fmt.Errorf("mafia: snapshot histogram has %d units per dim", s.HistUnits)
	}
	if len(s.HistDomains) != dims {
		return fmt.Errorf("mafia: snapshot histogram has %d domains, want %d", len(s.HistDomains), dims)
	}
	if want := dims*s.HistUnits + 1; len(s.HistFlat) != want {
		return fmt.Errorf("mafia: snapshot histogram has %d flattened counts, want %d", len(s.HistFlat), want)
	}
	return nil
}

func (s *Snapshot) gridDims() int {
	if s.Grid == nil {
		return 0
	}
	return len(s.Grid.Dims)
}

func (s *Snapshot) duK() int {
	if s.DU == nil {
		return 0
	}
	return s.DU.K
}
