package mafia

import (
	"fmt"

	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/obs"
	"pmafia/internal/unit"
)

// counter populates candidate dense units from a stream of records.
// The grouped strategy organizes CDUs by their subspace: one bin-tuple
// hash lookup per (record, subspace) replaces one comparison per
// (record, CDU), which is the difference between O(d + Σ_s k_s) and
// O(Ncdu·k) per record.
type counter struct {
	g        *grid.Grid
	cdus     *unit.Array
	counts   []int64
	records  int64 // records scanned by this counter
	strategy CountStrategy

	// grouped strategy state
	subDims [][]uint8        // distinct subspaces
	subIdx  []map[string]int // bins-key -> CDU index, per subspace
	binRow  []uint8          // scratch: bin index per data dimension
	keyBuf  []uint8          // scratch: bins of one subspace
}

func newCounter(g *grid.Grid, cdus *unit.Array, strategy CountStrategy) *counter {
	if strategy == CountAuto {
		if cdus.Len() > autoCountThreshold {
			strategy = CountGrouped
		} else {
			strategy = CountDirect
		}
	}
	c := &counter{
		g:        g,
		cdus:     cdus,
		counts:   make([]int64, cdus.Len()),
		strategy: strategy,
		binRow:   make([]uint8, len(g.Dims)),
		keyBuf:   make([]uint8, cdus.K),
	}
	if strategy == CountGrouped {
		bySub := map[string]int{} // subspace key -> index in subDims
		for i := 0; i < cdus.Len(); i++ {
			d, b := cdus.Unit(i)
			sk := string(d)
			si, ok := bySub[sk]
			if !ok {
				si = len(c.subDims)
				bySub[sk] = si
				c.subDims = append(c.subDims, append([]uint8(nil), d...))
				c.subIdx = append(c.subIdx, map[string]int{})
			}
			c.subIdx[si][string(b)] = i
		}
	}
	return c
}

// addChunk counts n row-major records.
func (c *counter) addChunk(chunk []float64, n int) {
	c.records += int64(n)
	d := len(c.g.Dims)
	switch c.strategy {
	case CountGrouped:
		for r := 0; r < n; r++ {
			c.g.BinRow(chunk[r*d:(r+1)*d], c.binRow)
			for si, dims := range c.subDims {
				key := c.keyBuf[:len(dims)]
				for x, dim := range dims {
					key[x] = c.binRow[dim]
				}
				if idx, ok := c.subIdx[si][string(key)]; ok {
					c.counts[idx]++
				}
			}
		}
	default: // CountDirect
		k := c.cdus.K
		for r := 0; r < n; r++ {
			c.g.BinRow(chunk[r*d:(r+1)*d], c.binRow)
			for i := 0; i < c.cdus.Len(); i++ {
				ud, ub := c.cdus.Unit(i)
				hit := true
				for x := 0; x < k; x++ {
					if c.binRow[ud[x]] != ub[x] {
						hit = false
						break
					}
				}
				if hit {
					c.counts[i]++
				}
			}
		}
	}
}

// addSource counts every record of src in chunks of chunkRecords.
func (c *counter) addSource(src dataset.Source, chunkRecords int) error {
	sc := src.Scan(chunkRecords)
	defer sc.Close()
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		c.addChunk(chunk, n)
	}
	return sc.Err()
}

// levelTally is the single per-level bookkeeping record of the engine:
// the phase code fills it in as the level runs, and both the reported
// LevelStats and the recorder's counters are derived from it — one
// source of truth, no double bookkeeping.
type levelTally struct {
	k          int     // level dimensionality
	raw        int     // CDUs generated before repeat elimination
	unique     int     // CDUs whose population was counted
	dense      int     // dense units identified
	records    int64   // records scanned by the population pass
	seconds    float64 // wall-clock time of the whole level
	popSeconds float64 // wall-clock time of the population pass
}

// stats converts the tally into the LevelStats row Result reports.
func (t *levelTally) stats() LevelStats {
	return LevelStats{
		K: t.k, NcduRaw: t.raw, Ncdu: t.unique, Ndu: t.dense,
		Seconds: t.seconds, PopulateSeconds: t.popSeconds,
	}
}

// emit mirrors the tally into the recorder's counter space: run-wide
// totals plus a per-level dense-unit count. A nil recorder is free.
func (t *levelTally) emit(rec *obs.Recorder, rank int) {
	if rec == nil {
		return
	}
	rec.Add(rank, "cdus.generated", int64(t.raw))
	rec.Add(rank, "cdus.deduped", int64(t.raw-t.unique))
	rec.Add(rank, "cdus.populated", int64(t.unique))
	rec.Add(rank, "dense.units", int64(t.dense))
	rec.Add(rank, "populate.records", t.records)
	rec.Add(rank, fmt.Sprintf("level.%02d.dense", t.k), int64(t.dense))
}

// maxThreshold returns the density threshold of CDU i: its population
// must exceed the threshold of every bin that forms it, so the
// effective bar is the maximum (paper §4.4).
func maxThreshold(g *grid.Grid, cdus *unit.Array, i int) float64 {
	d, b := cdus.Unit(i)
	t := 0.0
	for x := range d {
		bt := g.Dims[d[x]].Bins[b[x]].Threshold
		if bt > t {
			t = bt
		}
	}
	return t
}
