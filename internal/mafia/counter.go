package mafia

import (
	"sort"
	"time"

	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/obs"
	"pmafia/internal/pool"
	"pmafia/internal/unit"
)

// maxFlatCells caps the cell count of a subspace handled by the
// flat/bitset kernel: membership costs 1 bit per cell plus a 4-byte
// rank entry per 64 cells, so the cap bounds the tables at ~9 MB per
// subspace. Sparser-than-that subspaces (high k over many bins) fall
// back to the hash-map kernel.
const maxFlatCells = 1 << 26

// subspace is the per-subspace lookup structure of the grouped
// population kernel. In flat mode a record's bin tuple is folded into a
// linear cell index via precomputed strides; a bitset answers "is this
// cell a CDU" and a popcount rank maps hits to CDU indices — no hashing
// and no allocation anywhere on the per-record path. In map mode (the
// pre-pipelining implementation, kept as the fallback and as the
// reference oracle for the property tests) the bin tuple is hashed.
type subspace struct {
	dims   []uint8
	stride []int64 // per dim position: Π bins of later positions

	// flat/bitset mode (member != nil):
	member  *unit.Bitset // dense-cell membership over the cell space
	rankPfx []int32      // popcount prefix per member word
	remap   []int32      // membership rank -> index into counts

	// map mode:
	byKey map[string]int
}

// counter populates candidate dense units from a stream of records.
// The grouped strategies organize CDUs by their subspace: one cell (or
// hash) lookup per (record, subspace) replaces one comparison per
// (record, CDU), which is the difference between O(d + Σ_s k_s) and
// O(Ncdu·k) per record.
type counter struct {
	g        *grid.Grid
	cdus     *unit.Array
	counts   []int64
	records  int64 // records scanned by this counter
	strategy CountStrategy
	subs     []subspace

	// serial-path scratch
	scratch countScratch
}

// countScratch is the per-worker mutable state of the population
// kernel; every pool worker owns one so chunks can be sharded across
// cores with no sharing.
type countScratch struct {
	counts []int64
	binRow []uint8 // bin index per data dimension
	keyBuf []uint8 // bins of one subspace (map mode)
}

func newCounter(g *grid.Grid, cdus *unit.Array, strategy CountStrategy) *counter {
	if strategy == CountAuto {
		if cdus.Len() > autoCountThreshold {
			strategy = CountGrouped
		} else {
			strategy = CountDirect
		}
	}
	c := &counter{
		g:        g,
		cdus:     cdus,
		counts:   make([]int64, cdus.Len()),
		strategy: strategy,
	}
	c.scratch = countScratch{
		counts: c.counts,
		binRow: make([]uint8, len(g.Dims)),
		keyBuf: make([]uint8, cdus.K),
	}
	if strategy == CountGrouped || strategy == CountGroupedMap {
		c.buildSubspaces(strategy == CountGroupedMap)
	}
	return c
}

// buildSubspaces groups the CDUs by subspace and constructs each
// subspace's lookup structure: flat/bitset when the cell space is small
// enough (and not forced to map mode), the hash map otherwise.
func (c *counter) buildSubspaces(forceMap bool) {
	bySub := map[string]int{} // subspace key -> index in c.subs
	members := [][]int{}      // CDU indices per subspace
	for i := 0; i < c.cdus.Len(); i++ {
		d, _ := c.cdus.Unit(i)
		sk := string(d)
		si, ok := bySub[sk]
		if !ok {
			si = len(c.subs)
			bySub[sk] = si
			c.subs = append(c.subs, subspace{dims: append([]uint8(nil), d...)})
			members = append(members, nil)
		}
		members[si] = append(members[si], i)
	}
	for si := range c.subs {
		s := &c.subs[si]
		cells := int64(1)
		s.stride = make([]int64, len(s.dims))
		for x := len(s.dims) - 1; x >= 0; x-- {
			s.stride[x] = cells
			nb := int64(c.g.Dims[s.dims[x]].NumBins())
			if cells > maxFlatCells/nb+1 {
				cells = maxFlatCells + 1 // overflow guard: force map mode
				break
			}
			cells *= nb
		}
		if forceMap || cells > maxFlatCells {
			s.byKey = make(map[string]int, len(members[si]))
			for _, i := range members[si] {
				_, b := c.cdus.Unit(i)
				s.byKey[string(b)] = i
			}
			s.stride = nil
			continue
		}
		s.member = unit.NewBitset(int(cells))
		type cellIdx struct {
			cell int64
			idx  int
		}
		order := make([]cellIdx, 0, len(members[si]))
		for _, i := range members[si] {
			_, b := c.cdus.Unit(i)
			cell := int64(0)
			for x := range s.dims {
				cell += s.stride[x] * int64(b[x])
			}
			s.member.Set(int(cell))
			order = append(order, cellIdx{cell, i})
		}
		sort.Slice(order, func(a, b int) bool {
			if order[a].cell != order[b].cell {
				return order[a].cell < order[b].cell
			}
			return order[a].idx < order[b].idx
		})
		s.rankPfx = s.member.RankTable()
		// One remap entry per distinct cell (= per set bit). Duplicate
		// CDUs share a cell; keep the largest index, matching the map
		// path's insertion-order overwrite, so both grouped kernels
		// attribute identically. (The engine dedups before populating,
		// so duplicates only reach here through direct kernel use.)
		s.remap = make([]int32, 0, len(order))
		for x, ci := range order {
			if x+1 < len(order) && order[x+1].cell == ci.cell {
				continue
			}
			s.remap = append(s.remap, int32(ci.idx))
		}
	}
}

// addChunkInto counts n row-major records into the scratch's tallies.
// It is the per-record hot loop of the population phase and performs no
// allocation; workers call it concurrently with disjoint scratches.
func (c *counter) addChunkInto(sc *countScratch, chunk []float64, n int) {
	d := len(c.g.Dims)
	switch c.strategy {
	case CountGrouped, CountGroupedMap:
		for r := 0; r < n; r++ {
			c.g.BinRow(chunk[r*d:(r+1)*d], sc.binRow)
			for si := range c.subs {
				s := &c.subs[si]
				if s.member != nil {
					cell := int64(0)
					for x, dim := range s.dims {
						cell += s.stride[x] * int64(sc.binRow[dim])
					}
					if s.member.Get(int(cell)) {
						rk := s.member.Rank(s.rankPfx, int(cell))
						sc.counts[s.remap[rk]]++
					}
				} else {
					key := sc.keyBuf[:len(s.dims)]
					for x, dim := range s.dims {
						key[x] = sc.binRow[dim]
					}
					if idx, ok := s.byKey[string(key)]; ok {
						sc.counts[idx]++
					}
				}
			}
		}
	default: // CountDirect
		k := c.cdus.K
		for r := 0; r < n; r++ {
			c.g.BinRow(chunk[r*d:(r+1)*d], sc.binRow)
			for i := 0; i < c.cdus.Len(); i++ {
				ud, ub := c.cdus.Unit(i)
				hit := true
				for x := 0; x < k; x++ {
					if sc.binRow[ud[x]] != ub[x] {
						hit = false
						break
					}
				}
				if hit {
					sc.counts[i]++
				}
			}
		}
	}
}

// addChunk counts n row-major records on the serial path.
func (c *counter) addChunk(chunk []float64, n int) {
	c.records += int64(n)
	c.addChunkInto(&c.scratch, chunk, n)
}

// addSource counts every record of src in chunks of chunkRecords.
func (c *counter) addSource(src dataset.Source, chunkRecords int) error {
	sc := src.Scan(chunkRecords)
	defer sc.Close()
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		c.addChunk(chunk, n)
	}
	return sc.Err()
}

// addSourceParallel counts every record of src with an intra-rank
// worker pool: chunks are sharded across workers tallying into private
// count arrays, merged into c.counts once the scan ends. The merged
// tallies equal addSource's exactly (int64 sums commute). Returns the
// wall-clock time of the merge.
func (c *counter) addSourceParallel(src dataset.Source, chunkRecords, workers int) (mergeSeconds float64, err error) {
	if workers <= 1 {
		return 0, c.addSource(src, chunkRecords)
	}
	d := len(c.g.Dims)
	scratches := make([]countScratch, workers)
	for w := range scratches {
		scratches[w] = countScratch{
			counts: make([]int64, c.cdus.Len()),
			binRow: make([]uint8, d),
			keyBuf: make([]uint8, c.cdus.K),
		}
	}
	n, err := pool.Scan(src, chunkRecords, workers, func(w int, chunk []float64, lo, hi int) {
		c.addChunkInto(&scratches[w], chunk[lo*d:hi*d], hi-lo)
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for w := range scratches {
		for i, v := range scratches[w].counts {
			c.counts[i] += v
		}
	}
	c.records += n
	return time.Since(start).Seconds(), nil
}

// PopulateCounts counts each CDU's population over src — the
// population kernel with a chosen strategy and worker count, exposed
// for benchmarks and differential tests. It returns the per-CDU counts
// aligned with cdus.
func PopulateCounts(g *grid.Grid, cdus *unit.Array, src dataset.Source, chunkRecords, workers int, strategy CountStrategy) ([]int64, error) {
	cnt := newCounter(g, cdus, strategy)
	if _, err := cnt.addSourceParallel(src, chunkRecords, workers); err != nil {
		return nil, err
	}
	return cnt.counts, nil
}

// levelTally is the single per-level bookkeeping record of the engine:
// the phase code fills it in as the level runs, and both the reported
// LevelStats and the recorder's counters are derived from it — one
// source of truth, no double bookkeeping.
type levelTally struct {
	k          int     // level dimensionality
	raw        int     // CDUs generated before repeat elimination
	unique     int     // CDUs whose population was counted
	dense      int     // dense units identified
	records    int64   // records scanned by the population pass
	seconds    float64 // wall-clock time of the whole level
	popSeconds float64 // wall-clock time of the population pass
	mergeSec   float64 // wall-clock time of the pool's tally merge
}

// stats converts the tally into the LevelStats row Result reports.
func (t *levelTally) stats() LevelStats {
	return LevelStats{
		K: t.k, NcduRaw: t.raw, Ncdu: t.unique, Ndu: t.dense,
		Seconds: t.seconds, PopulateSeconds: t.popSeconds,
	}
}

// emit mirrors the tally into the recorder's counter space: run-wide
// totals plus a per-level dense-unit count. A nil recorder is free.
func (t *levelTally) emit(rec *obs.Recorder, rank int) {
	if rec == nil {
		return
	}
	rec.Add(rank, obs.CtrCDUsGenerated, int64(t.raw))
	rec.Add(rank, obs.CtrCDUsDeduped, int64(t.raw-t.unique))
	rec.Add(rank, obs.CtrCDUsPopulated, int64(t.unique))
	rec.Add(rank, obs.CtrDenseUnits, int64(t.dense))
	rec.Add(rank, obs.CtrPopulateRecords, t.records)
	rec.Add(rank, obs.CtrPoolMergeNS, int64(t.mergeSec*1e9))
	rec.Add(rank, obs.LevelDenseCounter(t.k), int64(t.dense))
}

// maxThreshold returns the density threshold of CDU i: its population
// must exceed the threshold of every bin that forms it, so the
// effective bar is the maximum (paper §4.4).
func maxThreshold(g *grid.Grid, cdus *unit.Array, i int) float64 {
	d, b := cdus.Unit(i)
	t := 0.0
	for x := range d {
		bt := g.Dims[d[x]].Bins[b[x]].Threshold
		if bt > t {
			t = bt
		}
	}
	return t
}
