package mafia

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/obs"
	"pmafia/internal/sp2"
)

var updateCritGolden = flag.Bool("update-golden", false, "rewrite the critical-path golden file")

// runDiskInstrumented executes a seeded p-rank Sim run out of core
// with prefetch and the worker pool on — the configuration that
// exercises every counter emitter in the stack.
func runDiskInstrumented(t *testing.T, p int) (*Result, *obs.Recorder) {
	t.Helper()
	m, _ := genData(t, 6, 4000, 77, box(20, 45, 1, 3), box(55, 80, 0, 2, 4))
	path := filepath.Join(t.TempDir(), "crit.pmaf")
	if err := diskio.WriteSource(path, m); err != nil {
		t.Fatal(err)
	}
	f, err := diskio.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	f.SetPrefetch(true)
	f.SetRecorder(rec)
	shards := make([]dataset.Source, p)
	for r := 0; r < p; r++ {
		lo, hi := diskio.ShareBounds(f.NumRecords(), r, p)
		shards[r] = &rangeShard{f: f, lo: lo, hi: hi}
	}
	res, err := RunParallel(shards, nil, Config{
		ChunkRecords: 256, Workers: 2, Recorder: rec,
	}, sp2.Config{Procs: p, Mode: sp2.Sim, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// TestAllEmittedCountersAreRegistered is the registry's closing seam:
// a full out-of-core run with prefetch and workers must emit no
// counter the obs registry does not know, so dashboards and the
// telemetry exposition never meet an unnamed metric.
func TestAllEmittedCountersAreRegistered(t *testing.T) {
	_, rec := runDiskInstrumented(t, 2)
	counters := rec.Metrics().Counters
	if len(counters) == 0 {
		t.Fatal("run emitted no counters")
	}
	for name := range counters {
		if !obs.IsRegistered(name) {
			t.Errorf("counter %q emitted but not registered in internal/obs/names.go", name)
		}
	}
	// The run's configuration must have reached every emitter family.
	for _, want := range []string{
		obs.CtrDiskChunks, obs.CtrPrefetchChunks, obs.CtrPoolMergeNS,
		obs.CtrHistogramRecords, obs.CtrDenseUnits,
		obs.CommCountCounter(obs.KindReduce),
	} {
		if _, ok := counters[want]; !ok {
			t.Errorf("expected counter %q was not emitted (have %d counters)", want, len(counters))
		}
	}
	// The same seam closes over histogram families: anything Observed
	// must belong to the histogram registry. (The engine run emits none
	// today — the serving daemon is the histogram emitter and closes
	// this seam over live traffic in internal/daemon's
	// TestAllEmittedMetricsAreRegistered — but a future engine histogram
	// lands here first.)
	for name := range rec.Histograms() {
		if !obs.IsRegisteredHistogram(name) {
			t.Errorf("histogram %q emitted but not registered in internal/obs/names.go", name)
		}
	}
}

// TestEngineCriticalPathEqualsMakespan: on the full engine the
// critical-path reconstruction must tile the Sim virtual makespan
// exactly — compute segments plus modeled comm equal the report.
func TestEngineCriticalPathEqualsMakespan(t *testing.T) {
	res, rec := runDiskInstrumented(t, 4)
	cp := rec.CriticalPath(res.Report.RankSeconds)
	if math.Abs(cp.Total-res.Report.ParallelSeconds) > 1e-9 {
		t.Errorf("critical-path total %v, Sim makespan %v", cp.Total, res.Report.ParallelSeconds)
	}
	if math.Abs(cp.CommSeconds-res.Report.CommSeconds) > 1e-9 {
		t.Errorf("critical-path comm %v, report comm %v", cp.CommSeconds, res.Report.CommSeconds)
	}
	if cp.Collectives != int(res.Report.Collectives) {
		t.Errorf("walked %d collectives, report has %d", cp.Collectives, res.Report.Collectives)
	}
	phases := map[string]bool{}
	for _, pc := range cp.Phases {
		phases[pc.Phase] = true
	}
	for _, want := range []string{"histogram", "populate"} {
		if !phases[want] {
			t.Errorf("critical path attributes no time to %q (have %v)", want, phases)
		}
	}
}

// TestCriticalPathTableGolden pins the structural columns of the
// "why not faster" table for a seeded p=4 Sim run: which
// (kind, phase, level) rows appear, with how many collectives and how
// many modeled bytes. Measured seconds and shares vary run to run and
// are masked; rows are sorted canonically because the rendered order
// (descending by measured seconds) is wall-clock-dependent. Refresh
// with: go test ./internal/mafia -run TestCriticalPathTableGolden -update-golden
func TestCriticalPathTableGolden(t *testing.T) {
	res, rec := runDiskInstrumented(t, 4)
	tbl := rec.CriticalPath(res.Report.RankSeconds).Table()

	rows := make([]string, 0, len(tbl.Rows))
	for _, r := range tbl.Rows {
		if r[1] == "(outside spans)" {
			continue // presence depends on sub-microsecond bookkeeping
		}
		rows = append(rows, strings.Join([]string{r[0], r[1], r[2], "<s>", "<%>", r[5], r[6]}, " | "))
	}
	sort.Strings(rows)
	got := strings.Join(rows, "\n") + "\n"

	golden := filepath.Join("testdata", "critical_path.golden.txt")
	if *updateCritGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("critical-path table structure differs from golden (rerun with -update-golden to accept):\ngot:\n%swant:\n%s", got, want)
	}
}
