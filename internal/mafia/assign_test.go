package mafia

import (
	"testing"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
)

func TestAssignLabelsClusterPoints(t *testing.T) {
	spec := datagen.Spec{
		Dims:    6,
		Records: 5000,
		Clusters: []datagen.Cluster{
			datagen.UniformBox([]int{1, 3},
				[]dataset.Range{{Lo: 20, Hi: 35}, {Lo: 60, Hi: 75}}, 0),
		},
		Seed: 51,
	}
	m, truth, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := res.Assign(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != m.NumRecords() {
		t.Fatalf("labels = %d, want %d", len(labels), m.NumRecords())
	}
	// Count in-truth records labeled vs unlabeled.
	tc := truth.Clusters[0]
	inLabeled, inUnlabeled, outLabeled, outUnlabeled := 0, 0, 0, 0
	for i := 0; i < m.NumRecords(); i++ {
		rec := m.Row(i)
		inTruth := true
		for x, d := range tc.Dims {
			if !tc.Boxes[0][x].Contains(rec[d]) {
				inTruth = false
				break
			}
		}
		switch {
		case inTruth && labels[i] >= 0:
			inLabeled++
		case inTruth:
			inUnlabeled++
		case labels[i] >= 0:
			outLabeled++
		default:
			outUnlabeled++
		}
	}
	if inLabeled < 9*(inLabeled+inUnlabeled)/10 {
		t.Errorf("only %d/%d cluster records labeled", inLabeled, inLabeled+inUnlabeled)
	}
	// Records outside the truth region should mostly be outliers; allow
	// some slack for the bin-aligned cluster boundary.
	if outLabeled > (outLabeled+outUnlabeled)/5 {
		t.Errorf("%d/%d non-cluster records were labeled", outLabeled, outLabeled+outUnlabeled)
	}
}

func TestAssignRecordDirect(t *testing.T) {
	m, _ := genData(t, 5, 4000, 52, box(10, 25, 0, 2))
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	inside := []float64{15, 50, 15, 50, 50}
	outside := []float64{90, 50, 90, 50, 50}
	if res.AssignRecord(inside) < 0 {
		t.Error("record inside the cluster not assigned")
	}
	if res.AssignRecord(outside) >= 0 {
		t.Error("record far outside the cluster was assigned")
	}
}

func TestAssignDimMismatch(t *testing.T) {
	m, _ := genData(t, 4, 2000, 53, box(10, 25, 0, 2))
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	other := dataset.NewMatrix(3, 7)
	if _, err := res.Assign(other, 0); err == nil {
		t.Error("dim mismatch: want error")
	}
}

func TestAssignPrefersHigherDimensionalCluster(t *testing.T) {
	// Clusters are sorted by descending dimensionality; a record inside
	// a 3-d cluster must get the 3-d label even if a 2-d cluster also
	// contains it.
	m, _ := genData(t, 8, 8000, 54,
		box(10, 25, 0, 2, 4),
		box(60, 75, 1, 3),
	)
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) < 2 {
		t.Skipf("only %d clusters found", len(res.Clusters))
	}
	rec := []float64{15, 50, 15, 50, 15, 50, 50, 50}
	ci := res.AssignRecord(rec)
	if ci < 0 {
		t.Fatal("record not assigned")
	}
	if got := len(res.Clusters[ci].Dims); got != 3 {
		t.Errorf("assigned to %d-dim cluster, want 3-dim", got)
	}
}
