package mafia

import (
	"testing"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/sp2"
)

// genData builds a data set with the given clusters over d dims.
func genData(t *testing.T, d, records int, seed uint64, clusters ...datagen.Cluster) (*dataset.Matrix, *datagen.Truth) {
	t.Helper()
	m, truth, err := datagen.Generate(datagen.Spec{
		Dims:     d,
		Records:  records,
		Clusters: clusters,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, truth
}

func box(lo, hi float64, dims ...int) datagen.Cluster {
	ext := make([]dataset.Range, len(dims))
	for i := range ext {
		ext[i] = dataset.Range{Lo: lo, Hi: hi}
	}
	return datagen.UniformBox(dims, ext, 0)
}

// hasCluster reports whether the result contains a cluster over
// exactly the given dims whose bounds overlap [lo,hi) in each of them.
func hasCluster(res *Result, lo, hi float64, dims ...int) bool {
	for _, c := range res.Clusters {
		if len(c.Dims) != len(dims) {
			continue
		}
		match := true
		for i, d := range dims {
			if int(c.Dims[i]) != d {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		b := c.Bounds(res.Grid)
		ok := true
		for i := range dims {
			if !b[i].Overlaps(dataset.Range{Lo: lo, Hi: hi}) {
				ok = false
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// sameCounts compares the deterministic count fields of two levels,
// ignoring wall-clock instrumentation.
func sameCounts(a, b LevelStats) bool {
	return a.K == b.K && a.NcduRaw == b.NcduRaw && a.Ncdu == b.Ncdu && a.Ndu == b.Ndu
}

func TestSerialFindsEmbeddedCluster(t *testing.T) {
	m, _ := genData(t, 6, 4000, 1, box(20, 32, 1, 3, 4))
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCluster(res, 20, 32, 1, 3, 4) {
		for _, c := range res.Clusters {
			t.Logf("found: %v bounds %v", c.String(), c.Bounds(res.Grid))
		}
		t.Fatal("embedded 3-dim cluster not found")
	}
	// Highest-dimensionality reporting: no cluster may span more dims
	// than the embedded one.
	for _, c := range res.Clusters {
		if len(c.Dims) > 3 {
			t.Errorf("spurious %d-dim cluster %v", len(c.Dims), c.String())
		}
	}
}

func TestSerialTwoClustersDifferentSubspaces(t *testing.T) {
	m, _ := genData(t, 10, 8000, 2,
		box(10, 22, 1, 7, 8, 9),
		box(60, 72, 2, 3, 4, 5),
	)
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCluster(res, 10, 22, 1, 7, 8, 9) {
		t.Error("cluster {1,7,8,9} not found")
	}
	if !hasCluster(res, 60, 72, 2, 3, 4, 5) {
		t.Error("cluster {2,3,4,5} not found")
	}
}

func TestTable2ExactCduCounts(t *testing.T) {
	// Paper Table 2: one 7-dim cluster in 10-dim data. pMAFIA must
	// produce exactly Ncdu = Ndu = C(7,k) at every level k=2..7 and
	// nothing at level 8.
	m, _ := genData(t, 10, 20000, 3, box(30, 42, 0, 2, 3, 5, 6, 8, 9))
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	choose := map[int]int{1: 7, 2: 21, 3: 35, 4: 35, 5: 21, 6: 7, 7: 1, 8: 0}
	for _, lvl := range res.Levels {
		want, ok := choose[lvl.K]
		if !ok {
			continue
		}
		if lvl.K == 1 {
			if lvl.Ndu != want {
				t.Errorf("level 1: Ndu = %d, want %d (one dense bin per cluster dim)", lvl.Ndu, want)
			}
			continue
		}
		if lvl.Ncdu != want {
			t.Errorf("level %d: Ncdu = %d, want C(7,%d) = %d", lvl.K, lvl.Ncdu, lvl.K, want)
		}
		if lvl.Ndu != want {
			t.Errorf("level %d: Ndu = %d, want %d", lvl.K, lvl.Ndu, want)
		}
	}
	if len(res.Clusters) != 1 || len(res.Clusters[0].Dims) != 7 {
		t.Errorf("clusters = %v, want exactly one 7-dim cluster", res.Clusters)
	}
}

func TestUniformDataYieldsNoClusters(t *testing.T) {
	m, _ := genData(t, 8, 5000, 4)
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Errorf("uniform data produced %d clusters", len(res.Clusters))
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	m, _ := genData(t, 8, 6000, 5, box(40, 52, 0, 2, 5))
	serial, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		shards := make([]dataset.Source, p)
		n := m.NumRecords()
		for r := 0; r < p; r++ {
			lo, hi := diskio.ShareBounds(n, r, p)
			shards[r] = m.Slice(lo, hi)
		}
		par, err := RunParallel(shards, nil, Config{}, sp2.Config{Procs: p})
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Clusters) != len(serial.Clusters) {
			t.Fatalf("p=%d: %d clusters vs serial %d", p, len(par.Clusters), len(serial.Clusters))
		}
		if len(par.Levels) != len(serial.Levels) {
			t.Fatalf("p=%d: %d levels vs serial %d", p, len(par.Levels), len(serial.Levels))
		}
		for i := range par.Levels {
			if !sameCounts(par.Levels[i], serial.Levels[i]) {
				t.Errorf("p=%d level %d: %+v vs serial %+v", p, i, par.Levels[i], serial.Levels[i])
			}
		}
		for i := range par.Clusters {
			if par.Clusters[i].String() != serial.Clusters[i].String() {
				t.Errorf("p=%d cluster %d: %v vs %v", p, i, par.Clusters[i].String(), serial.Clusters[i].String())
			}
		}
	}
}

func TestParallelLowTauMatchesSerial(t *testing.T) {
	// Force the task-parallel paths (Tau=1) and verify identical
	// results.
	m, _ := genData(t, 8, 6000, 6, box(40, 52, 0, 2, 5))
	serial, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	shards := []dataset.Source{m.Slice(0, m.NumRecords()/2), m.Slice(m.NumRecords()/2, m.NumRecords())}
	par, err := RunParallel(shards, nil, Config{Tau: 1}, sp2.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Clusters) != len(serial.Clusters) {
		t.Fatalf("clusters %d vs %d", len(par.Clusters), len(serial.Clusters))
	}
	for i := range par.Levels {
		if !sameCounts(par.Levels[i], serial.Levels[i]) {
			t.Errorf("level %d: %+v vs %+v", i, par.Levels[i], serial.Levels[i])
		}
	}
}

func TestCountStrategiesAgree(t *testing.T) {
	m, _ := genData(t, 6, 4000, 7, box(10, 25, 1, 4))
	a, err := Run(m, Config{Count: CountGrouped})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, Config{Count: CountDirect})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Levels) != len(b.Levels) {
		t.Fatalf("levels differ: %d vs %d", len(a.Levels), len(b.Levels))
	}
	for i := range a.Levels {
		if !sameCounts(a.Levels[i], b.Levels[i]) {
			t.Errorf("level %d: grouped %+v vs direct %+v", i, a.Levels[i], b.Levels[i])
		}
	}
}

func TestUniformGridCLIQUEMode(t *testing.T) {
	m, _ := genData(t, 6, 5000, 8, box(20, 40, 1, 3))
	res, err := Run(m, Config{Grid: UniformGrid, UniformBins: 10, UniformTau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCluster(res, 20, 40, 1, 3) {
		t.Error("uniform-grid run missed the cluster")
	}
}

func TestExplicitDomains(t *testing.T) {
	m, _ := genData(t, 4, 3000, 9, box(50, 62, 0, 2))
	doms := make([]dataset.Range, 4)
	for i := range doms {
		doms[i] = dataset.Range{Lo: 0, Hi: 100}
	}
	res, err := RunParallel([]dataset.Source{m}, doms, Config{}, sp2.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCluster(res, 50, 62, 0, 2) {
		t.Error("cluster not found with explicit domains")
	}
}

func TestConfigErrors(t *testing.T) {
	m, _ := genData(t, 3, 100, 10)
	if _, err := Run(m, Config{FineUnits: -1}); err == nil {
		t.Error("negative FineUnits: want error")
	}
	if _, err := Run(m, Config{Grid: GridKind(99)}); err == nil {
		t.Error("unknown grid kind: want error")
	}
	if _, err := RunParallel(nil, nil, Config{}, sp2.Config{}); err == nil {
		t.Error("no shards: want error")
	}
	if _, err := RunParallel([]dataset.Source{m}, nil, Config{}, sp2.Config{Procs: 3}); err == nil {
		t.Error("shard/proc mismatch: want error")
	}
	if _, err := RunParallel([]dataset.Source{m}, make([]dataset.Range, 1), Config{}, sp2.Config{Procs: 1}); err == nil {
		t.Error("domain count mismatch: want error")
	}
}

func TestEmptyDataset(t *testing.T) {
	if _, err := Run(dataset.NewMatrix(0, 3), Config{}); err == nil {
		t.Error("empty data: want error")
	}
}

func TestResultReportPopulated(t *testing.T) {
	m, _ := genData(t, 4, 2000, 11, box(10, 20, 0, 1))
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Seconds <= 0 || res.N != m.NumRecords() {
		t.Errorf("report=%v seconds=%v n=%d", res.Report, res.Seconds, res.N)
	}
}

func TestDiskBackedRun(t *testing.T) {
	m, _ := genData(t, 5, 3000, 12, box(70, 82, 1, 3))
	dir := t.TempDir()
	path := dir + "/data.pmaf"
	if err := diskio.WriteSource(path, m); err != nil {
		t.Fatal(err)
	}
	f, err := diskio.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(f, Config{ChunkRecords: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCluster(res, 70, 82, 1, 3) {
		t.Error("disk-backed run missed the cluster")
	}
}

func TestDiskStagedParallelRun(t *testing.T) {
	m, _ := genData(t, 5, 3000, 13, box(30, 42, 0, 4))
	dir := t.TempDir()
	shared := dir + "/shared.pmaf"
	if err := diskio.WriteSource(shared, m); err != nil {
		t.Fatal(err)
	}
	sf, err := diskio.Open(shared)
	if err != nil {
		t.Fatal(err)
	}
	const p = 3
	shards := make([]dataset.Source, p)
	for r := 0; r < p; r++ {
		local, err := diskio.Stage(sf, dir+"/local", r, p)
		if err != nil {
			t.Fatal(err)
		}
		shards[r] = local
	}
	res, err := RunParallel(shards, sf.Domains(), Config{ChunkRecords: 128}, sp2.Config{Procs: p})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCluster(res, 30, 42, 0, 4) {
		t.Error("staged parallel run missed the cluster")
	}
}

// TestReportedClustersAreActuallyDense recounts each reported
// cluster's dense units against the raw data and checks the density
// invariant end-to-end: every unit of every reported cluster must hold
// more records than the threshold of each of its bins.
func TestReportedClustersAreActuallyDense(t *testing.T) {
	m, _ := genData(t, 8, 8000, 71, box(25, 40, 1, 4, 6))
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters to verify")
	}
	d := m.Dims()
	binRow := make([]uint8, d)
	for ci := range res.Clusters {
		c := &res.Clusters[ci]
		counts := make([]int64, c.Units.Len())
		for r := 0; r < m.NumRecords(); r++ {
			res.Grid.BinRow(m.Row(r), binRow)
			for u := 0; u < c.Units.Len(); u++ {
				ud, ub := c.Units.Unit(u)
				hit := true
				for x := range ud {
					if binRow[ud[x]] != ub[x] {
						hit = false
						break
					}
				}
				if hit {
					counts[u]++
				}
			}
		}
		for u := 0; u < c.Units.Len(); u++ {
			ud, ub := c.Units.Unit(u)
			for x := range ud {
				thr := res.Grid.Dims[ud[x]].Bins[ub[x]].Threshold
				if float64(counts[u]) <= thr {
					t.Errorf("cluster %d unit %d: recounted %d <= threshold %.1f of bin d%d:b%d",
						ci, u, counts[u], thr, ud[x], ub[x])
				}
			}
		}
	}
}
