package mafia

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"pmafia/internal/cluster"
	"pmafia/internal/dataset"
	"pmafia/internal/gen"
	"pmafia/internal/grid"
	"pmafia/internal/histogram"
	"pmafia/internal/obs"
	"pmafia/internal/sp2"
	"pmafia/internal/unit"
)

// LevelStats records one level of the bottom-up loop, the quantities
// Table 2 of the paper reports plus wall-clock instrumentation.
type LevelStats struct {
	K       int // dimensionality of the level
	NcduRaw int // CDUs generated before repeat elimination
	Ncdu    int // unique CDUs whose population was counted
	Ndu     int // dense units identified
	// Seconds is the wall-clock time of the whole level and
	// PopulateSeconds the part spent in the population pass over the
	// data. Meaningful on single-processor runs (on the simulated
	// machine with p > 1 the wall clock interleaves all ranks).
	Seconds         float64
	PopulateSeconds float64
}

// Result is the outcome of a clustering run.
type Result struct {
	// N is the total number of records clustered.
	N int
	// Grid holds the bins and thresholds the run used.
	Grid *grid.Grid
	// Levels records per-level candidate/dense unit counts.
	Levels []LevelStats
	// Clusters are the reported clusters: unique, highest
	// dimensionality, minimal DNF covers.
	Clusters []cluster.Cluster
	// Report carries the parallel machine's timing/communication
	// figures.
	Report *sp2.Report
	// Seconds is the modeled parallel run time (max rank virtual clock
	// in Sim mode; wall clock in Real mode).
	Seconds float64
}

// Run clusters a single in-core or on-disk source on one processor.
func Run(src dataset.Source, cfg Config) (*Result, error) {
	return RunParallel([]dataset.Source{src}, nil, cfg, sp2.Config{Procs: 1})
}

// RunParallel clusters data distributed over one shard per rank.
// domains may be nil, in which case a preliminary parallel pass
// computes the global per-dimension domains. All shards must have the
// same dimensionality; shard r is read only by rank r.
func RunParallel(shards []dataset.Source, domains []dataset.Range, cfg Config, mcfg sp2.Config) (*Result, error) {
	if len(shards) == 0 {
		return nil, errors.New("mafia: no shards")
	}
	if mcfg.Procs == 0 {
		mcfg.Procs = len(shards)
	}
	if mcfg.Procs != len(shards) {
		return nil, fmt.Errorf("mafia: %d shards for %d ranks", len(shards), mcfg.Procs)
	}
	d := shards[0].Dims()
	for r, s := range shards {
		if s.Dims() != d {
			return nil, fmt.Errorf("mafia: shard %d has %d dims, want %d", r, s.Dims(), d)
		}
	}
	if err := cfg.Validate(d); err != nil {
		return nil, err
	}
	if domains != nil && len(domains) != d {
		return nil, fmt.Errorf("mafia: %d domains for %d dims", len(domains), d)
	}

	total := 0
	for _, s := range shards {
		total += s.NumRecords()
	}
	if mcfg.Recorder == nil {
		mcfg.Recorder = cfg.Recorder
	}
	cfg.Recorder = mcfg.Recorder
	results := make([]*Result, mcfg.Procs)
	rep, err := sp2.Run(mcfg, func(c *sp2.Comm) error {
		e := &engine{c: c, shard: shards[c.Rank()], cfg: &cfg, totalRecords: total}
		res, err := e.run(domains)
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := results[0]
	res.Report = rep
	res.Seconds = rep.ParallelSeconds
	return res, nil
}

// engine is one rank's view of a run. All ranks execute the same
// sequence of steps (SPMD) and hold identical replicated state (grid,
// unit arrays); only histogram building and population counting touch
// rank-local data.
type engine struct {
	c            *sp2.Comm
	shard        dataset.Source
	cfg          *Config
	g            *grid.Grid
	totalRecords int
	// The global fine histogram is stashed after phase 0 so every
	// checkpoint snapshot stays self-describing (a resumed run embeds
	// the same histogram in its own checkpoints).
	histDomains []dataset.Range
	histUnits   int
	histFlat    []int64
}

func (e *engine) run(domains []dataset.Range) (*Result, error) {
	cfg := e.cfg
	rec := cfg.Recorder
	rank := e.c.Rank()
	root := rec.Start(rank, "run")
	defer root.End()

	if cfg.Resume != nil {
		return e.resume(cfg.Resume)
	}

	var h *histogram.Hist
	if cfg.Hist != nil {
		// Precomputed global histogram: skip the domains and histogram
		// passes (and their collectives — every rank skips identically).
		h = cfg.Hist
		e.histDomains, e.histUnits, e.histFlat = h.Domains, h.Units, h.Flatten()
	} else {
		if domains == nil {
			sp := rec.Start(rank, "domains")
			var err error
			domains, err = e.globalDomains()
			sp.End()
			if err != nil {
				return nil, err
			}
		}

		// Phase 0: per-rank fine histograms, reduced to the global one.
		sp := rec.Start(rank, "histogram")
		h = histogram.New(domains, e.fineUnits())
		mergeSec, err := h.AddSourceParallel(e.shard, cfg.ChunkRecords, cfg.Workers)
		if err != nil {
			sp.End()
			return nil, err
		}
		rec.Add(rank, obs.CtrHistogramRecords, int64(e.shard.NumRecords()))
		rec.Add(rank, obs.CtrPoolMergeNS, int64(mergeSec*1e9))
		flat := h.Flatten()
		e.c.AllreduceSumI64(flat)
		err = h.SetFlattened(flat)
		sp.End()
		if err != nil {
			return nil, err
		}
		if h.N == 0 {
			return nil, errors.New("mafia: empty data set")
		}
		e.histDomains, e.histUnits, e.histFlat = domains, h.Units, flat
	}

	// Adaptive intervals (or the uniform CLIQUE grid) from the global
	// histogram; deterministic, so every rank computes the same grid.
	sp := rec.Start(rank, "grid")
	var err error
	switch cfg.Grid {
	case AdaptiveGrid:
		e.g, err = grid.BuildAdaptive(h, cfg.Adaptive)
	case UniformGrid:
		e.g, err = grid.BuildUniform(h, cfg.UniformBins, cfg.UniformTau)
	case UniformVariableGrid:
		e.g, err = grid.BuildUniformVariable(h, cfg.UniformBinsPerDim, cfg.UniformTau)
	}
	sp.End()
	if err != nil {
		return nil, err
	}

	res := &Result{N: int(h.N), Grid: e.g}

	// Level 1: every bin is a candidate dense unit; its population is
	// its histogram count, so no extra pass is needed.
	lsp := rec.Start(rank, "level").SetLevel(1)
	lvlStart := time.Now()
	cdus1, counts1 := levelOneCandidates(e.g)
	isp := rec.Start(rank, "identify").SetLevel(1)
	du, _, err := e.identifyDense(cdus1, counts1)
	isp.End()
	if err != nil {
		lsp.End()
		return nil, err
	}
	tally := levelTally{
		k: 1, raw: cdus1.Len(), unique: cdus1.Len(), dense: du.Len(),
		seconds: time.Since(lvlStart).Seconds(),
	}
	lsp.End()
	res.Levels = append(res.Levels, tally.stats())
	tally.emit(rec, rank)
	if err := e.checkpoint(res, 1, du, nil); err != nil {
		return nil, err
	}

	return e.runLevels(res, du, nil, 2)
}

// resume restores the replicated state of a checkpointed run and
// re-enters the level loop at snap.Level+1. Every rank applies the same
// snapshot, so the SPMD invariant (identical replicated state, identical
// collective sequence) holds from the first collective of the resumed
// level.
func (e *engine) resume(snap *Snapshot) (*Result, error) {
	if err := snap.Validate(e.shard.Dims()); err != nil {
		return nil, err
	}
	e.g = snap.Grid
	e.histDomains, e.histUnits, e.histFlat = snap.HistDomains, snap.HistUnits, snap.HistFlat
	res := &Result{
		N:      snap.N,
		Grid:   snap.Grid,
		Levels: append([]LevelStats(nil), snap.Levels...),
	}
	registered := append([]*unit.Array(nil), snap.Registered...)
	return e.runLevels(res, snap.DU, registered, snap.Level+1)
}

// runLevels drives the bottom-up loop from level startK with du seeding
// it and registered holding the maximal sets of completed levels, then
// assembles the clusters. A checkpoint snapshot is emitted after each
// completed level (post-prune), so the loop is re-enterable at any
// level barrier.
func (e *engine) runLevels(res *Result, du *unit.Array, registered []*unit.Array, startK int) (*Result, error) {
	cfg := e.cfg
	d := e.shard.Dims()
	rec := cfg.Recorder
	rank := e.c.Rank()

	for k := startK; du.Len() > 0 && k <= cfg.MaxLevels && k <= d; k++ {
		lsp := rec.Start(rank, "level").SetLevel(k)
		lvlStart := time.Now()
		gsp := rec.Start(rank, "generate").SetLevel(k)
		raw, err := e.generate(du, k)
		gsp.End()
		if err != nil {
			lsp.End()
			return nil, err
		}
		dsp := rec.Start(rank, "dedup").SetLevel(k)
		cdus := e.dedup(raw)
		dsp.End()
		var duNext *unit.Array
		var duCounts []int64
		tally := levelTally{k: k, raw: raw.Len(), unique: cdus.Len()}
		if cdus.Len() > 0 {
			psp := rec.Start(rank, "populate").SetLevel(k)
			popStart := time.Now()
			counts, records, popMerge, err := e.populate(cdus)
			psp.End()
			if err != nil {
				lsp.End()
				return nil, err
			}
			tally.popSeconds = time.Since(popStart).Seconds()
			tally.records = records
			tally.mergeSec = popMerge
			isp := rec.Start(rank, "identify").SetLevel(k)
			duNext, duCounts, err = e.identifyDense(cdus, counts)
			isp.End()
			if err != nil {
				lsp.End()
				return nil, err
			}
		} else {
			duNext = unit.New(k, 0)
		}
		tally.dense = duNext.Len()
		tally.seconds = time.Since(lvlStart).Seconds()
		lsp.End()
		res.Levels = append(res.Levels, tally.stats())
		tally.emit(rec, rank)
		registered = append(registered, uncovered(du, duNext))
		du = duNext
		if cfg.Prune != nil && du.Len() > 0 {
			du = cfg.Prune(du, duCounts)
		}
		if err := e.checkpoint(res, k, du, registered); err != nil {
			return nil, err
		}
	}
	if du.Len() > 0 {
		// The loop stopped at the dimensionality cap with dense units
		// in hand: they are maximal by construction.
		registered = append(registered, du)
	}

	sp := rec.Start(rank, "clusters")
	res.Clusters = cluster.EliminateSubsets(cluster.Assemble(registered))
	sp.End()
	return res, nil
}

// checkpoint emits a level-barrier snapshot through the configured
// hook. Only rank 0 calls the hook — the lattice state is replicated,
// so one rank's snapshot restores the whole machine — and the call is
// synchronous, so the hook sees the state exactly as the next level
// will. An error aborts the fit.
func (e *engine) checkpoint(res *Result, level int, du *unit.Array, registered []*unit.Array) error {
	if e.cfg.OnCheckpoint == nil || e.c.Rank() != 0 {
		return nil
	}
	sp := e.cfg.Recorder.Start(0, "checkpoint").SetLevel(level)
	defer sp.End()
	snap := &Snapshot{
		N:           res.N,
		Level:       level,
		Grid:        e.g,
		HistDomains: e.histDomains,
		HistUnits:   e.histUnits,
		HistFlat:    e.histFlat,
		Levels:      append([]LevelStats(nil), res.Levels...),
		DU:          du,
		Registered:  append([]*unit.Array(nil), registered...),
	}
	return e.cfg.OnCheckpoint(snap)
}

// fineUnits resolves the fine-histogram resolution: an explicit
// configuration wins; otherwise scale with the (whole-machine) record
// count so tiny data sets do not produce one-count histograms whose
// window maxima are pure noise.
func (e *engine) fineUnits() int {
	if e.cfg.FineUnits > 0 {
		return e.cfg.FineUnits
	}
	n := e.totalRecords
	units := n / 10
	if units > 1000 {
		units = 1000
	}
	if units < 50 {
		units = 50
	}
	return units
}

// globalDomains computes per-dimension [min, max] over all shards with
// a pair of min/max reductions, then widens the top ends so maxima fall
// inside the half-open domains.
func (e *engine) globalDomains() ([]dataset.Range, error) {
	d := e.shard.Dims()
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	sc := e.shard.Scan(e.cfg.ChunkRecords)
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		for r := 0; r < n; r++ {
			rec := chunk[r*d : (r+1)*d]
			for j, v := range rec {
				if v < lo[j] {
					lo[j] = v
				}
				if v > hi[j] {
					hi[j] = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		sc.Close()
		return nil, err
	}
	sc.Close()
	e.c.AllreduceMinF64(lo)
	e.c.AllreduceMaxF64(hi)
	domains := make([]dataset.Range, d)
	for i := range domains {
		switch {
		case math.IsInf(lo[i], 1): // no records anywhere
			domains[i] = dataset.Range{Lo: 0, Hi: 1}
		case hi[i] <= lo[i]:
			domains[i] = dataset.Range{Lo: lo[i], Hi: lo[i] + 1}
		default:
			domains[i] = dataset.Range{Lo: lo[i], Hi: dataset.WidenHi(lo[i], hi[i])}
		}
	}
	return domains, nil
}

// levelOneCandidates lists every bin of every dimension as a
// 1-dimensional CDU together with its already-known population.
func levelOneCandidates(g *grid.Grid) (*unit.Array, []int64) {
	cdus := unit.New(1, g.TotalBins())
	counts := make([]int64, 0, g.TotalBins())
	for di := range g.Dims {
		for bi, b := range g.Dims[di].Bins {
			cdus.AppendRaw([]uint8{uint8(di)}, []uint8{uint8(bi)})
			counts = append(counts, b.Count)
		}
	}
	return cdus, counts
}

// generate builds the level-k CDUs from the (k-1)-dimensional dense
// units. With more than Tau dense units the pairwise work is split by
// the eq. 1 partitioning and the per-rank results are gathered on the
// parent and broadcast (Algorithm 3); otherwise every rank generates
// everything.
func (e *engine) generate(du *unit.Array, k int) (*unit.Array, error) {
	p := e.c.Size()
	if p > 1 && du.Len() > e.cfg.Tau {
		bounds := gen.PartitionPairs(du.Len(), p)
		local, _ := gen.GenerateRange(du, bounds[e.c.Rank()], bounds[e.c.Rank()+1], e.cfg.Join)
		payload := e.c.GatherConcatBcast(local.Encode())
		all, err := unit.Decode(k, payload)
		if err != nil {
			return nil, fmt.Errorf("mafia: corrupt gathered CDUs at level %d: %w", k, err)
		}
		return all, nil
	}
	cdus, _ := gen.Generate(du, e.cfg.Join)
	return cdus, nil
}

// dedup eliminates repeated CDUs (Algorithm 4). With more than Tau
// CDUs each rank marks repeats in its block of the array and the marks
// are OR-reduced; compaction is deterministic and replicated.
func (e *engine) dedup(cdus *unit.Array) *unit.Array {
	n := cdus.Len()
	if n == 0 {
		return cdus
	}
	p := e.c.Size()
	if p > 1 && n > e.cfg.Tau {
		lo, hi := gen.RangeShare(n, e.c.Rank(), p)
		marks := unit.NewBitset(n)
		gen.MarkRepeatsBitset(cdus, lo, hi, marks)
		e.c.AllreduceOrU64(marks.Words()) // 1 bit per CDU on the wire
		return gen.CompactUniqueBitset(cdus, marks)
	}
	return gen.CompactUnique(cdus, gen.MarkRepeats(cdus, 0, n))
}

// populate counts each CDU's population over this rank's shard (read
// in chunks of B records) and sum-reduces to the global counts — the
// data-parallel heart of the algorithm. It also returns the number of
// records this rank scanned and the worker-pool merge time.
func (e *engine) populate(cdus *unit.Array) ([]int64, int64, float64, error) {
	cnt := newCounter(e.g, cdus, e.cfg.Count)
	mergeSec, err := cnt.addSourceParallel(e.shard, e.cfg.ChunkRecords, e.cfg.Workers)
	if err != nil {
		return nil, 0, 0, err
	}
	e.c.AllreduceSumI64(cnt.counts)
	return cnt.counts, cnt.records, mergeSec, nil
}

// identifyDense compares each CDU's population against the thresholds
// of the bins forming it (Algorithm 5) and builds the dense-unit arrays
// (Algorithm 6) together with the dense units' populations, aligned
// entry for entry with the returned array. With more than Tau CDUs each
// rank processes its block and the per-rank arrays (units and counts)
// are gathered and broadcast; rank-order concatenation keeps the two
// payloads aligned.
func (e *engine) identifyDense(cdus *unit.Array, counts []int64) (*unit.Array, []int64, error) {
	n := cdus.Len()
	p := e.c.Size()
	if p > 1 && n > e.cfg.Tau {
		lo, hi := gen.RangeShare(n, e.c.Rank(), p)
		local, localCounts := e.denseInRange(cdus, counts, lo, hi)
		payload := e.c.GatherConcatBcast(local.Encode())
		all, err := unit.Decode(cdus.K, payload)
		if err != nil {
			return nil, nil, fmt.Errorf("mafia: corrupt gathered dense units at level %d: %w", cdus.K, err)
		}
		countPayload := e.c.GatherConcatBcast(encodeCounts(localCounts))
		allCounts, err := decodeCounts(countPayload)
		if err != nil {
			return nil, nil, fmt.Errorf("mafia: corrupt gathered dense counts at level %d: %w", cdus.K, err)
		}
		if len(allCounts) != all.Len() {
			return nil, nil, fmt.Errorf("mafia: %d gathered dense counts for %d dense units at level %d", len(allCounts), all.Len(), cdus.K)
		}
		return all, allCounts, nil
	}
	du, duCounts := e.denseInRange(cdus, counts, 0, n)
	return du, duCounts, nil
}

// denseInRange applies the density test to cdus[lo:hi) and returns the
// dense units with their populations, aligned entry for entry.
func (e *engine) denseInRange(cdus *unit.Array, counts []int64, lo, hi int) (*unit.Array, []int64) {
	out := unit.New(cdus.K, hi-lo)
	outCounts := make([]int64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if float64(counts[i]) > maxThreshold(e.g, cdus, i) {
			d, b := cdus.Unit(i)
			out.AppendRaw(d, b)
			outCounts = append(outCounts, counts[i])
		}
	}
	return out, outCounts
}

// encodeCounts serializes counts as little-endian int64s for the
// gather collective.
func encodeCounts(counts []int64) []byte {
	buf := make([]byte, 8*len(counts))
	for i, c := range counts {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(c))
	}
	return buf
}

func decodeCounts(buf []byte) ([]int64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("count payload of %d bytes is not a whole number of int64s", len(buf))
	}
	counts := make([]int64, len(buf)/8)
	for i := range counts {
		counts[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return counts, nil
}

// uncovered returns the dense units of level k that are not a face of
// any dense unit of level k+1. These are maximal regions: no
// higher-dimensional dense unit extends them, so they are registered
// for cluster reporting. (The paper registers units that failed to
// combine into any CDU; checking coverage against the *dense* units of
// the next level is the same idea applied after the density test, and
// guarantees every maximal dense region is reported.)
func uncovered(du, duNext *unit.Array) *unit.Array {
	if duNext.Len() == 0 {
		return du
	}
	k1 := duNext.K
	faces := make(map[string]bool, duNext.Len()*k1)
	fd := make([]uint8, k1-1)
	fb := make([]uint8, k1-1)
	for i := 0; i < duNext.Len(); i++ {
		d, b := duNext.Unit(i)
		for drop := 0; drop < k1; drop++ {
			w := 0
			for x := 0; x < k1; x++ {
				if x == drop {
					continue
				}
				fd[w], fb[w] = d[x], b[x]
				w++
			}
			faces[unit.KeyOf(fd, fb)] = true
		}
	}
	out := unit.New(du.K, 0)
	for i := 0; i < du.Len(); i++ {
		if !faces[du.Key(i)] {
			d, b := du.Unit(i)
			out.AppendRaw(d, b)
		}
	}
	return out
}

// AssignRecord returns the index into Clusters of the first cluster
// containing the record (clusters are ordered by descending
// dimensionality, so ties go to the most specific cluster), or -1 when
// the record belongs to no cluster (an outlier/noise record).
func (r *Result) AssignRecord(rec []float64) int {
	for ci := range r.Clusters {
		if r.Clusters[ci].Contains(rec, r.Grid) {
			return ci
		}
	}
	return -1
}

// Assign labels every record of src with its cluster index per
// AssignRecord, reading in chunks of chunkRecords. The result has one
// entry per record in scan order.
func (r *Result) Assign(src dataset.Source, chunkRecords int) ([]int32, error) {
	if chunkRecords <= 0 {
		chunkRecords = 8192
	}
	d := src.Dims()
	if d != len(r.Grid.Dims) {
		return nil, fmt.Errorf("mafia: assigning %d-dim records with a %d-dim result", d, len(r.Grid.Dims))
	}
	labels := make([]int32, 0, src.NumRecords())
	sc := src.Scan(chunkRecords)
	defer sc.Close()
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			labels = append(labels, int32(r.AssignRecord(chunk[i*d:(i+1)*d])))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return labels, nil
}
