package mafia

import (
	"errors"
	"testing"

	"pmafia/internal/grid"
)

func TestValidateRejectsOverwideUniformBins(t *testing.T) {
	cfg := Config{Grid: UniformGrid, UniformBins: 300}
	var bce *grid.BinCountError
	if err := cfg.Validate(4); !errors.As(err, &bce) {
		t.Fatalf("UniformBins=300: got %T (%v), want *grid.BinCountError", err, err)
	} else if bce.Bins != 300 {
		t.Errorf("error reports %d bins, want 300", bce.Bins)
	}
	cfg = Config{Grid: UniformGrid, UniformBins: grid.MaxBins}
	if err := cfg.Validate(4); err != nil {
		t.Errorf("UniformBins at the cap: %v", err)
	}
}

func TestValidateRejectsOverwideVariableBins(t *testing.T) {
	cfg := Config{Grid: UniformVariableGrid, UniformBinsPerDim: []int{10, 300, 10}}
	var bce *grid.BinCountError
	if err := cfg.Validate(3); !errors.As(err, &bce) {
		t.Fatalf("UniformBinsPerDim with 300: got %T (%v), want *grid.BinCountError", err, err)
	} else if bce.Dim != 1 {
		t.Errorf("error reports dim %d, want 1", bce.Dim)
	}
	cfg = Config{Grid: UniformVariableGrid, UniformBinsPerDim: []int{10, grid.MaxBins, 10}}
	if err := cfg.Validate(3); err != nil {
		t.Errorf("UniformBinsPerDim at the cap: %v", err)
	}
}

func TestValidateRejectsOverwideAdaptiveEquiSplit(t *testing.T) {
	cfg := Config{Adaptive: grid.AdaptiveParams{EquiSplit: 300}}
	var bce *grid.BinCountError
	if err := cfg.Validate(4); !errors.As(err, &bce) {
		t.Fatalf("EquiSplit=300: got %T (%v), want *grid.BinCountError", err, err)
	}
}
