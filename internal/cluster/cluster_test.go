package cluster

import (
	"strings"
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/histogram"
	"pmafia/internal/rng"
	"pmafia/internal/unit"
)

func arr(k int, units ...[2][]uint8) *unit.Array {
	a := unit.New(k, len(units))
	for _, u := range units {
		a.Append(u[0], u[1])
	}
	return a
}

func TestAssembleSingleComponent(t *testing.T) {
	// Three units in a row in subspace {0,1}: one cluster, one box.
	a := arr(2,
		[2][]uint8{{0, 1}, {2, 5}},
		[2][]uint8{{0, 1}, {3, 5}},
		[2][]uint8{{0, 1}, {4, 5}},
	)
	cs := Assemble([]*unit.Array{a})
	if len(cs) != 1 {
		t.Fatalf("clusters = %d, want 1", len(cs))
	}
	c := cs[0]
	if len(c.Dims) != 2 || c.Dims[0] != 0 || c.Dims[1] != 1 {
		t.Errorf("dims = %v", c.Dims)
	}
	if c.Units.Len() != 3 {
		t.Errorf("units = %d", c.Units.Len())
	}
	if len(c.Boxes) != 1 {
		t.Fatalf("boxes = %d, want 1 (contiguous run must fuse)", len(c.Boxes))
	}
	b := c.Boxes[0]
	if b.BinLo[0] != 2 || b.BinHi[0] != 4 || b.BinLo[1] != 5 || b.BinHi[1] != 5 {
		t.Errorf("box = %+v", b)
	}
}

func TestAssembleSeparateComponents(t *testing.T) {
	// Two units far apart in the same subspace: two clusters.
	a := arr(1,
		[2][]uint8{{3}, {0}},
		[2][]uint8{{3}, {5}},
	)
	cs := Assemble([]*unit.Array{a})
	if len(cs) != 2 {
		t.Fatalf("clusters = %d, want 2", len(cs))
	}
}

func TestAssembleDiagonalNotConnected(t *testing.T) {
	// Diagonal cells share no face: two clusters.
	a := arr(2,
		[2][]uint8{{0, 1}, {2, 2}},
		[2][]uint8{{0, 1}, {3, 3}},
	)
	cs := Assemble([]*unit.Array{a})
	if len(cs) != 2 {
		t.Fatalf("diagonal cells must form 2 clusters, got %d", len(cs))
	}
}

func TestAssembleDifferentSubspaces(t *testing.T) {
	a := arr(1,
		[2][]uint8{{0}, {1}},
		[2][]uint8{{4}, {1}},
	)
	cs := Assemble([]*unit.Array{a})
	if len(cs) != 2 {
		t.Fatalf("different subspaces: %d clusters, want 2", len(cs))
	}
}

func TestAssembleLShape(t *testing.T) {
	// L-shaped component: connected (shares faces), needs 2 boxes.
	a := arr(2,
		[2][]uint8{{0, 1}, {0, 0}},
		[2][]uint8{{0, 1}, {1, 0}},
		[2][]uint8{{0, 1}, {1, 1}},
	)
	cs := Assemble([]*unit.Array{a})
	if len(cs) != 1 {
		t.Fatalf("L-shape is one component, got %d clusters", len(cs))
	}
	if len(cs[0].Boxes) != 2 {
		t.Errorf("L-shape cover = %d boxes, want 2", len(cs[0].Boxes))
	}
	// Union of boxes must cover exactly 3 cells.
	cells := 0
	for _, b := range cs[0].Boxes {
		area := 1
		for x := range b.BinLo {
			area *= int(b.BinHi[x]-b.BinLo[x]) + 1
		}
		cells += area
	}
	if cells != 3 {
		t.Errorf("cover spans %d cells, want 3", cells)
	}
}

func TestAssembleRectangleFusesToOneBox(t *testing.T) {
	// A full 2x3 rectangle of cells must fuse into a single box.
	a := unit.New(2, 6)
	for i := uint8(0); i < 2; i++ {
		for j := uint8(0); j < 3; j++ {
			a.Append([]uint8{1, 4}, []uint8{i + 2, j + 7})
		}
	}
	cs := Assemble([]*unit.Array{a})
	if len(cs) != 1 {
		t.Fatalf("clusters = %d", len(cs))
	}
	if len(cs[0].Boxes) != 1 {
		t.Errorf("rectangle cover = %d boxes, want 1", len(cs[0].Boxes))
	}
}

func TestAssembleSortsByDimensionality(t *testing.T) {
	a1 := arr(1, [2][]uint8{{0}, {1}})
	a3 := arr(3, [2][]uint8{{0, 1, 2}, {1, 1, 1}})
	cs := Assemble([]*unit.Array{a1, a3})
	if len(cs) != 2 || len(cs[0].Dims) != 3 {
		t.Errorf("expected 3-dim cluster first: %v", cs)
	}
}

func TestEliminateSubsets(t *testing.T) {
	// 2-dim cluster {0,1} bins (1,1) is the projection of 3-dim cluster
	// {0,1,2} bins (1,1,4): must be eliminated.
	sub := arr(2, [2][]uint8{{0, 1}, {1, 1}})
	super := arr(3, [2][]uint8{{0, 1, 2}, {1, 1, 4}})
	cs := Assemble([]*unit.Array{sub, super})
	if len(cs) != 2 {
		t.Fatalf("assembled %d", len(cs))
	}
	kept := EliminateSubsets(cs)
	if len(kept) != 1 {
		t.Fatalf("kept %d clusters, want 1", len(kept))
	}
	if len(kept[0].Dims) != 3 {
		t.Errorf("kept the wrong cluster: %v", kept[0])
	}
}

func TestEliminateSubsetsKeepsNonCovered(t *testing.T) {
	// Same subspace relation but different bins: not a projection, keep
	// both.
	sub := arr(2, [2][]uint8{{0, 1}, {9, 9}})
	super := arr(3, [2][]uint8{{0, 1, 2}, {1, 1, 4}})
	kept := EliminateSubsets(Assemble([]*unit.Array{sub, super}))
	if len(kept) != 2 {
		t.Fatalf("kept %d clusters, want 2", len(kept))
	}
}

func TestEliminateSubsetsPartialCoverage(t *testing.T) {
	// Sub-cluster has one unit covered and one not: keep it.
	sub := arr(2,
		[2][]uint8{{0, 1}, {1, 1}},
		[2][]uint8{{0, 1}, {2, 1}},
	)
	super := arr(3, [2][]uint8{{0, 1, 2}, {1, 1, 4}})
	kept := EliminateSubsets(Assemble([]*unit.Array{sub, super}))
	if len(kept) != 2 {
		t.Fatalf("kept %d clusters, want 2 (partial coverage must survive)", len(kept))
	}
}

func mkGrid(t *testing.T, dims int) *grid.Grid {
	t.Helper()
	doms := make([]dataset.Range, dims)
	for i := range doms {
		doms[i] = dataset.Range{Lo: 0, Hi: 100}
	}
	h := histogram.New(doms, 100)
	s := rng.New(7)
	rec := make([]float64, dims)
	for i := 0; i < 2000; i++ {
		for j := range rec {
			rec[j] = s.In(0, 100)
		}
		h.AddRecord(rec)
	}
	g, err := grid.BuildUniform(h, 10, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBoundsAndDNF(t *testing.T) {
	g := mkGrid(t, 3)
	a := arr(2,
		[2][]uint8{{0, 2}, {2, 5}},
		[2][]uint8{{0, 2}, {3, 5}},
	)
	cs := Assemble([]*unit.Array{a})
	if len(cs) != 1 {
		t.Fatalf("clusters = %d", len(cs))
	}
	b := cs[0].Bounds(g)
	// bins are width 10: bin 2..3 of dim0 = [20,40); bin 5 of dim2 = [50,60)
	if b[0].Lo != 20 || b[0].Hi != 40 {
		t.Errorf("bounds dim0 = %v", b[0])
	}
	if b[1].Lo != 50 || b[1].Hi != 60 {
		t.Errorf("bounds dim2 = %v", b[1])
	}
	dnf := cs[0].DNF(g)
	if !strings.Contains(dnf, "d0 ∈ [20, 40)") || !strings.Contains(dnf, "d2 ∈ [50, 60)") {
		t.Errorf("DNF = %q", dnf)
	}
	if strings.Contains(dnf, "∨") {
		t.Errorf("single box must have no disjunction: %q", dnf)
	}
}

func TestDNFDisjunction(t *testing.T) {
	g := mkGrid(t, 2)
	a := arr(1,
		[2][]uint8{{0}, {0}},
		[2][]uint8{{0}, {1}},
		[2][]uint8{{0}, {5}},
	)
	cs := Assemble([]*unit.Array{a})
	// Two components: {0,1} and {5}.
	if len(cs) != 2 {
		t.Fatalf("clusters = %d", len(cs))
	}
	for _, c := range cs {
		if strings.Contains(c.DNF(g), "∨") {
			t.Errorf("component should be one box: %q", c.DNF(g))
		}
	}
}

func TestStringSummary(t *testing.T) {
	a := arr(2, [2][]uint8{{1, 3}, {0, 0}})
	cs := Assemble([]*unit.Array{a})
	s := cs[0].String()
	if !strings.Contains(s, "dims=[1,3]") {
		t.Errorf("String = %q", s)
	}
}

func TestAssembleEmptyAndNil(t *testing.T) {
	cs := Assemble([]*unit.Array{nil, unit.New(2, 0)})
	if len(cs) != 0 {
		t.Errorf("clusters = %d, want 0", len(cs))
	}
}

func TestLargeComponentConnectivity(t *testing.T) {
	// A 10-cell snake in 2D must form one component.
	a := unit.New(2, 10)
	for i := uint8(0); i < 10; i++ {
		a.Append([]uint8{0, 1}, []uint8{i, i / 2})
	}
	// Cells (i, i/2): consecutive cells differ by 1 in dim0 and 0 or 1
	// in dim1 — only face-adjacent when dim1 equal. Build instead an
	// explicit staircase with both steps present.
	b := unit.New(2, 0)
	for i := uint8(0); i < 5; i++ {
		b.Append([]uint8{0, 1}, []uint8{i, i})
		b.Append([]uint8{0, 1}, []uint8{i + 1, i})
	}
	cs := Assemble([]*unit.Array{b})
	if len(cs) != 1 {
		t.Errorf("staircase should be one component, got %d", len(cs))
	}
}

// TestCoverBoxesPreservesUnion checks, with randomized components,
// that the box cover contains exactly the cells of the units — no
// cell lost, none invented.
func TestCoverBoxesPreservesUnion(t *testing.T) {
	s := rng.New(31)
	for trial := 0; trial < 50; trial++ {
		cells := map[[2]uint8]bool{}
		u := unit.New(2, 0)
		for i := 0; i < 12; i++ {
			c := [2]uint8{uint8(s.Intn(4)), uint8(s.Intn(4))}
			if cells[c] {
				continue
			}
			cells[c] = true
			u.Append([]uint8{0, 1}, []uint8{c[0], c[1]})
		}
		boxes := coverBoxes(u)
		covered := map[[2]uint8]int{}
		for _, b := range boxes {
			for x := b.BinLo[0]; ; x++ {
				for y := b.BinLo[1]; ; y++ {
					covered[[2]uint8{x, y}]++
					if y == b.BinHi[1] {
						break
					}
				}
				if x == b.BinHi[0] {
					break
				}
			}
		}
		for c := range cells {
			if covered[c] != 1 {
				t.Fatalf("trial %d: cell %v covered %d times (cells %v, boxes %+v)", trial, c, covered[c], cells, boxes)
			}
		}
		for c := range covered {
			if !cells[c] {
				t.Fatalf("trial %d: cover invented cell %v", trial, c)
			}
		}
	}
}
