// Package cluster assembles the dense units a clustering engine
// registers into reported clusters: units in the same subspace that
// share a common face are connected (union-find), each connected
// component becomes a cluster, clusters that are proper subsets of a
// higher-dimensional cluster are eliminated, and each survivor is
// rendered as a minimal-length DNF expression (a union of maximal
// hyper-rectangles over the grid's bins), per §3.2 and §4.4 of the
// paper.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/unit"
)

// Box is an axis-aligned run of bins in a cluster's subspace:
// dimension x of the subspace covers bin indices
// [BinLo[x], BinHi[x]] inclusive.
type Box struct {
	BinLo []uint8
	BinHi []uint8
}

// Cluster is a connected component of dense units in one subspace.
type Cluster struct {
	// Dims is the subspace, ascending dimension indices.
	Dims []uint8
	// Units are the dense units of the component (K == len(Dims)).
	Units *unit.Array
	// Boxes is the minimal DNF cover of Units: a disjoint set of
	// rectangles whose union is exactly the component's region.
	Boxes []Box
}

// Subspace returns the cluster's dimensionality.
func (c *Cluster) Subspace() int { return len(c.Dims) }

// Assemble partitions the registered dense units (arrays of any
// dimensionality) into clusters: per subspace, units sharing a common
// face are connected and each component becomes one cluster with its
// minimal box cover. The result is sorted by descending subspace size,
// then by subspace dims.
func Assemble(registered []*unit.Array) []Cluster {
	var out []Cluster
	for _, arr := range registered {
		if arr == nil || arr.Len() == 0 {
			continue
		}
		// Group unit indices by subspace.
		bySub := map[string][]int{}
		for i := 0; i < arr.Len(); i++ {
			key := arr.SubspaceKey(i)
			bySub[key] = append(bySub[key], i)
		}
		// Deterministic subspace order.
		keys := make([]string, 0, len(bySub))
		for k := range bySub {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			idxs := bySub[key]
			out = append(out, components(arr, idxs)...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Dims) != len(out[j].Dims) {
			return len(out[i].Dims) > len(out[j].Dims)
		}
		return dimsLess(out[i].Dims, out[j].Dims)
	})
	return out
}

func dimsLess(a, b []uint8) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// components runs union-find over the units of one subspace using
// neighbour hashing: each unit probes its 2k face-adjacent bin tuples.
func components(arr *unit.Array, idxs []int) []Cluster {
	k := arr.K
	pos := make(map[string]int, len(idxs)) // unit key -> position in idxs
	for p, i := range idxs {
		pos[arr.Key(i)] = p
	}
	parent := make([]int, len(idxs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	probe := make([]uint8, 2*k)
	for p, i := range idxs {
		d, b := arr.Unit(i)
		copy(probe[:k], d)
		copy(probe[k:], b)
		bins := probe[k:]
		for x := 0; x < k; x++ {
			orig := bins[x]
			if orig > 0 {
				bins[x] = orig - 1
				if q, ok := pos[string(probe)]; ok {
					union(p, q)
				}
			}
			bins[x] = orig + 1
			if q, ok := pos[string(probe)]; ok {
				union(p, q)
			}
			bins[x] = orig
		}
	}
	groups := map[int][]int{}
	for p := range idxs {
		r := find(p)
		groups[r] = append(groups[r], p)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var out []Cluster
	for _, r := range roots {
		members := groups[r]
		u := unit.New(k, len(members))
		for _, p := range members {
			d, b := arr.Unit(idxs[p])
			u.AppendRaw(d, b)
		}
		u.Sort()
		d0, _ := u.Unit(0)
		c := Cluster{
			Dims:  append([]uint8(nil), d0...),
			Units: u,
			Boxes: coverBoxes(u),
		}
		out = append(out, c)
	}
	return out
}

// coverBoxes greedily merges the component's unit cells into maximal
// rectangles: along each dimension in turn, boxes identical in every
// other dimension with contiguous bin runs are fused. The union is
// preserved exactly; for convex (rectangular) clusters the result is a
// single box, i.e. a minimal DNF term.
func coverBoxes(u *unit.Array) []Box {
	k := u.K
	boxes := make([]Box, u.Len())
	for i := range boxes {
		_, b := u.Unit(i)
		boxes[i] = Box{
			BinLo: append([]uint8(nil), b...),
			BinHi: append([]uint8(nil), b...),
		}
	}
	for x := 0; x < k; x++ {
		boxes = mergeAlong(boxes, x)
	}
	return boxes
}

func mergeAlong(boxes []Box, x int) []Box {
	// Group by all coordinates except x.
	type runGroup struct{ members []int }
	groups := map[string]*runGroup{}
	var keys []string
	keyBuf := make([]uint8, 0, 32)
	for i, b := range boxes {
		keyBuf = keyBuf[:0]
		for j := range b.BinLo {
			if j == x {
				continue
			}
			keyBuf = append(keyBuf, b.BinLo[j], b.BinHi[j])
		}
		key := string(keyBuf)
		g, ok := groups[key]
		if !ok {
			g = &runGroup{}
			groups[key] = g
			keys = append(keys, key)
		}
		g.members = append(g.members, i)
	}
	sort.Strings(keys)
	var out []Box
	for _, key := range keys {
		m := groups[key].members
		sort.Slice(m, func(a, b int) bool { return boxes[m[a]].BinLo[x] < boxes[m[b]].BinLo[x] })
		cur := boxes[m[0]]
		for _, i := range m[1:] {
			b := boxes[i]
			if int(b.BinLo[x]) <= int(cur.BinHi[x])+1 {
				if b.BinHi[x] > cur.BinHi[x] {
					cur.BinHi[x] = b.BinHi[x]
				}
				continue
			}
			out = append(out, cur)
			cur = b
		}
		out = append(out, cur)
	}
	return out
}

// EliminateSubsets removes clusters that are proper subsets of a
// higher-dimensional cluster: cluster A is dropped when some cluster B
// spans a strict superset of A's dimensions and the projection of B's
// units onto A's subspace covers all of A's units. Only unique clusters
// of the highest dimensionality survive, as the paper's parent
// processor does before printing.
func EliminateSubsets(cs []Cluster) []Cluster {
	keep := make([]bool, len(cs))
	for i := range keep {
		keep[i] = true
	}
	for a := range cs {
		for b := range cs {
			if a == b || !keep[a] {
				continue
			}
			if len(cs[b].Dims) <= len(cs[a].Dims) {
				continue
			}
			if !subsetDims(cs[a].Dims, cs[b].Dims) {
				continue
			}
			if coveredBy(&cs[a], &cs[b]) {
				keep[a] = false
			}
		}
	}
	var out []Cluster
	for i, k := range keep {
		if k {
			out = append(out, cs[i])
		}
	}
	return out
}

func subsetDims(sub, super []uint8) bool {
	j := 0
	for _, d := range sub {
		for j < len(super) && super[j] < d {
			j++
		}
		if j >= len(super) || super[j] != d {
			return false
		}
		j++
	}
	return true
}

// coveredBy reports whether every unit of a appears among the
// projections of b's units onto a's subspace.
func coveredBy(a, b *Cluster) bool {
	proj := make(map[string]bool, b.Units.Len())
	buf := make([]uint8, len(a.Dims))
	for i := 0; i < b.Units.Len(); i++ {
		if b.Units.Project(i, a.Dims, buf) {
			proj[string(buf)] = true
		}
	}
	for i := 0; i < a.Units.Len(); i++ {
		_, bins := a.Units.Unit(i)
		if !proj[string(bins)] {
			return false
		}
	}
	return true
}

// Bounds returns the cluster's bounding interval in each of its
// subspace dimensions, in value space.
func (c *Cluster) Bounds(g *grid.Grid) []dataset.Range {
	out := make([]dataset.Range, len(c.Dims))
	for x, d := range c.Dims {
		bins := g.Dims[d].Bins
		lo, hi := bins[len(bins)-1].Bounds.Hi, bins[0].Bounds.Lo
		for _, box := range c.Boxes {
			bl := bins[box.BinLo[x]].Bounds.Lo
			bh := bins[box.BinHi[x]].Bounds.Hi
			if bl < lo {
				lo = bl
			}
			if bh > hi {
				hi = bh
			}
		}
		out[x] = dataset.Range{Lo: lo, Hi: hi}
	}
	return out
}

// DNF renders the cluster as a disjunction of conjunctions of
// per-dimension intervals, e.g.
//
//	(d0 ∈ [2.0, 3.5) ∧ d4 ∈ [0.0, 1.0)) ∨ (…)
func (c *Cluster) DNF(g *grid.Grid) string {
	var sb strings.Builder
	for bi, box := range c.Boxes {
		if bi > 0 {
			sb.WriteString(" ∨ ")
		}
		sb.WriteString("(")
		for x, d := range c.Dims {
			if x > 0 {
				sb.WriteString(" ∧ ")
			}
			bins := g.Dims[d].Bins
			lo := bins[box.BinLo[x]].Bounds.Lo
			hi := bins[box.BinHi[x]].Bounds.Hi
			fmt.Fprintf(&sb, "d%d ∈ [%.4g, %.4g)", d, lo, hi)
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// String summarizes the cluster without value-space information.
func (c *Cluster) String() string {
	ds := make([]string, len(c.Dims))
	for i, d := range c.Dims {
		ds[i] = fmt.Sprintf("%d", d)
	}
	return fmt.Sprintf("cluster{dims=[%s] units=%d boxes=%d}", strings.Join(ds, ","), c.Units.Len(), len(c.Boxes))
}

// Contains reports whether a d-dimensional record lies inside the
// cluster's region: some cover box contains the record's bin in every
// cluster dimension.
func (c *Cluster) Contains(rec []float64, g *grid.Grid) bool {
	for _, box := range c.Boxes {
		inside := true
		for x, d := range c.Dims {
			b := g.Dims[d].BinOf(rec[d])
			if b < box.BinLo[x] || b > box.BinHi[x] {
				inside = false
				break
			}
		}
		if inside {
			return true
		}
	}
	return false
}
