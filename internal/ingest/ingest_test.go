package ingest_test

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/ingest"
	"pmafia/internal/mafia"
	"pmafia/internal/modelio"
	"pmafia/internal/obs"
)

// genData returns a 5-dim matrix with one embedded subspace cluster.
func genData(t *testing.T, records int, seed uint64) *dataset.Matrix {
	t.Helper()
	ext := []dataset.Range{{Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}}
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:     5,
		Records:  records,
		Clusters: []datagen.Cluster{datagen.UniformBox([]int{0, 2, 4}, ext, 0)},
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// sameModel asserts the streamed and batch results describe the same
// model: record count, grid geometry, and cluster covers. Timing
// fields are instrumentation and excluded.
func sameModel(t *testing.T, got, want *mafia.Result) {
	t.Helper()
	if got.N != want.N {
		t.Errorf("N: %d vs %d", got.N, want.N)
	}
	if !reflect.DeepEqual(got.Grid.Spec(), want.Grid.Spec()) {
		t.Error("grid spec differs from the batch fit")
	}
	if len(got.Clusters) != len(want.Clusters) {
		t.Fatalf("clusters: %d vs %d", len(got.Clusters), len(want.Clusters))
	}
	for i := range want.Clusters {
		if got.Clusters[i].String() != want.Clusters[i].String() {
			t.Errorf("cluster %d: %v vs %v", i, got.Clusters[i], want.Clusters[i])
		}
		if got.Clusters[i].DNF(got.Grid) != want.Clusters[i].DNF(want.Grid) {
			t.Errorf("cluster %d DNF differs", i)
		}
	}
}

// TestRefitMatchesBatch streams a data set in uneven chunks — the
// later chunks widen the observed domains, forcing histogram rebuilds
// — and checks the refit model is the one a batch fit over the same
// records computes.
func TestRefitMatchesBatch(t *testing.T) {
	m := genData(t, 3000, 11)
	ing, err := ingest.New(5, ingest.Config{Dir: t.TempDir(), Model: "m.pmfm"})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	// Uneven chunk sizes so appends straddle record boundaries in
	// different phases of the stream.
	step := 1
	for lo := 0; lo < m.NumRecords(); {
		hi := lo + step
		if hi > m.NumRecords() {
			hi = m.NumRecords()
		}
		s := m.Slice(lo, hi)
		if err := ing.Append(s.Values, s.NumRecords()); err != nil {
			t.Fatal(err)
		}
		lo = hi
		step = step*3 + 1
	}
	gen, err := ing.Refit()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Errorf("first refit wrote generation %d, want 1", gen)
	}

	got, meta, err := modelio.LoadMeta(ing.Path())
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 1 {
		t.Errorf("file generation %d, want 1", meta.Generation)
	}
	want, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sameModel(t, got, want)

	st := ing.Stats()
	if st.Records != m.NumRecords() || st.Pending != 0 || st.Generation != 1 || st.Refits != 1 {
		t.Errorf("stats after refit: %+v", st)
	}

	// A second refit over the same records bumps the generation but
	// keeps the payload fingerprint (same model content).
	if _, err := ing.Refit(); err != nil {
		t.Fatal(err)
	}
	_, meta2, err := modelio.LoadMeta(ing.Path())
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Generation != 2 {
		t.Errorf("second refit generation %d, want 2", meta2.Generation)
	}
}

// TestAutoRefit checks the RefitEvery record threshold triggers a
// background refit without an explicit call.
func TestAutoRefit(t *testing.T) {
	m := genData(t, 2000, 12)
	rec := obs.New()
	ing, err := ingest.New(5, ingest.Config{
		Dir: t.TempDir(), RefitEvery: 1500, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	for lo := 0; lo < m.NumRecords(); lo += 500 {
		hi := lo + 500
		if hi > m.NumRecords() {
			hi = m.NumRecords()
		}
		s := m.Slice(lo, hi)
		if err := ing.Append(s.Values, s.NumRecords()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for ing.Stats().Generation == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background refit never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, meta, err := modelio.LoadMeta(ing.Path()); err != nil || meta.Generation == 0 {
		t.Fatalf("model file: meta=%+v err=%v", meta, err)
	}
	if rec.Counter(obs.CtrIngestRefits) == 0 {
		t.Error("ingest.refits counter not bumped")
	}
	if got := rec.Counter(obs.CtrIngestRecords); got != int64(m.NumRecords()) {
		t.Errorf("ingest.records = %d, want %d", got, m.NumRecords())
	}
}

// TestAppendFile streams a .pmaf file into the ingester.
func TestAppendFile(t *testing.T) {
	m := genData(t, 1200, 13)
	dir := t.TempDir()
	pmaf := filepath.Join(dir, "data.pmaf")
	if err := diskio.WriteSource(pmaf, m); err != nil {
		t.Fatal(err)
	}
	ing, err := ingest.New(5, ingest.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	n, err := ing.AppendFile(pmaf)
	if err != nil {
		t.Fatal(err)
	}
	if n != m.NumRecords() {
		t.Errorf("AppendFile streamed %d records, want %d", n, m.NumRecords())
	}
	got, _, err := modelioRefit(ing)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sameModel(t, got, want)
}

func modelioRefit(ing *ingest.Ingester) (*mafia.Result, modelio.Meta, error) {
	if _, err := ing.Refit(); err != nil {
		return nil, modelio.Meta{}, err
	}
	return modelio.LoadMeta(ing.Path())
}

// TestRefitEmpty checks an empty ingester refuses to fit and counts
// the failure.
func TestRefitEmpty(t *testing.T) {
	rec := obs.New()
	ing, err := ingest.New(3, ingest.Config{Dir: t.TempDir(), Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	if _, err := ing.Refit(); err == nil {
		t.Fatal("refit over zero records succeeded")
	}
	if rec.Counter(obs.CtrIngestRefitErrors) != 1 {
		t.Errorf("ingest.refit.errors = %d, want 1", rec.Counter(obs.CtrIngestRefitErrors))
	}
	if st := ing.Stats(); st.RefitErrors != 1 {
		t.Errorf("stats errors = %d, want 1", st.RefitErrors)
	}
}

// TestClosedAppend checks Close stops the intake.
func TestClosedAppend(t *testing.T) {
	ing, err := ingest.New(2, ingest.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Append([]float64{1, 2}, 1); err == nil {
		t.Error("append after Close succeeded")
	}
}
