// Package ingest is the streaming front end of the fit pipeline: it
// accepts record chunks as they arrive, maintains the incremental
// state a refit needs — the accumulated records plus the global fine
// histogram the adaptive grid is built from — and periodically refits
// in the background, emitting each new model as a generation-stamped
// .pmfm file written atomically next to the previous one.
//
// The histogram is maintained with the same mergeable kernel the batch
// engine uses (histogram.AddChunk), under the same domain-widening and
// unit-count rules, so a refit over the accumulated stream produces
// bit-identical models to a batch fit over the same records: arriving
// chunks fold into the running counts in O(chunk), and only a record
// that falls outside every previously observed domain forces a rebuild
// pass over the buffer. The refit itself hands the frozen histogram to
// the engine through mafia.Config.Hist, skipping the engine's own
// histogram pass, and runs through the ordinary checkpoint-able
// pipeline (Config.CkptDir wires internal/ckpt in).
//
// Concurrency model: Append and Refit are safe to call from any
// goroutine. Refits are serialized (single-flight) and run against a
// frozen snapshot — the append-only record buffer means a snapshot
// view taken under the lock stays immutable while later appends grow
// the buffer — so ingestion never stalls behind a fit. The serving
// daemon watches the output path and hot-swaps each new generation in;
// the ingester itself never blocks on serving.
package ingest

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pmafia/internal/ckpt"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/histogram"
	"pmafia/internal/mafia"
	"pmafia/internal/modelio"
	"pmafia/internal/obs"
)

// Config parameterizes an Ingester.
type Config struct {
	// Dir is the directory the versioned model is written into.
	Dir string
	// Model is the model file name within Dir (default "stream.pmfm").
	Model string
	// RefitEvery, when > 0, triggers a background refit whenever that
	// many records have arrived since the last refit snapshot. 0 means
	// refits happen only through explicit Refit calls.
	RefitEvery int
	// FineUnits fixes the fine-histogram resolution; 0 scales it with
	// the accumulated record count exactly like the batch engine
	// (min(1000, max(50, n/10))), so a refit matches a batch fit of the
	// same records bit for bit.
	FineUnits int
	// Fit is the clustering configuration each refit runs with. The
	// Hist, Resume, and (when Recorder below is set) Recorder fields
	// are managed by the ingester and overwritten per refit.
	Fit mafia.Config
	// CkptDir, when non-empty, wires internal/ckpt into each refit so
	// level-barrier snapshots are emitted while the fit runs.
	CkptDir string
	// Recorder receives the ingest.* counters, the pending-records
	// gauge, and the refit spans. nil costs nothing.
	Recorder *obs.Recorder
	// OnRefit, when non-nil, is called after every refit attempt —
	// explicit or auto-triggered — with the generation written (0 on
	// failure), the fitted result, and the error. Called outside the
	// ingester's locks; it may call back into the ingester.
	OnRefit func(generation uint64, res *mafia.Result, err error)
}

// Stats is a point-in-time snapshot of an ingester.
type Stats struct {
	// Records is the total number of records accumulated.
	Records int
	// Pending is the number of records not yet covered by a completed
	// refit.
	Pending int
	// Generation is the generation of the newest model written (0 when
	// no refit has completed).
	Generation uint64
	// Refits and RefitErrors count completed and failed refit attempts.
	Refits, RefitErrors int
}

// Ingester accumulates a record stream and refits models from it. Use
// New, then Append/AppendFile from any goroutine; Close waits for any
// in-flight background refit.
type Ingester struct {
	cfg  Config
	dims int
	path string

	// fitMu serializes refits (single-flight); held across the whole
	// fit, never while holding mu.
	fitMu sync.Mutex
	wg    sync.WaitGroup

	mu          sync.Mutex
	buf         *dataset.Matrix
	hist        *histogram.Hist
	lo, hi      []float64 // observed per-dimension min/max
	gen         uint64    // generation of the newest model written
	lastFitN    int       // records covered by the newest model
	fitting     bool      // a background refit is in flight
	refits      int
	refitErrors int
	closed      bool
}

// New creates an ingester for dims-dimensional records writing its
// models under cfg.Dir.
func New(dims int, cfg Config) (*Ingester, error) {
	if dims < 1 || dims > 255 {
		return nil, fmt.Errorf("ingest: dimensionality %d out of [1,255]", dims)
	}
	if cfg.Dir == "" {
		return nil, errors.New("ingest: Config.Dir is required")
	}
	if cfg.Model == "" {
		cfg.Model = "stream.pmfm"
	}
	if cfg.RefitEvery < 0 {
		return nil, fmt.Errorf("ingest: RefitEvery %d < 0", cfg.RefitEvery)
	}
	if cfg.FineUnits < 0 {
		return nil, fmt.Errorf("ingest: FineUnits %d < 0", cfg.FineUnits)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	ing := &Ingester{
		cfg:  cfg,
		dims: dims,
		path: filepath.Join(cfg.Dir, cfg.Model),
		buf:  &dataset.Matrix{D: dims},
		lo:   make([]float64, dims),
		hi:   make([]float64, dims),
	}
	for i := 0; i < dims; i++ {
		ing.lo[i] = math.Inf(1)
		ing.hi[i] = math.Inf(-1)
	}
	return ing, nil
}

// Path returns the model file path refits write to.
func (ing *Ingester) Path() string { return ing.path }

// Dims returns the record dimensionality.
func (ing *Ingester) Dims() int { return ing.dims }

// Append folds n row-major records (n*Dims values) into the stream:
// the records are buffered for future refits and the running fine
// histogram absorbs them. When the records grow a dimension's observed
// domain (or the auto-scaled unit count steps up), the histogram is
// rebuilt over the whole buffer so its binning stays identical to what
// a batch fit over the same data would compute. Triggers a background
// refit when RefitEvery is crossed.
func (ing *Ingester) Append(chunk []float64, n int) error {
	d := ing.dims
	if n <= 0 {
		return fmt.Errorf("ingest: appending %d records", n)
	}
	if len(chunk) < n*d {
		return fmt.Errorf("ingest: chunk holds %d values, %d records of %d dims need %d", len(chunk), n, d, n*d)
	}
	chunk = chunk[:n*d]

	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return errors.New("ingest: ingester is closed")
	}
	grown := false
	for r := 0; r < n; r++ {
		rec := chunk[r*d : (r+1)*d]
		for j, v := range rec {
			if v < ing.lo[j] {
				ing.lo[j], grown = v, true
			}
			if v > ing.hi[j] {
				ing.hi[j], grown = v, true
			}
		}
	}
	ing.buf.Values = append(ing.buf.Values, chunk...)
	total := ing.buf.NumRecords()
	units := ing.fineUnits(total)
	if ing.hist == nil || grown || units != ing.hist.Units {
		// Domain growth (or a unit-count step) invalidates the binning:
		// rebuild from the buffer. Rare once the stream's range
		// stabilizes — the common case is the in-place AddChunk below.
		h := histogram.New(ing.domainsLocked(), units)
		h.AddChunk(ing.buf.Values, total)
		ing.hist = h
	} else {
		ing.hist.AddChunk(chunk, n)
	}
	pending := total - ing.lastFitN
	trigger := ing.cfg.RefitEvery > 0 && !ing.fitting && pending >= ing.cfg.RefitEvery
	if trigger {
		ing.fitting = true
		ing.wg.Add(1)
	}
	ing.mu.Unlock()

	rec := ing.cfg.Recorder
	rec.AddGlobal(obs.CtrIngestRecords, int64(n))
	rec.AddGlobal(obs.CtrIngestChunks, 1)
	rec.SetGauge(obs.GaugeIngestPending, float64(pending))
	if trigger {
		go func() {
			defer ing.wg.Done()
			ing.Refit()
		}()
	}
	return nil
}

// AppendFile streams every record of a .pmaf file into the ingester.
func (ing *Ingester) AppendFile(path string) (records int, err error) {
	f, err := diskio.Open(path)
	if err != nil {
		return 0, err
	}
	sc := f.Scan(ing.cfg.Fit.ChunkRecords)
	defer sc.Close()
	if f.Dims() != ing.dims {
		return 0, fmt.Errorf("ingest: %s holds %d-dim records, ingester wants %d", path, f.Dims(), ing.dims)
	}
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		if err := ing.Append(chunk, n); err != nil {
			return records, err
		}
		records += n
	}
	return records, sc.Err()
}

// Refit synchronously fits a model over the records accumulated so far
// and atomically writes it as the next generation. Refits are
// single-flight: concurrent callers queue behind the running one.
// Ingestion continues during the fit — the fit reads a frozen snapshot
// of the buffer and histogram.
func (ing *Ingester) Refit() (generation uint64, err error) {
	ing.fitMu.Lock()
	defer ing.fitMu.Unlock()
	start := time.Now()
	rec := ing.cfg.Recorder

	ing.mu.Lock()
	n := ing.buf.NumRecords()
	var snap *dataset.Matrix
	var h *histogram.Hist
	if n > 0 {
		// The buffer is append-only, so a view of the first n records
		// stays immutable while appends continue beyond it.
		snap = &dataset.Matrix{D: ing.dims, Values: ing.buf.Values[:n*ing.dims]}
		h = ing.hist.Clone()
	}
	nextGen := ing.gen + 1
	ing.mu.Unlock()

	var res *mafia.Result
	if n == 0 {
		err = errors.New("ingest: no records to fit")
	} else {
		res, err = ing.fit(snap, h, nextGen)
	}

	ing.mu.Lock()
	ing.fitting = false
	if err != nil {
		ing.refitErrors++
	} else {
		ing.gen = nextGen
		ing.lastFitN = n
		ing.refits++
	}
	pending := ing.buf.NumRecords() - ing.lastFitN
	ing.mu.Unlock()

	if err != nil {
		rec.AddGlobal(obs.CtrIngestRefitErrors, 1)
	} else {
		rec.AddGlobal(obs.CtrIngestRefits, 1)
		rec.Observe(0, obs.HistIngestRefitSeconds, time.Since(start).Seconds())
		generation = nextGen
	}
	rec.SetGauge(obs.GaugeIngestPending, float64(pending))
	if ing.cfg.OnRefit != nil {
		ing.cfg.OnRefit(generation, res, err)
	}
	return generation, err
}

// fit runs the engine over a frozen snapshot and writes the model.
func (ing *Ingester) fit(snap *dataset.Matrix, h *histogram.Hist, gen uint64) (*mafia.Result, error) {
	cfg := ing.cfg.Fit
	cfg.Hist = h
	cfg.Resume = nil
	cfg.OnCheckpoint = nil
	if ing.cfg.Recorder != nil {
		cfg.Recorder = ing.cfg.Recorder
	}
	if ing.cfg.CkptDir != "" {
		hash, err := ckpt.ConfigHash(cfg, ing.dims)
		if err != nil {
			return nil, err
		}
		mgr, err := ckpt.NewManager(ing.cfg.CkptDir, ckpt.Fingerprint{
			DataPath:   "ingest:" + ing.cfg.Model,
			DataBytes:  int64(len(snap.Values)) * 8,
			ConfigHash: hash,
		}, ckpt.Options{Recorder: ing.cfg.Recorder})
		if err != nil {
			return nil, err
		}
		cfg.OnCheckpoint = mgr.Save
	}
	res, err := mafia.Run(snap, cfg)
	if err != nil {
		return nil, err
	}
	if err := modelio.SaveMeta(ing.path, res, gen); err != nil {
		return nil, err
	}
	return res, nil
}

// Stats snapshots the ingester's counters.
func (ing *Ingester) Stats() Stats {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	n := ing.buf.NumRecords()
	return Stats{
		Records:     n,
		Pending:     n - ing.lastFitN,
		Generation:  ing.gen,
		Refits:      ing.refits,
		RefitErrors: ing.refitErrors,
	}
}

// Close stops accepting appends and waits for any in-flight background
// refit to finish. Idempotent.
func (ing *Ingester) Close() error {
	ing.mu.Lock()
	ing.closed = true
	ing.mu.Unlock()
	ing.wg.Wait()
	return nil
}

// fineUnits mirrors the batch engine's resolution rule so streamed and
// batch fits of the same records bin identically.
func (ing *Ingester) fineUnits(n int) int {
	if ing.cfg.FineUnits > 0 {
		return ing.cfg.FineUnits
	}
	units := n / 10
	if units > 1000 {
		units = 1000
	}
	if units < 50 {
		units = 50
	}
	return units
}

// domainsLocked widens the observed min/max into the half-open domains
// a batch fit would compute over the same records — the exact widening
// switch of the engine's globalDomains. Caller holds ing.mu and
// guarantees at least one record has been observed.
func (ing *Ingester) domainsLocked() []dataset.Range {
	domains := make([]dataset.Range, ing.dims)
	for i := range domains {
		lo, hi := ing.lo[i], ing.hi[i]
		switch {
		case hi <= lo:
			domains[i] = dataset.Range{Lo: lo, Hi: lo + 1}
		default:
			domains[i] = dataset.Range{Lo: lo, Hi: dataset.WidenHi(lo, hi)}
		}
	}
	return domains
}
