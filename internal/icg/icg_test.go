package icg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInvPow2(t *testing.T) {
	xs := []uint64{1, 3, 5, 7, 0xdeadbeef | 1, ^uint64(0), 0x9e3779b97f4a7c15 | 1}
	for _, x := range xs {
		inv := invPow2(x)
		if x*inv != 1 {
			t.Errorf("invPow2(%#x) = %#x, product %#x != 1", x, inv, x*inv)
		}
	}
}

func TestInvPow2Property(t *testing.T) {
	f := func(x uint64) bool {
		x |= 1
		return x*invPow2(x) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultParamCongruences(t *testing.T) {
	if DefaultMult%4 != 3 {
		t.Errorf("DefaultMult %% 4 = %d, want 3", DefaultMult%4)
	}
	if DefaultIncr%8 != 4 {
		t.Errorf("DefaultIncr %% 8 = %d, want 4", DefaultIncr%8)
	}
}

func TestParamCoercion(t *testing.T) {
	g := NewPowerOfTwoParams(1, 8, 5) // invalid: a%4==0, b odd
	if g.a%4 != 3 {
		t.Errorf("coerced a = %d, want ≡3 (mod 4)", g.a)
	}
	if g.b%8 != 4 {
		t.Errorf("coerced b = %d, want ≡4 (mod 8)", g.b)
	}
}

func TestStateStaysOdd(t *testing.T) {
	g := NewPowerOfTwo(42)
	for i := 0; i < 10000; i++ {
		g.Uint64()
		if g.State()%2 != 1 {
			t.Fatalf("state became even after %d steps", i+1)
		}
	}
}

// smallICGPeriod measures the period of the raw inversive recurrence
// x -> a*inv(x)+b over the odd residues mod 2^e by brute force.
func smallICGPeriod(e uint, a, b uint64) int {
	m := uint64(1) << e
	mask := m - 1
	inv := func(x uint64) uint64 {
		// brute-force inverse over odd residues mod 2^e
		for y := uint64(1); y < m; y += 2 {
			if (x*y)&mask == 1 {
				return y
			}
		}
		return 0
	}
	x := uint64(1)
	seen := x
	for n := 1; ; n++ {
		x = (a*inv(x) + b) & mask
		if x == seen {
			return n
		}
		if n > 1<<int(e) {
			return -1
		}
	}
}

// TestSmallPeriod checks that the power-of-two inversive recurrence with
// a ≡ 3 (mod 4), b ≡ 4 (mod 8) attains the maximal period 2^(e-2) on
// small moduli, the property the Eichenauer-Herrmann/Grothe construction
// is chosen for.
func TestSmallPeriod(t *testing.T) {
	for _, e := range []uint{6, 8, 10} {
		a := DefaultMult & ((1 << e) - 1)
		if a%4 != 3 {
			a = a - a%4 + 3
		}
		b := DefaultIncr & ((1 << e) - 1)
		if b%8 != 4 {
			b = b - b%8 + 4
		}
		got := smallICGPeriod(e, a, b)
		want := 1 << (e - 2)
		if got != want {
			t.Errorf("period mod 2^%d with a=%d b=%d: got %d, want %d", e, a, b, got, want)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	g1 := NewPowerOfTwo(7)
	g2 := NewPowerOfTwo(7)
	for i := 0; i < 100; i++ {
		if g1.Uint64() != g2.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	g3 := NewPowerOfTwo(8)
	same := 0
	g1.Seed(7)
	for i := 0; i < 100; i++ {
		if g1.Uint64() == g3.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal outputs", same)
	}
}

func TestUniformity(t *testing.T) {
	// Chi-square test over 64 buckets; 1e5 samples. Critical value for
	// 63 degrees of freedom at p=0.001 is ~103.4; use a loose bound.
	g := NewPowerOfTwo(12345)
	const buckets = 64
	const n = 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[g.Uint64()>>58]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 120 {
		t.Errorf("chi-square = %.1f, want < 120 (outputs not uniform)", chi2)
	}
}

func TestBitBalance(t *testing.T) {
	g := NewPowerOfTwo(99)
	const n = 200000
	var ones [64]int
	for i := 0; i < n; i++ {
		x := g.Uint64()
		for b := 0; b < 64; b++ {
			ones[b] += int(x >> b & 1)
		}
	}
	for b := 0; b < 64; b++ {
		frac := float64(ones[b]) / n
		if math.Abs(frac-0.5) > 0.01 {
			t.Errorf("bit %d set fraction %.4f, want 0.5±0.01", b, frac)
		}
	}
}

func TestPrimeICGBasics(t *testing.T) {
	g := NewPrime(3)
	for i := 0; i < 1000; i++ {
		v := g.Uint64()
		if v >= g.Modulus() {
			t.Fatalf("output %d >= modulus %d", v, g.Modulus())
		}
	}
}

func TestInvModFermat(t *testing.T) {
	const p = 10007 // prime
	for x := uint64(1); x < 200; x++ {
		inv := invMod(x, p)
		if x*inv%p != 1 {
			t.Errorf("invMod(%d, %d) = %d, x*inv mod p = %d", x, p, inv, x*inv%p)
		}
	}
	if invMod(0, p) != 0 {
		t.Errorf("invMod(0) = %d, want 0 by ICG convention", invMod(0, p))
	}
}

func TestPrimeICGFullPeriodSmall(t *testing.T) {
	// With p prime, a=1, b=1 the map x -> inv(x)+1 permutes Z_p and has
	// a single long cycle for many small primes. We just verify the
	// sequence is a permutation-walk: no repeats before returning to the
	// start.
	const p = 101
	g := NewPrimeParams(0, p, 1, 1)
	start := g.state
	seen := map[uint64]bool{start: true}
	period := 0
	for i := 1; i <= int(p)+1; i++ {
		v := g.Uint64()
		period = i
		if v == start {
			break
		}
		if seen[v] {
			t.Fatalf("sequence entered a cycle not containing the start at step %d", i)
		}
		seen[v] = true
	}
	if period < 10 {
		t.Errorf("period %d suspiciously short for p=%d", period, p)
	}
}

func TestMulmodAgainstBig(t *testing.T) {
	f := func(a, b uint64) bool {
		const m = 1<<61 - 1
		got := mulmod(a, b, m)
		// Reference via 128-bit decomposition: (a*b) mod m computed with
		// math/bits-free long multiplication through float-safe halves.
		hi, lo := mul128(a%m, b%m)
		want := mod128(hi, lo, m)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mul128 returns the 128-bit product of x and y as (hi, lo).
func mul128(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// mod128 reduces the 128-bit value (hi,lo) modulo m by long division.
func mod128(hi, lo, m uint64) uint64 {
	r := uint64(0)
	for i := 127; i >= 0; i-- {
		var bit uint64
		if i >= 64 {
			bit = hi >> (i - 64) & 1
		} else {
			bit = lo >> i & 1
		}
		r = r<<1 | bit
		if r >= m {
			r -= m
		}
	}
	return r
}

func BenchmarkPowerOfTwoUint64(b *testing.B) {
	g := NewPowerOfTwo(1)
	for i := 0; i < b.N; i++ {
		g.Uint64()
	}
}

func BenchmarkPrimeUint64(b *testing.B) {
	g := NewPrime(1)
	for i := 0; i < b.N; i++ {
		g.Uint64()
	}
}
