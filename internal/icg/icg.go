// Package icg implements inversive congruential pseudorandom number
// generators (ICGs).
//
// The pMAFIA paper generates its synthetic data sets with the inversive
// congruential generator of Eichenauer-Herrmann and Grothe ("A new
// inversive congruential pseudorandom number generator with power of two
// modulus", ACM TOMACS 2(1), 1992) because long sequences from Unix
// linear congruential generators fall into regular planes. This package
// provides that generator (PowerOfTwo) plus the classic prime-modulus
// inversive generator (Prime) used for cross-validation in tests.
//
// Both generators follow the recurrence
//
//	x[n+1] = a * inv(x[n]) + b  (mod m)
//
// where inv is the multiplicative inverse modulo m. For the power-of-two
// generator (m = 2^64) the state is kept odd, which guarantees the
// inverse exists; with a odd and b even the next state is odd again, and
// the sequence walks the odd residues with period 2^(e-2) for suitably
// chosen parameters.
package icg

// Default parameters for the power-of-two generator. The conditions for
// the maximal period 2^(e-2) are structural congruences on the
// multiplier and increment: Mult ≡ 3 (mod 4) and Incr ≡ 4 (mod 8).
// (Confirmed by exhaustively measuring the periods of all parameter
// pairs at e=8: the b ≡ 4 (mod 8) class reaches the maximal period for
// every a ≡ 3 (mod 4); the remaining maximal classes couple b mod 8 to
// a mod 8, so we use the unconditional subfamily.) The specific values
// are arbitrary large constants in that family; tests verify the
// congruences and re-measure periods of scaled-down instances
// exhaustively.
const (
	DefaultMult uint64 = 0x9e3779b97f4a7c13 // ≡ 3 (mod 4)
	DefaultIncr uint64 = 0xbf58476d1ce4e5b4 // ≡ 4 (mod 8)
)

// PowerOfTwo is an inversive congruential generator with modulus 2^64.
// The zero value is not valid; use NewPowerOfTwo.
type PowerOfTwo struct {
	a, b  uint64
	state uint64 // always odd
}

// NewPowerOfTwo returns a power-of-two-modulus ICG seeded from seed with
// the default multiplier and increment.
func NewPowerOfTwo(seed uint64) *PowerOfTwo {
	return NewPowerOfTwoParams(seed, DefaultMult, DefaultIncr)
}

// NewPowerOfTwoParams returns a power-of-two-modulus ICG with explicit
// parameters. The multiplier must be ≡ 3 (mod 4) and the increment
// ≡ 4 (mod 8) for the state to remain odd and the period to be maximal;
// invalid parameters are coerced to the nearest valid ones.
func NewPowerOfTwoParams(seed, a, b uint64) *PowerOfTwo {
	if a%4 != 3 {
		a = a - a%4 + 3
	}
	if b%8 != 4 {
		b = b - b%8 + 4
	}
	g := &PowerOfTwo{a: a, b: b}
	g.Seed(seed)
	return g
}

// Seed resets the generator state. Distinct seeds are first dispersed
// through a 64-bit mixing function so that close seeds do not yield
// correlated initial states; the state is forced odd.
func (g *PowerOfTwo) Seed(seed uint64) {
	g.state = mix64(seed) | 1
}

// Uint64 advances the generator and returns the next 64-bit value.
// The raw state is always odd, so the low bit is scrambled with a final
// xor-shift before returning.
func (g *PowerOfTwo) Uint64() uint64 {
	g.state = g.a*invPow2(g.state) + g.b
	x := g.state
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x
}

// State returns the current internal state (odd). Useful for tests that
// measure the period of the underlying recurrence.
func (g *PowerOfTwo) State() uint64 { return g.state }

// Step advances the raw recurrence once without output scrambling and
// returns the new state. Exposed for exhaustive period tests.
func (g *PowerOfTwo) Step() uint64 {
	g.state = g.a*invPow2(g.state) + g.b
	return g.state
}

// invPow2 returns the multiplicative inverse of odd x modulo 2^64 using
// Newton-Hensel iteration: each step doubles the number of correct
// low-order bits, so five iterations from a 5-bit-correct start suffice
// for 64 bits.
func invPow2(x uint64) uint64 {
	// 3*x ^ 2 is correct to 5 bits for odd x (classic trick).
	inv := 3 * x
	inv ^= 2
	for i := 0; i < 5; i++ {
		inv *= 2 - x*inv
	}
	return inv
}

// mix64 is a bijective 64-bit finalizer (splitmix64-style) used only for
// seed dispersion, not for output generation.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Prime is an inversive congruential generator with a prime modulus,
// x[n+1] = a*inv(x[n]) + b (mod p), with inv(0) defined as 0. It is the
// original Eichenauer-Lehn construction and is used in tests as an
// independent reference implementation.
type Prime struct {
	p, a, b uint64
	state   uint64
}

// DefaultPrime is the Mersenne prime 2^31-1, a standard ICG modulus.
const DefaultPrime uint64 = 1<<31 - 1

// NewPrime returns a prime-modulus ICG with modulus DefaultPrime and
// small classic parameters.
func NewPrime(seed uint64) *Prime {
	return NewPrimeParams(seed, DefaultPrime, 1288490188, 1)
}

// NewPrimeParams returns a prime-modulus ICG with explicit modulus and
// parameters. p must be prime for inverses to be well defined; callers
// are responsible for that (tests use small known primes).
func NewPrimeParams(seed, p, a, b uint64) *Prime {
	g := &Prime{p: p, a: a % p, b: b % p}
	g.Seed(seed)
	return g
}

// Seed resets the state to a value in [0, p).
func (g *Prime) Seed(seed uint64) { g.state = mix64(seed) % g.p }

// Uint64 advances the generator and returns the next value in [0, p).
func (g *Prime) Uint64() uint64 {
	g.state = (mulmod(g.a, invMod(g.state, g.p), g.p) + g.b) % g.p
	return g.state
}

// Modulus returns the generator's modulus p.
func (g *Prime) Modulus() uint64 { return g.p }

// invMod returns the multiplicative inverse of x modulo prime p, with
// inv(0) = 0 by the ICG convention, computed by Fermat's little theorem
// (x^(p-2) mod p).
func invMod(x, p uint64) uint64 {
	if x == 0 {
		return 0
	}
	return powmod(x, p-2, p)
}

// powmod returns b^e mod m using binary exponentiation with 128-bit-safe
// modular multiplication.
func powmod(b, e, m uint64) uint64 {
	r := uint64(1)
	b %= m
	for e > 0 {
		if e&1 == 1 {
			r = mulmod(r, b, m)
		}
		b = mulmod(b, b, m)
		e >>= 1
	}
	return r
}

// mulmod returns a*b mod m without overflow for m < 2^63, using the
// double-and-add method when the product would overflow 64 bits.
func mulmod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	if a == 0 || b <= (1<<63)/a {
		return a * b % m
	}
	var r uint64
	for b > 0 {
		if b&1 == 1 {
			r = (r + a) % m
		}
		a = (a + a) % m
		b >>= 1
	}
	return r
}
