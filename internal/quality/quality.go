// Package quality scores clustering output against the ground truth of
// a generated data set: did the run find each embedded cluster's
// subspace, how much of the cluster region does the reported cluster
// cover (the paper's "partially detected / thrown away as outliers"
// axis in Table 3), and how far off the reported boundaries are (the
// §3.2 boundary-accuracy claim for adaptive grids).
package quality

import (
	"math"

	"pmafia/internal/cluster"
	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/mafia"
)

// Match scores one ground-truth cluster against the best-matching
// reported cluster.
type Match struct {
	// TruthIndex identifies the ground-truth cluster.
	TruthIndex int
	// Found is the index into Result.Clusters of the best match, or -1
	// when nothing overlapped the truth subspace.
	Found int
	// DimsExact is true when the reported subspace is exactly the
	// truth subspace.
	DimsExact bool
	// DimPrecision and DimRecall measure subspace agreement.
	DimPrecision, DimRecall float64
	// VolumeRecall is the fraction of the truth region's volume
	// covered by the union of the reported cluster's boxes (its exact
	// DNF cover), so mass thrown away at the boundaries — the paper's
	// "detected the clusters only partially" — lowers it.
	// 1 = fully recovered.
	VolumeRecall float64
	// VolumeExcess is the reported volume relative to the truth volume
	// over shared dims; values well above 1 mean the cluster bled into
	// its surroundings.
	VolumeExcess float64
	// BoundaryError is the mean relative deviation of the reported
	// interval endpoints from the truth endpoints, averaged over
	// shared dims (0 = exact boundaries).
	BoundaryError float64
}

// Summary aggregates a whole run.
type Summary struct {
	Matches []Match
	// FoundClusters is the number of clusters the run reported.
	FoundClusters int
	// TruthClusters is the number embedded by the generator.
	TruthClusters int
	// AllSubspacesExact is true when every truth cluster matched a
	// reported cluster with exactly the right dims.
	AllSubspacesExact bool
	// MeanVolumeRecall averages VolumeRecall over truth clusters.
	MeanVolumeRecall float64
	// MeanBoundaryError averages BoundaryError over matched clusters.
	MeanBoundaryError float64
	// Spurious is the number of reported clusters that were not the
	// best match of any truth cluster.
	Spurious int
}

// Evaluate scores res against truth.
func Evaluate(res *mafia.Result, truth *datagen.Truth) Summary {
	s := Summary{
		FoundClusters:     len(res.Clusters),
		TruthClusters:     len(truth.Clusters),
		AllSubspacesExact: true,
	}
	used := make(map[int]bool)
	for ti, tc := range truth.Clusters {
		m := matchOne(res, ti, tc)
		if m.Found >= 0 {
			used[m.Found] = true
		}
		if !m.DimsExact {
			s.AllSubspacesExact = false
		}
		s.Matches = append(s.Matches, m)
	}
	nMatched := 0
	for _, m := range s.Matches {
		s.MeanVolumeRecall += m.VolumeRecall
		if m.Found >= 0 {
			s.MeanBoundaryError += m.BoundaryError
			nMatched++
		}
	}
	if len(s.Matches) > 0 {
		s.MeanVolumeRecall /= float64(len(s.Matches))
	}
	if nMatched > 0 {
		s.MeanBoundaryError /= float64(nMatched)
	}
	s.Spurious = len(res.Clusters) - len(used)
	return s
}

// truthExtent returns the bounding interval of the truth cluster in
// subspace position x (union over its boxes).
func truthExtent(tc datagen.Cluster, x int) dataset.Range {
	ext := tc.Boxes[0][x]
	for _, b := range tc.Boxes[1:] {
		if b[x].Lo < ext.Lo {
			ext.Lo = b[x].Lo
		}
		if b[x].Hi > ext.Hi {
			ext.Hi = b[x].Hi
		}
	}
	return ext
}

func matchOne(res *mafia.Result, ti int, tc datagen.Cluster) Match {
	m := Match{TruthIndex: ti, Found: -1}
	truthDims := map[int]int{} // data dim -> subspace position
	for x, d := range tc.Dims {
		truthDims[d] = x
	}
	bestScore := -1.0
	for ci := range res.Clusters {
		c := &res.Clusters[ci]
		shared := 0
		for _, d := range c.Dims {
			if _, ok := truthDims[int(d)]; ok {
				shared++
			}
		}
		if shared == 0 {
			continue
		}
		// Jaccard on dims, tie-broken by volume overlap.
		jaccard := float64(shared) / float64(len(c.Dims)+len(tc.Dims)-shared)
		bounds := c.Bounds(res.Grid)
		overlap := 1.0
		for x, d := range c.Dims {
			tx, ok := truthDims[int(d)]
			if !ok {
				continue
			}
			ext := truthExtent(tc, tx)
			inter := intersect(bounds[x], ext)
			overlap *= inter / ext.Width()
		}
		score := jaccard + 0.001*overlap
		if score > bestScore {
			bestScore = score
			m.Found = ci
		}
	}
	if m.Found < 0 {
		return m
	}
	c := &res.Clusters[m.Found]
	bounds := c.Bounds(res.Grid)
	shared := 0
	volExcess := 1.0
	boundaryErr := 0.0
	for x, d := range c.Dims {
		tx, ok := truthDims[int(d)]
		if !ok {
			continue
		}
		shared++
		ext := truthExtent(tc, tx)
		volExcess *= bounds[x].Width() / ext.Width()
		boundaryErr += (math.Abs(bounds[x].Lo-ext.Lo) + math.Abs(bounds[x].Hi-ext.Hi)) / (2 * ext.Width())
	}
	m.DimPrecision = float64(shared) / float64(len(c.Dims))
	m.DimRecall = float64(shared) / float64(len(tc.Dims))
	m.DimsExact = shared == len(tc.Dims) && shared == len(c.Dims)
	if shared > 0 {
		m.BoundaryError = boundaryErr / float64(shared)
	}
	m.VolumeRecall = boxRecall(c, res.Grid, truthDims, tc)
	m.VolumeExcess = volExcess
	return m
}

// boxRecall sums, over the cluster's (disjoint) cover boxes, the
// fraction of the truth region each box captures: the intersection
// ratio in every shared dimension times the box's domain fraction in
// every reported-but-not-truth dimension (an extra dimension restricts
// which slice of the truth cluster the box can cover).
func boxRecall(c *cluster.Cluster, g *grid.Grid, truthDims map[int]int, tc datagen.Cluster) float64 {
	total := 0.0
	for _, box := range c.Boxes {
		frac := 1.0
		for x, d := range c.Dims {
			bins := g.Dims[d].Bins
			bb := dataset.Range{
				Lo: bins[box.BinLo[x]].Bounds.Lo,
				Hi: bins[box.BinHi[x]].Bounds.Hi,
			}
			if tx, ok := truthDims[int(d)]; ok {
				ext := truthExtent(tc, tx)
				frac *= intersect(bb, ext) / ext.Width()
			} else {
				frac *= bb.Width() / g.Dims[d].Domain.Width()
			}
		}
		total += frac
	}
	if total > 1 {
		total = 1
	}
	return total
}

func intersect(a, b dataset.Range) float64 {
	lo := math.Max(a.Lo, b.Lo)
	hi := math.Min(a.Hi, b.Hi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}
