package quality

import (
	"testing"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/mafia"
)

func run(t *testing.T, spec datagen.Spec, cfg mafia.Config) (*mafia.Result, *datagen.Truth) {
	t.Helper()
	m, truth, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mafia.Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, truth
}

func TestEvaluatePerfectRecovery(t *testing.T) {
	spec := datagen.Spec{
		Dims:    8,
		Records: 8000,
		Clusters: []datagen.Cluster{
			datagen.UniformBox([]int{1, 4, 6}, []dataset.Range{{Lo: 20, Hi: 35}, {Lo: 50, Hi: 65}, {Lo: 5, Hi: 20}}, 0),
		},
		Seed: 21,
	}
	res, truth := run(t, spec, mafia.Config{})
	s := Evaluate(res, truth)
	if s.TruthClusters != 1 {
		t.Fatalf("truth clusters = %d", s.TruthClusters)
	}
	m := s.Matches[0]
	if m.Found < 0 {
		t.Fatal("no match found")
	}
	if !m.DimsExact {
		t.Errorf("dims not exact: precision %.2f recall %.2f", m.DimPrecision, m.DimRecall)
	}
	if m.VolumeRecall < 0.9 {
		t.Errorf("volume recall %.3f, want >= 0.9", m.VolumeRecall)
	}
	if m.BoundaryError > 0.1 {
		t.Errorf("boundary error %.3f, want <= 0.1 (adaptive grids hug the cluster)", m.BoundaryError)
	}
	if !s.AllSubspacesExact {
		t.Error("AllSubspacesExact = false")
	}
}

func TestEvaluateNoClustersFound(t *testing.T) {
	// Uniform data with a truth cluster claim that the run won't find:
	// construct truth manually.
	m, _, err := datagen.Generate(datagen.Spec{Dims: 4, Records: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	truth := &datagen.Truth{Clusters: []datagen.Cluster{
		datagen.UniformBox([]int{0, 1}, []dataset.Range{{Lo: 10, Hi: 20}, {Lo: 10, Hi: 20}}, 0),
	}}
	s := Evaluate(res, truth)
	if s.Matches[0].Found >= 0 && s.Matches[0].DimsExact {
		t.Error("uniform data should not match the fabricated truth exactly")
	}
	if s.AllSubspacesExact {
		t.Error("AllSubspacesExact should be false")
	}
}

func TestEvaluateCountsSpurious(t *testing.T) {
	spec := datagen.Spec{
		Dims:    6,
		Records: 6000,
		Clusters: []datagen.Cluster{
			datagen.UniformBox([]int{0, 2}, []dataset.Range{{Lo: 10, Hi: 25}, {Lo: 10, Hi: 25}}, 0),
		},
		Seed: 22,
	}
	res, truth := run(t, spec, mafia.Config{})
	s := Evaluate(res, truth)
	if s.Spurious != s.FoundClusters-1 && s.FoundClusters > 0 {
		t.Errorf("spurious = %d with %d found", s.Spurious, s.FoundClusters)
	}
}

func TestVolumeRecallPartialDetection(t *testing.T) {
	// CLIQUE with coarse fixed bins loses cluster boundary mass: the
	// cluster [22,38) spans bins [20,30)+[30,40) partially; edge bins
	// may fall under the global threshold. VolumeRecall must reflect
	// any loss and stay in [0, 1].
	spec := datagen.Spec{
		Dims:    5,
		Records: 5000,
		Clusters: []datagen.Cluster{
			datagen.UniformBox([]int{1, 3}, []dataset.Range{{Lo: 22, Hi: 38}, {Lo: 52, Hi: 68}}, 0),
		},
		Seed: 23,
	}
	res, truth := run(t, spec, mafia.Config{Grid: mafia.UniformGrid, UniformBins: 10, UniformTau: 0.02})
	s := Evaluate(res, truth)
	m := s.Matches[0]
	if m.VolumeRecall < 0 || m.VolumeRecall > 1.000001 {
		t.Errorf("volume recall %v out of [0,1]", m.VolumeRecall)
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b dataset.Range
		want float64
	}{
		{dataset.Range{Lo: 0, Hi: 10}, dataset.Range{Lo: 5, Hi: 15}, 5},
		{dataset.Range{Lo: 0, Hi: 10}, dataset.Range{Lo: 10, Hi: 15}, 0},
		{dataset.Range{Lo: 0, Hi: 10}, dataset.Range{Lo: 2, Hi: 3}, 1},
		{dataset.Range{Lo: 5, Hi: 6}, dataset.Range{Lo: 0, Hi: 10}, 1},
	}
	for i, c := range cases {
		if got := intersect(c.a, c.b); got != c.want {
			t.Errorf("case %d: intersect = %v, want %v", i, got, c.want)
		}
	}
}

func TestAdaptiveBoundariesBeatCoarseUniform(t *testing.T) {
	// The §3.2 claim: adaptive grids report boundaries closer to the
	// true cluster than a coarse uniform grid.
	spec := datagen.Spec{
		Dims:    5,
		Records: 8000,
		Clusters: []datagen.Cluster{
			datagen.UniformBox([]int{0, 2}, []dataset.Range{{Lo: 23, Hi: 41}, {Lo: 57, Hi: 74}}, 0),
		},
		Seed: 24,
	}
	resA, truth := run(t, spec, mafia.Config{})
	resU, _ := run(t, spec, mafia.Config{Grid: mafia.UniformGrid, UniformBins: 5, UniformTau: 0.02})
	sA := Evaluate(resA, truth)
	sU := Evaluate(resU, truth)
	if sA.Matches[0].Found < 0 {
		t.Fatal("adaptive run found nothing")
	}
	if sU.Matches[0].Found >= 0 && sA.Matches[0].BoundaryError >= sU.Matches[0].BoundaryError {
		t.Errorf("adaptive boundary error %.3f not better than 5-bin uniform %.3f",
			sA.Matches[0].BoundaryError, sU.Matches[0].BoundaryError)
	}
}
