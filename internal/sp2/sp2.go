// Package sp2 is the distributed-memory message-passing machine pMAFIA
// runs on — the stand-in for the paper's 16-node IBM SP2 + MPI. SPMD
// bodies run one goroutine per rank and communicate only through the
// collectives a Comm provides (Reduce-style sums and ORs, broadcast,
// and gather-concatenate-broadcast), which is exactly the communication
// pattern Algorithms 2-6 in the paper use.
//
// The machine has two execution modes:
//
//   - Real: ranks run concurrently; collectives are plain
//     synchronization barriers. Timing is wall-clock. Use this on a
//     multicore host.
//
//   - Sim: ranks are serialized by an execution baton, so each rank's
//     compute time between communication points can be measured
//     honestly even on a single core; collectives advance every rank's
//     virtual clock to the global maximum plus a modeled communication
//     cost (ceil(log2 p) stages of latency + bytes/bandwidth, twice
//     that for gather+broadcast). The per-rank virtual clocks are the
//     basis of every speedup figure reproduced from the paper.
//
// Defaults for the cost model follow the paper's SP2 description
// (switch latency 29.3 µs — the paper prints "milliseconds", an
// evident typo for the SP2 switch — and 102 MB/s bandwidth).
package sp2

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pmafia/internal/faults"
	"pmafia/internal/obs"
)

// Mode selects between honest-virtual-time simulation and real
// concurrent execution.
type Mode int

const (
	// Sim serializes ranks and accounts virtual time (default).
	Sim Mode = iota
	// Real runs ranks concurrently and reports wall-clock time.
	Real
)

// Config describes the machine.
type Config struct {
	// Procs is the number of ranks p (>= 1).
	Procs int
	// Mode selects Sim (default) or Real execution.
	Mode Mode
	// LatencySec is the per-message-stage latency α. Default 29.3 µs.
	LatencySec float64
	// BandwidthBytesPerSec is the link bandwidth. Default 102 MB/s.
	BandwidthBytesPerSec float64
	// Recorder, when non-nil, receives the run's observability stream:
	// Run binds each rank's span clock to the machine (virtual time in
	// Sim mode, wall time in Real mode) and every collective charges its
	// modeled cost into the rank's innermost open span.
	Recorder *obs.Recorder
	// Ctx, when non-nil, cancels the run: cancellation poisons the
	// machine, releasing every rank blocked in a collective, and the
	// context's error is returned from Run.
	Ctx context.Context
	// CollectiveTimeout arms the failure detector: when some ranks have
	// been waiting in a collective for longer than this while others
	// never arrived, the machine is poisoned with a *RankError naming a
	// missing rank (wrapping ErrStalled) instead of hanging forever.
	// Zero disables detection — the paper's perfect-machine assumption.
	CollectiveTimeout time.Duration
	// Faults, when non-nil, is consulted at every collective entry and
	// injects deterministic rank crashes and stalls (see
	// internal/faults). Nil injects nothing.
	Faults *faults.Plan
}

func (c *Config) validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("sp2: Procs %d < 1", c.Procs)
	}
	if c.LatencySec == 0 {
		c.LatencySec = 29.3e-6
	}
	if c.BandwidthBytesPerSec == 0 {
		c.BandwidthBytesPerSec = 102e6
	}
	if c.LatencySec < 0 || c.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("sp2: invalid cost model (latency %v, bandwidth %v)", c.LatencySec, c.BandwidthBytesPerSec)
	}
	return nil
}

// CollectiveStats is the per-kind breakdown of one collective family.
type CollectiveStats struct {
	// Count is the number of collectives of this kind performed.
	Count int64
	// Bytes is the payload bytes moved, summed over collective stages.
	Bytes int64
	// Seconds is the modeled communication time charged.
	Seconds float64
}

// Collective kinds reported in Report.ByKind. The values are shared
// with the observability layer (obs spells per-kind counters and
// message events with the same strings).
const (
	KindReduce  = obs.KindReduce  // the Allreduce* family
	KindBcast   = obs.KindBcast   // BcastBytes
	KindGather  = obs.KindGather  // GatherConcatBcast
	KindBarrier = obs.KindBarrier // Barrier
)

// Report summarizes a finished run.
type Report struct {
	Procs int
	Mode  Mode
	// ParallelSeconds is the modeled parallel execution time: the
	// maximum rank virtual clock in Sim mode, wall-clock in Real mode.
	ParallelSeconds float64
	// RankSeconds is each rank's virtual clock (Sim mode only).
	RankSeconds []float64
	// CommSeconds is the total communication time charged (Sim mode).
	CommSeconds float64
	// BytesMoved counts payload bytes crossing the network, summed over
	// collective stages.
	BytesMoved int64
	// Collectives counts collective operations performed.
	Collectives int64
	// ByKind breaks the three aggregates above down per collective kind
	// (KindReduce, KindBcast, KindGather, KindBarrier).
	ByKind map[string]CollectiveStats
}

// ErrStalled is wrapped by the *RankError the failure detector raises
// when a rank fails to reach a collective within CollectiveTimeout.
var ErrStalled = errors.New("sp2: rank failed to reach collective (stall detected)")

// RankError is the typed failure of one rank: which rank failed, the
// observability phase it was in (empty without a Recorder), and the
// collective ordinal at which it failed. Every failed Run returns one —
// a panicking, erroring, or stalled rank surfaces as a RankError on all
// ranks instead of a hang or a process crash.
type RankError struct {
	// Rank is the failed rank's id.
	Rank int
	// Phase is the innermost open observability span on the rank when
	// it failed ("" when no Recorder is attached).
	Phase string
	// Collective is the 0-based ordinal of the collective the rank was
	// entering when it failed; for failures between collectives it is
	// the number of collectives the rank had entered.
	Collective int64
	// Err is the underlying cause.
	Err error
}

func (e *RankError) Error() string {
	if e.Phase != "" {
		return fmt.Sprintf("sp2: rank %d (phase %q, collective %d): %v", e.Rank, e.Phase, e.Collective, e.Err)
	}
	return fmt.Sprintf("sp2: rank %d (collective %d): %v", e.Rank, e.Collective, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// Recoverable reports whether a failed Run can sensibly be retried on
// a rebuilt machine: the failure is a typed per-rank fault (crash,
// panic, stall) rather than a deliberate cancellation or deadline.
// Supervised restart loops gate on this so a ^C is honored instead of
// respawned.
func Recoverable(err error) bool {
	var re *RankError
	if !errors.As(err, &re) {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

type machine struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	arrived   int
	arrivedAt time.Time
	present   []bool
	gen       uint64
	failed    error
	slotsB    [][]byte
	slotsI64  [][]int64
	slotsF64  [][]float64
	slotsBol  [][]bool
	slotsU64  [][]uint64
	outB      []byte
	outI64    []int64
	outF64    []float64
	outBol    []bool
	outU64    []uint64

	vclocks []float64
	// arriveClk[r] is rank r's clock reading when it entered the
	// current collective (Sim: virtual clock; Real: wall seconds since
	// start). Maintained only when a Recorder is attached; the combiner
	// snapshots it into the recorder's collective event.
	arriveClk []float64
	resumeAt  []time.Time
	commSec   float64
	bytes     int64
	colls     int64
	byKind    map[string]*CollectiveStats
	start     time.Time

	// seq[r] counts the collectives rank r has entered; written with
	// atomics by the owning rank, read by the watchdog and recovery.
	seq []int64
	// failCh is closed when the machine is poisoned, interrupting
	// injected stalls; finCh is closed when all ranks have returned,
	// stopping the watchdog.
	failCh chan struct{}
	finCh  chan struct{}

	baton chan struct{}
}

// Comm is one rank's endpoint. It is valid only inside the body passed
// to Run and must not be shared between ranks.
type Comm struct {
	m    *machine
	rank int
}

// Rank returns this rank's id in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks p.
func (c *Comm) Size() int { return c.m.cfg.Procs }

// abort carries a poisoned-machine signal through panics so that a
// failure on one rank releases every other rank.
type abort struct{ err error }

// Run executes body on every rank of a machine configured by cfg and
// returns the timing report. If any rank's body returns an error or
// panics, every rank is released and a *RankError identifying the
// failed rank is returned; with CollectiveTimeout set, a rank that
// never reaches a collective the others are waiting in is detected and
// reported the same way instead of deadlocking the machine.
func Run(cfg Config, body func(*Comm) error) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	p := cfg.Procs
	m := &machine{
		cfg:       cfg,
		slotsB:    make([][]byte, p),
		slotsI64:  make([][]int64, p),
		slotsF64:  make([][]float64, p),
		slotsBol:  make([][]bool, p),
		slotsU64:  make([][]uint64, p),
		vclocks:   make([]float64, p),
		arriveClk: make([]float64, p),
		resumeAt:  make([]time.Time, p),
		present:   make([]bool, p),
		seq:       make([]int64, p),
		byKind:    map[string]*CollectiveStats{},
		failCh:    make(chan struct{}),
		finCh:     make(chan struct{}),
		baton:     make(chan struct{}, 1),
	}
	m.cond = sync.NewCond(&m.mu)
	m.baton <- struct{}{}

	m.start = time.Now()
	if cfg.Recorder != nil {
		cfg.Recorder.BindRanks(p, m.now)
	}
	if cfg.Ctx != nil || cfg.CollectiveTimeout > 0 {
		go m.watchdog()
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{m: m, rank: rank}
			defer func() {
				if e := recover(); e != nil {
					if a, ok := e.(abort); ok {
						errs[rank] = a.err
						return
					}
					re, ok := e.(*RankError)
					if !ok {
						re = m.rankError(rank, fmt.Errorf("panic: %v", e))
					}
					errs[rank] = re
					m.poison(re)
				}
			}()
			c.beginCompute()
			err := body(c)
			c.endCompute()
			if err != nil {
				re := m.rankError(rank, err)
				errs[rank] = re
				m.poison(re)
			}
		}(r)
	}
	wg.Wait()
	close(m.finCh)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rep := &Report{
		Procs:       p,
		Mode:        cfg.Mode,
		RankSeconds: append([]float64(nil), m.vclocks...),
		CommSeconds: m.commSec,
		BytesMoved:  m.bytes,
		Collectives: m.colls,
		ByKind:      map[string]CollectiveStats{},
	}
	for kind, st := range m.byKind {
		rep.ByKind[kind] = *st
	}
	if cfg.Mode == Sim {
		for _, v := range m.vclocks {
			if v > rep.ParallelSeconds {
				rep.ParallelSeconds = v
			}
		}
	} else {
		rep.ParallelSeconds = time.Since(m.start).Seconds()
	}
	return rep, nil
}

// now returns rank's current clock reading in seconds: the virtual
// clock in Sim mode (valid only while the rank is inside its compute
// section, which is where instrumented code runs), wall time since the
// machine started in Real mode.
func (m *machine) now(rank int) float64 {
	if m.cfg.Mode != Sim {
		return time.Since(m.start).Seconds()
	}
	m.mu.Lock()
	v := m.vclocks[rank] + time.Since(m.resumeAt[rank]).Seconds()
	m.mu.Unlock()
	return v
}

// Now returns this rank's current clock reading in seconds (see
// machine.now). It is the time base of the observability layer's
// spans.
func (c *Comm) Now() float64 { return c.m.now(c.rank) }

// rankError wraps err with the rank's failure context: its current
// observability phase and how many collectives it had entered.
func (m *machine) rankError(rank int, err error) *RankError {
	return &RankError{
		Rank:       rank,
		Phase:      m.cfg.Recorder.CurrentPhase(rank),
		Collective: atomic.LoadInt64(&m.seq[rank]),
		Err:        err,
	}
}

// poison marks the machine failed and wakes all waiters.
func (m *machine) poison(err error) {
	m.mu.Lock()
	m.poisonLocked(err)
	m.mu.Unlock()
	// Drop a baton in so blocked acquirers wake up.
	select {
	case m.baton <- struct{}{}:
	default:
	}
}

// poisonLocked is poison's core; the caller holds m.mu.
func (m *machine) poisonLocked(err error) {
	if m.failed == nil {
		m.failed = err
		close(m.failCh) // interrupt injected stalls
	}
	m.cond.Broadcast()
}

// watchdog is the machine's failure detector: it poisons the machine
// when the run's context is cancelled, and — with CollectiveTimeout set
// — when a collective rendezvous has been partially assembled for
// longer than the timeout, which means at least one rank crashed
// silently, stalled, or deadlocked and will never arrive. The paper's
// SP2/MPI runs assume this can't happen; the detector turns the
// would-be hang into a *RankError naming a missing rank.
func (m *machine) watchdog() {
	var tick <-chan time.Time
	if m.cfg.CollectiveTimeout > 0 {
		interval := m.cfg.CollectiveTimeout / 4
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	var ctxDone <-chan struct{}
	if m.cfg.Ctx != nil {
		ctxDone = m.cfg.Ctx.Done()
	}
	for {
		select {
		case <-m.finCh:
			return
		case <-ctxDone:
			m.poison(m.cfg.Ctx.Err())
			ctxDone = nil // poisoned; keep draining ticks until finCh
		case <-tick:
			m.mu.Lock()
			if m.failed == nil && m.arrived > 0 && m.arrived < m.cfg.Procs &&
				time.Since(m.arrivedAt) > m.cfg.CollectiveTimeout {
				var missing []int
				for r, in := range m.present {
					if !in {
						missing = append(missing, r)
					}
				}
				err := &RankError{
					Rank:       missing[0],
					Phase:      m.cfg.Recorder.CurrentPhase(missing[0]),
					Collective: m.colls,
					Err: fmt.Errorf("ranks %v absent from collective %d after %v: %w",
						missing, m.colls, m.cfg.CollectiveTimeout, ErrStalled),
				}
				m.poisonLocked(err)
			}
			m.mu.Unlock()
		}
	}
}

// stall parks the rank for d, or until the machine is poisoned —
// whichever comes first — so an injected "dead rank" never outlives
// the run's failure detection.
func (c *Comm) stall(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.m.failCh:
	}
}

// beginCompute starts (or resumes) this rank's measured compute
// section: in Sim mode it acquires the execution baton.
func (c *Comm) beginCompute() {
	if c.m.cfg.Mode != Sim {
		return
	}
	<-c.m.baton
	c.m.mu.Lock()
	failed := c.m.failed
	c.m.resumeAt[c.rank] = time.Now()
	c.m.mu.Unlock()
	if failed != nil {
		// Put the baton back for other aborting ranks and bail.
		select {
		case c.m.baton <- struct{}{}:
		default:
		}
		panic(abort{failed})
	}
}

// endCompute stops the rank's compute timer and releases the baton.
func (c *Comm) endCompute() {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.m.mu.Lock()
	c.m.vclocks[c.rank] += time.Since(c.m.resumeAt[c.rank]).Seconds()
	c.m.mu.Unlock()
	select {
	case c.m.baton <- struct{}{}:
	default:
	}
}

// stages returns ceil(log2 p), the stage count of a tree collective.
func stages(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// collective runs one rendezvous: every rank deposits, the last arrival
// combines and charges the communication cost, then everyone collects.
// An injected fault fires here, after the rank leaves its compute
// section but before it joins the rendezvous — the window in which a
// real node dies or straggles "at" an MPI collective.
func (c *Comm) collective(kind string, msgBytes int, costStages float64, deposit, combine func(m *machine)) {
	m := c.m
	idx := atomic.AddInt64(&m.seq[c.rank], 1) - 1
	c.endCompute()
	if fk, d, ok := m.cfg.Faults.Collective(c.rank, idx); ok {
		switch fk {
		case faults.RankCrash:
			panic(&RankError{
				Rank:       c.rank,
				Phase:      m.cfg.Recorder.CurrentPhase(c.rank),
				Collective: idx,
				Err:        faults.ErrCrash,
			})
		case faults.RankStall:
			c.stall(d)
		}
	}

	m.mu.Lock()
	if m.failed != nil {
		m.mu.Unlock()
		panic(abort{m.failed})
	}
	deposit(m)
	if m.cfg.Recorder != nil {
		// Arrival clock for the message/critical-path event stream: the
		// rank's virtual clock (already advanced by endCompute above) in
		// Sim mode, wall time in Real mode.
		if m.cfg.Mode == Sim {
			m.arriveClk[c.rank] = m.vclocks[c.rank]
		} else {
			m.arriveClk[c.rank] = time.Since(m.start).Seconds()
		}
	}
	myGen := m.gen
	if m.arrived == 0 {
		m.arrivedAt = time.Now()
	}
	m.present[c.rank] = true
	m.arrived++
	if m.arrived == m.cfg.Procs {
		// A combine failure (e.g. mismatched vector lengths) must
		// poison the machine rather than unwind with the lock held,
		// which would strand the waiting ranks.
		func() {
			defer func() {
				if e := recover(); e != nil {
					err, ok := e.(abort)
					if !ok {
						err = abort{fmt.Errorf("sp2: combine panicked: %v", e)}
					}
					if m.failed == nil {
						m.failed = err.err
					}
				}
			}()
			combine(m)
		}()
		if m.failed != nil {
			m.cond.Broadcast()
			m.mu.Unlock()
			panic(abort{m.failed})
		}
		// Charge communication: everyone synchronizes to the maximum
		// virtual clock plus the modeled cost of the collective.
		cost := costStages * (m.cfg.LatencySec + float64(msgBytes)/m.cfg.BandwidthBytesPerSec)
		maxV := 0.0
		for _, v := range m.vclocks {
			if v > maxV {
				maxV = v
			}
		}
		for i := range m.vclocks {
			m.vclocks[i] = maxV + cost
		}
		stageBytes := int64(float64(msgBytes) * costStages)
		m.commSec += cost
		m.bytes += stageBytes
		m.colls++
		st := m.byKind[kind]
		if st == nil {
			st = &CollectiveStats{}
			m.byKind[kind] = st
		}
		st.Count++
		st.Bytes += stageBytes
		st.Seconds += cost
		if rec := m.cfg.Recorder; rec != nil {
			// Every rank is parked in this rendezvous, so charging the
			// cost into each rank's innermost open span is race-free:
			// the parked ranks reacquire m.mu before resuming.
			for r := 0; r < m.cfg.Procs; r++ {
				rec.Comm(r, kind, stageBytes, cost)
			}
			// One collective event with per-rank arrival clocks; the
			// recorder expands it into the per-stage tree messages the
			// Chrome trace draws as send→recv flow arrows. Start is the
			// last arrival (communication cannot begin earlier); Depart
			// is the synchronized clock every rank resumes at.
			start, depart := maxV, maxV+cost
			if m.cfg.Mode != Sim {
				// Real-mode collectives are plain barriers: the window
				// is the wall instant of the rendezvous, the cost a
				// model annotation.
				start = 0
				for _, at := range m.arriveClk {
					if at > start {
						start = at
					}
				}
				depart = time.Since(m.start).Seconds()
				if depart < start {
					depart = start
				}
			}
			rec.Collective(obs.CollRecord{
				Kind: kind, Steps: int(costStages),
				PayloadBytes: int64(msgBytes), Bytes: stageBytes,
				Seconds: cost,
				Arrive:  append([]float64(nil), m.arriveClk...),
				Start:   start, Depart: depart,
			})
		}
		m.arrived = 0
		for i := range m.present {
			m.present[i] = false
		}
		m.gen++
		m.cond.Broadcast()
	} else {
		for m.gen == myGen && m.failed == nil {
			m.cond.Wait()
		}
		if m.failed != nil {
			m.mu.Unlock()
			panic(abort{m.failed})
		}
	}
	m.mu.Unlock()

	c.beginCompute()
}

// Barrier synchronizes all ranks (and, in Sim mode, their clocks).
func (c *Comm) Barrier() {
	c.collective(KindBarrier, 0, stages(c.Size()), func(*machine) {}, func(*machine) {})
}

// AllreduceSumI64 replaces x on every rank with the element-wise sum of
// all ranks' x. All ranks must pass slices of identical length. This is
// the paper's Reduce-with-sum used for global histograms and CDU
// populations.
func (c *Comm) AllreduceSumI64(x []int64) {
	c.collective(KindReduce, 8*len(x), stages(c.Size()),
		func(m *machine) { m.slotsI64[c.rank] = x },
		func(m *machine) {
			out := make([]int64, len(x))
			for _, s := range m.slotsI64 {
				if len(s) != len(out) {
					panic(abort{fmt.Errorf("sp2: AllreduceSumI64 length mismatch: %d vs %d", len(s), len(out))})
				}
				for i, v := range s {
					out[i] += v
				}
			}
			m.outI64 = out
		})
	copy(x, c.m.outI64)
}

// AllreduceOrBool replaces x with the element-wise OR across ranks,
// used to merge the per-rank "combined" and "repeated" masks.
func (c *Comm) AllreduceOrBool(x []bool) {
	c.collective(KindReduce, len(x), stages(c.Size()),
		func(m *machine) { m.slotsBol[c.rank] = x },
		func(m *machine) {
			out := make([]bool, len(x))
			for _, s := range m.slotsBol {
				if len(s) != len(out) {
					panic(abort{fmt.Errorf("sp2: AllreduceOrBool length mismatch: %d vs %d", len(s), len(out))})
				}
				for i, v := range s {
					if v {
						out[i] = true
					}
				}
			}
			m.outBol = out
		})
	copy(x, c.m.outBol)
}

// AllreduceOrU64 replaces x with the element-wise bitwise OR across
// ranks — the bitset form of AllreduceOrBool. Packing marks 64 to the
// word cuts the collective payload 8x against the []bool encoding,
// which matters because the repeat-elimination masks scale with the
// raw CDU count.
func (c *Comm) AllreduceOrU64(x []uint64) {
	c.collective(KindReduce, 8*len(x), stages(c.Size()),
		func(m *machine) { m.slotsU64[c.rank] = x },
		func(m *machine) {
			out := make([]uint64, len(x))
			for _, s := range m.slotsU64 {
				if len(s) != len(out) {
					panic(abort{fmt.Errorf("sp2: AllreduceOrU64 length mismatch: %d vs %d", len(s), len(out))})
				}
				for i, v := range s {
					out[i] |= v
				}
			}
			m.outU64 = out
		})
	copy(x, c.m.outU64)
}

// GatherConcatBcast gathers every rank's byte payload on the parent,
// concatenates them in rank order, and broadcasts the result — the
// paper's pattern for assembling the global CDU dimension and bin
// arrays (Algorithm 3). Payloads may have different lengths.
func (c *Comm) GatherConcatBcast(local []byte) []byte {
	c.collective(KindGather, len(local), 2*stages(c.Size()),
		func(m *machine) { m.slotsB[c.rank] = local },
		func(m *machine) {
			total := 0
			for _, s := range m.slotsB {
				total += len(s)
			}
			out := make([]byte, 0, total)
			for _, s := range m.slotsB {
				out = append(out, s...)
			}
			m.outB = out
		})
	return append([]byte(nil), c.m.outB...)
}

// BcastBytes distributes root's payload to every rank; non-root ranks
// pass nil and receive a copy.
func (c *Comm) BcastBytes(root int, data []byte) []byte {
	size := 0
	if c.rank == root {
		size = len(data)
	}
	c.collective(KindBcast, size, stages(c.Size()),
		func(m *machine) {
			if c.rank == root {
				m.outB = data
			}
		},
		func(*machine) {})
	return append([]byte(nil), c.m.outB...)
}

// ChargeIO adds modeled I/O time to this rank's virtual clock in Sim
// mode (e.g. to model slower disks); it is a no-op in Real mode.
//
// Pipelined (prefetched) I/O needs no explicit charge: a diskio
// prefetch scanner reads in a background goroutine that runs freely
// while the rank computes (holding the baton) or waits in a
// collective, so only the time the rank spends *stalled* in
// Scanner.Next — the non-overlapped remainder of the I/O — accrues to
// its virtual clock. Fully hidden reads therefore cost the rank
// nothing, exactly the overlap model the paper's compute-bound
// scalability argument assumes; use ChargeIO only for I/O the machine
// should account as unoverlapped and explicitly modeled.
func (c *Comm) ChargeIO(seconds float64) {
	if c.m.cfg.Mode != Sim || seconds <= 0 {
		return
	}
	c.m.mu.Lock()
	c.m.vclocks[c.rank] += seconds
	c.m.mu.Unlock()
}

// AllreduceMaxF64 replaces x with the element-wise maximum across
// ranks.
func (c *Comm) AllreduceMaxF64(x []float64) {
	c.allreduceF64(x, func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	})
}

// AllreduceMinF64 replaces x with the element-wise minimum across
// ranks.
func (c *Comm) AllreduceMinF64(x []float64) {
	c.allreduceF64(x, func(a, b float64) float64 {
		if b < a {
			return b
		}
		return a
	})
}

func (c *Comm) allreduceF64(x []float64, op func(a, b float64) float64) {
	c.collective(KindReduce, 8*len(x), stages(c.Size()),
		func(m *machine) { m.slotsF64[c.rank] = x },
		func(m *machine) {
			out := append([]float64(nil), m.slotsF64[0]...)
			for _, s := range m.slotsF64[1:] {
				if len(s) != len(out) {
					panic(abort{fmt.Errorf("sp2: allreduceF64 length mismatch: %d vs %d", len(s), len(out))})
				}
				for i, v := range s {
					out[i] = op(out[i], v)
				}
			}
			m.outF64 = out
		})
	copy(x, c.m.outF64)
}
