package sp2

import (
	"math"
	"testing"

	"pmafia/internal/obs"
)

// TestReportByKind checks the per-collective-kind breakdown sums back
// to the aggregate totals.
func TestReportByKind(t *testing.T) {
	rep, err := Run(Config{Procs: 4}, func(c *Comm) error {
		c.AllreduceSumI64([]int64{1, 2})
		c.AllreduceMaxF64([]float64{1})
		c.Barrier()
		c.GatherConcatBcast([]byte{byte(c.Rank())})
		c.BcastBytes(0, []byte{1, 2, 3})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := map[string]int64{KindReduce: 2, KindBarrier: 1, KindGather: 1, KindBcast: 1}
	var colls, bytes int64
	var secs float64
	for kind, st := range rep.ByKind {
		if st.Count != wantCounts[kind] {
			t.Errorf("%s count = %d, want %d", kind, st.Count, wantCounts[kind])
		}
		colls += st.Count
		bytes += st.Bytes
		secs += st.Seconds
	}
	if colls != rep.Collectives {
		t.Errorf("per-kind counts sum to %d, Collectives = %d", colls, rep.Collectives)
	}
	if bytes != rep.BytesMoved {
		t.Errorf("per-kind bytes sum to %d, BytesMoved = %d", bytes, rep.BytesMoved)
	}
	if math.Abs(secs-rep.CommSeconds) > 1e-12 {
		t.Errorf("per-kind seconds sum to %v, CommSeconds = %v", secs, rep.CommSeconds)
	}
}

// TestSimSpansMatchVirtualClocks is the exactness guarantee: a span
// measured around a collective with a large modeled cost must see
// exactly that cost on the rank's virtual clock, not wall time.
func TestSimSpansMatchVirtualClocks(t *testing.T) {
	const p = 4
	const latency = 1.0 // 1 s/stage => barrier costs 2 s of virtual time
	rec := obs.New()
	rep, err := Run(Config{Procs: p, Mode: Sim, LatencySec: latency, Recorder: rec},
		func(c *Comm) error {
			s := c.Rank()
			sp := rec.Start(s, "comm-phase")
			c.Barrier()
			sp.End()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	wantCost := latency * stages(p)
	for rank := 0; rank < p; rank++ {
		spans := rec.Spans(rank)
		if len(spans) != 1 {
			t.Fatalf("rank %d recorded %d spans, want 1", rank, len(spans))
		}
		sp := spans[0]
		// The span's virtual duration is the modeled barrier cost plus
		// sub-millisecond real compute; wall time is microseconds, so a
		// tight tolerance separates the two regimes.
		if math.Abs(sp.Duration()-wantCost) > 0.05 {
			t.Errorf("rank %d span duration %v, want ~%v (virtual)", rank, sp.Duration(), wantCost)
		}
		if math.Abs(sp.CommSeconds-wantCost) > 1e-12 {
			t.Errorf("rank %d span comm %v, want %v", rank, sp.CommSeconds, wantCost)
		}
		// And the span end must agree with the rank's final clock.
		if math.Abs(sp.Stop-rep.RankSeconds[rank]) > 0.05 {
			t.Errorf("rank %d span stops at %v, RankSeconds %v", rank, sp.Stop, rep.RankSeconds[rank])
		}
	}
}

// TestRealModeRecorder drives the recorder from concurrently executing
// ranks (run under -race this proves the Real-mode path is safe) and
// checks wall-clock spans still nest and collect comm counters.
func TestRealModeRecorder(t *testing.T) {
	const p = 8
	rec := obs.New()
	_, err := Run(Config{Procs: p, Mode: Real, Recorder: rec}, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			sp := rec.Start(c.Rank(), "iter").SetLevel(i % 3)
			x := []int64{int64(c.Rank())}
			c.AllreduceSumI64(x)
			rec.Add(c.Rank(), "iters", 1)
			sp.End()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("iters"); got != p*50 {
		t.Errorf("iters = %d, want %d", got, p*50)
	}
	if got := rec.Counter("comm." + KindReduce + ".count"); got != int64(p)*50 {
		t.Errorf("comm.reduce.count = %d, want %d", got, p*50)
	}
	for rank := 0; rank < p; rank++ {
		for _, sp := range rec.Spans(rank) {
			if sp.Duration() < 0 {
				t.Fatalf("rank %d span %q has negative duration", rank, sp.Name)
			}
		}
	}
}
