package sp2

import (
	"math"
	"testing"

	"pmafia/internal/obs"
)

// TestReportByKind checks the per-collective-kind breakdown sums back
// to the aggregate totals.
func TestReportByKind(t *testing.T) {
	rep, err := Run(Config{Procs: 4}, func(c *Comm) error {
		c.AllreduceSumI64([]int64{1, 2})
		c.AllreduceMaxF64([]float64{1})
		c.Barrier()
		c.GatherConcatBcast([]byte{byte(c.Rank())})
		c.BcastBytes(0, []byte{1, 2, 3})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := map[string]int64{KindReduce: 2, KindBarrier: 1, KindGather: 1, KindBcast: 1}
	var colls, bytes int64
	var secs float64
	for kind, st := range rep.ByKind {
		if st.Count != wantCounts[kind] {
			t.Errorf("%s count = %d, want %d", kind, st.Count, wantCounts[kind])
		}
		colls += st.Count
		bytes += st.Bytes
		secs += st.Seconds
	}
	if colls != rep.Collectives {
		t.Errorf("per-kind counts sum to %d, Collectives = %d", colls, rep.Collectives)
	}
	if bytes != rep.BytesMoved {
		t.Errorf("per-kind bytes sum to %d, BytesMoved = %d", bytes, rep.BytesMoved)
	}
	if math.Abs(secs-rep.CommSeconds) > 1e-12 {
		t.Errorf("per-kind seconds sum to %v, CommSeconds = %v", secs, rep.CommSeconds)
	}
}

// TestSimSpansMatchVirtualClocks is the exactness guarantee: a span
// measured around a collective with a large modeled cost must see
// exactly that cost on the rank's virtual clock, not wall time.
func TestSimSpansMatchVirtualClocks(t *testing.T) {
	const p = 4
	const latency = 1.0 // 1 s/stage => barrier costs 2 s of virtual time
	rec := obs.New()
	rep, err := Run(Config{Procs: p, Mode: Sim, LatencySec: latency, Recorder: rec},
		func(c *Comm) error {
			s := c.Rank()
			sp := rec.Start(s, "comm-phase")
			c.Barrier()
			sp.End()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	wantCost := latency * stages(p)
	for rank := 0; rank < p; rank++ {
		spans := rec.Spans(rank)
		if len(spans) != 1 {
			t.Fatalf("rank %d recorded %d spans, want 1", rank, len(spans))
		}
		sp := spans[0]
		// The span's virtual duration is the modeled barrier cost plus
		// sub-millisecond real compute; wall time is microseconds, so a
		// tight tolerance separates the two regimes.
		if math.Abs(sp.Duration()-wantCost) > 0.05 {
			t.Errorf("rank %d span duration %v, want ~%v (virtual)", rank, sp.Duration(), wantCost)
		}
		if math.Abs(sp.CommSeconds-wantCost) > 1e-12 {
			t.Errorf("rank %d span comm %v, want %v", rank, sp.CommSeconds, wantCost)
		}
		// And the span end must agree with the rank's final clock.
		if math.Abs(sp.Stop-rep.RankSeconds[rank]) > 0.05 {
			t.Errorf("rank %d span stops at %v, RankSeconds %v", rank, sp.Stop, rep.RankSeconds[rank])
		}
	}
}

// TestCollectiveEventsRecorded checks the machine's event stream: one
// CollEvent per collective in machine order, arrival clocks for every
// rank, and synthesized messages whose src/dst/window are consistent
// with the collective they belong to.
func TestCollectiveEventsRecorded(t *testing.T) {
	const p = 4
	rec := obs.New()
	rep, err := Run(Config{Procs: p, Mode: Sim, Recorder: rec}, func(c *Comm) error {
		c.AllreduceSumI64([]int64{int64(c.Rank())})
		c.BcastBytes(0, []byte{1, 2, 3, 4})
		c.GatherConcatBcast([]byte{byte(c.Rank())})
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	colls := rec.Collectives()
	wantKinds := []string{KindReduce, KindBcast, KindGather, KindBarrier}
	if len(colls) != len(wantKinds) {
		t.Fatalf("%d collective events, want %d", len(colls), len(wantKinds))
	}
	var secs float64
	var bytes int64
	for i, ce := range colls {
		if ce.Seq != i || ce.Kind != wantKinds[i] {
			t.Errorf("event %d: seq %d kind %q, want %d/%q", i, ce.Seq, ce.Kind, i, wantKinds[i])
		}
		if len(ce.Arrive) != p {
			t.Errorf("event %d: %d arrival clocks, want %d", i, len(ce.Arrive), p)
		}
		wantSteps := int(stages(p))
		if ce.Kind == KindGather {
			wantSteps *= 2
		}
		if ce.Steps != wantSteps {
			t.Errorf("event %d (%s): %d steps, want %d", i, ce.Kind, ce.Steps, wantSteps)
		}
		// The communication window sits on the synchronized clock: it
		// opens at the last arrival and spans the modeled cost.
		maxArrive := 0.0
		for _, at := range ce.Arrive {
			if at > maxArrive {
				maxArrive = at
			}
		}
		if math.Abs(ce.Start-maxArrive) > 1e-9 {
			t.Errorf("event %d: start %v, last arrival %v", i, ce.Start, maxArrive)
		}
		if math.Abs((ce.Depart-ce.Start)-ce.Seconds) > 1e-9 {
			t.Errorf("event %d: window %v, modeled cost %v", i, ce.Depart-ce.Start, ce.Seconds)
		}
		secs += ce.Seconds
		bytes += ce.Bytes
	}
	if math.Abs(secs-rep.CommSeconds) > 1e-9 {
		t.Errorf("event seconds sum to %v, report CommSeconds %v", secs, rep.CommSeconds)
	}
	if bytes != rep.BytesMoved {
		t.Errorf("event bytes sum to %d, report BytesMoved %d", bytes, rep.BytesMoved)
	}

	// reduce 8 + bcast 3 + gather 6 + barrier 8 messages at p=4.
	msgs := rec.Messages()
	if len(msgs) != 25 {
		t.Errorf("%d messages, want 25", len(msgs))
	}
	ids := map[int64]bool{}
	for _, m := range msgs {
		if m.Src < 0 || m.Src >= p || m.Dst < 0 || m.Dst >= p || m.Src == m.Dst {
			t.Errorf("message %d: src %d dst %d", m.ID, m.Src, m.Dst)
		}
		if ids[m.ID] {
			t.Errorf("correlation id %d reused", m.ID)
		}
		ids[m.ID] = true
		ce := colls[m.Coll]
		if m.Kind != ce.Kind || m.Start < ce.Start-1e-9 || m.End > ce.Depart+1e-9 {
			t.Errorf("message %d escapes its collective: [%v,%v] vs [%v,%v] kind %s/%s",
				m.ID, m.Start, m.End, ce.Start, ce.Depart, m.Kind, ce.Kind)
		}
	}
}

// TestCriticalPathEqualsSimMakespan is the exactness acceptance check:
// the critical-path total reconstructed from the event DAG must equal
// the Sim report's virtual makespan.
func TestCriticalPathEqualsSimMakespan(t *testing.T) {
	const p = 4
	rec := obs.New()
	rep, err := Run(Config{Procs: p, Mode: Sim, Recorder: rec}, func(c *Comm) error {
		sp := rec.Start(c.Rank(), "work")
		// Unequal compute per rank so arrival imbalance is real.
		sum := 0.0
		for i := 0; i < (c.Rank()+1)*20000; i++ {
			sum += float64(i)
		}
		_ = sum
		c.AllreduceSumI64([]int64{1})
		c.Barrier()
		sp.End()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := rec.CriticalPath(rep.RankSeconds)
	if math.Abs(cp.Total-rep.ParallelSeconds) > 1e-9 {
		t.Errorf("critical-path total %v, Sim makespan %v", cp.Total, rep.ParallelSeconds)
	}
	if math.Abs(cp.Total-(cp.ComputeSeconds+cp.CommSeconds)) > 1e-12 {
		t.Errorf("total %v != compute %v + comm %v", cp.Total, cp.ComputeSeconds, cp.CommSeconds)
	}
	if math.Abs(cp.CommSeconds-rep.CommSeconds) > 1e-9 {
		t.Errorf("critical-path comm %v, report comm %v", cp.CommSeconds, rep.CommSeconds)
	}
	if cp.Collectives != int(rep.Collectives) {
		t.Errorf("critical path walked %d collectives, report has %d", cp.Collectives, rep.Collectives)
	}
}

// TestRealModeCollectiveEvents: in Real mode arrival clocks are wall
// times; the invariants are weaker (monotonicity, not exactness) but
// the event stream must still be complete and well-formed.
func TestRealModeCollectiveEvents(t *testing.T) {
	const p = 4
	rec := obs.New()
	_, err := Run(Config{Procs: p, Mode: Real, Recorder: rec}, func(c *Comm) error {
		c.AllreduceSumI64([]int64{1})
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	colls := rec.Collectives()
	if len(colls) != 2 {
		t.Fatalf("%d collective events, want 2", len(colls))
	}
	for i, ce := range colls {
		if len(ce.Arrive) != p {
			t.Errorf("event %d: %d arrivals, want %d", i, len(ce.Arrive), p)
		}
		for rank, at := range ce.Arrive {
			if at < 0 {
				t.Errorf("event %d: rank %d arrival %v < 0", i, rank, at)
			}
			if at > ce.Depart {
				t.Errorf("event %d: rank %d arrives at %v after depart %v", i, rank, at, ce.Depart)
			}
		}
		if ce.Depart < ce.Start {
			t.Errorf("event %d: depart %v before start %v", i, ce.Depart, ce.Start)
		}
	}
}

// TestRealModeRecorder drives the recorder from concurrently executing
// ranks (run under -race this proves the Real-mode path is safe) and
// checks wall-clock spans still nest and collect comm counters.
func TestRealModeRecorder(t *testing.T) {
	const p = 8
	rec := obs.New()
	_, err := Run(Config{Procs: p, Mode: Real, Recorder: rec}, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			sp := rec.Start(c.Rank(), "iter").SetLevel(i % 3)
			x := []int64{int64(c.Rank())}
			c.AllreduceSumI64(x)
			rec.Add(c.Rank(), "iters", 1)
			sp.End()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("iters"); got != p*50 {
		t.Errorf("iters = %d, want %d", got, p*50)
	}
	if got := rec.Counter("comm." + KindReduce + ".count"); got != int64(p)*50 {
		t.Errorf("comm.reduce.count = %d, want %d", got, p*50)
	}
	for rank := 0; rank < p; rank++ {
		for _, sp := range rec.Spans(rank) {
			if sp.Duration() < 0 {
				t.Fatalf("rank %d span %q has negative duration", rank, sp.Name)
			}
		}
	}
}
