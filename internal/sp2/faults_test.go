package sp2

import (
	"context"
	"errors"
	"testing"
	"time"

	"pmafia/internal/faults"
	"pmafia/internal/obs"
)

// matrixDeadline bounds every fault-matrix run: a correct machine
// surfaces any injected fault as a typed error well inside it.
const matrixDeadline = 30 * time.Second

// runWithDeadline runs Run in a goroutine and fails the test if it does
// not return within matrixDeadline — the "zero hangs" guarantee.
func runWithDeadline(t *testing.T, cfg Config, body func(*Comm) error) (*Report, error) {
	t.Helper()
	type out struct {
		rep *Report
		err error
	}
	done := make(chan out, 1)
	go func() {
		rep, err := Run(cfg, body)
		done <- out{rep, err}
	}()
	select {
	case o := <-done:
		return o.rep, o.err
	case <-time.After(matrixDeadline):
		t.Fatalf("machine hung: Run did not return within %v", matrixDeadline)
		return nil, nil
	}
}

// barrierBody runs a fixed number of barriers — enough collectives for
// any injected fault index used in the matrix to be reached.
func barrierBody(n int) func(*Comm) error {
	return func(c *Comm) error {
		for i := 0; i < n; i++ {
			c.Barrier()
		}
		return nil
	}
}

// TestFaultMatrixRankCrash injects a crash on a chosen rank at a chosen
// collective in both machine modes: the run must terminate with a
// *RankError carrying the rank id and collective index, on every rank,
// with no process crash.
func TestFaultMatrixRankCrash(t *testing.T) {
	for _, mode := range []Mode{Sim, Real} {
		plan := faults.New(0, faults.Fault{Kind: faults.RankCrash, Rank: 1, Index: 2})
		cfg := Config{Procs: 4, Mode: mode, Faults: plan}
		_, err := runWithDeadline(t, cfg, barrierBody(5))
		if err == nil {
			t.Fatalf("mode %v: injected crash surfaced no error", mode)
		}
		var re *RankError
		if !errors.As(err, &re) {
			t.Fatalf("mode %v: error %v (%T) is not a *RankError", mode, err, err)
		}
		if re.Rank != 1 || re.Collective != 2 {
			t.Errorf("mode %v: RankError rank=%d coll=%d, want rank=1 coll=2", mode, re.Rank, re.Collective)
		}
		if !errors.Is(err, faults.ErrCrash) {
			t.Errorf("mode %v: error %v does not wrap faults.ErrCrash", mode, err)
		}
	}
}

// TestFaultMatrixRankStall injects an indefinite stall: without the
// failure detector this deadlocks; with CollectiveTimeout armed the run
// must terminate within its deadline and name the stalled rank.
func TestFaultMatrixRankStall(t *testing.T) {
	for _, mode := range []Mode{Sim, Real} {
		plan := faults.New(0, faults.Fault{Kind: faults.RankStall, Rank: 2, Index: 1})
		cfg := Config{Procs: 3, Mode: mode, Faults: plan, CollectiveTimeout: 200 * time.Millisecond}
		start := time.Now()
		_, err := runWithDeadline(t, cfg, barrierBody(4))
		if err == nil {
			t.Fatalf("mode %v: stalled rank surfaced no error", mode)
		}
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("mode %v: error %v does not wrap ErrStalled", mode, err)
		}
		var re *RankError
		if !errors.As(err, &re) {
			t.Fatalf("mode %v: %T is not a *RankError", mode, err)
		}
		if re.Rank != 2 {
			t.Errorf("mode %v: stalled rank reported as %d, want 2", mode, re.Rank)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("mode %v: detection took %v", mode, elapsed)
		}
	}
}

// TestFaultMatrixStragglerRecovers: a finite stall shorter than the
// detection timeout is a straggler, not a failure — the run completes.
func TestFaultMatrixStragglerRecovers(t *testing.T) {
	for _, mode := range []Mode{Sim, Real} {
		plan := faults.New(0, faults.Fault{
			Kind: faults.RankStall, Rank: 0, Index: 0, Stall: 20 * time.Millisecond,
		})
		cfg := Config{Procs: 3, Mode: mode, Faults: plan, CollectiveTimeout: 10 * time.Second}
		if _, err := runWithDeadline(t, cfg, barrierBody(3)); err != nil {
			t.Errorf("mode %v: straggler killed the run: %v", mode, err)
		}
	}
}

// TestRealModePanicYieldsRankError is the -race hardening proof: a rank
// body panicking mid-run in Real (concurrent) mode must release every
// other rank blocked in collectives and surface as a *RankError — not
// a hang, not a process crash.
func TestRealModePanicYieldsRankError(t *testing.T) {
	_, err := runWithDeadline(t, Config{Procs: 4, Mode: Real}, func(c *Comm) error {
		if c.Rank() == 2 {
			panic("rank 2 dies mid-run")
		}
		c.Barrier()
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("panicking rank surfaced no error")
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T) is not a *RankError", err, err)
	}
	if re.Rank != 2 {
		t.Errorf("RankError.Rank = %d, want 2", re.Rank)
	}
}

// TestBodyErrorWrappedAsRankError: a plain error returned by a rank
// body keeps working with errors.Is through the RankError wrapper.
func TestBodyErrorWrappedAsRankError(t *testing.T) {
	sentinel := errors.New("shard unreadable")
	_, err := Run(Config{Procs: 3}, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		c.Barrier()
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v lost the underlying cause", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("error %v is not a *RankError naming rank 1", err)
	}
}

// TestContextCancellationReleasesCollectives: cancelling the run's
// context must release ranks parked inside collectives and return the
// context's error.
func TestContextCancellationReleasesCollectives(t *testing.T) {
	for _, mode := range []Mode{Sim, Real} {
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(30*time.Millisecond, cancel)
		_, err := runWithDeadline(t, Config{Procs: 3, Mode: mode, Ctx: ctx}, func(c *Comm) error {
			for i := 0; ; i++ {
				c.Barrier()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mode %v: err = %v, want context.Canceled", mode, err)
		}
	}
}

// TestPreCancelledContext: an already-cancelled context fails fast
// without launching ranks.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := Run(Config{Procs: 2, Ctx: ctx}, func(c *Comm) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) || ran {
		t.Errorf("err=%v ran=%v", err, ran)
	}
}

// TestRankErrorCarriesPhase: with a Recorder attached, the RankError
// names the observability phase the rank failed in.
func TestRankErrorCarriesPhase(t *testing.T) {
	rec := obs.New()
	plan := faults.New(0, faults.Fault{Kind: faults.RankCrash, Rank: 0, Index: 0})
	_, err := runWithDeadline(t, Config{Procs: 2, Recorder: rec, Faults: plan}, func(c *Comm) error {
		sp := rec.Start(c.Rank(), "populate")
		defer sp.End()
		c.Barrier()
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *RankError", err)
	}
	if re.Phase != "populate" {
		t.Errorf("RankError.Phase = %q, want %q", re.Phase, "populate")
	}
}

// TestFaultPlanFromSpec drives the machine with a CLI-style parsed
// spec, the reproduction path cmd/pmafia -faults uses.
func TestFaultPlanFromSpec(t *testing.T) {
	plan, err := faults.Parse("crash:rank=0,coll=1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = runWithDeadline(t, Config{Procs: 2, Faults: plan}, barrierBody(3))
	if !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("err = %v, want injected crash", err)
	}
}
