package sp2

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Procs: 0}, func(*Comm) error { return nil }); err == nil {
		t.Error("Procs=0: want error")
	}
	if _, err := Run(Config{Procs: 2, LatencySec: -1}, func(*Comm) error { return nil }); err == nil {
		t.Error("negative latency: want error")
	}
}

func TestRankAndSize(t *testing.T) {
	const p = 4
	seen := make([]bool, p)
	_, err := Run(Config{Procs: p}, func(c *Comm) error {
		if c.Size() != p {
			return fmt.Errorf("Size = %d", c.Size())
		}
		seen[c.Rank()] = true // Sim mode serializes; safe
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range seen {
		if !s {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestAllreduceSumI64(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		_, err := Run(Config{Procs: p}, func(c *Comm) error {
			x := []int64{int64(c.Rank()), 1, int64(c.Rank() * 10)}
			c.AllreduceSumI64(x)
			wantSum0 := int64(p * (p - 1) / 2)
			if x[0] != wantSum0 || x[1] != int64(p) || x[2] != wantSum0*10 {
				return fmt.Errorf("p=%d rank %d: sum = %v", p, c.Rank(), x)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
}

func TestAllreduceOrBool(t *testing.T) {
	const p = 4
	_, err := Run(Config{Procs: p}, func(c *Comm) error {
		x := make([]bool, p+1)
		x[c.Rank()] = true // each rank sets its own flag
		c.AllreduceOrBool(x)
		for r := 0; r < p; r++ {
			if !x[r] {
				return fmt.Errorf("rank %d: OR lost flag %d", c.Rank(), r)
			}
		}
		if x[p] {
			return fmt.Errorf("rank %d: OR invented flag", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestAllreduceRepeated(t *testing.T) {
	// Consecutive collectives must not bleed results into each other.
	_, err := Run(Config{Procs: 3}, func(c *Comm) error {
		for round := 1; round <= 5; round++ {
			x := []int64{int64(round)}
			c.AllreduceSumI64(x)
			if x[0] != int64(3*round) {
				return fmt.Errorf("round %d: got %d", round, x[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestGatherConcatBcastOrder(t *testing.T) {
	const p = 4
	_, err := Run(Config{Procs: p}, func(c *Comm) error {
		// Rank r contributes r+1 bytes of value r.
		local := make([]byte, c.Rank()+1)
		for i := range local {
			local[i] = byte(c.Rank())
		}
		out := c.GatherConcatBcast(local)
		want := 0
		for r := 0; r < p; r++ {
			want += r + 1
		}
		if len(out) != want {
			return fmt.Errorf("len = %d, want %d", len(out), want)
		}
		idx := 0
		for r := 0; r < p; r++ {
			for i := 0; i <= r; i++ {
				if out[idx] != byte(r) {
					return fmt.Errorf("out[%d] = %d, want %d (rank order violated)", idx, out[idx], r)
				}
				idx++
			}
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestBcastBytes(t *testing.T) {
	_, err := Run(Config{Procs: 3}, func(c *Comm) error {
		var data []byte
		if c.Rank() == 1 {
			data = []byte{5, 6, 7}
		}
		got := c.BcastBytes(1, data)
		if len(got) != 3 || got[0] != 5 || got[2] != 7 {
			return fmt.Errorf("rank %d: bcast got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestBarrier(t *testing.T) {
	_, err := Run(Config{Procs: 4}, func(c *Comm) error {
		for i := 0; i < 3; i++ {
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(Config{Procs: 4}, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		// Other ranks block in a collective; the error must release them.
		c.Barrier()
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
}

func TestPanicPropagates(t *testing.T) {
	_, err := Run(Config{Procs: 3}, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("want error from panic")
	}
}

func TestLengthMismatchFails(t *testing.T) {
	_, err := Run(Config{Procs: 2}, func(c *Comm) error {
		x := make([]int64, 1+c.Rank()) // deliberately mismatched
		c.AllreduceSumI64(x)
		return nil
	})
	if err == nil {
		t.Fatal("mismatched Allreduce lengths: want error")
	}
}

func busyWork(iters int) float64 {
	s := 0.0
	for i := 0; i < iters; i++ {
		s += math.Sqrt(float64(i))
	}
	return s
}

func TestSimSpeedupOfDataParallelWork(t *testing.T) {
	// Total work fixed; each rank performs 1/p of it. The simulated
	// parallel time must shrink roughly like 1/p.
	const total = 8_000_000
	timeFor := func(p int) float64 {
		rep, err := Run(Config{Procs: p}, func(c *Comm) error {
			if busyWork(total/p) < 0 {
				return errors.New("impossible")
			}
			c.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ParallelSeconds
	}
	t1 := timeFor(1)
	t4 := timeFor(4)
	speedup := t1 / t4
	if speedup < 2.5 || speedup > 6 {
		t.Errorf("sim speedup on 4 ranks = %.2f, want ~4", speedup)
	}
}

func TestSimChargesCommCost(t *testing.T) {
	const p = 4
	lat := 1e-3
	bw := 1e6
	rep, err := Run(Config{Procs: p, LatencySec: lat, BandwidthBytesPerSec: bw}, func(c *Comm) error {
		x := make([]int64, 1000) // 8000 bytes
		c.AllreduceSumI64(x)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCost := stages(p) * (lat + 8000/bw)
	if math.Abs(rep.CommSeconds-wantCost) > 1e-9 {
		t.Errorf("CommSeconds = %v, want %v", rep.CommSeconds, wantCost)
	}
	if rep.Collectives != 1 {
		t.Errorf("Collectives = %d, want 1", rep.Collectives)
	}
	if rep.BytesMoved != int64(8000*stages(p)) {
		t.Errorf("BytesMoved = %d", rep.BytesMoved)
	}
	// Every rank's clock includes the comm cost.
	for r, v := range rep.RankSeconds {
		if v < wantCost {
			t.Errorf("rank %d clock %v < comm cost %v", r, v, wantCost)
		}
	}
}

func TestSingleRankNoComm(t *testing.T) {
	rep, err := Run(Config{Procs: 1}, func(c *Comm) error {
		x := []int64{42}
		c.AllreduceSumI64(x)
		if x[0] != 42 {
			return fmt.Errorf("p=1 allreduce changed value: %d", x[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommSeconds != 0 {
		t.Errorf("p=1 charged comm time %v", rep.CommSeconds)
	}
}

func TestRealModeCollectives(t *testing.T) {
	const p = 4
	rep, err := Run(Config{Procs: p, Mode: Real}, func(c *Comm) error {
		x := []int64{1}
		c.AllreduceSumI64(x)
		if x[0] != p {
			return fmt.Errorf("real mode sum = %d", x[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != Real || rep.ParallelSeconds <= 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestChargeIO(t *testing.T) {
	rep, err := Run(Config{Procs: 2}, func(c *Comm) error {
		c.ChargeIO(0.25)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParallelSeconds < 0.25 {
		t.Errorf("ParallelSeconds = %v, want >= 0.25", rep.ParallelSeconds)
	}
	if rep.ParallelSeconds > 1 {
		t.Errorf("ParallelSeconds = %v suspiciously large", rep.ParallelSeconds)
	}
}

func TestStages(t *testing.T) {
	cases := map[int]float64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 16: 4}
	for p, want := range cases {
		if got := stages(p); got != want {
			t.Errorf("stages(%d) = %v, want %v", p, got, want)
		}
	}
}

func BenchmarkAllreduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(Config{Procs: 4}, func(c *Comm) error {
			x := make([]int64, 256)
			c.AllreduceSumI64(x)
			return nil
		})
	}
}
