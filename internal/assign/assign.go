// Package assign compiles a fitted clustering result (the grid plus
// the clusters' DNF box covers) into a flat lookup index for batch
// record labeling.
//
// The linear oracle (mafia.Result.AssignRecord) tests every cluster's
// every cover box against the record — O(clusters·boxes·k) bin
// lookups per record. The index instead enumerates all cover boxes
// once, in cluster order, and stores for every (dimension, bin) the
// bitset of boxes a record falling in that bin can still satisfy
// (all-ones for dimensions a box does not constrain). Labeling a
// record is then d bin lookups — BinOf's exact arithmetic followed by
// a direct fine-unit→bin table read — and a
// d-way bitset AND; because boxes are enumerated in cluster order,
// the first set bit of the intersection names the first matching
// cluster, reproducing the oracle's label bit for bit.
package assign

import (
	"fmt"
	"math/bits"

	"pmafia/internal/cluster"
	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/pool"
)

// dimTable is one dimension's compiled lookup state.
type dimTable struct {
	lo        float64 // domain low bound
	width     float64 // domain width
	fineUnits int
	nbins     int
	unitBin   []int32  // fine unit -> owning bin, fineUnits entries
	bits      []uint64 // nbins×words; bin b's candidate boxes at [b*words,(b+1)*words)
}

// Index labels records against a fixed set of clusters over a fixed
// grid. It is immutable after New and safe for concurrent use as long
// as each goroutine brings its own Scratch buffer.
type Index struct {
	dims       []dimTable
	words      int     // bitset words per bin: ceil(boxes/64)
	boxCluster []int32 // box index (bit position) -> cluster index
	clusters   int
}

// New compiles a grid and its clusters into an Index. The clusters
// must be consistent with the grid: subspace dims strictly ascending
// and in range, box bin runs within each dimension's bin count.
func New(g *grid.Grid, clusters []cluster.Cluster) (*Index, error) {
	if len(g.Dims) == 0 {
		return nil, fmt.Errorf("assign: grid has no dimensions")
	}
	nboxes := 0
	for _, c := range clusters {
		nboxes += len(c.Boxes)
	}
	words := (nboxes + 63) / 64
	ix := &Index{
		dims:       make([]dimTable, len(g.Dims)),
		words:      words,
		boxCluster: make([]int32, 0, nboxes),
		clusters:   len(clusters),
	}
	for di := range g.Dims {
		d := &g.Dims[di]
		nb := d.NumBins()
		if nb == 0 {
			return nil, fmt.Errorf("assign: dim %d has no bins", di)
		}
		t := dimTable{
			lo:        d.Domain.Lo,
			width:     d.Domain.Width(),
			fineUnits: d.FineUnits(),
			nbins:     nb,
			unitBin:   make([]int32, d.FineUnits()),
			bits:      make([]uint64, nb*words),
		}
		next := 0
		for bi, b := range d.Bins {
			if b.UnitLo != next || b.UnitHi <= b.UnitLo || b.UnitHi > t.fineUnits {
				return nil, fmt.Errorf("assign: dim %d: bin %d covers fine units [%d,%d), want a tiling from %d", di, bi, b.UnitLo, b.UnitHi, next)
			}
			for u := b.UnitLo; u < b.UnitHi; u++ {
				t.unitBin[u] = int32(bi)
			}
			next = b.UnitHi
		}
		if next != t.fineUnits {
			return nil, fmt.Errorf("assign: dim %d: bins cover %d fine units, grid has %d", di, next, t.fineUnits)
		}
		ix.dims[di] = t
	}

	// Enumerate cover boxes in cluster order and fill the per-bin
	// candidate bitsets.
	box := 0
	for ci := range clusters {
		c := &clusters[ci]
		for x, d := range c.Dims {
			if int(d) >= len(g.Dims) {
				return nil, fmt.Errorf("assign: cluster %d constrains dim %d, grid has %d dims", ci, d, len(g.Dims))
			}
			if x > 0 && c.Dims[x-1] >= d {
				return nil, fmt.Errorf("assign: cluster %d: subspace dims not strictly ascending", ci)
			}
		}
		for bi := range c.Boxes {
			b := &c.Boxes[bi]
			if len(b.BinLo) != len(c.Dims) || len(b.BinHi) != len(c.Dims) {
				return nil, fmt.Errorf("assign: cluster %d box %d spans %d dims, cluster subspace has %d", ci, bi, len(b.BinLo), len(c.Dims))
			}
			for x, d := range c.Dims {
				t := &ix.dims[d]
				lo, hi := int(b.BinLo[x]), int(b.BinHi[x])
				if lo > hi || hi >= t.nbins {
					return nil, fmt.Errorf("assign: cluster %d box %d: bin run [%d,%d] out of dim %d's %d bins", ci, bi, lo, hi, d, t.nbins)
				}
				for bin := lo; bin <= hi; bin++ {
					t.bits[bin*words+box/64] |= 1 << (box % 64)
				}
			}
			// Dimensions outside the cluster's subspace accept any bin.
			x := 0
			for di := range g.Dims {
				if x < len(c.Dims) && int(c.Dims[x]) == di {
					x++
					continue
				}
				t := &ix.dims[di]
				for bin := 0; bin < t.nbins; bin++ {
					t.bits[bin*words+box/64] |= 1 << (box % 64)
				}
			}
			ix.boxCluster = append(ix.boxCluster, int32(ci))
			box++
		}
	}
	return ix, nil
}

// Dims returns the record dimensionality the index labels.
func (ix *Index) Dims() int { return len(ix.dims) }

// Clusters returns the number of clusters the index labels against.
func (ix *Index) Clusters() int { return ix.clusters }

// Boxes returns the total number of cover boxes compiled into the
// index (the bitset width).
func (ix *Index) Boxes() int { return len(ix.boxCluster) }

// Scratch allocates a working buffer for AssignRecord/AssignChunk;
// concurrent callers need one buffer each.
func (ix *Index) Scratch() []uint64 { return make([]uint64, ix.words) }

// bin maps a value to its bin index with BinOf's exact arithmetic —
// the fine unit f with the same clamping (NaN and below-domain values
// to the first unit, at-or-above-domain to the last) — then reads the
// bin owning that unit from the fine-unit→bin table.
func (t *dimTable) bin(v float64) int {
	f := float64(t.fineUnits) * (v - t.lo) / t.width
	u := 0
	switch {
	case !(f > 0): // below domain, or NaN
	case f >= float64(t.fineUnits):
		u = t.fineUnits - 1
	default:
		u = int(f)
	}
	return int(t.unitBin[u])
}

// assign labels one record; and must have ix.words entries.
func (ix *Index) assign(rec []float64, and []uint64) int32 {
	if ix.words == 0 {
		return -1
	}
	t := &ix.dims[0]
	b := t.bin(rec[0])
	copy(and, t.bits[b*ix.words:(b+1)*ix.words])
	for di := 1; di < len(ix.dims); di++ {
		t := &ix.dims[di]
		b := t.bin(rec[di])
		row := t.bits[b*ix.words : (b+1)*ix.words]
		nz := uint64(0)
		for w := range and {
			and[w] &= row[w]
			nz |= and[w]
		}
		if nz == 0 {
			return -1
		}
	}
	for w, word := range and {
		if word != 0 {
			return ix.boxCluster[w*64+bits.TrailingZeros64(word)]
		}
	}
	return -1
}

// AssignRecord labels one record: the index of the first cluster
// containing it, or -1 for an outlier. scratch comes from Scratch.
func (ix *Index) AssignRecord(rec []float64, scratch []uint64) (int32, error) {
	if len(rec) != len(ix.dims) {
		return 0, fmt.Errorf("assign: %d-dim record, index labels %d dims", len(rec), len(ix.dims))
	}
	if len(scratch) < ix.words {
		return 0, fmt.Errorf("assign: scratch has %d words, index needs %d", len(scratch), ix.words)
	}
	return ix.assign(rec, scratch[:ix.words]), nil
}

// AssignChunk labels len(labels) records stored row-major in chunk
// (len(chunk) must be len(labels)*Dims()) without allocating; scratch
// comes from Scratch.
func (ix *Index) AssignChunk(chunk []float64, labels []int32, scratch []uint64) error {
	d := len(ix.dims)
	if len(chunk) != len(labels)*d {
		return fmt.Errorf("assign: chunk of %d values for %d %d-dim labels", len(chunk), len(labels), d)
	}
	if len(scratch) < ix.words {
		return fmt.Errorf("assign: scratch has %d words, index needs %d", len(scratch), ix.words)
	}
	and := scratch[:ix.words]
	for i := range labels {
		labels[i] = ix.assign(chunk[i*d:(i+1)*d], and)
	}
	return nil
}

// AssignSource labels every record of src in scan order, reading in
// chunks of chunkRecords and fanning each chunk across workers
// goroutines (workers <= 1 runs inline).
func (ix *Index) AssignSource(src dataset.Source, chunkRecords, workers int) ([]int32, error) {
	d := len(ix.dims)
	if src.Dims() != d {
		return nil, fmt.Errorf("assign: %d-dim source, index labels %d dims", src.Dims(), d)
	}
	if chunkRecords <= 0 {
		chunkRecords = 8192
	}
	if workers < 1 {
		workers = 1
	}
	labels := make([]int32, src.NumRecords())
	scratch := make([][]uint64, workers)
	for w := range scratch {
		scratch[w] = ix.Scratch()
	}
	n, err := pool.ScanOffset(src, chunkRecords, workers, func(w int, chunk []float64, base int64, lo, hi int) {
		and := scratch[w]
		out := labels[base+int64(lo) : base+int64(hi)]
		rows := chunk[lo*d : hi*d]
		for i := range out {
			out[i] = ix.assign(rows[i*d:(i+1)*d], and)
		}
	})
	if err != nil {
		return nil, err
	}
	return labels[:n], nil
}
