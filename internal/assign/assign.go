// Package assign compiles a fitted clustering result (the grid plus
// the clusters' DNF box covers) into a flat lookup index for batch
// record labeling.
//
// The linear oracle (mafia.Result.AssignRecord) tests every cluster's
// every cover box against the record — O(clusters·boxes·k) bin
// lookups per record. The index instead enumerates all cover boxes
// once, in cluster order, and stores for every (dimension, bin) the
// bitset of boxes a record falling in that bin can still satisfy
// (all-ones for dimensions a box does not constrain). Labeling a
// record is then d bin lookups — BinOf's exact arithmetic followed by
// a direct fine-unit→bin table read — and a
// d-way bitset AND; because boxes are enumerated in cluster order,
// the first set bit of the intersection names the first matching
// cluster, reproducing the oracle's label bit for bit.
//
// The hot path is a batch-of-records kernel: AssignChunk and
// AssignSource label BlockRecords records per outer iteration,
// dimension-major. Per dimension the table pointer is hoisted out of
// the record loop and the d-way AND is unrolled across the block, so
// a bin's bitset row and the boxCluster table are touched once per
// block while they are hot instead of re-sliced once per record; a
// per-block liveness word keeps the scalar path's early exit at
// per-record granularity. AssignRecord remains the scalar bit-identity
// oracle the kernels are property-tested against.
package assign

import (
	"fmt"
	"math/bits"

	"pmafia/internal/cluster"
	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/pool"
)

// dimTable is one dimension's compiled lookup state.
type dimTable struct {
	lo        float64 // domain low bound
	width     float64 // domain width
	fineF     float64 // float64(fineUnits), hoisted out of bin
	fineUnits int
	nbins     int
	unitBin   []uint16    // fine unit -> owning bin, fineUnits entries
	bits      []uint64    // nbins×words; bin b's candidate boxes at [b*words,(b+1)*words)
	bits2     [][2]uint64 // words==2 only: bits regrouped one row per bin
}

// Index labels records against a fixed set of clusters over a fixed
// grid. It is immutable after New and safe for concurrent use as long
// as each goroutine brings its own Scratch buffer.
type Index struct {
	dims       []dimTable
	words      int     // bitset words per bin: ceil(boxes/64)
	boxCluster []int32 // box index (bit position) -> cluster index
	clusters   int
}

// New compiles a grid and its clusters into an Index. The clusters
// must be consistent with the grid: subspace dims strictly ascending
// and in range, box bin runs within each dimension's bin count.
func New(g *grid.Grid, clusters []cluster.Cluster) (*Index, error) {
	if len(g.Dims) == 0 {
		return nil, fmt.Errorf("assign: grid has no dimensions")
	}
	nboxes := 0
	for _, c := range clusters {
		nboxes += len(c.Boxes)
	}
	words := (nboxes + 63) / 64
	ix := &Index{
		dims:       make([]dimTable, len(g.Dims)),
		words:      words,
		boxCluster: make([]int32, 0, nboxes),
		clusters:   len(clusters),
	}
	for di := range g.Dims {
		d := &g.Dims[di]
		nb := d.NumBins()
		if nb == 0 {
			return nil, fmt.Errorf("assign: dim %d has no bins", di)
		}
		if nb > 1<<16 {
			return nil, fmt.Errorf("assign: dim %d has %d bins, index supports at most %d", di, nb, 1<<16)
		}
		t := dimTable{
			lo:        d.Domain.Lo,
			width:     d.Domain.Width(),
			fineF:     float64(d.FineUnits()),
			fineUnits: d.FineUnits(),
			nbins:     nb,
			unitBin:   make([]uint16, d.FineUnits()),
			bits:      make([]uint64, nb*words),
		}
		next := 0
		for bi, b := range d.Bins {
			if b.UnitLo != next || b.UnitHi <= b.UnitLo || b.UnitHi > t.fineUnits {
				return nil, fmt.Errorf("assign: dim %d: bin %d covers fine units [%d,%d), want a tiling from %d", di, bi, b.UnitLo, b.UnitHi, next)
			}
			for u := b.UnitLo; u < b.UnitHi; u++ {
				t.unitBin[u] = uint16(bi)
			}
			next = b.UnitHi
		}
		if next != t.fineUnits {
			return nil, fmt.Errorf("assign: dim %d: bins cover %d fine units, grid has %d", di, next, t.fineUnits)
		}
		ix.dims[di] = t
	}

	// Enumerate cover boxes in cluster order and fill the per-bin
	// candidate bitsets.
	box := 0
	for ci := range clusters {
		c := &clusters[ci]
		for x, d := range c.Dims {
			if int(d) >= len(g.Dims) {
				return nil, fmt.Errorf("assign: cluster %d constrains dim %d, grid has %d dims", ci, d, len(g.Dims))
			}
			if x > 0 && c.Dims[x-1] >= d {
				return nil, fmt.Errorf("assign: cluster %d: subspace dims not strictly ascending", ci)
			}
		}
		for bi := range c.Boxes {
			b := &c.Boxes[bi]
			if len(b.BinLo) != len(c.Dims) || len(b.BinHi) != len(c.Dims) {
				return nil, fmt.Errorf("assign: cluster %d box %d spans %d dims, cluster subspace has %d", ci, bi, len(b.BinLo), len(c.Dims))
			}
			for x, d := range c.Dims {
				t := &ix.dims[d]
				lo, hi := int(b.BinLo[x]), int(b.BinHi[x])
				if lo > hi || hi >= t.nbins {
					return nil, fmt.Errorf("assign: cluster %d box %d: bin run [%d,%d] out of dim %d's %d bins", ci, bi, lo, hi, d, t.nbins)
				}
				for bin := lo; bin <= hi; bin++ {
					t.bits[bin*words+box/64] |= 1 << (box % 64)
				}
			}
			// Dimensions outside the cluster's subspace accept any bin.
			x := 0
			for di := range g.Dims {
				if x < len(c.Dims) && int(c.Dims[x]) == di {
					x++
					continue
				}
				t := &ix.dims[di]
				for bin := 0; bin < t.nbins; bin++ {
					t.bits[bin*words+box/64] |= 1 << (box % 64)
				}
			}
			ix.boxCluster = append(ix.boxCluster, int32(ci))
			box++
		}
	}
	// The two-word kernel indexes whole bin rows; regroup bits so a
	// row is one element (one bounds check, one 16-byte load).
	if words == 2 {
		for di := range ix.dims {
			t := &ix.dims[di]
			t.bits2 = make([][2]uint64, t.nbins)
			for b := range t.bits2 {
				t.bits2[b] = [2]uint64{t.bits[2*b], t.bits[2*b+1]}
			}
		}
	}
	return ix, nil
}

// Dims returns the record dimensionality the index labels.
func (ix *Index) Dims() int { return len(ix.dims) }

// Clusters returns the number of clusters the index labels against.
func (ix *Index) Clusters() int { return ix.clusters }

// Boxes returns the total number of cover boxes compiled into the
// index (the bitset width).
func (ix *Index) Boxes() int { return len(ix.boxCluster) }

// BlockRecords is the batch-kernel block width: AssignChunk and
// AssignSource label this many records per outer iteration, and the
// per-block liveness mask is one uint64, so the width is fixed at 64.
const BlockRecords = 64

// Scratch allocates a working buffer for AssignRecord/AssignChunk:
// one bitset accumulator per record of a full block (BlockRecords ×
// words). Concurrent callers need one buffer each — AssignSource
// allocates one per worker, so worker blocks can never alias.
func (ix *Index) Scratch() []uint64 { return make([]uint64, BlockRecords*ix.words) }

// scratchNeed returns the scratch words AssignChunk needs for n
// records: a full block's accumulators, or fewer when the whole chunk
// is shorter than one block.
func (ix *Index) scratchNeed(n int) int {
	if n > BlockRecords {
		n = BlockRecords
	}
	return n * ix.words
}

// bin maps a value to its bin index with BinOf's exact arithmetic —
// the fine unit f with the same clamping (NaN and below-domain values
// to the first unit, at-or-above-domain to the last) — then reads the
// bin owning that unit from the fine-unit→bin table.
func (t *dimTable) bin(v float64) int {
	f := t.fineF * (v - t.lo) / t.width
	u := 0
	switch {
	case !(f > 0): // below domain, or NaN
	case f >= t.fineF:
		u = t.fineUnits - 1
	default:
		u = int(f)
	}
	return int(t.unitBin[u])
}

// binUnit computes the clamped fine unit of f = fineF*(v-lo)/width
// against the unit table ub (the caller's local copy of unitBin, so
// the in-range guard doubles as the table's bounds check). It is
// bin's clamping restated for a straight-line hot path: int(f) is
// already the exact unit for every in-domain value including f in
// (0,1), so only out-of-range results — negative f, f >= fineF, and
// the implementation-defined conversions of NaN/±Inf — take the
// fixup branch, which re-derives the clamp from f itself the way bin
// does (NaN fails f > 0 and lands on unit 0).
func binUnit(f float64, ub []uint16) int {
	u := int(f)
	if uint(u) >= uint(len(ub)) {
		if f > 0 {
			u = len(ub) - 1
		} else {
			u = 0
		}
	}
	return u
}

// nzBit is 1<<63 when a is nonzero, 0 otherwise — the branch-free
// liveness bit the full-block kernels shift into their mask.
func nzBit(a uint64) uint64 {
	return (a | -a) & (1 << 63)
}

// assign labels one record; and must have ix.words entries.
func (ix *Index) assign(rec []float64, and []uint64) int32 {
	if ix.words == 0 {
		return -1
	}
	t := &ix.dims[0]
	b := t.bin(rec[0])
	copy(and, t.bits[b*ix.words:(b+1)*ix.words])
	for di := 1; di < len(ix.dims); di++ {
		t := &ix.dims[di]
		b := t.bin(rec[di])
		row := t.bits[b*ix.words : (b+1)*ix.words]
		nz := uint64(0)
		for w := range and {
			and[w] &= row[w]
			nz |= and[w]
		}
		if nz == 0 {
			return -1
		}
	}
	for w, word := range and {
		if word != 0 {
			return ix.boxCluster[w*64+bits.TrailingZeros64(word)]
		}
	}
	return -1
}

// assignBlock labels n (1..BlockRecords) records stored row-major in
// rows, writing labels[0:n]. scratch must have at least n*words
// entries. The kernel is dimension-major: each dimension's table is
// loaded once and applied to every record of the block, the liveness
// word dropping records whose candidate set emptied so they cost
// nothing on later dimensions — the per-record early exit of the
// scalar path, at block granularity. Label order, clamping, and
// tie-breaking are bit-identical to assign.
func (ix *Index) assignBlock(rows []float64, n int, labels []int32, scratch []uint64) {
	if ix.words == 0 {
		for r := 0; r < n; r++ {
			labels[r] = -1
		}
		return
	}
	switch ix.words {
	case 1:
		ix.assignBlock1(rows, n, labels, scratch)
	case 2:
		ix.assignBlock2(rows, n, labels, scratch)
	default:
		ix.assignBlockN(rows, n, labels, scratch)
	}
}

// assignBlock1 is the single-bitset-word kernel (up to 64 boxes): one
// accumulator word per record, no inner word loop, no copy. Full
// blocks take the specialized fast path; only a chunk's short tail
// block runs the generic loop.
func (ix *Index) assignBlock1(rows []float64, n int, labels []int32, scratch []uint64) {
	if n == BlockRecords {
		ix.assignBlock1Full((*[BlockRecords]uint64)(scratch), rows, (*[BlockRecords]int32)(labels))
		return
	}
	d := len(ix.dims)
	acc := scratch[:n]
	t := &ix.dims[0]
	live := uint64(0)
	for r := 0; r < n; r++ {
		a := t.bits[t.bin(rows[r*d])]
		acc[r] = a
		if a != 0 {
			live |= 1 << r
		}
	}
	for di := 1; di < d && live != 0; di++ {
		t := &ix.dims[di]
		for rem := live; rem != 0; {
			r := bits.TrailingZeros64(rem)
			rem &^= 1 << r
			a := acc[r] & t.bits[t.bin(rows[r*d+di])]
			acc[r] = a
			if a == 0 {
				live &^= 1 << r
			}
		}
	}
	for r := 0; r < n; r++ {
		if a := acc[r]; a != 0 {
			labels[r] = ix.boxCluster[bits.TrailingZeros64(a)]
		} else {
			labels[r] = -1
		}
	}
}

// assignBlock1Full labels one full block of BlockRecords records.
//
// The fixed block width is what buys the speed: the accumulators and
// labels are pointer-to-array typed and every loop runs exactly
// BlockRecords iterations, so index arithmetic is provably in bounds
// and the compiler drops the checks; the liveness word is built by
// shifting the block down one bit per record (record r's bit lands at
// position r after the full pass), so no variable-shift guards run in
// the dense loops; and the per-dim table fields are copied to locals
// once per pass, so accumulator stores cannot force their reload.
//
// Per dimension the kernel picks between two record loops on the
// liveness count. While at least half the block is live it runs a
// dense pass over every record — the bin divides of the block are
// mutually independent, so they pipeline instead of serializing
// behind the scalar path's per-record early-exit branch, and a dead
// record just ANDs into its zero accumulator, which cannot resurrect
// it. Once most of the block has died it switches to a sparse walk
// of the liveness word so dead records cost nothing — the scalar
// early exit at block granularity.
func (ix *Index) assignBlock1Full(acc *[BlockRecords]uint64, rows []float64, labels *[BlockRecords]int32) {
	d := len(ix.dims)
	t := &ix.dims[0]
	lo, width, fineF := t.lo, t.width, t.fineF
	ub, bt := t.unitBin, t.bits
	live := uint64(0)
	alive := 0
	p := 0
	for r := 0; r < BlockRecords; r++ {
		f := fineF * (rows[p] - lo) / width
		a := bt[ub[binUnit(f, ub)]]
		acc[r] = a
		alive += int(nzBit(a) >> 63)
		p += d
	}
	for di := 1; di < d && alive > 0; di++ {
		t := &ix.dims[di]
		if alive >= BlockRecords/2 {
			// Dense pass: no liveness word to maintain, only a
			// survivor count (dead records AND into zero and stay
			// dead).
			lo, width, fineF := t.lo, t.width, t.fineF
			ub, bt := t.unitBin, t.bits
			cnt := 0
			p := di
			for r := 0; r < BlockRecords; r++ {
				f := fineF * (rows[p] - lo) / width
				a := acc[r] & bt[ub[binUnit(f, ub)]]
				acc[r] = a
				cnt += int(nzBit(a) >> 63)
				p += d
			}
			alive = cnt
			continue
		}
		if live == 0 {
			// Entering the sparse regime: rebuild the liveness word
			// the dense passes stopped maintaining (record r's bit
			// lands at position r after the full shift-down pass).
			for r := 0; r < BlockRecords; r++ {
				live = live>>1 | nzBit(acc[r])
			}
		}
		for rem := live; rem != 0; {
			r := bits.TrailingZeros64(rem) % BlockRecords
			rem &^= 1 << r
			a := acc[r] & t.bits[t.bin(rows[r*d+di])]
			acc[r] = a
			if a == 0 {
				live &^= 1 << r
				alive--
			}
		}
	}
	bc := ix.boxCluster
	for r := 0; r < BlockRecords; r++ {
		if a := acc[r]; a != 0 {
			labels[r] = bc[bits.TrailingZeros64(a)]
		} else {
			labels[r] = -1
		}
	}
}

// assignBlock2 is the two-word kernel (65..128 boxes): the pair of
// accumulator words per record is indexed directly, with the word
// loop unrolled. Full blocks take the specialized fast path.
func (ix *Index) assignBlock2(rows []float64, n int, labels []int32, scratch []uint64) {
	if n == BlockRecords {
		ix.assignBlock2Full(scratch, rows, (*[BlockRecords]int32)(labels))
		return
	}
	d := len(ix.dims)
	acc := scratch[:2*n]
	t := &ix.dims[0]
	live := uint64(0)
	for r := 0; r < n; r++ {
		b := 2 * t.bin(rows[r*d])
		a0, a1 := t.bits[b], t.bits[b+1]
		acc[2*r], acc[2*r+1] = a0, a1
		if a0|a1 != 0 {
			live |= 1 << r
		}
	}
	for di := 1; di < d && live != 0; di++ {
		t := &ix.dims[di]
		for rem := live; rem != 0; {
			r := bits.TrailingZeros64(rem)
			rem &^= 1 << r
			b := 2 * t.bin(rows[r*d+di])
			a0 := acc[2*r] & t.bits[b]
			a1 := acc[2*r+1] & t.bits[b+1]
			acc[2*r], acc[2*r+1] = a0, a1
			if a0|a1 == 0 {
				live &^= 1 << r
			}
		}
	}
	for r := 0; r < n; r++ {
		switch {
		case acc[2*r] != 0:
			labels[r] = ix.boxCluster[bits.TrailingZeros64(acc[2*r])]
		case acc[2*r+1] != 0:
			labels[r] = ix.boxCluster[64+bits.TrailingZeros64(acc[2*r+1])]
		default:
			labels[r] = -1
		}
	}
}

// assignBlock2Full is assignBlock1Full's structure at bitset width
// two; see that kernel for why the fixed block width matters. The
// two accumulator words per record live in two parallel planes of
// the scratch buffer rather than interleaved, so every accumulator
// index is the plain record number and provably in bounds.
func (ix *Index) assignBlock2Full(scratch []uint64, rows []float64, labels *[BlockRecords]int32) {
	acc0 := (*[BlockRecords]uint64)(scratch)
	acc1 := (*[BlockRecords]uint64)(scratch[BlockRecords:])
	d := len(ix.dims)
	t := &ix.dims[0]
	lo, width, fineF := t.lo, t.width, t.fineF
	ub, bt := t.unitBin, t.bits2
	live := uint64(0)
	cnt0 := 0
	p := 0
	for r := 0; r < BlockRecords; r++ {
		f := fineF * (rows[p] - lo) / width
		w := bt[ub[binUnit(f, ub)]]
		acc0[r], acc1[r] = w[0], w[1]
		cnt0 += int(nzBit(w[0]|w[1]) >> 63)
		p += d
	}
	alive := cnt0
	for di := 1; di < d && alive > 0; di++ {
		t := &ix.dims[di]
		if alive >= BlockRecords/2 {
			// Dense pass: no liveness word to maintain, only a
			// survivor count (dead records AND into zero and stay
			// dead), unrolled two records per iteration.
			lo, width, fineF := t.lo, t.width, t.fineF
			ub, bt := t.unitBin, t.bits2
			cnt := 0
			p := di
			for r := 0; r < BlockRecords; r += 2 {
				f0 := fineF * (rows[p] - lo) / width
				w0 := bt[ub[binUnit(f0, ub)]]
				a0 := acc0[r] & w0[0]
				b0 := acc1[r] & w0[1]
				acc0[r], acc1[r] = a0, b0
				f1 := fineF * (rows[p+d] - lo) / width
				w1 := bt[ub[binUnit(f1, ub)]]
				a1 := acc0[r+1] & w1[0]
				b1 := acc1[r+1] & w1[1]
				acc0[r+1], acc1[r+1] = a1, b1
				cnt += int(nzBit(a0|b0)>>63) + int(nzBit(a1|b1)>>63)
				p += 2 * d
			}
			alive = cnt
			continue
		}
		if live == 0 {
			// Entering the sparse regime: rebuild the liveness word
			// the dense passes stopped maintaining.
			for r := 0; r < BlockRecords; r++ {
				live = live>>1 | nzBit(acc0[r]|acc1[r])
			}
		}
		for rem := live; rem != 0; {
			r := bits.TrailingZeros64(rem) % BlockRecords
			rem &^= 1 << r
			w := t.bits2[t.bin(rows[r*d+di])]
			a0 := acc0[r] & w[0]
			a1 := acc1[r] & w[1]
			acc0[r], acc1[r] = a0, a1
			if a0|a1 == 0 {
				live &^= 1 << r
				alive--
			}
		}
	}
	bc := ix.boxCluster
	for r := 0; r < BlockRecords; r++ {
		switch {
		case acc0[r] != 0:
			labels[r] = bc[bits.TrailingZeros64(acc0[r])]
		case acc1[r] != 0:
			labels[r] = bc[64+bits.TrailingZeros64(acc1[r])]
		default:
			labels[r] = -1
		}
	}
}

// assignBlockN is the general kernel for any bitset width. At three
// or more accumulator words per record the word loop dominates every
// (record, dimension) step and the accumulators no longer fit a
// register-friendly footprint, so dimension-major processing buys
// nothing over the scalar order; the kernel instead walks the block
// record-major with the scalar path's early exit, sharing one
// words-wide accumulator and the hoisted dispatch cost across the
// block.
func (ix *Index) assignBlockN(rows []float64, n int, labels []int32, scratch []uint64) {
	d, words := len(ix.dims), ix.words
	acc := scratch[:words]
	for r := 0; r < n; r++ {
		rec := rows[r*d : (r+1)*d]
		t := &ix.dims[0]
		q := t.bin(rec[0]) * words
		row := t.bits[q : q+words]
		nz := uint64(0)
		for w := range row {
			acc[w] = row[w]
			nz |= row[w]
		}
		for di := 1; di < d && nz != 0; di++ {
			t := &ix.dims[di]
			q := t.bin(rec[di]) * words
			row := t.bits[q : q+words]
			nz = 0
			for w := range row {
				acc[w] &= row[w]
				nz |= acc[w]
			}
		}
		labels[r] = -1
		if nz != 0 {
			for w, aw := range acc {
				if aw != 0 {
					labels[r] = ix.boxCluster[w*64+bits.TrailingZeros64(aw)]
					break
				}
			}
		}
	}
}

// assignBlocks runs the batch kernel over len(labels) records in
// blocks of BlockRecords.
func (ix *Index) assignBlocks(rows []float64, labels []int32, scratch []uint64) {
	d := len(ix.dims)
	for base := 0; base < len(labels); base += BlockRecords {
		n := len(labels) - base
		if n > BlockRecords {
			n = BlockRecords
		}
		ix.assignBlock(rows[base*d:], n, labels[base:base+n], scratch)
	}
}

// AssignRecord labels one record: the index of the first cluster
// containing it, or -1 for an outlier. scratch comes from Scratch.
func (ix *Index) AssignRecord(rec []float64, scratch []uint64) (int32, error) {
	if len(rec) != len(ix.dims) {
		return 0, fmt.Errorf("assign: %d-dim record, index labels %d dims", len(rec), len(ix.dims))
	}
	if len(scratch) < ix.words {
		return 0, fmt.Errorf("assign: scratch has %d words, index needs %d", len(scratch), ix.words)
	}
	return ix.assign(rec, scratch[:ix.words]), nil
}

// AssignChunk labels len(labels) records stored row-major in chunk
// (len(chunk) must be len(labels)*Dims()) without allocating, running
// the batch kernel block by block; scratch comes from Scratch.
func (ix *Index) AssignChunk(chunk []float64, labels []int32, scratch []uint64) error {
	d := len(ix.dims)
	if len(chunk) != len(labels)*d {
		return fmt.Errorf("assign: chunk of %d values for %d %d-dim labels", len(chunk), len(labels), d)
	}
	if need := ix.scratchNeed(len(labels)); len(scratch) < need {
		return fmt.Errorf("assign: scratch has %d words, the batch kernel needs %d (%d-record blocks of %d words)",
			len(scratch), need, BlockRecords, ix.words)
	}
	ix.assignBlocks(chunk, labels, scratch)
	return nil
}

// AssignSource labels every record of src in scan order, reading in
// chunks of chunkRecords and fanning each chunk across workers
// goroutines (workers <= 1 runs inline). Each worker runs the batch
// kernel over its own block-sized Scratch buffer, and worker shard
// boundaries are aligned to BlockRecords so no block is split across
// workers.
func (ix *Index) AssignSource(src dataset.Source, chunkRecords, workers int) ([]int32, error) {
	d := len(ix.dims)
	if src.Dims() != d {
		return nil, fmt.Errorf("assign: %d-dim source, index labels %d dims", src.Dims(), d)
	}
	if chunkRecords <= 0 {
		chunkRecords = 8192
	}
	if workers < 1 {
		workers = 1
	}
	labels := make([]int32, src.NumRecords())
	scratch := make([][]uint64, workers)
	for w := range scratch {
		scratch[w] = ix.Scratch()
	}
	n, err := pool.ScanOffsetAligned(src, chunkRecords, workers, BlockRecords, func(w int, chunk []float64, base int64, lo, hi int) {
		ix.assignBlocks(chunk[lo*d:hi*d], labels[base+int64(lo):base+int64(hi)], scratch[w])
	})
	if err != nil {
		return nil, err
	}
	return labels[:n], nil
}
