package assign_test

import (
	"math"
	"testing"

	"pmafia/internal/assign"
	"pmafia/internal/cluster"
	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/histogram"
	"pmafia/internal/mafia"
	"pmafia/internal/rng"
)

// uniformGrid builds a xi-bin uniform grid over d dims with the given
// domains (thresholds are irrelevant to assignment).
func uniformGrid(t *testing.T, domains []dataset.Range, xi int) *grid.Grid {
	t.Helper()
	h := histogram.New(domains, 1000)
	rec := make([]float64, len(domains))
	for i, dom := range domains {
		rec[i] = dom.Lo
	}
	h.AddRecord(rec)
	g, err := grid.BuildUniform(h, xi, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func unitDomains(d int) []dataset.Range {
	out := make([]dataset.Range, d)
	for i := range out {
		out[i] = dataset.Range{Lo: 0, Hi: 1}
	}
	return out
}

// clusterOver builds a synthetic cluster constraining dims to the
// inclusive bin runs [lo[i], hi[i]].
func clusterOver(dims []uint8, lo, hi []uint8) cluster.Cluster {
	return cluster.Cluster{
		Dims:  dims,
		Boxes: []cluster.Box{{BinLo: lo, BinHi: hi}},
	}
}

// oracle labels rec with the linear scan the engine ships.
func oracle(g *grid.Grid, cs []cluster.Cluster, rec []float64) int32 {
	r := mafia.Result{Grid: g, Clusters: cs}
	return int32(r.AssignRecord(rec))
}

func mustIndex(t *testing.T, g *grid.Grid, cs []cluster.Cluster) *assign.Index {
	t.Helper()
	ix, err := assign.New(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func label(t *testing.T, ix *assign.Index, rec []float64) int32 {
	t.Helper()
	got, err := ix.AssignRecord(rec, ix.Scratch())
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestOutliersLabelMinusOne(t *testing.T) {
	g := uniformGrid(t, unitDomains(3), 10)
	cs := []cluster.Cluster{
		clusterOver([]uint8{0, 2}, []uint8{2, 2}, []uint8{4, 4}),
	}
	ix := mustIndex(t, g, cs)
	outliers := [][]float64{
		{0.95, 0.5, 0.3}, // dim 0 outside the run
		{0.3, 0.5, 0.95}, // dim 2 outside the run
		{0.0, 0.0, 0.0},
		{math.NaN(), 0.5, 0.3}, // NaN clamps to bin 0, outside [2,4]
	}
	for _, rec := range outliers {
		if got := label(t, ix, rec); got != -1 {
			t.Errorf("record %v: got cluster %d, want -1", rec, got)
		}
		if want := oracle(g, cs, rec); want != -1 {
			t.Fatalf("oracle disagrees the record %v is an outlier (%d)", rec, want)
		}
	}
	if got := label(t, ix, []float64{0.3, 0.99, 0.3}); got != 0 {
		t.Errorf("in-cluster record: got %d, want 0 (dim 1 is unconstrained)", got)
	}
}

func TestNoClusters(t *testing.T) {
	g := uniformGrid(t, unitDomains(2), 5)
	ix := mustIndex(t, g, nil)
	if got := label(t, ix, []float64{0.5, 0.5}); got != -1 {
		t.Errorf("empty index labeled %d, want -1", got)
	}
}

// TestExactBinBoundaries labels records sitting exactly on every bin
// bound (and the domain ends) and requires bit-identical agreement
// with the oracle — the failure mode a value-space boundary table
// would have.
func TestExactBinBoundaries(t *testing.T) {
	domains := []dataset.Range{{Lo: -3, Hi: 7}, {Lo: 0.1, Hi: 0.9}}
	g := uniformGrid(t, domains, 7)
	cs := []cluster.Cluster{
		clusterOver([]uint8{0}, []uint8{2}, []uint8{4}),
		clusterOver([]uint8{1}, []uint8{0}, []uint8{3}),
	}
	ix := mustIndex(t, g, cs)
	scratch := ix.Scratch()
	for di := range g.Dims {
		for _, b := range g.Dims[di].Bins {
			for _, v := range []float64{b.Bounds.Lo, b.Bounds.Hi, math.Nextafter(b.Bounds.Lo, math.Inf(-1)), math.Nextafter(b.Bounds.Hi, math.Inf(1))} {
				rec := []float64{0.0, 0.5}
				rec[di] = v
				got, err := ix.AssignRecord(rec, scratch)
				if err != nil {
					t.Fatal(err)
				}
				if want := oracle(g, cs, rec); got != want {
					t.Errorf("dim %d boundary value %v: index %d, oracle %d", di, v, got, want)
				}
			}
		}
	}
}

// TestTieGoesToFirstCluster pins the oracle's first-match rule: when
// two clusters of equal dimensionality both contain a record, the one
// earlier in the cluster list wins.
func TestTieGoesToFirstCluster(t *testing.T) {
	g := uniformGrid(t, unitDomains(2), 10)
	cs := []cluster.Cluster{
		clusterOver([]uint8{0}, []uint8{2}, []uint8{6}),
		clusterOver([]uint8{0}, []uint8{4}, []uint8{8}), // overlaps bins 4-6
	}
	ix := mustIndex(t, g, cs)
	rec := []float64{0.55, 0.5} // bin 5: inside both
	if got := label(t, ix, rec); got != 0 {
		t.Errorf("tied record labeled %d, want first cluster 0", got)
	}
	if want := oracle(g, cs, rec); want != 0 {
		t.Fatalf("oracle tie-break changed: %d", want)
	}
	rec = []float64{0.75, 0.5} // bin 7: only the second cluster
	if got := label(t, ix, rec); got != 1 {
		t.Errorf("record in second cluster labeled %d, want 1", got)
	}
}

func TestDimsMismatchErrors(t *testing.T) {
	g := uniformGrid(t, unitDomains(3), 10)
	ix := mustIndex(t, g, []cluster.Cluster{clusterOver([]uint8{0}, []uint8{1}, []uint8{2})})
	if _, err := ix.AssignRecord([]float64{0.5, 0.5}, ix.Scratch()); err == nil {
		t.Error("AssignRecord accepted a 2-dim record on a 3-dim index")
	}
	if err := ix.AssignChunk(make([]float64, 7), make([]int32, 2), ix.Scratch()); err == nil {
		t.Error("AssignChunk accepted a chunk not divisible into records")
	}
	if err := ix.AssignChunk(make([]float64, 6), make([]int32, 2), nil); err == nil {
		t.Error("AssignChunk accepted a nil scratch")
	}
	m, err := dataset.FromRows([][]float64{{0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AssignSource(m, 0, 1); err == nil {
		t.Error("AssignSource accepted a 2-dim source on a 3-dim index")
	}
}

func TestIndexRejectsInconsistentClusters(t *testing.T) {
	g := uniformGrid(t, unitDomains(2), 5)
	bad := []cluster.Cluster{
		clusterOver([]uint8{3}, []uint8{0}, []uint8{1}),                                        // dim out of range
		clusterOver([]uint8{0}, []uint8{0}, []uint8{9}),                                        // bin out of range
		clusterOver([]uint8{1, 0}, []uint8{0, 0}, []uint8{1, 1}),                               // dims not ascending
		{Dims: []uint8{0}, Boxes: []cluster.Box{{BinLo: []uint8{0, 0}, BinHi: []uint8{1, 1}}}}, // box arity
	}
	for i, c := range bad {
		if _, err := assign.New(g, []cluster.Cluster{c}); err == nil {
			t.Errorf("case %d: New accepted an inconsistent cluster", i)
		}
	}
}

// TestPropertyMatchesOracle fuzzes randomized grids, clusters, and
// records (in-domain, boundary, out-of-domain, and NaN) and requires
// the index to reproduce the linear-scan label exactly.
func TestPropertyMatchesOracle(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 30; trial++ {
		d := 1 + r.Intn(6)
		domains := make([]dataset.Range, d)
		for i := range domains {
			lo := r.In(-100, 100)
			domains[i] = dataset.Range{Lo: lo, Hi: lo + r.In(0.1, 200)}
		}
		xi := 2 + r.Intn(30)
		g := uniformGrid(t, domains, xi)

		ncl := r.Intn(8)
		cs := make([]cluster.Cluster, 0, ncl)
		for ci := 0; ci < ncl; ci++ {
			k := 1 + r.Intn(d)
			dims := make([]uint8, 0, k)
			for _, di := range r.Perm(d)[:k] {
				dims = append(dims, uint8(di))
			}
			for i := 1; i < len(dims); i++ { // insertion sort ascending
				for j := i; j > 0 && dims[j-1] > dims[j]; j-- {
					dims[j-1], dims[j] = dims[j], dims[j-1]
				}
			}
			nb := 1 + r.Intn(3)
			boxes := make([]cluster.Box, 0, nb)
			for bi := 0; bi < nb; bi++ {
				lo := make([]uint8, k)
				hi := make([]uint8, k)
				for x := range lo {
					a, b := r.Intn(xi), r.Intn(xi)
					if a > b {
						a, b = b, a
					}
					lo[x], hi[x] = uint8(a), uint8(b)
				}
				boxes = append(boxes, cluster.Box{BinLo: lo, BinHi: hi})
			}
			cs = append(cs, cluster.Cluster{Dims: dims, Boxes: boxes})
		}

		ix := mustIndex(t, g, cs)
		scratch := ix.Scratch()
		rec := make([]float64, d)
		for probe := 0; probe < 300; probe++ {
			for i, dom := range domains {
				switch r.Intn(10) {
				case 0: // exact bin bound
					bins := g.Dims[i].Bins
					b := bins[r.Intn(len(bins))]
					if r.Intn(2) == 0 {
						rec[i] = b.Bounds.Lo
					} else {
						rec[i] = b.Bounds.Hi
					}
				case 1: // out of domain
					rec[i] = dom.Lo - r.In(0, 10)
				case 2:
					rec[i] = dom.Hi + r.In(0, 10)
				case 3:
					rec[i] = math.NaN()
				default:
					rec[i] = r.In(dom.Lo, dom.Hi)
				}
			}
			got, err := ix.AssignRecord(rec, scratch)
			if err != nil {
				t.Fatal(err)
			}
			if want := oracle(g, cs, rec); got != want {
				t.Fatalf("trial %d probe %d: record %v labeled %d, oracle says %d", trial, probe, rec, got, want)
			}
		}
	}
}

// TestChunkAndSourceMatchRecord checks the batched paths agree with
// the one-record path, including the multi-worker fan-out.
func TestChunkAndSourceMatchRecord(t *testing.T) {
	r := rng.New(7)
	d := 4
	g := uniformGrid(t, unitDomains(d), 12)
	cs := []cluster.Cluster{
		clusterOver([]uint8{0, 1}, []uint8{1, 1}, []uint8{5, 5}),
		clusterOver([]uint8{2, 3}, []uint8{6, 6}, []uint8{10, 10}),
		clusterOver([]uint8{1}, []uint8{8}, []uint8{11}),
	}
	ix := mustIndex(t, g, cs)
	const n = 1000
	rows := make([][]float64, n)
	flat := make([]float64, 0, n*d)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = r.Float64()
		}
		flat = append(flat, rows[i]...)
	}
	want := make([]int32, n)
	scratch := ix.Scratch()
	for i, rec := range rows {
		want[i] = label(t, ix, rec)
	}
	got := make([]int32, n)
	if err := ix.AssignChunk(flat, got, scratch); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AssignChunk record %d: %d vs %d", i, got[i], want[i])
		}
	}
	m, err := dataset.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		labels, err := ix.AssignSource(m, 128, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(labels) != n {
			t.Fatalf("workers=%d: %d labels for %d records", workers, len(labels), n)
		}
		for i := range want {
			if labels[i] != want[i] {
				t.Fatalf("workers=%d record %d: %d vs %d", workers, i, labels[i], want[i])
			}
		}
	}
}

// TestBatchKernelPropertySweep property-tests the batch kernel against
// AssignRecord: randomized grids swept across dims × bins ×
// cluster-count (crossing the 1-, 2-, and N-word bitset kernels) ×
// block size (tails, exactly one block, block+tail, multi-block), with
// records on exact bin bounds, NaN, ±Inf, and out-of-domain values.
// AssignChunk and the multi-worker AssignSource must reproduce the
// per-record labels bit-identically.
func TestBatchKernelPropertySweep(t *testing.T) {
	r := rng.New(99)
	blockSizes := []int{1, 7, 63, 64, 65, 2*64 + 17}
	// Cluster counts are chosen so total boxes (1–2 per cluster) sweep
	// the word count: ~0, <64, ~64–128, and well past 128 boxes.
	clusterCounts := []int{0, 2, 9, 45, 130}
	for trial := 0; trial < 15; trial++ {
		d := 1 + r.Intn(8)
		domains := make([]dataset.Range, d)
		for i := range domains {
			lo := r.In(-100, 100)
			domains[i] = dataset.Range{Lo: lo, Hi: lo + r.In(0.1, 200)}
		}
		xi := 2 + r.Intn(30)
		g := uniformGrid(t, domains, xi)

		ncl := clusterCounts[trial%len(clusterCounts)]
		cs := make([]cluster.Cluster, 0, ncl)
		for ci := 0; ci < ncl; ci++ {
			k := 1 + r.Intn(d)
			dims := make([]uint8, 0, k)
			for _, di := range r.Perm(d)[:k] {
				dims = append(dims, uint8(di))
			}
			for i := 1; i < len(dims); i++ { // insertion sort ascending
				for j := i; j > 0 && dims[j-1] > dims[j]; j-- {
					dims[j-1], dims[j] = dims[j], dims[j-1]
				}
			}
			nb := 1 + r.Intn(2)
			boxes := make([]cluster.Box, 0, nb)
			for bi := 0; bi < nb; bi++ {
				lo := make([]uint8, k)
				hi := make([]uint8, k)
				for x := range lo {
					a, b := r.Intn(xi), r.Intn(xi)
					if a > b {
						a, b = b, a
					}
					lo[x], hi[x] = uint8(a), uint8(b)
				}
				boxes = append(boxes, cluster.Box{BinLo: lo, BinHi: hi})
			}
			cs = append(cs, cluster.Cluster{Dims: dims, Boxes: boxes})
		}
		ix := mustIndex(t, g, cs)

		hostile := func(i int) float64 {
			dom := domains[i]
			switch r.Intn(12) {
			case 0: // exact bin bound
				bins := g.Dims[i].Bins
				b := bins[r.Intn(len(bins))]
				if r.Intn(2) == 0 {
					return b.Bounds.Lo
				}
				return b.Bounds.Hi
			case 1:
				return dom.Lo - r.In(0, 10)
			case 2:
				return dom.Hi + r.In(0, 10)
			case 3:
				return math.NaN()
			case 4:
				return math.Inf(1)
			case 5:
				return math.Inf(-1)
			default:
				return r.In(dom.Lo, dom.Hi)
			}
		}
		for _, n := range blockSizes {
			flat := make([]float64, n*d)
			for i := range flat {
				flat[i] = hostile(i % d)
			}
			want := make([]int32, n)
			scratch := ix.Scratch()
			for i := 0; i < n; i++ {
				var err error
				want[i], err = ix.AssignRecord(flat[i*d:(i+1)*d], scratch)
				if err != nil {
					t.Fatal(err)
				}
			}
			got := make([]int32, n)
			if err := ix.AssignChunk(flat, got, ix.Scratch()); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d (clusters=%d boxes=%d) n=%d: AssignChunk record %d labeled %d, AssignRecord says %d",
						trial, ncl, ix.Boxes(), n, i, got[i], want[i])
				}
			}
			src := &dataset.Matrix{D: d, Values: flat}
			for _, workers := range []int{1, 3} {
				labels, err := ix.AssignSource(src, 97, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if labels[i] != want[i] {
						t.Fatalf("trial %d n=%d workers=%d: AssignSource record %d labeled %d, AssignRecord says %d",
							trial, n, workers, i, labels[i], want[i])
					}
				}
			}
		}
	}
}

// TestAssignSourceWorkersBlockIsolation is the scratch-aliasing
// regression test: a multi-word index (boxes > 64) driven through
// AssignSource at workers > 1 with a chunk size that is not a multiple
// of the kernel block width. If two workers ever shared a block (or a
// scratch buffer sized below the block width), concurrent accumulator
// writes would corrupt labels; every worker must reproduce the
// single-record path exactly.
func TestAssignSourceWorkersBlockIsolation(t *testing.T) {
	r := rng.New(31)
	const d, xi = 5, 16
	g := uniformGrid(t, unitDomains(d), xi)
	cs := make([]cluster.Cluster, 0, 90)
	for ci := 0; ci < 90; ci++ { // 90 single-box clusters -> words > 1
		k := 1 + r.Intn(d)
		dims := make([]uint8, 0, k)
		for _, di := range r.Perm(d)[:k] {
			dims = append(dims, uint8(di))
		}
		for i := 1; i < len(dims); i++ {
			for j := i; j > 0 && dims[j-1] > dims[j]; j-- {
				dims[j-1], dims[j] = dims[j], dims[j-1]
			}
		}
		lo := make([]uint8, k)
		hi := make([]uint8, k)
		for x := range lo {
			a, b := r.Intn(xi), r.Intn(xi)
			if a > b {
				a, b = b, a
			}
			lo[x], hi[x] = uint8(a), uint8(b)
		}
		cs = append(cs, cluster.Cluster{Dims: dims, Boxes: []cluster.Box{{BinLo: lo, BinHi: hi}}})
	}
	ix := mustIndex(t, g, cs)
	if ix.Boxes() <= 64 {
		t.Fatalf("model has %d boxes, the regression needs a multi-word bitset", ix.Boxes())
	}
	const n = 64*40 + 23
	flat := make([]float64, n*d)
	for i := range flat {
		flat[i] = r.Float64()
	}
	want := make([]int32, n)
	scratch := ix.Scratch()
	for i := 0; i < n; i++ {
		var err error
		want[i], err = ix.AssignRecord(flat[i*d:(i+1)*d], scratch)
		if err != nil {
			t.Fatal(err)
		}
	}
	src := &dataset.Matrix{D: d, Values: flat}
	for _, workers := range []int{2, 4, 7} {
		labels, err := ix.AssignSource(src, 1000, workers) // 1000 % 64 != 0
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if labels[i] != want[i] {
				t.Fatalf("workers=%d: record %d labeled %d, want %d", workers, i, labels[i], want[i])
			}
		}
	}
}

// genClustered builds a data set with an embedded 3-dim box cluster.
func genClustered(t *testing.T, d, records int, seed uint64) *dataset.Matrix {
	t.Helper()
	ext := []dataset.Range{{Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}}
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:     d,
		Records:  records,
		Clusters: []datagen.Cluster{datagen.UniformBox([]int{1, 3, 4}, ext, 0)},
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFittedModelMatchesEngineAssign runs the real engine on generated
// data and checks the compiled index reproduces Result.Assign exactly
// — adaptive grids included.
func TestFittedModelMatchesEngineAssign(t *testing.T) {
	m := genClustered(t, 6, 3000, 3)
	res, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("engine found no clusters; the differential test needs at least one")
	}
	ix := mustIndex(t, res.Grid, res.Clusters)
	want, err := res.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.AssignSource(m, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d labels vs oracle's %d", len(got), len(want))
	}
	mismatch := 0
	for i := range want {
		if got[i] != want[i] {
			mismatch++
		}
	}
	if mismatch > 0 {
		t.Errorf("%d/%d labels differ from the linear oracle", mismatch, len(want))
	}
}
