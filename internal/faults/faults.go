// Package faults is the seeded, deterministic fault-injection framework
// for the sp2 machine and the diskio substrate. The paper's SP2/MPI runs
// assume a perfect machine — no rank dies mid-collective, no chunk read
// fails, no file is ever silently corrupted. A Plan lets a test (or the
// pmafia CLI via -faults) inject exactly those failures at chosen,
// reproducible points:
//
//   - RankCrash: the target rank panics when it enters its Index-th
//     collective (sp2 consults Collective).
//   - RankStall: the target rank sleeps for Stall at its Index-th
//     collective, modeling a straggler or a dead node (detected by the
//     machine's collective-timeout watchdog).
//   - ReadError: a scanner's Index-th chunk read fails with ErrRead, a
//     transient error the disk layer retries.
//   - ShortRead: the chunk read returns only part of the requested
//     bytes, also transient.
//   - BitFlip: one seeded-pseudorandom bit of the chunk is flipped
//     after the read — silent corruption that only a checksumming file
//     format can detect.
//   - CkptTorn: the Index-th checkpoint write is torn — only a
//     seeded-pseudorandom prefix of the file reaches disk, bypassing
//     the atomic rename (ckpt consults CkptFault). The fit continues,
//     so recovery must detect the corrupt latest checkpoint and fall
//     back to the previous good one.
//
// Every fault fires a bounded number of times (Times, default 1), so a
// single transient fault exercises the retry path while Times larger
// than the retry budget exhausts it and surfaces a typed error. All
// randomness derives from the Plan seed through a stateless splitmix64
// hash, so a failing run is reproducible from its spec string alone.
//
// The textual spec accepted by Parse is a semicolon-separated list of
// clauses:
//
//	spec      = clause *( ";" clause )
//	clause    = "seed" "=" uint | kind ":" kv *( "," kv )
//	kind      = "crash" | "stall" | "readerr" | "shortread" | "bitflip" |
//	            "tornckpt"
//	kv        = "rank=" int | "coll=" int | "chunk=" int | "write=" int |
//	            "for=" duration | "times=" int
//
// Examples:
//
//	crash:rank=1,coll=3
//	stall:rank=2,coll=0,for=250ms
//	readerr:chunk=4,times=5;bitflip:chunk=2;seed=42
//	tornckpt:write=1;crash:rank=0,coll=9
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sentinel errors carried by injected faults, so hardened code and
// tests can identify an injected failure with errors.Is.
var (
	// ErrCrash is the cause recorded when an injected rank crash fires.
	ErrCrash = errors.New("faults: injected rank crash")
	// ErrRead is the transient error an injected ReadError produces.
	ErrRead = errors.New("faults: injected transient read error")
	// ErrShortRead is the transient error an injected ShortRead wraps.
	ErrShortRead = errors.New("faults: injected short read")
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// RankCrash panics the target rank at a collective (sp2).
	RankCrash Kind = iota
	// RankStall delays the target rank at a collective (sp2).
	RankStall
	// ReadError fails a chunk read with a transient error (diskio).
	ReadError
	// ShortRead truncates a chunk read (diskio).
	ShortRead
	// BitFlip corrupts one bit of a read chunk (diskio).
	BitFlip
	// CkptTorn tears a checkpoint write: only a prefix of the file
	// reaches its final path (ckpt).
	CkptTorn
)

var kindNames = [...]string{
	RankCrash: "crash",
	RankStall: "stall",
	ReadError: "readerr",
	ShortRead: "shortread",
	BitFlip:   "bitflip",
	CkptTorn:  "tornckpt",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// machineKind reports whether the kind targets the sp2 machine (as
// opposed to the disk or checkpoint substrates).
func (k Kind) machineKind() bool { return k == RankCrash || k == RankStall }

// diskKind reports whether the kind targets diskio chunk reads.
func (k Kind) diskKind() bool { return k == ReadError || k == ShortRead || k == BitFlip }

// ckptKind reports whether the kind targets checkpoint writes.
func (k Kind) ckptKind() bool { return k == CkptTorn }

// Fault is one injection point.
type Fault struct {
	// Kind selects what happens.
	Kind Kind
	// Rank is the sp2 rank targeted by RankCrash/RankStall.
	Rank int
	// Index is the 0-based ordinal at which the fault fires: the
	// rank's collective count for machine faults, the scanner's chunk
	// count for disk faults, the manager's checkpoint-write count for
	// checkpoint faults.
	Index int64
	// Stall is how long a RankStall sleeps. Zero means "until the
	// machine's failure detector gives up on the rank" (one hour).
	Stall time.Duration
	// Times bounds how often the fault fires (default 1). A disk
	// fault with Times greater than the retry budget defeats the
	// retries and surfaces a typed error.
	Times int
}

// DefaultStall is the stand-in duration for a stall with no explicit
// "for=": long enough that only the failure detector ends it.
const DefaultStall = time.Hour

// armed is a Fault plus its remaining fire budget.
type armed struct {
	Fault
	left int
}

// Plan is a set of armed faults plus the seed that derives all
// injection randomness. A Plan is safe for concurrent use; the zero of
// *Plan (nil) injects nothing, so substrates may consult it without a
// guard.
type Plan struct {
	// Seed feeds the stateless splitmix64 hash behind BitPos.
	Seed uint64

	mu     sync.Mutex
	faults []*armed
}

// New builds a plan from explicit faults. Zero-valued Times and Stall
// fields are defaulted as documented on Fault.
func New(seed uint64, fs ...Fault) *Plan {
	p := &Plan{Seed: seed}
	for _, f := range fs {
		p.add(f)
	}
	return p
}

func (p *Plan) add(f Fault) {
	if f.Times <= 0 {
		f.Times = 1
	}
	if f.Kind == RankStall && f.Stall <= 0 {
		f.Stall = DefaultStall
	}
	p.faults = append(p.faults, &armed{Fault: f, left: f.Times})
}

// Faults returns a copy of the plan's faults in spec order.
func (p *Plan) Faults() []Fault {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Fault, len(p.faults))
	for i, a := range p.faults {
		out[i] = a.Fault
	}
	return out
}

// Collective reports the machine fault (if any) to apply when rank
// enters its index-th collective, consuming one firing. The returned
// duration is meaningful for RankStall only.
func (p *Plan) Collective(rank int, index int64) (Kind, time.Duration, bool) {
	if p == nil {
		return 0, 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range p.faults {
		if a.left > 0 && a.Kind.machineKind() && a.Rank == rank && a.Index == index {
			a.left--
			return a.Kind, a.Stall, true
		}
	}
	return 0, 0, false
}

// ReadFault reports the disk fault (if any) to apply to a scanner's
// chunk-th read attempt, consuming one firing. Retried reads consult
// the plan again, so a fault with Times=1 fails exactly one attempt.
func (p *Plan) ReadFault(chunk int64) (Kind, bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range p.faults {
		if a.left > 0 && a.Kind.diskKind() && a.Index == chunk {
			a.left--
			return a.Kind, true
		}
	}
	return 0, false
}

// CkptFault reports the checkpoint fault (if any) to apply to the
// manager's write-th checkpoint write, consuming one firing.
func (p *Plan) CkptFault(write int64) (Kind, bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range p.faults {
		if a.left > 0 && a.Kind.ckptKind() && a.Index == write {
			a.left--
			return a.Kind, true
		}
	}
	return 0, false
}

// CutPos returns the deterministic byte offset in [1, nbytes) at which
// a CkptTorn fault truncates the write-th checkpoint file, so a torn
// write always leaves a non-empty but incomplete file. It is a pure
// function of the plan seed and the write ordinal. Returns 0 when
// nbytes <= 1 (nothing sensible to tear).
func (p *Plan) CutPos(write, nbytes int64) int64 {
	if nbytes <= 1 {
		return 0
	}
	var seed uint64
	if p != nil {
		seed = p.Seed
	}
	return 1 + int64(splitmix64(seed^0xd6e8feb86659fd93^uint64(write))%uint64(nbytes-1))
}

// BitPos returns the deterministic bit offset in [0, nbits) that a
// BitFlip at the given chunk corrupts. It is a pure function of the
// plan seed and the chunk ordinal, so reruns corrupt the same bit.
func (p *Plan) BitPos(chunk, nbits int64) int64 {
	if nbits <= 0 {
		return 0
	}
	var seed uint64
	if p != nil {
		seed = p.Seed
	}
	return int64(splitmix64(seed^0x9e3779b97f4a7c15^uint64(chunk)) % uint64(nbits))
}

// splitmix64 is the standard 64-bit finalizing hash (Vigna), used here
// as a stateless seeded PRF.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Parse builds a plan from the textual spec documented on the package.
// An empty spec yields a nil plan (inject nothing).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", v)
			}
			p.Seed = seed
			continue
		}
		kindStr, kvs, ok := strings.Cut(clause, ":")
		if !ok {
			kindStr, kvs = clause, ""
		}
		f, err := parseClause(strings.TrimSpace(kindStr), kvs)
		if err != nil {
			return nil, err
		}
		p.add(f)
	}
	if len(p.faults) == 0 {
		return nil, fmt.Errorf("faults: spec %q names no faults", spec)
	}
	return p, nil
}

func parseClause(kindStr, kvs string) (Fault, error) {
	var f Fault
	found := false
	for k, name := range kindNames {
		if name == kindStr {
			f.Kind = Kind(k)
			found = true
			break
		}
	}
	if !found {
		return f, fmt.Errorf("faults: unknown fault kind %q (want crash, stall, readerr, shortread, bitflip, or tornckpt)", kindStr)
	}
	if kvs == "" {
		return f, nil
	}
	for _, kv := range strings.Split(kvs, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return f, fmt.Errorf("faults: malformed option %q in %q clause", kv, f.Kind)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "rank":
			if !f.Kind.machineKind() {
				return f, fmt.Errorf("faults: %q does not take rank=", f.Kind)
			}
			f.Rank, err = strconv.Atoi(val)
			if err != nil || f.Rank < 0 {
				return f, fmt.Errorf("faults: bad rank %q", val)
			}
		case "coll":
			if !f.Kind.machineKind() {
				return f, fmt.Errorf("faults: %q does not take coll= (use chunk=)", f.Kind)
			}
			f.Index, err = strconv.ParseInt(val, 10, 64)
			if err != nil || f.Index < 0 {
				return f, fmt.Errorf("faults: bad collective index %q", val)
			}
		case "chunk":
			if !f.Kind.diskKind() {
				return f, fmt.Errorf("faults: %q does not take chunk=", f.Kind)
			}
			f.Index, err = strconv.ParseInt(val, 10, 64)
			if err != nil || f.Index < 0 {
				return f, fmt.Errorf("faults: bad chunk index %q", val)
			}
		case "write":
			if !f.Kind.ckptKind() {
				return f, fmt.Errorf("faults: %q does not take write=", f.Kind)
			}
			f.Index, err = strconv.ParseInt(val, 10, 64)
			if err != nil || f.Index < 0 {
				return f, fmt.Errorf("faults: bad write index %q", val)
			}
		case "for":
			if f.Kind != RankStall {
				return f, fmt.Errorf("faults: only stall takes for=")
			}
			f.Stall, err = time.ParseDuration(val)
			if err != nil || f.Stall <= 0 {
				return f, fmt.Errorf("faults: bad stall duration %q", val)
			}
		case "times":
			f.Times, err = strconv.Atoi(val)
			if err != nil || f.Times < 1 {
				return f, fmt.Errorf("faults: bad times %q", val)
			}
		default:
			return f, fmt.Errorf("faults: unknown option %q in %q clause", key, f.Kind)
		}
	}
	return f, nil
}

// String renders the plan back as a spec Parse accepts (faults keep
// their remaining budgets out of the rendering; the original Times is
// shown).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, a := range p.faults {
		var kvs []string
		switch {
		case a.Kind.machineKind():
			kvs = append(kvs, fmt.Sprintf("rank=%d", a.Rank), fmt.Sprintf("coll=%d", a.Index))
			if a.Kind == RankStall && a.Stall != DefaultStall {
				kvs = append(kvs, fmt.Sprintf("for=%s", a.Stall))
			}
		case a.Kind.ckptKind():
			kvs = append(kvs, fmt.Sprintf("write=%d", a.Index))
		default:
			kvs = append(kvs, fmt.Sprintf("chunk=%d", a.Index))
		}
		if a.Times != 1 {
			kvs = append(kvs, fmt.Sprintf("times=%d", a.Times))
		}
		parts = append(parts, fmt.Sprintf("%s:%s", a.Kind, strings.Join(kvs, ",")))
	}
	return strings.Join(parts, ";")
}
