package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParseAndString(t *testing.T) {
	spec := "seed=42;crash:rank=1,coll=3;stall:rank=2,coll=0,for=250ms;readerr:chunk=4,times=5;bitflip:chunk=2"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("Seed = %d", p.Seed)
	}
	fs := p.Faults()
	if len(fs) != 4 {
		t.Fatalf("%d faults parsed", len(fs))
	}
	want := []Fault{
		{Kind: RankCrash, Rank: 1, Index: 3, Times: 1},
		{Kind: RankStall, Rank: 2, Index: 0, Stall: 250 * time.Millisecond, Times: 1},
		{Kind: ReadError, Index: 4, Times: 5},
		{Kind: BitFlip, Index: 2, Times: 1},
	}
	for i, w := range want {
		if fs[i] != w {
			t.Errorf("fault %d = %+v, want %+v", i, fs[i], w)
		}
	}
	// The rendering must itself parse back to the same plan.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() || p2.Seed != 42 {
		t.Errorf("round trip: %q vs %q", p2.String(), p.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"explode:rank=0",       // unknown kind
		"crash:rank=x",         // bad int
		"crash:chunk=1",        // wrong axis for machine fault
		"readerr:coll=1",       // wrong axis for disk fault
		"readerr:for=5s",       // for= on non-stall
		"stall:rank=0,for=-1s", // bad duration
		"crash:rank=0,times=0", // times must be >= 1
		"crash:rank=0,bogus=1", // unknown key
		"seed=notanumber",      // bad seed
		"seed=1",               // seed alone: no faults
		"crash:rank=0,coll",    // malformed kv
		"stall:rank=-1",        // negative rank
		"bitflip:chunk=-2",     // negative index
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error", spec)
		}
	}
}

func TestParseEmptyIsNilPlan(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || p != nil {
		t.Errorf("empty spec: plan=%v err=%v", p, err)
	}
	// A nil plan injects nothing and never panics.
	if _, _, ok := p.Collective(0, 0); ok {
		t.Error("nil plan fired a collective fault")
	}
	if _, ok := p.ReadFault(0); ok {
		t.Error("nil plan fired a read fault")
	}
	if p.String() != "" {
		t.Errorf("nil plan String = %q", p.String())
	}
}

func TestCollectiveFiresExactlyTimes(t *testing.T) {
	p := New(0, Fault{Kind: RankCrash, Rank: 1, Index: 2, Times: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if _, _, ok := p.Collective(1, 2); ok {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d times, want 2", fired)
	}
	// Wrong rank or index never fires.
	if _, _, ok := p.Collective(0, 2); ok {
		t.Error("fired on wrong rank")
	}
	if _, _, ok := p.Collective(1, 3); ok {
		t.Error("fired on wrong index")
	}
}

func TestReadFaultConsumption(t *testing.T) {
	p := New(0, Fault{Kind: ReadError, Index: 1}, Fault{Kind: ShortRead, Index: 1})
	k1, ok := p.ReadFault(1)
	if !ok || k1 != ReadError {
		t.Fatalf("first fault: %v %v", k1, ok)
	}
	k2, ok := p.ReadFault(1)
	if !ok || k2 != ShortRead {
		t.Fatalf("second fault: %v %v", k2, ok)
	}
	if _, ok := p.ReadFault(1); ok {
		t.Error("exhausted faults fired again")
	}
}

func TestStallDefaultsToDetectionHorizon(t *testing.T) {
	p := New(0, Fault{Kind: RankStall, Rank: 0, Index: 0})
	_, d, ok := p.Collective(0, 0)
	if !ok || d != DefaultStall {
		t.Errorf("stall = %v ok=%v, want %v", d, ok, DefaultStall)
	}
}

func TestBitPosDeterministicAndBounded(t *testing.T) {
	p := New(7)
	for chunk := int64(0); chunk < 64; chunk++ {
		a := p.BitPos(chunk, 1000)
		b := p.BitPos(chunk, 1000)
		if a != b {
			t.Fatalf("chunk %d: BitPos not deterministic: %d vs %d", chunk, a, b)
		}
		if a < 0 || a >= 1000 {
			t.Fatalf("chunk %d: BitPos %d out of range", chunk, a)
		}
	}
	// Different seeds should (overwhelmingly) pick different bits
	// somewhere in the first 64 chunks.
	q := New(8)
	same := 0
	for chunk := int64(0); chunk < 64; chunk++ {
		if p.BitPos(chunk, 1<<20) == q.BitPos(chunk, 1<<20) {
			same++
		}
	}
	if same == 64 {
		t.Error("seeds 7 and 8 derive identical bit positions")
	}
	if p.BitPos(0, 0) != 0 {
		t.Error("nbits=0 must yield 0")
	}
}

func TestKindString(t *testing.T) {
	for k, name := range map[Kind]string{
		RankCrash: "crash", RankStall: "stall", ReadError: "readerr",
		ShortRead: "shortread", BitFlip: "bitflip",
	} {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Errorf("unknown kind String = %q", Kind(99).String())
	}
}
