package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParseAndString(t *testing.T) {
	spec := "seed=42;crash:rank=1,coll=3;stall:rank=2,coll=0,for=250ms;readerr:chunk=4,times=5;bitflip:chunk=2"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("Seed = %d", p.Seed)
	}
	fs := p.Faults()
	if len(fs) != 4 {
		t.Fatalf("%d faults parsed", len(fs))
	}
	want := []Fault{
		{Kind: RankCrash, Rank: 1, Index: 3, Times: 1},
		{Kind: RankStall, Rank: 2, Index: 0, Stall: 250 * time.Millisecond, Times: 1},
		{Kind: ReadError, Index: 4, Times: 5},
		{Kind: BitFlip, Index: 2, Times: 1},
	}
	for i, w := range want {
		if fs[i] != w {
			t.Errorf("fault %d = %+v, want %+v", i, fs[i], w)
		}
	}
	// The rendering must itself parse back to the same plan.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() || p2.Seed != 42 {
		t.Errorf("round trip: %q vs %q", p2.String(), p.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"explode:rank=0",       // unknown kind
		"crash:rank=x",         // bad int
		"crash:chunk=1",        // wrong axis for machine fault
		"readerr:coll=1",       // wrong axis for disk fault
		"readerr:for=5s",       // for= on non-stall
		"stall:rank=0,for=-1s", // bad duration
		"crash:rank=0,times=0", // times must be >= 1
		"crash:rank=0,bogus=1", // unknown key
		"seed=notanumber",      // bad seed
		"seed=1",               // seed alone: no faults
		"crash:rank=0,coll",    // malformed kv
		"stall:rank=-1",        // negative rank
		"bitflip:chunk=-2",     // negative index
		"tornckpt:chunk=1",     // wrong axis for ckpt fault
		"tornckpt:rank=0",      // wrong axis for ckpt fault
		"readerr:write=1",      // write= only for ckpt faults
		"tornckpt:write=-1",    // negative write index
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error", spec)
		}
	}
}

func TestParseEmptyIsNilPlan(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || p != nil {
		t.Errorf("empty spec: plan=%v err=%v", p, err)
	}
	// A nil plan injects nothing and never panics.
	if _, _, ok := p.Collective(0, 0); ok {
		t.Error("nil plan fired a collective fault")
	}
	if _, ok := p.ReadFault(0); ok {
		t.Error("nil plan fired a read fault")
	}
	if p.String() != "" {
		t.Errorf("nil plan String = %q", p.String())
	}
}

func TestCollectiveFiresExactlyTimes(t *testing.T) {
	p := New(0, Fault{Kind: RankCrash, Rank: 1, Index: 2, Times: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if _, _, ok := p.Collective(1, 2); ok {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d times, want 2", fired)
	}
	// Wrong rank or index never fires.
	if _, _, ok := p.Collective(0, 2); ok {
		t.Error("fired on wrong rank")
	}
	if _, _, ok := p.Collective(1, 3); ok {
		t.Error("fired on wrong index")
	}
}

func TestReadFaultConsumption(t *testing.T) {
	p := New(0, Fault{Kind: ReadError, Index: 1}, Fault{Kind: ShortRead, Index: 1})
	k1, ok := p.ReadFault(1)
	if !ok || k1 != ReadError {
		t.Fatalf("first fault: %v %v", k1, ok)
	}
	k2, ok := p.ReadFault(1)
	if !ok || k2 != ShortRead {
		t.Fatalf("second fault: %v %v", k2, ok)
	}
	if _, ok := p.ReadFault(1); ok {
		t.Error("exhausted faults fired again")
	}
}

func TestCkptFaultParseAndConsumption(t *testing.T) {
	p, err := Parse("tornckpt:write=1;crash:rank=0,coll=9")
	if err != nil {
		t.Fatal(err)
	}
	fs := p.Faults()
	if len(fs) != 2 || fs[0] != (Fault{Kind: CkptTorn, Index: 1, Times: 1}) {
		t.Fatalf("parsed faults = %+v", fs)
	}
	// Ckpt faults are invisible to the disk and machine axes.
	if _, ok := p.ReadFault(1); ok {
		t.Error("ckpt fault fired as a read fault")
	}
	if _, _, ok := p.Collective(0, 1); ok {
		t.Error("ckpt fault fired as a collective fault")
	}
	// Wrong ordinal never fires; the right one fires exactly once.
	if _, ok := p.CkptFault(0); ok {
		t.Error("fired on wrong write ordinal")
	}
	k, ok := p.CkptFault(1)
	if !ok || k != CkptTorn {
		t.Fatalf("CkptFault(1) = %v %v", k, ok)
	}
	if _, ok := p.CkptFault(1); ok {
		t.Error("exhausted ckpt fault fired again")
	}
	// Rendering round-trips.
	if !strings.Contains(p.String(), "tornckpt:write=1") {
		t.Errorf("String = %q", p.String())
	}
	if _, err := Parse(p.String()); err != nil {
		t.Errorf("reparse %q: %v", p.String(), err)
	}
	// Nil plans are safe.
	var nilp *Plan
	if _, ok := nilp.CkptFault(0); ok {
		t.Error("nil plan fired a ckpt fault")
	}
}

func TestCutPosDeterministicAndBounded(t *testing.T) {
	p := New(7)
	for write := int64(0); write < 32; write++ {
		a := p.CutPos(write, 4096)
		if b := p.CutPos(write, 4096); a != b {
			t.Fatalf("write %d: CutPos not deterministic: %d vs %d", write, a, b)
		}
		if a < 1 || a >= 4096 {
			t.Fatalf("write %d: CutPos %d out of [1, 4096)", write, a)
		}
	}
	// Degenerate sizes have nothing to tear.
	if p.CutPos(0, 0) != 0 || p.CutPos(0, 1) != 0 {
		t.Error("nbytes <= 1 must yield 0")
	}
	// Different seeds should diverge somewhere.
	q := New(8)
	same := 0
	for write := int64(0); write < 32; write++ {
		if p.CutPos(write, 1<<20) == q.CutPos(write, 1<<20) {
			same++
		}
	}
	if same == 32 {
		t.Error("seeds 7 and 8 derive identical cut positions")
	}
}

func TestStallDefaultsToDetectionHorizon(t *testing.T) {
	p := New(0, Fault{Kind: RankStall, Rank: 0, Index: 0})
	_, d, ok := p.Collective(0, 0)
	if !ok || d != DefaultStall {
		t.Errorf("stall = %v ok=%v, want %v", d, ok, DefaultStall)
	}
}

func TestBitPosDeterministicAndBounded(t *testing.T) {
	p := New(7)
	for chunk := int64(0); chunk < 64; chunk++ {
		a := p.BitPos(chunk, 1000)
		b := p.BitPos(chunk, 1000)
		if a != b {
			t.Fatalf("chunk %d: BitPos not deterministic: %d vs %d", chunk, a, b)
		}
		if a < 0 || a >= 1000 {
			t.Fatalf("chunk %d: BitPos %d out of range", chunk, a)
		}
	}
	// Different seeds should (overwhelmingly) pick different bits
	// somewhere in the first 64 chunks.
	q := New(8)
	same := 0
	for chunk := int64(0); chunk < 64; chunk++ {
		if p.BitPos(chunk, 1<<20) == q.BitPos(chunk, 1<<20) {
			same++
		}
	}
	if same == 64 {
		t.Error("seeds 7 and 8 derive identical bit positions")
	}
	if p.BitPos(0, 0) != 0 {
		t.Error("nbits=0 must yield 0")
	}
}

func TestKindString(t *testing.T) {
	for k, name := range map[Kind]string{
		RankCrash: "crash", RankStall: "stall", ReadError: "readerr",
		ShortRead: "shortread", BitFlip: "bitflip", CkptTorn: "tornckpt",
	} {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Errorf("unknown kind String = %q", Kind(99).String())
	}
}
