package model

import (
	"math"
	"testing"
	"testing/quick"

	"pmafia/internal/rng"
)

func TestFitAmdahlExact(t *testing.T) {
	// Synthetic data from a known model must be recovered exactly.
	const serial, work = 0.5, 8.0
	procs := []int{1, 2, 4, 8, 16}
	times := make([]float64, len(procs))
	for i, p := range procs {
		times[i] = serial + work/float64(p)
	}
	fit, err := FitAmdahl(procs, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Serial-serial) > 1e-9 || math.Abs(fit.Work-work) > 1e-9 {
		t.Errorf("fit = %+v, want serial %v work %v", fit, serial, work)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %v for exact data", fit.R2)
	}
	if math.Abs(fit.SerialFraction()-serial/(serial+work)) > 1e-9 {
		t.Errorf("serial fraction = %v", fit.SerialFraction())
	}
	if math.Abs(fit.MaxSpeedup()-(serial+work)/serial) > 1e-9 {
		t.Errorf("max speedup = %v", fit.MaxSpeedup())
	}
}

func TestFitAmdahlNoisy(t *testing.T) {
	s := rng.New(3)
	const serial, work = 1.0, 20.0
	procs := []int{1, 2, 3, 4, 6, 8, 12, 16}
	times := make([]float64, len(procs))
	for i, p := range procs {
		times[i] = (serial + work/float64(p)) * (1 + 0.02*s.NormFloat64())
	}
	fit, err := FitAmdahl(procs, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Serial-serial) > 0.5 || math.Abs(fit.Work-work) > 2 {
		t.Errorf("noisy fit off: %+v", fit)
	}
	if fit.R2 < 0.95 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitAmdahlProperty(t *testing.T) {
	// For any positive (serial, work) the fit on exact data recovers
	// the parameters.
	f := func(rawS, rawW float64) bool {
		serial := math.Mod(math.Abs(rawS), 100) + 0.01
		work := math.Mod(math.Abs(rawW), 1000) + 0.01
		procs := []int{1, 2, 5, 9}
		times := make([]float64, len(procs))
		for i, p := range procs {
			times[i] = serial + work/float64(p)
		}
		fit, err := FitAmdahl(procs, times)
		if err != nil {
			return false
		}
		return math.Abs(fit.Serial-serial) < 1e-6*(1+serial) &&
			math.Abs(fit.Work-work) < 1e-6*(1+work)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFitAmdahlErrors(t *testing.T) {
	if _, err := FitAmdahl([]int{1}, []float64{1}); err == nil {
		t.Error("one point: want error")
	}
	if _, err := FitAmdahl([]int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := FitAmdahl([]int{2, 2}, []float64{1, 1}); err == nil {
		t.Error("identical procs: want error")
	}
	if _, err := FitAmdahl([]int{0, 2}, []float64{1, 1}); err == nil {
		t.Error("invalid proc: want error")
	}
}

func TestPredictFormulaShape(t *testing.T) {
	c := CostParams{
		GammaSec:         1e-3,
		AlphaSec:         30e-6,
		ComputeSec:       0.1,
		ScanSecPerRecord: 1e-6,
	}
	t1 := Predict(c, 1_000_000, 5, 1, 8192, 1e4, 100e6)
	t4 := Predict(c, 1_000_000, 5, 4, 8192, 1e4, 100e6)
	t64 := Predict(c, 1_000_000, 5, 64, 8192, 1e4, 100e6)
	if t4 >= t1 {
		t.Errorf("more procs should be faster in the data-parallel regime: %v vs %v", t4, t1)
	}
	// With enough processors the α·S·p·k term dominates and time grows
	// again — the trade-off the paper's analysis predicts.
	t512 := Predict(c, 1_000_000, 5, 512, 8192, 1e4, 100e6)
	if t512 <= t64 {
		t.Errorf("communication term should eventually dominate: T(512)=%v <= T(64)=%v", t512, t64)
	}
}

func TestPredictSingleProcNoComm(t *testing.T) {
	c := CostParams{GammaSec: 1e-3, AlphaSec: 1, ComputeSec: 0, ScanSecPerRecord: 0}
	// p=1 must not include the communication term, per the paper
	// ("substituting p = 1 and S = 0").
	withComm := Predict(c, 1000, 2, 1, 100, 1e9, 1)
	if withComm > 0.1 {
		t.Errorf("p=1 charged communication: %v", withComm)
	}
}

func TestMaxSpeedupInfinity(t *testing.T) {
	f := AmdahlFit{Serial: 0, Work: 10}
	if !math.IsInf(f.MaxSpeedup(), 1) {
		t.Errorf("zero serial should give infinite bound")
	}
}
