// Package model implements the paper's §4.5 running-time analysis and
// tools to validate measured runs against it. The paper gives the
// total time as
//
//	T(p) = O(c^k) + (N/(p·B))·k·γ + α·S·p·k
//
// — a compute term exponential in the highest cluster dimensionality
// k, a data-parallel I/O/scan term dividing by p, and a communication
// term growing with p. For measured sweeps over p the package fits the
// two-parameter Amdahl form T(p) = serial + work/p by least squares,
// which quantifies the paper's "heavily data parallel" claim: the
// fitted serial fraction bounds the achievable speedup.
package model

import (
	"fmt"
	"math"
)

// CostParams are the machine constants of the §4.5 formula.
type CostParams struct {
	// GammaSec is the time to read one block of B records from local
	// disk (γ).
	GammaSec float64
	// AlphaSec is the per-message latency (α).
	AlphaSec float64
	// ComputeSec is the data-independent compute term (the c^k part),
	// measured or estimated at p = 1.
	ComputeSec float64
	// ScanSecPerRecord is the per-record processing time of one pass.
	ScanSecPerRecord float64
}

// Predict evaluates the §4.5 total-time formula for N records, k
// passes, p processors, block size B and total exchanged bytes S with
// bandwidth bw.
func Predict(c CostParams, n, k, p, b int, s, bw float64) float64 {
	if p < 1 {
		p = 1
	}
	blocks := float64(n) / float64(p*b)
	t := c.ComputeSec
	t += float64(n) / float64(p) * float64(k) * c.ScanSecPerRecord
	t += blocks * float64(k) * c.GammaSec
	if p > 1 {
		t += (c.AlphaSec + s/bw) * float64(p) * float64(k)
	}
	return t
}

// AmdahlFit is the least-squares fit of T(p) = Serial + Work/p.
type AmdahlFit struct {
	// Serial is the fitted p-independent time (replicated work,
	// communication, fixed costs).
	Serial float64
	// Work is the fitted perfectly-divisible work (at p = 1 the model
	// predicts Serial + Work).
	Work float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// SerialFraction returns Serial / (Serial + Work), the Amdahl serial
// fraction: the asymptotic inverse-speedup bound.
func (f AmdahlFit) SerialFraction() float64 {
	if f.Serial+f.Work == 0 {
		return 0
	}
	return f.Serial / (f.Serial + f.Work)
}

// Predict evaluates the fitted model at p processors.
func (f AmdahlFit) Predict(p int) float64 {
	if p < 1 {
		p = 1
	}
	return f.Serial + f.Work/float64(p)
}

// MaxSpeedup returns the fit's asymptotic speedup bound
// (Serial+Work)/Serial, or +Inf when the serial term is non-positive.
func (f AmdahlFit) MaxSpeedup() float64 {
	if f.Serial <= 0 {
		return math.Inf(1)
	}
	return (f.Serial + f.Work) / f.Serial
}

// FitAmdahl fits T(p) = s + w/p to measured (procs, seconds) pairs by
// ordinary least squares in the regressor x = 1/p. It needs at least
// two distinct processor counts.
func FitAmdahl(procs []int, seconds []float64) (AmdahlFit, error) {
	if len(procs) != len(seconds) {
		return AmdahlFit{}, fmt.Errorf("model: %d procs for %d times", len(procs), len(seconds))
	}
	if len(procs) < 2 {
		return AmdahlFit{}, fmt.Errorf("model: need at least 2 points, have %d", len(procs))
	}
	n := float64(len(procs))
	var sx, sy, sxx, sxy float64
	for i, p := range procs {
		if p < 1 {
			return AmdahlFit{}, fmt.Errorf("model: invalid proc count %d", p)
		}
		x := 1 / float64(p)
		y := seconds[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return AmdahlFit{}, fmt.Errorf("model: all processor counts identical")
	}
	w := (n*sxy - sx*sy) / det
	s := (sy - w*sx) / n
	fit := AmdahlFit{Serial: s, Work: w}

	// R²
	mean := sy / n
	var ssTot, ssRes float64
	for i, p := range procs {
		pred := fit.Predict(p)
		ssTot += (seconds[i] - mean) * (seconds[i] - mean)
		ssRes += (seconds[i] - pred) * (seconds[i] - pred)
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	return fit, nil
}
