package realdata

import (
	"testing"

	"pmafia/internal/grid"
	"pmafia/internal/mafia"
)

func TestDAXShape(t *testing.T) {
	m := DAX(1)
	if m.NumRecords() != DAXRecords || m.Dims() != DAXDims {
		t.Fatalf("shape %dx%d", m.NumRecords(), m.Dims())
	}
	for i := 0; i < m.NumRecords(); i++ {
		for _, v := range m.Row(i) {
			if v < 0 || v >= 100 {
				t.Fatalf("value %v out of range", v)
			}
		}
	}
}

func TestDAXHasLowDimensionalClusters(t *testing.T) {
	m := DAX(1)
	res, err := mafia.Run(m, mafia.Config{Adaptive: adaptiveAlpha(2)})
	if err != nil {
		t.Fatal(err)
	}
	byDim := map[int]int{}
	for _, c := range res.Clusters {
		byDim[len(c.Dims)]++
	}
	multi := 0
	for d, n := range byDim {
		if d >= 3 {
			multi += n
		}
	}
	if multi == 0 {
		t.Errorf("no clusters of dimension >= 3 found: %v", byDim)
	}
	for d := range byDim {
		if d > 8 {
			t.Errorf("implausibly high-dimensional cluster (%d dims) in DAX-like data", d)
		}
	}
}

func TestIonosphereShape(t *testing.T) {
	m := Ionosphere(2)
	if m.NumRecords() != IonosphereRecords || m.Dims() != IonosphereDims {
		t.Fatalf("shape %dx%d", m.NumRecords(), m.Dims())
	}
	for i := 0; i < m.NumRecords(); i++ {
		for _, v := range m.Row(i) {
			if v < -1 || v >= 1 {
				t.Fatalf("value %v out of [-1,1)", v)
			}
		}
	}
}

func TestIonosphereAlphaSweep(t *testing.T) {
	// §5.9.2: raising α from 2 to 3 collapses many small clusters to
	// (about) one dominant cluster.
	m := Ionosphere(2)
	at2, err := mafia.Run(m, mafia.Config{Adaptive: adaptiveAlpha(2)})
	if err != nil {
		t.Fatal(err)
	}
	at3, err := mafia.Run(m, mafia.Config{Adaptive: adaptiveAlpha(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(at2.Clusters) == 0 {
		t.Fatal("alpha=2 found nothing")
	}
	if len(at3.Clusters) >= len(at2.Clusters) {
		t.Errorf("alpha=3 clusters (%d) not fewer than alpha=2 (%d)", len(at3.Clusters), len(at2.Clusters))
	}
}

func TestEachMovieShape(t *testing.T) {
	m := EachMovie(50000, 3)
	if m.NumRecords() != 50000 || m.Dims() != EachMovieDims {
		t.Fatalf("shape %dx%d", m.NumRecords(), m.Dims())
	}
	for i := 0; i < 1000; i++ {
		rec := m.Row(i)
		if rec[0] < 0 || rec[0] >= EachMovieUsers {
			t.Fatalf("user id %v out of range", rec[0])
		}
		if rec[1] < 0 || rec[1] >= EachMovieMovies {
			t.Fatalf("movie id %v out of range", rec[1])
		}
		if rec[2] < 0 || rec[2] >= 1 || rec[3] < 0 || rec[3] >= 1 {
			t.Fatalf("score/weight out of range: %v", rec)
		}
	}
}

func TestEachMovieDefaultSize(t *testing.T) {
	if testing.Short() {
		t.Skip("default-size EachMovie is large")
	}
	m := EachMovie(0, 1)
	if m.NumRecords() != 2811983 {
		t.Errorf("default records = %d", m.NumRecords())
	}
}

func TestEachMovieTwoDimensionalClusters(t *testing.T) {
	m := EachMovie(60000, 3)
	res, err := mafia.Run(m, mafia.Config{Adaptive: adaptiveAlpha(1.8)})
	if err != nil {
		t.Fatal(err)
	}
	twoD := 0
	for _, c := range res.Clusters {
		if len(c.Dims) == 2 && c.Dims[0] == 0 && c.Dims[1] == 1 {
			twoD++
		}
		if len(c.Dims) > 2 {
			t.Errorf("cluster of dimension %d in ratings data", len(c.Dims))
		}
	}
	if twoD < 3 {
		t.Errorf("found %d (user,movie) clusters, want several", twoD)
	}
}

func adaptiveAlpha(a float64) grid.AdaptiveParams {
	return grid.AdaptiveParams{Alpha: a}
}

func TestEachMovieExactlySevenBlocks(t *testing.T) {
	// With a fixed seed the seven embedded user×movie blocks must come
	// back as exactly seven 2-dimensional clusters (the paper's §5.9.3
	// finding), since blocks are placed in disjoint sevenths of both
	// id spaces.
	m := EachMovie(150000, 5)
	res, err := mafia.Run(m, mafia.Config{Adaptive: adaptiveAlpha(1.8)})
	if err != nil {
		t.Fatal(err)
	}
	twoD := 0
	for _, c := range res.Clusters {
		if len(c.Dims) == 2 && c.Dims[0] == 0 && c.Dims[1] == 1 {
			twoD++
		}
	}
	if twoD != 7 {
		t.Errorf("found %d (user,movie) clusters, want exactly 7", twoD)
	}
}
