// Package realdata builds synthetic stand-ins for the three real-world
// data sets of the paper's §5.9 — the DAX one-day-ahead prediction set
// (22 dimensions, 2757 records), the Goose Bay ionosphere radar set
// (34 dimensions, 351 records) and the DEC EachMovie ratings set (4
// dimensions, ~2.8 million records). The true files are proprietary or
// offline; these generators match their shape — dimensionality, record
// count, and the kind of embedded structure the paper reports finding
// (many small low-dimensional clusters for DAX, a handful of
// concentrated subspaces for the ionosphere, and a few user-block ×
// movie-block clusters in 2 dimensions for EachMovie) — so the
// experiments exercise the same code paths at the same scales.
package realdata

import (
	"pmafia/internal/dataset"
	"pmafia/internal/rng"
)

// DAXRecords and DAXDims are the shape of the paper's DAX data set.
const (
	DAXRecords = 2757
	DAXDims    = 22
)

// DAX generates a DAX-like financial data set: 22 indicator series
// over 2757 trading days. Market "regimes" concentrate subsets of the
// indicators into narrow bands, producing many clusters embedded in
// 3-6 dimensional subspaces, the structure Table 4 reports.
func DAX(seed uint64) *dataset.Matrix {
	s := rng.New(seed)
	m := dataset.NewMatrix(DAXRecords, DAXDims)
	// Start fully diffuse.
	for i := 0; i < DAXRecords; i++ {
		rec := m.Row(i)
		for j := range rec {
			rec[j] = s.In(0, 100)
		}
	}
	// Regimes: disjoint episodes during which a subset of indicators
	// trades in a narrow band. Bands are 2-3% of the domain while a
	// regime covers ~8% of the records, so the in-band density is
	// several times the uniform expectation; disjoint spans keep the
	// embedded clusters at their intended 3-6 dimensions.
	const regimes = 12
	for r := 0; r < regimes; r++ {
		lo := r * DAXRecords / regimes
		hi := (r + 1) * DAXRecords / regimes
		nd := 3 + s.Intn(4) // 3..6 concentrated indicators
		dims := s.Perm(DAXDims)[:nd]
		for _, d := range dims {
			center := s.In(10, 90)
			width := s.In(1.0, 1.6)
			for i := lo; i < hi; i++ {
				m.Row(i)[d] = s.In(center-width, center+width)
			}
		}
	}
	return m
}

// IonosphereRecords and IonosphereDims are the shape of the paper's
// ionosphere data set.
const (
	IonosphereRecords = 351
	IonosphereDims    = 34
)

// Ionosphere generates an ionosphere-like radar data set: 34 pulse
// attributes in [-1, 1] over 351 returns. "Good" returns concentrate a
// few attributes near characteristic values, with one dominant
// concentration that survives a raised α (the paper finds many 3-4
// dimensional clusters at α=2 and a single 3-dimensional cluster at
// α=3).
func Ionosphere(seed uint64) *dataset.Matrix {
	s := rng.New(seed)
	m := dataset.NewMatrix(IonosphereRecords, IonosphereDims)
	for i := 0; i < IonosphereRecords; i++ {
		rec := m.Row(i)
		for j := range rec {
			rec[j] = s.In(-1, 1)
		}
	}
	// Good returns (~64%): dominant concentration in three attributes.
	good := (IonosphereRecords * 64) / 100
	for i := 0; i < good; i++ {
		rec := m.Row(i)
		rec[0] = s.In(0.78, 0.98)
		rec[4] = s.In(0.55, 0.8)
		rec[6] = s.In(0.6, 0.82)
	}
	// Weaker secondary concentrations over subsets of the good class.
	for i := 0; i < good*2/3; i++ {
		rec := m.Row(i)
		rec[2] = s.In(0.3, 0.62)
		rec[8] = s.In(-0.2, 0.15)
	}
	for i := good / 3; i < good; i++ {
		rec := m.Row(i)
		rec[10] = s.In(0.1, 0.45)
		rec[12] = s.In(0.4, 0.72)
	}
	// Shuffle rows.
	s.Shuffle(m.NumRecords(), func(i, j int) {
		ri, rj := m.Row(i), m.Row(j)
		for x := range ri {
			ri[x], rj[x] = rj[x], ri[x]
		}
	})
	return m
}

// EachMovieDims is the rating-record width: user-id, movie-id, score,
// weight.
const EachMovieDims = 4

// EachMovieUsers and EachMovieMovies are the id ranges of the original
// data set (72916 users, 1628 movies).
const (
	EachMovieUsers  = 72916
	EachMovieMovies = 1628
)

// EachMovie generates records ratings shaped like the DEC EachMovie
// set: each record is (user-id, movie-id, score, weight) with score
// and weight in [0,1). Seven popular movie blocks rated by
// concentrated user communities embed seven 2-dimensional clusters in
// the (user, movie) plane, matching the paper's finding of "7 clusters
// all of dimension 2".
func EachMovie(records int, seed uint64) *dataset.Matrix {
	if records <= 0 {
		records = 2811983
	}
	s := rng.New(seed)
	m := dataset.NewMatrix(records, EachMovieDims)
	type block struct {
		userLo, userHi   float64
		movieLo, movieHi float64
	}
	blocks := make([]block, 7)
	for b := range blocks {
		// Spread the blocks apart so the seven clusters stay distinct:
		// block b's user band lives in the b-th seventh of the id
		// space.
		uLo := (float64(b) + s.In(0.1, 0.5)) / 7 * EachMovieUsers
		mLo := (float64(6-b) + s.In(0.1, 0.5)) / 7 * EachMovieMovies
		blocks[b] = block{
			userLo:  uLo,
			userHi:  uLo + 0.025*EachMovieUsers,
			movieLo: mLo,
			movieHi: mLo + 0.03*EachMovieMovies,
		}
	}
	for i := 0; i < records; i++ {
		rec := m.Row(i)
		if s.Float64() < 0.60 {
			b := blocks[s.Intn(len(blocks))]
			rec[0] = s.In(b.userLo, b.userHi)
			rec[1] = s.In(b.movieLo, b.movieHi)
		} else {
			rec[0] = s.In(0, EachMovieUsers)
			rec[1] = s.In(0, EachMovieMovies)
		}
		rec[2] = s.Float64() // score
		rec[3] = s.Float64() // weight
	}
	return m
}
