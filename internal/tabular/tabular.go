// Package tabular renders the experiment harness's tables as aligned
// text (for terminal output, mirroring the paper's tables) and as CSV
// (for plotting the figures).
package tabular

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it must have exactly len(Headers) cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("tabular: row with %d cells for %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// F formats a float for a table cell with sensible precision.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100 || v <= -100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case v >= 1 || v <= -1:
		return strconv.FormatFloat(v, 'f', 2, 64)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// I formats an int for a table cell.
func I(v int) string { return strconv.Itoa(v) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV with the title as a comment line.
func (t *Table) RenderCSV(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("# ")
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
