package tabular

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("Title", "a", "column")
	tb.AddRow("1", "x")
	tb.AddRow("22", "yyyy")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// header and rows align: the second column starts at the same
	// offset in every data line.
	idx := strings.Index(lines[1], "a") + 4 // width of "22" + 2 spaces
	_ = idx
	if !strings.Contains(lines[3], "1") || !strings.Contains(lines[4], "yyyy") {
		t.Errorf("rows wrong: %q", out)
	}
}

func TestAddRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on wrong cell count")
		}
	}()
	New("t", "a").AddRow("1", "2")
}

func TestRenderCSV(t *testing.T) {
	tb := New("My, Title", "a", "b")
	tb.AddRow("1", "va,lue")
	tb.AddRow("2", `qu"ote`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# My, Title\n") {
		t.Errorf("missing comment title: %q", out)
	}
	if !strings.Contains(out, `"va,lue"`) {
		t.Errorf("comma not quoted: %q", out)
	}
	if !strings.Contains(out, `"qu""ote"`) {
		t.Errorf("quote not escaped: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(0) != "0" {
		t.Error(F(0))
	}
	if F(1234.5678) != "1234.6" {
		t.Error(F(1234.5678))
	}
	if F(3.14159) != "3.14" {
		t.Error(F(3.14159))
	}
	if F(0.00123) != "0.00123" {
		t.Error(F(0.00123))
	}
	if I(42) != "42" {
		t.Error(I(42))
	}
}
