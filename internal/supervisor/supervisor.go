// Package supervisor turns the machine's failure detection into
// recovery: it runs a fit, catches recoverable rank failures (injected
// crashes, panics, detected stalls), rebuilds the sp2 machine, and
// re-enters the fit from the last good checkpoint with capped
// exponential backoff between attempts.
//
// The recovery state machine is deliberately small:
//
//	START ──run──▶ DONE                      (no failure)
//	  │
//	  ▼ recoverable RankError
//	BACKOFF ──load latest good ckpt──▶ RESUME ──run──▶ DONE
//	  ▲                                   │
//	  └──────── recoverable RankError ────┘   (budget left)
//	  │
//	  ▼ budget exhausted / unrecoverable error
//	FAIL (ExhaustedError / original error)
//
// Checkpoint loading falls back level by level past corrupt or stale
// files (see ckpt.Manager.LoadLatest); with no usable checkpoint the
// fit restarts from scratch, which is always correct because the
// engine is deterministic.
package supervisor

import (
	"context"
	"fmt"
	"time"

	"pmafia/internal/ckpt"
	"pmafia/internal/dataset"
	"pmafia/internal/mafia"
	"pmafia/internal/obs"
	"pmafia/internal/sp2"
)

// Options tunes the restart loop.
type Options struct {
	// Manager persists and restores checkpoints. nil disables
	// checkpointing: restarts re-run the fit from scratch.
	Manager *ckpt.Manager
	// MaxRestarts bounds how many times a failed fit is retried
	// (0: never retry — the first failure is final).
	MaxRestarts int
	// Backoff is the delay before the first restart, doubling per
	// subsequent restart (default 100ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 10s).
	MaxBackoff time.Duration
	// Resume loads the latest checkpoint before the first attempt, so
	// a new process continues a previous process's fit.
	Resume bool
	// Recorder receives the supervisor.* counters. nil costs nothing.
	Recorder *obs.Recorder
	// Logf reports restart decisions (e.g. log.Printf). nil is silent.
	Logf func(format string, args ...any)
}

// Outcome reports how a supervised fit completed.
type Outcome struct {
	// Result is the completed fit.
	Result *mafia.Result
	// Restarts is how many times the fit was re-entered after a
	// failure.
	Restarts int
	// ResumedLevel is the highest checkpoint level any attempt resumed
	// from (0: every attempt started from scratch).
	ResumedLevel int
	// Recovered is true when the run completed after at least one
	// restart or resume — the exit-code distinction cmd/pmafia
	// surfaces.
	Recovered bool
}

// ExhaustedError is returned when the fit kept failing recoverably
// until the restart budget ran out. It wraps the last failure.
type ExhaustedError struct {
	// Restarts is how many restarts were attempted.
	Restarts int
	// Err is the last attempt's failure.
	Err error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("supervisor: fit still failing after %d restart(s): %v", e.Restarts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// Run executes a supervised fit: mafia.RunParallel under the restart
// policy of opts. Arguments mirror mafia.RunParallel; ctx cancels the
// backoff waits (the machine's own cancellation is wired through
// mcfg.Ctx as usual). cfg.OnCheckpoint is installed from opts.Manager;
// a caller-provided hook still runs after the checkpoint is persisted.
func Run(ctx context.Context, shards []dataset.Source, domains []dataset.Range, cfg mafia.Config, mcfg sp2.Config, opts Options) (*Outcome, error) {
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 10 * time.Second
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Manager != nil {
		after := cfg.OnCheckpoint
		cfg.OnCheckpoint = func(s *mafia.Snapshot) error {
			if err := opts.Manager.Save(s); err != nil {
				return err
			}
			if after != nil {
				return after(s)
			}
			return nil
		}
	}

	out := &Outcome{}
	backoff := opts.Backoff
	for attempt := 0; ; attempt++ {
		acfg := cfg
		if opts.Manager != nil && (attempt > 0 || opts.Resume) {
			snap, err := opts.Manager.LoadLatest()
			if err != nil {
				return nil, err
			}
			if snap != nil {
				acfg.Resume = snap
				if snap.Level > out.ResumedLevel {
					out.ResumedLevel = snap.Level
				}
				count(opts.Recorder, obs.CtrSupervisorResume, 1)
				count(opts.Recorder, obs.CtrCkptResumeLevel, int64(snap.Level))
				logf(opts, "resuming from checkpoint level %d (attempt %d)", snap.Level, attempt+1)
			} else if attempt > 0 {
				logf(opts, "no usable checkpoint; restarting from scratch (attempt %d)", attempt+1)
			}
		}

		res, err := mafia.RunParallel(shards, domains, acfg, mcfg)
		if err == nil {
			out.Result = res
			out.Recovered = out.Restarts > 0 || (opts.Resume && out.ResumedLevel > 0)
			return out, nil
		}
		if !sp2.Recoverable(err) || ctx.Err() != nil {
			return nil, err
		}
		if attempt >= opts.MaxRestarts {
			if opts.MaxRestarts == 0 {
				// No restart budget was ever granted: surface the raw
				// failure as unrecoverable rather than "exhausted".
				return nil, err
			}
			return nil, &ExhaustedError{Restarts: out.Restarts, Err: err}
		}

		out.Restarts++
		count(opts.Recorder, obs.CtrSupervisorRetry, 1)
		logf(opts, "fit failed (%v); restarting in %s (%d/%d)", err, backoff, attempt+1, opts.MaxRestarts)
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, err
		case <-t.C:
		}
		if backoff *= 2; backoff > opts.MaxBackoff {
			backoff = opts.MaxBackoff
		}
	}
}

func count(rec *obs.Recorder, name string, delta int64) {
	if rec != nil {
		rec.AddGlobal(name, delta)
	}
}

func logf(opts Options, format string, args ...any) {
	if opts.Logf != nil {
		opts.Logf("supervisor: "+format, args...)
	}
}
