package supervisor_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"pmafia/internal/ckpt"
	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/faults"
	"pmafia/internal/mafia"
	"pmafia/internal/obs"
	"pmafia/internal/sp2"
	"pmafia/internal/supervisor"
)

// testData generates a data set with a 3-dim embedded cluster, deep
// enough that the fit runs several lattice levels and therefore emits
// several level-barrier checkpoints.
func testData(t testing.TB) *dataset.Matrix {
	t.Helper()
	ext := []dataset.Range{{Lo: 25, Hi: 40}, {Lo: 25, Hi: 40}, {Lo: 25, Hi: 40}}
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:     5,
		Records:  2000,
		Clusters: []datagen.Cluster{datagen.UniformBox([]int{0, 2, 4}, ext, 0)},
		Seed:     91,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func shardsOf(m *dataset.Matrix, p int) []dataset.Source {
	shards := make([]dataset.Source, p)
	for r := 0; r < p; r++ {
		lo, hi := diskio.ShareBounds(m.NumRecords(), r, p)
		shards[r] = m.Slice(lo, hi)
	}
	return shards
}

func manager(t testing.TB, opts ckpt.Options) *ckpt.Manager {
	t.Helper()
	mgr, err := ckpt.NewManager(t.TempDir(), ckpt.Fingerprint{DataPath: "mem", DataBytes: 1, ConfigHash: 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// summary is the deterministic projection of a Result: everything
// except wall-clock timing and the machine report. Two runs of the
// same fit — fault-free, or crashed and resumed from any checkpoint —
// must produce DeepEqual summaries.
type summary struct {
	N        int
	Grid     any
	Levels   []mafia.LevelStats
	Clusters []string
}

func summarize(res *mafia.Result) summary {
	s := summary{N: res.N, Grid: res.Grid.Spec()}
	for _, l := range res.Levels {
		l.Seconds, l.PopulateSeconds = 0, 0
		s.Levels = append(s.Levels, l)
	}
	for _, c := range res.Clusters {
		s.Clusters = append(s.Clusters, c.String())
	}
	return s
}

// TestResumeDeterminismMatrix is the PR's central guarantee: crash a
// rank at EVERY collective ordinal of the fit, for p in {1,2,4}, let
// the supervisor resume from the latest level-barrier checkpoint, and
// require the final Result to be identical to the fault-free run's.
// The fault-free Report.Collectives count enumerates the ordinals, so
// the matrix covers every level boundary by construction.
func TestResumeDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash matrix is not short")
	}
	m := testData(t)
	for _, p := range []int{1, 2, 4} {
		shards := shardsOf(m, p)
		ref, err := mafia.RunParallel(shards, nil, mafia.Config{}, sp2.Config{Procs: p})
		if err != nil {
			t.Fatalf("p=%d fault-free: %v", p, err)
		}
		want := summarize(ref)
		total := int(ref.Report.Collectives)
		if total < 4 {
			t.Fatalf("p=%d: fit only has %d collectives; matrix would be vacuous", p, total)
		}
		for c := 0; c < total; c++ {
			plan := faults.New(uint64(c)+1, faults.Fault{
				Kind: faults.RankCrash, Rank: c % p, Index: int64(c),
			})
			out, err := supervisor.Run(context.Background(), shards, nil, mafia.Config{},
				sp2.Config{Procs: p, Faults: plan},
				supervisor.Options{
					Manager:     manager(t, ckpt.Options{}),
					MaxRestarts: 1,
					Backoff:     time.Millisecond,
				})
			if err != nil {
				t.Fatalf("p=%d crash at collective %d: %v", p, c, err)
			}
			if out.Restarts != 1 {
				t.Fatalf("p=%d crash at collective %d: %d restarts, want 1", p, c, out.Restarts)
			}
			if got := summarize(out.Result); !reflect.DeepEqual(got, want) {
				t.Errorf("p=%d crash at collective %d: recovered result diverges\n got %+v\nwant %+v",
					p, c, got, want)
			}
		}
	}
}

// TestTornCheckpointFallsBack: tear the highest checkpoint that
// exists at crash time mid-write; recovery must skip the torn file,
// resume from the previous good level, and still reproduce the
// fault-free result. p=1 keeps the collective/checkpoint interleaving
// strictly sequential, so the probe below is exact.
func TestTornCheckpointFallsBack(t *testing.T) {
	m := testData(t)
	shards := shardsOf(m, 1)

	ref, err := mafia.RunParallel(shards, nil, mafia.Config{}, sp2.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(ref)
	crashAt := int64(ref.Report.Collectives) - 1

	// Probe which checkpoint levels land on disk before the crash
	// point: crash at the final collective and record the hook calls.
	var saved []int
	probeCfg := mafia.Config{OnCheckpoint: func(s *mafia.Snapshot) error {
		saved = append(saved, s.Level)
		return nil
	}}
	probePlan := faults.New(7, faults.Fault{Kind: faults.RankCrash, Rank: 0, Index: crashAt})
	if _, err := mafia.RunParallel(shards, nil, probeCfg, sp2.Config{Procs: 1, Faults: probePlan}); err == nil {
		t.Fatal("probe crash did not fire")
	}
	if len(saved) < 2 {
		t.Fatalf("only checkpoints %v written before the last collective; need 2+ for a fallback", saved)
	}
	tornLevel, fallbackLevel := saved[len(saved)-1], saved[len(saved)-2]

	// Tear the newest of those writes: at restart the highest file on
	// disk is the torn one and recovery must fall back one level.
	plan := faults.New(7,
		faults.Fault{Kind: faults.CkptTorn, Index: int64(len(saved) - 1)},
		faults.Fault{Kind: faults.RankCrash, Rank: 0, Index: crashAt},
	)
	rec := obs.New()
	out, err := supervisor.Run(context.Background(), shards, nil, mafia.Config{},
		sp2.Config{Procs: 1, Faults: plan},
		supervisor.Options{
			Manager:     manager(t, ckpt.Options{Recorder: rec, Faults: plan}),
			MaxRestarts: 2,
			Backoff:     time.Millisecond,
			Recorder:    rec,
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", out.Restarts)
	}
	if out.ResumedLevel != fallbackLevel {
		t.Errorf("resumed from level %d, want fallback to %d (torn level %d)",
			out.ResumedLevel, fallbackLevel, tornLevel)
	}
	if n := rec.Metrics().Counters[obs.CtrCkptCorrupt]; n < 1 {
		t.Errorf("torn checkpoint was never counted corrupt (ckpt.corrupt = %d)", n)
	}
	if got := summarize(out.Result); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered result diverges\n got %+v\nwant %+v", got, want)
	}
}

// TestStallRecovery: a stalled rank is detected by the collective
// watchdog, classified recoverable, and the fit completes on retry.
func TestStallRecovery(t *testing.T) {
	m := testData(t)
	const p = 2
	shards := shardsOf(m, p)
	ref, err := mafia.RunParallel(shards, nil, mafia.Config{}, sp2.Config{Procs: p})
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.New(3, faults.Fault{
		Kind: faults.RankStall, Rank: 1, Index: 2, Stall: 2 * time.Second,
	})
	out, err := supervisor.Run(context.Background(), shards, nil, mafia.Config{},
		sp2.Config{Procs: p, Faults: plan, CollectiveTimeout: 150 * time.Millisecond},
		supervisor.Options{
			Manager:     manager(t, ckpt.Options{}),
			MaxRestarts: 1,
			Backoff:     time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.Restarts != 1 || !out.Recovered {
		t.Errorf("restarts=%d recovered=%v, want 1/true", out.Restarts, out.Recovered)
	}
	if got, want := summarize(out.Result), summarize(ref); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered result diverges\n got %+v\nwant %+v", got, want)
	}
}

// TestExhaustedBudget: a crash that re-fires on every attempt must
// drain the restart budget and surface as ExhaustedError wrapping the
// underlying rank failure.
func TestExhaustedBudget(t *testing.T) {
	m := testData(t)
	shards := shardsOf(m, 2)
	// Collective 0 is reached by every attempt before any checkpoint
	// exists, so with a large Times budget each restart re-fails.
	plan := faults.New(1, faults.Fault{
		Kind: faults.RankCrash, Rank: 1, Index: 0, Times: 99,
	})
	rec := obs.New()
	_, err := supervisor.Run(context.Background(), shards, nil, mafia.Config{},
		sp2.Config{Procs: 2, Faults: plan},
		supervisor.Options{MaxRestarts: 2, Backoff: time.Millisecond, Recorder: rec})
	var ex *supervisor.ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v (%T), want ExhaustedError", err, err)
	}
	if ex.Restarts != 2 {
		t.Errorf("ExhaustedError.Restarts = %d, want 2", ex.Restarts)
	}
	var re *sp2.RankError
	if !errors.As(err, &re) {
		t.Errorf("ExhaustedError does not unwrap to the rank failure: %v", err)
	}
	if n := rec.Metrics().Counters[obs.CtrSupervisorRetry]; n != 2 {
		t.Errorf("supervisor.restarts = %d, want 2", n)
	}
}

// TestNoBudgetReturnsBareError: MaxRestarts 0 means the first failure
// is final and must surface as the raw rank error, not "exhausted".
func TestNoBudgetReturnsBareError(t *testing.T) {
	m := testData(t)
	shards := shardsOf(m, 2)
	plan := faults.New(1, faults.Fault{Kind: faults.RankCrash, Rank: 1, Index: 0})
	_, err := supervisor.Run(context.Background(), shards, nil, mafia.Config{},
		sp2.Config{Procs: 2, Faults: plan}, supervisor.Options{})
	var re *sp2.RankError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T), want *sp2.RankError", err, err)
	}
	var ex *supervisor.ExhaustedError
	if errors.As(err, &ex) {
		t.Errorf("MaxRestarts=0 failure wrapped as ExhaustedError: %v", err)
	}
}

// TestUnrecoverableErrorPassesThrough: configuration errors are not
// rank failures and must never be retried.
func TestUnrecoverableErrorPassesThrough(t *testing.T) {
	start := time.Now()
	_, err := supervisor.Run(context.Background(), nil, nil, mafia.Config{},
		sp2.Config{}, supervisor.Options{MaxRestarts: 5, Backoff: time.Second})
	if err == nil {
		t.Fatal("no error for an empty shard list")
	}
	var ex *supervisor.ExhaustedError
	if errors.As(err, &ex) {
		t.Errorf("config error wrapped as ExhaustedError: %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("unrecoverable error appears to have waited out backoff retries")
	}
}

// TestResumeFlagContinuesPreviousProcess: a second supervised run
// started with Resume picks up the checkpoints a first run left
// behind and reports the recovery, with an identical result.
func TestResumeFlagContinuesPreviousProcess(t *testing.T) {
	m := testData(t)
	shards := shardsOf(m, 2)
	mgr := manager(t, ckpt.Options{})
	first, err := supervisor.Run(context.Background(), shards, nil, mafia.Config{},
		sp2.Config{Procs: 2}, supervisor.Options{Manager: mgr})
	if err != nil {
		t.Fatal(err)
	}
	if first.Recovered {
		t.Error("fresh run reported Recovered")
	}
	rec := obs.New()
	second, err := supervisor.Run(context.Background(), shards, nil, mafia.Config{},
		sp2.Config{Procs: 2}, supervisor.Options{Manager: mgr, Resume: true, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Recovered || second.ResumedLevel < 1 {
		t.Errorf("resumed run: Recovered=%v ResumedLevel=%d", second.Recovered, second.ResumedLevel)
	}
	if n := rec.Metrics().Counters[obs.CtrSupervisorResume]; n != 1 {
		t.Errorf("supervisor.resumes = %d, want 1", n)
	}
	if got, want := summarize(second.Result), summarize(first.Result); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed result diverges\n got %+v\nwant %+v", got, want)
	}
}
