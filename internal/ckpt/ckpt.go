// Package ckpt persists the engine's level-barrier snapshots
// (mafia.Snapshot) as versioned, CRC32C-framed checkpoint files and
// manages a directory of them, so a crashed fit can resume from the
// last good level instead of starting over.
//
// The encoding follows the diskio/modelio conventions: a magic +
// version header, little-endian fields throughout, and atomic
// temp-file + rename writes. Unlike the single-checksum model format,
// a checkpoint is a sequence of independently checksummed frames —
// meta, grid, histogram, levels, units — so torn or bit-flipped files
// are rejected frame by frame without decoding past the damage.
//
// Format, version 1:
//
//	magic   [4]byte  "PMCK"
//	version uint32   1
//	frames  uint32   5
//	then per frame:
//	  length uint32  frame payload byte count
//	  crc    uint32  CRC32C (Castagnoli) of the frame payload
//	  payload length bytes
//
// Frame 0 (meta): fingerprint pathLen uint32 + path bytes,
// dataBytes uint64, configHash uint64, then level uint32, records
// uint64. Frame 1 (grid): the modelio dimension/bin layout. Frame 2
// (histogram): units uint32, dims uint32 with per-dim domain lo/hi
// float64, flat count uint32 + that many int64. Frame 3 (levels): the
// modelio per-level layout. Frame 4 (units): the dense-unit array (k
// uint32, bytes uint32 + unit encoding) then the registered sets
// (count uint32, each k uint32 + bytes uint32 + unit encoding).
//
// A checkpoint embeds a Fingerprint of the run that wrote it (dataset
// path + size + a hash of the result-determining Config fields); a
// loader presenting a different fingerprint gets ErrStale, so a
// checkpoint never resumes a different data set or configuration.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"

	"pmafia/internal/dataset"
	"pmafia/internal/grid"
	"pmafia/internal/mafia"
	"pmafia/internal/unit"
)

const (
	magic = "PMCK"
	// Version is the checkpoint format version this build reads and
	// writes.
	Version = 1

	headerLen = 4 + 4 + 4
	numFrames = 5
	frameHdr  = 4 + 4

	// maxFrame bounds a frame's declared length before any allocation:
	// a checkpoint holds a grid, a histogram, and unit arrays — tens of
	// megabytes at the extreme — so a gigabyte frame is corrupt.
	maxFrame = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors for checkpoint loading. ErrCorrupt wraps every
// malformed-bytes failure; ErrStale marks a structurally valid
// checkpoint written by a different run (data set or config mismatch).
var (
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint")
	ErrStale   = errors.New("ckpt: stale checkpoint")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Fingerprint identifies the run a checkpoint belongs to. Two runs
// match when they fit the same dataset file (path and byte size) under
// a Config whose result-determining fields hash equal.
type Fingerprint struct {
	// DataPath is the dataset file the fit reads (absolute paths
	// recommended — the comparison is textual).
	DataPath string
	// DataBytes is the dataset file's size in bytes.
	DataBytes int64
	// ConfigHash is ConfigHash() over the run's Config.
	ConfigHash uint64
}

// ConfigHash hashes the Config fields that determine the fit's result
// (grid construction, thresholds, level cap) after filling defaults,
// so an explicitly-defaulted and an unset Config hash equal. Custom
// Join and Prune functions are not hashable and are excluded: runs
// that differ only in those must use distinct checkpoint directories.
func ConfigHash(cfg mafia.Config, dims int) (uint64, error) {
	if err := cfg.Validate(dims); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var b [8]byte
	w64 := func(v uint64) { binary.LittleEndian.PutUint64(b[:], v); h.Write(b[:]) }
	wf := func(v float64) { w64(math.Float64bits(v)) }
	w64(uint64(dims))
	w64(uint64(cfg.Grid))
	w64(uint64(cfg.Adaptive.WindowUnits))
	wf(cfg.Adaptive.BetaPercent)
	wf(cfg.Adaptive.Alpha)
	w64(uint64(cfg.Adaptive.EquiSplit))
	wf(cfg.Adaptive.UniformBoost)
	w64(uint64(cfg.UniformBins))
	w64(uint64(len(cfg.UniformBinsPerDim)))
	for _, xi := range cfg.UniformBinsPerDim {
		w64(uint64(xi))
	}
	wf(cfg.UniformTau)
	w64(uint64(cfg.FineUnits))
	w64(uint64(cfg.MaxLevels))
	return h.Sum64(), nil
}

// Encode serializes a snapshot and its fingerprint into the version-1
// checkpoint byte format.
func Encode(snap *mafia.Snapshot, fp Fingerprint) ([]byte, error) {
	if snap == nil || snap.Grid == nil || snap.DU == nil {
		return nil, errors.New("ckpt: nil snapshot, grid, or dense units")
	}
	frames := [numFrames][]byte{
		encodeMeta(snap, fp),
		encodeGrid(snap.Grid),
		encodeHist(snap),
		encodeLevels(snap.Levels),
		encodeUnits(snap),
	}
	var buf bytes.Buffer
	hdr := make([]byte, headerLen)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	binary.LittleEndian.PutUint32(hdr[8:], numFrames)
	buf.Write(hdr)
	var fh [frameHdr]byte
	for _, f := range frames {
		binary.LittleEndian.PutUint32(fh[:4], uint32(len(f)))
		binary.LittleEndian.PutUint32(fh[4:], crc32.Checksum(f, castagnoli))
		buf.Write(fh[:])
		buf.Write(f)
	}
	return buf.Bytes(), nil
}

// Decode parses checkpoint bytes, verifying every frame checksum, and
// returns the snapshot with the fingerprint of the run that wrote it.
// Any malformed input yields an error wrapping ErrCorrupt — never a
// panic (the package fuzz target enforces this).
func Decode(data []byte) (*mafia.Snapshot, Fingerprint, error) {
	var fp Fingerprint
	if len(data) < headerLen {
		return nil, fp, corruptf("short header: %d bytes", len(data))
	}
	if string(data[:4]) != magic {
		return nil, fp, corruptf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fp, fmt.Errorf("ckpt: unsupported checkpoint version %d (this build reads %d)", v, Version)
	}
	if n := binary.LittleEndian.Uint32(data[8:]); n != numFrames {
		return nil, fp, corruptf("%d frames, want %d", n, numFrames)
	}
	var frames [numFrames][]byte
	off := headerLen
	for i := range frames {
		if off+frameHdr > len(data) {
			return nil, fp, corruptf("frame %d header truncated at byte %d", i, off)
		}
		length := binary.LittleEndian.Uint32(data[off:])
		want := binary.LittleEndian.Uint32(data[off+4:])
		off += frameHdr
		if length > maxFrame || off+int(length) > len(data) {
			return nil, fp, corruptf("frame %d of %d bytes truncated at byte %d", i, length, off)
		}
		frames[i] = data[off : off+int(length)]
		off += int(length)
		if got := crc32.Checksum(frames[i], castagnoli); got != want {
			return nil, fp, corruptf("frame %d checksum %08x, header says %08x", i, got, want)
		}
	}
	if off != len(data) {
		return nil, fp, corruptf("%d trailing bytes after frame %d", len(data)-off, numFrames-1)
	}

	snap := &mafia.Snapshot{}
	var err error
	if fp, err = decodeMeta(frames[0], snap); err != nil {
		return nil, fp, err
	}
	if snap.Grid, err = decodeGrid(frames[1], snap.N); err != nil {
		return nil, fp, err
	}
	if err = decodeHist(frames[2], snap); err != nil {
		return nil, fp, err
	}
	if snap.Levels, err = decodeLevels(frames[3]); err != nil {
		return nil, fp, err
	}
	if err = decodeUnits(frames[4], snap); err != nil {
		return nil, fp, err
	}
	if err = snap.Validate(len(snap.Grid.Dims)); err != nil {
		return nil, fp, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return snap, fp, nil
}

func encodeMeta(snap *mafia.Snapshot, fp Fingerprint) []byte {
	var e enc
	e.u32(uint32(len(fp.DataPath)))
	e.buf.WriteString(fp.DataPath)
	e.u64(uint64(fp.DataBytes))
	e.u64(fp.ConfigHash)
	e.u32(uint32(snap.Level))
	e.u64(uint64(snap.N))
	return e.buf.Bytes()
}

func decodeMeta(frame []byte, snap *mafia.Snapshot) (Fingerprint, error) {
	d := &dec{buf: frame, frame: "meta"}
	var fp Fingerprint
	fp.DataPath = string(d.take(d.count(1)))
	fp.DataBytes = int64(d.u64())
	fp.ConfigHash = d.u64()
	snap.Level = int(d.u32())
	snap.N = int(d.u64())
	if err := d.finish(); err != nil {
		return fp, err
	}
	if snap.Level < 1 || snap.N < 1 {
		return fp, corruptf("meta frame: level %d, %d records", snap.Level, snap.N)
	}
	return fp, nil
}

func encodeGrid(g *grid.Grid) []byte {
	var e enc
	spec := g.Spec()
	e.u32(uint32(len(spec)))
	for _, d := range spec {
		e.u32(uint32(d.Index))
		e.f64(d.Domain.Lo)
		e.f64(d.Domain.Hi)
		if d.Uniform {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.u32(uint32(d.FineUnits))
		e.u32(uint32(len(d.Bins)))
		for _, b := range d.Bins {
			e.f64(b.Bounds.Lo)
			e.f64(b.Bounds.Hi)
			e.u32(uint32(b.UnitLo))
			e.u32(uint32(b.UnitHi))
			e.u64(uint64(b.Count))
			e.f64(b.Threshold)
		}
	}
	return e.buf.Bytes()
}

func decodeGrid(frame []byte, n int) (*grid.Grid, error) {
	d := &dec{buf: frame, frame: "grid"}
	ndims := d.count(29)
	specs := make([]grid.DimSpec, 0, ndims)
	for i := 0; i < ndims && d.err == nil; i++ {
		s := grid.DimSpec{
			Index:     int(d.u32()),
			Domain:    dataset.Range{Lo: d.f64(), Hi: d.f64()},
			Uniform:   d.u8() != 0,
			FineUnits: int(d.u32()),
		}
		nbins := d.count(40)
		s.Bins = make([]grid.Bin, 0, nbins)
		for b := 0; b < nbins && d.err == nil; b++ {
			s.Bins = append(s.Bins, grid.Bin{
				Bounds:    dataset.Range{Lo: d.f64(), Hi: d.f64()},
				UnitLo:    int(d.u32()),
				UnitHi:    int(d.u32()),
				Count:     int64(d.u64()),
				Threshold: d.f64(),
			})
		}
		specs = append(specs, s)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	g, err := grid.FromBins(specs, int64(n))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, nil
}

func encodeHist(snap *mafia.Snapshot) []byte {
	var e enc
	e.u32(uint32(snap.HistUnits))
	e.u32(uint32(len(snap.HistDomains)))
	for _, r := range snap.HistDomains {
		e.f64(r.Lo)
		e.f64(r.Hi)
	}
	e.u32(uint32(len(snap.HistFlat)))
	for _, v := range snap.HistFlat {
		e.u64(uint64(v))
	}
	return e.buf.Bytes()
}

func decodeHist(frame []byte, snap *mafia.Snapshot) error {
	d := &dec{buf: frame, frame: "histogram"}
	snap.HistUnits = int(d.u32())
	ndoms := d.count(16)
	snap.HistDomains = make([]dataset.Range, 0, ndoms)
	for i := 0; i < ndoms && d.err == nil; i++ {
		snap.HistDomains = append(snap.HistDomains, dataset.Range{Lo: d.f64(), Hi: d.f64()})
	}
	nflat := d.count(8)
	snap.HistFlat = make([]int64, 0, nflat)
	for i := 0; i < nflat && d.err == nil; i++ {
		snap.HistFlat = append(snap.HistFlat, int64(d.u64()))
	}
	return d.finish()
}

func encodeLevels(levels []mafia.LevelStats) []byte {
	var e enc
	e.u32(uint32(len(levels)))
	for _, l := range levels {
		e.u32(uint32(l.K))
		e.u32(uint32(l.NcduRaw))
		e.u32(uint32(l.Ncdu))
		e.u32(uint32(l.Ndu))
		e.f64(l.Seconds)
		e.f64(l.PopulateSeconds)
	}
	return e.buf.Bytes()
}

func decodeLevels(frame []byte) ([]mafia.LevelStats, error) {
	d := &dec{buf: frame, frame: "levels"}
	nlevels := d.count(32)
	levels := make([]mafia.LevelStats, 0, nlevels)
	for i := 0; i < nlevels && d.err == nil; i++ {
		levels = append(levels, mafia.LevelStats{
			K:               int(d.u32()),
			NcduRaw:         int(d.u32()),
			Ncdu:            int(d.u32()),
			Ndu:             int(d.u32()),
			Seconds:         d.f64(),
			PopulateSeconds: d.f64(),
		})
	}
	return levels, d.finish()
}

func encodeUnits(snap *mafia.Snapshot) []byte {
	var e enc
	writeArray := func(a *unit.Array) {
		b := a.Encode()
		e.u32(uint32(a.K))
		e.u32(uint32(len(b)))
		e.buf.Write(b)
	}
	writeArray(snap.DU)
	e.u32(uint32(len(snap.Registered)))
	for _, r := range snap.Registered {
		writeArray(r)
	}
	return e.buf.Bytes()
}

func decodeUnits(frame []byte, snap *mafia.Snapshot) error {
	d := &dec{buf: frame, frame: "units"}
	readArray := func() *unit.Array {
		k := int(d.u32())
		b := d.take(d.count(1))
		if d.err != nil {
			return nil
		}
		if k < 1 || k > 255 {
			d.err = corruptf("units frame: %d-dimensional unit array", k)
			return nil
		}
		a, err := unit.Decode(k, b)
		if err != nil {
			d.err = fmt.Errorf("%w: units frame: %v", ErrCorrupt, err)
			return nil
		}
		return a
	}
	snap.DU = readArray()
	nreg := d.count(8)
	snap.Registered = make([]*unit.Array, 0, nreg)
	for i := 0; i < nreg && d.err == nil; i++ {
		if a := readArray(); a != nil {
			snap.Registered = append(snap.Registered, a)
		}
	}
	return d.finish()
}

// enc is a little-endian frame builder.
type enc struct{ buf bytes.Buffer }

func (e *enc) u8(v uint8)    { e.buf.WriteByte(v) }
func (e *enc) u32(v uint32)  { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); e.buf.Write(b[:]) }
func (e *enc) u64(v uint64)  { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); e.buf.Write(b[:]) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

// dec is a bounds-checked little-endian frame cursor; the first
// out-of-bounds read latches err and subsequent reads return zero.
type dec struct {
	buf   []byte
	off   int
	err   error
	frame string
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = corruptf("%s frame truncated at byte %d (want %d more)", d.frame, d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a u32 element count and rejects values that could not
// fit in the remaining frame at minBytes bytes per element.
func (d *dec) count(minBytes int) int {
	n := int(d.u32())
	if d.err == nil && int64(n)*int64(minBytes) > int64(len(d.buf)-d.off) {
		d.err = corruptf("%s frame: element count %d at byte %d exceeds the remaining frame", d.frame, n, d.off-4)
	}
	return n
}

// finish returns the latched error, or flags trailing garbage.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return corruptf("%s frame has %d trailing bytes", d.frame, len(d.buf)-d.off)
	}
	return nil
}
