package ckpt_test

import (
	"errors"
	"strings"
	"testing"

	"pmafia/internal/ckpt"
)

// FuzzDecode throws arbitrary bytes at the checkpoint decoder: Decode
// must either return a snapshot that passes Validate or reject the
// input with a typed error (ErrCorrupt, or the distinct
// unsupported-version error) — never panic or allocate from
// unvalidated frame fields.
func FuzzDecode(f *testing.F) {
	// Seed with a well-formed checkpoint, its truncations, and a few
	// deliberate mutations so the fuzzer starts inside the format.
	snaps := capture(f, 11)
	for _, snap := range snaps[:2] {
		data, err := ckpt.Encode(snap, testFP())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(data[:12])
		mut := append([]byte(nil), data...)
		mut[len(mut)/3] ^= 0x40
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		snap, _, err := ckpt.Decode(data)
		if err != nil {
			if !errors.Is(err, ckpt.ErrCorrupt) &&
				!strings.Contains(err.Error(), "unsupported checkpoint version") {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if err := snap.Validate(len(snap.Grid.Dims)); err != nil {
			t.Fatalf("decoded snapshot fails validation: %v", err)
		}
	})
}
