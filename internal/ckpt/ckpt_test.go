package ckpt_test

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"

	"pmafia/internal/ckpt"
	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/mafia"
	"pmafia/internal/obs"

	"pmafia/internal/faults"
)

// capture fits generated data with the checkpoint hook installed and
// returns every level-barrier snapshot the engine emitted.
func capture(t testing.TB, seed uint64) []*mafia.Snapshot {
	t.Helper()
	ext := []dataset.Range{{Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}}
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:     6,
		Records:  3000,
		Clusters: []datagen.Cluster{datagen.UniformBox([]int{1, 3, 4}, ext, 0)},
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*mafia.Snapshot
	cfg := mafia.Config{OnCheckpoint: func(s *mafia.Snapshot) error {
		snaps = append(snaps, s)
		return nil
	}}
	if _, err := mafia.Run(m, cfg); err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 {
		t.Fatalf("fit emitted %d snapshots, want at least one per level beyond 3", len(snaps))
	}
	return snaps
}

func testFP() ckpt.Fingerprint {
	return ckpt.Fingerprint{DataPath: "/data/train.pmaf", DataBytes: 12345, ConfigHash: 42}
}

func sameSnapshot(t *testing.T, got, want *mafia.Snapshot) {
	t.Helper()
	if got.N != want.N || got.Level != want.Level || got.HistUnits != want.HistUnits {
		t.Errorf("scalars: got N=%d L=%d U=%d, want N=%d L=%d U=%d",
			got.N, got.Level, got.HistUnits, want.N, want.Level, want.HistUnits)
	}
	if !reflect.DeepEqual(got.HistDomains, want.HistDomains) {
		t.Error("histogram domains differ")
	}
	if !reflect.DeepEqual(got.HistFlat, want.HistFlat) {
		t.Error("flattened histogram differs")
	}
	if !reflect.DeepEqual(got.Levels, want.Levels) {
		t.Errorf("levels: %+v vs %+v", got.Levels, want.Levels)
	}
	if !reflect.DeepEqual(got.Grid.Spec(), want.Grid.Spec()) {
		t.Error("grid spec differs")
	}
	if got.DU.K != want.DU.K || !bytes.Equal(got.DU.Encode(), want.DU.Encode()) {
		t.Error("dense units differ")
	}
	if len(got.Registered) != len(want.Registered) {
		t.Fatalf("registered sets: %d vs %d", len(got.Registered), len(want.Registered))
	}
	for i := range want.Registered {
		if !bytes.Equal(got.Registered[i].Encode(), want.Registered[i].Encode()) {
			t.Errorf("registered set %d differs", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, snap := range capture(t, 3) {
		data, err := ckpt.Encode(snap, testFP())
		if err != nil {
			t.Fatal(err)
		}
		got, fp, err := ckpt.Decode(data)
		if err != nil {
			t.Fatalf("level %d: %v", snap.Level, err)
		}
		if fp != testFP() {
			t.Errorf("fingerprint: %+v vs %+v", fp, testFP())
		}
		sameSnapshot(t, got, snap)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	snap := capture(t, 4)[1]
	data, err := ckpt.Encode(snap, testFP())
	if err != nil {
		t.Fatal(err)
	}

	// A bit flip anywhere in the body must fail the frame CRC (or the
	// header checks); sample positions across the whole file.
	for pos := 0; pos < len(data); pos += 97 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		if _, _, err := ckpt.Decode(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", pos)
		}
	}
	// Every truncation must be rejected with ErrCorrupt.
	for n := 0; n < len(data); n += 131 {
		if _, _, err := ckpt.Decode(data[:n]); !errors.Is(err, ckpt.ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v", n, err)
		}
	}
	// Trailing garbage is rejected too.
	if _, _, err := ckpt.Decode(append(append([]byte(nil), data...), 0xFF)); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("trailing byte: %v", err)
	}
	// An unsupported version is a distinct, non-corrupt error.
	mut := append([]byte(nil), data...)
	mut[4] = 99
	if _, _, err := ckpt.Decode(mut); err == nil || errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("future version: %v", err)
	}
}

func TestConfigHash(t *testing.T) {
	// An unset config and one spelling out the defaults hash equal.
	a, err := ckpt.ConfigHash(mafia.Config{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ckpt.ConfigHash(mafia.Config{ChunkRecords: 8192, Tau: 64}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("defaulted and explicit-default configs hash differently")
	}
	// Result-determining fields move the hash.
	c, err := ckpt.ConfigHash(mafia.Config{MaxLevels: 2}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("MaxLevels change did not move the hash")
	}
	d, err := ckpt.ConfigHash(mafia.Config{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("dimensionality change did not move the hash")
	}
	if _, err := ckpt.ConfigHash(mafia.Config{Tau: -1}, 6); err == nil {
		t.Error("invalid config hashed cleanly")
	}
}

func TestManagerSaveLoadPrune(t *testing.T) {
	snaps := capture(t, 5)
	rec := obs.New()
	m, err := ckpt.NewManager(t.TempDir(), testFP(), ckpt.Options{Keep: 2, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := m.LoadLatest(); err != nil || snap != nil {
		t.Fatalf("empty dir: snap=%v err=%v", snap, err)
	}
	for _, s := range snaps {
		if err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no checkpoint loaded")
	}
	sameSnapshot(t, got, snaps[len(snaps)-1])

	// Only the newest Keep files survive pruning.
	last := snaps[len(snaps)-1].Level
	for _, s := range snaps {
		_, err := os.Stat(m.Path(s.Level))
		if want := s.Level > last-2; (err == nil) != want {
			t.Errorf("level %d file present=%v, want %v", s.Level, err == nil, want)
		}
	}

	if rec.Counter(obs.CtrCkptWrites) != int64(len(snaps)) {
		t.Errorf("ckpt.write = %d, want %d", rec.Counter(obs.CtrCkptWrites), len(snaps))
	}
	if rec.Counter(obs.CtrCkptRestores) != 1 {
		t.Errorf("ckpt.restore = %d, want 1", rec.Counter(obs.CtrCkptRestores))
	}
	if rec.Counter(obs.CtrCkptWriteBytes) == 0 {
		t.Error("ckpt.write.bytes not counted")
	}
}

func TestManagerRejectsStaleFingerprint(t *testing.T) {
	snaps := capture(t, 6)
	dir := t.TempDir()
	m, err := ckpt.NewManager(dir, testFP(), ckpt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(snaps[len(snaps)-1]); err != nil {
		t.Fatal(err)
	}
	// Same directory, different run identity: nothing to resume.
	other := testFP()
	other.ConfigHash++
	rec := obs.New()
	m2, err := ckpt.NewManager(dir, other, ckpt.Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m2.LoadLatest()
	if err != nil || snap != nil {
		t.Fatalf("stale checkpoint resumed: snap=%v err=%v", snap, err)
	}
	if rec.Counter(obs.CtrCkptStale) == 0 {
		t.Error("ckpt.stale not counted")
	}
}

func TestManagerTornWriteFallsBack(t *testing.T) {
	snaps := capture(t, 7)
	rec := obs.New()
	plan, err := faults.Parse("tornckpt:write=1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ckpt.NewManager(t.TempDir(), testFP(), ckpt.Options{Recorder: rec, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(snaps[1]); err != nil { // torn: a prefix lands at the final path
		t.Fatal(err)
	}
	// The torn file is really a strict prefix at the final path.
	good, _ := ckpt.Encode(snaps[1], testFP())
	torn, err := os.ReadFile(m.Path(snaps[1].Level))
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) >= len(good) || !bytes.Equal(torn, good[:len(torn)]) {
		t.Fatalf("torn file is %d bytes of %d, prefix=%v", len(torn), len(good), bytes.Equal(torn, good[:len(torn)]))
	}
	// Recovery skips it and falls back to the previous good level.
	got, err := m.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Level != snaps[0].Level {
		t.Fatalf("fell back to %+v, want level %d", got, snaps[0].Level)
	}
	if rec.Counter(obs.CtrCkptCorrupt) == 0 {
		t.Error("ckpt.corrupt not counted")
	}
}
