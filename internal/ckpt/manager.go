package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pmafia/internal/faults"
	"pmafia/internal/mafia"
	"pmafia/internal/obs"
)

// filePrefix/fileSuffix frame the level-numbered checkpoint file names:
// ckpt-0003.pmck is the snapshot taken after level 3 completed.
const (
	filePrefix = "ckpt-"
	fileSuffix = ".pmck"
)

// Options tunes a Manager.
type Options struct {
	// Keep is how many good checkpoints to retain (older levels are
	// pruned after each write). Minimum and default 2, so a torn latest
	// file always leaves a previous good one to fall back to.
	Keep int
	// Recorder receives the ckpt.* counters (global, rank-less). nil
	// costs nothing.
	Recorder *obs.Recorder
	// Faults injects checkpoint-write faults (CkptTorn) for recovery
	// tests. nil injects nothing.
	Faults *faults.Plan
}

// Manager owns a directory of checkpoint files for one fit. Save is
// called from the engine's checkpoint hook (rank 0, synchronous);
// LoadLatest walks the directory newest-first and returns the first
// checkpoint that is both intact and fingerprint-matched.
type Manager struct {
	dir  string
	fp   Fingerprint
	opts Options

	mu     sync.Mutex
	writes int64 // write ordinal, feeds the fault plan
}

// NewManager creates the checkpoint directory (if needed) and returns
// a manager bound to it and to the run fingerprint.
func NewManager(dir string, fp Fingerprint, opts Options) (*Manager, error) {
	if opts.Keep < 2 {
		opts.Keep = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Manager{dir: dir, fp: fp, opts: opts}, nil
}

// Dir returns the managed checkpoint directory.
func (m *Manager) Dir() string { return m.dir }

// Path returns the checkpoint file path for a level.
func (m *Manager) Path(level int) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s%04d%s", filePrefix, level, fileSuffix))
}

// Save writes the snapshot for its level atomically (temp file, sync,
// rename) and prunes checkpoints older than the newest Keep. Under an
// injected CkptTorn fault the file is torn instead — a seeded prefix
// lands at the final path, simulating a write that bypassed the atomic
// rename (a crash mid-rename on a non-atomic filesystem) — and Save
// still reports success, exactly the silent failure recovery must
// survive.
func (m *Manager) Save(snap *mafia.Snapshot) error {
	start := time.Now()
	data, err := Encode(snap, m.fp)
	if err != nil {
		return err
	}
	path := m.Path(snap.Level)

	m.mu.Lock()
	ordinal := m.writes
	m.writes++
	m.mu.Unlock()

	if kind, ok := m.opts.Faults.CkptFault(ordinal); ok && kind == faults.CkptTorn {
		cut := m.opts.Faults.CutPos(ordinal, int64(len(data)))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			return err
		}
		m.count(obs.CtrCkptWrites, 1)
		m.count(obs.CtrCkptWriteBytes, cut)
		m.count(obs.CtrCkptWriteNS, time.Since(start).Nanoseconds())
		return nil
	}

	f, err := os.CreateTemp(m.dir, ".ckpt-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	m.count(obs.CtrCkptWrites, 1)
	m.count(obs.CtrCkptWriteBytes, int64(len(data)))
	m.count(obs.CtrCkptWriteNS, time.Since(start).Nanoseconds())
	m.prune()
	return nil
}

// prune removes checkpoint files beyond the newest Keep levels.
// Best-effort: a prune failure never fails the write that triggered it.
func (m *Manager) prune() {
	levels := m.levels()
	for _, lvl := range levels[:max(0, len(levels)-m.opts.Keep)] {
		os.Remove(m.Path(lvl))
	}
}

// levels lists the levels with a checkpoint file, ascending.
func (m *Manager) levels() []int {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil
	}
	var levels []int
	for _, e := range entries {
		name := e.Name()
		numStr, found := strings.CutPrefix(name, filePrefix)
		if !found {
			continue
		}
		numStr, found = strings.CutSuffix(numStr, fileSuffix)
		if !found {
			continue
		}
		lvl, err := strconv.Atoi(numStr)
		if err != nil || lvl < 1 {
			continue
		}
		levels = append(levels, lvl)
	}
	sort.Ints(levels)
	return levels
}

// LoadLatest returns the newest checkpoint that decodes cleanly and
// matches the manager's fingerprint, falling back level by level past
// corrupt or stale files. A nil snapshot with a nil error means no
// usable checkpoint exists (fresh start).
func (m *Manager) LoadLatest() (*mafia.Snapshot, error) {
	start := time.Now()
	levels := m.levels()
	for i := len(levels) - 1; i >= 0; i-- {
		path := m.Path(levels[i])
		data, err := os.ReadFile(path)
		if err != nil {
			m.count(obs.CtrCkptCorrupt, 1)
			continue
		}
		snap, fp, err := Decode(data)
		if err != nil {
			m.count(obs.CtrCkptCorrupt, 1)
			continue
		}
		if fp != m.fp {
			m.count(obs.CtrCkptStale, 1)
			continue
		}
		if snap.Level != levels[i] {
			// A file renamed across levels is as untrustworthy as a
			// corrupt one.
			m.count(obs.CtrCkptCorrupt, 1)
			continue
		}
		m.count(obs.CtrCkptRestores, 1)
		m.count(obs.CtrCkptRestoreNS, time.Since(start).Nanoseconds())
		return snap, nil
	}
	return nil, nil
}

func (m *Manager) count(name string, delta int64) {
	if m.opts.Recorder != nil {
		m.opts.Recorder.AddGlobal(name, delta)
	}
}
