package diskio

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"pmafia/internal/faults"
)

// drain reads a scanner to exhaustion and returns the concatenated
// values.
func drain(t *testing.T, sc interface {
	Next() ([]float64, int)
	Err() error
	Close() error
}, d int) []float64 {
	t.Helper()
	var got []float64
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		got = append(got, chunk[:n*d]...)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestPrefetchMatchesSerial checks the pipelined scanner is
// behaviorally identical to the serial one: same values, same order,
// across chunk sizes that do and do not divide the record count and
// ranges that start mid-frame.
func TestPrefetchMatchesSerial(t *testing.T) {
	path := tmpPath(t, "pf.pmaf")
	const n, d = 257, 3
	if err := WriteSource(path, makeMatrix(n, d)); err != nil {
		t.Fatal(err)
	}
	ranges := [][2]int{{0, n}, {13, 200}, {0, 1}, {n - 1, n}, {100, 100}}
	for _, chunk := range []int{1, 7, 64, 300} {
		for _, r := range ranges {
			serial, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			want := drain(t, serial.ScanRange(r[0], r[1], chunk), d)

			pre, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			pre.SetPrefetch(true)
			got := drain(t, pre.ScanRange(r[0], r[1], chunk), d)

			if len(got) != len(want) {
				t.Fatalf("chunk=%d range=%v: %d values, want %d", chunk, r, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("chunk=%d range=%v: value[%d] = %v, want %v", chunk, r, i, got[i], want[i])
				}
			}
			st := pre.StatsSnapshot()
			if want := st.Prefetched; want > 0 && st.PrefetchStalls > want {
				t.Errorf("chunk=%d range=%v: %d stalls for %d prefetched chunks", chunk, r, st.PrefetchStalls, want)
			}
		}
	}
}

// TestPrefetchTransientFaultRetried injects a transient read error
// mid-stream with the reader already ahead of the consumer: the
// background fill must retry exactly like the serial path and the
// stream must complete unharmed.
func TestPrefetchTransientFaultRetried(t *testing.T) {
	path := tmpPath(t, "pf-retry.pmaf")
	const n, d = 200, 2
	if err := WriteSource(path, makeMatrix(n, d)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.SetPrefetch(true)
	f.SetRetryPolicy(3, time.Millisecond)
	f.SetFaults(faults.New(0, faults.Fault{Kind: faults.ReadError, Index: 2, Times: 2}))
	got := drain(t, f.Scan(32), d)
	if len(got) != n*d {
		t.Fatalf("got %d values, want %d", len(got), n*d)
	}
	if st := f.StatsSnapshot(); st.Retries == 0 {
		t.Error("injected transient fault did not bump Retries")
	}
}

// TestPrefetchExhaustedRetriesTypedError defeats the retry budget: the
// prefetched stream must surface a *ChunkError wrapping the injected
// cause on the Next call that would have consumed the failed chunk.
func TestPrefetchExhaustedRetriesTypedError(t *testing.T) {
	path := tmpPath(t, "pf-fail.pmaf")
	const n, d = 200, 2
	if err := WriteSource(path, makeMatrix(n, d)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.SetPrefetch(true)
	f.SetRetryPolicy(2, time.Millisecond)
	f.SetFaults(faults.New(0, faults.Fault{Kind: faults.ReadError, Index: 3, Times: 10}))
	sc := f.Scan(16)
	defer sc.Close()
	seen := 0
	for {
		_, cn := sc.Next()
		if cn == 0 {
			break
		}
		seen += cn
	}
	err = sc.Err()
	if err == nil {
		t.Fatal("exhausted retries surfaced no error")
	}
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (%T), want *ChunkError", err, err)
	}
	if ce.Chunk != 3 {
		t.Errorf("failed chunk %d, want 3", ce.Chunk)
	}
	if !errors.Is(err, faults.ErrRead) {
		t.Errorf("error %v does not wrap the injected cause", err)
	}
	if seen != 3*16 {
		t.Errorf("consumed %d records before the failure, want %d", seen, 3*16)
	}
}

// TestPrefetchCorruptionDetected flips one bit behind the reader: the
// prefetched stream must report the same *CorruptionError the serial
// path does.
func TestPrefetchCorruptionDetected(t *testing.T) {
	path := tmpPath(t, "pf-flip.pmaf")
	const n, d = 300, 2
	if err := WriteSource(path, makeMatrix(n, d)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.SetPrefetch(true)
	f.SetFaults(faults.New(7, faults.Fault{Kind: faults.BitFlip, Index: 1}))
	sc := f.Scan(64)
	defer sc.Close()
	for {
		_, cn := sc.Next()
		if cn == 0 {
			break
		}
	}
	var corr *CorruptionError
	if !errors.As(sc.Err(), &corr) {
		t.Fatalf("error %v (%T), want *CorruptionError", sc.Err(), sc.Err())
	}
}

// TestPrefetchEarlyCloseNoLeak stops consuming after one chunk and
// closes: the background reader must exit (no goroutine leak) and the
// descriptor must be released. Close mid-retry-backoff must return
// promptly instead of sleeping out the schedule.
func TestPrefetchEarlyCloseNoLeak(t *testing.T) {
	path := tmpPath(t, "pf-close.pmaf")
	const n, d = 1000, 4
	if err := WriteSource(path, makeMatrix(n, d)); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		f, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		f.SetPrefetch(true)
		sc := f.Scan(8)
		if _, cn := sc.Next(); cn == 0 {
			t.Fatal("no first chunk")
		}
		if err := sc.Close(); err != nil {
			t.Fatal(err)
		}
		if err := sc.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
		if _, cn := sc.Next(); cn != 0 {
			t.Fatal("Next after Close returned records")
		}
	}
	// The reader goroutines must all have exited by the time Close
	// returned; allow slack for unrelated runtime goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after Close", before, g)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Close during retry backoff: a permanent fault with a long backoff
	// would block a non-cancellable reader for ~seconds.
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.SetPrefetch(true)
	f.SetRetryPolicy(8, 500*time.Millisecond)
	f.SetFaults(faults.New(0, faults.Fault{Kind: faults.ReadError, Index: 0, Times: 100}))
	sc := f.Scan(8)
	time.Sleep(20 * time.Millisecond) // let the reader enter its backoff
	start := time.Now()
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("Close took %v during retry backoff; the sleep is not cancellable", el)
	}
}

// TestPrefetchConcurrentRangeScans runs one prefetching scanner per
// simulated rank over disjoint shares concurrently — the Real-mode
// shape — and checks every record is seen exactly once.
func TestPrefetchConcurrentRangeScans(t *testing.T) {
	path := tmpPath(t, "pf-ranks.pmaf")
	const n, d, p = 503, 2, 4
	if err := WriteSource(path, makeMatrix(n, d)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.SetPrefetch(true)
	counts := make([]int, p)
	errs := make(chan error, p)
	for r := 0; r < p; r++ {
		go func(r int) {
			lo, hi := ShareBounds(n, r, p)
			sc := f.ScanRange(lo, hi, 37)
			defer sc.Close()
			for {
				_, cn := sc.Next()
				if cn == 0 {
					break
				}
				counts[r] += cn
			}
			errs <- sc.Err()
		}(r)
	}
	total := 0
	for r := 0; r < p; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("ranks saw %d records, want %d", total, n)
	}
}
