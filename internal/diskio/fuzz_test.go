package diskio

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen throws arbitrary bytes at the header/record parser: Open
// must either reject the file or hand back a File whose full scan
// terminates cleanly — never panic, hang, or allocate from unvalidated
// header fields.
func FuzzOpen(f *testing.F) {
	// Seed with well-formed files of both versions, their truncations,
	// and any committed corpus files.
	v2 := filepath.Join(f.TempDir(), "seed.pmaf")
	w, err := CreateWithFrames(v2, 3, 4)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append([]float64{float64(i), float64(2 * i), float64(3 * i)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	v2bytes, err := os.ReadFile(v2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2bytes)
	f.Add(v2bytes[:len(v2bytes)-5])
	f.Add(v2bytes[:headerFixedV2+7])

	v1 := make([]byte, headerFixedV1+16*2+8*2*3)
	copy(v1, magic)
	binary.LittleEndian.PutUint32(v1[4:], version1)
	binary.LittleEndian.PutUint32(v1[8:], 2)
	binary.LittleEndian.PutUint64(v1[12:], 3)
	for i := 0; i < 6; i++ {
		binary.LittleEndian.PutUint64(v1[headerFixedV1+16*2+8*i:], math.Float64bits(float64(i)))
	}
	f.Add(v1)
	f.Add(v1[:headerFixedV1])

	if entries, err := os.ReadDir("testdata"); err == nil {
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if b, err := os.ReadFile(filepath.Join("testdata", e.Name())); err == nil {
				f.Add(b)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		path := filepath.Join(t.TempDir(), "fuzz.pmaf")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		fl, err := Open(path)
		if err != nil {
			return
		}
		_ = fl.Domains()
		sc := fl.Scan(64)
		defer sc.Close()
		for {
			if _, n := sc.Next(); n == 0 {
				break
			}
		}
		_ = sc.Err()
	})
}
