package diskio

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"pmafia/internal/dataset"
)

func tmpPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func makeMatrix(n, d int) *dataset.Matrix {
	m := dataset.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Row(i)[j] = float64(i*d + j)
		}
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	path := tmpPath(t, "a.pmaf")
	m := makeMatrix(100, 4)
	if err := WriteSource(path, m); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dims() != 4 || f.NumRecords() != 100 {
		t.Fatalf("dims=%d n=%d", f.Dims(), f.NumRecords())
	}
	sc := f.Scan(7)
	defer sc.Close()
	var got []float64
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		got = append(got, chunk[:n*4]...)
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != 400 {
		t.Fatalf("got %d values", len(got))
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("value[%d] = %v", i, v)
		}
	}
}

func TestDomainsInHeader(t *testing.T) {
	path := tmpPath(t, "b.pmaf")
	m, _ := dataset.FromRows([][]float64{{-3, 100}, {7, 50}, {0, 75}})
	if err := WriteSource(path, m); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	doms := f.Domains()
	if doms[0].Lo != -3 || doms[1].Lo != 50 {
		t.Errorf("domain lows: %v", doms)
	}
	if !doms[0].Contains(7) || !doms[1].Contains(100) {
		t.Errorf("domains must contain observed maxima (half-open widening): %v", doms)
	}
}

func TestScanRange(t *testing.T) {
	path := tmpPath(t, "c.pmaf")
	if err := WriteSource(path, makeMatrix(10, 2)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := f.ScanRange(3, 7, 2)
	defer sc.Close()
	var got []float64
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		got = append(got, chunk[:n*2]...)
	}
	if len(got) != 8 || got[0] != 6 || got[7] != 13 {
		t.Errorf("range scan values: %v", got)
	}
}

func TestScanRangeClamped(t *testing.T) {
	path := tmpPath(t, "d.pmaf")
	if err := WriteSource(path, makeMatrix(5, 1)); err != nil {
		t.Fatal(err)
	}
	f, _ := Open(path)
	sc := f.ScanRange(-2, 99, 10)
	defer sc.Close()
	total := 0
	for {
		_, n := sc.Next()
		if n == 0 {
			break
		}
		total += n
	}
	if total != 5 {
		t.Errorf("clamped scan read %d records, want 5", total)
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	// missing file
	if _, err := Open(filepath.Join(dir, "nope.pmaf")); err == nil {
		t.Error("missing file: want error")
	}
	// bad magic
	bad := filepath.Join(dir, "bad.pmaf")
	os.WriteFile(bad, []byte("NOPE.............................."), 0o644)
	if _, err := Open(bad); err == nil {
		t.Error("bad magic: want error")
	}
	// truncated data section
	good := filepath.Join(dir, "good.pmaf")
	if err := WriteSource(good, makeMatrix(10, 3)); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(good)
	os.WriteFile(bad, data[:len(data)-8], 0o644)
	if _, err := Open(bad); err == nil {
		t.Error("truncated: want error")
	}
}

func TestWriterWidthError(t *testing.T) {
	w, err := Create(tmpPath(t, "e.pmaf"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]float64{1, 2}); err == nil {
		t.Error("wrong width: want error")
	}
}

func TestCreateInvalidDims(t *testing.T) {
	if _, err := Create(tmpPath(t, "f.pmaf"), 0); err == nil {
		t.Error("zero dims: want error")
	}
}

func TestShareBounds(t *testing.T) {
	// Shares must partition [0, n) exactly.
	for _, n := range []int{0, 1, 7, 100, 101} {
		for _, p := range []int{1, 2, 3, 16} {
			prev := 0
			total := 0
			for r := 0; r < p; r++ {
				lo, hi := ShareBounds(n, r, p)
				if lo != prev {
					t.Fatalf("n=%d p=%d rank=%d: lo=%d, want %d", n, p, r, lo, prev)
				}
				total += hi - lo
				prev = hi
			}
			if prev != n || total != n {
				t.Fatalf("n=%d p=%d: shares cover %d", n, p, total)
			}
		}
	}
}

func TestStage(t *testing.T) {
	sharedPath := tmpPath(t, "shared.pmaf")
	if err := WriteSource(sharedPath, makeMatrix(10, 2)); err != nil {
		t.Fatal(err)
	}
	shared, err := Open(sharedPath)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const p = 3
	total := 0
	for r := 0; r < p; r++ {
		local, err := Stage(shared, dir, r, p)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := ShareBounds(10, r, p)
		if local.NumRecords() != hi-lo {
			t.Errorf("rank %d: staged %d records, want %d", r, local.NumRecords(), hi-lo)
		}
		total += local.NumRecords()
		// Local header must carry the *global* domains.
		doms := local.Domains()
		if doms[0].Lo != 0 {
			t.Errorf("rank %d: local domain lo = %v, want global 0", r, doms[0].Lo)
		}
		if !doms[1].Contains(19) {
			t.Errorf("rank %d: local domain %v must contain global max 19", r, doms[1])
		}
		// Verify shard content matches the shared range.
		sc := local.Scan(100)
		chunk, n := sc.Next()
		if n > 0 && chunk[0] != float64(lo*2) {
			t.Errorf("rank %d: first value %v, want %v", r, chunk[0], float64(lo*2))
		}
		sc.Close()
	}
	if total != 10 {
		t.Errorf("staged total %d records, want 10", total)
	}
}

func TestIOStats(t *testing.T) {
	path := tmpPath(t, "g.pmaf")
	if err := WriteSource(path, makeMatrix(100, 2)); err != nil {
		t.Fatal(err)
	}
	f, _ := Open(path)
	sc := f.Scan(10)
	for {
		_, n := sc.Next()
		if n == 0 {
			break
		}
	}
	sc.Close()
	st := f.StatsSnapshot()
	if st.Reads != 10 {
		t.Errorf("Reads = %d, want 10", st.Reads)
	}
	if st.BytesRead != 100*2*8 {
		t.Errorf("BytesRead = %d, want %d", st.BytesRead, 100*2*8)
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	path := tmpPath(t, "h.pmaf")
	w, err := Create(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRecords() != 0 {
		t.Errorf("n = %d", f.NumRecords())
	}
	sc := f.Scan(4)
	defer sc.Close()
	if _, n := sc.Next(); n != 0 {
		t.Errorf("empty file scan returned %d records", n)
	}
}

func BenchmarkScan(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.pmaf")
	if err := WriteSource(path, makeMatrix(10000, 10)); err != nil {
		b.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := f.Scan(1024)
		for {
			_, n := sc.Next()
			if n == 0 {
				break
			}
		}
		sc.Close()
	}
	b.SetBytes(10000 * 10 * 8)
}

func TestRoundTripProperty(t *testing.T) {
	// Arbitrary float payloads (including negative zero and denormals)
	// must survive the binary round trip bit-exactly.
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		rows := make([][]float64, len(vals))
		for i, v := range vals {
			if v != v { // NaN: skip, header min/max comparisons are undefined
				v = 0
			}
			rows[i] = []float64{v}
		}
		m, err := dataset.FromRows(rows)
		if err != nil {
			return false
		}
		path := filepath.Join(t.TempDir(), "q.pmaf")
		if err := WriteSource(path, m); err != nil {
			return false
		}
		file, err := Open(path)
		if err != nil {
			return false
		}
		sc := file.Scan(7)
		defer sc.Close()
		idx := 0
		for {
			chunk, n := sc.Next()
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				want := rows[idx][0]
				if chunk[i] != want && !(chunk[i] == 0 && want == 0) {
					return false
				}
				idx++
			}
		}
		return idx == len(rows) && sc.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPathAndNumRecordsAccessors(t *testing.T) {
	path := tmpPath(t, "acc.pmaf")
	w, err := Create(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumRecords() != 0 {
		t.Errorf("writer NumRecords = %d", w.NumRecords())
	}
	w.Append([]float64{1, 2})
	if w.NumRecords() != 1 {
		t.Errorf("writer NumRecords = %d after append", w.NumRecords())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Path() != path {
		t.Errorf("Path = %q", f.Path())
	}
}

func TestScanRangeOnMissingFile(t *testing.T) {
	path := tmpPath(t, "gone.pmaf")
	if err := WriteSource(path, makeMatrix(5, 1)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(path)
	sc := f.Scan(2)
	defer sc.Close()
	if _, n := sc.Next(); n != 0 {
		t.Error("scan of removed file yielded records")
	}
	if sc.Err() == nil {
		t.Error("scan of removed file: want error")
	}
}

func TestStageErrors(t *testing.T) {
	path := tmpPath(t, "s.pmaf")
	if err := WriteSource(path, makeMatrix(6, 1)); err != nil {
		t.Fatal(err)
	}
	f, _ := Open(path)
	// Unwritable local dir (a file in place of the directory).
	blocker := tmpPath(t, "blocker")
	os.WriteFile(blocker, []byte("x"), 0o644)
	if _, err := Stage(f, blocker, 0, 2); err == nil {
		t.Error("staging into a non-directory: want error")
	}
}
