// Double-buffered prefetching scanner: the out-of-core pipeline's
// compute/I-O overlap. A background goroutine drives the same
// fileScanner.fill that the serial path uses — same retries, same CRC
// frames, same fault injection — one chunk ahead of the consumer, so a
// population or histogram pass computes on chunk k while the disk
// serves chunk k+1. The paper's scalability argument needs exactly
// this: each rank must fold its N/p records into tallies fast enough
// that the data-parallel phases stay compute-bound.
package diskio

import (
	"sync"
	"sync/atomic"

	"pmafia/internal/obs"
)

// prefetchBuffers is the pipeline depth: two buffers rotate between the
// consumer and the background reader (classic double buffering). More
// buffers would only help bursty consumers; the engines consume chunks
// at a steady rate.
const prefetchBuffers = 2

// pfChunk is one filled (or failed) chunk in flight between the
// background reader and the consumer.
type pfChunk struct {
	raw  []byte
	vals []float64
	n    int
	err  error
}

// prefetchScanner implements dataset.Scanner by handing out chunks a
// background goroutine read ahead of time. Errors (ChunkError,
// CorruptionError, truncation) surface on the Next call that would
// have consumed the failed chunk, exactly as on the serial path.
//
// Close is safe at any point of the stream: it cancels the reader
// (including mid-backoff), waits for the goroutine to exit, and only
// then closes the file handle — an early-stopping consumer leaks
// neither.
type prefetchScanner struct {
	inner *fileScanner
	ready chan *pfChunk // filled chunks, reader -> consumer
	free  chan *pfChunk // drained buffers, consumer -> reader
	stop  chan struct{} // closed by Close; cancels the reader
	wg    sync.WaitGroup

	cur    *pfChunk // chunk currently lent to the consumer
	err    error
	done   bool // stream exhausted or failed
	closed bool
}

func newPrefetchScanner(inner *fileScanner) *prefetchScanner {
	s := &prefetchScanner{
		inner: inner,
		ready: make(chan *pfChunk, prefetchBuffers),
		free:  make(chan *pfChunk, prefetchBuffers),
		stop:  make(chan struct{}),
	}
	inner.cancel = s.stop
	for i := 0; i < prefetchBuffers; i++ {
		s.free <- &pfChunk{
			raw:  make([]byte, inner.chunkR*inner.f.d*8),
			vals: make([]float64, inner.chunkR*inner.f.d),
		}
	}
	s.wg.Add(1)
	go s.reader()
	return s
}

// reader is the background goroutine: it fills free buffers in stream
// order and queues them for the consumer, stopping at end-of-range, on
// the first error, or when Close cancels it.
func (s *prefetchScanner) reader() {
	defer s.wg.Done()
	f := s.inner.f
	for {
		var buf *pfChunk
		select {
		case buf = <-s.free:
		case <-s.stop:
			return
		}
		buf.n, buf.err = s.inner.fill(buf.raw, buf.vals)
		if buf.n > 0 && buf.err == nil {
			atomic.AddInt64(&f.stats.Prefetched, 1)
			if f.rec != nil {
				f.rec.AddGlobal(obs.CtrPrefetchChunks, 1)
			}
		}
		select {
		case s.ready <- buf:
		case <-s.stop:
			return
		}
		if buf.n == 0 || buf.err != nil {
			return // end of stream or terminal error: nothing left to read
		}
	}
}

func (s *prefetchScanner) Next() ([]float64, int) {
	if s.err != nil || s.done || s.closed {
		return nil, 0
	}
	if s.cur != nil {
		// Recycle the consumed buffer; capacity prefetchBuffers makes
		// this send non-blocking by construction.
		s.free <- s.cur
		s.cur = nil
	}
	var buf *pfChunk
	select {
	case buf = <-s.ready:
	default:
		// The background reader has not finished the next chunk: the
		// pipeline stalled on I/O. The wait below is the *non-overlapped*
		// I/O time — in sp2 Sim mode it lands on the rank's virtual
		// clock (the rank holds the compute baton while waiting), which
		// is exactly how a pipelined read should be accounted.
		f := s.inner.f
		atomic.AddInt64(&f.stats.PrefetchStalls, 1)
		if f.rec != nil {
			f.rec.AddGlobal(obs.CtrPrefetchStalls, 1)
		}
		buf = <-s.ready
	}
	if buf.err != nil {
		s.err = buf.err
		s.done = true
		return nil, 0
	}
	if buf.n == 0 {
		s.done = true
		return nil, 0
	}
	s.cur = buf
	return buf.vals[:buf.n*s.inner.f.d], buf.n
}

func (s *prefetchScanner) Err() error { return s.err }

// Close cancels the background reader, waits for it to exit, and
// releases the file handle. It is idempotent and safe to call with the
// stream only partially consumed.
func (s *prefetchScanner) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.stop)
	s.wg.Wait()
	return s.inner.Close()
}
