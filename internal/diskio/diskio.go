// Package diskio implements the disk substrate pMAFIA runs on: a binary
// record-file format, buffered chunked scanning of B records at a time
// (so data sets never need to fit in memory), and staging of a shared
// data set onto per-processor local stores, mirroring the paper's IBM
// SP2 setup where each node copies its N/p share from the shared disk to
// its local disk before the k passes of the algorithm.
package diskio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"pmafia/internal/dataset"
	"pmafia/internal/obs"
)

// Format: little-endian throughout.
//
//	magic   [4]byte  "PMAF"
//	version uint32   1
//	dims    uint32
//	records uint64
//	domains dims × (lo float64, hi float64)
//	data    records × dims × float64 (row-major)
const (
	magic       = "PMAF"
	version     = 1
	headerFixed = 4 + 4 + 4 + 8
)

// Writer streams records into a new record file. Domains are tracked
// incrementally and written into the header when Close is called.
type Writer struct {
	f    *os.File
	bw   *bufio.Writer
	d    int
	n    uint64
	lo   []float64
	hi   []float64
	buf  []byte
	path string
}

// Create opens path for writing a d-dimensional record file, truncating
// any existing file.
func Create(path string, d int) (*Writer, error) {
	if d <= 0 || d > math.MaxUint32 {
		return nil, fmt.Errorf("diskio: invalid dimensionality %d", d)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f:    f,
		bw:   bufio.NewWriterSize(f, 1<<20),
		d:    d,
		lo:   make([]float64, d),
		hi:   make([]float64, d),
		buf:  make([]byte, 8*d),
		path: path,
	}
	for i := 0; i < d; i++ {
		w.lo[i] = math.Inf(1)
		w.hi[i] = math.Inf(-1)
	}
	// Reserve header space with an advancing write so the buffered data
	// stream starts after it; the real header is written on Close.
	if _, err := f.Write(make([]byte, headerFixed+16*d)); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *Writer) writeHeader() error {
	hdr := make([]byte, headerFixed+16*w.d)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.d))
	binary.LittleEndian.PutUint64(hdr[12:], w.n)
	for i := 0; i < w.d; i++ {
		lo, hi := w.lo[i], w.hi[i]
		if lo > hi { // no records observed and no domains injected
			lo, hi = 0, 1
		}
		binary.LittleEndian.PutUint64(hdr[headerFixed+16*i:], math.Float64bits(lo))
		binary.LittleEndian.PutUint64(hdr[headerFixed+16*i+8:], math.Float64bits(hi))
	}
	_, err := w.f.WriteAt(hdr, 0)
	return err
}

// Append writes one record, which must have exactly d values.
func (w *Writer) Append(rec []float64) error {
	if len(rec) != w.d {
		return fmt.Errorf("diskio: record width %d, want %d", len(rec), w.d)
	}
	for i, v := range rec {
		if v < w.lo[i] {
			w.lo[i] = v
		}
		if v > w.hi[i] {
			w.hi[i] = v
		}
		binary.LittleEndian.PutUint64(w.buf[8*i:], math.Float64bits(v))
	}
	w.n++
	_, err := w.bw.Write(w.buf)
	return err
}

// AppendChunk writes n records from a row-major chunk.
func (w *Writer) AppendChunk(chunk []float64, n int) error {
	for r := 0; r < n; r++ {
		if err := w.Append(chunk[r*w.d : (r+1)*w.d]); err != nil {
			return err
		}
	}
	return nil
}

// NumRecords returns the number of records appended so far.
func (w *Writer) NumRecords() int { return int(w.n) }

// Close flushes buffered data, finalizes the header, and closes the
// file.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.writeHeader(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// WriteSource copies every record of src into a new record file at
// path.
func WriteSource(path string, src dataset.Source) error {
	w, err := Create(path, src.Dims())
	if err != nil {
		return err
	}
	sc := src.Scan(8192)
	defer sc.Close()
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		if err := w.AppendChunk(chunk, n); err != nil {
			w.Close()
			return err
		}
	}
	if err := sc.Err(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// Stats accumulates I/O counters for a File. Counters are atomic so
// concurrent scanners can share them.
type Stats struct {
	BytesRead int64
	Reads     int64
}

// File is an opened record file; it implements dataset.Source with
// buffered chunked reads and records I/O statistics.
type File struct {
	path    string
	d       int
	n       int
	domains []dataset.Range
	dataOff int64
	stats   Stats
	rec     *obs.Recorder
}

// SetRecorder attaches an observability recorder: every chunk read by
// any scanner opened after the call bumps the machine-global
// "diskio.chunks" and "diskio.bytes" counters (scanners may run on any
// rank, so the counters are rank-less). A nil recorder detaches.
func (f *File) SetRecorder(rec *obs.Recorder) { f.rec = rec }

// Open validates the header of the record file at path. The file is
// reopened by each scanner, so a File may be scanned concurrently.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, headerFixed)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("diskio: %s: short header: %w", path, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("diskio: %s: bad magic %q", path, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("diskio: %s: unsupported version %d", path, v)
	}
	d := int(binary.LittleEndian.Uint32(hdr[8:]))
	n := binary.LittleEndian.Uint64(hdr[12:])
	if d <= 0 {
		return nil, fmt.Errorf("diskio: %s: invalid dims %d", path, d)
	}
	domBuf := make([]byte, 16*d)
	if _, err := io.ReadFull(f, domBuf); err != nil {
		return nil, fmt.Errorf("diskio: %s: short domain table: %w", path, err)
	}
	domains := make([]dataset.Range, d)
	for i := range domains {
		domains[i].Lo = math.Float64frombits(binary.LittleEndian.Uint64(domBuf[16*i:]))
		domains[i].Hi = math.Float64frombits(binary.LittleEndian.Uint64(domBuf[16*i+8:]))
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	dataOff := int64(headerFixed + 16*d)
	want := dataOff + int64(n)*int64(d)*8
	if fi.Size() < want {
		return nil, fmt.Errorf("diskio: %s: truncated: size %d, want %d", path, fi.Size(), want)
	}
	return &File{path: path, d: d, n: int(n), domains: domains, dataOff: dataOff}, nil
}

// Dims returns the dimensionality.
func (f *File) Dims() int { return f.d }

// NumRecords returns the record count.
func (f *File) NumRecords() int { return f.n }

// Path returns the file path.
func (f *File) Path() string { return f.path }

// Domains returns the per-dimension value ranges recorded in the
// header, widened so the observed maximum falls inside the half-open
// interval.
func (f *File) Domains() []dataset.Range {
	out := make([]dataset.Range, f.d)
	for i, r := range f.domains {
		if r.Hi <= r.Lo {
			out[i] = dataset.Range{Lo: r.Lo, Hi: r.Lo + 1}
		} else {
			out[i] = dataset.Range{Lo: r.Lo, Hi: r.Hi + (r.Hi-r.Lo)*1e-9}
		}
	}
	return out
}

// StatsSnapshot returns the I/O counters accumulated by all scanners of
// this File.
func (f *File) StatsSnapshot() Stats {
	return Stats{
		BytesRead: atomic.LoadInt64(&f.stats.BytesRead),
		Reads:     atomic.LoadInt64(&f.stats.Reads),
	}
}

// Scan implements dataset.Source; each scanner opens its own descriptor
// so concurrent scans are safe.
func (f *File) Scan(chunkRecords int) dataset.Scanner {
	return f.ScanRange(0, f.n, chunkRecords)
}

// ScanRange returns a scanner over records [lo, hi), used by ranks that
// process a contiguous share of a shared file.
func (f *File) ScanRange(lo, hi, chunkRecords int) dataset.Scanner {
	if chunkRecords <= 0 {
		chunkRecords = 1
	}
	if lo < 0 {
		lo = 0
	}
	if hi > f.n {
		hi = f.n
	}
	h, err := os.Open(f.path)
	if err != nil {
		return &fileScanner{err: err}
	}
	if _, err := h.Seek(f.dataOff+int64(lo)*int64(f.d)*8, io.SeekStart); err != nil {
		h.Close()
		return &fileScanner{err: err}
	}
	return &fileScanner{
		f:      f,
		h:      h,
		br:     bufio.NewReaderSize(h, 1<<20),
		left:   hi - lo,
		vals:   make([]float64, chunkRecords*f.d),
		raw:    make([]byte, chunkRecords*f.d*8),
		stats:  &f.stats,
		rec:    f.rec,
		chunkR: chunkRecords,
	}
}

type fileScanner struct {
	f      *File
	h      *os.File
	br     *bufio.Reader
	left   int
	vals   []float64
	raw    []byte
	stats  *Stats
	rec    *obs.Recorder
	chunkR int
	err    error
}

func (s *fileScanner) Next() ([]float64, int) {
	if s.err != nil || s.left <= 0 {
		return nil, 0
	}
	n := s.chunkR
	if n > s.left {
		n = s.left
	}
	nb := n * s.f.d * 8
	if _, err := io.ReadFull(s.br, s.raw[:nb]); err != nil {
		s.err = fmt.Errorf("diskio: reading %s: %w", s.f.path, err)
		return nil, 0
	}
	atomic.AddInt64(&s.stats.BytesRead, int64(nb))
	atomic.AddInt64(&s.stats.Reads, 1)
	if s.rec != nil {
		s.rec.AddGlobal("diskio.chunks", 1)
		s.rec.AddGlobal("diskio.bytes", int64(nb))
	}
	for i := 0; i < n*s.f.d; i++ {
		s.vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(s.raw[8*i:]))
	}
	s.left -= n
	return s.vals[:n*s.f.d], n
}

func (s *fileScanner) Err() error { return s.err }

func (s *fileScanner) Close() error {
	if s.h != nil {
		return s.h.Close()
	}
	return nil
}

// ShareBounds returns the contiguous record range [lo, hi) owned by
// rank out of p processors over n records, the block distribution the
// paper uses when staging the shared data set.
func ShareBounds(n, rank, p int) (lo, hi int) {
	if p <= 0 {
		return 0, n
	}
	lo = rank * n / p
	hi = (rank + 1) * n / p
	return
}

// Stage copies rank's N/p contiguous share of the shared record file
// into localDir (the simulated local disk) and returns the opened local
// file. The local file's header domains describe the *global* data set,
// copied from the shared header, because the adaptive-grid phase needs
// the global domains.
func Stage(shared *File, localDir string, rank, p int) (*File, error) {
	if err := os.MkdirAll(localDir, 0o755); err != nil {
		return nil, err
	}
	lo, hi := ShareBounds(shared.NumRecords(), rank, p)
	localPath := filepath.Join(localDir, fmt.Sprintf("shard-%04d-of-%04d.pmaf", rank, p))
	w, err := Create(localPath, shared.Dims())
	if err != nil {
		return nil, err
	}
	sc := shared.ScanRange(lo, hi, 8192)
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		if err := w.AppendChunk(chunk, n); err != nil {
			sc.Close()
			w.Close()
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		sc.Close()
		w.Close()
		return nil, err
	}
	sc.Close()
	// Preserve the global domains: overwrite the local writer's
	// observed domains with the shared header's before finalizing.
	copy(w.lo, domLo(shared.domains))
	copy(w.hi, domHi(shared.domains))
	if err := w.Close(); err != nil {
		return nil, err
	}
	return Open(localPath)
}

func domLo(rs []dataset.Range) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Lo
	}
	return out
}

func domHi(rs []dataset.Range) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Hi
	}
	return out
}
