// Package diskio implements the disk substrate pMAFIA runs on: a binary
// record-file format, buffered chunked scanning of B records at a time
// (so data sets never need to fit in memory), and staging of a shared
// data set onto per-processor local stores, mirroring the paper's IBM
// SP2 setup where each node copies its N/p share from the shared disk to
// its local disk before the k passes of the algorithm.
//
// The substrate is hardened against the failures the paper assumes
// away: headers are validated against the actual file size before
// anything is allocated or read, writers stream into a temp file that
// is atomically renamed into place on Close (a crash never leaves a
// half-written file at the target path), chunk reads retry transient
// errors with exponential backoff, and the v2 format carries a CRC32C
// checksum per frame of records so silent bit-level corruption is
// detected instead of being clustered as data. Deterministic failures
// can be injected through a faults.Plan (see SetFaults).
package diskio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"pmafia/internal/dataset"
	"pmafia/internal/faults"
	"pmafia/internal/obs"
)

// Format: little-endian throughout.
//
// Version 1 (legacy, still readable):
//
//	magic   [4]byte  "PMAF"
//	version uint32   1
//	dims    uint32
//	records uint64
//	domains dims × (lo float64, hi float64)
//	data    records × dims × float64 (row-major)
//
// Version 2 (written by Create) appends a frameRecords field to the
// fixed header and a checksum table after the data section:
//
//	magic    [4]byte  "PMAF"
//	version  uint32   2
//	dims     uint32
//	records  uint64
//	frameRecords uint32      records per checksum frame
//	domains  dims × (lo float64, hi float64)
//	data     records × dims × float64 (row-major)
//	crcs     ceil(records/frameRecords) × uint32   CRC32C per frame
//
// A frame is frameRecords consecutive records (the last frame may be
// shorter); its checksum covers the frame's raw data bytes. Sequential
// scans verify every frame they fully traverse; a ScanRange that starts
// mid-frame verifies from the first frame boundary it crosses.
const (
	magic          = "PMAF"
	version1       = 1
	version2       = 2
	headerFixedV1  = 4 + 4 + 4 + 8
	headerFixedV2  = headerFixedV1 + 4
	currentVersion = version2

	// DefaultFrameRecords is the checksum-frame size Create uses: 4096
	// records per CRC32C frame keeps the table below 0.01% of the data.
	DefaultFrameRecords = 4096

	// maxDims bounds the header's dimensionality field. The engine's
	// unit arrays index dimensions with uint8 and the paper evaluates up
	// to 100 dimensions; anything near the uint32 limit is a corrupt or
	// hostile header, rejected before allocating the domain table.
	maxDims = 1 << 16

	defaultMaxRetries = 3
	defaultBackoff    = 2 * time.Millisecond
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the checksum v2 frames use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChunkError reports a chunk read that still failed after the retry
// budget was exhausted. It names the chunk so a failing run can be
// reproduced with an injected fault at the same index.
type ChunkError struct {
	// Path is the record file being read.
	Path string
	// Chunk is the scanner's 0-based chunk ordinal.
	Chunk int64
	// RecLo and RecHi delimit the records [RecLo, RecHi) of the chunk.
	RecLo, RecHi int
	// Attempts is how many times the read was tried.
	Attempts int
	// Err is the last error observed.
	Err error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("diskio: %s: chunk %d (records [%d,%d)) failed after %d attempt(s): %v",
		e.Path, e.Chunk, e.RecLo, e.RecHi, e.Attempts, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// ErrCorrupt is wrapped by every CorruptionError.
var ErrCorrupt = errors.New("diskio: checksum mismatch (data corruption)")

// CorruptionError reports a v2 checksum frame whose stored CRC32C does
// not match the bytes read — silent corruption (e.g. a flipped bit)
// that a v1 file would have served as garbage data.
type CorruptionError struct {
	// Path is the record file being read.
	Path string
	// Frame is the 0-based checksum frame index.
	Frame int
	// RecLo and RecHi delimit the frame's records [RecLo, RecHi).
	RecLo, RecHi int
	// Want is the stored checksum, Got the checksum of the bytes read.
	Want, Got uint32
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("diskio: %s: frame %d (records [%d,%d)): stored CRC32C %08x, read %08x: %v",
		e.Path, e.Frame, e.RecLo, e.RecHi, e.Want, e.Got, ErrCorrupt)
}

func (e *CorruptionError) Unwrap() error { return ErrCorrupt }

// Writer streams records into a new record file (format version 2).
// Data is written to a temporary sibling file and atomically renamed to
// the target path when Close succeeds, so the target either holds the
// previous complete file or the new complete file — never a torn write.
// Domains and per-frame checksums are tracked incrementally and written
// out on Close.
type Writer struct {
	f         *os.File
	bw        *bufio.Writer
	d         int
	n         uint64
	lo        []float64
	hi        []float64
	buf       []byte
	path      string // final path, created by Close's rename
	tmp       string // temp path holding the bytes until then
	frameRecs int
	frameLeft int
	crc       uint32
	crcs      []uint32
	done      bool
}

// Create opens path for writing a d-dimensional record file with the
// default checksum-frame size. The previous file at path, if any, stays
// intact until Close renames the finished file over it.
func Create(path string, d int) (*Writer, error) {
	return CreateWithFrames(path, d, DefaultFrameRecords)
}

// CreateWithFrames is Create with an explicit checksum-frame size in
// records (smaller frames detect corruption at finer granularity at the
// cost of a larger table).
func CreateWithFrames(path string, d, frameRecords int) (*Writer, error) {
	if d <= 0 || d > maxDims {
		return nil, fmt.Errorf("diskio: invalid dimensionality %d", d)
	}
	if frameRecords <= 0 {
		return nil, fmt.Errorf("diskio: invalid checksum frame size %d", frameRecords)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f:         f,
		bw:        bufio.NewWriterSize(f, 1<<20),
		d:         d,
		lo:        make([]float64, d),
		hi:        make([]float64, d),
		buf:       make([]byte, 8*d),
		path:      path,
		tmp:       tmp,
		frameRecs: frameRecords,
		frameLeft: frameRecords,
	}
	for i := 0; i < d; i++ {
		w.lo[i] = math.Inf(1)
		w.hi[i] = math.Inf(-1)
	}
	// Reserve header space with an advancing write so the buffered data
	// stream starts after it; the real header is written on Close.
	if _, err := f.Write(make([]byte, headerFixedV2+16*d)); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	return w, nil
}

func (w *Writer) writeHeader() error {
	hdr := make([]byte, headerFixedV2+16*w.d)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:], currentVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.d))
	binary.LittleEndian.PutUint64(hdr[12:], w.n)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(w.frameRecs))
	for i := 0; i < w.d; i++ {
		lo, hi := w.lo[i], w.hi[i]
		if lo > hi { // no records observed and no domains injected
			lo, hi = 0, 1
		}
		binary.LittleEndian.PutUint64(hdr[headerFixedV2+16*i:], math.Float64bits(lo))
		binary.LittleEndian.PutUint64(hdr[headerFixedV2+16*i+8:], math.Float64bits(hi))
	}
	_, err := w.f.WriteAt(hdr, 0)
	return err
}

// Append writes one record, which must have exactly d values.
func (w *Writer) Append(rec []float64) error {
	if len(rec) != w.d {
		return fmt.Errorf("diskio: record width %d, want %d", len(rec), w.d)
	}
	for i, v := range rec {
		if v < w.lo[i] {
			w.lo[i] = v
		}
		if v > w.hi[i] {
			w.hi[i] = v
		}
		binary.LittleEndian.PutUint64(w.buf[8*i:], math.Float64bits(v))
	}
	w.n++
	w.crc = crc32.Update(w.crc, castagnoli, w.buf)
	if w.frameLeft--; w.frameLeft == 0 {
		w.crcs = append(w.crcs, w.crc)
		w.crc = 0
		w.frameLeft = w.frameRecs
	}
	_, err := w.bw.Write(w.buf)
	return err
}

// AppendChunk writes n records from a row-major chunk.
func (w *Writer) AppendChunk(chunk []float64, n int) error {
	for r := 0; r < n; r++ {
		if err := w.Append(chunk[r*w.d : (r+1)*w.d]); err != nil {
			return err
		}
	}
	return nil
}

// NumRecords returns the number of records appended so far.
func (w *Writer) NumRecords() int { return int(w.n) }

// Abort discards the writer: the temp file is removed and the target
// path is left untouched. Calling Abort after Close (or Close after
// Abort) is a no-op.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.tmp)
}

// Close flushes buffered data, appends the checksum table, finalizes
// the header, syncs, and atomically renames the finished file onto the
// target path. On any failure the temp file is removed and the target
// path keeps its previous contents.
func (w *Writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	fail := func(err error) error {
		w.f.Close()
		os.Remove(w.tmp)
		return err
	}
	if w.frameLeft < w.frameRecs { // partial final frame
		w.crcs = append(w.crcs, w.crc)
	}
	var crcBuf [4]byte
	for _, c := range w.crcs {
		binary.LittleEndian.PutUint32(crcBuf[:], c)
		if _, err := w.bw.Write(crcBuf[:]); err != nil {
			return fail(err)
		}
	}
	if err := w.bw.Flush(); err != nil {
		return fail(err)
	}
	if err := w.writeHeader(); err != nil {
		return fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return fail(err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return err
	}
	return nil
}

// WriteSource copies every record of src into a new record file at
// path. On failure nothing is left at path.
func WriteSource(path string, src dataset.Source) error {
	w, err := Create(path, src.Dims())
	if err != nil {
		return err
	}
	sc := src.Scan(8192)
	defer sc.Close()
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		if err := w.AppendChunk(chunk, n); err != nil {
			w.Abort()
			return err
		}
	}
	if err := sc.Err(); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// Stats accumulates I/O counters for a File. Counters are atomic so
// concurrent scanners can share them.
type Stats struct {
	BytesRead int64
	Reads     int64
	// Retries counts chunk reads that were retried after a transient
	// failure; Corruptions counts checksum frames that failed
	// verification.
	Retries     int64
	Corruptions int64
	// Prefetched counts chunks read ahead by prefetching scanners;
	// PrefetchStalls counts Next calls that had to wait because the
	// background reader had not finished the next chunk yet.
	Prefetched     int64
	PrefetchStalls int64
}

// File is an opened record file; it implements dataset.Source with
// chunked reads, transparent retry of transient read errors, checksum
// verification (v2 files), and I/O statistics.
type File struct {
	path       string
	version    int
	d          int
	n          int
	frameRecs  int
	crcs       []uint32
	domains    []dataset.Range
	dataOff    int64
	stats      Stats
	rec        *obs.Recorder
	plan       *faults.Plan
	maxRetries int
	backoff    time.Duration
	prefetch   bool
}

// SetRecorder attaches an observability recorder: every chunk read by
// any scanner opened after the call bumps the machine-global
// "diskio.chunks"/"diskio.bytes" counters, retries bump
// "diskio.retries", and detected corruptions bump "diskio.corruptions"
// (scanners may run on any rank, so the counters are rank-less). A nil
// recorder detaches.
func (f *File) SetRecorder(rec *obs.Recorder) { f.rec = rec }

// SetFaults attaches a fault-injection plan consulted on every chunk
// read by scanners opened after the call (see internal/faults). A nil
// plan detaches.
func (f *File) SetFaults(p *faults.Plan) { f.plan = p }

// SetPrefetch enables double-buffered prefetching for scanners opened
// after the call: a background goroutine reads chunk k+1 while the
// caller consumes chunk k, so I/O overlaps compute. CRC validation,
// retry/backoff, and fault injection all still apply — errors simply
// surface on the Next call that would have consumed the failed chunk.
func (f *File) SetPrefetch(on bool) { f.prefetch = on }

// Prefetch reports whether scanners prefetch in the background.
func (f *File) Prefetch() bool { return f.prefetch }

// SetRetryPolicy overrides the transient-read retry budget: up to
// maxRetries re-reads after the first failure, sleeping backoff,
// 2*backoff, 4*backoff, ... between attempts. The defaults are 3
// retries starting at 2ms. maxRetries 0 disables retrying.
func (f *File) SetRetryPolicy(maxRetries int, backoff time.Duration) {
	if maxRetries < 0 {
		maxRetries = 0
	}
	if backoff < 0 {
		backoff = 0
	}
	f.maxRetries = maxRetries
	f.backoff = backoff
}

// Open validates the header of the record file at path against the
// file's actual size — rejecting bad magic, unknown versions, zero or
// absurd dimensionalities, record counts that overflow or exceed the
// data present, and (v2) missing checksum tables — before anything is
// allocated or scanned. The file is reopened by each scanner, so a File
// may be scanned concurrently.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()

	var pre [8]byte
	if _, err := io.ReadFull(f, pre[:]); err != nil {
		return nil, fmt.Errorf("diskio: %s: short header: %w", path, err)
	}
	if string(pre[:4]) != magic {
		return nil, fmt.Errorf("diskio: %s: bad magic %q", path, pre[:4])
	}
	ver := int(binary.LittleEndian.Uint32(pre[4:]))
	var fixed int
	switch ver {
	case version1:
		fixed = headerFixedV1
	case version2:
		fixed = headerFixedV2
	default:
		return nil, fmt.Errorf("diskio: %s: unsupported version %d", path, ver)
	}
	rest := make([]byte, fixed-8)
	if _, err := io.ReadFull(f, rest); err != nil {
		return nil, fmt.Errorf("diskio: %s: short header: %w", path, err)
	}
	d := int(binary.LittleEndian.Uint32(rest[0:]))
	n := binary.LittleEndian.Uint64(rest[4:])
	if d <= 0 || d > maxDims {
		return nil, fmt.Errorf("diskio: %s: invalid dims %d (want 1..%d)", path, d, maxDims)
	}
	frameRecs := 0
	if ver == version2 {
		frameRecs = int(binary.LittleEndian.Uint32(rest[12:]))
		if frameRecs <= 0 {
			return nil, fmt.Errorf("diskio: %s: invalid checksum frame size %d", path, frameRecs)
		}
	}
	dataOff := int64(fixed + 16*d)
	if size < dataOff {
		return nil, fmt.Errorf("diskio: %s: truncated: size %d below header+domains %d", path, size, dataOff)
	}
	// Reject record counts whose data size overflows int64 — a crafted
	// or corrupt header would otherwise defeat the truncation check and
	// the file would be read as garbage.
	if n > uint64((math.MaxInt64-dataOff)/int64(8*d)) {
		return nil, fmt.Errorf("diskio: %s: record count %d overflows with %d dims", path, n, d)
	}
	dataBytes := int64(n) * int64(d) * 8
	var crcs []uint32
	switch ver {
	case version1:
		if want := dataOff + dataBytes; size < want {
			return nil, fmt.Errorf("diskio: %s: truncated: size %d, want %d", path, size, want)
		}
	case version2:
		frames := (int64(n) + int64(frameRecs) - 1) / int64(frameRecs)
		want := dataOff + dataBytes + 4*frames
		if size != want {
			return nil, fmt.Errorf("diskio: %s: size %d does not match header (want %d: %d records × %d dims + %d checksum frames)",
				path, size, want, n, d, frames)
		}
		crcs = make([]uint32, frames)
		tbl := make([]byte, 4*frames)
		if _, err := f.ReadAt(tbl, dataOff+dataBytes); err != nil {
			return nil, fmt.Errorf("diskio: %s: reading checksum table: %w", path, err)
		}
		for i := range crcs {
			crcs[i] = binary.LittleEndian.Uint32(tbl[4*i:])
		}
	}
	domBuf := make([]byte, 16*d)
	if _, err := f.ReadAt(domBuf, int64(fixed)); err != nil {
		return nil, fmt.Errorf("diskio: %s: short domain table: %w", path, err)
	}
	domains := make([]dataset.Range, d)
	for i := range domains {
		domains[i].Lo = math.Float64frombits(binary.LittleEndian.Uint64(domBuf[16*i:]))
		domains[i].Hi = math.Float64frombits(binary.LittleEndian.Uint64(domBuf[16*i+8:]))
	}
	return &File{
		path:       path,
		version:    ver,
		d:          d,
		n:          int(n),
		frameRecs:  frameRecs,
		crcs:       crcs,
		domains:    domains,
		dataOff:    dataOff,
		maxRetries: defaultMaxRetries,
		backoff:    defaultBackoff,
	}, nil
}

// Dims returns the dimensionality.
func (f *File) Dims() int { return f.d }

// NumRecords returns the record count.
func (f *File) NumRecords() int { return f.n }

// Path returns the file path.
func (f *File) Path() string { return f.path }

// Version returns the on-disk format version (1 or 2).
func (f *File) Version() int { return f.version }

// FrameRecords returns the checksum-frame size in records (0 for v1
// files, which carry no checksums).
func (f *File) FrameRecords() int { return f.frameRecs }

// Domains returns the per-dimension value ranges recorded in the
// header, widened so the observed maximum falls inside the half-open
// interval.
func (f *File) Domains() []dataset.Range {
	out := make([]dataset.Range, f.d)
	for i, r := range f.domains {
		if r.Hi <= r.Lo {
			out[i] = dataset.Range{Lo: r.Lo, Hi: r.Lo + 1}
		} else {
			out[i] = dataset.Range{Lo: r.Lo, Hi: dataset.WidenHi(r.Lo, r.Hi)}
		}
	}
	return out
}

// StatsSnapshot returns the I/O counters accumulated by all scanners of
// this File.
func (f *File) StatsSnapshot() Stats {
	return Stats{
		BytesRead:      atomic.LoadInt64(&f.stats.BytesRead),
		Reads:          atomic.LoadInt64(&f.stats.Reads),
		Retries:        atomic.LoadInt64(&f.stats.Retries),
		Corruptions:    atomic.LoadInt64(&f.stats.Corruptions),
		Prefetched:     atomic.LoadInt64(&f.stats.Prefetched),
		PrefetchStalls: atomic.LoadInt64(&f.stats.PrefetchStalls),
	}
}

// Scan implements dataset.Source; each scanner opens its own descriptor
// so concurrent scans are safe.
func (f *File) Scan(chunkRecords int) dataset.Scanner {
	return f.ScanRange(0, f.n, chunkRecords)
}

// ScanRange returns a scanner over records [lo, hi), used by ranks that
// process a contiguous share of a shared file. On v2 files the scan
// verifies the checksum of every frame it fully traverses (a range
// starting mid-frame is verified from the next frame boundary on).
// With SetPrefetch enabled the returned scanner reads ahead in a
// background goroutine (see prefetchScanner).
func (f *File) ScanRange(lo, hi, chunkRecords int) dataset.Scanner {
	if chunkRecords <= 0 {
		chunkRecords = 1
	}
	if lo < 0 {
		lo = 0
	}
	if hi > f.n {
		hi = f.n
	}
	h, err := os.Open(f.path)
	if err != nil {
		return &fileScanner{err: err}
	}
	s := &fileScanner{
		f:        f,
		h:        h,
		next:     lo,
		end:      hi,
		chunkR:   chunkRecords,
		crcValid: f.version == version2 && f.frameRecs > 0 && lo%f.frameRecs == 0,
	}
	if f.prefetch {
		return newPrefetchScanner(s)
	}
	s.vals = make([]float64, chunkRecords*f.d)
	s.raw = make([]byte, chunkRecords*f.d*8)
	return s
}

type fileScanner struct {
	f        *File
	h        *os.File
	next     int // next absolute record index to serve
	end      int // absolute end of the scanned range
	vals     []float64
	raw      []byte
	chunkR   int
	chunkIdx int64
	crc      uint32 // running CRC32C of the current checksum frame
	crcValid bool   // false until the scan aligns with a frame boundary
	err      error
	// cancel, when non-nil, interrupts retry-backoff sleeps; the
	// prefetcher arms it so Close never waits out a retry schedule.
	cancel <-chan struct{}
}

// fill reads the next chunk into raw/vals (each sized for chunkR
// records) and returns its record count; 0 means the range is
// exhausted. It is the single source of the scan's read, retry,
// checksum, and decode behavior — Next and the prefetcher's background
// reader both drive it, so the pipelined path cannot drift from the
// serial one.
func (s *fileScanner) fill(raw []byte, vals []float64) (int, error) {
	if s.next >= s.end {
		return 0, nil
	}
	n := s.chunkR
	if n > s.end-s.next {
		n = s.end - s.next
	}
	nb := n * s.f.d * 8
	off := s.f.dataOff + int64(s.next)*int64(s.f.d)*8
	if err := s.readChunk(raw, off, nb); err != nil {
		return 0, err
	}
	atomic.AddInt64(&s.f.stats.BytesRead, int64(nb))
	atomic.AddInt64(&s.f.stats.Reads, 1)
	if s.f.rec != nil {
		s.f.rec.AddGlobal(obs.CtrDiskChunks, 1)
		s.f.rec.AddGlobal(obs.CtrDiskBytes, int64(nb))
	}
	if s.f.version == version2 {
		if err := s.checkFrames(raw[:nb], s.next, n); err != nil {
			atomic.AddInt64(&s.f.stats.Corruptions, 1)
			if s.f.rec != nil {
				s.f.rec.AddGlobal(obs.CtrDiskCorruptions, 1)
			}
			return 0, err
		}
	}
	for i := 0; i < n*s.f.d; i++ {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	s.next += n
	s.chunkIdx++
	return n, nil
}

func (s *fileScanner) Next() ([]float64, int) {
	if s.err != nil {
		return nil, 0
	}
	n, err := s.fill(s.raw, s.vals)
	if err != nil {
		s.err = err
		return nil, 0
	}
	if n == 0 {
		return nil, 0
	}
	return s.vals[:n*s.f.d], n
}

// readChunk fills raw[:nb] from offset off, retrying transient
// failures (including injected ones) with exponential backoff. Reads
// that run past the end of the file are truncation — permanent, never
// retried. After the retry budget is spent the failure surfaces as a
// *ChunkError naming the chunk.
func (s *fileScanner) readChunk(raw []byte, off int64, nb int) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(&s.f.stats.Retries, 1)
			if s.f.rec != nil {
				s.f.rec.AddGlobal(obs.CtrDiskRetries, 1)
			}
			if !s.sleepBackoff(s.f.backoff << (attempt - 1)) {
				break // scanner closed mid-retry; stop with lastErr
			}
		}
		err := s.readOnce(raw, off, nb)
		if err == nil {
			return nil
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("diskio: reading %s: truncated data section: %w", s.f.path, err)
		}
		lastErr = err
		if attempt == s.f.maxRetries {
			break
		}
	}
	return &ChunkError{
		Path:     s.f.path,
		Chunk:    s.chunkIdx,
		RecLo:    s.next,
		RecHi:    s.next + nb/(8*s.f.d),
		Attempts: s.f.maxRetries + 1,
		Err:      lastErr,
	}
}

// sleepBackoff sleeps d, or returns false early when the scanner's
// cancel channel closes (a prefetching scanner being Closed).
func (s *fileScanner) sleepBackoff(d time.Duration) bool {
	if s.cancel == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.cancel:
		return false
	}
}

// readOnce performs one read attempt, applying at most one injected
// fault from the file's plan. An injected bit flip corrupts the data
// after a successful read — on a v2 file the frame checksum catches it;
// on a v1 file it silently becomes garbage data, which is exactly the
// failure mode the v2 format exists to close.
func (s *fileScanner) readOnce(raw []byte, off int64, nb int) error {
	if k, ok := s.f.plan.ReadFault(s.chunkIdx); ok {
		switch k {
		case faults.ReadError:
			return faults.ErrRead
		case faults.ShortRead:
			half := nb / 2
			if half > 0 {
				if _, err := s.h.ReadAt(raw[:half], off); err != nil {
					return err
				}
			}
			return fmt.Errorf("%w: %d of %d bytes", faults.ErrShortRead, half, nb)
		case faults.BitFlip:
			if _, err := s.h.ReadAt(raw[:nb], off); err != nil {
				return err
			}
			pos := s.f.plan.BitPos(s.chunkIdx, int64(nb)*8)
			raw[pos/8] ^= 1 << uint(pos%8)
			return nil
		}
	}
	_, err := s.h.ReadAt(raw[:nb], off)
	return err
}

// checkFrames feeds the chunk's bytes (records [start, start+n)) into
// the running per-frame CRC32C and compares it against the stored table
// at every frame boundary the chunk crosses.
func (s *fileScanner) checkFrames(b []byte, start, n int) error {
	rw := s.f.d * 8
	pos := start
	for n > 0 {
		frame := pos / s.f.frameRecs
		frameEnd := (frame + 1) * s.f.frameRecs
		if frameEnd > s.f.n {
			frameEnd = s.f.n
		}
		take := n
		if take > frameEnd-pos {
			take = frameEnd - pos
		}
		if s.crcValid {
			s.crc = crc32.Update(s.crc, castagnoli, b[:take*rw])
		}
		pos += take
		n -= take
		b = b[take*rw:]
		if pos == frameEnd {
			if s.crcValid && s.crc != s.f.crcs[frame] {
				return &CorruptionError{
					Path:  s.f.path,
					Frame: frame,
					RecLo: frame * s.f.frameRecs,
					RecHi: frameEnd,
					Want:  s.f.crcs[frame],
					Got:   s.crc,
				}
			}
			s.crc = 0
			s.crcValid = true
		}
	}
	return nil
}

func (s *fileScanner) Err() error { return s.err }

func (s *fileScanner) Close() error {
	if s.h != nil {
		return s.h.Close()
	}
	return nil
}

// ShareBounds returns the contiguous record range [lo, hi) owned by
// rank out of p processors over n records, the block distribution the
// paper uses when staging the shared data set.
func ShareBounds(n, rank, p int) (lo, hi int) {
	if p <= 0 {
		return 0, n
	}
	lo = rank * n / p
	hi = (rank + 1) * n / p
	return
}

// Stage copies rank's N/p contiguous share of the shared record file
// into localDir (the simulated local disk) and returns the opened local
// file. The local file's header domains describe the *global* data set,
// copied from the shared header, because the adaptive-grid phase needs
// the global domains.
func Stage(shared *File, localDir string, rank, p int) (*File, error) {
	if err := os.MkdirAll(localDir, 0o755); err != nil {
		return nil, err
	}
	lo, hi := ShareBounds(shared.NumRecords(), rank, p)
	localPath := filepath.Join(localDir, fmt.Sprintf("shard-%04d-of-%04d.pmaf", rank, p))
	w, err := Create(localPath, shared.Dims())
	if err != nil {
		return nil, err
	}
	sc := shared.ScanRange(lo, hi, 8192)
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		if err := w.AppendChunk(chunk, n); err != nil {
			sc.Close()
			w.Abort()
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		sc.Close()
		w.Abort()
		return nil, err
	}
	sc.Close()
	// Preserve the global domains: overwrite the local writer's
	// observed domains with the shared header's before finalizing.
	copy(w.lo, domLo(shared.domains))
	copy(w.hi, domHi(shared.domains))
	if err := w.Close(); err != nil {
		return nil, err
	}
	return Open(localPath)
}

func domLo(rs []dataset.Range) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Lo
	}
	return out
}

func domHi(rs []dataset.Range) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Hi
	}
	return out
}
