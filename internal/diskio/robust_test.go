package diskio

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"testing"
	"time"

	"pmafia/internal/dataset"
	"pmafia/internal/faults"
	"pmafia/internal/obs"
)

// writeV1 emits a legacy version-1 record file (no checksum table)
// byte-for-byte, so the reader's backward compatibility is tested
// against the real v1 layout rather than against the current writer.
func writeV1(t *testing.T, path string, d int, recs [][]float64) {
	t.Helper()
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, r := range recs {
		for i, v := range r {
			lo[i] = math.Min(lo[i], v)
			hi[i] = math.Max(hi[i], v)
		}
	}
	buf := make([]byte, headerFixedV1+16*d+8*d*len(recs))
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[4:], version1)
	binary.LittleEndian.PutUint32(buf[8:], uint32(d))
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(recs)))
	for i := 0; i < d; i++ {
		if lo[i] > hi[i] {
			lo[i], hi[i] = 0, 1
		}
		binary.LittleEndian.PutUint64(buf[headerFixedV1+16*i:], math.Float64bits(lo[i]))
		binary.LittleEndian.PutUint64(buf[headerFixedV1+16*i+8:], math.Float64bits(hi[i]))
	}
	off := headerFixedV1 + 16*d
	for _, r := range recs {
		for _, v := range r {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func scanAll(t *testing.T, f *File) ([]float64, error) {
	t.Helper()
	sc := f.Scan(3)
	defer sc.Close()
	var got []float64
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		got = append(got, chunk[:n*f.Dims()]...)
	}
	return got, sc.Err()
}

func TestV1StillReadable(t *testing.T) {
	path := tmpPath(t, "v1.pmaf")
	recs := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	writeV1(t, path, 2, recs)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Version() != 1 || f.FrameRecords() != 0 {
		t.Errorf("version=%d frameRecords=%d, want 1 and 0", f.Version(), f.FrameRecords())
	}
	got, err := scanAll(t, f)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %d values", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestV2VersionAndFrames(t *testing.T) {
	path := tmpPath(t, "v2.pmaf")
	if err := WriteSource(path, makeMatrix(10, 3)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Version() != version2 || f.FrameRecords() != DefaultFrameRecords {
		t.Errorf("version=%d frameRecords=%d", f.Version(), f.FrameRecords())
	}
}

// writeV2Small writes n records of d dims with a small checksum frame,
// returning the data-section offset for corruption tests.
func writeV2Small(t *testing.T, path string, n, d, frameRecs int) int64 {
	t.Helper()
	w, err := CreateWithFrames(path, d, frameRecs)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range rec {
			rec[j] = float64(i*d + j)
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return int64(headerFixedV2 + 16*d)
}

func flipBitOnDisk(t *testing.T, path string, off int64) {
	t.Helper()
	h, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	var b [1]byte
	if _, err := h.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := h.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestOnDiskBitFlipDetectedV2: a single flipped bit in the data section
// of a v2 file surfaces as a CorruptionError naming the right frame,
// and is counted in Stats and the obs recorder.
func TestOnDiskBitFlipDetectedV2(t *testing.T) {
	path := tmpPath(t, "flip.pmaf")
	dataOff := writeV2Small(t, path, 20, 2, 4) // frames of 4 records
	// Corrupt record 9 → frame 2 (records [8,12)).
	flipBitOnDisk(t, path, dataOff+9*2*8)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	f.SetRecorder(rec)
	_, err = scanAll(t, f)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CorruptionError", err, err)
	}
	if ce.Frame != 2 || ce.RecLo != 8 || ce.RecHi != 12 {
		t.Errorf("corruption at frame=%d recs=[%d,%d), want frame 2 [8,12)", ce.Frame, ce.RecLo, ce.RecHi)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err %v does not wrap ErrCorrupt", err)
	}
	if st := f.StatsSnapshot(); st.Corruptions != 1 {
		t.Errorf("Corruptions = %d, want 1", st.Corruptions)
	}
	if rec.Counter("diskio.corruptions") != 1 {
		t.Errorf("obs corruptions = %d", rec.Counter("diskio.corruptions"))
	}
}

// TestOnDiskBitFlipSilentOnV1 documents the gap the v2 format closes: a
// v1 file has no checksums, so the same flipped bit reads back as
// (garbage) data without any error.
func TestOnDiskBitFlipSilentOnV1(t *testing.T) {
	path := tmpPath(t, "flipv1.pmaf")
	writeV1(t, path, 2, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	flipBitOnDisk(t, path, int64(headerFixedV1+16*2)+3*8)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scanAll(t, f); err != nil {
		t.Fatalf("v1 scan reported %v; v1 carries no checksums", err)
	}
}

// TestScanRangeMidFrameVerifiesFromBoundary: a range scan starting
// mid-frame cannot verify its head frame (it never saw the frame's
// first bytes) but must verify every subsequent frame.
func TestScanRangeMidFrameVerifiesFromBoundary(t *testing.T) {
	path := tmpPath(t, "midframe.pmaf")
	dataOff := writeV2Small(t, path, 24, 2, 4)
	// Corrupt record 1 (frame 0) and record 10 (frame 2).
	flipBitOnDisk(t, path, dataOff+1*2*8)
	flipBitOnDisk(t, path, dataOff+10*2*8)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Start at record 2, mid-frame-0: frame 0's corruption is invisible,
	// frame 2's must still be caught.
	sc := f.ScanRange(2, 24, 3)
	defer sc.Close()
	for {
		if _, n := sc.Next(); n == 0 {
			break
		}
	}
	var ce *CorruptionError
	if !errors.As(sc.Err(), &ce) || ce.Frame != 2 {
		t.Fatalf("err = %v, want CorruptionError in frame 2", sc.Err())
	}
	// A frame-aligned range scan over only clean frames passes.
	sc2 := f.ScanRange(12, 24, 5)
	defer sc2.Close()
	n := 0
	for {
		_, k := sc2.Next()
		if k == 0 {
			break
		}
		n += k
	}
	if sc2.Err() != nil || n != 12 {
		t.Fatalf("clean tail scan: n=%d err=%v", n, sc2.Err())
	}
}

// TestTransientReadErrorRetried: injected transient read failures are
// retried with backoff and the scan succeeds; retries are counted.
func TestTransientReadErrorRetried(t *testing.T) {
	path := tmpPath(t, "transient.pmaf")
	if err := WriteSource(path, makeMatrix(12, 2)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaults(faults.New(0, faults.Fault{Kind: faults.ReadError, Index: 1, Times: 2}))
	f.SetRetryPolicy(3, 100*time.Microsecond)
	rec := obs.New()
	f.SetRecorder(rec)
	got, err := scanAll(t, f)
	if err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if len(got) != 24 {
		t.Fatalf("got %d values", len(got))
	}
	if st := f.StatsSnapshot(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
	if rec.Counter("diskio.retries") != 2 {
		t.Errorf("obs retries = %d", rec.Counter("diskio.retries"))
	}
}

// TestRetryBudgetExhausted: a fault that outlives the retry budget
// surfaces as a *ChunkError naming the chunk and wrapping the cause.
func TestRetryBudgetExhausted(t *testing.T) {
	path := tmpPath(t, "exhaust.pmaf")
	if err := WriteSource(path, makeMatrix(12, 2)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaults(faults.New(0, faults.Fault{Kind: faults.ReadError, Index: 2, Times: 10}))
	f.SetRetryPolicy(3, 100*time.Microsecond)
	_, err = scanAll(t, f)
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *ChunkError", err, err)
	}
	if ce.Chunk != 2 || ce.Attempts != 4 {
		t.Errorf("chunk=%d attempts=%d, want chunk 2, 4 attempts", ce.Chunk, ce.Attempts)
	}
	if !errors.Is(err, faults.ErrRead) {
		t.Errorf("err %v does not wrap faults.ErrRead", err)
	}
}

// TestShortReadRetried: an injected short read is transient and the
// next attempt succeeds.
func TestShortReadRetried(t *testing.T) {
	path := tmpPath(t, "short.pmaf")
	if err := WriteSource(path, makeMatrix(9, 2)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaults(faults.New(0, faults.Fault{Kind: faults.ShortRead, Index: 0}))
	f.SetRetryPolicy(2, 100*time.Microsecond)
	if _, err := scanAll(t, f); err != nil {
		t.Fatalf("short read not retried: %v", err)
	}
	if st := f.StatsSnapshot(); st.Retries != 1 {
		t.Errorf("Retries = %d, want 1", st.Retries)
	}
}

// TestInjectedBitFlipCaughtByChecksum: a bit flip injected into the
// read path (not the disk) is caught by the v2 frame checksum.
func TestInjectedBitFlipCaughtByChecksum(t *testing.T) {
	path := tmpPath(t, "injflip.pmaf")
	if err := WriteSource(path, makeMatrix(10, 2)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaults(faults.New(7, faults.Fault{Kind: faults.BitFlip, Index: 1}))
	_, err = scanAll(t, f)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want checksum mismatch", err)
	}
}

// TestAtomicClose: nothing exists at the target path until Close, and
// the temp file is gone after it.
func TestAtomicClose(t *testing.T) {
	path := tmpPath(t, "atomic.pmaf")
	w, err := Create(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target path exists before Close (err=%v)", err)
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("temp file missing before Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("target missing after Close: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after Close (err=%v)", err)
	}
}

// TestAbortLeavesNothing: Abort removes the temp file and never touches
// the target; double Abort/Close are no-ops.
func TestAbortLeavesNothing(t *testing.T) {
	path := tmpPath(t, "abort.pmaf")
	w, err := Create(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort()
	if err := w.Close(); err != nil {
		t.Fatalf("Close after Abort: %v", err)
	}
	for _, p := range []string{path, path + ".tmp"} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s exists after Abort (err=%v)", p, err)
		}
	}
}

// TestCloseKeepsPreviousFileUntilRename: rewriting an existing path
// leaves the old complete file in place until the new one is finished.
func TestCloseKeepsPreviousFileUntilRename(t *testing.T) {
	path := tmpPath(t, "swap.pmaf")
	if err := WriteSource(path, makeMatrix(5, 2)); err != nil {
		t.Fatal(err)
	}
	w, err := Create(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	old, err := Open(path)
	if err != nil || old.NumRecords() != 5 || old.Dims() != 2 {
		t.Fatalf("old file unreadable mid-rewrite: %v", err)
	}
	if err := w.AppendChunk(makeMatrix(4, 3).Row(0)[:0:0], 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append([]float64{float64(i), 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	now, err := Open(path)
	if err != nil || now.NumRecords() != 4 || now.Dims() != 3 {
		t.Fatalf("new file wrong after swap: n=%d d=%d err=%v", now.NumRecords(), now.Dims(), err)
	}
}

// failingSource yields one good chunk, then errors.
type failingSource struct{ d int }

func (s *failingSource) Dims() int                      { return s.d }
func (s *failingSource) NumRecords() int                { return 100 }
func (s *failingSource) Scan(chunk int) dataset.Scanner { return &failingScanner{d: s.d} }

type failingScanner struct {
	d    int
	step int
	err  error
}

func (s *failingScanner) Next() ([]float64, int) {
	s.step++
	if s.step == 1 {
		return make([]float64, s.d), 1
	}
	s.err = errors.New("source exploded")
	return nil, 0
}
func (s *failingScanner) Err() error   { return s.err }
func (s *failingScanner) Close() error { return nil }

// TestWriteSourceAbortsOnSourceError: a failing source must not leave a
// half-written file at the target path.
func TestWriteSourceAbortsOnSourceError(t *testing.T) {
	path := tmpPath(t, "fail.pmaf")
	err := WriteSource(path, &failingSource{d: 2})
	if err == nil || err.Error() != "source exploded" {
		t.Fatalf("err = %v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Errorf("half-written file left at target (err=%v)", statErr)
	}
	if _, statErr := os.Stat(path + ".tmp"); !os.IsNotExist(statErr) {
		t.Errorf("temp file left behind (err=%v)", statErr)
	}
}

// corruptHeader writes a v2 file then patches header fields, for the
// Open validation table below.
func corruptHeader(t *testing.T, path string, patch func(hdr []byte)) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	patch(buf)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenValidatesHeaderAgainstSize: crafted or corrupt headers are
// rejected by Open before any allocation or scan.
func TestOpenValidatesHeaderAgainstSize(t *testing.T) {
	cases := []struct {
		name  string
		patch func(hdr []byte)
	}{
		{"zero dims", func(h []byte) { binary.LittleEndian.PutUint32(h[8:], 0) }},
		{"absurd dims", func(h []byte) { binary.LittleEndian.PutUint32(h[8:], 1<<30) }},
		{"overflowing records", func(h []byte) { binary.LittleEndian.PutUint64(h[12:], math.MaxUint64/2) }},
		{"records beyond file", func(h []byte) { binary.LittleEndian.PutUint64(h[12:], 10_000) }},
		{"zero frame size", func(h []byte) { binary.LittleEndian.PutUint32(h[20:], 0) }},
		{"unknown version", func(h []byte) { binary.LittleEndian.PutUint32(h[4:], 9) }},
		{"bad magic", func(h []byte) { copy(h, "XXXX") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := tmpPath(t, "hdr.pmaf")
			if err := WriteSource(path, makeMatrix(6, 2)); err != nil {
				t.Fatal(err)
			}
			corruptHeader(t, path, tc.patch)
			if _, err := Open(path); err == nil {
				t.Error("Open accepted a corrupt header")
			}
		})
	}
	t.Run("trailing garbage on v2", func(t *testing.T) {
		path := tmpPath(t, "trail.pmaf")
		if err := WriteSource(path, makeMatrix(6, 2)); err != nil {
			t.Fatal(err)
		}
		h, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte{0})
		h.Close()
		if _, err := Open(path); err == nil {
			t.Error("Open accepted a v2 file with a size mismatch")
		}
	})
	t.Run("v1 zero dims", func(t *testing.T) {
		path := tmpPath(t, "v1bad.pmaf")
		writeV1(t, path, 2, [][]float64{{1, 2}})
		corruptHeader(t, path, func(h []byte) { binary.LittleEndian.PutUint32(h[8:], 0) })
		if _, err := Open(path); err == nil {
			t.Error("Open accepted a zero-dim v1 header")
		}
	})
}

// TestTruncationIsPermanent: data missing from the middle of the file
// (here: the file shrinks after Open) is truncation, failed without
// burning the retry budget on an error that cannot heal.
func TestTruncationIsPermanent(t *testing.T) {
	path := tmpPath(t, "trunc.pmaf")
	if err := WriteSource(path, makeMatrix(100, 2)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 200); err != nil {
		t.Fatal(err)
	}
	_, err = scanAll(t, f)
	if err == nil {
		t.Fatal("truncated file scanned clean")
	}
	if st := f.StatsSnapshot(); st.Retries != 0 {
		t.Errorf("truncation was retried %d times", st.Retries)
	}
}

// TestStageProducesV2: staged shards inherit the hardened format.
func TestStageProducesV2(t *testing.T) {
	shared := tmpPath(t, "shared.pmaf")
	if err := WriteSource(shared, makeMatrix(40, 2)); err != nil {
		t.Fatal(err)
	}
	sf, err := Open(shared)
	if err != nil {
		t.Fatal(err)
	}
	local, err := Stage(sf, tmpPath(t, "local"), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if local.Version() != version2 {
		t.Errorf("staged shard version = %d", local.Version())
	}
	if local.NumRecords() != 10 {
		t.Errorf("staged shard has %d records", local.NumRecords())
	}
}
