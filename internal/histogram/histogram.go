// Package histogram builds the per-dimension fine-grained histograms
// that feed pMAFIA's adaptive grid computation (Algorithm 1 in the
// paper). Each dimension's domain is divided into a fixed number of
// small fine units; one pass over the data counts records per unit; the
// grid package then takes window maxima and merges adjacent windows
// into variable-sized bins.
package histogram

import (
	"fmt"

	"pmafia/internal/dataset"
)

// Hist is a set of per-dimension fine-unit histograms over a common
// unit count. Counts are int64 so histograms from many ranks can be
// summed without overflow.
type Hist struct {
	Units   int             // fine units per dimension
	Domains []dataset.Range // per-dimension domains
	Counts  [][]int64       // [dim][unit]
	N       int64           // records accumulated
}

// New allocates a histogram with units fine units for each of the given
// domains.
func New(domains []dataset.Range, units int) *Hist {
	if units <= 0 {
		panic(fmt.Sprintf("histogram: invalid unit count %d", units))
	}
	h := &Hist{Units: units, Domains: domains, Counts: make([][]int64, len(domains))}
	for i := range h.Counts {
		h.Counts[i] = make([]int64, units)
	}
	return h
}

// UnitOf maps value v in dimension dim to its fine-unit index, clamping
// out-of-domain values to the boundary units.
func (h *Hist) UnitOf(dim int, v float64) int {
	dom := h.Domains[dim]
	f := float64(h.Units) * (v - dom.Lo) / dom.Width()
	if !(f > 0) { // also catches NaN
		return 0
	}
	if f >= float64(h.Units) { // clamp before int conversion can overflow
		return h.Units - 1
	}
	return int(f)
}

// AddRecord counts one d-dimensional record.
func (h *Hist) AddRecord(rec []float64) {
	for dim, v := range rec {
		h.Counts[dim][h.UnitOf(dim, v)]++
	}
	h.N++
}

// AddChunk counts n row-major records.
func (h *Hist) AddChunk(chunk []float64, n int) {
	d := len(h.Domains)
	for r := 0; r < n; r++ {
		h.AddRecord(chunk[r*d : (r+1)*d])
	}
}

// AddSource counts every record of src, reading in chunks of
// chunkRecords.
func (h *Hist) AddSource(src dataset.Source, chunkRecords int) error {
	sc := src.Scan(chunkRecords)
	defer sc.Close()
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		h.AddChunk(chunk, n)
	}
	return sc.Err()
}

// Flatten serializes all counts (dim-major) plus the record count into
// a single vector, the shape exchanged by the parallel Reduce step.
func (h *Hist) Flatten() []int64 {
	out := make([]int64, 0, len(h.Counts)*h.Units+1)
	for _, c := range h.Counts {
		out = append(out, c...)
	}
	return append(out, h.N)
}

// SetFlattened replaces the counts from a vector produced by Flatten
// (typically after a sum-Reduce across ranks).
func (h *Hist) SetFlattened(v []int64) error {
	want := len(h.Counts)*h.Units + 1
	if len(v) != want {
		return fmt.Errorf("histogram: flattened length %d, want %d", len(v), want)
	}
	for i := range h.Counts {
		copy(h.Counts[i], v[i*h.Units:(i+1)*h.Units])
	}
	h.N = v[len(v)-1]
	return nil
}

// WindowMaxima reduces dimension dim's fine counts to window values:
// each window of windowUnits consecutive units is represented by its
// maximum count, per Algorithm 1. The last window may be narrower when
// Units is not a multiple of windowUnits. It returns the window values
// and the fine-unit start index of each window (with a final sentinel
// equal to Units).
func (h *Hist) WindowMaxima(dim, windowUnits int) (values []int64, starts []int) {
	if windowUnits <= 0 {
		windowUnits = 1
	}
	c := h.Counts[dim]
	for lo := 0; lo < h.Units; lo += windowUnits {
		hi := lo + windowUnits
		if hi > h.Units {
			hi = h.Units
		}
		m := c[lo]
		for _, v := range c[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		values = append(values, m)
		starts = append(starts, lo)
	}
	starts = append(starts, h.Units)
	return values, starts
}

// SumRange returns the total count of fine units [lo, hi) in dim.
func (h *Hist) SumRange(dim, lo, hi int) int64 {
	var s int64
	for _, v := range h.Counts[dim][lo:hi] {
		s += v
	}
	return s
}
