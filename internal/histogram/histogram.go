// Package histogram builds the per-dimension fine-grained histograms
// that feed pMAFIA's adaptive grid computation (Algorithm 1 in the
// paper). Each dimension's domain is divided into a fixed number of
// small fine units; one pass over the data counts records per unit; the
// grid package then takes window maxima and merges adjacent windows
// into variable-sized bins.
package histogram

import (
	"fmt"
	"time"

	"pmafia/internal/dataset"
	"pmafia/internal/pool"
)

// Hist is a set of per-dimension fine-unit histograms over a common
// unit count. Counts are int64 so histograms from many ranks can be
// summed without overflow.
//
// The counts of all dimensions live in one flat backing array (Counts
// holds dim-major views into it), and the domain lows/widths are
// mirrored into flat arrays, so the per-chunk tally kernel runs over
// contiguous memory with no per-record allocation or 2-level slice
// chasing.
type Hist struct {
	Units   int             // fine units per dimension
	Domains []dataset.Range // per-dimension domains
	Counts  [][]int64       // [dim][unit], views into flat
	N       int64           // records accumulated

	flat  []int64   // dim-major backing array, len = dims*Units
	lo    []float64 // per-dimension domain low
	width []float64 // per-dimension domain width
}

// New allocates a histogram with units fine units for each of the given
// domains.
func New(domains []dataset.Range, units int) *Hist {
	if units <= 0 {
		panic(fmt.Sprintf("histogram: invalid unit count %d", units))
	}
	d := len(domains)
	h := &Hist{
		Units:   units,
		Domains: domains,
		Counts:  make([][]int64, d),
		flat:    make([]int64, d*units),
		lo:      make([]float64, d),
		width:   make([]float64, d),
	}
	for i := range h.Counts {
		h.Counts[i] = h.flat[i*units : (i+1)*units : (i+1)*units]
		h.lo[i] = domains[i].Lo
		h.width[i] = domains[i].Width()
	}
	return h
}

// Clone returns an independent deep copy of h: same domains, units,
// counts, and record total, sharing no backing memory. A streaming
// ingester hands clones to background refits so accumulation can
// continue while the fit reads a frozen snapshot.
func (h *Hist) Clone() *Hist {
	c := New(append([]dataset.Range(nil), h.Domains...), h.Units)
	copy(c.flat, h.flat)
	c.N = h.N
	return c
}

// UnitOf maps value v in dimension dim to its fine-unit index, clamping
// out-of-domain values to the boundary units.
func (h *Hist) UnitOf(dim int, v float64) int {
	dom := h.Domains[dim]
	f := float64(h.Units) * (v - dom.Lo) / dom.Width()
	if !(f > 0) { // also catches NaN
		return 0
	}
	if f >= float64(h.Units) { // clamp before int conversion can overflow
		return h.Units - 1
	}
	return int(f)
}

// AddRecord counts one d-dimensional record through UnitOf. It is the
// reference per-record path the flat AddChunk kernel is property-tested
// against; the engines call AddChunk.
func (h *Hist) AddRecord(rec []float64) {
	for dim, v := range rec {
		h.Counts[dim][h.UnitOf(dim, v)]++
	}
	h.N++
}

// AddChunk counts n row-major records with the allocation-free flat
// kernel: unit indices are computed from the mirrored lo/width arrays
// (the exact UnitOf expression, so both paths bin identically) and
// bumped directly in the flat backing array.
func (h *Hist) AddChunk(chunk []float64, n int) {
	d := len(h.Domains)
	units := h.Units
	uf := float64(units)
	flat := h.flat
	for r := 0; r < n; r++ {
		rec := chunk[r*d : (r+1)*d]
		base := 0
		for dim, v := range rec {
			f := uf * (v - h.lo[dim]) / h.width[dim]
			var u int
			switch {
			case !(f > 0): // also catches NaN
				u = 0
			case f >= uf:
				u = units - 1
			default:
				u = int(f)
			}
			flat[base+u]++
			base += units
		}
	}
	h.N += int64(n)
}

// AddSource counts every record of src, reading in chunks of
// chunkRecords.
func (h *Hist) AddSource(src dataset.Source, chunkRecords int) error {
	sc := src.Scan(chunkRecords)
	defer sc.Close()
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		h.AddChunk(chunk, n)
	}
	return sc.Err()
}

// AddSourceParallel counts every record of src with an intra-rank
// worker pool: each chunk's records are sharded across workers, every
// worker tallies into a private flat array, and the partials are summed
// into h once the scan ends. Tallies are exactly AddSource's (int64
// sums commute), so the pool is invisible to everything downstream.
// Returns the wall-clock time of the final merge.
func (h *Hist) AddSourceParallel(src dataset.Source, chunkRecords, workers int) (mergeSeconds float64, err error) {
	if workers <= 1 {
		return 0, h.AddSource(src, chunkRecords)
	}
	parts := make([]*Hist, workers)
	for w := range parts {
		parts[w] = New(h.Domains, h.Units)
	}
	n, err := pool.Scan(src, chunkRecords, workers, func(w int, chunk []float64, lo, hi int) {
		parts[w].AddChunk(chunk[lo*len(h.Domains):hi*len(h.Domains)], hi-lo)
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for _, p := range parts {
		for i, v := range p.flat {
			h.flat[i] += v
		}
	}
	h.N += n
	return time.Since(start).Seconds(), nil
}

// Flatten serializes all counts (dim-major) plus the record count into
// a single vector, the shape exchanged by the parallel Reduce step.
func (h *Hist) Flatten() []int64 {
	out := make([]int64, 0, len(h.Counts)*h.Units+1)
	for _, c := range h.Counts {
		out = append(out, c...)
	}
	return append(out, h.N)
}

// SetFlattened replaces the counts from a vector produced by Flatten
// (typically after a sum-Reduce across ranks).
func (h *Hist) SetFlattened(v []int64) error {
	want := len(h.Counts)*h.Units + 1
	if len(v) != want {
		return fmt.Errorf("histogram: flattened length %d, want %d", len(v), want)
	}
	for i := range h.Counts {
		copy(h.Counts[i], v[i*h.Units:(i+1)*h.Units])
	}
	h.N = v[len(v)-1]
	return nil
}

// WindowMaxima reduces dimension dim's fine counts to window values:
// each window of windowUnits consecutive units is represented by its
// maximum count, per Algorithm 1. The last window may be narrower when
// Units is not a multiple of windowUnits. It returns the window values
// and the fine-unit start index of each window (with a final sentinel
// equal to Units).
func (h *Hist) WindowMaxima(dim, windowUnits int) (values []int64, starts []int) {
	if windowUnits <= 0 {
		windowUnits = 1
	}
	c := h.Counts[dim]
	for lo := 0; lo < h.Units; lo += windowUnits {
		hi := lo + windowUnits
		if hi > h.Units {
			hi = h.Units
		}
		m := c[lo]
		for _, v := range c[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		values = append(values, m)
		starts = append(starts, lo)
	}
	starts = append(starts, h.Units)
	return values, starts
}

// SumRange returns the total count of fine units [lo, hi) in dim.
func (h *Hist) SumRange(dim, lo, hi int) int64 {
	var s int64
	for _, v := range h.Counts[dim][lo:hi] {
		s += v
	}
	return s
}
