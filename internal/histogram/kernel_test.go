package histogram

import (
	"math"
	"testing"

	"pmafia/internal/dataset"
	"pmafia/internal/rng"
)

// randHist builds a histogram over random domains plus a matrix of
// records drawn to straddle the domains (including out-of-range values
// that exercise the clamping branches).
func randHist(r *rng.Source, n, d, units int) (*Hist, *dataset.Matrix) {
	domains := make([]dataset.Range, d)
	for i := range domains {
		lo := r.In(-100, 100)
		domains[i] = dataset.Range{Lo: lo, Hi: lo + r.In(0.5, 50)}
	}
	m := dataset.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			// 10% of values land outside the domain on either side.
			v := r.In(domains[j].Lo-0.1*domains[j].Width(), domains[j].Hi+0.1*domains[j].Width())
			row[j] = v
		}
	}
	// Sprinkle exact boundary values: bin edges are where a kernel
	// rewrite with different float association would first diverge.
	for i := 0; i < n/10; i++ {
		row := m.Row(r.Intn(n))
		j := r.Intn(d)
		u := r.Intn(units)
		row[j] = domains[j].Lo + domains[j].Width()*float64(u)/float64(units)
	}
	return New(domains, units), m
}

// TestKernelMatchesAddRecordOracle is the property test of the flat
// chunk kernel: for random domains, units, and records — boundary
// values included — AddChunk must produce bit-identical counts to the
// per-record AddRecord reference path.
func TestKernelMatchesAddRecordOracle(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(500)
		d := 1 + r.Intn(6)
		units := 1 + r.Intn(64)
		h, m := randHist(r.Split(), n, d, units)
		oracle := New(h.Domains, units)
		for i := 0; i < n; i++ {
			oracle.AddRecord(m.Row(i))
		}
		h.AddChunk(m.Values, n)
		if h.N != oracle.N {
			t.Fatalf("trial %d: N=%d, oracle %d", trial, h.N, oracle.N)
		}
		for dim := 0; dim < d; dim++ {
			for u := 0; u < units; u++ {
				if h.Counts[dim][u] != oracle.Counts[dim][u] {
					t.Fatalf("trial %d: counts[%d][%d] = %d, oracle %d",
						trial, dim, u, h.Counts[dim][u], oracle.Counts[dim][u])
				}
			}
		}
	}
}

// TestKernelSpecialValues pins the clamping semantics the oracle
// defines: NaN and -Inf land in unit 0, +Inf and v >= Hi in the last
// unit.
func TestKernelSpecialValues(t *testing.T) {
	domains := []dataset.Range{{Lo: 0, Hi: 10}}
	vals := []float64{math.NaN(), math.Inf(-1), math.Inf(1), -5, 0, 10, 15}
	h := New(domains, 5)
	oracle := New(domains, 5)
	for _, v := range vals {
		oracle.AddRecord([]float64{v})
	}
	h.AddChunk(vals, len(vals))
	for u := 0; u < 5; u++ {
		if h.Counts[0][u] != oracle.Counts[0][u] {
			t.Fatalf("unit %d: %d, oracle %d", u, h.Counts[0][u], oracle.Counts[0][u])
		}
	}
}

// TestParallelMatchesSerial checks AddSourceParallel produces exactly
// AddSource's histogram for every worker count, including workers >
// records and chunk sizes that do not divide the record count.
func TestParallelMatchesSerial(t *testing.T) {
	r := rng.New(7)
	h, m := randHist(r, 1003, 5, 40)
	if err := h.AddSource(m, 97); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 2000} {
		for _, chunk := range []int{1, 97, 5000} {
			hp := New(h.Domains, h.Units)
			if _, err := hp.AddSourceParallel(m, chunk, workers); err != nil {
				t.Fatal(err)
			}
			if hp.N != h.N {
				t.Fatalf("workers=%d chunk=%d: N=%d, want %d", workers, chunk, hp.N, h.N)
			}
			for dim := range h.Counts {
				for u := range h.Counts[dim] {
					if hp.Counts[dim][u] != h.Counts[dim][u] {
						t.Fatalf("workers=%d chunk=%d: counts[%d][%d] = %d, want %d",
							workers, chunk, dim, u, hp.Counts[dim][u], h.Counts[dim][u])
					}
				}
			}
		}
	}
}

// BenchmarkAddChunk measures the flat kernel against the per-record
// reference path on one in-memory chunk.
func BenchmarkAddChunk(b *testing.B) {
	r := rng.New(1)
	const n, d, units = 8192, 10, 1000
	h, m := randHist(r, n, d, units)
	b.Run("flat", func(b *testing.B) {
		b.SetBytes(int64(n * d * 8))
		for i := 0; i < b.N; i++ {
			h.AddChunk(m.Values, n)
		}
	})
	b.Run("record-oracle", func(b *testing.B) {
		b.SetBytes(int64(n * d * 8))
		for i := 0; i < b.N; i++ {
			for rI := 0; rI < n; rI++ {
				h.AddRecord(m.Row(rI))
			}
		}
	})
}
