package histogram

import (
	"testing"
	"testing/quick"

	"pmafia/internal/dataset"
)

func dom01(d int) []dataset.Range {
	doms := make([]dataset.Range, d)
	for i := range doms {
		doms[i] = dataset.Range{Lo: 0, Hi: 1}
	}
	return doms
}

func TestUnitOf(t *testing.T) {
	h := New(dom01(1), 10)
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.05, 0}, {0.1, 1}, {0.95, 9}, {0.999, 9},
		{-5, 0}, // clamp below
		{1, 9},  // clamp at Hi
		{7, 9},  // clamp above
	}
	for _, c := range cases {
		if got := h.UnitOf(0, c.v); got != c.want {
			t.Errorf("UnitOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestUnitOfProperty(t *testing.T) {
	h := New([]dataset.Range{{Lo: -3, Hi: 11}}, 137)
	f := func(v float64) bool {
		u := h.UnitOf(0, v)
		return u >= 0 && u < 137
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddRecordCounts(t *testing.T) {
	h := New(dom01(2), 4)
	h.AddRecord([]float64{0.1, 0.9})
	h.AddRecord([]float64{0.1, 0.1})
	if h.N != 2 {
		t.Errorf("N = %d", h.N)
	}
	if h.Counts[0][0] != 2 || h.Counts[1][3] != 1 || h.Counts[1][0] != 1 {
		t.Errorf("counts wrong: %v", h.Counts)
	}
}

func TestAddSourceMatchesAddChunk(t *testing.T) {
	m, _ := dataset.FromRows([][]float64{{0.1, 0.2}, {0.5, 0.6}, {0.9, 0.95}, {0.3, 0.4}})
	h1 := New(dom01(2), 8)
	if err := h1.AddSource(m, 3); err != nil {
		t.Fatal(err)
	}
	h2 := New(dom01(2), 8)
	h2.AddChunk(m.Values, 4)
	for d := 0; d < 2; d++ {
		for u := 0; u < 8; u++ {
			if h1.Counts[d][u] != h2.Counts[d][u] {
				t.Fatalf("counts differ at dim %d unit %d", d, u)
			}
		}
	}
	if h1.N != h2.N {
		t.Errorf("N differ: %d vs %d", h1.N, h2.N)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	h := New(dom01(3), 5)
	h.AddRecord([]float64{0.1, 0.5, 0.9})
	h.AddRecord([]float64{0.2, 0.5, 0.9})
	v := h.Flatten()
	if len(v) != 3*5+1 {
		t.Fatalf("flatten length %d", len(v))
	}
	h2 := New(dom01(3), 5)
	if err := h2.SetFlattened(v); err != nil {
		t.Fatal(err)
	}
	if h2.N != 2 {
		t.Errorf("N = %d", h2.N)
	}
	for d := 0; d < 3; d++ {
		for u := 0; u < 5; u++ {
			if h.Counts[d][u] != h2.Counts[d][u] {
				t.Fatalf("counts differ after round trip at %d/%d", d, u)
			}
		}
	}
}

func TestSetFlattenedLengthError(t *testing.T) {
	h := New(dom01(2), 4)
	if err := h.SetFlattened(make([]int64, 3)); err == nil {
		t.Error("want length error")
	}
}

func TestFlattenSumEqualsReduce(t *testing.T) {
	// Summing flattened vectors from two ranks must equal the histogram
	// of the union — the Reduce contract.
	m1, _ := dataset.FromRows([][]float64{{0.1}, {0.6}})
	m2, _ := dataset.FromRows([][]float64{{0.7}, {0.2}, {0.8}})
	h1 := New(dom01(1), 4)
	h1.AddSource(m1, 10)
	h2 := New(dom01(1), 4)
	h2.AddSource(m2, 10)
	v1, v2 := h1.Flatten(), h2.Flatten()
	sum := make([]int64, len(v1))
	for i := range v1 {
		sum[i] = v1[i] + v2[i]
	}
	global := New(dom01(1), 4)
	if err := global.SetFlattened(sum); err != nil {
		t.Fatal(err)
	}
	both := New(dom01(1), 4)
	both.AddSource(m1, 10)
	both.AddSource(m2, 10)
	if global.N != both.N {
		t.Errorf("N: %d vs %d", global.N, both.N)
	}
	for u := 0; u < 4; u++ {
		if global.Counts[0][u] != both.Counts[0][u] {
			t.Errorf("unit %d: %d vs %d", u, global.Counts[0][u], both.Counts[0][u])
		}
	}
}

func TestWindowMaxima(t *testing.T) {
	h := New(dom01(1), 10)
	copy(h.Counts[0], []int64{1, 5, 2, 2, 9, 0, 0, 3, 3, 1})
	values, starts := h.WindowMaxima(0, 3)
	wantV := []int64{5, 9, 3, 1} // windows [0,3) [3,6) [6,9) [9,10)
	wantS := []int{0, 3, 6, 9, 10}
	if len(values) != len(wantV) {
		t.Fatalf("values = %v", values)
	}
	for i := range wantV {
		if values[i] != wantV[i] {
			t.Errorf("window %d value %d, want %d", i, values[i], wantV[i])
		}
	}
	for i := range wantS {
		if starts[i] != wantS[i] {
			t.Errorf("start %d = %d, want %d", i, starts[i], wantS[i])
		}
	}
}

func TestWindowMaximaWholeDim(t *testing.T) {
	h := New(dom01(1), 6)
	copy(h.Counts[0], []int64{1, 2, 3, 4, 5, 6})
	values, starts := h.WindowMaxima(0, 100)
	if len(values) != 1 || values[0] != 6 {
		t.Errorf("values = %v", values)
	}
	if starts[0] != 0 || starts[1] != 6 {
		t.Errorf("starts = %v", starts)
	}
}

func TestSumRange(t *testing.T) {
	h := New(dom01(1), 5)
	copy(h.Counts[0], []int64{1, 2, 3, 4, 5})
	if s := h.SumRange(0, 1, 4); s != 9 {
		t.Errorf("SumRange = %d, want 9", s)
	}
	if s := h.SumRange(0, 0, 5); s != 15 {
		t.Errorf("SumRange full = %d, want 15", s)
	}
	if s := h.SumRange(0, 2, 2); s != 0 {
		t.Errorf("SumRange empty = %d, want 0", s)
	}
}

func TestNewPanicsOnBadUnits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(_, 0) did not panic")
		}
	}()
	New(dom01(1), 0)
}
