package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses numeric CSV into a Matrix. If the first row contains
// any non-numeric field it is treated as a header and its fields are
// returned as column names; otherwise names is nil.
func ReadCSV(r io.Reader) (m *Matrix, names []string, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate widths ourselves for better errors
	first, err := cr.Read()
	if err == io.EOF {
		return nil, nil, fmt.Errorf("dataset: empty CSV")
	}
	if err != nil {
		return nil, nil, err
	}
	row, numeric := parseRow(first)
	d := len(first)
	if numeric {
		m = &Matrix{D: d}
		m.Append(row)
	} else {
		names = first
		m = &Matrix{D: d}
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		line++
		if len(rec) != d {
			return nil, nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), d)
		}
		row, ok := parseRow(rec)
		if !ok {
			return nil, nil, fmt.Errorf("dataset: line %d has a non-numeric field", line)
		}
		m.Append(row)
	}
	if m.NumRecords() == 0 {
		return nil, nil, fmt.Errorf("dataset: CSV contains a header but no data rows")
	}
	return m, names, nil
}

func parseRow(fields []string) ([]float64, bool) {
	row := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, false
		}
		row[i] = v
	}
	return row, true
}

// WriteCSV writes src as CSV. If names is non-nil it is emitted as a
// header row and must have exactly src.Dims() entries.
func WriteCSV(w io.Writer, src Source, names []string) error {
	cw := csv.NewWriter(w)
	d := src.Dims()
	if names != nil {
		if len(names) != d {
			return fmt.Errorf("dataset: %d column names for %d dims", len(names), d)
		}
		if err := cw.Write(names); err != nil {
			return err
		}
	}
	fields := make([]string, d)
	sc := src.Scan(defaultScanChunk)
	defer sc.Close()
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		for r := 0; r < n; r++ {
			rec := chunk[r*d : (r+1)*d]
			for j, v := range rec {
				fields[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			if err := cw.Write(fields); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
