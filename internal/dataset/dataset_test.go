package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := Range{Lo: 2, Hi: 5}
	if r.Width() != 3 {
		t.Errorf("Width = %v", r.Width())
	}
	if !r.Contains(2) || r.Contains(5) || !r.Contains(4.999) || r.Contains(1.9) {
		t.Error("Contains half-open semantics broken")
	}
	if !r.Overlaps(Range{4, 6}) || r.Overlaps(Range{5, 6}) || r.Overlaps(Range{0, 2}) {
		t.Error("Overlaps semantics broken")
	}
	if got := r.String(); got != "[2, 5)" {
		t.Errorf("String = %q", got)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dims() != 2 || m.NumRecords() != 3 {
		t.Fatalf("dims=%d n=%d", m.Dims(), m.NumRecords())
	}
	if m.Row(1)[0] != 3 || m.Row(2)[1] != 6 {
		t.Error("row content wrong")
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("no rows: want error")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Error("zero-dim: want error")
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows: want error")
	}
}

func TestAppendPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append with wrong width did not panic")
		}
	}()
	NewMatrix(0, 3).Append([]float64{1, 2})
}

func TestMatrixScanChunks(t *testing.T) {
	m := NewMatrix(10, 3)
	for i := 0; i < 10; i++ {
		for j := 0; j < 3; j++ {
			m.Row(i)[j] = float64(i*3 + j)
		}
	}
	for _, chunk := range []int{1, 3, 4, 10, 100} {
		sc := m.Scan(chunk)
		var got []float64
		total := 0
		for {
			c, n := sc.Next()
			if n == 0 {
				break
			}
			if n > chunk {
				t.Fatalf("chunk size %d > requested %d", n, chunk)
			}
			got = append(got, c[:n*3]...)
			total += n
		}
		if sc.Err() != nil {
			t.Fatal(sc.Err())
		}
		if total != 10 || len(got) != 30 {
			t.Fatalf("chunk=%d: scanned %d records", chunk, total)
		}
		for i, v := range got {
			if v != float64(i) {
				t.Fatalf("chunk=%d: value[%d]=%v", chunk, i, v)
			}
		}
	}
}

func TestScanChunkZeroCoerced(t *testing.T) {
	m := NewMatrix(2, 1)
	sc := m.Scan(0)
	_, n := sc.Next()
	if n != 1 {
		t.Errorf("chunk 0 coerced: first Next n=%d, want 1", n)
	}
}

func TestSlice(t *testing.T) {
	m, _ := FromRows([][]float64{{0}, {1}, {2}, {3}})
	s := m.Slice(1, 3)
	if s.NumRecords() != 2 || s.Row(0)[0] != 1 || s.Row(1)[0] != 2 {
		t.Errorf("Slice wrong: %+v", s)
	}
	// shares storage
	s.Row(0)[0] = 42
	if m.Row(1)[0] != 42 {
		t.Error("Slice does not alias parent storage")
	}
}

func TestDomains(t *testing.T) {
	m, _ := FromRows([][]float64{{1, -5}, {3, 0}, {2, 10}})
	doms, err := Domains(m)
	if err != nil {
		t.Fatal(err)
	}
	if doms[0].Lo != 1 || doms[1].Lo != -5 {
		t.Errorf("lows wrong: %v", doms)
	}
	// Half-open widening: max must be inside.
	if !doms[0].Contains(3) || !doms[1].Contains(10) {
		t.Errorf("domain does not contain max: %v", doms)
	}
}

func TestDomainsZeroWidth(t *testing.T) {
	m, _ := FromRows([][]float64{{7}, {7}})
	doms, err := Domains(m)
	if err != nil {
		t.Fatal(err)
	}
	if doms[0].Width() <= 0 {
		t.Errorf("constant dim got non-positive width: %v", doms[0])
	}
	if !doms[0].Contains(7) {
		t.Errorf("constant dim domain does not contain the value: %v", doms[0])
	}
}

func TestDomainsEmpty(t *testing.T) {
	if _, err := Domains(NewMatrix(0, 2)); err == nil {
		t.Error("empty source: want error")
	}
}

func TestDomainsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		rows := make([][]float64, len(vals))
		for i, v := range vals {
			if v != v || v > 1e300 || v < -1e300 { // skip NaN/Inf-ish
				v = 0
			}
			rows[i] = []float64{v}
			vals[i] = v
		}
		m, err := FromRows(rows)
		if err != nil {
			return false
		}
		doms, err := Domains(m)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if !doms[0].Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m, _ := FromRows([][]float64{{1.5, -2}, {3.25, 4}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	m2, names, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" {
		t.Errorf("names = %v", names)
	}
	if m2.NumRecords() != 2 || m2.Row(0)[0] != 1.5 || m2.Row(1)[1] != 4 {
		t.Errorf("round trip wrong: %+v", m2)
	}
}

func TestCSVNoHeader(t *testing.T) {
	m, names, err := ReadCSV(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if names != nil {
		t.Errorf("names = %v, want nil", names)
	}
	if m.NumRecords() != 2 || m.Row(0)[1] != 2 {
		t.Errorf("matrix wrong: %+v", m)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty: want error")
	}
	if _, _, err := ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("header only: want error")
	}
	if _, _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged: want error")
	}
	if _, _, err := ReadCSV(strings.NewReader("1,2\n3,x\n")); err == nil {
		t.Error("non-numeric data row: want error")
	}
}

func TestWriteCSVNameMismatch(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, []string{"only-one"}); err == nil {
		t.Error("name count mismatch: want error")
	}
}

func TestWidenHiLargeMagnitude(t *testing.T) {
	// The regression case: a width tiny relative to the magnitude of hi.
	// hi + w*1e-9 rounds back to hi (the ULP at 1e18 is 128), so the
	// widening must step to the next representable float64 instead.
	lo, hi := 1e18, 1e18+1024
	got := WidenHi(lo, hi)
	if !(got > hi) {
		t.Fatalf("WidenHi(%g, %g) = %g, not above hi", lo, hi, got)
	}
	if !(Range{Lo: lo, Hi: got}).Contains(hi) {
		t.Errorf("max value %g outside widened domain [%g, %g)", hi, lo, got)
	}
}

func TestWidenHiCases(t *testing.T) {
	cases := []struct{ lo, hi float64 }{
		{0, 1},                // ordinary range: nominal relative widening
		{0, 1e-305},           // subnormal width: w*1e-9 underflows
		{-5e17, 5e17},         // large symmetric range
		{1e18, 1e18 + 128},    // width of exactly one ULP of hi
		{-1e18 - 1024, -1e18}, // large negative magnitude
		{0, math.MaxFloat64},  // widening must not round to +Inf and stall
	}
	for _, c := range cases {
		got := WidenHi(c.lo, c.hi)
		if !(got > c.hi) {
			t.Errorf("WidenHi(%g, %g) = %g, not strictly above hi", c.lo, c.hi, got)
		}
	}
}

func TestDomainsContainMaximaAtLargeMagnitude(t *testing.T) {
	m, err := FromRows([][]float64{
		{1e18, 3},
		{1e18 + 512, 7},
		{1e18 + 1024, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	domains, err := Domains(m)
	if err != nil {
		t.Fatal(err)
	}
	if !domains[0].Contains(1e18 + 1024) {
		t.Errorf("max record outside domain %v", domains[0])
	}
	if !domains[1].Contains(7) {
		t.Errorf("max record outside domain %v", domains[1])
	}
}
