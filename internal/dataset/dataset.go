// Package dataset defines the record model shared by the clustering
// engines: d-dimensional numeric records, chunked scanning (so the same
// algorithms run in-core and out-of-core), per-dimension domains, and a
// CSV codec for interchange.
package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Range is a half-open interval [Lo, Hi) describing a dimension's domain
// or a cluster boundary in one dimension.
type Range struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (r Range) Width() float64 { return r.Hi - r.Lo }

// Contains reports whether v lies in [Lo, Hi).
func (r Range) Contains(v float64) bool { return v >= r.Lo && v < r.Hi }

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool { return r.Lo < o.Hi && o.Lo < r.Hi }

// String formats the range as "[lo, hi)".
func (r Range) String() string { return fmt.Sprintf("[%g, %g)", r.Lo, r.Hi) }

// Source is a rewindable supplier of d-dimensional records. The two
// implementations are the in-memory Matrix (here) and the on-disk record
// file (internal/diskio); the clustering engines only see this
// interface, which is what makes them out-of-core capable.
type Source interface {
	// Dims returns the dimensionality d of every record.
	Dims() int
	// NumRecords returns the total number of records.
	NumRecords() int
	// Scan returns a new scanner positioned at the first record that
	// yields chunks of at most chunkRecords records.
	Scan(chunkRecords int) Scanner
}

// Scanner iterates over a Source in chunks. A chunk is a row-major
// []float64 of n*Dims values; the slice is only valid until the next
// Next call. Usage:
//
//	sc := src.Scan(b)
//	for {
//		chunk, n := sc.Next()
//		if n == 0 { break }
//		... use chunk[:n*d] ...
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner interface {
	// Next returns the next chunk and the number of records in it;
	// n == 0 signals the end of the stream or an error (check Err).
	Next() (chunk []float64, n int)
	// Err returns the first error encountered, if any.
	Err() error
	// Close releases resources held by the scanner.
	Close() error
}

// Matrix is an in-memory Source: NumRecords rows of Dims values stored
// row-major in a single backing slice.
type Matrix struct {
	D      int
	Values []float64 // len = n*D
}

// NewMatrix allocates an n-record, d-dimensional matrix of zeros.
func NewMatrix(n, d int) *Matrix {
	return &Matrix{D: d, Values: make([]float64, n*d)}
}

// FromRows builds a Matrix from a slice of rows, validating that every
// row has the same width.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("dataset: no rows")
	}
	d := len(rows[0])
	if d == 0 {
		return nil, errors.New("dataset: zero-dimensional rows")
	}
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("dataset: row %d has %d values, want %d", i, len(r), d)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Dims returns the dimensionality.
func (m *Matrix) Dims() int { return m.D }

// NumRecords returns the number of records.
func (m *Matrix) NumRecords() int {
	if m.D == 0 {
		return 0
	}
	return len(m.Values) / m.D
}

// Row returns the i-th record as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Values[i*m.D : (i+1)*m.D] }

// Append adds a record, which must have exactly Dims values.
func (m *Matrix) Append(rec []float64) {
	if len(rec) != m.D {
		panic(fmt.Sprintf("dataset: appending %d-wide record to %d-dim matrix", len(rec), m.D))
	}
	m.Values = append(m.Values, rec...)
}

// Slice returns a view of records [lo, hi) sharing storage with m.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	return &Matrix{D: m.D, Values: m.Values[lo*m.D : hi*m.D]}
}

// Scan implements Source.
func (m *Matrix) Scan(chunkRecords int) Scanner {
	if chunkRecords <= 0 {
		chunkRecords = 1
	}
	return &matrixScanner{m: m, chunk: chunkRecords}
}

type matrixScanner struct {
	m     *Matrix
	chunk int
	pos   int
}

func (s *matrixScanner) Next() ([]float64, int) {
	n := s.m.NumRecords() - s.pos
	if n <= 0 {
		return nil, 0
	}
	if n > s.chunk {
		n = s.chunk
	}
	lo := s.pos
	s.pos += n
	return s.m.Values[lo*s.m.D : (lo+n)*s.m.D], n
}

func (s *matrixScanner) Err() error   { return nil }
func (s *matrixScanner) Close() error { return nil }

// Domains scans src once and returns the observed [min, max] range of
// each dimension, widened at the top by a relative epsilon so that the
// maximum value itself falls inside the half-open domain.
func Domains(src Source) ([]Range, error) {
	d := src.Dims()
	domains := make([]Range, d)
	for i := range domains {
		domains[i] = Range{Lo: maxFloat, Hi: -maxFloat}
	}
	sc := src.Scan(defaultScanChunk)
	defer sc.Close()
	seen := 0
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		seen += n
		for r := 0; r < n; r++ {
			rec := chunk[r*d : (r+1)*d]
			for j, v := range rec {
				if v < domains[j].Lo {
					domains[j].Lo = v
				}
				if v > domains[j].Hi {
					domains[j].Hi = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if seen == 0 {
		return nil, errors.New("dataset: empty source")
	}
	for j := range domains {
		domains[j] = widen(domains[j])
	}
	return domains, nil
}

// widen nudges the top of a closed observed range so the half-open
// convention keeps the maximum inside, and gives zero-width domains a
// unit width so bin construction never divides by zero.
func widen(r Range) Range {
	if r.Hi <= r.Lo {
		return Range{Lo: r.Lo, Hi: r.Lo + 1}
	}
	return Range{Lo: r.Lo, Hi: WidenHi(r.Lo, r.Hi)}
}

// WidenHi returns a value strictly above hi to serve as the top of a
// half-open domain [lo, hi'), so the observed maximum hi itself tests
// inside. The nominal widening is a relative 1e-9 of the width, but
// when hi's magnitude dwarfs the width that sum rounds back to hi
// (e.g. lo=1e18, hi=1e18+1024: the ULP at 1e18 is 128, far above the
// ~1e-6 nominal step), so the result falls back to the next
// representable float64 above hi. Every widening site — engine domain
// reduction, file headers, in-memory domain scans — must use this one
// function or maxima silently land outside their domain.
func WidenHi(lo, hi float64) float64 {
	widened := hi + (hi-lo)*1e-9
	if widened > hi && !math.IsInf(widened, 1) {
		return widened
	}
	return math.Nextafter(hi, math.Inf(1))
}

const (
	maxFloat         = 1.797693134862315708145274237317043567981e308
	defaultScanChunk = 4096
)
