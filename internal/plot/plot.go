// Package plot renders the experiment harness's series as standalone
// SVG line charts, so the paper's figures (run times vs processors,
// database size, dimensionality) can be regenerated as images with no
// external tooling. The implementation is a minimal, dependency-free
// SVG writer: axes with tick labels, one polyline plus markers per
// series, and a legend.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes a figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogX/LogY select logarithmic axes (base 2 on X — processor
	// counts; base 10 on Y — run times).
	LogX bool
	LogY bool
}

// seriesColors are distinguishable default stroke colors.
var seriesColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
}

const (
	marginLeft   = 70.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 55.0
)

// SVG writes the chart as a standalone SVG of the given pixel size.
func (c *Chart) SVG(w io.Writer, width, height int) error {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 420
	}
	xs, ys, err := c.collect()
	if err != nil {
		return err
	}
	xmin, xmax := bounds(xs, c.LogX)
	ymin, ymax := bounds(ys, c.LogY)
	// Y usually wants to include 0 on linear axes.
	if !c.LogY && ymin > 0 {
		ymin = 0
	}

	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	toX := func(v float64) float64 {
		return marginLeft + plotW*fraction(v, xmin, xmax, c.LogX)
	}
	toY := func(v float64) float64 {
		return marginTop + plotH*(1-fraction(v, ymin, ymax, c.LogY))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Title.
	fmt.Fprintf(&sb, `<text x="%g" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, escape(c.Title))
	// Axes box.
	fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#444"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)

	// Ticks.
	for _, tv := range ticks(xmin, xmax, c.LogX) {
		x := toX(tv)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#bbb"/>`+"\n", x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+plotH+16, tickLabel(tv))
	}
	for _, tv := range ticks(ymin, ymax, c.LogY) {
		y := toY(tv)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#bbb"/>`+"\n", marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, tickLabel(tv))
	}
	// Axis labels.
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(height)-12, escape(c.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", toX(s.X[i]), toY(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="3" fill="%s"/>`+"\n", toX(s.X[i]), toY(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginTop + 14 + float64(si)*16
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			marginLeft+plotW-130, ly, marginLeft+plotW-110, ly, color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginLeft+plotW-104, ly+4, escape(s.Name))
	}
	sb.WriteString("</svg>\n")
	_, err = io.WriteString(w, sb.String())
	return err
}

func (c *Chart) collect() (xs, ys []float64, err error) {
	if len(c.Series) == 0 {
		return nil, nil, fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return nil, nil, fmt.Errorf("plot: series %q has %d x for %d y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return nil, nil, fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			if c.LogX && s.X[i] <= 0 {
				return nil, nil, fmt.Errorf("plot: series %q has non-positive x on a log axis", s.Name)
			}
			if c.LogY && s.Y[i] <= 0 {
				return nil, nil, fmt.Errorf("plot: series %q has non-positive y on a log axis", s.Name)
			}
			xs = append(xs, s.X[i])
			ys = append(ys, s.Y[i])
		}
	}
	return xs, ys, nil
}

// bounds returns the [min, max] of vs, widened when degenerate.
func bounds(vs []float64, log bool) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		if log {
			lo, hi = lo/2, hi*2
		} else {
			lo, hi = lo-1, hi+1
		}
	}
	return lo, hi
}

// fraction maps v into [0,1] within [lo,hi], linearly or
// logarithmically.
func fraction(v, lo, hi float64, log bool) float64 {
	if log {
		return (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	}
	return (v - lo) / (hi - lo)
}

// ticks picks 4-8 human-friendly tick values covering [lo, hi].
func ticks(lo, hi float64, log bool) []float64 {
	if log {
		var out []float64
		// Powers of 2 when the range is narrow (processor counts),
		// powers of 10 otherwise.
		base := 10.0
		if hi/lo <= 64 {
			base = 2
		}
		start := math.Floor(math.Log(lo)/math.Log(base) + 1e-9)
		for e := start; ; e++ {
			v := math.Pow(base, e)
			if v > hi*1.0001 {
				break
			}
			if v >= lo*0.9999 {
				out = append(out, v)
			}
			if len(out) > 20 {
				break
			}
		}
		if len(out) < 2 {
			return []float64{lo, hi}
		}
		return out
	}
	span := hi - lo
	step := niceStep(span / 5)
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step*1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// niceStep rounds raw up to a 1/2/5 × 10^k value.
func niceStep(raw float64) float64 {
	if raw <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	frac := raw / mag
	switch {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

func tickLabel(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
