package plot

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Run time vs processors",
		XLabel: "procs",
		YLabel: "seconds",
		Series: []Series{
			{Name: "pMAFIA", X: []float64{1, 2, 4, 8, 16}, Y: []float64{3215, 1773, 834, 508, 451}},
			{Name: "CLIQUE", X: []float64{1, 2, 4, 8, 16}, Y: []float64{2469, 1324, 664, 338, 184}},
		},
	}
}

func TestSVGStructure(t *testing.T) {
	var sb strings.Builder
	if err := sampleChart().SVG(&sb, 640, 420); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Run time vs processors",
		"pMAFIA", "CLIQUE", "procs", "seconds", "circle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("want 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
	if strings.Count(out, "<circle") != 10 {
		t.Errorf("want 10 markers, got %d", strings.Count(out, "<circle"))
	}
}

func TestSVGDefaultsAndEscaping(t *testing.T) {
	c := sampleChart()
	c.Title = `a <b> & "c"`
	var sb strings.Builder
	if err := c.SVG(&sb, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "<b>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(out, "&lt;b&gt;") || !strings.Contains(out, "&amp;") {
		t.Error("escapes missing")
	}
}

func TestSVGErrors(t *testing.T) {
	var sb strings.Builder
	if err := (&Chart{}).SVG(&sb, 100, 100); err == nil {
		t.Error("empty chart: want error")
	}
	bad := &Chart{Series: []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1}}}}
	if err := bad.SVG(&sb, 100, 100); err == nil {
		t.Error("length mismatch: want error")
	}
	logbad := &Chart{LogY: true, Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{0}}}}
	if err := logbad.SVG(&sb, 100, 100); err == nil {
		t.Error("non-positive log value: want error")
	}
	empty := &Chart{Series: []Series{{Name: "x"}}}
	if err := empty.SVG(&sb, 100, 100); err == nil {
		t.Error("empty series: want error")
	}
}

func TestLogAxes(t *testing.T) {
	c := &Chart{
		LogX: true, LogY: true,
		Series: []Series{{Name: "s", X: []float64{1, 2, 4, 8, 16}, Y: []float64{100, 52, 26, 14, 8}}},
	}
	var sb strings.Builder
	if err := c.SVG(&sb, 640, 420); err != nil {
		t.Fatal(err)
	}
	// On log-x the point spacing between 1,2 and 8,16 must be equal.
	// Spot-check by parsing circle positions.
	out := sb.String()
	var xs []float64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "<circle") {
			continue
		}
		var x, y, r float64
		if _, err := fmt.Sscanf(line, `<circle cx="%f" cy="%f" r="%f"`, &x, &y, &r); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		xs = append(xs, x)
	}
	if len(xs) != 5 {
		t.Fatalf("markers = %d", len(xs))
	}
	d1 := xs[1] - xs[0]
	d4 := xs[4] - xs[3]
	if math.Abs(d1-d4) > 0.5 {
		t.Errorf("log-x spacing not uniform per octave: %v vs %v", d1, d4)
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		0.3: 0.5, 0.09: 0.1, 1.5: 2, 3: 5, 7: 10, 10: 10, 0: 1,
	}
	for in, want := range cases {
		if got := niceStep(in); got != want {
			t.Errorf("niceStep(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestTicksLinear(t *testing.T) {
	ts := ticks(0, 100, false)
	if len(ts) < 4 || len(ts) > 9 {
		t.Errorf("tick count = %d (%v)", len(ts), ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Errorf("ticks not increasing: %v", ts)
		}
	}
}

func TestTicksLogPowersOfTwo(t *testing.T) {
	ts := ticks(1, 16, true)
	want := []float64{1, 2, 4, 8, 16}
	if len(ts) != len(want) {
		t.Fatalf("ticks = %v", ts)
	}
	for i := range want {
		if math.Abs(ts[i]-want[i]) > 1e-9 {
			t.Fatalf("ticks = %v, want %v", ts, want)
		}
	}
}

func TestBoundsDegenerate(t *testing.T) {
	lo, hi := bounds([]float64{5, 5, 5}, false)
	if lo >= hi {
		t.Errorf("degenerate bounds not widened: %v %v", lo, hi)
	}
	lo, hi = bounds([]float64{8}, true)
	if lo >= hi || lo <= 0 {
		t.Errorf("degenerate log bounds: %v %v", lo, hi)
	}
}
