// Package rng provides the seedable random source used throughout the
// repository. It layers standard distributions (uniform, integer ranges,
// Gaussian) and Fisher-Yates permutations on top of the inversive
// congruential generator from internal/icg, which the pMAFIA paper
// adopts in place of Unix LCGs for its synthetic data generation.
package rng

import (
	"math"

	"pmafia/internal/icg"
)

// Source is a deterministic, seedable pseudorandom source. It is not
// safe for concurrent use; derive independent sources per goroutine with
// Split.
type Source struct {
	g *icg.PowerOfTwo
	// cached second Box-Muller variate
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{g: icg.NewPowerOfTwo(seed)}
}

// Split derives an independent child source from this source's stream;
// the parent advances by one value. Use it to give each worker or each
// dimension its own deterministic stream.
func (s *Source) Split() *Source {
	return &Source{g: icg.NewPowerOfTwo(s.g.Uint64())}
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 { return s.g.Uint64() }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.g.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using rejection sampling to
// avoid modulo bias. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	if n&(n-1) == 0 { // power of two
		return s.g.Uint64() & (n - 1)
	}
	// Rejection: discard values in the tail that would bias low results.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := s.g.Uint64()
		if v < max {
			return v % n
		}
	}
}

// In returns a uniform value in [lo, hi). If hi <= lo it returns lo.
func (s *Source) In(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + s.Float64()*(hi-lo)
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (s *Source) NormFloat64() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	// Avoid log(0) by drawing u1 from (0, 1].
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	s.gauss = r * math.Sin(2*math.Pi*u2)
	s.hasGauss = true
	return r * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudorandom permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles xs in place.
func (s *Source) ShuffleInts(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Shuffle randomizes the order of n elements using the provided swap
// function, mirroring math/rand's API shape.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
