package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %.4f, want 0.5±0.005", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUnbiased(t *testing.T) {
	// n=3: each residue should appear ~1/3 of the time.
	s := New(4)
	var c [3]int
	const n = 90000
	for i := 0; i < n; i++ {
		c[s.Uint64n(3)]++
	}
	for r, count := range c {
		frac := float64(count) / n
		if math.Abs(frac-1.0/3) > 0.01 {
			t.Errorf("residue %d frequency %.4f, want ~0.333", r, frac)
		}
	}
}

func TestInRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.In(-4, 9)
		if v < -4 || v >= 9 {
			t.Fatalf("In(-4,9) = %v", v)
		}
	}
	if v := s.In(5, 5); v != 5 {
		t.Errorf("In(5,5) = %v, want 5", v)
	}
	if v := s.In(5, 2); v != 5 {
		t.Errorf("In(5,2) = %v, want lo", v)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(6)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %.4f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%257)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		q := append([]int(nil), p...)
		sort.Ints(q)
		for i, v := range q {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// First element of Perm(4) should be uniform over {0,1,2,3}.
	s := New(7)
	var c [4]int
	const n = 40000
	for i := 0; i < n; i++ {
		c[s.Perm(4)[0]]++
	}
	for v, count := range c {
		frac := float64(count) / n
		if math.Abs(frac-0.25) > 0.01 {
			t.Errorf("Perm(4)[0]=%d frequency %.4f, want 0.25", v, frac)
		}
	}
}

func TestShuffleMatchesShuffleInts(t *testing.T) {
	a := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b := append([]int(nil), a...)
	s1 := New(11)
	s2 := New(11)
	s1.ShuffleInts(a)
	s2.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ShuffleInts and Shuffle disagree at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(42)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("sibling streams matched %d/1000 outputs", same)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed sources diverged")
		}
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Float64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.NormFloat64()
	}
}
