// Package datagen reproduces the paper's synthetic data generator
// (§5.1): the user specifies, per cluster, the subspace it lives in and
// its extent in every subspace dimension; all dimensions are scaled to
// [0, 100]; points are placed so the cluster region is covered exactly
// as defined (every unit interval of every cluster dimension receives
// at least one point — the per-dimension form of the paper's
// one-point-per-unit-cube guarantee, which is what the 1-D adaptive
// histograms observe); values of non-subspace attributes are drawn
// uniformly over the whole attribute range; 10% noise records with all
// attributes uniform are added; the dimension labels can be permuted
// and the record order is always shuffled. Randomness comes from the
// inversive congruential generator, as in the paper.
package datagen

import (
	"fmt"
	"math"

	"pmafia/internal/dataset"
	"pmafia/internal/rng"
)

// Box is a hyper-rectangle in a cluster's subspace: one range per
// subspace dimension, in the dimension's attribute units.
type Box []dataset.Range

// Cluster specifies one embedded cluster. Clusters may be unions of
// several boxes ("arbitrary shapes instead of just hyper-rectangular
// regions").
type Cluster struct {
	// Dims is the subspace the cluster is embedded in.
	Dims []int
	// Boxes is the union of hyper-rectangles forming the cluster
	// region; every Box must have len(Dims) ranges.
	Boxes []Box
	// Points is the number of records drawn in this cluster; 0 means
	// an equal share of Spec.Records.
	Points int
}

// Spec describes a synthetic data set.
type Spec struct {
	// Dims is the data dimensionality d.
	Dims int
	// Records is the number of non-noise records.
	Records int
	// AttrRanges gives each attribute's [min, max); nil means [0, 100)
	// everywhere.
	AttrRanges []dataset.Range
	// Clusters are the embedded clusters; records are divided among
	// them. Empty means fully uniform data.
	Clusters []Cluster
	// NoiseFraction adds noise records (all attributes uniform) on top
	// of Records; negative means none, 0 means the paper's 10%.
	NoiseFraction float64
	// Seed drives the inversive congruential generator.
	Seed uint64
	// PermuteDims randomly relabels the dimensions so results cannot
	// depend on the order in which the user listed them.
	PermuteDims bool
}

// Truth is the ground truth of a generated data set, used by the
// quality metrics.
type Truth struct {
	// Clusters are the effective cluster definitions after dimension
	// permutation, with dims sorted ascending.
	Clusters []Cluster
	// Perm maps original dimension index to its generated position
	// (identity when PermuteDims is false).
	Perm []int
	// NoiseRecords is the number of noise records appended before the
	// final shuffle.
	NoiseRecords int
}

// Generate produces the data set and its ground truth.
func Generate(spec Spec) (*dataset.Matrix, *Truth, error) {
	if err := validate(&spec); err != nil {
		return nil, nil, err
	}
	s := rng.New(spec.Seed)

	perm := identity(spec.Dims)
	if spec.PermuteDims {
		perm = s.Perm(spec.Dims)
	}
	clusters := permuteClusters(spec.Clusters, perm)

	shares := pointShares(spec.Records, clusters)
	noise := int(math.Round(spec.NoiseFraction * float64(spec.Records)))
	if spec.NoiseFraction < 0 {
		noise = 0
	}
	total := 0
	for _, n := range shares {
		total += n
	}
	uniform := noise
	if len(clusters) == 0 {
		// No clusters: the base records themselves are uniform data.
		uniform += spec.Records
	}
	m := dataset.NewMatrix(total+uniform, spec.Dims)

	row := 0
	for ci, cl := range clusters {
		genCluster(m, row, shares[ci], cl, spec.AttrRanges, s.Split())
		row += shares[ci]
	}
	for i := 0; i < uniform; i++ {
		rec := m.Row(row + i)
		for j := range rec {
			rec[j] = s.In(spec.AttrRanges[j].Lo, spec.AttrRanges[j].Hi)
		}
	}
	// Shuffle record order so nothing depends on generation order.
	s.Shuffle(m.NumRecords(), func(i, j int) {
		ri, rj := m.Row(i), m.Row(j)
		for x := range ri {
			ri[x], rj[x] = rj[x], ri[x]
		}
	})
	return m, &Truth{Clusters: clusters, Perm: perm, NoiseRecords: noise}, nil
}

func validate(spec *Spec) error {
	if spec.Dims < 1 || spec.Dims > 255 {
		return fmt.Errorf("datagen: Dims %d out of [1,255]", spec.Dims)
	}
	if spec.Records < 1 {
		return fmt.Errorf("datagen: Records %d < 1", spec.Records)
	}
	if spec.AttrRanges == nil {
		spec.AttrRanges = make([]dataset.Range, spec.Dims)
		for i := range spec.AttrRanges {
			spec.AttrRanges[i] = dataset.Range{Lo: 0, Hi: 100}
		}
	}
	if len(spec.AttrRanges) != spec.Dims {
		return fmt.Errorf("datagen: %d attribute ranges for %d dims", len(spec.AttrRanges), spec.Dims)
	}
	for i, r := range spec.AttrRanges {
		if r.Width() <= 0 {
			return fmt.Errorf("datagen: attribute %d has empty range %v", i, r)
		}
	}
	if spec.NoiseFraction == 0 {
		spec.NoiseFraction = 0.10
	}
	for ci, cl := range spec.Clusters {
		if len(cl.Dims) == 0 {
			return fmt.Errorf("datagen: cluster %d has no dims", ci)
		}
		seen := map[int]bool{}
		for _, d := range cl.Dims {
			if d < 0 || d >= spec.Dims {
				return fmt.Errorf("datagen: cluster %d references dim %d of %d", ci, d, spec.Dims)
			}
			if seen[d] {
				return fmt.Errorf("datagen: cluster %d repeats dim %d", ci, d)
			}
			seen[d] = true
		}
		if len(cl.Boxes) == 0 {
			return fmt.Errorf("datagen: cluster %d has no boxes", ci)
		}
		for bi, b := range cl.Boxes {
			if len(b) != len(cl.Dims) {
				return fmt.Errorf("datagen: cluster %d box %d has %d ranges for %d dims", ci, bi, len(b), len(cl.Dims))
			}
			for x, r := range b {
				ar := spec.AttrRanges[cl.Dims[x]]
				if r.Lo < ar.Lo || r.Hi > ar.Hi || r.Width() <= 0 {
					return fmt.Errorf("datagen: cluster %d box %d dim %d extent %v outside attribute range %v", ci, bi, cl.Dims[x], r, ar)
				}
			}
		}
	}
	return nil
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// permuteClusters relabels cluster dims through perm and re-sorts each
// cluster's dims ascending (keeping extents aligned).
func permuteClusters(cs []Cluster, perm []int) []Cluster {
	out := make([]Cluster, len(cs))
	for i, c := range cs {
		nc := Cluster{Dims: make([]int, len(c.Dims)), Points: c.Points}
		order := make([]int, len(c.Dims))
		for x, d := range c.Dims {
			nc.Dims[x] = perm[d]
			order[x] = x
		}
		// sort dims ascending, carrying box ranges along
		for a := 1; a < len(nc.Dims); a++ {
			for b := a; b > 0 && nc.Dims[order[b]] < nc.Dims[order[b-1]]; b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
		sortedDims := make([]int, len(nc.Dims))
		for x, o := range order {
			sortedDims[x] = nc.Dims[o]
		}
		nc.Dims = sortedDims
		nc.Boxes = make([]Box, len(c.Boxes))
		for bi, b := range c.Boxes {
			nb := make(Box, len(b))
			for x, o := range order {
				nb[x] = b[o]
			}
			nc.Boxes[bi] = nb
		}
		out[i] = nc
	}
	return out
}

func pointShares(records int, cs []Cluster) []int {
	shares := make([]int, len(cs))
	if len(cs) == 0 {
		return shares
	}
	unspecified := 0
	left := records
	for i, c := range cs {
		if c.Points > 0 {
			shares[i] = c.Points
			left -= c.Points
		} else {
			unspecified++
		}
	}
	if unspecified > 0 && left > 0 {
		each := left / unspecified
		for i := range shares {
			if shares[i] == 0 {
				shares[i] = each
				left -= each
			}
		}
		// distribute the remainder
		for i := range shares {
			if left <= 0 {
				break
			}
			shares[i]++
			left--
		}
	}
	return shares
}

// genCluster fills rows [row, row+n) of m with one cluster's records.
func genCluster(m *dataset.Matrix, row, n int, cl Cluster, attrs []dataset.Range, s *rng.Source) {
	if n <= 0 {
		return
	}
	d := m.Dims()
	inCluster := make([]bool, d)
	for _, dim := range cl.Dims {
		inCluster[dim] = true
	}
	// Non-subspace attributes: uniform over the whole range.
	for i := 0; i < n; i++ {
		rec := m.Row(row + i)
		for j := 0; j < d; j++ {
			if !inCluster[j] {
				rec[j] = s.In(attrs[j].Lo, attrs[j].Hi)
			}
		}
	}
	// Divide points among boxes in proportion to a simple equal split.
	per := n / len(cl.Boxes)
	off := 0
	for bi, box := range cl.Boxes {
		cnt := per
		if bi == len(cl.Boxes)-1 {
			cnt = n - off
		}
		genBox(m, row+off, cnt, cl.Dims, box, attrs, s)
		off += cnt
	}
}

// genBox fills the subspace attributes of cnt records. For each cluster
// dimension the box extent is divided into unit intervals of the
// paper's [0,100] scaled space; each interval receives at least one
// point (when cnt allows), the rest are uniform — so the generated
// cluster spans exactly the user-defined region.
func genBox(m *dataset.Matrix, row, cnt int, dims []int, box Box, attrs []dataset.Range, s *rng.Source) {
	for x, dim := range dims {
		ext := box[x]
		ar := attrs[dim]
		// Width of the extent in the scaled [0,100] space.
		scaledW := ext.Width() / ar.Width() * 100
		strata := int(math.Ceil(scaledW))
		if strata < 1 {
			strata = 1
		}
		if strata > cnt {
			strata = cnt
		}
		// Assign strata to a random subset of the records so the
		// "corner" points of different dimensions are uncorrelated.
		order := s.Perm(cnt)
		for i := 0; i < cnt; i++ {
			rec := m.Row(row + order[i])
			if i < strata {
				lo := ext.Lo + ext.Width()*float64(i)/float64(strata)
				hi := ext.Lo + ext.Width()*float64(i+1)/float64(strata)
				rec[dim] = s.In(lo, hi)
			} else {
				rec[dim] = s.In(ext.Lo, ext.Hi)
			}
		}
	}
}

// UniformBox is a convenience constructor for a single-box cluster
// specification with the same extent description in every dimension.
func UniformBox(dims []int, extents []dataset.Range, points int) Cluster {
	return Cluster{Dims: dims, Boxes: []Box{Box(extents)}, Points: points}
}
