package datagen

import (
	"testing"

	"pmafia/internal/dataset"
)

func simpleSpec() Spec {
	return Spec{
		Dims:    5,
		Records: 2000,
		Clusters: []Cluster{
			UniformBox([]int{1, 3}, []dataset.Range{{Lo: 20, Hi: 30}, {Lo: 60, Hi: 75}}, 0),
		},
		Seed: 42,
	}
}

func TestGenerateCounts(t *testing.T) {
	m, truth, err := Generate(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	// 2000 cluster records + 10% noise
	if m.NumRecords() != 2200 {
		t.Errorf("records = %d, want 2200", m.NumRecords())
	}
	if truth.NoiseRecords != 200 {
		t.Errorf("noise = %d, want 200", truth.NoiseRecords)
	}
	if m.Dims() != 5 {
		t.Errorf("dims = %d", m.Dims())
	}
}

func TestValuesWithinAttrRanges(t *testing.T) {
	spec := simpleSpec()
	spec.AttrRanges = []dataset.Range{
		{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}, {Lo: -50, Hi: 50}, {Lo: 0, Hi: 100}, {Lo: 1000, Hi: 2000},
	}
	m, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumRecords(); i++ {
		rec := m.Row(i)
		for j, v := range rec {
			r := spec.AttrRanges[j]
			if v < r.Lo || v >= r.Hi {
				t.Fatalf("record %d dim %d value %v outside %v", i, j, v, r)
			}
		}
	}
}

func TestClusterDensity(t *testing.T) {
	// Count records inside the cluster region; must be at least the
	// cluster share (noise can add a few more).
	m, truth, err := Generate(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	cl := truth.Clusters[0]
	in := 0
	for i := 0; i < m.NumRecords(); i++ {
		rec := m.Row(i)
		hit := true
		for x, d := range cl.Dims {
			if !cl.Boxes[0][x].Contains(rec[d]) {
				hit = false
				break
			}
		}
		if hit {
			in++
		}
	}
	if in < 2000 {
		t.Errorf("only %d records inside the cluster region, want >= 2000", in)
	}
}

func TestPerDimensionCoverage(t *testing.T) {
	// Every unit interval (in the [0,100] scale) of a cluster dimension
	// must contain at least one cluster point.
	m, truth, err := Generate(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	cl := truth.Clusters[0]
	for x, d := range cl.Dims {
		ext := cl.Boxes[0][x]
		units := int(ext.Width()) // attr range is [0,100] so scaled = raw
		seen := make([]bool, units)
		for i := 0; i < m.NumRecords(); i++ {
			v := m.Row(i)[d]
			if v >= ext.Lo && v < ext.Hi {
				u := int((v - ext.Lo) / ext.Width() * float64(units))
				if u >= units {
					u = units - 1
				}
				seen[u] = true
			}
		}
		for u, ok := range seen {
			if !ok {
				t.Errorf("dim %d unit interval %d has no point", d, u)
			}
		}
	}
}

func TestPermuteDims(t *testing.T) {
	spec := simpleSpec()
	spec.PermuteDims = true
	spec.Seed = 7
	m, truth, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Truth dims must be sorted ascending and valid.
	cl := truth.Clusters[0]
	for i := 1; i < len(cl.Dims); i++ {
		if cl.Dims[i] <= cl.Dims[i-1] {
			t.Fatalf("truth dims not ascending: %v", cl.Dims)
		}
	}
	// The permuted cluster must actually be present: count points in
	// the region defined by the permuted dims.
	in := 0
	for i := 0; i < m.NumRecords(); i++ {
		rec := m.Row(i)
		hit := true
		for x, d := range cl.Dims {
			if !cl.Boxes[0][x].Contains(rec[d]) {
				hit = false
				break
			}
		}
		if hit {
			in++
		}
	}
	if in < 2000 {
		t.Errorf("permuted cluster region holds %d points, want >= 2000", in)
	}
}

func TestDeterminism(t *testing.T) {
	m1, _, _ := Generate(simpleSpec())
	m2, _, _ := Generate(simpleSpec())
	for i := range m1.Values {
		if m1.Values[i] != m2.Values[i] {
			t.Fatal("same seed produced different data")
		}
	}
	spec := simpleSpec()
	spec.Seed++
	m3, _, _ := Generate(spec)
	same := 0
	for i := range m1.Values {
		if m1.Values[i] == m3.Values[i] {
			same++
		}
	}
	if same > len(m1.Values)/100 {
		t.Errorf("different seeds produced %d/%d equal values", same, len(m1.Values))
	}
}

func TestMultiBoxCluster(t *testing.T) {
	spec := Spec{
		Dims:    3,
		Records: 1000,
		Clusters: []Cluster{{
			Dims: []int{0, 1},
			Boxes: []Box{
				{{Lo: 0, Hi: 10}, {Lo: 0, Hi: 10}},
				{{Lo: 50, Hi: 60}, {Lo: 50, Hi: 60}},
			},
		}},
		NoiseFraction: -1,
		Seed:          3,
	}
	m, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	inA, inB := 0, 0
	for i := 0; i < m.NumRecords(); i++ {
		rec := m.Row(i)
		if rec[0] < 10 && rec[1] < 10 {
			inA++
		}
		if rec[0] >= 50 && rec[0] < 60 && rec[1] >= 50 && rec[1] < 60 {
			inB++
		}
	}
	if inA < 400 || inB < 400 {
		t.Errorf("box shares: %d, %d — want ~500 each", inA, inB)
	}
}

func TestNoNoise(t *testing.T) {
	spec := simpleSpec()
	spec.NoiseFraction = -1
	m, truth, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if truth.NoiseRecords != 0 || m.NumRecords() != 2000 {
		t.Errorf("records = %d noise = %d", m.NumRecords(), truth.NoiseRecords)
	}
}

func TestExplicitPoints(t *testing.T) {
	spec := Spec{
		Dims:    2,
		Records: 1000,
		Clusters: []Cluster{
			UniformBox([]int{0}, []dataset.Range{{Lo: 0, Hi: 10}}, 700),
			UniformBox([]int{1}, []dataset.Range{{Lo: 0, Hi: 10}}, 0), // gets remainder
		},
		NoiseFraction: -1,
		Seed:          5,
	}
	m, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRecords() != 1000 {
		t.Errorf("records = %d, want 1000", m.NumRecords())
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Spec{
		{Dims: 0, Records: 10},
		{Dims: 2, Records: 0},
		{Dims: 2, Records: 10, Clusters: []Cluster{{Dims: nil, Boxes: []Box{{}}}}},
		{Dims: 2, Records: 10, Clusters: []Cluster{UniformBox([]int{5}, []dataset.Range{{Lo: 0, Hi: 1}}, 0)}},
		{Dims: 2, Records: 10, Clusters: []Cluster{UniformBox([]int{0, 0}, []dataset.Range{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}, 0)}},
		{Dims: 2, Records: 10, Clusters: []Cluster{UniformBox([]int{0}, []dataset.Range{{Lo: -5, Hi: 1}}, 0)}},
		{Dims: 2, Records: 10, Clusters: []Cluster{{Dims: []int{0}, Boxes: []Box{{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}}}}},
		{Dims: 2, Records: 10, AttrRanges: []dataset.Range{{Lo: 0, Hi: 1}}},
	}
	for i, spec := range bad {
		if _, _, err := Generate(spec); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
}

func TestUniformDataNoClusters(t *testing.T) {
	m, truth, err := Generate(Spec{Dims: 3, Records: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Clusters) != 0 {
		t.Error("no clusters expected")
	}
	// 500 + 10% noise — all uniform; just check count and range.
	if m.NumRecords() != 550 {
		t.Errorf("records = %d", m.NumRecords())
	}
}
