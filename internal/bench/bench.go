// Package bench is the tracked benchmark suite of the out-of-core
// pipeline: it measures records/sec for the engine's data-parallel
// phases — histogram build, CDU population, the full clustering run,
// and batch record assignment — at several rank counts, for the
// baseline per-record/serial-scan implementations and the pipelined
// ones (flat kernels, double-buffered prefetch, intra-rank worker
// pool, compiled assignment index) — plus a serving load run
// (load.go): sustained concurrent /assign traffic against an
// in-process daemon, reported as QPS and latency percentiles from the
// server's own histograms. The cmd/bench CLI writes the report as
// JSON (BENCH_pr6.json at the repository root is the committed
// snapshot); scripts/bench.sh and `make bench` drive it.
//
// Ranks run in Real mode: p goroutines scanning disjoint ScanRange
// shares of one on-disk .pmaf file concurrently, which is the
// throughput shape the paper's shared-disk SP2 runs have.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"pmafia/internal/assign"
	"pmafia/internal/ckpt"
	"pmafia/internal/cluster"
	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/grid"
	"pmafia/internal/histogram"
	"pmafia/internal/mafia"
	"pmafia/internal/rng"
	"pmafia/internal/sp2"
	"pmafia/internal/unit"
)

// Options sizes a suite run.
type Options struct {
	// Records and Dims size the synthetic on-disk data set.
	Records int
	Dims    int
	// ChunkRecords is B, the records per out-of-core read.
	ChunkRecords int
	// Procs are the rank counts to measure.
	Procs []int
	// Workers is the intra-rank pool size of the pooled variants.
	Workers int
	// Repeats is the measurement count per cell; the best (max
	// records/sec) is reported, the standard way to strip scheduler
	// noise from throughput numbers.
	Repeats int
	// Dir is where the data file is staged (a temp dir when empty).
	Dir string
	// Log, when non-nil, receives one line per measurement.
	Log io.Writer
}

// Defaults fills zero fields with the tracked-suite configuration.
func (o *Options) Defaults() {
	if o.Records == 0 {
		o.Records = 500000
	}
	if o.Dims == 0 {
		o.Dims = 10
	}
	if o.ChunkRecords == 0 {
		o.ChunkRecords = 8192
	}
	if len(o.Procs) == 0 {
		o.Procs = []int{1, 2, 4, 8}
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
}

// Smoke shrinks the options to a seconds-long configuration for CI.
func (o *Options) Smoke() {
	o.Records = 20000
	o.Procs = []int{1, 2}
	o.Repeats = 1
}

// Measurement is one (phase, variant, p) throughput cell.
type Measurement struct {
	// Phase is "histogram", "populate", "full", or "assign".
	Phase string `json:"phase"`
	// Variant identifies the implementation measured: "baseline" is
	// the pre-pipelining path, the others name what they enable.
	Variant string `json:"variant"`
	// P is the concurrent rank count.
	P int `json:"p"`
	// Records is the total records processed per run (all ranks).
	Records int64 `json:"records"`
	// Seconds is the best wall-clock time over Repeats runs.
	Seconds float64 `json:"seconds"`
	// RecordsPerSec is Records / Seconds.
	RecordsPerSec float64 `json:"records_per_sec"`
}

// Report is the suite outcome, serialized to BENCH_pr6.json.
type Report struct {
	Timestamp    string        `json:"timestamp"`
	GoVersion    string        `json:"go_version"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Records      int           `json:"records"`
	Dims         int           `json:"dims"`
	ChunkRecords int           `json:"chunk_records"`
	Workers      int           `json:"workers"`
	Measurements []Measurement `json:"measurements"`
	// HistogramSingleRankSpeedup is the p=1 histogram-build
	// records/sec ratio of the flat chunk kernel (the path AddSource
	// now takes) over the per-record baseline. The prefetched variants
	// are in Measurements too; on a page-cached file their win is
	// bounded by the hand-off overhead, so the kernel ratio is the
	// honest single-rank compute number.
	HistogramSingleRankSpeedup float64 `json:"histogram_single_rank_speedup"`
	// PopulateSingleRankSpeedup is the same ratio for the population
	// kernel (flat/bitset over hash map).
	PopulateSingleRankSpeedup float64 `json:"populate_single_rank_speedup"`
	// AssignSingleRankSpeedup is the p=1 assignment records/sec ratio
	// of the compiled index (assign.AssignChunk) over the linear-scan
	// oracle (Result.AssignRecord), on a 48-cluster model. Labels are
	// verified bit-identical before timing.
	AssignSingleRankSpeedup float64 `json:"assign_single_rank_speedup"`
	// AssignBatchKernelSpeedup is the p=1 ratio of the batch kernel
	// (AssignChunk) over the same compiled index driven one record at a
	// time — what batching alone buys on the main assign cell.
	AssignBatchKernelSpeedup float64 `json:"assign_batch_kernel_speedup"`
	// AssignD64BatchSpeedup and AssignC512BatchSpeedup are the same
	// batch-over-per-record ratio on the d=64 and 512-cluster kernel
	// cells.
	AssignD64BatchSpeedup  float64 `json:"assign_d64_batch_speedup"`
	AssignC512BatchSpeedup float64 `json:"assign_c512_batch_speedup"`
	// Load is the serving load-harness outcome (RunLoad): sustained
	// /assign QPS and latency percentiles against an in-process
	// daemon. nil when the load run was skipped.
	Load *LoadReport `json:"load,omitempty"`
	// LoadTrace is the same load run with serve-side request tracing
	// forced on for every request (TraceSample 1) — the worst-case
	// tracing overhead next to the untraced Load cell.
	LoadTrace *LoadReport `json:"load_trace,omitempty"`
	// LoadFrame is the same load run speaking the framed binary
	// protocol with request coalescing enabled. nil when skipped.
	LoadFrame *LoadReport `json:"load_frame,omitempty"`
	// LoadSwap is the same load run with a background writer rewriting
	// the served model file throughout the window while aggressive
	// freshness checks hot-swap each generation in — serving throughput
	// under continuous model replacement. nil when skipped.
	LoadSwap *LoadReport `json:"load_swap,omitempty"`
}

// rangeShard adapts a contiguous record range of a file to Source.
type rangeShard struct {
	f      *diskio.File
	lo, hi int
}

func (s *rangeShard) Dims() int       { return s.f.Dims() }
func (s *rangeShard) NumRecords() int { return s.hi - s.lo }
func (s *rangeShard) Scan(chunk int) dataset.Scanner {
	return s.f.ScanRange(s.lo, s.hi, chunk)
}

func shards(f *diskio.File, p int) []dataset.Source {
	out := make([]dataset.Source, p)
	for r := 0; r < p; r++ {
		lo, hi := diskio.ShareBounds(f.NumRecords(), r, p)
		out[r] = &rangeShard{f: f, lo: lo, hi: hi}
	}
	return out
}

// Run executes the suite and returns the report.
func Run(o Options) (*Report, error) {
	o.Defaults()
	dir := o.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "pmafia-bench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	data, _, err := datagen.Generate(datagen.Spec{
		Dims: o.Dims, Records: o.Records, Seed: 4242,
		Clusters: []datagen.Cluster{
			datagen.UniformBox([]int{1, 4}, []dataset.Range{{Lo: 20, Hi: 40}, {Lo: 55, Hi: 80}}, 0),
			datagen.UniformBox([]int{0, 3, 6}, []dataset.Range{{Lo: 10, Hi: 30}, {Lo: 40, Hi: 70}, {Lo: 60, Hi: 90}}, 0),
		},
	})
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "bench.pmaf")
	if err := diskio.WriteSource(path, data); err != nil {
		return nil, err
	}
	// Two handles onto the same bytes: one serial, one prefetching.
	serialF, err := diskio.Open(path)
	if err != nil {
		return nil, err
	}
	prefetchF, err := diskio.Open(path)
	if err != nil {
		return nil, err
	}
	prefetchF.SetPrefetch(true)

	rep := &Report{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Records:      o.Records,
		Dims:         o.Dims,
		ChunkRecords: o.ChunkRecords,
		Workers:      o.Workers,
	}

	if err := benchHistogram(o, rep, serialF, prefetchF); err != nil {
		return nil, err
	}
	if err := benchPopulate(o, rep, serialF, prefetchF); err != nil {
		return nil, err
	}
	if err := benchFull(o, rep, serialF, prefetchF); err != nil {
		return nil, err
	}
	if err := benchAssign(o, rep, serialF, data); err != nil {
		return nil, err
	}
	if err := benchAssignKernels(o, rep); err != nil {
		return nil, err
	}

	rep.HistogramSingleRankSpeedup = speedup(rep.Measurements, "histogram", "flat", "baseline")
	rep.PopulateSingleRankSpeedup = speedup(rep.Measurements, "populate", "flat", "baseline")
	rep.AssignSingleRankSpeedup = speedup(rep.Measurements, "assign", "indexed", "oracle")
	rep.AssignBatchKernelSpeedup = speedup(rep.Measurements, "assign", "indexed", "record")
	rep.AssignD64BatchSpeedup = speedup(rep.Measurements, "assign_d64", "indexed", "record")
	rep.AssignC512BatchSpeedup = speedup(rep.Measurements, "assign_c512", "indexed", "record")
	return rep, nil
}

// speedup returns the p=1 records/sec ratio of two variants of a phase.
func speedup(ms []Measurement, phase, fast, slow string) float64 {
	var f, s float64
	for _, m := range ms {
		if m.Phase == phase && m.P == 1 {
			switch m.Variant {
			case fast:
				f = m.RecordsPerSec
			case slow:
				s = m.RecordsPerSec
			}
		}
	}
	if s == 0 {
		return 0
	}
	return f / s
}

// measure runs fn Repeats times and records the best wall time.
func measure(o Options, rep *Report, phase, variant string, p int, records int64, fn func() error) error {
	best := 0.0
	for i := 0; i < o.Repeats; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("bench %s/%s p=%d: %w", phase, variant, p, err)
		}
		el := time.Since(start).Seconds()
		if i == 0 || el < best {
			best = el
		}
	}
	m := Measurement{
		Phase: phase, Variant: variant, P: p,
		Records: records, Seconds: best,
		RecordsPerSec: float64(records) / best,
	}
	rep.Measurements = append(rep.Measurements, m)
	if o.Log != nil {
		fmt.Fprintf(o.Log, "%-10s %-10s p=%d  %8.3fs  %12.0f rec/s\n",
			m.Phase, m.Variant, m.P, m.Seconds, m.RecordsPerSec)
	}
	return nil
}

// onRanks runs fn(rank) on p concurrent goroutines and returns the
// first error.
func onRanks(p int, fn func(r int) error) error {
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(r)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// benchHistogram measures the histogram-build phase: the per-record
// reference kernel on serial scans (baseline), the flat chunk kernel on
// serial scans (flat), the flat kernel on prefetched scans (pipelined),
// and pipelined plus the intra-rank worker pool (pooled).
func benchHistogram(o Options, rep *Report, serialF, prefetchF *diskio.File) error {
	const units = 1000
	domains := serialF.Domains()
	total := int64(serialF.NumRecords())
	d := serialF.Dims()
	for _, p := range o.Procs {
		ss, ps := shards(serialF, p), shards(prefetchF, p)
		variants := []struct {
			name string
			run  func(r int) error
		}{
			{"baseline", func(r int) error {
				h := histogram.New(domains, units)
				sc := ss[r].Scan(o.ChunkRecords)
				defer sc.Close()
				for {
					chunk, n := sc.Next()
					if n == 0 {
						break
					}
					for i := 0; i < n; i++ {
						h.AddRecord(chunk[i*d : (i+1)*d])
					}
				}
				return sc.Err()
			}},
			{"flat", func(r int) error {
				h := histogram.New(domains, units)
				return h.AddSource(ss[r], o.ChunkRecords)
			}},
			{"pipelined", func(r int) error {
				h := histogram.New(domains, units)
				return h.AddSource(ps[r], o.ChunkRecords)
			}},
			{"pooled", func(r int) error {
				h := histogram.New(domains, units)
				_, err := h.AddSourceParallel(ps[r], o.ChunkRecords, o.Workers)
				return err
			}},
		}
		for _, v := range variants {
			if err := measure(o, rep, "histogram", v.name, p, total, func() error {
				return onRanks(p, v.run)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// benchPopulate measures the CDU population phase over every
// 2-dimensional candidate of a 10-bin uniform grid: the hash-map
// grouped kernel (baseline), the flat/bitset kernel (flat), and the
// flat kernel on prefetched scans with the worker pool (pipelined).
func benchPopulate(o Options, rep *Report, serialF, prefetchF *diskio.File) error {
	const bins = 10
	domains := serialF.Domains()
	h := histogram.New(domains, 1000)
	if err := h.AddSource(serialF, o.ChunkRecords); err != nil {
		return err
	}
	g, err := grid.BuildUniform(h, bins, 0.01)
	if err != nil {
		return err
	}
	d := serialF.Dims()
	cdus := unit.New(2, d*(d-1)/2*bins*bins)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			for bi := 0; bi < bins; bi++ {
				for bj := 0; bj < bins; bj++ {
					cdus.AppendRaw([]uint8{uint8(i), uint8(j)}, []uint8{uint8(bi), uint8(bj)})
				}
			}
		}
	}
	total := int64(serialF.NumRecords())
	for _, p := range o.Procs {
		ss, ps := shards(serialF, p), shards(prefetchF, p)
		variants := []struct {
			name     string
			src      []dataset.Source
			workers  int
			strategy mafia.CountStrategy
		}{
			{"baseline", ss, 1, mafia.CountGroupedMap},
			{"flat", ss, 1, mafia.CountGrouped},
			{"pipelined", ps, o.Workers, mafia.CountGrouped},
		}
		for _, v := range variants {
			if err := measure(o, rep, "populate", v.name, p, total, func() error {
				return onRanks(p, func(r int) error {
					_, err := mafia.PopulateCounts(g, cdus, v.src[r], o.ChunkRecords, v.workers, v.strategy)
					return err
				})
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// syntheticClusters builds an n-cluster model over 3-dimensional
// subspaces of a d-dim, bins-per-dim uniform grid, two boxes per
// cluster — the cluster count and dimensionality the assignment index
// is sized against. Boxes overlap across clusters on purpose:
// first-match tie-breaking is part of what the bit-identity gate
// checks.
func syntheticClusters(d, bins, n int) []cluster.Cluster {
	cs := make([]cluster.Cluster, 0, n)
	for c := 0; c < n; c++ {
		i := c % (d - 2)
		lo := uint8((c * 2) % (bins - 2))
		hi := uint8((c*3 + 4) % (bins - 1))
		cs = append(cs, cluster.Cluster{
			Dims: []uint8{uint8(i), uint8(i + 1), uint8(i + 2)},
			Boxes: []cluster.Box{
				{BinLo: []uint8{lo, lo, lo}, BinHi: []uint8{lo + 2, lo + 2, lo + 2}},
				{BinLo: []uint8{hi, hi, hi}, BinHi: []uint8{hi + 1, hi + 1, hi + 1}},
			},
		})
	}
	return cs
}

// benchAssign measures batch record assignment against a synthetic
// 48-cluster model on a 10-bin uniform grid: the linear-scan oracle
// (Result.AssignRecord per record, O(clusters·boxes·k) each) against
// the compiled index — AssignChunk over the same records (indexed)
// and AssignSource with the worker pool (pipelined). Assignment runs
// over the in-memory matrix, not disk scans: the serving daemon
// labels request bodies that are already resident, and benching from
// disk would cap every variant at scan throughput instead of
// separating the kernels. Labels are verified bit-identical across
// the whole data set before any timing.
func benchAssign(o Options, rep *Report, serialF *diskio.File, data *dataset.Matrix) error {
	const bins = 10
	h := histogram.New(serialF.Domains(), 1000)
	if err := h.AddSource(serialF, o.ChunkRecords); err != nil {
		return err
	}
	g, err := grid.BuildUniform(h, bins, 0.01)
	if err != nil {
		return err
	}
	d := data.Dims()
	clusters := syntheticClusters(d, bins, 48)
	ix, err := assign.New(g, clusters)
	if err != nil {
		return err
	}
	res := &mafia.Result{Grid: g, Clusters: clusters}

	// Bit-identity gate: every record must get the same label from the
	// index as from the oracle before the numbers mean anything.
	n := data.NumRecords()
	labels := make([]int32, n)
	if err := ix.AssignChunk(data.Values, labels, ix.Scratch()); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if want := res.AssignRecord(data.Row(i)); int(labels[i]) != want {
			return fmt.Errorf("bench assign: record %d labeled %d by the index, %d by the oracle",
				i, labels[i], want)
		}
	}

	total := int64(n)
	for _, p := range o.Procs {
		ms := make([]*dataset.Matrix, 0, p)
		for r := 0; r < p; r++ {
			lo, hi := diskio.ShareBounds(n, r, p)
			ms = append(ms, data.Slice(lo, hi))
		}
		variants := []struct {
			name string
			run  func(r int) error
		}{
			{"oracle", func(r int) error {
				m := ms[r]
				for i := 0; i < m.NumRecords(); i++ {
					res.AssignRecord(m.Row(i))
				}
				return nil
			}},
			{"record", func(r int) error {
				// The compiled index driven one record at a time — the
				// pre-batch-kernel shape. "indexed" over the same rows
				// isolates what the batch kernel itself buys.
				m := ms[r]
				scratch := ix.Scratch()
				for i := 0; i < m.NumRecords(); i++ {
					if _, err := ix.AssignRecord(m.Row(i), scratch); err != nil {
						return err
					}
				}
				return nil
			}},
			{"indexed", func(r int) error {
				m := ms[r]
				out := make([]int32, m.NumRecords())
				return ix.AssignChunk(m.Values, out, ix.Scratch())
			}},
			{"pipelined", func(r int) error {
				_, err := ix.AssignSource(ms[r], o.ChunkRecords, o.Workers)
				return err
			}},
		}
		for _, v := range variants {
			if err := measure(o, rep, "assign", v.name, p, total, func() error {
				return onRanks(p, v.run)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// benchAssignKernels measures the batch kernel on the two shapes the
// main assign cell does not cover: a high-dimensional model (d=64,
// where the per-record bin work dominates) and a 512-cluster model
// (whose 1024-box bitset spans 16 words, the record-major N-word
// kernel). Both cells run at p=1 with the "record" (per-record index)
// and "indexed" (batch kernel) variants over in-memory data, gated on
// bit-identity against the linear oracle before timing.
func benchAssignKernels(o Options, rep *Report) error {
	nk := o.Records
	if nk > 100000 {
		// The kernel ratio stabilizes long before the full data set
		// size; 100k records keeps the d=64 matrix at 51MB.
		nk = 100000
	}
	cells := []struct {
		phase    string
		d, bins  int
		clusters int
	}{
		{"assign_d64", 64, 10, 48},
		{"assign_c512", 10, 10, 512},
	}
	r := rng.New(8888)
	for _, cell := range cells {
		domains := make([]dataset.Range, cell.d)
		for i := range domains {
			domains[i] = dataset.Range{Lo: 0, Hi: 100}
		}
		data := dataset.NewMatrix(nk, cell.d)
		for i := range data.Values {
			data.Values[i] = r.In(0, 100)
		}
		h := histogram.New(domains, 1000)
		if err := h.AddSource(data, o.ChunkRecords); err != nil {
			return err
		}
		g, err := grid.BuildUniform(h, cell.bins, 0.01)
		if err != nil {
			return err
		}
		clusters := syntheticClusters(cell.d, cell.bins, cell.clusters)
		ix, err := assign.New(g, clusters)
		if err != nil {
			return err
		}
		res := &mafia.Result{Grid: g, Clusters: clusters}
		labels := make([]int32, nk)
		if err := ix.AssignChunk(data.Values, labels, ix.Scratch()); err != nil {
			return err
		}
		for i := 0; i < nk; i++ {
			if want := res.AssignRecord(data.Row(i)); int(labels[i]) != want {
				return fmt.Errorf("bench %s: record %d labeled %d by the index, %d by the oracle",
					cell.phase, i, labels[i], want)
			}
		}
		variants := []struct {
			name string
			run  func() error
		}{
			{"record", func() error {
				scratch := ix.Scratch()
				for i := 0; i < nk; i++ {
					if _, err := ix.AssignRecord(data.Row(i), scratch); err != nil {
						return err
					}
				}
				return nil
			}},
			{"indexed", func() error {
				return ix.AssignChunk(data.Values, labels, ix.Scratch())
			}},
		}
		for _, v := range variants {
			if err := measure(o, rep, cell.phase, v.name, 1, int64(nk), v.run); err != nil {
				return err
			}
		}
	}
	return nil
}

// benchFull measures the whole clustering run (adaptive grid, level
// loop, cluster assembly) on the Real-mode machine: serial scans and
// map counting (baseline) against prefetch + flat kernels + pool
// (pipelined).
func benchFull(o Options, rep *Report, serialF, prefetchF *diskio.File) error {
	total := int64(serialF.NumRecords())
	for _, p := range o.Procs {
		variants := []struct {
			name    string
			f       *diskio.File
			workers int
			count   mafia.CountStrategy
		}{
			{"baseline", serialF, 0, mafia.CountGroupedMap},
			{"pipelined", prefetchF, o.Workers, mafia.CountGrouped},
		}
		for _, v := range variants {
			cfg := mafia.Config{
				ChunkRecords: o.ChunkRecords,
				Workers:      v.workers,
				Count:        v.count,
			}
			if err := measure(o, rep, "full", v.name, p, total, func() error {
				_, err := mafia.RunParallel(shards(v.f, p), nil, cfg, sp2.Config{Procs: p, Mode: sp2.Real})
				return err
			}); err != nil {
				return err
			}
		}

		// "ckpt" is the pipelined run with level-barrier checkpointing
		// on, measuring the robustness tax of persisting a snapshot at
		// every level (acceptance: within 10% of "pipelined" at p=1).
		ckdir, err := os.MkdirTemp(o.Dir, "bench-ckpt-*")
		if err != nil {
			return err
		}
		fp := ckpt.Fingerprint{DataPath: prefetchF.Path(), DataBytes: 1, ConfigHash: 1}
		mgr, err := ckpt.NewManager(ckdir, fp, ckpt.Options{})
		if err != nil {
			os.RemoveAll(ckdir)
			return err
		}
		cfg := mafia.Config{
			ChunkRecords: o.ChunkRecords,
			Workers:      o.Workers,
			Count:        mafia.CountGrouped,
			OnCheckpoint: mgr.Save,
		}
		err = measure(o, rep, "full", "ckpt", p, total, func() error {
			_, err := mafia.RunParallel(shards(prefetchF, p), nil, cfg, sp2.Config{Procs: p, Mode: sp2.Real})
			return err
		})
		os.RemoveAll(ckdir)
		if err != nil {
			return err
		}
	}
	return nil
}
