// The serving load harness: sustained concurrent /assign traffic
// against an in-process daemon (internal/daemon), reported as QPS and
// latency percentiles. The percentiles come from the server's own
// per-route histogram — the same numbers a production scrape of
// /metrics would show — with the harness's client-side measurement
// alongside as a cross-check.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pmafia/internal/daemon"
	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/mafia"
	"pmafia/internal/modelio"
	"pmafia/internal/obs"
)

// LoadOptions sizes a serving load run.
type LoadOptions struct {
	// ModelRecords and Dims size the training data the served model is
	// fitted on.
	ModelRecords int
	Dims         int
	// BatchRecords is the records per /assign request body.
	BatchRecords int
	// Clients is the number of concurrent request loops.
	Clients int
	// Duration is how long traffic is sustained.
	Duration time.Duration
	// Chunk and Workers configure the daemon's assignment path.
	Chunk   int
	Workers int
	// Frame switches the request bodies from CSV to the framed binary
	// protocol (daemon.ContentTypeFrame) and turns on request
	// coalescing in the daemon — the zero-copy streaming path end to
	// end.
	Frame bool
	// Trace turns on serve-side request tracing in the daemon at the
	// worst-case sampling rate (1.0: every request builds and retains a
	// trace) — the tracing-overhead cell of the tracked suite.
	Trace bool
	// Swap turns on aggressive freshness checks (SwapCheck 2ms) and runs
	// a background writer that alternately rewrites the served model
	// file with two fitted generations for the whole measured window —
	// the hot-swap-under-load cell. Requests must keep flowing at full
	// rate while the compiled index is replaced underneath them.
	Swap bool
	// Log, when non-nil, receives a summary line.
	Log io.Writer
}

// Defaults fills zero fields with the tracked-suite configuration.
func (o *LoadOptions) Defaults() {
	if o.ModelRecords == 0 {
		o.ModelRecords = 2000
	}
	if o.Dims == 0 {
		o.Dims = 5
	}
	if o.BatchRecords == 0 {
		o.BatchRecords = 256
	}
	if o.Clients == 0 {
		o.Clients = 8
	}
	if o.Duration == 0 {
		o.Duration = 5 * time.Second
	}
	if o.Chunk == 0 {
		o.Chunk = 8192
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
}

// Smoke shrinks the load run to about a second for CI.
func (o *LoadOptions) Smoke() {
	o.Clients = 4
	o.Duration = time.Second
}

// LoadReport is the serving-load outcome: sustained QPS plus latency
// percentiles, primarily from the server's own /assign histogram
// (P50..Max), with the client-side measurement alongside. Server and
// client quantiles are bucket upper bounds of the same boundary
// ladder, so they agree to within one bucket unless something is off.
type LoadReport struct {
	Clients      int     `json:"clients"`
	BatchRecords int     `json:"batch_records"`
	Seconds      float64 `json:"seconds"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	QPS          float64 `json:"qps"`
	// Server-side latency quantiles (seconds), from the daemon's
	// per-route histogram. Max is exact.
	P50 float64 `json:"p50_seconds"`
	P90 float64 `json:"p90_seconds"`
	P99 float64 `json:"p99_seconds"`
	Max float64 `json:"max_seconds"`
	// Client-observed quantiles (seconds), measured around the whole
	// round trip.
	ClientP50 float64 `json:"client_p50_seconds"`
	ClientP90 float64 `json:"client_p90_seconds"`
	ClientP99 float64 `json:"client_p99_seconds"`
}

// RunLoad fits a small model, starts an in-process daemon, and drives
// sustained concurrent /assign traffic at it for the configured
// duration.
func RunLoad(o LoadOptions) (*LoadReport, error) {
	o.Defaults()
	dir, err := os.MkdirTemp("", "pmafia-load-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	data, _, err := datagen.Generate(datagen.Spec{
		Dims: o.Dims, Records: o.ModelRecords, Seed: 777,
		Clusters: []datagen.Cluster{datagen.UniformBox(
			[]int{0, 2, 4},
			[]dataset.Range{{Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}}, 0)},
	})
	if err != nil {
		return nil, err
	}
	res, err := mafia.Run(data, mafia.Config{})
	if err != nil {
		return nil, err
	}
	if err := modelio.Save(filepath.Join(dir, "load.pmfm"), res); err != nil {
		return nil, err
	}

	dcfg := daemon.Config{
		Addr:     "127.0.0.1:0",
		ModelDir: dir,
		// Admit every client: the harness measures latency under
		// saturation, not the shedder.
		Inflight: o.Clients + 2,
		Chunk:    o.Chunk,
		Workers:  o.Workers,
	}
	if o.Frame {
		dcfg.CoalesceWindow = 2 * time.Millisecond
		dcfg.CoalesceMax = o.BatchRecords
	}
	if o.Trace {
		dcfg.TraceSample = 1
	}
	if o.Swap {
		dcfg.SwapCheck = 2 * time.Millisecond
	}
	d, err := daemon.New(dcfg)
	if err != nil {
		return nil, err
	}
	d.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	}()

	n := o.BatchRecords
	if n > data.NumRecords() {
		n = data.NumRecords()
	}
	contentType := "text/csv"
	var payload []byte
	if o.Frame {
		contentType = daemon.ContentTypeFrame
		payload, err = daemon.EncodeFrame(o.Dims, data.Values[:n*o.Dims])
		if err != nil {
			return nil, err
		}
	} else {
		var body bytes.Buffer
		for i := 0; i < n; i++ {
			for j, v := range data.Row(i) {
				if j > 0 {
					body.WriteByte(',')
				}
				fmt.Fprintf(&body, "%g", v)
			}
			body.WriteByte('\n')
		}
		payload = body.Bytes()
	}
	url := "http://" + d.Addr() + "/assign?model=load.pmfm"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.Clients * 2,
		MaxIdleConnsPerHost: o.Clients * 2,
	}}

	// One warm-up request loads the model so the cache miss is not in
	// the measured window.
	if resp, err := client.Post(url, contentType, bytes.NewReader(payload)); err != nil {
		return nil, err
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("load warm-up: status %d", resp.StatusCode)
		}
	}

	var requests, errors atomic.Int64
	clientHists := make([]*obs.Histogram, o.Clients)
	start := time.Now()
	deadline := start.Add(o.Duration)
	var writer sync.WaitGroup
	if o.Swap {
		// A second model clustered in different columns, so each swap
		// replaces the compiled index with a genuinely different one.
		data2, _, err := datagen.Generate(datagen.Spec{
			Dims: o.Dims, Records: o.ModelRecords, Seed: 778,
			Clusters: []datagen.Cluster{datagen.UniformBox(
				[]int{1, 3},
				[]dataset.Range{{Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}}, 0)},
		})
		if err != nil {
			return nil, err
		}
		res2, err := mafia.Run(data2, mafia.Config{})
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, "load.pmfm")
		writer.Add(1)
		go func() {
			defer writer.Done()
			gen := uint64(2)
			for time.Now().Before(deadline) {
				next := res
				if gen%2 == 0 {
					next = res2
				}
				if err := modelio.SaveMeta(path, next, gen); err != nil {
					return
				}
				gen++
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := obs.NewHistogram(obs.DefaultLatencyBounds)
			clientHists[c] = h
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := client.Post(url, contentType, bytes.NewReader(payload))
				if err != nil {
					errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				h.Observe(time.Since(t0).Seconds())
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					errors.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	writer.Wait()
	elapsed := time.Since(start).Seconds()

	clientH := obs.NewHistogram(obs.DefaultLatencyBounds)
	for _, h := range clientHists {
		if err := clientH.Merge(h); err != nil {
			return nil, err
		}
	}
	serverH := d.Recorder().Histogram(obs.HistRouteSeconds("assign"))
	if serverH == nil {
		return nil, fmt.Errorf("load: daemon recorded no assign histogram")
	}

	rep := &LoadReport{
		Clients:      o.Clients,
		BatchRecords: n,
		Seconds:      elapsed,
		Requests:     requests.Load(),
		Errors:       errors.Load(),
		QPS:          float64(requests.Load()) / elapsed,
		P50:          serverH.Quantile(0.50),
		P90:          serverH.Quantile(0.90),
		P99:          serverH.Quantile(0.99),
		Max:          serverH.Max(),
		ClientP50:    clientH.Quantile(0.50),
		ClientP90:    clientH.Quantile(0.90),
		ClientP99:    clientH.Quantile(0.99),
	}
	if o.Log != nil {
		phase := "serve"
		if o.Frame {
			phase = "serve_frame"
		}
		if o.Trace {
			phase = "serve_trace"
		}
		if o.Swap {
			phase = "serve_swap"
		}
		fmt.Fprintf(o.Log, "%-10s load       c=%d %8.0f qps  p50 %.4fs  p90 %.4fs  p99 %.4fs  max %.4fs  (%d reqs, %d errs)\n",
			phase, rep.Clients, rep.QPS, rep.P50, rep.P90, rep.P99, rep.Max, rep.Requests, rep.Errors)
	}
	return rep, nil
}
