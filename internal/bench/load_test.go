package bench

import (
	"testing"
	"time"

	"pmafia/internal/obs"
)

// TestLoadSmoke runs a sub-second serving load burst against an
// in-process daemon and checks the report's shape: sustained traffic,
// no errors, and server-side percentiles that agree with the
// client-side measurement to within one histogram bucket (both are
// bucket upper bounds of the same boundary ladder; the client's round
// trip adds loopback overhead that may push it one bucket up).
func TestLoadSmoke(t *testing.T) {
	o := LoadOptions{ModelRecords: 1000, BatchRecords: 64, Duration: 500 * time.Millisecond}
	o.Smoke()
	o.Duration = 500 * time.Millisecond
	o.Clients = 2
	rep, err := RunLoad(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.QPS <= 0 {
		t.Fatalf("no sustained traffic: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("%d request errors under load", rep.Errors)
	}
	if rep.P50 <= 0 || rep.P90 < rep.P50 || rep.P99 < rep.P90 || rep.Max <= 0 {
		t.Errorf("percentiles not monotone: %+v", rep)
	}
	for _, pair := range []struct {
		name           string
		server, client float64
	}{
		{"p50", rep.P50, rep.ClientP50},
		{"p90", rep.P90, rep.ClientP90},
		{"p99", rep.P99, rep.ClientP99},
	} {
		si := obs.BucketIndex(obs.DefaultLatencyBounds, pair.server)
		ci := obs.BucketIndex(obs.DefaultLatencyBounds, pair.client)
		if diff := ci - si; diff < -1 || diff > 1 {
			t.Errorf("%s: server %v and client %v are %d buckets apart, want at most 1",
				pair.name, pair.server, pair.client, diff)
		}
	}
}
