package bench

import (
	"bytes"
	"testing"
)

func report(cells ...Measurement) *Report {
	return &Report{Measurements: cells}
}

func cell(phase, variant string, p int, rate float64) Measurement {
	return Measurement{Phase: phase, Variant: variant, P: p, RecordsPerSec: rate}
}

func TestCompareSelfIsClean(t *testing.T) {
	rep := report(
		cell("histogram", "flat", 1, 1e6),
		cell("populate", "pipelined", 2, 2e6),
	)
	c := Compare(rep, rep, 0.15)
	if len(c.Rows) != 2 || len(c.Regressions()) != 0 {
		t.Errorf("self-compare: %d rows, %d regressions", len(c.Rows), len(c.Regressions()))
	}
	for _, r := range c.Rows {
		if r.Ratio != 1.0 {
			t.Errorf("%s/%s p=%d ratio %v, want 1.0", r.Phase, r.Variant, r.P, r.Ratio)
		}
	}
	if len(c.MissingInNew) != 0 || len(c.MissingInOld) != 0 {
		t.Errorf("self-compare reported missing cells: %v / %v", c.MissingInNew, c.MissingInOld)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldRep := report(cell("histogram", "flat", 1, 1e6), cell("full", "pipelined", 2, 5e5))
	newRep := report(cell("histogram", "flat", 1, 8e5), cell("full", "pipelined", 2, 4.9e5))
	c := Compare(oldRep, newRep, 0.15)
	regs := c.Regressions()
	if len(regs) != 1 {
		t.Fatalf("%d regressions, want 1 (histogram dropped 20%%): %+v", len(regs), c.Rows)
	}
	if regs[0].Phase != "histogram" || regs[0].Ratio != 0.8 {
		t.Errorf("regression = %+v, want histogram at ratio 0.8", regs[0])
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	oldRep := report(cell("populate", "flat", 1, 1000))
	// Exactly at 1-tolerance passes; below it fails.
	c := Compare(oldRep, report(cell("populate", "flat", 1, 850)), 0.15)
	if len(c.Regressions()) != 0 {
		t.Errorf("ratio exactly 1-tolerance flagged as regression")
	}
	c = Compare(oldRep, report(cell("populate", "flat", 1, 849)), 0.15)
	if len(c.Regressions()) != 1 {
		t.Errorf("ratio below 1-tolerance not flagged")
	}
}

func TestCompareMissingCellsAreNonFatal(t *testing.T) {
	// The committed baseline has p up to 8; the smoke run measures only
	// p<=2. Missing cells must be reported but never gate.
	oldRep := report(
		cell("histogram", "flat", 1, 1e6), cell("histogram", "flat", 2, 1.8e6),
		cell("histogram", "flat", 4, 3e6), cell("histogram", "flat", 8, 4e6),
	)
	newRep := report(
		cell("histogram", "flat", 1, 1e6), cell("histogram", "flat", 2, 1.8e6),
		cell("histogram", "experimental", 1, 5e5),
	)
	c := Compare(oldRep, newRep, 0.15)
	if len(c.Rows) != 2 || len(c.Regressions()) != 0 {
		t.Errorf("%d rows, %d regressions, want 2/0", len(c.Rows), len(c.Regressions()))
	}
	if len(c.MissingInNew) != 2 {
		t.Errorf("MissingInNew = %v, want the p=4 and p=8 cells", c.MissingInNew)
	}
	if len(c.MissingInOld) != 1 {
		t.Errorf("MissingInOld = %v, want the experimental cell", c.MissingInOld)
	}
}

func TestCompareZeroOldRateDoesNotDivide(t *testing.T) {
	c := Compare(report(cell("full", "baseline", 1, 0)), report(cell("full", "baseline", 1, 100)), 0.15)
	if len(c.Rows) != 1 || c.Rows[0].Ratio != 0 || c.Rows[0].Regressed {
		t.Errorf("zero old rate: %+v", c.Rows)
	}
}

func TestCompareTableRendersGate(t *testing.T) {
	c := Compare(report(cell("histogram", "flat", 1, 1000)), report(cell("histogram", "flat", 1, 500)), 0.15)
	var buf bytes.Buffer
	if err := c.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("FAIL")) {
		t.Errorf("table does not mark the regression:\n%s", buf.String())
	}
}

func load(qps, p50, p90, p99 float64) *LoadReport {
	return &LoadReport{Clients: 8, QPS: qps, P50: p50, P90: p90, P99: p99}
}

func TestCompareLoadSelfIsClean(t *testing.T) {
	rep := report(cell("assign", "indexed", 1, 1e6))
	rep.Load = load(1000, 0.005, 0.01, 0.025)
	c := Compare(rep, rep, 0.15)
	if len(c.Rows) != 5 {
		t.Fatalf("%d rows, want 1 throughput + qps + 3 percentiles", len(c.Rows))
	}
	if regs := c.Regressions(); len(regs) != 0 {
		t.Errorf("self-compare regressed: %+v", regs)
	}
	for _, r := range c.Rows {
		if r.Phase == "serve" && r.Ratio != 1.0 {
			t.Errorf("serve/%s ratio %v, want 1.0", r.Variant, r.Ratio)
		}
	}
}

// TestCompareLoadQPSRegression: sustained QPS is gated exactly like a
// throughput cell.
func TestCompareLoadQPSRegression(t *testing.T) {
	oldRep, newRep := report(), report()
	oldRep.Load = load(1000, 0.005, 0.01, 0.025)
	newRep.Load = load(800, 0.005, 0.01, 0.025)
	c := Compare(oldRep, newRep, 0.15)
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Variant != "qps" || regs[0].Ratio != 0.8 {
		t.Fatalf("regressions = %+v, want serve/qps at ratio 0.8", regs)
	}
}

// TestCompareLoadPercentileGrace locks the one-bucket grace: a
// percentile that moves to the adjacent histogram boundary passes even
// when the ratio is far past tolerance (bucket quantization can double
// a reported percentile between runs), but two buckets — or a real
// slide further up the ladder — fails.
func TestCompareLoadPercentileGrace(t *testing.T) {
	base := load(1000, 0.005, 0.01, 0.025)
	next := load(1000, 0.005, 0.01, 0.05) // p99 one bucket up: 2x ratio, still ok
	two := load(1000, 0.005, 0.01, 0.1)   // p99 two buckets up: regression

	if regs := Compare(&Report{Load: base}, &Report{Load: next}, 0.15).Regressions(); len(regs) != 0 {
		t.Errorf("one-bucket percentile move regressed: %+v", regs)
	}
	regs := Compare(&Report{Load: base}, &Report{Load: two}, 0.15).Regressions()
	if len(regs) != 1 || regs[0].Variant != "p99" {
		t.Fatalf("regressions = %+v, want serve/p99 only", regs)
	}
	// Within tolerance never regresses, bucket boundary or not.
	slight := load(1000, 0.005, 0.0105, 0.025)
	if regs := Compare(&Report{Load: base}, &Report{Load: slight}, 0.15).Regressions(); len(regs) != 0 {
		t.Errorf("within-tolerance percentile move regressed: %+v", regs)
	}
}

// TestCompareLoadMissing: a load run present in only one report is
// informational, like any unmatched cell.
func TestCompareLoadMissing(t *testing.T) {
	withLoad := report(cell("assign", "indexed", 1, 1e6))
	withLoad.Load = load(1000, 0.005, 0.01, 0.025)
	c := Compare(withLoad, report(cell("assign", "indexed", 1, 1e6)), 0.15)
	if len(c.Regressions()) != 0 {
		t.Errorf("missing load run regressed the gate")
	}
	found := false
	for _, miss := range c.MissingInNew {
		if miss == "serve/load" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing load run not reported: %v", c.MissingInNew)
	}
}
