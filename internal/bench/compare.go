// Bench-report comparison: the regression gate. Two suite reports are
// matched cell by cell on (phase, variant, p) and the throughput
// ratio new/old decides pass or fail against a tolerance. Cells
// present in only one report are listed but never fatal — the smoke
// configuration measures a subset of the committed full suite's rank
// counts, and gating on the intersection is what makes one committed
// baseline serve both.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"pmafia/internal/tabular"
)

// CompareRow is one matched (phase, variant, p) cell of a comparison.
type CompareRow struct {
	Phase   string  `json:"phase"`
	Variant string  `json:"variant"`
	P       int     `json:"p"`
	OldRate float64 `json:"old_records_per_sec"`
	NewRate float64 `json:"new_records_per_sec"`
	// Ratio is NewRate/OldRate: 1.0 is parity, below 1-tolerance is a
	// regression.
	Ratio     float64 `json:"ratio"`
	Regressed bool    `json:"regressed"`
}

// Comparison is the outcome of diffing two reports.
type Comparison struct {
	// Tolerance is the allowed fractional throughput drop: 0.15 passes
	// anything down to 85% of the old rate.
	Tolerance float64      `json:"tolerance"`
	Rows      []CompareRow `json:"rows"`
	// MissingInNew and MissingInOld name cells present in only one
	// report. Informational: the smoke suite legitimately measures a
	// subset of the committed baseline.
	MissingInNew []string `json:"missing_in_new,omitempty"`
	MissingInOld []string `json:"missing_in_old,omitempty"`
}

type cellKey struct {
	phase, variant string
	p              int
}

func (k cellKey) String() string {
	return fmt.Sprintf("%s/%s p=%d", k.phase, k.variant, k.p)
}

// Compare matches the two reports' measurements on (phase, variant, p)
// and flags every matched cell whose throughput dropped below
// (1-tolerance)× the old rate.
func Compare(oldRep, newRep *Report, tolerance float64) *Comparison {
	c := &Comparison{Tolerance: tolerance}
	oldCells := map[cellKey]Measurement{}
	var order []cellKey
	for _, m := range oldRep.Measurements {
		k := cellKey{m.Phase, m.Variant, m.P}
		if _, dup := oldCells[k]; !dup {
			order = append(order, k)
		}
		oldCells[k] = m
	}
	newCells := map[cellKey]Measurement{}
	for _, m := range newRep.Measurements {
		k := cellKey{m.Phase, m.Variant, m.P}
		if _, ok := oldCells[k]; !ok {
			c.MissingInOld = append(c.MissingInOld, k.String())
			continue
		}
		newCells[k] = m
	}
	for _, k := range order {
		nm, ok := newCells[k]
		if !ok {
			c.MissingInNew = append(c.MissingInNew, k.String())
			continue
		}
		om := oldCells[k]
		row := CompareRow{
			Phase: k.phase, Variant: k.variant, P: k.p,
			OldRate: om.RecordsPerSec, NewRate: nm.RecordsPerSec,
		}
		if om.RecordsPerSec > 0 {
			row.Ratio = nm.RecordsPerSec / om.RecordsPerSec
			row.Regressed = row.Ratio < 1-tolerance
		}
		c.Rows = append(c.Rows, row)
	}
	sort.Strings(c.MissingInNew)
	sort.Strings(c.MissingInOld)
	return c
}

// Regressions returns the matched cells that failed the gate.
func (c *Comparison) Regressions() []CompareRow {
	var out []CompareRow
	for _, r := range c.Rows {
		if r.Regressed {
			out = append(out, r)
		}
	}
	return out
}

// Table renders the comparison, regressions marked FAIL.
func (c *Comparison) Table() *tabular.Table {
	t := tabular.New(
		fmt.Sprintf("Bench comparison (tolerance %.0f%% drop)", 100*c.Tolerance),
		"phase", "variant", "p", "old rec/s", "new rec/s", "ratio", "gate")
	for _, r := range c.Rows {
		gate := "ok"
		if r.Regressed {
			gate = "FAIL"
		}
		t.AddRow(r.Phase, r.Variant, tabular.I(r.P),
			fmt.Sprintf("%.0f", r.OldRate), fmt.Sprintf("%.0f", r.NewRate),
			fmt.Sprintf("%.2f", r.Ratio), gate)
	}
	return t
}

// LoadReport reads a suite report JSON file (as written by cmd/bench).
func LoadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
