// Bench-report comparison: the regression gate. Two suite reports are
// matched cell by cell on (phase, variant, p) and the throughput
// ratio new/old decides pass or fail against a tolerance. Cells
// present in only one report are listed but never fatal — the smoke
// configuration measures a subset of the committed full suite's rank
// counts, and gating on the intersection is what makes one committed
// baseline serve both. When both reports carry a serving load run,
// its sustained QPS and latency percentiles are gated too; latency
// gets one histogram bucket of grace on top of the tolerance because
// the percentiles are bucket-quantized.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"pmafia/internal/obs"
	"pmafia/internal/tabular"
)

// CompareRow is one matched cell of a comparison: a (phase, variant,
// p) throughput cell, or — when both reports carry a serving load run
// — a QPS or latency-percentile cell of the load harness.
type CompareRow struct {
	Phase   string  `json:"phase"`
	Variant string  `json:"variant"`
	P       int     `json:"p"`
	OldRate float64 `json:"old_records_per_sec"`
	NewRate float64 `json:"new_records_per_sec"`
	// Ratio is better/worse-normalized so 1.0 is parity and smaller is
	// worse: new/old for throughput and QPS cells (higher is better),
	// old/new for latency cells (lower is better).
	Ratio     float64 `json:"ratio"`
	Regressed bool    `json:"regressed"`
	// Unit names the cell's measure: "rec/s" (default when empty),
	// "qps", or "seconds".
	Unit string `json:"unit,omitempty"`
}

// Comparison is the outcome of diffing two reports.
type Comparison struct {
	// Tolerance is the allowed fractional throughput drop: 0.15 passes
	// anything down to 85% of the old rate.
	Tolerance float64      `json:"tolerance"`
	Rows      []CompareRow `json:"rows"`
	// MissingInNew and MissingInOld name cells present in only one
	// report. Informational: the smoke suite legitimately measures a
	// subset of the committed baseline.
	MissingInNew []string `json:"missing_in_new,omitempty"`
	MissingInOld []string `json:"missing_in_old,omitempty"`
}

type cellKey struct {
	phase, variant string
	p              int
}

func (k cellKey) String() string {
	return fmt.Sprintf("%s/%s p=%d", k.phase, k.variant, k.p)
}

// Compare matches the two reports' measurements on (phase, variant, p)
// and flags every matched cell whose throughput dropped below
// (1-tolerance)× the old rate.
func Compare(oldRep, newRep *Report, tolerance float64) *Comparison {
	c := &Comparison{Tolerance: tolerance}
	oldCells := map[cellKey]Measurement{}
	var order []cellKey
	for _, m := range oldRep.Measurements {
		k := cellKey{m.Phase, m.Variant, m.P}
		if _, dup := oldCells[k]; !dup {
			order = append(order, k)
		}
		oldCells[k] = m
	}
	newCells := map[cellKey]Measurement{}
	for _, m := range newRep.Measurements {
		k := cellKey{m.Phase, m.Variant, m.P}
		if _, ok := oldCells[k]; !ok {
			c.MissingInOld = append(c.MissingInOld, k.String())
			continue
		}
		newCells[k] = m
	}
	for _, k := range order {
		nm, ok := newCells[k]
		if !ok {
			c.MissingInNew = append(c.MissingInNew, k.String())
			continue
		}
		om := oldCells[k]
		row := CompareRow{
			Phase: k.phase, Variant: k.variant, P: k.p,
			OldRate: om.RecordsPerSec, NewRate: nm.RecordsPerSec,
		}
		if om.RecordsPerSec > 0 {
			row.Ratio = nm.RecordsPerSec / om.RecordsPerSec
			row.Regressed = row.Ratio < 1-tolerance
		}
		c.Rows = append(c.Rows, row)
	}
	for _, load := range []struct {
		phase    string
		old, new *LoadReport
	}{
		{"serve", oldRep.Load, newRep.Load},
		{"serve_frame", oldRep.LoadFrame, newRep.LoadFrame},
		{"serve_trace", oldRep.LoadTrace, newRep.LoadTrace},
		{"serve_swap", oldRep.LoadSwap, newRep.LoadSwap},
	} {
		switch {
		case load.old != nil && load.new != nil:
			compareLoad(c, load.phase, load.old, load.new, tolerance)
		case load.old != nil:
			c.MissingInNew = append(c.MissingInNew, load.phase+"/load")
		case load.new != nil:
			c.MissingInOld = append(c.MissingInOld, load.phase+"/load")
		}
	}
	sort.Strings(c.MissingInNew)
	sort.Strings(c.MissingInOld)
	return c
}

// nextLatencyBound returns the smallest histogram boundary strictly
// above v, or v itself when v is already past the ladder. One bucket
// of grace: load-harness percentiles are bucket upper bounds, so the
// same true latency can legitimately report as either of two adjacent
// boundaries run to run.
func nextLatencyBound(v float64) float64 {
	for _, b := range obs.DefaultLatencyBounds {
		if b > v {
			return b
		}
	}
	return v
}

// compareLoad appends the serving-load cells: a QPS row gated like a
// throughput cell, and latency-percentile rows gated with one bucket
// of grace — a percentile regressed only if it is both past the
// tolerance AND past the next bucket boundary, so bucket-quantization
// jitter between adjacent boundaries never fails the gate on its own.
func compareLoad(c *Comparison, phase string, oldL, newL *LoadReport, tolerance float64) {
	qps := CompareRow{
		Phase: phase, Variant: "qps", P: oldL.Clients, Unit: "qps",
		OldRate: oldL.QPS, NewRate: newL.QPS,
	}
	if oldL.QPS > 0 {
		qps.Ratio = newL.QPS / oldL.QPS
		qps.Regressed = qps.Ratio < 1-tolerance
	}
	c.Rows = append(c.Rows, qps)
	for _, pct := range []struct {
		name     string
		old, new float64
	}{
		{"p50", oldL.P50, newL.P50},
		{"p90", oldL.P90, newL.P90},
		{"p99", oldL.P99, newL.P99},
	} {
		row := CompareRow{
			Phase: phase, Variant: pct.name, P: oldL.Clients, Unit: "seconds",
			OldRate: pct.old, NewRate: pct.new,
		}
		if pct.new > 0 {
			row.Ratio = pct.old / pct.new
			row.Regressed = pct.new > (1+tolerance)*pct.old && pct.new > nextLatencyBound(pct.old)
		}
		c.Rows = append(c.Rows, row)
	}
}

// Regressions returns the matched cells that failed the gate.
func (c *Comparison) Regressions() []CompareRow {
	var out []CompareRow
	for _, r := range c.Rows {
		if r.Regressed {
			out = append(out, r)
		}
	}
	return out
}

// Table renders the comparison, regressions marked FAIL.
func (c *Comparison) Table() *tabular.Table {
	t := tabular.New(
		fmt.Sprintf("Bench comparison (tolerance %.0f%% drop)", 100*c.Tolerance),
		"phase", "variant", "p", "old", "new", "unit", "ratio", "gate")
	for _, r := range c.Rows {
		gate := "ok"
		if r.Regressed {
			gate = "FAIL"
		}
		unit, format := r.Unit, "%.0f"
		if unit == "" {
			unit = "rec/s"
		}
		if unit == "seconds" {
			format = "%.4g"
		}
		t.AddRow(r.Phase, r.Variant, tabular.I(r.P),
			fmt.Sprintf(format, r.OldRate), fmt.Sprintf(format, r.NewRate),
			unit, fmt.Sprintf("%.2f", r.Ratio), gate)
	}
	return t
}

// ReadReport reads a suite report JSON file (as written by cmd/bench).
func ReadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
