package clique

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/mafia"
	"pmafia/internal/sp2"
)

// fileShard adapts a contiguous record range of a .pmaf file to
// dataset.Source, the shape ranks use for a shared on-disk data set.
type fileShard struct {
	f      *diskio.File
	lo, hi int
}

func (s *fileShard) Dims() int       { return s.f.Dims() }
func (s *fileShard) NumRecords() int { return s.hi - s.lo }
func (s *fileShard) Scan(chunk int) dataset.Scanner {
	return s.f.ScanRange(s.lo, s.hi, chunk)
}

func fileShards(f *diskio.File, p int) []dataset.Source {
	out := make([]dataset.Source, p)
	for r := 0; r < p; r++ {
		lo, hi := diskio.ShareBounds(f.NumRecords(), r, p)
		out[r] = &fileShard{f: f, lo: lo, hi: hi}
	}
	return out
}

// clusterSignature renders a result's clusters as a sorted set of
// subspace+DNF strings — the full semantic content of the output, in a
// form that is order-insensitive and comparable across engines.
func clusterSignature(res *mafia.Result) []string {
	sig := make([]string, 0, len(res.Clusters))
	for _, c := range res.Clusters {
		sig = append(sig, fmt.Sprintf("dims=%v dnf=%s", c.Dims, c.DNF(res.Grid)))
	}
	sort.Strings(sig)
	return sig
}

// denseSignature renders the per-level dense-unit counts.
func denseSignature(res *mafia.Result) []string {
	sig := make([]string, len(res.Levels))
	for i, l := range res.Levels {
		sig[i] = fmt.Sprintf("k=%d ndu=%d", l.K, l.Ndu)
	}
	return sig
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialMAFIAvsCLIQUE is the cross-engine correctness
// harness: on a uniform grid with a global density threshold, downward
// closure holds (every face of a dense unit is dense), so pMAFIA's
// any-(k-2)-share join and CLIQUE's Apriori prefix join must identify
// exactly the same dense units and report exactly the same clusters —
// for every processor count, chunk size, and prefetch setting. The data
// is read out of core from a shared .pmaf file, so the comparison also
// pins the whole diskio pipeline (CRC frames, range scans, double
// buffering) under the engines.
func TestDifferentialMAFIAvsCLIQUE(t *testing.T) {
	m, _, err := datagen.Generate(datagen.Spec{
		Dims: 6, Records: 4000, Seed: 77,
		Clusters: []datagen.Cluster{
			box(20, 40, 1, 3),
			box(60, 90, 0, 2, 4),
		},
		NoiseFraction: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "diff.pmaf")
	if err := diskio.WriteSource(path, m); err != nil {
		t.Fatal(err)
	}

	const bins, tau = 10, 0.02

	// Reference: single-rank, in-memory, serial scans.
	ref, err := mafia.Run(m, mafia.Config{
		Grid: mafia.UniformGrid, UniformBins: bins, UniformTau: tau,
	})
	if err != nil {
		t.Fatal(err)
	}
	refClusters := clusterSignature(ref)
	refDense := denseSignature(ref)
	if len(ref.Clusters) == 0 {
		t.Fatal("reference run found no clusters; the differential harness would be vacuous")
	}

	for _, p := range []int{1, 2, 4} {
		for _, chunk := range []int{512, 1333} {
			for _, prefetch := range []bool{false, true} {
				name := fmt.Sprintf("p=%d/chunk=%d/prefetch=%v", p, chunk, prefetch)
				t.Run(name, func(t *testing.T) {
					f, err := diskio.Open(path)
					if err != nil {
						t.Fatal(err)
					}
					f.SetPrefetch(prefetch)
					shards := fileShards(f, p)

					mres, err := mafia.RunParallel(shards, nil, mafia.Config{
						Grid: mafia.UniformGrid, UniformBins: bins, UniformTau: tau,
						ChunkRecords: chunk,
					}, sp2.Config{Procs: p})
					if err != nil {
						t.Fatal(err)
					}
					cres, err := RunParallel(shards, nil, Config{
						Bins: bins, Tau: tau, ChunkRecords: chunk,
					}, sp2.Config{Procs: p})
					if err != nil {
						t.Fatal(err)
					}

					if got := denseSignature(mres); !equalStrings(got, refDense) {
						t.Errorf("pMAFIA dense units diverged from reference:\n got %v\nwant %v", got, refDense)
					}
					if got := denseSignature(cres); !equalStrings(got, refDense) {
						t.Errorf("CLIQUE dense units diverged from reference:\n got %v\nwant %v", got, refDense)
					}
					if got := clusterSignature(mres); !equalStrings(got, refClusters) {
						t.Errorf("pMAFIA clusters diverged from reference:\n got %v\nwant %v", got, refClusters)
					}
					if got := clusterSignature(cres); !equalStrings(got, refClusters) {
						t.Errorf("CLIQUE clusters diverged from reference:\n got %v\nwant %v", got, refClusters)
					}
					if prefetch {
						if st := f.StatsSnapshot(); st.Prefetched == 0 {
							t.Error("prefetch was enabled but no chunk was prefetched")
						}
					}
				})
			}
		}
	}
}

// TestDifferentialWorkers runs the same uniform-grid comparison with
// the intra-rank worker pool enabled: tallies merged from sharded
// chunks must leave the results bit-identical.
func TestDifferentialWorkers(t *testing.T) {
	m, _ := genData(t, 5, 3000, 21, box(10, 35, 0, 3))
	ref, err := mafia.Run(m, mafia.Config{
		Grid: mafia.UniformGrid, UniformBins: 10, UniformTau: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := clusterSignature(ref)
	for _, workers := range []int{2, 4} {
		res, err := mafia.Run(m, mafia.Config{
			Grid: mafia.UniformGrid, UniformBins: 10, UniformTau: 0.02,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := clusterSignature(res); !equalStrings(got, want) {
			t.Errorf("workers=%d diverged:\n got %v\nwant %v", workers, got, want)
		}
	}
}
