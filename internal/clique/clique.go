// Package clique implements the CLIQUE baseline (Agrawal, Gehrke,
// Gunopulos, Raghavan — SIGMOD'98) the paper compares against: uniform
// equal-width grids with a user-chosen bin count ξ, a global density
// threshold τ (a fraction of N), Apriori prefix-join candidate
// generation, optional MDL-based subspace pruning, and a greedy
// maximal-rectangle cover for cluster descriptions. It runs on the
// same engine and message-passing machine as pMAFIA, so the paper's
// parallel head-to-head comparisons (Table 1, Figure 4) are
// apples-to-apples.
//
// The paper's Table 2 additionally evaluates a *modified* CLIQUE whose
// join is MAFIA's any-(k-2)-share rule over uniform grids; set
// Modified to true for that variant.
package clique

import (
	"math"
	"sort"

	"pmafia/internal/dataset"
	"pmafia/internal/gen"
	"pmafia/internal/mafia"
	"pmafia/internal/obs"
	"pmafia/internal/sp2"
	"pmafia/internal/unit"
)

// Config parameterizes a CLIQUE run.
type Config struct {
	// Bins is ξ, the number of equal-width bins per dimension
	// (default 10, the paper's setting).
	Bins int
	// BinsPerDim overrides Bins with a per-dimension count (the
	// "variable bins" run of Table 3).
	BinsPerDim []int
	// Tau is the global density threshold as a fraction of N
	// (default 0.01, i.e. 1%).
	Tau float64
	// Modified switches candidate generation to the MAFIA
	// any-(k-2)-share join (the paper's modified implementation of [2]
	// used in Table 2 and §5.5).
	Modified bool
	// MDLPrune enables CLIQUE's minimum-description-length subspace
	// pruning. The paper runs both systems without it (it can lose
	// dense units); off by default.
	MDLPrune bool
	// ChunkRecords is B, the records per I/O chunk.
	ChunkRecords int
	// TaskTau is the minimum item count for task-parallel division.
	TaskTau int
	// Workers is the intra-rank worker-pool size for the histogram and
	// population passes (0 or 1: inline), as in mafia.Config.
	Workers int
	// MaxLevels caps the level loop.
	MaxLevels int
	// Recorder, when non-nil, receives phase spans and engine counters
	// exactly as in a pMAFIA run (the baseline shares the engine).
	Recorder *obs.Recorder
}

func (c *Config) toMafia(dims int) mafia.Config {
	join := gen.MergeCLIQUE
	if c.Modified {
		join = gen.MergeMAFIA
	}
	mc := mafia.Config{
		FineUnits:    lcmFineUnits(c, dims),
		ChunkRecords: c.ChunkRecords,
		Tau:          c.TaskTau,
		Workers:      c.Workers,
		Join:         join,
		MaxLevels:    c.MaxLevels,
		UniformTau:   c.Tau,
		Recorder:     c.Recorder,
	}
	if c.BinsPerDim != nil {
		mc.Grid = mafia.UniformVariableGrid
		mc.UniformBinsPerDim = c.BinsPerDim
	} else {
		mc.Grid = mafia.UniformGrid
		mc.UniformBins = c.Bins
	}
	if c.MDLPrune {
		mc.Prune = MDLPrune
	}
	return mc
}

// lcmFineUnits picks a fine-unit count that every requested bin count
// divides, so uniform bins land exactly on fine-unit boundaries.
func lcmFineUnits(c *Config, dims int) int {
	l := 1
	consider := func(b int) {
		if b > 0 {
			l = lcm(l, b)
		}
	}
	if c.BinsPerDim != nil {
		for _, b := range c.BinsPerDim {
			consider(b)
		}
	} else if c.Bins > 0 {
		consider(c.Bins)
	} else {
		consider(10)
	}
	// Scale up to at least 1000 units for histogram resolution without
	// breaking divisibility.
	units := l
	for units < 1000 {
		units += l
	}
	return units
}

func lcm(a, b int) int {
	g := a
	x := b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}

// Run executes CLIQUE on a single processor.
func Run(src dataset.Source, cfg Config) (*mafia.Result, error) {
	return RunParallel([]dataset.Source{src}, nil, cfg, sp2.Config{Procs: 1})
}

// RunParallel executes the parallelized CLIQUE of §5.4 ("we ran our
// parallelized version of CLIQUE"): the same data/task parallel
// structure with CLIQUE's grid, threshold, and join.
func RunParallel(shards []dataset.Source, domains []dataset.Range, cfg Config, mcfg sp2.Config) (*mafia.Result, error) {
	d := 0
	if len(shards) > 0 {
		d = shards[0].Dims()
	}
	return mafia.RunParallel(shards, domains, cfg.toMafia(d), mcfg)
}

// subspaceCoverage pairs a subspace key with its summed dense-unit
// population.
type subspaceCoverage struct {
	key string
	cov int64
}

// MDLPrune implements CLIQUE's minimum-description-length subspace
// selection: subspaces are ranked by coverage (the summed population
// of their dense units); the cut point minimizing the MDL code length
// CL(i) = Σ_{selected} log2(|x_S − μ_I|+1) + log2(μ_I+1) +
// Σ_{pruned} log2(|x_S − μ_P|+1) + log2(μ_P+1) keeps the
// high-coverage subspaces and drops the dense units of the rest.
func MDLPrune(du *unit.Array, counts []int64) *unit.Array {
	if du.Len() == 0 || len(counts) != du.Len() {
		return du
	}
	// Coverage per subspace.
	cov := map[string]int64{}
	for i := 0; i < du.Len(); i++ {
		cov[du.SubspaceKey(i)] += counts[i]
	}
	subs := make([]subspaceCoverage, 0, len(cov))
	for k, v := range cov {
		subs = append(subs, subspaceCoverage{k, v})
	}
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].cov != subs[j].cov {
			return subs[i].cov > subs[j].cov
		}
		return subs[i].key < subs[j].key
	})
	if len(subs) == 1 {
		return du
	}
	cut := bestMDLCut(subs)
	keep := map[string]bool{}
	for i := 0; i <= cut; i++ {
		keep[subs[i].key] = true
	}
	out := unit.New(du.K, du.Len())
	for i := 0; i < du.Len(); i++ {
		if keep[du.SubspaceKey(i)] {
			d, b := du.Unit(i)
			out.AppendRaw(d, b)
		}
	}
	return out
}

// bestMDLCut returns the index of the last selected subspace.
func bestMDLCut(subs []subspaceCoverage) int {
	n := len(subs)
	prefix := make([]int64, n+1)
	for i, s := range subs {
		prefix[i+1] = prefix[i] + s.cov
	}
	best, bestCL := n-1, math.Inf(1)
	for cut := 0; cut < n-1; cut++ {
		nI := cut + 1
		nP := n - nI
		muI := float64(prefix[nI]) / float64(nI)
		muP := float64(prefix[n]-prefix[nI]) / float64(nP)
		cl := math.Log2(muI+1) + math.Log2(muP+1)
		for i := 0; i < n; i++ {
			var mu float64
			if i <= cut {
				mu = muI
			} else {
				mu = muP
			}
			cl += math.Log2(math.Abs(float64(subs[i].cov)-mu) + 1)
		}
		if cl < bestCL {
			bestCL = cl
			best = cut
		}
	}
	return best
}

// maxCoverCells caps the bin-space size handled by GreedyCover's flat
// bitset (8 MB of membership bits); wider spaces fall back to the
// hash-map lookup.
const maxCoverCells = 1 << 26

// GreedyCover reproduces CLIQUE's greedy growth cluster description:
// starting from each not-yet-covered dense unit, a rectangle is grown
// greedily in every dimension while all cells it would span are dense,
// yielding a set of (possibly overlapping) maximal rectangles that
// cover the cluster — the approximate description §3.2 of the pMAFIA
// paper contrasts with its exact minimal DNF.
//
// Dense-cell membership — the inner query of the slab scans — is a
// flat bitset over the occupied bin space (strides per dimension
// position, one Get per cell) whenever that space fits maxCoverCells,
// and the per-cell string hash otherwise.
func GreedyCover(units *unit.Array) []Rect {
	k := units.K
	// Extent per dimension position: max observed bin + 1.
	ext := make([]int64, k)
	for x := range ext {
		ext[x] = 1
	}
	for i := 0; i < units.Len(); i++ {
		_, b := units.Unit(i)
		for x := 0; x < k; x++ {
			if int64(b[x])+1 > ext[x] {
				ext[x] = int64(b[x]) + 1
			}
		}
	}
	cells := int64(1)
	stride := make([]int64, k)
	for x := k - 1; x >= 0; x-- {
		stride[x] = cells
		if cells > maxCoverCells/ext[x]+1 { // overflow guard
			cells = maxCoverCells + 1
			break
		}
		cells *= ext[x]
	}
	var present func(b []uint8) bool
	if k > 0 && cells <= maxCoverCells {
		bs := unit.NewBitset(int(cells))
		for i := 0; i < units.Len(); i++ {
			_, b := units.Unit(i)
			cell := int64(0)
			for x := 0; x < k; x++ {
				cell += stride[x] * int64(b[x])
			}
			bs.Set(int(cell))
		}
		present = func(b []uint8) bool {
			cell := int64(0)
			for x := range b {
				if int64(b[x]) >= ext[x] { // beyond any occupied bin
					return false
				}
				cell += stride[x] * int64(b[x])
			}
			return bs.Get(int(cell))
		}
	} else {
		byKey := make(map[string]bool, units.Len())
		for i := 0; i < units.Len(); i++ {
			_, b := units.Unit(i)
			byKey[string(b)] = true
		}
		present = func(b []uint8) bool { return byKey[string(b)] }
	}
	covered := make([]bool, units.Len())
	var rects []Rect
	for i := 0; i < units.Len(); i++ {
		if covered[i] {
			continue
		}
		_, b := units.Unit(i)
		lo := append([]uint8(nil), b...)
		hi := append([]uint8(nil), b...)
		for x := 0; x < k; x++ {
			for lo[x] > 0 && slabPresent(present, lo, hi, x, lo[x]-1) {
				lo[x]--
			}
			for hi[x] < 255 && slabPresent(present, lo, hi, x, hi[x]+1) {
				hi[x]++
			}
		}
		rects = append(rects, Rect{Lo: lo, Hi: hi})
		// Mark everything inside the rectangle covered.
		for j := 0; j < units.Len(); j++ {
			if covered[j] {
				continue
			}
			_, bj := units.Unit(j)
			inside := true
			for x := 0; x < k; x++ {
				if bj[x] < lo[x] || bj[x] > hi[x] {
					inside = false
					break
				}
			}
			if inside {
				covered[j] = true
			}
		}
	}
	return rects
}

// Rect is a rectangle of bins, inclusive on both ends, in the order of
// the unit array's subspace dimensions.
type Rect struct {
	Lo, Hi []uint8
}

// slabPresent reports whether every cell of the rectangle's slab at
// coordinate v along dimension x exists in the dense set.
func slabPresent(present func([]uint8) bool, lo, hi []uint8, x int, v uint8) bool {
	k := len(lo)
	cell := make([]uint8, k)
	copy(cell, lo)
	cell[x] = v
	var rec func(d int) bool
	rec = func(d int) bool {
		if d == k {
			return present(cell)
		}
		if d == x {
			return rec(d + 1)
		}
		for c := lo[d]; ; c++ {
			cell[d] = c
			if !rec(d + 1) {
				return false
			}
			if c == hi[d] {
				break
			}
		}
		return true
	}
	return rec(0)
}
