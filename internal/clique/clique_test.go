package clique

import (
	"testing"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/mafia"
	"pmafia/internal/sp2"
	"pmafia/internal/unit"
)

func genData(t *testing.T, d, records int, seed uint64, clusters ...datagen.Cluster) (*dataset.Matrix, *datagen.Truth) {
	t.Helper()
	m, truth, err := datagen.Generate(datagen.Spec{
		Dims: d, Records: records, Clusters: clusters, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, truth
}

func box(lo, hi float64, dims ...int) datagen.Cluster {
	ext := make([]dataset.Range, len(dims))
	for i := range ext {
		ext[i] = dataset.Range{Lo: lo, Hi: hi}
	}
	return datagen.UniformBox(dims, ext, 0)
}

func findsSubspace(res *mafia.Result, dims ...int) bool {
	for _, c := range res.Clusters {
		if len(c.Dims) != len(dims) {
			continue
		}
		ok := true
		for i := range dims {
			if int(c.Dims[i]) != dims[i] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestCLIQUEFindsAlignedCluster(t *testing.T) {
	// Cluster aligned with the 10-bin grid, diluted with uniform
	// background so per-cell densities behave like the paper's data
	// (a cluster that dominates the data set bleeds into extra dims).
	m, _, err := datagen.Generate(datagen.Spec{
		Dims: 6, Records: 2000, Seed: 31,
		Clusters:      []datagen.Cluster{box(20, 40, 1, 3)},
		NoiseFraction: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, Config{Tau: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !findsSubspace(res, 1, 3) {
		t.Error("CLIQUE missed a grid-aligned cluster")
	}
}

func TestCLIQUEParallelMatchesSerial(t *testing.T) {
	m, _ := genData(t, 6, 6000, 32, box(20, 40, 0, 4))
	serial, err := Run(m, Config{Tau: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	shards := []dataset.Source{m.Slice(0, 3300), m.Slice(3300, m.NumRecords())}
	par, err := RunParallel(shards, nil, Config{Tau: 0.02}, sp2.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Clusters) != len(serial.Clusters) || len(par.Levels) != len(serial.Levels) {
		t.Fatalf("parallel run diverged: %d/%d clusters, %d/%d levels",
			len(par.Clusters), len(serial.Clusters), len(par.Levels), len(serial.Levels))
	}
	for i := range par.Levels {
		ps, ss := par.Levels[i], serial.Levels[i]
		if ps.K != ss.K || ps.NcduRaw != ss.NcduRaw || ps.Ncdu != ss.Ncdu || ps.Ndu != ss.Ndu {
			t.Errorf("level %d: %+v vs %+v", i, ps, ss)
		}
	}
}

func TestModifiedGeneratesMoreCandidates(t *testing.T) {
	// The any-(k-2)-share join explores a superset of the prefix join's
	// candidates (§5.5: "drastically increases the search space").
	m, _ := genData(t, 8, 8000, 33, box(10, 30, 0, 2, 4, 6))
	std, err := Run(m, Config{Tau: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Run(m, Config{Tau: 0.015, Modified: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(r *mafia.Result) (raw int) {
		for _, l := range r.Levels {
			raw += l.NcduRaw
		}
		return
	}
	if sum(mod) < sum(std) {
		t.Errorf("modified CLIQUE generated fewer raw CDUs (%d) than standard (%d)", sum(mod), sum(std))
	}
}

func TestVariableBins(t *testing.T) {
	m, _ := genData(t, 4, 4000, 34, box(20, 40, 0, 2))
	res, err := Run(m, Config{BinsPerDim: []int{5, 10, 20, 8}, Tau: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grid.Dims[0].NumBins() != 5 || res.Grid.Dims[2].NumBins() != 20 {
		t.Errorf("bins = %d,%d", res.Grid.Dims[0].NumBins(), res.Grid.Dims[2].NumBins())
	}
}

func TestMDLPruneKeepsHighCoverage(t *testing.T) {
	// Two subspaces with very different coverage: the low-coverage one
	// is pruned.
	du := unit.New(2, 4)
	du.Append([]uint8{0, 1}, []uint8{1, 1})
	du.Append([]uint8{0, 1}, []uint8{1, 2})
	du.Append([]uint8{2, 3}, []uint8{4, 4})
	counts := []int64{5000, 4000, 10}
	out := MDLPrune(du, counts)
	if out.Len() != 2 {
		t.Fatalf("pruned to %d units, want 2", out.Len())
	}
	for i := 0; i < out.Len(); i++ {
		d, _ := out.Unit(i)
		if d[0] != 0 || d[1] != 1 {
			t.Errorf("kept wrong subspace: %v", d)
		}
	}
}

func TestMDLPruneSingleSubspaceUntouched(t *testing.T) {
	du := unit.New(1, 2)
	du.Append([]uint8{0}, []uint8{1})
	du.Append([]uint8{0}, []uint8{2})
	out := MDLPrune(du, []int64{100, 90})
	if out.Len() != 2 {
		t.Errorf("single subspace must not be pruned: %d", out.Len())
	}
}

func TestMDLPruneEndToEnd(t *testing.T) {
	m, _, err := datagen.Generate(datagen.Spec{
		Dims: 6, Records: 2000, Seed: 35,
		Clusters:      []datagen.Cluster{box(20, 40, 1, 3)},
		NoiseFraction: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(m, Config{Tau: 0.02, MDLPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(m, Config{Tau: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// MDL pruning restricts the explored subspaces, so it can only
	// shrink the per-level candidate counts — and, as the paper warns
	// ("this could result in missing some dense units in the pruned
	// subspaces"), it may lose clusters; it must never add any.
	if len(pruned.Clusters) > len(plain.Clusters) {
		t.Errorf("MDL pruning increased clusters: %d > %d", len(pruned.Clusters), len(plain.Clusters))
	}
	for i := 0; i < len(pruned.Levels) && i < len(plain.Levels); i++ {
		if pruned.Levels[i].NcduRaw > plain.Levels[i].NcduRaw {
			t.Errorf("level %d: pruned run generated more CDUs (%d > %d)",
				i+1, pruned.Levels[i].NcduRaw, plain.Levels[i].NcduRaw)
		}
	}
}

func TestGreedyCoverSingleRectangle(t *testing.T) {
	u := unit.New(2, 0)
	for i := uint8(0); i < 3; i++ {
		for j := uint8(0); j < 2; j++ {
			u.Append([]uint8{0, 1}, []uint8{i, j})
		}
	}
	rects := GreedyCover(u)
	if len(rects) != 1 {
		t.Fatalf("full rectangle covered by %d rects, want 1", len(rects))
	}
	r := rects[0]
	if r.Lo[0] != 0 || r.Hi[0] != 2 || r.Lo[1] != 0 || r.Hi[1] != 1 {
		t.Errorf("rect = %+v", r)
	}
}

func TestGreedyCoverLShape(t *testing.T) {
	u := unit.New(2, 0)
	u.Append([]uint8{0, 1}, []uint8{0, 0})
	u.Append([]uint8{0, 1}, []uint8{1, 0})
	u.Append([]uint8{0, 1}, []uint8{1, 1})
	rects := GreedyCover(u)
	if len(rects) != 2 {
		t.Fatalf("L-shape covered by %d rects, want 2 (possibly overlapping)", len(rects))
	}
	// Every unit must be inside some rectangle.
	for i := 0; i < u.Len(); i++ {
		_, b := u.Unit(i)
		inside := false
		for _, r := range rects {
			ok := true
			for x := range b {
				if b[x] < r.Lo[x] || b[x] > r.Hi[x] {
					ok = false
					break
				}
			}
			if ok {
				inside = true
			}
		}
		if !inside {
			t.Errorf("unit %d not covered", i)
		}
	}
}

func TestLcmFineUnits(t *testing.T) {
	cfg := &Config{Bins: 10}
	if u := lcmFineUnits(cfg, 3); u%10 != 0 || u < 1000 {
		t.Errorf("units = %d", u)
	}
	cfg = &Config{BinsPerDim: []int{6, 8}}
	u := lcmFineUnits(cfg, 2)
	if u%6 != 0 || u%8 != 0 {
		t.Errorf("units %d not divisible by 6 and 8", u)
	}
}

func TestCLIQUEMissesMAFIAOnlyCandidates(t *testing.T) {
	// Regression of the paper's core observation: with the prefix join,
	// CLIQUE explores fewer (or equal) candidates per level than the
	// modified variant, never more.
	m, _ := genData(t, 10, 10000, 36, box(10, 30, 0, 2, 3, 5, 6))
	std, err := Run(m, Config{Tau: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Run(m, Config{Tau: 0.015, Modified: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(std.Levels) && i < len(mod.Levels); i++ {
		if std.Levels[i].Ncdu > mod.Levels[i].Ncdu {
			t.Errorf("level %d: standard Ncdu %d > modified %d", i+1, std.Levels[i].Ncdu, mod.Levels[i].Ncdu)
		}
	}
}
