package daemon

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/mafia"
	"pmafia/internal/modelio"
	"pmafia/internal/obs"
)

// fitDistinct fits a model whose cluster lives in the given columns,
// so models fitted over different column sets label a shared query
// matrix differently.
func fitDistinct(t *testing.T, cols []int, seed uint64) (*mafia.Result, *dataset.Matrix) {
	t.Helper()
	ext := make([]dataset.Range, len(cols))
	for i := range ext {
		ext[i] = dataset.Range{Lo: 20, Hi: 32}
	}
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:     5,
		Records:  2000,
		Clusters: []datagen.Cluster{datagen.UniformBox(cols, ext, 0)},
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res, m
}

func labelsEqual(got, want []int32) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// assignLabels posts the query matrix as CSV and decodes the labels.
func assignLabels(t *testing.T, base, model string, body []byte) []int32 {
	t.Helper()
	resp, raw := postAssign(t, base, model, "text/csv", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assign status %d: %s", resp.StatusCode, raw)
	}
	var ar assignResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	return ar.Labels
}

// TestStaleModelReloaded is the stale-pinning regression: overwriting
// a served .pmfm must be picked up by the freshness check — the old
// cache entry pinned the first load until LRU eviction, so a refit
// under the same name was never served.
func TestStaleModelReloaded(t *testing.T) {
	resA, qry := fitDistinct(t, []int{0, 2, 4}, 31)
	resB, _ := fitDistinct(t, []int{1, 3}, 32)
	wantA, err := resA.Assign(qry, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := resB.Assign(qry, 0)
	if err != nil {
		t.Fatal(err)
	}
	if labelsEqual(wantA, wantB) {
		t.Fatal("test models label the query identically; pick different columns")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "a.pmfm")
	if err := modelio.SaveMeta(path, resA, 1); err != nil {
		t.Fatal(err)
	}
	d, base := startDaemon(t, Config{ModelDir: dir, SwapCheck: time.Millisecond})
	defer d.Shutdown(context.Background())

	body := csvBody(qry)
	if got := assignLabels(t, base, "a.pmfm", body); !labelsEqual(got, wantA) {
		t.Fatal("first request does not serve generation 1")
	}

	// Overwrite with the next generation; the next requests must start
	// serving it without an eviction or restart.
	if err := modelio.SaveMeta(path, resB, 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		got := assignLabels(t, base, "a.pmfm", body)
		if labelsEqual(got, wantB) {
			break
		}
		if !labelsEqual(got, wantA) {
			t.Fatal("response matches neither generation: torn model")
		}
		if time.Now().After(deadline) {
			t.Fatal("overwritten model never served: stale model pinned")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := d.Recorder().Counter(obs.CtrSwapSwaps); got < 1 {
		t.Errorf("swap.swaps = %d after a hot swap", got)
	}

	// /models reports the resident generation.
	resp, err := http.Get(base + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var infos []modelInfo
	err = json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Loaded || infos[0].Gen != 2 {
		t.Errorf("/models after swap = %+v, want generation 2 resident", infos)
	}
}

// TestSwapUnderLoad is the swap crash matrix: generations are swapped
// at randomized points under sustained framed+CSV traffic, and every
// response must be bit-identical to one of the two generations'
// oracles — the torn-model failure mode is a response that mixes them.
// A corrupt overwrite must keep the previous generation serving, and a
// good model restores convergence.
func TestSwapUnderLoad(t *testing.T) {
	resA, qry := fitDistinct(t, []int{0, 2, 4}, 33)
	resB, _ := fitDistinct(t, []int{1, 3}, 34)
	wantA, err := resA.Assign(qry, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := resB.Assign(qry, 0)
	if err != nil {
		t.Fatal(err)
	}
	if labelsEqual(wantA, wantB) {
		t.Fatal("oracles agree; the swap would be unobservable")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "m.pmfm")
	if err := modelio.SaveMeta(path, resA, 1); err != nil {
		t.Fatal(err)
	}
	d, base := startDaemon(t, Config{
		ModelDir:       dir,
		SwapCheck:      time.Millisecond,
		Inflight:       16,
		CoalesceWindow: time.Millisecond,
		CoalesceMax:    64,
		Chunk:          128,
	})
	defer d.Shutdown(context.Background())

	// Writer: alternate generations at randomized points while the
	// clients hammer the model.
	const gens = 30
	var lastB atomic.Bool // generation parity of the newest file
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(35))
		for g := 0; g < gens; g++ {
			time.Sleep(time.Duration(1+rng.Intn(7)) * time.Millisecond)
			res, isB := resA, false
			if g%2 == 0 {
				res, isB = resB, true
			}
			if err := modelio.SaveMeta(path, res, uint64(g+2)); err != nil {
				t.Error(err)
				return
			}
			lastB.Store(isB)
		}
	}()

	const dims = 5
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(36 + c)))
			for i := 0; ; i++ {
				select {
				case <-writerDone:
					return
				default:
				}
				lo := rng.Intn(qry.NumRecords() - 8)
				n := 1 + rng.Intn(7)
				body, err := EncodeFrame(dims, qry.Values[lo*dims:(lo+n)*dims])
				if err != nil {
					t.Error(err)
					return
				}
				resp, raw := postAssign(t, base, "m.pmfm", ContentTypeFrame, body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d iter %d: status %d: %s", c, i, resp.StatusCode, raw)
					return
				}
				matchA, matchB := true, true
				for j := 0; j < n; j++ {
					got := int32(binary.LittleEndian.Uint32(raw[4*j:]))
					matchA = matchA && got == wantA[lo+j]
					matchB = matchB && got == wantB[lo+j]
				}
				if !matchA && !matchB {
					t.Errorf("client %d iter %d rows [%d,%d): response matches neither generation — torn model", c, i, lo, lo+n)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Converge on the newest generation.
	body := csvBody(qry)
	final := wantA
	if lastB.Load() {
		final = wantB
	}
	deadline := time.Now().Add(15 * time.Second)
	for !labelsEqual(assignLabels(t, base, "m.pmfm", body), final) {
		if time.Now().After(deadline) {
			t.Fatal("daemon never converged on the last written generation")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A corrupt overwrite keeps the previous generation serving and
	// surfaces as swap.errors, never as a torn or failing response.
	if err := os.WriteFile(path, []byte("PMFMgarbage that is not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for d.Recorder().Counter(obs.CtrSwapErrors) == 0 {
		if got := assignLabels(t, base, "m.pmfm", body); !labelsEqual(got, final) {
			t.Fatal("corrupt overwrite changed the served model")
		}
		if time.Now().After(deadline) {
			t.Fatal("swap.errors never counted the corrupt overwrite")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := assignLabels(t, base, "m.pmfm", body); !labelsEqual(got, final) {
		t.Fatal("corrupt overwrite changed the served model")
	}

	// A good model lands after the failure and is swapped in.
	if err := modelio.SaveMeta(path, resB, gens+10); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for !labelsEqual(assignLabels(t, base, "m.pmfm", body), wantB) {
		if time.Now().After(deadline) {
			t.Fatal("daemon never recovered from the corrupt overwrite")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalesceDrainFlushesWaiters pins the shutdown audit: requests
// parked in a half-full coalesce batch when Shutdown begins must be
// flushed with correct labels (not abandoned until the window timer or
// dropped), and shutdown must not wait out the window. Run under -race
// in make check this is the drain-vs-submit-vs-timer gate.
func TestCoalesceDrainFlushesWaiters(t *testing.T) {
	dir := t.TempDir()
	res, m := fitModel(t, dir, "a.pmfm", 37)
	want, err := res.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	const window = 30 * time.Second // only the drain can flush in time
	d, base := startDaemon(t, Config{
		ModelDir:       dir,
		Inflight:       32,
		CoalesceWindow: window,
		CoalesceMax:    512,
		Chunk:          1 << 20, // never fills: the threshold flush is out too
	})

	// Warm the model so the in-flight requests park in the coalescer,
	// not the loader.
	postAssign(t, base, "a.pmfm", "text/csv", []byte("1,2,3,4,5\n"))

	const dims = 5
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lo := c * 3
			n := 2 + c%3
			body, err := EncodeFrame(dims, m.Values[lo*dims:(lo+n)*dims])
			if err != nil {
				errs <- err
				return
			}
			resp, raw := postAssign(t, base, "a.pmfm", ContentTypeFrame, body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, raw)
				return
			}
			for i := 0; i < n; i++ {
				if got := int32(binary.LittleEndian.Uint32(raw[4*i:])); got != want[lo+i] {
					errs <- fmt.Errorf("client %d record %d: got %d, want %d", c, lo+i, got, want[lo+i])
					return
				}
			}
		}(c)
	}

	// Wait until every request is parked in the coalescer, then shut
	// down while the 30s window is still pending.
	deadline := time.Now().Add(10 * time.Second)
	for d.Recorder().Counter(obs.CtrAssignCoalesceReqs) < clients {
		if time.Now().After(deadline) {
			t.Fatal("requests never reached the coalescer")
		}
		time.Sleep(2 * time.Millisecond)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > window/2 {
		t.Errorf("shutdown took %v: waiters were abandoned to the %v window timer", elapsed, window)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := d.Recorder().Counter(obs.CtrAssignCoalesceFlushes); got < 1 {
		t.Errorf("coalesce.flushes = %d after drain", got)
	}
}
