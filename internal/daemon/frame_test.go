package daemon

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net/http"
	"testing"

	"pmafia/internal/obs"
)

// frameBody builds a framed request for rows of the 5-dim test model.
func frameBody(t *testing.T, dims int, vals []float64) []byte {
	t.Helper()
	b, err := EncodeFrame(dims, vals)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAssignFrameMatchesOracle drives the framed binary protocol
// end-to-end and checks the labels agree with the engine's linear
// oracle, like the CSV and octet-stream paths do.
func TestAssignFrameMatchesOracle(t *testing.T) {
	dir := t.TempDir()
	res, m := fitModel(t, dir, "a.pmfm", 21)
	d, base := startDaemon(t, Config{ModelDir: dir})
	defer d.Shutdown(context.Background())

	want, err := res.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postAssign(t, base, "a.pmfm", ContentTypeFrame, frameBody(t, 5, m.Values))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if len(raw) != 4*len(want) {
		t.Fatalf("frame reply of %d bytes for %d labels", len(raw), len(want))
	}
	for i := range want {
		if got := int32(binary.LittleEndian.Uint32(raw[4*i:])); got != want[i] {
			t.Fatalf("record %d: daemon %d, oracle %d", i, got, want[i])
		}
	}
	if d.Recorder().Counter(obs.CtrAssignFrames) == 0 {
		t.Error("assign.frames counter did not move")
	}
}

// TestAssignFrameErrors maps each malformed frame to its status code:
// 400 for structural errors, 413 when the declared payload exceeds the
// body cap — before any payload is read.
func TestAssignFrameErrors(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 22)
	d, base := startDaemon(t, Config{ModelDir: dir, MaxBody: 1 << 16})
	defer d.Shutdown(context.Background())

	good := func() []byte {
		b, err := EncodeFrame(5, []float64{1, 2, 3, 4, 5})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cases := []struct {
		name string
		body []byte
		code int
	}{
		{"empty", nil, http.StatusBadRequest},
		{"short header", good()[:7], http.StatusBadRequest},
		{"bad magic", append([]byte("XXXX"), good()[4:]...), http.StatusBadRequest},
		{"bad version", func() []byte {
			b := good()
			binary.LittleEndian.PutUint32(b[4:], 9)
			return b
		}(), http.StatusBadRequest},
		{"wrong dims", frameBody(t, 3, []float64{1, 2, 3}), http.StatusBadRequest},
		{"truncated payload", good()[:len(good())-8], http.StatusBadRequest},
		{"trailing bytes", append(good(), 0), http.StatusBadRequest},
		{"hostile record count", func() []byte {
			b := good()
			binary.LittleEndian.PutUint32(b[12:], math.MaxUint32)
			return b
		}(), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, raw := postAssign(t, base, "a.pmfm", ContentTypeFrame, tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, bytes.TrimSpace(raw), tc.code)
		}
	}
}

// countingReader counts the bytes decodeFrame actually consumed, so
// the fuzz target can pin that the decoder never reads past the
// declared payload (plus the one-byte trailing probe).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// FuzzAssignFrame fuzzes the framed-protocol decoder: arbitrary bodies
// — truncated frames, hostile record counts, misaligned lengths — must
// come back as typed errors, never a panic, an over-read, or an
// allocation past the body cap.
func FuzzAssignFrame(f *testing.F) {
	if seed, err := EncodeFrame(3, []float64{1, 2, 3, 4, 5, 6}); err != nil {
		f.Fatal(err)
	} else {
		f.Add(seed, 3)
		f.Add(seed[:20], 3)             // truncated payload
		f.Add(seed[:7], 3)              // truncated header
		f.Add(append(seed, 1, 2, 3), 3) // trailing bytes
		f.Add([]byte("PMASxxxxyyyyzzzz"), 4)
		hostile := append([]byte(nil), seed...)
		binary.LittleEndian.PutUint32(hostile[12:], math.MaxUint32)
		f.Add(hostile, 3)
	}
	const maxBytes = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte, wantDims int) {
		if wantDims < 1 || wantDims > 256 {
			wantDims = 1 + (wantDims&0xff+256)%256
		}
		cr := &countingReader{r: bytes.NewReader(data)}
		vals, err := decodeFrame(cr, wantDims, maxBytes)
		if err != nil {
			for _, typed := range []error{ErrFrameMagic, ErrFrameVersion, ErrFrameDims,
				ErrFrameTruncated, ErrFrameTooLarge, ErrFrameTrailing} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		if len(vals)%wantDims != 0 {
			t.Fatalf("%d values do not divide into %d-dim records", len(vals), wantDims)
		}
		if 8*int64(len(vals)) > maxBytes {
			t.Fatalf("decoded %d values past the %d-byte cap", len(vals), maxBytes)
		}
		// Success consumes exactly header + payload + the trailing probe
		// byte's EOF — never more.
		if want := int64(frameHeaderSize + 8*len(vals)); cr.n != want {
			t.Fatalf("decoder consumed %d bytes, want %d", cr.n, want)
		}
		if records := binary.LittleEndian.Uint32(data[12:]); int(records)*wantDims != len(vals) {
			t.Fatalf("header declares %d records, decoder returned %d values", records, len(vals))
		}
	})
}
