package daemon

// Serve-side request tracing: the instrument middleware starts one
// obs.ServeTrace per request when tracing is enabled (Config
// TraceSample > 0), honoring an inbound W3C traceparent and emitting
// the daemon's own outbound. Handlers and the coalescer annotate
// stage spans via reqStats; the middleware offers the finished trace
// to the ring, which head-samples ordinary requests and always keeps
// errors and tail-latency outliers. Retained traces serve as Chrome
// trace_event JSON at /debug/trace (and /debug/trace/{id}) and as
// OpenMetrics exemplars on the latency histograms.

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
	"time"

	"pmafia/internal/obs"
)

// parseTraceparent extracts the trace-id of a W3C traceparent header
// (version 00: "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>"),
// "" if the header is absent or malformed. An all-zero trace-id is
// invalid per spec.
func parseTraceparent(h string) string {
	parts := strings.Split(h, "-")
	if len(parts) != 4 || parts[0] != "00" ||
		!isLowerHex(parts[1], 32) || !isLowerHex(parts[2], 16) || !isLowerHex(parts[3], 2) {
		return ""
	}
	if parts[1] == strings.Repeat("0", 32) {
		return ""
	}
	return parts[1]
}

func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// randHex returns n random bytes as 2n lowercase hex characters.
func randHex(n int) string {
	b := make([]byte, n)
	rand.Read(b) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b)
}

// startTrace begins the request's trace, keyed by the request's own
// unique ID — a W3C trace-id is shared by every request in one
// distributed trace (fan-out, retries), so keying the ring by it
// would make such requests shadow each other. The inbound traceparent
// trace-id (or a freshly minted one) rides along as a correlation
// attribute and is echoed outbound with the daemon's own span-id.
// Also makes the deterministic head-sampling decision (every
// traceStride-th request). Only called when tracing is enabled.
func (d *Daemon) startTrace(w http.ResponseWriter, r *http.Request, st *reqStats, route, id string, start time.Time) (traceID string, sampled bool) {
	traceID = parseTraceparent(r.Header.Get("traceparent"))
	if traceID == "" {
		traceID = randHex(16)
	}
	w.Header().Set("traceparent", "00-"+traceID+"-"+randHex(8)+"-01")
	st.epoch = d.traces.Epoch()
	st.tr = &obs.ServeTrace{ID: id, TraceID: traceID, Route: route, Start: start.Sub(st.epoch).Seconds()}
	n := d.traceSeq.Add(1)
	return traceID, (n-1)%d.traceStride == 0
}

// debugTrace serves the retained traces as Chrome trace_event JSON:
// the whole ring at /debug/trace, one trace at /debug/trace/{id}.
func (d *Daemon) debugTrace(w http.ResponseWriter, r *http.Request) {
	if d.traces == nil {
		http.Error(w, "tracing disabled (start with -trace-sample > 0)", http.StatusNotFound)
		return
	}
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/trace"), "/")
	// Render into a buffer first: the per-ID path then needs a single
	// ring lookup (a lookup-then-write pair could race an eviction into
	// a 200 with an empty body), and an export error becomes a clean
	// 500 instead of a truncated 200.
	var buf bytes.Buffer
	if id == "" {
		if err := d.traces.WriteChromeTrace(&buf); err != nil {
			http.Error(w, "trace export: "+err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		found, err := d.traces.WriteTraceByID(&buf, id)
		if err != nil {
			http.Error(w, "trace export: "+err.Error(), http.StatusInternalServerError)
			return
		}
		if !found {
			http.Error(w, "trace "+id+" not retained", http.StatusNotFound)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}
