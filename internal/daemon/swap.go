package daemon

// Generation-aware model residency. A cache entry is a handle whose
// current compiled generation is swapped atomically: requests load the
// pointer once and use that immutable snapshot end to end, so an
// in-flight request finishes on the generation it started with, a new
// request sees the new one, and no request ever observes a torn model.
// Freshness is checked against the file on disk at most once per
// Config.SwapCheck per model, off the request path; a failed reload
// keeps serving the previous generation and surfaces through the
// swap.errors counter and the per-model staleness gauge.

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pmafia/internal/assign"
	"pmafia/internal/modelio"
	"pmafia/internal/obs"
)

// compiled is one immutable generation of a served model: the assign
// index plus the identity (generation, payload fingerprint, file stat)
// the swap logic compares against the file on disk. Everything a
// request touches hangs off this value, so sharing it is safe and
// swapping it is one pointer store.
type compiled struct {
	name  string // base file name, the metric label
	ix    *assign.Index
	n     int    // records the model was fitted on
	gen   uint64 // generation from the .pmfm header
	fp    uint64 // payload fingerprint from the .pmfm header
	mtime int64  // file mtime (unixnano) statted just before the read
	size  int64  // file size statted just before the read
}

// model is one cache entry: a handle over the current compiled
// generation. The pointer is nil until the first successful load;
// loads and swaps serialize on mu, readers never take it.
type model struct {
	path string
	name string

	mu  sync.Mutex // serializes loads and swaps
	cur atomic.Pointer[compiled]

	lastCheck atomic.Int64 // unixnano of the last freshness check
}

func newModel(path string) *model {
	return &model{path: path, name: filepath.Base(path)}
}

// compile loads the model file and builds its immutable serving state.
// The stat is taken before the read: if the file is replaced between
// the two, the recorded mtime is older than the content and the next
// freshness check reloads — never the reverse, which would record a
// stale payload as fresh and pin it.
func compile(path string) (*compiled, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	res, meta, err := modelio.LoadMeta(path)
	if err != nil {
		return nil, err
	}
	ix, err := assign.New(res.Grid, res.Clusters)
	if err != nil {
		return nil, err
	}
	return &compiled{
		name:  filepath.Base(path),
		ix:    ix,
		n:     res.N,
		gen:   meta.Generation,
		fp:    meta.Fingerprint,
		mtime: st.ModTime().UnixNano(),
		size:  st.Size(),
	}, nil
}

// ensure returns the current compiled generation, loading it first if
// the handle is empty. Concurrent first loads serialize on mu; a
// failure leaves the handle empty (the caller evicts it) and every
// waiter gets the error.
func (m *model) ensure() (*compiled, error) {
	if cx := m.cur.Load(); cx != nil {
		return cx, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cx := m.cur.Load(); cx != nil {
		return cx, nil
	}
	cx, err := compile(m.path)
	if err != nil {
		return nil, err
	}
	m.cur.Store(cx)
	return cx, nil
}

// loaded reports, without blocking or triggering a load, whether the
// handle holds a successfully loaded generation.
func (m *model) loaded() bool { return m.cur.Load() != nil }

// freshen schedules a background freshness check for a resident model,
// at most once per SwapCheck interval. The CAS makes one request the
// designated checker; everyone else (including the winner) proceeds on
// the generation it already holds, so the request path never waits on
// a stat or a reload.
func (d *Daemon) freshen(m *model) {
	if d.cfg.SwapCheck < 0 {
		return
	}
	now := time.Now().UnixNano()
	last := m.lastCheck.Load()
	if now-last < int64(d.cfg.SwapCheck) {
		return
	}
	if !m.lastCheck.CompareAndSwap(last, now) {
		return
	}
	d.swaps.Add(1)
	go func() {
		defer d.swaps.Done()
		d.maybeSwap(m)
	}()
}

// maybeSwap compares the resident generation against the file on disk
// and hot-swaps a changed model in. A reload that fails — the file is
// mid-rewrite, corrupt, or gone — keeps serving the previous
// generation; the staleness gauge then reports how long the newer file
// has gone unserved, and the next check retries.
func (d *Daemon) maybeSwap(m *model) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.cur.Load()
	if cur == nil {
		// Never loaded (or evicted): the request path owns first loads.
		return
	}
	d.rec.Add(0, obs.CtrSwapChecks, 1)
	st, err := os.Stat(m.path)
	if err != nil {
		// The file vanished; keep serving the resident generation.
		d.rec.Add(0, obs.CtrSwapErrors, 1)
		return
	}
	if st.ModTime().UnixNano() == cur.mtime && st.Size() == cur.size {
		d.rec.SetGauge(obs.GaugeModelStaleness(m.name), 0)
		return
	}
	start := time.Now()
	next, err := compile(m.path)
	if err != nil {
		d.rec.Add(0, obs.CtrSwapErrors, 1)
		d.rec.SetGauge(obs.GaugeModelStaleness(m.name), time.Since(st.ModTime()).Seconds())
		return
	}
	if next.gen == cur.gen && next.fp == cur.fp {
		// Same content rewritten in place (a copy restored, a touched
		// file): adopt the new stat identity without counting a swap.
		m.cur.Store(next)
		d.rec.SetGauge(obs.GaugeModelStaleness(m.name), 0)
		return
	}
	m.cur.Store(next)
	d.rec.Add(0, obs.CtrSwapSwaps, 1)
	d.rec.Observe(0, obs.HistSwapSeconds, time.Since(start).Seconds())
	d.rec.SetGauge(obs.GaugeModelStaleness(m.name), 0)
}
