// Package daemon is the model-serving daemon behind cmd/pmafiad: it
// serves saved clustering models (the .pmfm files cmd/pmafia writes
// with -save-model) for batch record assignment over HTTP, keeping an
// LRU-capped set of them compiled into assignment indexes. Resident
// models are freshness-checked against their files (Config.SwapCheck)
// and hot-swapped when a new generation lands on disk — see swap.go.
//
// Endpoints:
//
//	POST /assign?model=<name>.pmfm
//	     Body: CSV records (default; numeric columns, optional
//	     header), answered with JSON labels — or, with Content-Type
//	     application/octet-stream, row-major little-endian float64s,
//	     answered with little-endian int32 labels — or, with
//	     Content-Type application/x-pmafia-assign, one framed binary
//	     request (see frame.go) decoded straight into the batch
//	     kernel and answered with little-endian int32 labels. Small
//	     framed requests are coalesced into shared kernel batches
//	     when Config.CoalesceWindow is set. A label is the cluster
//	     index in the model's cluster list, -1 for outliers.
//	POST /ingest?refit=1
//	     (only with Config.IngestModel) streaming ingest: the body's
//	     records — CSV, raw float64s, or one PMAS frame — are appended
//	     to the in-process ingest.Ingester, whose refits (triggered by
//	     record count or the refit query parameter) write the next
//	     generation of the ingest model into the model directory.
//	GET  /models      JSON listing of the model directory with
//	                  residency info and resident generations.
//	GET  /metrics     Prometheus text exposition (the shared obs
//	                  handler): request counters per route and status,
//	                  latency histograms per route and per model,
//	                  batch-size histograms, queue-wait histogram, and
//	                  the assign.* counters.
//	GET  /healthz     liveness probe.
//	GET  /readyz      readiness probe: 200 with model-cache state
//	                  while serving, 503 once draining so a fronting
//	                  load balancer rotates the node out.
//	GET  /debug/slow  the N slowest requests seen so far, with their
//	                  per-request timing breakdowns (and, with tracing
//	                  on, the trace ID each resolves to).
//	GET  /debug/trace       (only with Config.TraceSample > 0) the
//	                        retained request traces as Chrome
//	                        trace_event JSON; /debug/trace/{id} serves
//	                        one trace.
//	GET  /debug/profiles    (only with Config.ProfileDir) the
//	                        continuous-profiling index;
//	                        /debug/profiles/{name} serves a capture.
//	GET  /debug/pprof/* (only with Config.Pprof) net/http/pprof.
//
// Every request is instrumented (see obs.go): it carries an
// X-Request-ID (propagated from the client if sane, else generated),
// lands in the per-route and per-model latency histograms and
// status-code counters, emits exactly one structured JSON access-log
// line with its stage breakdown, and competes for a slot in the
// slow-request ring — a handler panic is recovered with all of those
// invariants intact. With TraceSample > 0 every request additionally
// builds a wall-clock stage trace (see trace.go), retained by head
// sampling plus tail-based always-keep for errors and outliers, and
// retained traces are attached as OpenMetrics exemplars to the
// latency histograms at /metrics.
//
// The daemon bounds concurrent assignment work (Inflight), times out
// slow requests (Timeout), caps request bodies (MaxBody), and shuts
// down gracefully: Shutdown flips /readyz to 503, drains in-flight
// requests, and flushes the access log before returning.
package daemon

import (
	"container/list"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmafia/internal/dataset"
	"pmafia/internal/ingest"
	"pmafia/internal/modelio"
	"pmafia/internal/obs"
	"pmafia/internal/obs/serve"
)

// queueWait bounds how long an /assign request may wait for an
// in-flight slot before the daemon sheds it with a 503.
const queueWait = 100 * time.Millisecond

// Config parameterizes the daemon.
type Config struct {
	Addr     string        // listen address (":0" picks a free port)
	ModelDir string        // directory the served models live in
	CacheCap int           // max models resident at once
	Timeout  time.Duration // per-request read/write timeout
	Inflight int           // max concurrent /assign requests
	Chunk    int           // records per assignment batch
	Workers  int           // fan-out goroutines per assignment
	MaxBody  int64         // request body cap in bytes
	// AccessLog receives one structured JSON line per request. nil
	// disables access logging. The daemon serializes writes and flushes
	// its buffer on Shutdown; closing the underlying file (if any) is
	// the caller's job.
	AccessLog io.Writer
	// SlowN is the capacity of the slow-request ring served at
	// /debug/slow.
	SlowN int
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// CoalesceWindow, when positive, batches concurrent framed /assign
	// requests against the same model into shared kernel invocations: a
	// request waits at most this long for co-riders before its batch
	// flushes. Zero disables coalescing.
	CoalesceWindow time.Duration
	// CoalesceMax is the largest framed request (in records) eligible
	// for coalescing; bigger bodies go straight to the kernel.
	CoalesceMax int
	// TraceSample, when positive, enables serve-side request tracing:
	// every 1/TraceSample-th request is head-sampled into the trace
	// ring, and every non-2xx or tail-latency request is retained
	// regardless. Zero disables tracing entirely (the hot path then
	// allocates nothing for it).
	TraceSample float64
	// TraceRing caps each retention class of the trace ring.
	TraceRing int
	// ProfileDir, when set, enables continuous profiling: periodic CPU
	// and heap pprof captures land there, pruned to ProfileKeep files
	// per kind, indexed at /debug/profiles.
	ProfileDir string
	// ProfileInterval is the sleep between capture cycles.
	ProfileInterval time.Duration
	// ProfileCPU is the length of each CPU capture.
	ProfileCPU time.Duration
	// ProfileKeep bounds the on-disk captures retained per kind.
	ProfileKeep int
	// SwapCheck is the minimum interval between freshness checks of a
	// resident model against its file on disk. A changed file (a new
	// generation written by a refit, or any atomic overwrite) is
	// reloaded in the background and hot-swapped in: in-flight requests
	// finish on the generation they started with, new requests see the
	// new one. Zero means the 1s default; negative disables checking,
	// pinning each model until LRU eviction.
	SwapCheck time.Duration
	// IngestModel, when non-empty, enables streaming ingest: POST
	// /ingest appends records to an in-process ingest.Ingester whose
	// refits write generation-stamped models to this file name inside
	// ModelDir — which the swap machinery then picks up, so the daemon
	// keeps serving while models refit and swap underneath it.
	IngestModel string
	// IngestDims is the record dimensionality of the ingest stream
	// (required when IngestModel is set).
	IngestDims int
	// RefitEvery triggers a background refit whenever that many records
	// have arrived since the last refit snapshot; 0 refits only on
	// explicit POST /ingest?refit=1 triggers.
	RefitEvery int
}

func (c *Config) fill() {
	if c.CacheCap < 1 {
		c.CacheCap = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Inflight < 1 {
		c.Inflight = 8
	}
	if c.Chunk < 1 {
		c.Chunk = 8192
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 30
	}
	if c.SlowN < 1 {
		c.SlowN = 16
	}
	if c.CoalesceMax < 1 {
		c.CoalesceMax = 512
	}
	if c.TraceRing < 1 {
		c.TraceRing = 64
	}
	if c.ProfileInterval <= 0 {
		c.ProfileInterval = time.Minute
	}
	if c.ProfileCPU <= 0 {
		c.ProfileCPU = 5 * time.Second
	}
	if c.ProfileCPU > c.ProfileInterval {
		c.ProfileCPU = c.ProfileInterval
	}
	if c.ProfileKeep < 1 {
		c.ProfileKeep = 16
	}
	if c.SwapCheck == 0 {
		c.SwapCheck = time.Second
	}
}

// Daemon serves saved models for batch assignment.
type Daemon struct {
	cfg Config
	rec *obs.Recorder
	sem chan struct{} // bounds in-flight /assign work
	co  *coalescer    // nil unless CoalesceWindow > 0

	alog     *accessLog
	slow     *slowRing
	idSeq    atomic.Int64
	idPrefix string
	draining atomic.Bool

	traces      *obs.TraceRing // nil unless TraceSample > 0
	traceStride int64          // head-sample every traceStride-th request
	traceSeq    atomic.Int64
	prof        *profiler // nil unless ProfileDir is set

	ing   *ingest.Ingester // nil unless IngestModel is set
	swaps sync.WaitGroup   // in-flight background swap checks

	mu    sync.Mutex
	cache map[string]*list.Element // resolved path -> entry
	lru   *list.List               // front = most recent; values are *cacheSlot

	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

type cacheSlot struct {
	path string
	m    *model
}

// New builds a daemon and binds its listener; call Serve to start
// handling requests.
func New(cfg Config) (*Daemon, error) {
	cfg.fill()
	if cfg.ModelDir == "" {
		return nil, errors.New("pmafiad: a model directory is required")
	}
	st, err := os.Stat(cfg.ModelDir)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("pmafiad: %s is not a directory", cfg.ModelDir)
	}
	d := &Daemon{
		cfg:      cfg,
		rec:      obs.New(),
		sem:      make(chan struct{}, cfg.Inflight),
		alog:     newAccessLog(cfg.AccessLog),
		slow:     newSlowRing(cfg.SlowN),
		idPrefix: idPrefix(),
		cache:    make(map[string]*list.Element),
		lru:      list.New(),
		done:     make(chan struct{}),
	}
	if cfg.TraceSample > 0 {
		// The slow class is at least as large as the slow ring, so every
		// /debug/slow entry's trace resolves at /debug/trace/{id}.
		d.traces = obs.NewTraceRing(cfg.TraceRing, cfg.SlowN)
		d.traceStride = int64(math.Round(1 / cfg.TraceSample))
		if d.traceStride < 1 {
			d.traceStride = 1
		}
	}
	if cfg.CoalesceWindow > 0 {
		d.co = newCoalescer(d.rec, d.traces, cfg.CoalesceWindow, cfg.Chunk)
	}
	if cfg.ProfileDir != "" {
		d.prof, err = newProfiler(cfg.ProfileDir, cfg.ProfileInterval, cfg.ProfileCPU, cfg.ProfileKeep, d.rec)
		if err != nil {
			return nil, fmt.Errorf("pmafiad: profile dir: %w", err)
		}
	}
	if cfg.IngestModel != "" {
		if strings.Contains(cfg.IngestModel, "..") || strings.ContainsAny(cfg.IngestModel, `/\`) {
			return nil, fmt.Errorf("pmafiad: ingest model name %q escapes the model directory", cfg.IngestModel)
		}
		d.ing, err = ingest.New(cfg.IngestDims, ingest.Config{
			Dir:        cfg.ModelDir,
			Model:      cfg.IngestModel,
			RefitEvery: cfg.RefitEvery,
			Recorder:   d.rec,
		})
		if err != nil {
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", d.instrument("healthz", d.healthz))
	mux.HandleFunc("/readyz", d.instrument("readyz", d.readyz))
	mux.HandleFunc("/models", d.instrument("models", d.models))
	mux.HandleFunc("/assign", d.instrument("assign", d.assign))
	mux.HandleFunc("/ingest", d.instrument("ingest", d.ingestHandler))
	mux.HandleFunc("/debug/slow", d.instrument("debug_slow", d.debugSlow))
	mux.HandleFunc("/debug/trace", d.instrument("debug_trace", d.debugTrace))
	mux.HandleFunc("/debug/trace/", d.instrument("debug_trace", d.debugTrace))
	mux.HandleFunc("/debug/profiles", d.instrument("debug_profiles", d.debugProfiles))
	mux.HandleFunc("/debug/profiles/", d.instrument("debug_profiles", d.debugProfiles))
	// The telemetry exposition is the shared obs handler; the daemon's
	// request histograms and counters surface there alongside any
	// engine counters.
	mux.Handle("/metrics", d.instrument("metrics", serve.Handler(d.rec).ServeHTTP))
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	d.srv = &http.Server{
		Handler:           mux,
		ReadTimeout:       cfg.Timeout,
		WriteTimeout:      cfg.Timeout,
		ReadHeaderTimeout: 5 * time.Second,
	}
	d.ln, err = net.Listen("tcp", cfg.Addr)
	if err != nil {
		d.prof.close()
		return nil, err
	}
	return d, nil
}

// Addr returns the bound listen address.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// Recorder exposes the daemon's observer — the load harness reads the
// serving histograms from it directly instead of re-parsing /metrics.
func (d *Daemon) Recorder() *obs.Recorder { return d.rec }

// Serve runs the server in a background goroutine.
func (d *Daemon) Serve() {
	go func() {
		defer close(d.done)
		d.srv.Serve(d.ln) // http.ErrServerClosed on shutdown
	}()
}

// Shutdown drains the daemon gracefully: /readyz flips to 503 first
// (a fronting load balancer sees the node as gone while in-flight
// requests finish), pending coalesce batches flush so no waiter is
// abandoned holding the server open, then the listener closes,
// in-flight requests drain, background swap checks and any in-flight
// refit finish, the serve goroutine exits, and the access log is
// flushed.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.draining.Store(true)
	if d.co != nil {
		d.co.drain()
	}
	err := d.srv.Shutdown(ctx)
	<-d.done
	d.swaps.Wait()
	if d.ing != nil {
		d.ing.Close()
	}
	d.prof.close()
	if ferr := d.alog.flush(); err == nil {
		err = ferr
	}
	return err
}

// resolve maps a request's model name to a path inside the model
// directory, rejecting traversal outside it.
func (d *Daemon) resolve(name string) (string, error) {
	if name == "" {
		return "", errors.New("missing ?model=")
	}
	if strings.Contains(name, "..") || strings.ContainsAny(name, `/\`) {
		return "", fmt.Errorf("model name %q escapes the model directory", name)
	}
	return filepath.Join(d.cfg.ModelDir, name), nil
}

// get returns the current compiled generation of the cached (or
// freshly loaded) model for path, updating the LRU order and the
// hit/miss counters. On a hit it also schedules a rate-limited
// freshness check, so an overwritten file is picked up and hot-swapped
// instead of staying pinned until eviction; the returned generation is
// the one this request serves end to end regardless of any swap.
func (d *Daemon) get(path string) (*compiled, error) {
	d.mu.Lock()
	if el, ok := d.cache[path]; ok {
		d.lru.MoveToFront(el)
		d.mu.Unlock()
		d.rec.Add(0, obs.CtrAssignCacheHit, 1)
		m := el.Value.(*cacheSlot).m
		cx, err := m.ensure()
		if err != nil {
			d.evict(path, el)
			return nil, err
		}
		d.freshen(m)
		return cx, nil
	}
	m := newModel(path)
	el := d.lru.PushFront(&cacheSlot{path: path, m: m})
	d.cache[path] = el
	for d.lru.Len() > d.cfg.CacheCap {
		old := d.lru.Back()
		d.lru.Remove(old)
		delete(d.cache, old.Value.(*cacheSlot).path)
	}
	d.mu.Unlock()
	d.rec.Add(0, obs.CtrAssignCacheMiss, 1)

	cx, err := m.ensure()
	if err != nil {
		d.evict(path, el)
		return nil, err
	}
	m.lastCheck.Store(time.Now().UnixNano())
	return cx, nil
}

// evict drops a failed load from the cache so the entry is not pinned:
// the file may be replaced (atomically, by modelio.Save) and should
// reload. The identity check keeps a racing re-insert for the same
// path alive.
func (d *Daemon) evict(path string, el *list.Element) {
	d.mu.Lock()
	if el2, ok := d.cache[path]; ok && el2 == el {
		d.lru.Remove(el)
		delete(d.cache, path)
	}
	d.mu.Unlock()
}

// residentModels counts cache entries whose load completed
// successfully — the model-cache state /readyz reports.
func (d *Daemon) residentModels() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, el := range d.cache {
		if el.Value.(*cacheSlot).m.loaded() {
			n++
		}
	}
	return n
}

func (d *Daemon) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyState is the /readyz body.
type readyState struct {
	Ready          bool `json:"ready"`
	Draining       bool `json:"draining"`
	ModelsResident int  `json:"models_resident"`
}

// readyz is the readiness probe: 200 while the daemon accepts work,
// 503 once draining. The body reflects the model cache, so a fleet
// scheduler can prefer warm nodes.
func (d *Daemon) readyz(w http.ResponseWriter, _ *http.Request) {
	st := readyState{
		Draining:       d.draining.Load(),
		ModelsResident: d.residentModels(),
	}
	st.Ready = !st.Draining
	w.Header().Set("Content-Type", "application/json")
	if !st.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(st)
}

// modelInfo is one row of the /models listing.
type modelInfo struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	Loaded bool   `json:"loaded"`
	// Filled only when the model is resident.
	Dims     int    `json:"dims,omitempty"`
	Clusters int    `json:"clusters,omitempty"`
	Records  int    `json:"records,omitempty"`
	Gen      uint64 `json:"generation,omitempty"`
}

func (d *Daemon) models(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	ents, err := os.ReadDir(d.cfg.ModelDir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resident := map[string]*model{}
	d.mu.Lock()
	for path, el := range d.cache {
		resident[path] = el.Value.(*cacheSlot).m
	}
	d.mu.Unlock()
	out := []modelInfo{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pmfm") {
			continue
		}
		info := modelInfo{Name: e.Name()}
		if fi, err := e.Info(); err == nil {
			info.Bytes = fi.Size()
		}
		if m, ok := resident[filepath.Join(d.cfg.ModelDir, e.Name())]; ok {
			if cx := m.cur.Load(); cx != nil {
				info.Loaded = true
				info.Dims = cx.ix.Dims()
				info.Clusters = cx.ix.Clusters()
				info.Records = cx.n
				info.Gen = cx.gen
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// assignResponse is the JSON reply for CSV requests.
type assignResponse struct {
	Model    string  `json:"model"`
	Records  int     `json:"records"`
	Outliers int     `json:"outliers"`
	Labels   []int32 `json:"labels"`
}

// assign labels the records in the request body against the named
// model. A text/csv body (the default) yields a JSON response; an
// application/octet-stream body of little-endian float64s (row-major,
// the model's dimensionality) yields a stream of little-endian int32
// labels.
func (d *Daemon) assign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	st := statsOf(r.Context())
	// Shed load while the client is still listening: a brief queue wait
	// absorbs bursts, then 503 instead of stalling until ReadTimeout.
	enqueued := time.Now()
	queue := time.NewTimer(queueWait)
	defer queue.Stop()
	select {
	case d.sem <- struct{}{}:
		defer func() { <-d.sem }()
		admitted := time.Now()
		st.queueSeconds = admitted.Sub(enqueued).Seconds()
		st.stage("queue", enqueued, admitted)
		d.rec.Observe(0, obs.HistAssignQueueSeconds, st.queueSeconds)
	case <-queue.C:
		http.Error(w, "server busy", http.StatusServiceUnavailable)
		return
	case <-r.Context().Done():
		// Client gave up while queued; nothing useful to write.
		return
	}
	path, err := d.resolve(r.URL.Query().Get("model"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st.model = filepath.Base(path)
	cx, err := d.get(path)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, os.ErrNotExist) {
			code = http.StatusNotFound
		} else if errors.Is(err, modelio.ErrCorrupt) {
			code = http.StatusUnprocessableEntity
		}
		http.Error(w, err.Error(), code)
		return
	}

	decodeStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, d.cfg.MaxBody)
	ct := r.Header.Get("Content-Type")
	binaryIn := strings.HasPrefix(ct, "application/octet-stream")
	frameIn := strings.HasPrefix(ct, ContentTypeFrame)
	var src dataset.Source
	var frameVals []float64
	switch {
	case frameIn:
		frameVals, err = decodeFrame(body, cx.ix.Dims(), d.cfg.MaxBody)
	case binaryIn:
		src, err = binaryMatrix(body, cx.ix.Dims())
	default:
		src, _, err = dataset.ReadCSV(body)
	}
	decodeEnd := time.Now()
	st.decodeSeconds = decodeEnd.Sub(decodeStart).Seconds()
	if frameIn {
		st.stage("frame-decode", decodeStart, decodeEnd)
	} else {
		st.stage("decode", decodeStart, decodeEnd)
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.As(err, new(*http.MaxBytesError)) || errors.Is(err, ErrFrameTooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), code)
		return
	}
	assignStart := time.Now()
	var labels []int32
	coalesced := false
	if frameIn {
		d.rec.Add(0, obs.CtrAssignFrames, 1)
		records := len(frameVals) / cx.ix.Dims()
		if d.co != nil && records <= d.cfg.CoalesceMax {
			// submit records the coalesce-wait and kernel stages itself —
			// the kernel window is shared with the batch's co-riders.
			coalesced = true
			labels, err = d.co.submit(r.Context(), cx, frameVals)
		} else {
			labels, err = cx.ix.AssignSource(
				&dataset.Matrix{D: cx.ix.Dims(), Values: frameVals},
				d.cfg.Chunk, d.cfg.Workers)
		}
	} else {
		labels, err = cx.ix.AssignSource(src, d.cfg.Chunk, d.cfg.Workers)
	}
	st.assignSeconds = time.Since(assignStart).Seconds()
	if !coalesced {
		st.stage("kernel", assignStart, time.Now())
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Client gave up while coalesced; nothing useful to write.
			return
		}
		// The only other assignment failure on an in-memory source is a
		// dimensionality mismatch — a client error.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st.records = len(labels)
	d.rec.Add(0, obs.CtrAssignRecords, int64(len(labels)))
	d.rec.Add(0, obs.CtrAssignBatches, 1)

	encodeStart := time.Now()
	defer func() {
		encodeEnd := time.Now()
		st.encodeSeconds = encodeEnd.Sub(encodeStart).Seconds()
		st.stage("encode", encodeStart, encodeEnd)
	}()
	if binaryIn || frameIn {
		w.Header().Set("Content-Type", "application/octet-stream")
		buf := make([]byte, 4*len(labels))
		for i, l := range labels {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(l))
		}
		w.Write(buf)
		return
	}
	resp := assignResponse{
		Model:   filepath.Base(path),
		Records: len(labels),
		Labels:  labels,
	}
	for _, l := range labels {
		if l < 0 {
			resp.Outliers++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// binaryMatrix decodes a row-major little-endian float64 body into an
// in-memory matrix of d-dimensional records.
func binaryMatrix(r io.Reader, d int) (*dataset.Matrix, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("binary body of %d bytes is not a whole number of float64s", len(raw))
	}
	vals := make([]float64, len(raw)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	if len(vals)%d != 0 {
		return nil, fmt.Errorf("%d values do not divide into %d-dim records", len(vals), d)
	}
	return &dataset.Matrix{D: d, Values: vals}, nil
}
