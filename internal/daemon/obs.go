package daemon

// Request-level observability: the instrument middleware wraps every
// route with an X-Request-ID, per-route and per-model histograms,
// status-code counters, one structured access-log line, and a bid for
// the slow-request ring.

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"pmafia/internal/obs"
)

// reqStats is the per-request scratch the handlers fill in and the
// middleware reads back after the handler returns. It travels via the
// request context, so handler signatures stay plain http.HandlerFunc.
type reqStats struct {
	model         string // model name, /assign only
	records       int    // records labeled, /assign only
	queueSeconds  float64
	decodeSeconds float64
	assignSeconds float64
	encodeSeconds float64
	// tr is the request's trace, nil when tracing is off — the stage
	// helper below then no-ops, keeping the hot path allocation-free.
	tr    *obs.ServeTrace
	epoch time.Time // the trace ring's epoch, for wall→ring time
}

// stage records one stage span on the request's trace; a no-op (one
// pointer test, zero allocations) when tracing is off.
func (st *reqStats) stage(name string, start, end time.Time) {
	if st.tr == nil {
		return
	}
	st.tr.Stage(name, start.Sub(st.epoch).Seconds(), end.Sub(st.epoch).Seconds())
}

type statsKey struct{}

// statsOf returns the request's stats scratch, or a throwaway one if
// the handler runs outside the middleware (tests calling handlers
// directly).
func statsOf(ctx context.Context) *reqStats {
	if st, ok := ctx.Value(statsKey{}).(*reqStats); ok {
		return st
	}
	return &reqStats{}
}

// statusWriter captures the status code and body size a handler
// writes, defaulting to 200 for handlers that never call WriteHeader.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// idPrefix draws a random per-process prefix so request IDs from
// different daemon instances never collide.
func idPrefix() string {
	var b [6]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// validRequestID sanitizes a client-supplied X-Request-ID before it
// is echoed into response headers and JSON access-log lines: at most
// 128 bytes, every byte visible ASCII (0x21–0x7E) — no control
// characters, spaces, or high bytes that could smuggle header
// injections or mangle the log.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= 0x20 || id[i] >= 0x7f {
			return false
		}
	}
	return true
}

// requestID returns the client-provided X-Request-ID if it passes
// sanitization, or generates one (process prefix + sequence number).
func (d *Daemon) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("%s-%06d", d.idPrefix, d.idSeq.Add(1))
}

// instrument wraps a handler with the full request-observability
// stack. Every route goes through here, so "one access-log line per
// request" and "every response carries an X-Request-ID" hold globally.
// A handler panic is recovered: the response becomes a 500 (when
// nothing was written yet), the metrics / access-log / slow-ring /
// trace invariants still hold for the request, and the panic message
// plus its stack land in the access-log line. http.ErrAbortHandler is
// the exception: net/http uses it as the abort-the-connection
// sentinel, so it is re-panicked (after recording the request) rather
// than converted to a 500.
func (d *Daemon) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := d.requestID(r)
		w.Header().Set("X-Request-ID", id)
		st := &reqStats{}
		var traceID string
		var sampled bool
		if d.traces != nil {
			traceID, sampled = d.startTrace(w, r, st, route, id, start)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			panicked := recover()
			var stack []byte
			if panicked != nil {
				if panicked == http.ErrAbortHandler {
					// net/http's sentinel for "abort this connection" must
					// keep propagating — swallowing it would turn an
					// intentional abort into a spurious 500. Record the
					// request first so the one-line-per-request invariant
					// still holds.
					d.finish(route, id, traceID, sampled, start, st, sw, r, panicked, nil)
					panic(panicked)
				}
				stack = debug.Stack()
				if !sw.wrote {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			}
			d.finish(route, id, traceID, sampled, start, st, sw, r, panicked, stack)
		}()
		h(sw, r.WithContext(context.WithValue(r.Context(), statsKey{}, st)))
	}
}

// finish is the post-handler half of instrument: histograms and
// status counters, the trace-retention decision (plus exemplars for
// retained traces), the access-log line, and the slow-ring bid.
func (d *Daemon) finish(route, id, traceID string, sampled bool, start time.Time, st *reqStats, sw *statusWriter, r *http.Request, panicked any, stack []byte) {
	end := time.Now()
	dur := end.Sub(start).Seconds()

	d.rec.Observe(0, obs.HistRouteSeconds(route), dur)
	d.rec.Add(0, obs.CtrHTTPStatus(route, sw.status), 1)
	if st.model != "" {
		d.rec.Observe(0, obs.HistModelSeconds(st.model), dur)
		if st.records > 0 {
			d.rec.Observe(0, obs.HistModelRecords(st.model), float64(st.records))
		}
	}

	if st.tr != nil {
		st.tr.Status = sw.status
		st.tr.Model = st.model
		st.tr.Records = st.records
		st.tr.End = end.Sub(st.epoch).Seconds()
		retained, asErr, asSlow := d.traces.Offer(st.tr, sampled)
		d.rec.Add(0, obs.CtrTraceRequests, 1)
		if sampled {
			d.rec.Add(0, obs.CtrTraceSampled, 1)
		}
		if retained {
			d.rec.Add(0, obs.CtrTraceRetained, 1)
			if asErr {
				d.rec.Add(0, obs.CtrTraceRetainedError, 1)
			}
			if asSlow {
				d.rec.Add(0, obs.CtrTraceRetainedSlow, 1)
			}
			// Exemplars point only at retained traces — keyed by the
			// request ID, the ring's lookup key — so following one from a
			// dashboard never dead-ends on an unsampled request.
			d.rec.SetExemplar(obs.HistRouteSeconds(route), dur, id)
			if st.model != "" {
				d.rec.SetExemplar(obs.HistModelSeconds(st.model), dur, id)
			}
		}
	}

	panicMsg := ""
	if panicked != nil {
		panicMsg = fmt.Sprint(panicked)
	}
	now := end.UTC().Format(time.RFC3339Nano)
	d.alog.write(accessRecord{
		Time:            now,
		ID:              id,
		TraceID:         traceID,
		Route:           route,
		Method:          r.Method,
		Model:           st.model,
		Records:         st.records,
		Status:          sw.status,
		Bytes:           sw.bytes,
		QueueSeconds:    st.queueSeconds,
		DecodeSeconds:   st.decodeSeconds,
		AssignSeconds:   st.assignSeconds,
		EncodeSeconds:   st.encodeSeconds,
		DurationSeconds: dur,
		Panic:           panicMsg,
		PanicStack:      string(stack),
	})
	d.slow.offer(slowEntry{
		ID:            id,
		TraceID:       traceID,
		Time:          now,
		Route:         route,
		Method:        r.Method,
		Model:         st.model,
		Records:       st.records,
		Status:        sw.status,
		Seconds:       dur,
		QueueSeconds:  st.queueSeconds,
		DecodeSeconds: st.decodeSeconds,
		AssignSeconds: st.assignSeconds,
		EncodeSeconds: st.encodeSeconds,
	})
}

// accessRecord is one structured access-log line, carrying the full
// per-stage timing breakdown alongside the total.
type accessRecord struct {
	Time            string  `json:"time"`
	ID              string  `json:"id"`
	TraceID         string  `json:"trace_id,omitempty"`
	Route           string  `json:"route"`
	Method          string  `json:"method"`
	Model           string  `json:"model,omitempty"`
	Records         int     `json:"records,omitempty"`
	Status          int     `json:"status"`
	Bytes           int64   `json:"bytes"`
	QueueSeconds    float64 `json:"queue_seconds"`
	DecodeSeconds   float64 `json:"decode_seconds"`
	AssignSeconds   float64 `json:"assign_seconds"`
	EncodeSeconds   float64 `json:"encode_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	Panic           string  `json:"panic,omitempty"`
	PanicStack      string  `json:"panic_stack,omitempty"`
}

// accessLog serializes JSON access-log lines onto one writer. Writes
// are buffered; Shutdown flushes. A nil writer disables logging at
// zero cost per request beyond the nil check.
type accessLog struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
}

func newAccessLog(w io.Writer) *accessLog {
	if w == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	return &accessLog{bw: bw, enc: json.NewEncoder(bw)}
}

func (a *accessLog) write(rec accessRecord) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.enc.Encode(rec) // Encode appends the newline: one line per request
	a.mu.Unlock()
}

func (a *accessLog) flush() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bw.Flush()
}

// slowEntry is one /debug/slow row: the request identity plus its
// timing breakdown.
type slowEntry struct {
	ID            string  `json:"id"`
	TraceID       string  `json:"trace_id,omitempty"`
	Time          string  `json:"time"`
	Route         string  `json:"route"`
	Method        string  `json:"method"`
	Model         string  `json:"model,omitempty"`
	Records       int     `json:"records,omitempty"`
	Status        int     `json:"status"`
	Seconds       float64 `json:"seconds"`
	QueueSeconds  float64 `json:"queue_seconds"`
	DecodeSeconds float64 `json:"decode_seconds"`
	AssignSeconds float64 `json:"assign_seconds"`
	EncodeSeconds float64 `json:"encode_seconds"`
}

// slowRing keeps the cap slowest requests seen so far, sorted slowest
// first. It is a ring in spirit (bounded, old fast entries fall out),
// implemented as a small sorted slice — cap is tiny.
type slowRing struct {
	mu      sync.Mutex
	cap     int
	entries []slowEntry
}

func newSlowRing(cap int) *slowRing {
	return &slowRing{cap: cap}
}

// offer inserts the entry if it ranks among the slowest cap requests.
func (s *slowRing) offer(e slowEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == s.cap && e.Seconds <= s.entries[s.cap-1].Seconds {
		return
	}
	i := sort.Search(len(s.entries), func(i int) bool {
		return s.entries[i].Seconds < e.Seconds
	})
	s.entries = append(s.entries, slowEntry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	if len(s.entries) > s.cap {
		s.entries = s.entries[:s.cap]
	}
}

// snapshot returns the ring's entries, slowest first.
func (s *slowRing) snapshot() []slowEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]slowEntry, len(s.entries))
	copy(out, s.entries)
	return out
}

// debugSlow serves the slow-request ring as JSON, slowest first.
func (d *Daemon) debugSlow(w http.ResponseWriter, _ *http.Request) {
	entries := d.slow.snapshot()
	if entries == nil {
		entries = []slowEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(entries)
}
