package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"pmafia/internal/obs"
)

// TestContinuousProfiling runs a daemon with an aggressive capture
// cadence and asserts the harness end to end: captures appear on
// disk, retention is pruned to ProfileKeep per kind, the
// /debug/profiles index and file endpoints serve them, and bad names
// are rejected.
func TestContinuousProfiling(t *testing.T) {
	dir := t.TempDir()
	prof := t.TempDir()
	d, base := startDaemon(t, Config{
		ModelDir:        dir,
		ProfileDir:      prof,
		ProfileInterval: 20 * time.Millisecond,
		ProfileCPU:      10 * time.Millisecond,
		ProfileKeep:     2,
	})
	defer d.Shutdown(context.Background())

	// Wait until the loop has completed enough cycles to force a prune
	// (keep+1 captures of each kind).
	deadline := time.Now().Add(15 * time.Second)
	for {
		met := d.rec.Metrics()
		if met.Counters[obs.CtrProfileCPU] >= 3 && met.Counters[obs.CtrProfileHeap] >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("profiler made no progress: counters %v", met.Counters)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var index []profileInfo
	_, raw := get(t, base+"/debug/profiles")
	if err := json.Unmarshal(raw, &index); err != nil {
		t.Fatalf("/debug/profiles is not valid JSON: %v", err)
	}
	kinds := map[string]int{}
	for _, info := range index {
		kinds[info.Kind]++
		if !profileName.MatchString(info.Name) {
			t.Errorf("index entry %q does not match the capture-name shape", info.Name)
		}
	}
	for _, kind := range []string{"cpu", "heap"} {
		if kinds[kind] == 0 || kinds[kind] > 2 {
			t.Errorf("index has %d %s captures, want 1..ProfileKeep=2", kinds[kind], kind)
		}
	}
	if met := d.rec.Metrics(); met.Counters[obs.CtrProfilePruned] == 0 {
		t.Error("three cycles with keep=2 never pruned")
	}

	// A heap capture round-trips through the file endpoint. (CPU
	// captures may still be in progress; heap files are complete the
	// moment they are indexed.)
	var heapName string
	for _, info := range index {
		if info.Kind == "heap" {
			heapName = info.Name
			break
		}
	}
	resp, raw := get(t, base+"/debug/profiles/"+heapName)
	if resp.StatusCode != http.StatusOK || len(raw) == 0 {
		t.Errorf("fetching %s: status %d, %d bytes", heapName, resp.StatusCode, len(raw))
	}

	if resp, _ := get(t, base+"/debug/profiles/evil.txt"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-capture name served %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, base+"/debug/profiles/cpu-00000000T000000.000-000000.pprof"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("well-formed but absent name served %d, want 404", resp.StatusCode)
	}
	for _, bad := range []string{"../secret.pprof", "cpu-x/../../etc-000001.pprof", "cpu-1-1.pprof.bak"} {
		if profileName.MatchString(bad) {
			t.Errorf("profileName accepted %q", bad)
		}
	}

	// Shutdown stops the capture loop promptly even mid-CPU-capture.
	start := time.Now()
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("shutdown blocked %.1fs on the profiler", waited.Seconds())
	}
}

// TestDebugProfilesDisabled: without -profile-dir the endpoint
// explains itself with a 404 rather than an empty index.
func TestDebugProfilesDisabled(t *testing.T) {
	d, base := startDaemon(t, Config{ModelDir: t.TempDir()})
	defer d.Shutdown(context.Background())
	resp, raw := get(t, base+"/debug/profiles")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if want := "profiling disabled"; !strings.Contains(string(raw), want) {
		t.Errorf("body %q does not mention %q", raw, want)
	}
}
