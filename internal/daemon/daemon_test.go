package daemon

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/mafia"
	"pmafia/internal/modelio"
	"pmafia/internal/obs"
)

// fitModel fits a small data set and saves it under dir, returning the
// model name, the fitted result, and the training data.
func fitModel(t *testing.T, dir, name string, seed uint64) (*mafia.Result, *dataset.Matrix) {
	t.Helper()
	ext := []dataset.Range{{Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}}
	m, _, err := datagen.Generate(datagen.Spec{
		Dims:     5,
		Records:  2000,
		Clusters: []datagen.Cluster{datagen.UniformBox([]int{0, 2, 4}, ext, 0)},
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := modelio.Save(filepath.Join(dir, name), res); err != nil {
		t.Fatal(err)
	}
	return res, m
}

// startDaemon binds a daemon on a free port and returns its base URL
// plus a shutdown func.
func startDaemon(t *testing.T, cfg Config) (*Daemon, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Serve()
	return d, "http://" + d.Addr()
}

func csvBody(m *dataset.Matrix) []byte {
	var b bytes.Buffer
	for i := 0; i < m.NumRecords(); i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

func postAssign(t *testing.T, base, model, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/assign?model="+model, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestAssignMatchesOracle(t *testing.T) {
	dir := t.TempDir()
	res, m := fitModel(t, dir, "a.pmfm", 1)
	d, base := startDaemon(t, Config{ModelDir: dir})
	defer d.Shutdown(context.Background())

	want, err := res.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}

	// CSV in, JSON out.
	resp, raw := postAssign(t, base, "a.pmfm", "text/csv", csvBody(m))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var ar assignResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Records != len(want) {
		t.Fatalf("%d records labeled, want %d", ar.Records, len(want))
	}
	for i := range want {
		if ar.Labels[i] != want[i] {
			t.Fatalf("record %d: daemon %d, oracle %d", i, ar.Labels[i], want[i])
		}
	}

	// Binary in, binary out.
	bin := make([]byte, 8*len(m.Values))
	for i, v := range m.Values {
		binary.LittleEndian.PutUint64(bin[8*i:], math.Float64bits(v))
	}
	resp, raw = postAssign(t, base, "a.pmfm", "application/octet-stream", bin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary status %d: %s", resp.StatusCode, raw)
	}
	if len(raw) != 4*len(want) {
		t.Fatalf("binary reply of %d bytes for %d labels", len(raw), len(want))
	}
	for i := range want {
		if got := int32(binary.LittleEndian.Uint32(raw[4*i:])); got != want[i] {
			t.Fatalf("binary record %d: daemon %d, oracle %d", i, got, want[i])
		}
	}
}

func TestAssignErrors(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 2)
	if err := os.WriteFile(filepath.Join(dir, "bad.pmfm"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, base := startDaemon(t, Config{ModelDir: dir})
	defer d.Shutdown(context.Background())

	resp, _ := postAssign(t, base, "missing.pmfm", "text/csv", []byte("1,2,3,4,5\n"))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing model: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postAssign(t, base, "..%2Fescape.pmfm", "text/csv", []byte("1\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("traversal: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postAssign(t, base, "bad.pmfm", "text/csv", []byte("1,2,3,4,5\n"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("corrupt model: status %d, want 422", resp.StatusCode)
	}
	// Wrong dimensionality is a client error.
	resp, raw := postAssign(t, base, "a.pmfm", "text/csv", []byte("1,2\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dims mismatch: status %d (%s), want 400", resp.StatusCode, raw)
	}
	// GET on /assign is rejected.
	getResp, err := http.Get(base + "/assign?model=a.pmfm")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /assign: status %d, want 405", getResp.StatusCode)
	}
}

func TestModelsAndCacheLRU(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 3)
	fitModel(t, dir, "b.pmfm", 4)
	fitModel(t, dir, "c.pmfm", 5)
	d, base := startDaemon(t, Config{ModelDir: dir, CacheCap: 2})
	defer d.Shutdown(context.Background())

	row := []byte("1,2,3,4,5\n")
	for _, name := range []string{"a.pmfm", "b.pmfm", "c.pmfm", "a.pmfm"} {
		if resp, raw := postAssign(t, base, name, "text/csv", row); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, raw)
		}
	}
	// Cap 2: a evicted by c, so the fourth request misses again.
	hits, misses := counterPair(t, base)
	if misses != 4 || hits != 0 {
		t.Errorf("hit/miss = %d/%d after a,b,c,a with cap 2; want 0/4", hits, misses)
	}
	if resp, _ := postAssign(t, base, "a.pmfm", "text/csv", row); resp.StatusCode != http.StatusOK {
		t.Fatal("re-assign against a failed")
	}
	if hits, _ := counterPair(t, base); hits != 1 {
		t.Errorf("hits = %d after repeat, want 1", hits)
	}

	resp, err := http.Get(base + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var infos []modelInfo
	err = json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("/models lists %d entries, want 3", len(infos))
	}
	loaded := 0
	for _, in := range infos {
		if in.Loaded {
			loaded++
			if in.Dims != 5 {
				t.Errorf("%s: dims %d, want 5", in.Name, in.Dims)
			}
		}
	}
	if loaded != 2 {
		t.Errorf("%d models resident, cache cap is 2", loaded)
	}
}

// TestCacheHitDuringPendingLoad reproduces the publish-before-load
// window: a cache entry is visible before its loader has run. A hit in
// that window must run the load itself (or block on it), never return
// an unloaded model — the old sync.Once code once consumed the Once
// with a no-op and came back with a nil index and a nil error.
func TestCacheHitDuringPendingLoad(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 8)
	d, _ := startDaemon(t, Config{ModelDir: dir})
	defer d.Shutdown(context.Background())

	path := filepath.Join(dir, "a.pmfm")
	m := newModel(path)
	d.mu.Lock()
	d.cache[path] = d.lru.PushFront(&cacheSlot{path: path, m: m})
	d.mu.Unlock()

	got, err := d.get(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.ix == nil {
		t.Fatal("cache hit returned a model that was never loaded")
	}
	// A pending entry must not be pinned unloadable: after the hit it
	// serves /models info.
	if !m.loaded() {
		t.Error("model not marked loaded after a hit-driven load")
	}
}

// TestAssignShedsLoad verifies an overloaded daemon returns 503 while
// the client is still connected instead of queueing until a timeout.
func TestAssignShedsLoad(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 9)
	d, base := startDaemon(t, Config{ModelDir: dir, Inflight: 1})
	defer d.Shutdown(context.Background())

	d.sem <- struct{}{} // occupy the only in-flight slot
	defer func() { <-d.sem }()
	start := time.Now()
	resp, raw := postAssign(t, base, "a.pmfm", "text/csv", []byte("1,2,3,4,5\n"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, raw)
	}
	if wait := time.Since(start); wait > 10*queueWait {
		t.Errorf("503 took %v; load shedding should answer in about %v", wait, queueWait)
	}
}

// TestAssignBodyTooLarge verifies an oversized body maps to 413, not a
// generic 400.
func TestAssignBodyTooLarge(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 10)
	d, base := startDaemon(t, Config{ModelDir: dir, MaxBody: 64})
	defer d.Shutdown(context.Background())

	// Keep the oversize modest so the request fits in socket buffers
	// and the client always reads the reply cleanly.
	big := bytes.Repeat([]byte("1,2,3,4,5\n"), 20)
	resp, raw := postAssign(t, base, "a.pmfm", "text/csv", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("csv: status %d (%s), want 413", resp.StatusCode, raw)
	}
	resp, raw = postAssign(t, base, "a.pmfm", "application/octet-stream", make([]byte, 200))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("binary: status %d (%s), want 413", resp.StatusCode, raw)
	}
}

// counterPair scrapes /metrics for the assign cache counters.
func counterPair(t *testing.T, base string) (hits, misses int64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, "pmafia_assign_cache_hit %d", &v); err == nil {
			hits = v
		}
		if _, err := fmt.Sscanf(line, "pmafia_assign_cache_miss %d", &v); err == nil {
			misses = v
		}
	}
	return hits, misses
}

// TestRequestIDAndAccessLog locks the per-request contracts: every
// response carries an X-Request-ID (the client's, if it sent one),
// and every request emits exactly one JSON access-log line carrying
// that ID, the route, the model, the record count, and the status.
func TestRequestIDAndAccessLog(t *testing.T) {
	dir := t.TempDir()
	_, m := fitModel(t, dir, "a.pmfm", 11)
	var logBuf syncBuffer
	d, base := startDaemon(t, Config{ModelDir: dir, AccessLog: &logBuf})

	// A request with a caller-provided ID propagates it.
	req, err := http.NewRequest(http.MethodPost, base+"/assign?model=a.pmfm", bytes.NewReader(csvBody(m)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set("X-Request-ID", "caller-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chose-this" {
		t.Errorf("X-Request-ID = %q, want the caller's ID propagated", got)
	}

	// Requests without an ID get distinct generated ones.
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("response without an X-Request-ID")
		}
		if ids[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		ids[id] = true
	}

	// Shutdown flushes the buffered log; then: one line per request.
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d access-log lines for 4 requests:\n%s", len(lines), logBuf.String())
	}
	var recs []accessRecord
	for _, line := range lines {
		var rec accessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access-log line is not JSON: %v\n%s", err, line)
		}
		recs = append(recs, rec)
	}
	assignRec := recs[0]
	if assignRec.Route != "assign" || assignRec.ID != "caller-chose-this" ||
		assignRec.Model != "a.pmfm" || assignRec.Records != m.NumRecords() ||
		assignRec.Status != 200 || assignRec.DurationSeconds <= 0 {
		t.Errorf("assign access record = %+v", assignRec)
	}
	for _, rec := range recs[1:] {
		if rec.Route != "healthz" || rec.Status != 200 || !ids[rec.ID] {
			t.Errorf("healthz access record = %+v", rec)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the
// access log in tests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestMetricsHistograms drives traffic and asserts /metrics exposes
// per-route and per-model Prometheus histograms plus the labeled
// status-counter family.
func TestMetricsHistograms(t *testing.T) {
	dir := t.TempDir()
	_, m := fitModel(t, dir, "a.pmfm", 12)
	d, base := startDaemon(t, Config{ModelDir: dir})
	defer d.Shutdown(context.Background())

	body := csvBody(m)
	for i := 0; i < 3; i++ {
		if resp, raw := postAssign(t, base, "a.pmfm", "text/csv", body); resp.StatusCode != 200 {
			t.Fatalf("assign: %d: %s", resp.StatusCode, raw)
		}
	}
	postAssign(t, base, "missing.pmfm", "text/csv", []byte("1,2,3,4,5\n"))

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"# TYPE pmafia_http_request_seconds histogram",
		`pmafia_http_request_seconds_bucket{route="assign",le="+Inf"} 4`,
		`pmafia_http_request_seconds_count{route="assign"} 4`,
		"# TYPE pmafia_model_assign_seconds histogram",
		`pmafia_model_assign_seconds_count{model="a.pmfm"} 3`,
		"# TYPE pmafia_model_batch_records histogram",
		`pmafia_model_batch_records_bucket{model="a.pmfm",le="10000"} 3`,
		"# TYPE pmafia_http_requests_total counter",
		`pmafia_http_requests_total{route="assign",code="200"} 3`,
		`pmafia_http_requests_total{route="assign",code="404"} 1`,
		"# TYPE pmafia_assign_queue_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The merged snapshot the load harness reads agrees with /metrics.
	h := d.Recorder().Histogram(obs.HistRouteSeconds("assign"))
	if h == nil || h.Count() != 4 {
		t.Errorf("Recorder histogram count = %v, want 4", h.Count())
	}
	// The missing-model request reached /assign's model label too: the
	// model histograms only count successful assigns (records > 0).
	if rh := d.Recorder().Histogram(obs.HistModelRecords("a.pmfm")); rh == nil || rh.Count() != 3 {
		t.Error("model records histogram should have exactly the 3 successful batches")
	}
}

// TestDebugSlow checks the slow-request ring: entries arrive sorted
// slowest first, carry timing breakdowns, and the ring stays capped.
func TestDebugSlow(t *testing.T) {
	dir := t.TempDir()
	_, m := fitModel(t, dir, "a.pmfm", 13)
	d, base := startDaemon(t, Config{ModelDir: dir, SlowN: 3})
	defer d.Shutdown(context.Background())

	body := csvBody(m)
	for i := 0; i < 5; i++ {
		postAssign(t, base, "a.pmfm", "text/csv", body)
	}
	resp, err := http.Get(base + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var entries []slowEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatalf("/debug/slow is not JSON: %v\n%s", err, raw)
	}
	if len(entries) != 3 {
		t.Fatalf("/debug/slow has %d entries with SlowN=3 after 5 requests", len(entries))
	}
	for i, e := range entries {
		if i > 0 && e.Seconds > entries[i-1].Seconds {
			t.Errorf("ring not sorted slowest-first at %d: %v after %v", i, e.Seconds, entries[i-1].Seconds)
		}
		if e.Route != "assign" || e.ID == "" || e.Seconds <= 0 {
			t.Errorf("slow entry %d = %+v", i, e)
		}
		// The breakdown is filled in: an assign spends time in decode and
		// assignment, and the phases sum to no more than the total.
		if e.DecodeSeconds <= 0 || e.AssignSeconds <= 0 {
			t.Errorf("entry %d missing timing breakdown: %+v", i, e)
		}
		if sum := e.QueueSeconds + e.DecodeSeconds + e.AssignSeconds + e.EncodeSeconds; sum > e.Seconds {
			t.Errorf("entry %d phase sum %v exceeds total %v", i, sum, e.Seconds)
		}
	}
}

// TestReadyzDrain: /readyz serves 200 with cache state while serving
// and 503 once draining; Shutdown flushes the access log.
func TestReadyzDrain(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 14)
	var logBuf syncBuffer
	d, base := startDaemon(t, Config{ModelDir: dir, AccessLog: &logBuf})

	readyz := func() (int, readyState) {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var st readyState
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	if code, st := readyz(); code != 200 || !st.Ready || st.ModelsResident != 0 {
		t.Errorf("fresh readyz = %d %+v, want 200 ready with no resident models", code, st)
	}
	postAssign(t, base, "a.pmfm", "text/csv", []byte("1,2,3,4,5\n"))
	if code, st := readyz(); code != 200 || st.ModelsResident != 1 {
		t.Errorf("warm readyz = %d %+v, want 1 resident model", code, st)
	}

	// Flip draining directly (Shutdown also closes the listener, which
	// would make the 503 unobservable over HTTP).
	d.draining.Store(true)
	if code, st := readyz(); code != 503 || st.Ready || !st.Draining {
		t.Errorf("draining readyz = %d %+v, want 503 draining", code, st)
	}

	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logBuf.String(), `"route":"readyz"`) {
		t.Error("Shutdown did not flush the access log")
	}
}

// TestAllEmittedMetricsAreRegistered drives every route and asserts
// each counter and histogram the daemon emits belongs to the closed
// obs name registry — an unregistered emission is a typo.
func TestAllEmittedMetricsAreRegistered(t *testing.T) {
	dir := t.TempDir()
	res, m := fitModel(t, dir, "a.pmfm", 15)
	d, base := startDaemon(t, Config{
		ModelDir:        dir,
		TraceSample:     1,
		SwapCheck:       time.Millisecond,
		IngestModel:     "stream.pmfm",
		IngestDims:      5,
		ProfileDir:      t.TempDir(),
		ProfileInterval: 5 * time.Millisecond,
		ProfileCPU:      2 * time.Millisecond,
	})
	defer d.Shutdown(context.Background())

	postAssign(t, base, "a.pmfm", "text/csv", csvBody(m))
	postAssign(t, base, "missing.pmfm", "text/csv", []byte("1\n"))
	// Stream records in and refit so the ingest.* families are emitted.
	resp, err := http.Post(base+"/ingest?refit=1", "text/csv", bytes.NewReader(csvBody(m)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	// Overwrite the served model and keep requesting until the
	// freshness check hot-swaps it, emitting the swap.* families.
	if err := modelio.SaveMeta(filepath.Join(dir, "a.pmfm"), res, 7); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		postAssign(t, base, "a.pmfm", "text/csv", []byte("1,2,3,4,5\n"))
		if d.Recorder().Counter(obs.CtrSwapSwaps) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("model overwrite never swapped in")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Let the profiler finish at least one capture cycle so the
	// profile.* counters are emitted too.
	for deadline := time.Now().Add(10 * time.Second); ; {
		met := d.Recorder().Metrics()
		if met.Counters[obs.CtrProfileCPU] >= 1 && met.Counters[obs.CtrProfileHeap] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("profiler never captured")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, route := range []string{"/healthz", "/readyz", "/models", "/metrics", "/debug/slow", "/debug/trace", "/debug/profiles"} {
		resp, err := http.Get(base + route)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	met := d.Recorder().Metrics()
	for name := range met.Counters {
		if !obs.IsRegistered(name) {
			t.Errorf("daemon emitted unregistered counter %q", name)
		}
	}
	for name := range d.Recorder().Histograms() {
		if !obs.IsRegisteredHistogram(name) {
			t.Errorf("daemon emitted unregistered histogram %q", name)
		}
	}
	for name := range d.Recorder().Gauges() {
		if !obs.IsRegisteredGauge(name) {
			t.Errorf("daemon emitted unregistered gauge %q", name)
		}
	}
}

// TestConcurrentAssignAndScrape hammers /assign, /metrics, /models,
// /readyz, and /debug/slow from concurrent clients (run under -race in
// make check) and then verifies shutdown leaks no goroutines.
func TestConcurrentAssignAndScrape(t *testing.T) {
	dir := t.TempDir()
	res, m := fitModel(t, dir, "a.pmfm", 6)
	fitModel(t, dir, "b.pmfm", 7)
	before := runtime.NumGoroutine()
	var logBuf syncBuffer
	d, base := startDaemon(t, Config{ModelDir: dir, CacheCap: 1, Inflight: 4, Workers: 2, AccessLog: &logBuf})

	want, err := res.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := csvBody(m)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	const iters = 15
	for c := 0; c < 3; c++ {
		wg.Add(4)
		go func(c int) { // assign clients, alternating models to churn the LRU
			defer wg.Done()
			name := "a.pmfm"
			if c%2 == 1 {
				name = "b.pmfm"
			}
			for i := 0; i < iters; i++ {
				resp, err := http.Post(base+"/assign?model="+name, "text/csv", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("assign %s: status %d: %s", name, resp.StatusCode, raw)
					return
				}
				if name == "a.pmfm" {
					var ar assignResponse
					if err := json.Unmarshal(raw, &ar); err != nil {
						errs <- err
						return
					}
					for j := range want {
						if ar.Labels[j] != want[j] {
							errs <- fmt.Errorf("iter %d record %d: %d vs %d", i, j, ar.Labels[j], want[j])
							return
						}
					}
				}
			}
		}(c)
		go func() { // metrics scrapers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		go func() { // model listers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(base + "/models")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		go func() { // readiness and slow-ring scrapers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, route := range []string{"/readyz", "/debug/slow"} {
					resp, err := http.Get(base + route)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	// Goroutines wind down asynchronously after Shutdown returns; poll
	// briefly before declaring a leak.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before || time.Now().After(deadline) {
			if g > before+2 {
				buf := make([]byte, 1<<16)
				t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s", before, g, buf[:runtime.Stack(buf, true)])
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}
