package daemon

import (
	"context"
	"encoding/binary"
	"net/http"
	"sync"
	"testing"
	"time"

	"pmafia/internal/obs"
)

// TestCoalescedAssignCorrectPerRequestLabels hammers a coalescing
// daemon with concurrent small framed requests, each a different slice
// of the training data, and checks every request gets exactly its own
// labels back — the failure mode of a mis-sliced accumulation buffer
// or a batch labeled twice. Run under -race this is also the
// coalescer's data-race gate.
func TestCoalescedAssignCorrectPerRequestLabels(t *testing.T) {
	dir := t.TempDir()
	res, m := fitModel(t, dir, "a.pmfm", 23)
	d, base := startDaemon(t, Config{
		ModelDir:       dir,
		Inflight:       64,
		CoalesceWindow: 2 * time.Millisecond,
		CoalesceMax:    64,
		// A small chunk forces threshold flushes to race the window
		// timer, covering both detach paths.
		Chunk: 128,
	})
	defer d.Shutdown(context.Background())

	want, err := res.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	const dims = 5
	const clients = 16
	const perClient = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				// Each request takes a distinct contiguous row range;
				// sizes vary so waiter offsets are irregular.
				lo := (c*perClient + q) * 9 % (m.NumRecords() - 8)
				n := 1 + (c+q)%7
				body, err := EncodeFrame(dims, m.Values[lo*dims:(lo+n)*dims])
				if err != nil {
					t.Error(err)
					return
				}
				resp, raw := postAssign(t, base, "a.pmfm", ContentTypeFrame, body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d req %d: status %d: %s", c, q, resp.StatusCode, raw)
					return
				}
				if len(raw) != 4*n {
					t.Errorf("client %d req %d: %d bytes for %d labels", c, q, len(raw), n)
					return
				}
				for i := 0; i < n; i++ {
					if got := int32(binary.LittleEndian.Uint32(raw[4*i:])); got != want[lo+i] {
						t.Errorf("client %d req %d record %d: got %d, want %d", c, q, lo+i, got, want[lo+i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	rec := d.Recorder()
	reqs := rec.Counter(obs.CtrAssignCoalesceReqs)
	flushes := rec.Counter(obs.CtrAssignCoalesceFlushes)
	if reqs != clients*perClient {
		t.Errorf("coalesce.requests = %d, want %d", reqs, clients*perClient)
	}
	if flushes < 1 || flushes > reqs {
		t.Errorf("coalesce.flushes = %d with %d requests", flushes, reqs)
	}
	if h := rec.Histogram(obs.HistAssignCoalesceRecords); h == nil || h.Count() != flushes {
		t.Errorf("coalesce.records histogram does not match the flush count")
	}
}

// TestCoalesceFlushDeadline pins the starvation bound: a lone framed
// request with no co-riders must be flushed by the window timer, not
// wait for a batch that never fills. The bound is generous for CI
// schedulers but far below the daemon's 30s request timeout, so a
// stuck timer fails fast.
func TestCoalesceFlushDeadline(t *testing.T) {
	dir := t.TempDir()
	_, m := fitModel(t, dir, "a.pmfm", 24)
	d, base := startDaemon(t, Config{
		ModelDir:       dir,
		CoalesceWindow: 10 * time.Millisecond,
		CoalesceMax:    64,
	})
	defer d.Shutdown(context.Background())

	body, err := EncodeFrame(5, m.Values[:5])
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, raw := postAssign(t, base, "a.pmfm", ContentTypeFrame, body)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("lone coalesced request took %v — window timer did not flush", elapsed)
	}
	if got := d.Recorder().Counter(obs.CtrAssignCoalesceFlushes); got != 1 {
		t.Errorf("coalesce.flushes = %d, want 1", got)
	}
}

// TestCoalesceOversizedBodyStill413 pins that turning coalescing on
// does not bypass the body cap: a single framed request whose declared
// payload exceeds MaxBody maps to 413, and so does a raw body that
// overruns the cap mid-read.
func TestCoalesceOversizedBodyStill413(t *testing.T) {
	dir := t.TempDir()
	_, m := fitModel(t, dir, "a.pmfm", 25)
	d, base := startDaemon(t, Config{
		ModelDir:       dir,
		MaxBody:        4096,
		CoalesceWindow: 2 * time.Millisecond,
		CoalesceMax:    1 << 20, // eligibility is not what rejects it
	})
	defer d.Shutdown(context.Background())

	// Declared payload past the cap: rejected from the header alone.
	big, err := EncodeFrame(5, make([]float64, 5*4096))
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postAssign(t, base, "a.pmfm", ContentTypeFrame, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("declared-oversize frame: status %d (%s), want 413", resp.StatusCode, raw)
	}

	// A small, valid frame still works on the same daemon.
	ok, err := EncodeFrame(5, m.Values[:10])
	if err != nil {
		t.Fatal(err)
	}
	if resp, raw := postAssign(t, base, "a.pmfm", ContentTypeFrame, ok); resp.StatusCode != http.StatusOK {
		t.Errorf("small frame after rejection: status %d (%s)", resp.StatusCode, raw)
	}
}
